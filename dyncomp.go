// Package dyncomp is a performance-evaluation library for multi-core
// architectures implementing the dynamic computation method of Le Nours,
// Postula and Bergmann (DATE 2014): architecture models are described as
// statically-scheduled dataflow applications mapped onto platform
// resources, and simulated either event-by-event (the reference executor)
// or through an equivalent model that computes evolution instants
// dynamically over a (max,+) temporal dependency graph, saving most
// simulation events at zero accuracy cost.
//
// # Workflow
//
//	a := dyncomp.NewArchitecture("my-soc")
//	// ... describe channels, functions, resources, mapping, environment
//	ref, _ := dyncomp.RunReference(a, dyncomp.RunOptions{Record: true})
//	eq,  _ := dyncomp.RunEquivalent(a, dyncomp.RunOptions{Record: true})
//	err := dyncomp.CompareTraces(ref.Trace, eq.Trace) // nil: bit-exact
//
// Beyond the two whole-architecture engines, the hybrid engine abstracts
// only a named group of functions (the paper's partial abstraction)
// while the rest stays event-driven, and the adaptive engine decides
// online: it simulates event-by-event until a steady state is confirmed,
// hot-switches the steady region to the equivalent model, and falls back
// on every parameter change — all four engines produce bit-exact traces.
// The engines form a registry: Engines() lists them, Run addresses any
// of them by name with one unified option set, and Sweep evaluates a
// parameter grid with any of them across a worker pool, deriving each
// structural shape exactly once:
//
//	hyb, _ := dyncomp.Run(ctx, "hybrid", a, dyncomp.EngineOptions{AbstractGroup: []string{"F1", "F2"}, Record: true})
//	ad,  _ := dyncomp.Run(ctx, "adaptive", a, dyncomp.EngineOptions{Record: true})
//	res, _ := dyncomp.Sweep(axes, gen, dyncomp.SweepOptions{Workers: 8})
//
// (RunReference, RunEquivalent, RunHybrid and RunAdaptive remain as
// compatibility shims over the registry.)
//
// The whole matrix is also served over HTTP: internal/serve and the
// dyncomp-serve command expose synchronous runs, asynchronous sweep
// jobs with server-sent-event progress, and introspection endpoints,
// sharing one NewCache-style derivation cache across all requests (see
// docs/SERVING.md).
//
// The sub-systems live in internal packages: internal/sim (discrete-event
// kernel), internal/model (architecture description), internal/maxplus
// ((max,+) algebra), internal/tdg (temporal dependency graphs),
// internal/derive (automatic graph derivation, shape-keyed cache),
// internal/baseline and internal/core (the two execution engines),
// internal/hybrid (partial abstraction), internal/adaptive (temporal
// abstraction / engine switching), internal/sweep (design-space
// exploration), internal/serve (the HTTP serving layer),
// internal/observe (traces and resource usage), internal/lte (the LTE
// case study) and internal/exp (the paper's experiments). See
// docs/ARCHITECTURE.md for the paper-section→package map and an engine
// decision table, and docs/TUTORIAL.md for a guided tour from first
// model to served sweeps.
package dyncomp

import (
	"context"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
)

// Re-exported modelling types; see internal/model for full documentation.
type (
	// Architecture is a complete performance model.
	Architecture = model.Architecture
	// Token is one unit of data flowing through the application.
	Token = model.Token
	// Load is the computation demand of an execute statement.
	Load = model.Load
	// CostFn computes the load of an execute statement for a token.
	CostFn = model.CostFn
	// Channel is a point-to-point relation between two functions.
	Channel = model.Channel
	// Function is a dataflow application function.
	Function = model.Function
	// Resource is a processing resource of the platform.
	Resource = model.Resource
	// Read is a blocking channel-read statement.
	Read = model.Read
	// Write is a channel-write statement.
	Write = model.Write
	// Exec is a resource-occupying execution statement.
	Exec = model.Exec
	// Trace is a recorded model evolution.
	Trace = observe.Trace
	// Activity is one recorded execution on a resource.
	Activity = observe.Activity
	// Series is a binned observation time series (e.g. GOPS).
	Series = observe.Series
	// Time is a (max,+) instant or duration in nanosecond ticks.
	Time = maxplus.T
)

// Channel protocols.
const (
	Rendezvous = model.Rendezvous
	FIFO       = model.FIFO
)

// NewArchitecture creates an empty architecture model.
func NewArchitecture(name string) *Architecture { return model.NewArchitecture(name) }

// NewTrace creates an empty evolution trace.
func NewTrace(name string) *Trace { return observe.NewTrace(name) }

// FixedOps returns a constant-operation-count cost function.
func FixedOps(ops float64) CostFn { return model.FixedOps(ops) }

// OpsPerByte returns a cost function of the form base + perByte·size.
func OpsPerByte(base, perByte float64) CostFn { return model.OpsPerByte(base, perByte) }

// Periodic returns the source schedule u(k) = offset + k·period.
func Periodic(period, offset Time) model.ScheduleFn { return model.Periodic(period, offset) }

// Eager returns the always-ready source schedule u(k) = 0.
func Eager() model.ScheduleFn { return model.Eager() }

// RunOptions configures a simulation run.
type RunOptions struct {
	// Record enables evolution-instant and resource-activity recording.
	Record bool
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion).
	LimitNs int64
	// Reduce prunes value-redundant arcs from the derived temporal
	// dependency graph (equivalent model only).
	Reduce bool
}

// RunResult reports a completed simulation.
type RunResult struct {
	// Trace holds the recorded evolution when RunOptions.Record was set.
	Trace *Trace
	// Activations counts kernel context switches (the cost the dynamic
	// computation method removes).
	Activations int64
	// Events counts kernel event-queue operations.
	Events int64
	// FinalTimeNs is the simulation time reached.
	FinalTimeNs int64
	// GraphNodes is the temporal dependency graph size in the paper's
	// counting (equivalent model only).
	GraphNodes int
}

// runNamed routes one legacy wrapper through the engine registry; the
// four wrappers below are thin shims over Run kept for compatibility,
// producing results identical to the pre-registry implementations.
func runNamed(engineName string, a *Architecture, opts EngineOptions) (*RunResult, error) {
	r, err := Run(context.Background(), engineName, a, opts)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Trace:       r.Trace,
		Activations: r.Activations,
		Events:      r.Events,
		FinalTimeNs: r.FinalTimeNs,
		GraphNodes:  r.GraphNodes,
	}, nil
}

// RunReference simulates the architecture with the event-driven reference
// executor — every relation among functions is a simulation event.
//
// Deprecated: RunReference is a shim over [Run] with the engine name
// "reference"; new code should address engines by name through the
// registry — see the [Run] example (ExampleRun in example_test.go)
// for the full replacement pattern.
func RunReference(a *Architecture, opts RunOptions) (*RunResult, error) {
	return runNamed("reference", a, EngineOptions{
		Record: opts.Record, LimitNs: opts.LimitNs, Reduce: opts.Reduce,
	})
}

// RunEquivalent derives the architecture's temporal dependency graph and
// simulates its equivalent model: internal evolution instants are
// computed, not simulated, so only boundary events reach the kernel. The
// recorded trace is bit-exact against RunReference.
//
// Deprecated: RunEquivalent is a shim over [Run] with the engine name
// "equivalent"; new code should address engines by name through the
// registry — see the [Run] example for the replacement pattern, and
// [NewCache] for sharing derivations across such runs.
func RunEquivalent(a *Architecture, opts RunOptions) (*RunResult, error) {
	return runNamed("equivalent", a, EngineOptions{
		Record: opts.Record, LimitNs: opts.LimitNs, Reduce: opts.Reduce,
	})
}

// RunHybrid simulates the architecture with only the named group of
// functions abstracted into an equivalent model; the rest runs
// event-by-event and both halves meet at the group's boundary channels.
// This is the paper's general "grouping some of the architecture
// processes". The group must cover whole resources and emit through one
// boundary output channel.
//
// Deprecated: RunHybrid is a shim over [Run] with the engine name
// "hybrid" and EngineOptions.AbstractGroup set to group; new code
// should address engines by name through the registry — see the [Run]
// example for the replacement pattern.
func RunHybrid(a *Architecture, group []string, opts RunOptions) (*RunResult, error) {
	return runNamed("hybrid", a, EngineOptions{
		Record: opts.Record, LimitNs: opts.LimitNs, Reduce: opts.Reduce,
		AbstractGroup: group,
	})
}

// CompareTraces checks two traces for bit-exact agreement of every
// evolution instant; a nil result is the paper's accuracy criterion.
func CompareTraces(a, b *Trace) error { return observe.CompareInstants(a, b) }

// InstantError returns the mean absolute difference between the instants
// of two traces in nanoseconds (0 for exact methods).
func InstantError(a, b *Trace) float64 { return observe.MeanAbsInstantError(a, b) }
