module dyncomp

go 1.24
