package dyncomp

import (
	"dyncomp/internal/archjson"
)

// ArchSpec is a validated architecture description in the open JSON
// model format: a versioned, parameterized document declaring channels,
// functions, resources, mapping and environment, decodable by any
// dyncomp process (library, CLI or server) with no registered scenario.
// See docs/MODEL_FORMAT.md for the schema reference. Obtain one with
// DecodeArchitecture or ExportArchitecture; instantiate it with
// BuildArchitecture.
type ArchSpec = archjson.Spec

// Stable machine-readable codes carried by every architecture-format
// error, shared verbatim with the HTTP layer's error bodies.
const (
	// ArchCodeInvalid marks a spec that violates the schema or resolves
	// to an invalid configuration.
	ArchCodeInvalid = archjson.CodeInvalid
	// ArchCodeVersion marks a spec declaring an unsupported format
	// version.
	ArchCodeVersion = archjson.CodeVersion
	// ArchCodeTooLarge marks a document over the decoder's size cap.
	ArchCodeTooLarge = archjson.CodeTooLarge
)

// ArchErrorCode extracts the stable code from an error returned by the
// architecture-format functions ("" for foreign errors).
func ArchErrorCode(err error) string { return archjson.ErrCode(err) }

// paramMap adapts a plain map to the spec builder's parameter source.
type paramMap map[string]int64

func (m paramMap) Lookup(name string) (int64, bool) {
	v, ok := m[name]
	return v, ok
}

// DecodeArchitecture parses and fully validates a JSON architecture
// document. A non-nil error always carries a stable code (see
// ArchErrorCode); a nil error guarantees the spec is schema-valid,
// though building may still fail for specific parameter bindings.
func DecodeArchitecture(data []byte) (*ArchSpec, error) { return archjson.Decode(data) }

// BuildArchitecture instantiates a decoded spec into a runnable
// architecture, binding the given parameters over the spec's declared
// defaults (nil: all defaults). Unknown parameter names and bindings
// that resolve to invalid configurations are reported as
// ArchCodeInvalid errors, never panics.
func BuildArchitecture(spec *ArchSpec, params map[string]int64) (*Architecture, error) {
	if err := spec.CheckParams(params); err != nil {
		return nil, err
	}
	return spec.Build(paramMap(params))
}

// ExportArchitecture converts a programmatically built architecture
// into a spec that round-trips: building the exported spec yields a
// model whose evaluation is bit-exact against the original on every
// engine. Cost, schedule and token functions are tabulated over the
// model's declared token counts, so exporting requires every source to
// declare a finite count.
func ExportArchitecture(a *Architecture) (*ArchSpec, error) { return archjson.Export(a) }

// MarshalArchitecture renders a spec as indented JSON, the inverse of
// DecodeArchitecture.
func MarshalArchitecture(spec *ArchSpec) ([]byte, error) { return archjson.Marshal(spec) }
