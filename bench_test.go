package dyncomp

// Benchmark harness: one benchmark pair (event-driven baseline vs
// equivalent model) per table/figure of the paper.
//
//	go test -bench=. -benchmem
//
// Table I    -> BenchmarkTable1/exampleN/{baseline,equivalent}
// Fig. 5     -> BenchmarkFig5/xX/nodesN (plus xX/baseline as reference)
// Fig. 6 / case study -> BenchmarkCaseStudy/{baseline,equivalent}
// Adaptive switching -> BenchmarkAdaptive/{baseline,equivalent,adaptive}
// TLM-LT motivation  -> BenchmarkQuantum/qQ
// ComputeInstant cost -> BenchmarkComputeInstant/nodesN
//
// The interesting output is the ratio of ns/op between baseline and
// equivalent benchmarks of the same workload: that is the paper's
// "simulation speed-up". EXPERIMENTS.md records the measured values.

import (
	"fmt"
	"testing"

	"dyncomp/internal/adaptive"
	"dyncomp/internal/baseline"
	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/hybrid"
	"dyncomp/internal/ltdecoup"
	"dyncomp/internal/lte"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

const benchTokens = 1000

func benchBaseline(b *testing.B, build func() *model.Architecture) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := baseline.Run(build(), baseline.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Activations), "activations")
		}
	}
}

func benchEquivalent(b *testing.B, build func() *model.Architecture, opts derive.Options) {
	b.Helper()
	b.ReportAllocs()
	// Model generation precedes simulation (as in the paper); only the
	// simulation is timed.
	dres, err := derive.Derive(build(), opts)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Activations), "activations")
		}
	}
}

// BenchmarkTable1 reproduces Table I: chained didactic architectures.
// Speed-up = ns/op(baseline) / ns/op(equivalent) per example.
func BenchmarkTable1(b *testing.B) {
	for stages := 1; stages <= 4; stages++ {
		build := func() *model.Architecture {
			return zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: benchTokens, Period: 1200, Seed: 41})
		}
		b.Run(fmt.Sprintf("example%d/baseline", stages), func(b *testing.B) {
			benchBaseline(b, build)
		})
		b.Run(fmt.Sprintf("example%d/equivalent", stages), func(b *testing.B) {
			benchEquivalent(b, build, derive.Options{})
		})
	}
}

// BenchmarkFig5 reproduces the Fig. 5 sweep: for each X size the
// equivalent model is run with the temporal dependency graph padded to
// growing node counts; the baseline reference gives the denominator.
func BenchmarkFig5(b *testing.B) {
	for _, x := range []int{6, 10, 20, 30} {
		spec := zoo.PipelineSpec{XSize: x, Tokens: benchTokens, Period: 600, Seed: 17}
		build := func() *model.Architecture { return zoo.Pipeline(spec) }
		b.Run(fmt.Sprintf("x%d/baseline", x), func(b *testing.B) {
			benchBaseline(b, build)
		})
		for _, nodes := range []int{10, 100, 1000, 3000} {
			base := zoo.Pipeline(spec)
			dres, err := derive.Derive(base, derive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			pad := nodes - dres.Graph.NodeCount()
			if pad < 0 {
				pad = 0
			}
			opts := derive.Options{PadNodes: pad}
			b.Run(fmt.Sprintf("x%d/nodes%d", x, nodes), func(b *testing.B) {
				benchEquivalent(b, build, opts)
			})
		}
	}
}

// BenchmarkCaseStudy reproduces the Section V measurement (Fig. 6
// workload): the LTE receiver processing a stream of symbols. The paper
// reports a speed-up of 4 at an event ratio of 4.2 for 20000 symbols.
func BenchmarkCaseStudy(b *testing.B) {
	build := func() *model.Architecture {
		return lte.Receiver(lte.Spec{Symbols: benchTokens, Seed: 23})
	}
	b.Run("baseline", func(b *testing.B) {
		benchBaseline(b, build)
	})
	b.Run("equivalent", func(b *testing.B) {
		benchEquivalent(b, build, derive.Options{Reduce: true})
	})
	b.Run("equivalent-unreduced", func(b *testing.B) {
		benchEquivalent(b, build, derive.Options{})
	})
}

// BenchmarkHybrid measures partial abstraction on the LTE receiver: the
// DSP cluster abstracted, the hardware decoder still simulated. Compare
// with BenchmarkCaseStudy/baseline (nothing abstracted) and
// BenchmarkCaseStudy/equivalent (everything abstracted).
func BenchmarkHybrid(b *testing.B) {
	b.Run("lte-dsp-group", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := hybrid.Run(
				lte.Receiver(lte.Spec{Symbols: benchTokens, Seed: 23}),
				hybrid.Options{Group: lte.FunctionNames[:7]})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Stats.Activations), "activations")
			}
		}
	})
}

// BenchmarkAdaptive measures the adaptive engine on the phase-changing
// didactic workload against the two static engines on the same stream.
// The adaptive ns/op sits between them: transients are simulated
// event-by-event, the steady plateaus (the bulk of the run) are
// computed; the "events" metric shows the kernel work each engine pays.
//
// The detector sub-benchmarks compare the two steady-state policies on
// identical streams: the historical fixed confirmation window versus
// the confidence-driven detector, which fires as early as the evidence
// allows. "events-to-switch" is the kernel work paid before the first
// detailed→abstract switch — the cost of detection latency — and the
// confidence detector's reduction of it is the point of the policy
// (the recorded evolution is bit-exact under both).
func BenchmarkAdaptive(b *testing.B) {
	spec := zoo.PhasedSpec{Tokens: benchTokens, Period: 1100, Seed: 7}
	build := func() *model.Architecture { return zoo.Phased(spec) }
	b.Run("baseline", func(b *testing.B) {
		benchBaseline(b, build)
	})
	b.Run("equivalent", func(b *testing.B) {
		benchEquivalent(b, build, derive.Options{})
	})
	for _, det := range []struct {
		name string
		opts adaptive.Options
	}{
		{"adaptive/fixed-window", adaptive.Options{Window: adaptive.DefaultWindow}},
		{"adaptive/confidence", adaptive.Options{}},
	} {
		b.Run(det.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := adaptive.Run(build(), det.opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Events()), "events")
					b.ReportMetric(float64(res.Switches), "switches")
					b.ReportMetric(eventsToFirstSwitch(res), "events-to-switch")
				}
			}
		})
	}
}

// eventsToFirstSwitch sums the kernel events of the detailed phases
// before the first abstract phase: the price of not having switched
// yet. Runs that never switch pay for the whole stream.
func eventsToFirstSwitch(res *adaptive.Result) float64 {
	var events int64
	for _, ph := range res.Phases {
		if ph.Mode == adaptive.Abstract {
			break
		}
		events += ph.Events
	}
	return float64(events)
}

// BenchmarkQuantum measures the loosely-timed comparator the paper's
// introduction criticises: faster with larger quanta but inaccurate
// (compare with BenchmarkTable1/example1/equivalent, which is exact).
func BenchmarkQuantum(b *testing.B) {
	for _, q := range []sim.Time{1_000, 100_000} {
		b.Run(fmt.Sprintf("q%dns", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := ltdecoup.Run(
					zoo.Didactic(zoo.DidacticSpec{Tokens: benchTokens, Period: 900, Seed: 31}),
					ltdecoup.Options{Quantum: q})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComputeInstant isolates the cost of one ComputeInstant()
// action as a function of graph size — the knee position of Fig. 5 is
// where this cost catches up with the saved kernel events. The
// "nodesN" variants run the compiled evaluation program (the default
// evaluator of every engine); "nodesN/interpreted" walks the graph's
// arc lists, the pre-compilation baseline.
func BenchmarkComputeInstant(b *testing.B) {
	stepLoop := func(ev *tdg.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			u := []maxplus.T{0}
			for i := 0; i < b.N; i++ {
				u[0] = maxplus.T(i * 100)
				if _, err := ev.Step(u); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for _, nodes := range []int{10, 100, 1000, 3000} {
		dres, err := derive.Derive(
			zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 100, Seed: 1}),
			derive.Options{PadNodes: nodes - 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes%d", nodes), stepLoop(dres.Program().NewEvaluator()))
		iv, err := tdg.NewEvaluator(dres.Graph)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes%d/interpreted", nodes), stepLoop(iv))
	}
}

// BenchmarkSweep measures the design-space sweep engine on a 36-point
// parameter grid (period × seed) sharing one structural shape (a
// 3-stage didactic chain, derived with arc reduction as the paper's
// hand-minimal graphs are):
//
//   - naive: one RunEquivalent per point, re-deriving and re-reducing
//     the temporal dependency graph every time (36 derivations per
//     sweep);
//   - cached: dyncomp.Sweep with the structure-keyed derive cache
//     (1 derivation per sweep) on one worker;
//   - cached-parallel: the same with one worker per processor.
//
// The naive/cached ns/op ratio is the derivation saving; the
// "derives/op" metric shows each strategy's Derive count.
func BenchmarkSweep(b *testing.B) {
	periods := []int64{600, 800, 1000, 1200, 1400, 1600}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	const sweepTokens = 20
	build := func(period, seed int64) *model.Architecture {
		return zoo.DidacticChain(3, zoo.DidacticSpec{
			Tokens: sweepTokens, Period: maxplus.T(period), Seed: seed})
	}
	axes := []SweepAxis{
		{Name: "period", Values: periods},
		{Name: "seed", Values: seeds},
	}
	gen := func(p SweepPoint) (*Architecture, error) {
		return build(p.Get("period", 1200), p.Get("seed", 1)), nil
	}

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		before := derive.Calls()
		for i := 0; i < b.N; i++ {
			for _, period := range periods {
				for _, seed := range seeds {
					if _, err := RunEquivalent(build(period, seed), RunOptions{Reduce: true}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(derive.Calls()-before)/float64(b.N), "derives/op")
	})
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"cached", 1}, {"cached-parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			before := derive.Calls()
			for i := 0; i < b.N; i++ {
				res, err := Sweep(axes, gen, SweepOptions{Workers: cfg.workers, Reduce: true})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Failed > 0 {
					b.Fatalf("%d points failed", res.Stats.Failed)
				}
			}
			b.ReportMetric(float64(derive.Calls()-before)/float64(b.N), "derives/op")
		})
	}
}

// BenchmarkKernelActivation measures the cost the method saves per event:
// one timed wait (two goroutine handshakes plus event-queue work).
func BenchmarkKernelActivation(b *testing.B) {
	b.ReportAllocs()
	k := sim.New()
	k.Spawn("spinner", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMaxPlus measures the algebra primitives underlying
// ComputeInstant.
func BenchmarkMaxPlus(b *testing.B) {
	b.Run("otimes", func(b *testing.B) {
		acc := maxplus.T(0)
		for i := 0; i < b.N; i++ {
			acc = maxplus.Otimes(acc, 1)
		}
		_ = acc
	})
	b.Run("matrix-apply-16", func(b *testing.B) {
		m := maxplus.NewMatrix(16, 16)
		for i := 0; i < 16; i++ {
			for j := 0; j <= i; j++ {
				m.Set(i, j, maxplus.T(i+j))
			}
		}
		v := maxplus.NewVector(16)
		for i := range v {
			v[i] = maxplus.T(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v = m.Apply(v)
		}
	})
}
