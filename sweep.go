package dyncomp

import (
	"context"
	"fmt"
	"time"

	"dyncomp/internal/derive"
	"dyncomp/internal/sim"
	"dyncomp/internal/surrogate"
	"dyncomp/internal/sweep"
)

// SweepSampleOptions configures surrogate-guided sweep sampling: with a
// positive Tolerance, a sweep evaluates an actively chosen subset of
// the grid exactly, fits an analytical surrogate over the parameter
// axes, and predicts the remaining points within the declared relative
// tolerance. Budget caps the exact evaluations; Verify re-simulates
// every predicted point and reports the observed error.
type SweepSampleOptions = sweep.SampleOptions

// Point sources reported by sampled sweeps (SweepPointResult.Source).
const (
	// SweepSourceSimulated marks a point evaluated exactly by an engine.
	SweepSourceSimulated = sweep.SourceSimulated
	// SweepSourcePredicted marks a point filled in by the surrogate.
	SweepSourcePredicted = sweep.SourcePredicted
)

// The surrogate package registers the sampling driver with the sweep
// engine; referencing it here makes SweepOptions.Sample work for every
// facade user without a separate import.
var _ = surrogate.Run

// SweepAxis is one dimension of a design-space grid: a named list of
// integer parameter values. A sweep evaluates the cartesian product of
// its axes.
type SweepAxis = sweep.Axis

// SweepPoint is one configuration of the grid. Generators read parameter
// values with Get(name, default) or Lookup(name).
type SweepPoint = sweep.Point

// SweepGenerator maps a grid point to an architecture. It must be
// deterministic and safe for concurrent calls with distinct points.
type SweepGenerator = func(SweepPoint) (*Architecture, error)

// SweepStats aggregates a completed sweep: point and failure counts,
// derivation-cache effectiveness (Shapes, DeriveCalls, CacheHits), total
// wall-clock time, and — when SweepOptions.Baseline is set — the
// min/max/mean/geomean of the per-point speed-ups and event ratios.
type SweepStats = sweep.Stats

// SweepEngine selects the executor evaluating every sweep point.
//
// Deprecated: engines are addressed by their registered name; use
// SweepOptions.EngineName (see Engines for the available names). The
// enum remains for compatibility and covers only the original three.
type SweepEngine int

// Sweep engines.
const (
	// SweepEquivalent evaluates each point with the equivalent model
	// (the default).
	SweepEquivalent SweepEngine = iota
	// SweepReference evaluates each point with the event-driven
	// reference executor.
	SweepReference
	// SweepAdaptive evaluates each point with the adaptive engine,
	// sharing the sweep's derivation cache across points.
	SweepAdaptive
)

// name maps the legacy enum onto the engine registry's names.
func (e SweepEngine) name() string {
	switch e {
	case SweepReference:
		return "reference"
	case SweepAdaptive:
		return "adaptive"
	default:
		return "equivalent"
	}
}

// SweepOptions configures a design-space sweep.
type SweepOptions struct {
	// Workers is the worker-pool size; 0 uses all processors. Per-point
	// results are identical for any worker count; only wall-clock
	// timings are perturbed by concurrency.
	Workers int
	// EngineName names the registered executor evaluating every point —
	// any name from Engines(), e.g. "hybrid" (with Group set). Empty
	// falls back to the deprecated Engine enum.
	EngineName string
	// Engine selects the per-point executor (default SweepEquivalent).
	//
	// Deprecated: use EngineName.
	Engine SweepEngine
	// Group names the functions the hybrid engine abstracts on every
	// point; ignored by the other engines.
	Group []string
	// WindowK sets the adaptive engine's fixed steady-state window; 0
	// selects its confidence-driven detector (see Confidence). Ignored
	// by the other engines.
	WindowK int
	// Confidence sets the adaptive engine's confidence-driven detector
	// threshold, read when WindowK is 0 (0: the engine default, 0.9);
	// ignored by the other engines.
	Confidence float64
	// Record keeps per-point evolution traces in the results.
	Record bool
	// LimitNs bounds the simulated time per point (0: run to completion).
	LimitNs int64
	// Reduce prunes value-redundant arcs from the derived graphs.
	Reduce bool
	// Baseline also runs the event-driven reference executor on every
	// point and fills the per-point Baseline result, EventRatio and
	// SpeedUp, plus the aggregate statistics.
	Baseline bool
	// Cache shares a structure-keyed derivation cache (see NewCache)
	// with other sweeps and runs; nil creates a fresh one per sweep.
	Cache *Cache
	// Progress, when non-nil, receives (completed, total) after every
	// point finishes. It is invoked from the finishing worker's
	// goroutine, so it must be safe for concurrent calls and must not
	// block. A batched sweep (BatchWidth > 0) coalesces the
	// notifications to one per finished batch.
	Progress func(done, total int)
	// Sample, when its Tolerance is positive, evaluates only an actively
	// chosen subset of the grid exactly and predicts the rest from an
	// analytical surrogate fitted over the parameter axes, within the
	// given relative tolerance (see SweepSampleOptions). Every point is
	// flagged in SweepPointResult.Source; Stats.SimulatedPoints,
	// PredictedPoints and MaxPredError summarize the split.
	Sample SweepSampleOptions
	// BatchWidth, when positive, evaluates structurally identical grid
	// points in batched lane groups of up to this many points — one
	// compiled structure, one lockstep evaluation pass per iteration
	// for the whole group. Per-point results are bit-identical to the
	// per-point sweep; Stats.Batches / BatchedPoints / BatchOccupancy
	// report how much of the grid ran batched. Engines without the
	// batch capability (reference, hybrid, adaptive) run per point
	// regardless. 0 disables batching.
	BatchWidth int
}

// SweepPointResult is the evaluation of one grid point: the equivalent
// model's RunResult (embedded) plus optional baseline pairing.
type SweepPointResult struct {
	Point SweepPoint
	// RunResult is the equivalent-model run of this point, exactly as an
	// individual RunEquivalent call would return it.
	RunResult
	// Wall is the host time of the equivalent-model run.
	Wall time.Duration
	// Baseline is the reference executor's result when
	// SweepOptions.Baseline is set.
	Baseline     *RunResult
	BaselineWall time.Duration
	// EventRatio and SpeedUp are the paper's headline ratios
	// (baseline/equivalent), filled when Baseline is set.
	EventRatio float64
	SpeedUp    float64
	// Switches and Fallbacks report the adaptive engine's mode changes
	// (zero for the other engines).
	Switches  int
	Fallbacks int
	// Source reports how a sampled sweep obtained this point:
	// SweepSourceSimulated or SweepSourcePredicted. Empty in exhaustive
	// sweeps.
	Source string
	// PredBound is the surrogate's relative error bound on a predicted
	// point; PredObserved the observed error after Sample.Verify.
	PredBound    float64
	PredObserved float64
	// Err marks a failed point.
	Err error
}

// SweepResult is a completed design-space sweep: one entry per grid
// point in row-major grid order, plus aggregate statistics.
type SweepResult struct {
	Points []SweepPointResult
	Stats  SweepStats
}

// Sweep evaluates every configuration of the grid spanned by axes,
// sharding the points across a worker pool; SweepOptions.EngineName (or
// the deprecated Engine enum) selects the per-point executor — any
// registered engine: equivalent model by default, reference executor,
// hybrid with an abstracted group, or the adaptive engine. The
// temporal dependency graph is derived once per structural shape and
// re-bound to every other point of that shape, so sweeping parameters
// (token counts, periods, seeds, costs, speeds) over a fixed topology
// pays the derivation cost once; per-point results are bit-identical to
// individual single-run calls of the same engine.
//
// Failed points carry their error in Points[i].Err; when any point
// failed, Sweep also returns a summary error alongside the full result.
func Sweep(axes []SweepAxis, gen SweepGenerator, opts SweepOptions) (*SweepResult, error) {
	return SweepContext(context.Background(), axes, gen, opts)
}

// SweepContext is Sweep with cancellation threaded through the worker
// pool: once ctx is cancelled no further point is dispatched, the
// remaining points fail with the context's error, and SweepContext
// returns it alongside the partial result.
func SweepContext(ctx context.Context, axes []SweepAxis, gen SweepGenerator, opts SweepOptions) (*SweepResult, error) {
	name := opts.EngineName
	if name == "" {
		name = opts.Engine.name()
	}
	sopts := sweep.Options{
		Workers:    opts.Workers,
		Engine:     name,
		Window:     opts.WindowK,
		Confidence: opts.Confidence,
		Group:      opts.Group,
		Record:     opts.Record,
		Limit:      sim.Time(opts.LimitNs),
		Baseline:   opts.Baseline,
		Derive:     derive.Options{Reduce: opts.Reduce},
		Progress:   opts.Progress,
		Sample:     opts.Sample,
		BatchWidth: opts.BatchWidth,
	}
	if opts.Cache != nil {
		sopts.Cache = opts.Cache.c
	}
	res, err := sweep.RunContext(ctx, axes, sweep.Generator(gen), sopts)
	if err != nil && res == nil {
		return nil, err
	}
	out := &SweepResult{
		Points: make([]SweepPointResult, len(res.Points)),
		Stats:  res.Stats,
	}
	var firstErr error
	for i, pr := range res.Points {
		sp := SweepPointResult{
			Point: pr.Point,
			RunResult: RunResult{
				Trace:       pr.Trace,
				Activations: pr.Run.Activations,
				Events:      pr.Run.Events,
				FinalTimeNs: pr.Run.FinalTimeNs,
				GraphNodes:  pr.Run.GraphNodes,
			},
			Wall:         pr.Run.Wall,
			EventRatio:   pr.EventRatio,
			SpeedUp:      pr.SpeedUp,
			Switches:     pr.Run.Switches,
			Fallbacks:    pr.Run.Fallbacks,
			Source:       pr.Source,
			PredBound:    pr.PredBound,
			PredObserved: pr.PredObserved,
			Err:          pr.Err,
		}
		if pr.Baseline != nil {
			sp.Baseline = &RunResult{
				Trace:       pr.BaselineTrace,
				Activations: pr.Baseline.Activations,
				Events:      pr.Baseline.Events,
				FinalTimeNs: pr.Baseline.FinalTimeNs,
			}
			sp.BaselineWall = pr.Baseline.Wall
		}
		if pr.Err != nil && firstErr == nil {
			firstErr = pr.Err
		}
		out.Points[i] = sp
	}
	if err != nil {
		// Cancellation: the partial result travels with the context error.
		return out, err
	}
	if firstErr != nil {
		return out, fmt.Errorf("sweep: %d of %d points failed; first: %w",
			res.Stats.Failed, res.Stats.Points, firstErr)
	}
	return out, nil
}
