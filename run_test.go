package dyncomp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dyncomp/internal/zoo"
)

// The registry facade must expose the four executors.
func TestEnginesListsFourExecutors(t *testing.T) {
	names := Engines()
	want := map[string]bool{"adaptive": true, "equivalent": true, "hybrid": true, "reference": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("Engines() = %v, missing %v", names, want)
	}
}

// Run with an engine name and the legacy wrappers are the same code
// path; their results must be identical field for field.
func TestRunMatchesLegacyWrappers(t *testing.T) {
	ctx := context.Background()
	ref, err := RunReference(buildSmoke(200), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"equivalent", "adaptive"} {
		r, err := Run(ctx, name, buildSmoke(200), EngineOptions{Record: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CompareTraces(ref.Trace, r.Trace); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	eqOld, err := RunEquivalent(buildSmoke(200), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	eqNew, err := Run(ctx, "equivalent", buildSmoke(200), EngineOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if eqOld.Activations != eqNew.Activations || eqOld.Events != eqNew.Events ||
		eqOld.FinalTimeNs != eqNew.FinalTimeNs || eqOld.GraphNodes != eqNew.GraphNodes {
		t.Fatalf("wrapper and Run disagree:\n%+v\n%+v", eqOld, eqNew)
	}
}

func TestRunHybridViaRegistry(t *testing.T) {
	ref, err := RunReference(buildSmoke(150), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), "hybrid", buildSmoke(150), EngineOptions{
		Record:        true,
		AbstractGroup: []string{"stage2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, r.Trace); err != nil {
		t.Fatal(err)
	}
	if r.GraphNodes == 0 {
		t.Fatal("hybrid derived no graph")
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if _, err := Run(context.Background(), "warp-drive", buildSmoke(5), EngineOptions{}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// SweepContext must return partial results with the context error, and
// the hybrid engine must be selectable by name.
func TestSweepContextCancelledAndHybridByName(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	axes := []SweepAxis{{Name: "seed", Values: []int64{1, 2}}}
	gen := func(p SweepPoint) (*Architecture, error) {
		return zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 10, Seed: p.Get("seed", 0)}), nil
	}
	res, err := SweepContext(ctx, axes, gen, SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Points) != 2 {
		t.Fatalf("partial result missing: %+v", res)
	}

	sc, err := zoo.LookupScenario("forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Sweep(axes, func(p SweepPoint) (*Architecture, error) {
		return zoo.ForkJoin(zoo.ForkJoinSpec{Workers: 3, Tokens: 15, Seed: p.Get("seed", 0)}), nil
	}, SweepOptions{EngineName: "hybrid", Group: sc.HybridGroup(zoo.ParamMap{}), Record: true, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range sres.Points {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
		if err := CompareTraces(pr.Baseline.Trace, pr.Trace); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}

// A shared Cache derives each structural shape once across independent
// Run and Sweep calls, and Progress hooks fire on both paths.
func TestSharedCacheAndProgressAcrossRunsAndSweeps(t *testing.T) {
	cache := NewCache()
	ctx := context.Background()

	runDone := 0
	if _, err := Run(ctx, "equivalent", buildSmoke(100), EngineOptions{
		Cache:    cache,
		Progress: func(done, total int) { runDone = done },
	}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after first run: hits %d misses %d, want 0/1", hits, misses)
	}
	if runDone == 0 {
		t.Fatal("run progress hook never fired")
	}

	if _, err := Run(ctx, "equivalent", buildSmoke(100), EngineOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("second run no cache hit: hits %d misses %d", hits, misses)
	}
	if cache.Shapes() != 1 {
		t.Fatalf("shapes = %d, want 1", cache.Shapes())
	}

	// Deliveries may be observed out of order; track the max.
	var sweepDone atomic.Int64
	res, err := Sweep([]SweepAxis{{Name: "tokens", Values: []int64{50, 100, 150}}},
		func(p SweepPoint) (*Architecture, error) { return buildSmoke(int(p.Get("tokens", 100))), nil },
		SweepOptions{
			Cache: cache,
			Progress: func(done, total int) {
				for {
					cur := sweepDone.Load()
					if int64(done) <= cur || sweepDone.CompareAndSwap(cur, int64(done)) {
						return
					}
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	// Same structural shape as the two direct runs: zero derivations in
	// the sweep, three more hits.
	if res.Stats.DeriveCalls != 1 || res.Stats.CacheHits != 4 {
		t.Fatalf("sweep stats %+v, want the shared cache's 1 derivation / 4 hits", res.Stats)
	}
	if got := sweepDone.Load(); got != 3 {
		t.Fatalf("sweep progress reached %d, want 3", got)
	}
}
