package dyncomp

import (
	"dyncomp/internal/adaptive"
	"dyncomp/internal/derive"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// AdaptiveOptions configures an adaptive (temporal-abstraction) run.
type AdaptiveOptions struct {
	// Record enables evolution-instant and resource-activity recording.
	// The engine records internally either way (the history seeds every
	// engine switch), so recording costs nothing extra.
	Record bool
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion). The adaptive engine truncates at iteration granularity.
	LimitNs int64
	// Reduce prunes value-redundant arcs from the derived graph.
	Reduce bool
	// WindowK is the number of consecutive iterations with an unchanged
	// parameter signature required before hot-switching to the equivalent
	// model; it is also the event-driven chunk length between steady-state
	// checks. Zero selects the confidence-driven detector (see
	// Confidence), which switches as early as the evidence allows.
	WindowK int
	// Confidence is the confidence-driven detector's steadiness
	// threshold in (0, 1), read when WindowK is zero (0: the engine
	// default of 0.9). The detector is policy either way — the recorded
	// evolution is bit-exact at any setting.
	Confidence float64
}

// AdaptivePhase is one maximal span of iterations executed in a single
// mode ("detailed" or "abstract").
type AdaptivePhase struct {
	Mode         string
	StartK, EndK int   // iteration span [StartK, EndK)
	Events       int64 // kernel event-queue operations paid (0 when abstract)
	Activations  int64 // kernel context switches paid (0 when abstract)
	WallNs       int64 // host time spent in the span
}

// AdaptiveResult reports a completed adaptive run. The embedded
// RunResult counts only the kernel work actually paid: abstract phases
// contribute zero events.
type AdaptiveResult struct {
	RunResult
	// Switches counts detailed→abstract transitions; Fallbacks counts
	// abstract→detailed transitions forced by a parameter change.
	Switches  int
	Fallbacks int
	// DetailedIterations and AbstractIterations split the evolution by
	// executing mode.
	DetailedIterations int
	AbstractIterations int
	// Phases lists the mode spans in execution order.
	Phases []AdaptivePhase
}

// RunAdaptive simulates the architecture with the adaptive engine: the
// run starts event-by-event, hot-switches to the equivalent (max,+) model
// once a steady state is confirmed (unchanged execution durations and
// source-schedule increments over WindowK iterations), and falls back to
// event-driven execution whenever the parameters change again, re-binding
// the temporal dependency graph through the structure-keyed cache on the
// next steady window. The recorded trace is bit-exact against
// RunReference regardless of how the run is partitioned; on
// phase-changing workloads most kernel events are saved.
//
// RunAdaptive remains the full-fidelity adaptive entry point (it reports
// per-phase spans the unified result cannot carry); Run(ctx, "adaptive",
// a, ...) reaches the same engine through the registry.
func RunAdaptive(a *Architecture, opts AdaptiveOptions) (*AdaptiveResult, error) {
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/adaptive")
	}
	res, err := adaptive.Run(a, adaptive.Options{
		Trace:      trace,
		Limit:      sim.Time(opts.LimitNs),
		Window:     opts.WindowK,
		Confidence: opts.Confidence,
		Derive:     derive.Options{Reduce: opts.Reduce},
	})
	if err != nil {
		return nil, err
	}
	out := &AdaptiveResult{
		RunResult: RunResult{
			Trace:       trace,
			Activations: res.Stats.Activations,
			Events:      res.Stats.Events(),
			FinalTimeNs: int64(res.Stats.FinalTime),
			GraphNodes:  res.GraphNodes,
		},
		Switches:           res.Switches,
		Fallbacks:          res.Fallbacks,
		DetailedIterations: res.DetailedIters,
		AbstractIterations: res.AbstractIters,
	}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, AdaptivePhase{
			Mode:        ph.Mode.String(),
			StartK:      ph.StartK,
			EndK:        ph.EndK,
			Events:      ph.Events,
			Activations: ph.Activations,
			WallNs:      ph.Wall.Nanoseconds(),
		})
	}
	return out, nil
}
