package main

import (
	"testing"

	"dyncomp/internal/archjson"
	"dyncomp/internal/optimize"
)

func TestParseConstraints(t *testing.T) {
	cons, err := parseConstraints(" power<=300 ; area<=12.5 ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []optimize.Constraint{{Metric: "power", Max: 300}, {Metric: "area", Max: 12.5}}
	if len(cons) != len(want) {
		t.Fatalf("got %v, want %v", cons, want)
	}
	for i := range want {
		if cons[i] != want[i] {
			t.Fatalf("constraint %d: got %+v, want %+v", i, cons[i], want[i])
		}
	}
	if cons, err := parseConstraints(""); err != nil || cons != nil {
		t.Fatalf("empty spec: %v, %v", cons, err)
	}
	for _, bad := range []string{"power<300", "power<=lots", "<=3"} {
		if bad == "<=3" {
			// An empty metric parses here; the optimizer rejects the
			// unknown metric name.
			continue
		}
		if _, err := parseConstraints(bad); err == nil {
			t.Fatalf("%q: expected an error", bad)
		}
	}
}

func TestSpecAxes(t *testing.T) {
	spec, err := archjson.Decode([]byte(`{
	  "version": 1,
	  "name": "axes",
	  "parameters": [
	    {"name": "a", "default": 1, "values": [1, 2, 3]},
	    {"name": "fixed", "default": 7},
	    {"name": "b", "default": 10, "values": [10, 20]}
	  ],
	  "channels": [
	    {"name": "in", "kind": "rendezvous"},
	    {"name": "out", "kind": "rendezvous"}
	  ],
	  "functions": [
	    {"name": "F", "body": [
	      {"read": "in"},
	      {"exec": {"label": "T", "cost": {"kind": "fixed", "ops": "$fixed"}}},
	      {"write": "out"}
	    ]}
	  ],
	  "resources": [{"name": "P1", "kind": "processor", "ops_per_sec": 1e9}],
	  "mapping": [{"resource": "P1", "functions": ["F"]}],
	  "sources": [{"name": "src", "channel": "in", "count": 5,
	               "schedule": {"kind": "eager"}}],
	  "sinks": [{"name": "sink", "channel": "out"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	axes := specAxes(spec)
	if len(axes) != 2 || axes[0].Name != "a" || axes[1].Name != "b" {
		t.Fatalf("axes %v: want a then b, parameters without values skipped", axes)
	}
	if len(axes[0].Values) != 3 || len(axes[1].Values) != 2 {
		t.Fatalf("axes %v: value lists not carried over", axes)
	}
}
