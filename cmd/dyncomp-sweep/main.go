// Command dyncomp-sweep explores a design space: it expands a grid of
// named parameter axes, builds one architecture per grid point from a
// registered scenario, and evaluates every point concurrently with any
// registered engine, deriving each structural shape's temporal
// dependency graph only once.
//
//	dyncomp-sweep -scenario pipeline -axes "xsize=6,10,20;tokens=1000" -workers 8
//	dyncomp-sweep -scenario didactic -axes "stages=1:4:1;period=800,1200" -baseline
//	dyncomp-sweep -scenario forkjoin -engine hybrid -axes "workers=2:6:1;tokens=1000"
//	dyncomp-sweep -scenario lte -axes "symbols=1000,2000" -format json
//	dyncomp-sweep -scenario chain -axes "period=1100:1700:40;tokens=250" -tolerance 0.01 -verify
//	dyncomp-sweep -arch soc.json
//	dyncomp-sweep -arch soc.json -optimize -objective final_time -constraint "power<=300;area<=12"
//	dyncomp-sweep -list
//
// -arch sweeps an inline JSON architecture (docs/MODEL_FORMAT.md)
// instead of a registered scenario; without -axes, the grid spans the
// candidate values the spec's parameters declare. -optimize (requires
// -arch) searches that design space for the Pareto front of -objective
// (cycle_mean | final_time) against the spec's analytic cost metrics,
// under the -constraint budgets ("metric<=max", semicolon-separated);
// -budget caps its exact simulations and -exhaustive forces brute
// force.
//
// -list prints the full engine × scenario matrix: every engine
// registered in the engine registry and every scenario in the scenario
// registry, with its parameter names. Any engine runs any scenario.
//
// Axis syntax: semicolon-separated "name=v1,v2,..." lists, where each
// item is an integer or a lo:hi:step range (inclusive).
//
// -engine selects the per-point executor by registered name (default
// equivalent). The hybrid engine abstracts the scenario's canonical
// function group, or the -group override ("F3,F4"); -window tunes the
// adaptive engine's steady-state confirmation window and -confidence
// its confidence-driven detector (used when -window is 0). -format
// selects table (default), csv or json; -baseline pairs every point
// with an event-driven reference run and reports event ratios and
// speed-ups.
//
// -tolerance enables surrogate-guided sampling: the sweep simulates a
// seed subset of the grid exactly, fits an analytical model per metric,
// and predicts the remaining points once the model's cross-validated
// error is within the tolerance. Predicted rows are flagged in every
// output format. -sample caps the number of exact simulations; -verify
// re-simulates every predicted point afterwards and reports the maximum
// observed prediction error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dyncomp/internal/archjson"
	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/optimize"
	"dyncomp/internal/sim"
	"dyncomp/internal/sweep"
	"dyncomp/internal/zoo"

	// The LTE case study registers its scenario in init; the surrogate
	// package registers the sampling driver behind -tolerance.
	_ "dyncomp/internal/lte"
	_ "dyncomp/internal/surrogate"
)

func main() {
	scenario := flag.String("scenario", "pipeline", "architecture scenario: "+strings.Join(zoo.ScenarioNames(), "|"))
	archFile := flag.String("arch", "", "inline JSON architecture file (instead of -scenario)")
	optimizeFlag := flag.Bool("optimize", false, "search the -arch design space for the Pareto front instead of sweeping")
	objective := flag.String("objective", "", "optimizer objective: cycle_mean|final_time (default cycle_mean)")
	constraint := flag.String("constraint", "", `optimizer budgets, e.g. "power<=300;area<=12"`)
	budget := flag.Int("budget", 0, "optimizer cap on exact simulations (0: no cap)")
	exhaustive := flag.Bool("exhaustive", false, "optimizer brute force: simulate every feasible point")
	axesSpec := flag.String("axes", "", `grid axes, e.g. "xsize=6,10,20;tokens=500:2000:500"`)
	workers := flag.Int("workers", 0, "worker-pool size (0: all processors)")
	batch := flag.Int("batch", 0, "batched-evaluation lane width for same-shape points (0: per-point)")
	engName := flag.String("engine", sweep.DefaultEngine, "per-point executor: "+strings.Join(engine.Names(), "|"))
	group := flag.String("group", "", `functions the hybrid engine abstracts, comma-separated (default: the scenario's canonical group)`)
	window := flag.Int("window", 0, "adaptive steady-state window in iterations (0: confidence-driven detector)")
	confidence := flag.Float64("confidence", 0, "adaptive detector confidence threshold in (0,1) (0: engine default)")
	tolerance := flag.Float64("tolerance", 0, "relative prediction tolerance enabling surrogate-guided sampling (0: simulate every point)")
	sample := flag.Int("sample", 0, "cap on exact simulations when sampling (0: no cap)")
	verify := flag.Bool("verify", false, "re-simulate predicted points and report the observed error")
	baseline := flag.Bool("baseline", false, "pair every point with a reference-executor run")
	reduce := flag.Bool("reduce", false, "prune value-redundant arcs from derived graphs")
	limit := flag.Int64("limit", 0, "simulated-time bound per point in ns (0: to completion)")
	format := flag.String("format", "table", "output format: table|csv|json")
	list := flag.Bool("list", false, "print the engine × scenario matrix and exit")
	flag.Parse()

	if *list {
		printMatrix(os.Stdout)
		return
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (table|csv|json)", *format))
	}
	if _, err := engine.Lookup(*engName); err != nil {
		fatal(err)
	}
	scenarioSet := false
	flag.Visit(func(f *flag.Flag) { scenarioSet = scenarioSet || f.Name == "scenario" })

	var spec *archjson.Spec
	if *archFile != "" {
		if scenarioSet {
			fatal(fmt.Errorf("-arch and -scenario are mutually exclusive"))
		}
		data, err := os.ReadFile(*archFile)
		if err != nil {
			fatal(err)
		}
		if spec, err = archjson.Decode(data); err != nil {
			fatal(err)
		}
	}
	if *optimizeFlag {
		if spec == nil {
			fatal(fmt.Errorf("-optimize requires -arch (the optimizer searches a spec's declared parameter values)"))
		}
		cons, err := parseConstraints(*constraint)
		if err != nil {
			fatal(err)
		}
		grp := parseGroup(*group)
		if *engName == "hybrid" && grp == nil {
			grp = spec.CanonicalGroup()
		}
		res, err := optimize.Run(context.Background(), spec, optimize.Options{
			Engine:      *engName,
			Workers:     *workers,
			BatchWidth:  *batch,
			Objective:   *objective,
			Constraints: cons,
			Budget:      *budget,
			Exhaustive:  *exhaustive,
			Group:       grp,
		})
		if err != nil {
			fatal(err)
		}
		if err := writeFront(os.Stdout, res, *format); err != nil {
			fatal(err)
		}
		return
	}

	var gen sweep.Generator
	var axes []sweep.Axis
	var sc zoo.Scenario
	if spec != nil {
		gen = func(p sweep.Point) (*model.Architecture, error) { return spec.Build(p) }
		if strings.TrimSpace(*axesSpec) == "" {
			// Default grid: the candidate values the spec declares.
			axes = specAxes(spec)
			if len(axes) == 0 {
				fatal(fmt.Errorf("architecture %q declares no parameter values; give -axes", spec.Name))
			}
		} else {
			var err error
			if axes, err = parseAxes(*axesSpec); err != nil {
				fatal(err)
			}
			axisParams := map[string]int64{}
			for _, ax := range axes {
				axisParams[ax.Name] = ax.Values[0]
			}
			if err := spec.CheckParams(axisParams); err != nil {
				fatal(err)
			}
		}
	} else {
		var err error
		if sc, err = zoo.LookupScenario(*scenario); err != nil {
			fatal(err)
		}
		gen = func(p sweep.Point) (*model.Architecture, error) { return sc.Build(p), nil }
		if axes, err = parseAxes(*axesSpec); err != nil {
			fatal(err)
		}
	}

	if *tolerance < 0 {
		fatal(fmt.Errorf("-tolerance must be >= 0, got %g", *tolerance))
	}
	if (*sample > 0 || *verify) && *tolerance == 0 {
		fatal(fmt.Errorf("-sample and -verify require -tolerance > 0"))
	}

	opts := sweep.Options{
		Workers:    *workers,
		Engine:     *engName,
		Baseline:   *baseline,
		Window:     *window,
		Confidence: *confidence,
		BatchWidth: *batch,
		Sample: sweep.SampleOptions{
			Tolerance: *tolerance,
			Budget:    *sample,
			Verify:    *verify,
		},
	}
	if *engName == "hybrid" {
		switch {
		case *group != "":
			opts.Group = parseGroup(*group)
		case spec != nil:
			// An inline spec's structure is point-independent: one group
			// serves every point.
			if opts.Group = spec.CanonicalGroup(); opts.Group == nil {
				fatal(fmt.Errorf("architecture %q has no canonical hybrid group; use -group", spec.Name))
			}
		case sc.HybridGroup == nil:
			fatal(fmt.Errorf("scenario %q has no canonical hybrid group; use -group", sc.Name))
		default:
			// Per point: axes may change the structure and with it the
			// group (e.g. sweeping the fork-join worker count).
			opts.GroupFor = func(p sweep.Point) []string { return sc.HybridGroup(p) }
		}
	}
	opts.Derive.Reduce = *reduce
	if *limit > 0 {
		opts.Limit = sim.Time(*limit)
	}
	res, err := sweep.Run(axes, gen, opts)
	if err != nil {
		fatal(err)
	}

	adaptiveEngine := *engName == "adaptive"
	sampled := opts.Sample.Enabled()
	switch *format {
	case "table":
		err = writeTable(os.Stdout, res, *baseline, adaptiveEngine, sampled)
	case "csv":
		err = writeCSV(os.Stdout, res, *baseline, adaptiveEngine, sampled)
	case "json":
		err = writeJSON(os.Stdout, res)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if res.Stats.Failed > 0 {
		fmt.Fprintf(os.Stderr, "dyncomp-sweep: %d of %d points failed\n", res.Stats.Failed, res.Stats.Points)
		for _, pr := range res.Points {
			if pr.Err != nil {
				fmt.Fprintf(os.Stderr, "  %v\n", pr.Err)
			}
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dyncomp-sweep: %v\n", err)
	os.Exit(1)
}

// printMatrix lists every registered engine and scenario: the CLI runs
// any combination of them.
func printMatrix(w *os.File) {
	fmt.Fprintln(w, "engines (any engine runs any scenario):")
	for _, n := range engine.Names() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "scenarios:")
	for _, sc := range zoo.Scenarios() {
		hybrid := ""
		if sc.HybridGroup == nil {
			hybrid = "   (no canonical hybrid group: -group required for -engine hybrid)"
		}
		fmt.Fprintf(w, "  %-10s %s\n", sc.Name, sc.Desc)
		fmt.Fprintf(w, "  %-10s params: %s%s\n", "", sc.ParamsHelp, hybrid)
	}
}

// parseGroup splits the -group override into function names.
func parseGroup(spec string) []string {
	var group []string
	for _, f := range strings.Split(spec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			group = append(group, f)
		}
	}
	return group
}

// specAxes turns a spec's declared candidate values into grid axes,
// in declaration order.
func specAxes(spec *archjson.Spec) []sweep.Axis {
	var axes []sweep.Axis
	for i := range spec.Parameters {
		p := &spec.Parameters[i]
		if len(p.Values) > 0 {
			axes = append(axes, sweep.Axis{Name: p.Name, Values: append([]int64(nil), p.Values...)})
		}
	}
	return axes
}

// parseConstraints parses "power<=300;area<=12" into optimizer budgets.
func parseConstraints(spec string) ([]optimize.Constraint, error) {
	var cons []optimize.Constraint
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		metric, max, ok := strings.Cut(part, "<=")
		if !ok {
			return nil, fmt.Errorf("constraint %q: want metric<=max", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(max), 64)
		if err != nil {
			return nil, fmt.Errorf("constraint %q: %w", part, err)
		}
		cons = append(cons, optimize.Constraint{Metric: strings.TrimSpace(metric), Max: v})
	}
	return cons, nil
}

// writeFront renders an optimization result: the Pareto front first,
// then the search summary.
func writeFront(w *os.File, res *optimize.Result, format string) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	var names []string
	if len(res.Front) > 0 {
		for n := range res.Front[0].Params {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	if format == "csv" {
		cols := append(append([]string{}, names...), "objective", "area", "power", "origin")
		fmt.Fprintln(w, strings.Join(cols, ","))
		for _, p := range res.Front {
			row := make([]string, 0, len(cols))
			for _, n := range names {
				row = append(row, strconv.FormatInt(p.Params[n], 10))
			}
			row = append(row,
				fmt.Sprintf("%.4f", p.Objective),
				fmt.Sprintf("%.4f", p.Area),
				fmt.Sprintf("%.4f", p.Power),
				p.Origin)
			fmt.Fprintln(w, strings.Join(row, ","))
		}
		return nil
	}
	for _, n := range names {
		fmt.Fprintf(w, "%-10s ", n)
	}
	fmt.Fprintf(w, "%14s %10s %10s %-10s\n", res.Objective, "area", "power", "origin")
	for _, p := range res.Front {
		for _, n := range names {
			fmt.Fprintf(w, "%-10d ", p.Params[n])
		}
		fmt.Fprintf(w, "%14.2f %10.2f %10.2f %-10s\n", p.Objective, p.Area, p.Power, p.Origin)
	}
	fmt.Fprintf(w, "\n%d front, %d feasible of %d grid points, %d simulated", len(res.Front), res.Feasible, res.GridPoints, res.Simulated)
	if res.Exhaustive {
		fmt.Fprintf(w, ", exhaustive")
	}
	if !res.Converged {
		fmt.Fprintf(w, ", budget exhausted before convergence")
	}
	fmt.Fprintln(w)
	return nil
}

// parseAxes parses "a=1,2,3;b=10:30:10" into grid axes.
func parseAxes(spec string) ([]sweep.Axis, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("no axes given (-axes \"name=v1,v2,...\")")
	}
	var axes []sweep.Axis
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, list, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("axis %q: want name=values", part)
		}
		ax := sweep.Axis{Name: strings.TrimSpace(name)}
		for _, item := range strings.Split(list, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			vals, err := parseItem(item)
			if err != nil {
				return nil, fmt.Errorf("axis %q: %w", ax.Name, err)
			}
			ax.Values = append(ax.Values, vals...)
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// parseItem parses one integer or one inclusive lo:hi:step range.
func parseItem(item string) ([]int64, error) {
	if !strings.Contains(item, ":") {
		v, err := strconv.ParseInt(item, 10, 64)
		if err != nil {
			return nil, err
		}
		return []int64{v}, nil
	}
	parts := strings.Split(item, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("range %q: want lo:hi:step", item)
	}
	var lo, hi, step int64
	for i, dst := range []*int64{&lo, &hi, &step} {
		v, err := strconv.ParseInt(strings.TrimSpace(parts[i]), 10, 64)
		if err != nil {
			return nil, err
		}
		*dst = v
	}
	if step <= 0 || hi < lo {
		return nil, fmt.Errorf("range %q: want lo <= hi and step > 0", item)
	}
	var vals []int64
	for v := lo; v <= hi; v += step {
		vals = append(vals, v)
	}
	return vals, nil
}

func writeTable(w *os.File, res *sweep.Result, baseline, adaptive, sampled bool) error {
	if len(res.Points) == 0 {
		return nil
	}
	for _, n := range res.Points[0].Point.Names {
		fmt.Fprintf(w, "%-10s ", n)
	}
	fmt.Fprintf(w, "%12s %12s %14s %8s %12s", "activations", "events", "final(ns)", "nodes", "wall")
	if adaptive {
		fmt.Fprintf(w, " %9s %9s", "switches", "fallbacks")
	}
	if baseline {
		fmt.Fprintf(w, " %12s %10s", "event ratio", "speed-up")
	}
	if sampled {
		fmt.Fprintf(w, " %-9s %10s", "source", "pred err")
	}
	fmt.Fprintln(w)
	for _, pr := range res.Points {
		if pr.Err != nil {
			fmt.Fprintf(w, "%s: ERROR %v\n", pr.Point, pr.Err)
			continue
		}
		for _, v := range pr.Point.Values {
			fmt.Fprintf(w, "%-10d ", v)
		}
		fmt.Fprintf(w, "%12d %12d %14d %8d %12s",
			pr.Run.Activations, pr.Run.Events, pr.Run.FinalTimeNs, pr.Run.GraphNodes, pr.Run.Wall)
		if adaptive {
			fmt.Fprintf(w, " %9d %9d", pr.Run.Switches, pr.Run.Fallbacks)
		}
		if baseline {
			fmt.Fprintf(w, " %12.2f %10.2f", pr.EventRatio, pr.SpeedUp)
		}
		if sampled {
			// Observed error when -verify measured one, declared bound
			// otherwise; simulated rows carry no error at all.
			switch pr.Source {
			case sweep.SourcePredicted:
				e := pr.PredBound
				if pr.PredObserved > 0 {
					e = pr.PredObserved
				}
				fmt.Fprintf(w, " %-9s %10.4f", pr.Source, e)
			default:
				fmt.Fprintf(w, " %-9s %10s", pr.Source, "-")
			}
		}
		fmt.Fprintln(w)
	}
	st := res.Stats
	fmt.Fprintf(w, "\n%d points, %d shapes, %d derivations, %d cache hits, %s total\n",
		st.Points, st.Shapes, st.DeriveCalls, st.CacheHits, st.Wall)
	if sampled {
		fmt.Fprintf(w, "sampled     %d simulated, %d predicted, max prediction error %.4f\n",
			st.SimulatedPoints, st.PredictedPoints, st.MaxPredError)
	}
	if baseline && st.SpeedUp.N > 0 {
		fmt.Fprintf(w, "speed-up    min %.2f  max %.2f  mean %.2f  geomean %.2f\n",
			st.SpeedUp.Min, st.SpeedUp.Max, st.SpeedUp.Mean, st.SpeedUp.Geomean)
		fmt.Fprintf(w, "event ratio min %.2f  max %.2f  mean %.2f  geomean %.2f\n",
			st.EventRatio.Min, st.EventRatio.Max, st.EventRatio.Mean, st.EventRatio.Geomean)
	}
	return nil
}

func writeCSV(w *os.File, res *sweep.Result, baseline, adaptive, sampled bool) error {
	if len(res.Points) == 0 {
		return nil
	}
	cols := append([]string{}, res.Points[0].Point.Names...)
	cols = append(cols, "activations", "events", "final_ns", "graph_nodes", "wall_ns")
	if adaptive {
		cols = append(cols, "switches", "fallbacks")
	}
	if baseline {
		cols = append(cols, "baseline_activations", "baseline_wall_ns", "event_ratio", "speed_up")
	}
	if sampled {
		cols = append(cols, "source", "pred_bound", "pred_observed")
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, pr := range res.Points {
		if pr.Err != nil {
			continue
		}
		row := make([]string, 0, len(cols))
		for _, v := range pr.Point.Values {
			row = append(row, strconv.FormatInt(v, 10))
		}
		row = append(row,
			strconv.FormatInt(pr.Run.Activations, 10),
			strconv.FormatInt(pr.Run.Events, 10),
			strconv.FormatInt(pr.Run.FinalTimeNs, 10),
			strconv.Itoa(pr.Run.GraphNodes),
			strconv.FormatInt(pr.Run.Wall.Nanoseconds(), 10))
		if adaptive {
			row = append(row, strconv.Itoa(pr.Run.Switches), strconv.Itoa(pr.Run.Fallbacks))
		}
		if baseline && pr.Baseline != nil {
			row = append(row,
				strconv.FormatInt(pr.Baseline.Activations, 10),
				strconv.FormatInt(pr.Baseline.Wall.Nanoseconds(), 10),
				fmt.Sprintf("%.4f", pr.EventRatio),
				fmt.Sprintf("%.4f", pr.SpeedUp))
		}
		if sampled {
			row = append(row, pr.Source,
				fmt.Sprintf("%.6f", pr.PredBound),
				fmt.Sprintf("%.6f", pr.PredObserved))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	return nil
}

type jsonPoint struct {
	Params       map[string]int64 `json:"params"`
	Activations  int64            `json:"activations"`
	Events       int64            `json:"events"`
	FinalTimeNs  int64            `json:"final_time_ns"`
	GraphNodes   int              `json:"graph_nodes"`
	WallNs       int64            `json:"wall_ns"`
	Switches     int              `json:"switches,omitempty"`
	Fallbacks    int              `json:"fallbacks,omitempty"`
	EventRatio   float64          `json:"event_ratio,omitempty"`
	SpeedUp      float64          `json:"speed_up,omitempty"`
	Source       string           `json:"source,omitempty"`
	PredBound    float64          `json:"pred_bound,omitempty"`
	PredObserved float64          `json:"pred_observed,omitempty"`
	Error        string           `json:"error,omitempty"`
}

func writeJSON(w *os.File, res *sweep.Result) error {
	out := struct {
		Points []jsonPoint `json:"points"`
		Stats  sweep.Stats `json:"stats"`
	}{Stats: res.Stats}
	for _, pr := range res.Points {
		jp := jsonPoint{Params: map[string]int64{}}
		for i, n := range pr.Point.Names {
			jp.Params[n] = pr.Point.Values[i]
		}
		if pr.Err != nil {
			jp.Error = pr.Err.Error()
		} else {
			jp.Activations = pr.Run.Activations
			jp.Events = pr.Run.Events
			jp.FinalTimeNs = pr.Run.FinalTimeNs
			jp.GraphNodes = pr.Run.GraphNodes
			jp.WallNs = pr.Run.Wall.Nanoseconds()
			jp.Switches = pr.Run.Switches
			jp.Fallbacks = pr.Run.Fallbacks
			jp.EventRatio = pr.EventRatio
			jp.SpeedUp = pr.SpeedUp
			jp.Source = pr.Source
			jp.PredBound = pr.PredBound
			jp.PredObserved = pr.PredObserved
		}
		out.Points = append(out.Points, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
