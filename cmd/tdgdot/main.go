// Command tdgdot derives the temporal dependency graph of a built-in
// architecture and writes it as Graphviz DOT, in the style of the paper's
// Fig. 3:
//
//	tdgdot -model didactic          # the Fig. 1 example (equations (1)-(6))
//	tdgdot -model chain -stages 3   # chained didactic stages
//	tdgdot -model lte               # the LTE receiver case study
//	tdgdot -model pipeline -x 10    # a synthetic pipeline
//	tdgdot -model didactic -reduce  # with value-redundant arcs pruned
package main

import (
	"flag"
	"fmt"
	"os"

	"dyncomp/internal/derive"
	"dyncomp/internal/lte"
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

func main() {
	name := flag.String("model", "didactic", "architecture: didactic|chain|pipeline|lte")
	stages := flag.Int("stages", 2, "chain stages")
	x := flag.Int("x", 6, "pipeline X size")
	reduce := flag.Bool("reduce", false, "prune value-redundant arcs")
	flag.Parse()

	var a *model.Architecture
	switch *name {
	case "didactic":
		a = zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 100, Seed: 1})
	case "chain":
		a = zoo.DidacticChain(*stages, zoo.DidacticSpec{Tokens: 1, Period: 100, Seed: 1})
	case "pipeline":
		a = zoo.Pipeline(zoo.PipelineSpec{XSize: *x, Tokens: 1, Period: 100, Seed: 1})
	case "lte":
		a = lte.Receiver(lte.Spec{Symbols: 1, Seed: 1})
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *name)
		os.Exit(2)
	}

	res, err := derive.Derive(a, derive.Options{Reduce: *reduce})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes (%d with delayed references)\n",
		a.Name, res.Graph.NodeCount(), res.Graph.NodeCountWithDelays())
	if err := res.Graph.WriteDOT(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
