// Command dyncomp-coord runs the distributed sweep coordinator: the
// control plane of a dyncomp-serve fleet. It accepts the same POST
// /v1/sweeps job API as a single server, partitions each grid by
// structural shape via consistent hashing (same-shape cohorts land on
// the same worker, keeping its derivation cache hot and its batched
// lanes full), dispatches chunks to the workers' POST /v1/chunks
// endpoint, and merges the results back bit-identical to a
// single-process sweep. See docs/SERVING.md ("Distributed sweeps") for
// the API and topology.
//
//	dyncomp-coord -addr :9090 -workers http://w1:8080,http://w2:8080 -store /var/lib/dyncomp/jobs.ndjson
//
//	curl -s -X POST localhost:9090/v1/sweeps -d '{"scenario":"didactic","axes":[{"name":"seed","values":[1,2,3]}]}'
//	curl -s localhost:9090/v1/sweeps/job-000001/results   # NDJSON point stream
//	curl -s localhost:9090/v1/sweeps/job-000001/events    # SSE progress
//
// Workers may also join later by POSTing their URL to /v1/workers (see
// dyncomp-serve's -register flag). With -addr host:0 the kernel picks a
// free port; the bound address is printed as "listening on <addr>".
//
// Job state persists in the -store file: a restarted coordinator
// resumes in-flight jobs from their last completed chunk and still
// answers GET /v1/sweeps/{id} for finished ones. Without -store the
// coordinator is memory-only.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight chunk
// dispatches are abandoned (their jobs resume after a restart), the
// listener drains, and the store is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyncomp/internal/serve"
	"dyncomp/internal/shard"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address (host:0 picks a free port)")
	workers := flag.String("workers", "", "comma-separated dyncomp-serve worker base URLs")
	storePath := flag.String("store", "", "append-only job store file (empty: memory-only)")
	chunkPoints := flag.Int("chunk-points", 16, "target grid points per dispatched chunk")
	retries := flag.Int("retries", 3, "workers tried per chunk before its points fail")
	chunkTimeout := flag.Duration("chunk-timeout", 0, "per-attempt chunk dispatch timeout (0: none)")
	dispatch := flag.Int("dispatch", 4, "in-flight chunks per job")
	batchWidth := flag.Int("batch-width", 0, "default batched-evaluation lane width pinned into jobs (0: per-point)")
	maxPoints := flag.Int("max-grid-points", 100000, "largest accepted sweep grid")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	breakerThreshold := flag.Int("breaker-threshold", 1, "consecutive dispatch failures before a worker's breaker opens")
	probeBase := flag.Duration("probe-base", 500*time.Millisecond, "first /readyz probe delay for an open breaker")
	probeMax := flag.Duration("probe-max", 30*time.Second, "probe backoff ceiling for an open breaker")
	jobTTL := flag.Duration("job-ttl", 0, "evict settled jobs this long after finishing (0: keep forever)")
	maxJobs := flag.Int("max-jobs", 0, "retained jobs before the oldest settled ones are evicted (0: unbounded)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 0, "per-write deadline on SSE/NDJSON streams (0: default 30s, <0: off)")
	logRequests := flag.Bool("log", false, "structured request log on stderr")
	flag.Parse()

	var fleet []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			fleet = append(fleet, strings.TrimRight(w, "/"))
		}
	}

	var logger *slog.Logger
	if *logRequests {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	coord, err := shard.New(shard.Config{
		Workers:      fleet,
		StorePath:    *storePath,
		ChunkPoints:  *chunkPoints,
		Retries:      *retries,
		ChunkTimeout: *chunkTimeout,
		Dispatch:     *dispatch,
		Defaults: serve.SweepDefaults{
			BatchWidth:    *batchWidth,
			MaxGridPoints: *maxPoints,
		},
		BreakerThreshold:   *breakerThreshold,
		ProbeBase:          *probeBase,
		ProbeMax:           *probeMax,
		JobTTL:             *jobTTL,
		MaxJobs:            *maxJobs,
		StreamWriteTimeout: *streamWriteTimeout,
		Logger:             logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncomp-coord: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncomp-coord: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dyncomp-coord: %v\n", err)
		coord.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("shutting down")
	// Abandon in-flight dispatches first: running jobs stay unsettled in
	// the store (a restart resumes them), and their SSE/NDJSON streams
	// end, so the HTTP drain below empties fast.
	coord.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dyncomp-coord: shutdown: %v\n", err)
	}
	fmt.Println("bye")
}
