// Command dyncomp-exp regenerates the tables and figures of the paper's
// evaluation section:
//
//	dyncomp-exp -exp table1    # Table I: speed-up on Examples 1-4
//	dyncomp-exp -exp fig5      # Fig. 5: speed-up vs graph complexity
//	dyncomp-exp -exp fig6      # Fig. 6: LTE receiver observations
//	dyncomp-exp -exp casestudy # Section V speed-up (20000 symbols)
//	dyncomp-exp -exp accuracy  # bit-exactness check (-engine picks the engine under test)
//	dyncomp-exp -exp adaptive  # all registered engines on the phase-changing workload
//	dyncomp-exp -exp quantum   # loosely-timed trade-off ablation
//	dyncomp-exp -exp all
//
// The -tokens flag scales the workloads (the paper uses 20000; smaller
// values give faster, noisier runs). The -engine flag selects which
// registered engine the accuracy experiment compares against the
// reference executor (the hybrid engine abstracts the didactic {F3, F4}
// group). With -csv DIR the Fig. 6 series are also written as CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dyncomp/internal/engine"
	"dyncomp/internal/exp"
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1|fig5|fig6|casestudy|accuracy|adaptive|quantum|all")
	engName := flag.String("engine", "equivalent", "engine under test for -exp accuracy: "+strings.Join(engine.Names(), "|"))
	tokens := flag.Int("tokens", 20000, "workload size (tokens/symbols)")
	frames := flag.Int("frames", 2, "LTE frames for fig6")
	csvDir := flag.String("csv", "", "directory for CSV output (fig6)")
	flag.Parse()

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("accuracy", func() error {
		sc, err := zoo.LookupScenario("didactic")
		if err != nil {
			return err
		}
		group := sc.GroupFor(*engName, zoo.ParamMap{})
		_, err = exp.AccuracyReport(func() *model.Architecture {
			return zoo.Didactic(zoo.DidacticSpec{Tokens: *tokens, Period: 1200, Seed: 41})
		}, *engName, group, os.Stdout)
		return err
	})
	run("table1", func() error {
		_, err := exp.Table1(*tokens, os.Stdout)
		return err
	})
	run("fig5", func() error {
		_, err := exp.Fig5(*tokens/4, nil, nil, os.Stdout)
		return err
	})
	run("fig6", func() error {
		data, err := exp.Fig6(*frames, os.Stdout)
		if err != nil {
			return err
		}
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		dsp, err := os.Create(filepath.Join(*csvDir, "fig6_dsp.csv"))
		if err != nil {
			return err
		}
		defer dsp.Close()
		if err := data.DSP.WriteCSV(dsp); err != nil {
			return err
		}
		hw, err := os.Create(filepath.Join(*csvDir, "fig6_hw.csv"))
		if err != nil {
			return err
		}
		defer hw.Close()
		return data.HW.WriteCSV(hw)
	})
	run("casestudy", func() error {
		_, err := exp.CaseStudy(*tokens, os.Stdout)
		return err
	})
	run("adaptive", func() error {
		_, err := exp.AdaptiveCompare(*tokens, os.Stdout)
		return err
	})
	run("quantum", func() error {
		_, err := exp.QuantumSweep(*tokens/4, nil, os.Stdout)
		return err
	})
}
