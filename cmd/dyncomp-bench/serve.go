package main

// The HTTP load benchmark: an in-process dyncomp-serve instance
// hammered by concurrent clients, reported as BENCH_serve.json. Two
// phases: an open-throttle run measuring synchronous-run throughput and
// the derivation-cache hit ratio, and a shed run with MaxInFlight 1
// that forces the admission layer to reject most of the offered load.
// Wall-clock throughput drifts with the host, so the -serve-compare
// guard checks only the deterministic invariants: zero unstructured
// failures anywhere and a shedding path that actually shed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyncomp/internal/chaos"
	"dyncomp/internal/serve"
)

// servePhase is one traffic phase of the load benchmark.
type servePhase struct {
	Requests     int64            `json:"requests"`
	OK           int64            `json:"ok"`
	Rejected     map[string]int64 `json:"rejected,omitempty"` // by envelope code
	Unstructured int64            `json:"unstructured"`
	RunsPerSec   float64          `json:"runs_per_sec,omitempty"`
	ShedRatio    float64          `json:"shed_ratio,omitempty"`
}

type serveReport struct {
	Clients       int        `json:"clients"`
	DurationMs    int64      `json:"duration_ms"`
	Load          servePhase `json:"load"`
	CacheHitRatio float64    `json:"cache_hit_ratio"`
	Shed          servePhase `json:"shed"`
}

// hammer drives clients concurrent POST /v1/run loops against url for
// dur, rotating params across a small shape set so the derivation cache
// sees repeats, and classifies every response through the chaos
// envelope checker.
func hammer(url string, clients int, dur time.Duration) servePhase {
	ph := servePhase{Rejected: map[string]int64{}}
	var (
		mu           sync.Mutex
		requests, ok atomic.Int64
		unstructured atomic.Int64
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for n := 0; time.Now().Before(deadline); n++ {
				tokens := 20 * (1 + (c+n)%4)
				body := fmt.Sprintf(`{"scenario":"pipeline","params":{"tokens":%d}}`, tokens)
				resp, err := client.Post(url+"/v1/run", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					unstructured.Add(1)
					continue
				}
				requests.Add(1)
				code, cerr := chaos.CheckEnvelope(resp)
				switch {
				case cerr != nil:
					unstructured.Add(1)
				case code == "":
					ok.Add(1)
				default:
					mu.Lock()
					ph.Rejected[code]++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	ph.Requests = requests.Load()
	ph.OK = ok.Load()
	ph.Unstructured = unstructured.Load()
	return ph
}

// metricValue scrapes one un-labeled series from a /metrics body.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, found := strings.CutPrefix(line, name+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// serveLoadReport runs both phases against fresh in-process servers.
func serveLoadReport(clients int, dur time.Duration) serveReport {
	rep := serveReport{Clients: clients, DurationMs: dur.Milliseconds()}

	// Phase 1: open throttle. Throughput and cache behavior.
	s1 := serve.New(serve.Config{})
	ts1 := httptest.NewServer(s1.Handler())
	start := time.Now()
	rep.Load = hammer(ts1.URL, clients, dur)
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		rep.Load.RunsPerSec = float64(rep.Load.OK) / elapsed
	}
	resp, err := http.Get(ts1.URL + "/metrics")
	if err != nil {
		fatal(err)
	}
	rawMetrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatal(err)
	}
	metrics := string(rawMetrics)
	hits := metricValue(metrics, "dyncomp_serve_derive_cache_hits_total")
	misses := metricValue(metrics, "dyncomp_serve_derive_cache_misses_total")
	if hits+misses > 0 {
		rep.CacheHitRatio = hits / (hits + misses)
	}
	ts1.Close()
	s1.Close()

	// Phase 2: MaxInFlight 1 against the same offered load — the shed
	// path must reject with the structured overloaded envelope.
	s2 := serve.New(serve.Config{MaxInFlight: 1})
	ts2 := httptest.NewServer(s2.Handler())
	rep.Shed = hammer(ts2.URL, clients, dur)
	if rep.Shed.Requests > 0 {
		rep.Shed.ShedRatio = float64(rep.Shed.Rejected["overloaded"]) / float64(rep.Shed.Requests)
	}
	ts2.Close()
	s2.Close()
	return rep
}

// compareServe guards the load benchmark against a committed baseline.
// Throughput and ratios drift with the host, so only the deterministic
// resilience invariants are enforced: no request anywhere may produce
// an unstructured failure, and the shed phase must actually shed.
func compareServe(path string, fresh serveReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-serve-compare: %w", err)
	}
	var base serveReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-serve-compare %s: %w", path, err)
	}
	var bad []string
	if n := fresh.Load.Unstructured + fresh.Shed.Unstructured; n > 0 {
		bad = append(bad, fmt.Sprintf("%d unstructured failures under load (want 0)", n))
	}
	if fresh.Shed.Rejected["overloaded"] == 0 {
		bad = append(bad, "shed phase rejected nothing as overloaded")
	}
	if len(bad) > 0 {
		return fmt.Errorf("serve load benchmark regressed against %s:\n  %s",
			path, strings.Join(bad, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "dyncomp-bench: serve load invariants hold against %s\n", path)
	return nil
}
