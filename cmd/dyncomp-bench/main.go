// Command dyncomp-bench measures every registered engine on the
// didactic scenario and writes the results as JSON, one object per
// engine with nanoseconds per point (one point = one full run of the
// scenario, best of -reps) and the kernel work paid. CI runs it on
// every build and uploads BENCH_engines.json as an artifact, so the
// per-engine cost trend is trackable across commits.
//
// It also measures the ComputeInstant hot path — interpreted versus
// compiled Step cost per graph size, and the allocation profile of a
// full equivalent-model run — into BENCH_compute.json, tracking the
// compiled evaluator's speed-up and the zero-alloc run path.
//
// A third report, BENCH_sweep.json, measures surrogate-guided sweep
// sampling on the Table-I chain grids: how many points the sampler
// simulates exactly, how many it predicts, and the verified maximum
// prediction error — per chain depth at the default tolerance, and
// per simulation budget on one grid (the accuracy-vs-budget curve).
// Unlike wall times these numbers are deterministic, so -sweep-compare
// guards them tightly: a build that simulates more points or predicts
// worse than the committed baseline fails.
//
//	dyncomp-bench -tokens 2000 -reps 3 -o BENCH_engines.json -compute-o BENCH_compute.json
//	dyncomp-bench -sweep-o BENCH_sweep.json -sweep-compare BENCH_sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/sweep"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"

	// Link the four executors and the sweep-sampling driver into the
	// registries.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/hybrid"
	_ "dyncomp/internal/surrogate"
)

type engineBench struct {
	Engine      string `json:"engine"`
	NsPerPoint  int64  `json:"ns_per_point"` // best-of-reps wall time of one run
	Events      int64  `json:"events"`
	Activations int64  `json:"activations"`
	GraphNodes  int    `json:"graph_nodes,omitempty"`
	Switches    int    `json:"switches,omitempty"`
	Fallbacks   int    `json:"fallbacks,omitempty"`
}

type benchReport struct {
	Scenario string        `json:"scenario"`
	Tokens   int           `json:"tokens"`
	Reps     int           `json:"reps"`
	Engines  []engineBench `json:"engines"`
}

// computeBench is one graph size of the ComputeInstant benchmark.
type computeBench struct {
	Nodes         int     `json:"nodes"`
	InterpretedNs float64 `json:"interpreted_ns_per_step"`
	CompiledNs    float64 `json:"compiled_ns_per_step"`
	SpeedUp       float64 `json:"speed_up"`
}

// batchBench is one (graph size, lane width) cell of the batched
// ComputeInstant benchmark: the amortized cost of advancing one lane by
// one iteration inside an N-wide batch, and its speed-up over the
// per-point compiled evaluator of the same graph.
type batchBench struct {
	Nodes          int     `json:"nodes"`
	Width          int     `json:"width"`
	NsPerStepPoint float64 `json:"ns_per_step_point"`
	SpeedUp        float64 `json:"speed_up_vs_compiled"`
}

// runBench is the allocation/latency profile of core.Model.Run.
type runBench struct {
	Scenario     string  `json:"scenario"`
	Tokens       int     `json:"tokens"`
	NsPerRun     int64   `json:"ns_per_run"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	AllocsPerIt  float64 `json:"allocs_per_iteration"`
}

type computeReport struct {
	Steps    int            `json:"steps_per_measurement"`
	Sizes    []computeBench `json:"sizes"`
	Batched  []batchBench   `json:"batched"`
	ModelRun runBench       `json:"model_run"`
}

// sweepBench is one sampled sweep of the accuracy-vs-budget report:
// a Table-I chain grid evaluated with surrogate-guided sampling, with
// every predicted point re-simulated (Verify) so max_pred_error is the
// measured error, not the model's own bound.
type sweepBench struct {
	Scenario      string  `json:"scenario"`
	Stages        int64   `json:"stages"`
	Points        int     `json:"points"`
	Tolerance     float64 `json:"tolerance"`
	Budget        int     `json:"budget,omitempty"` // 0: tolerance-driven
	Simulated     int     `json:"simulated"`
	Predicted     int     `json:"predicted"`
	SimulatedFrac float64 `json:"simulated_frac"`
	MaxPredError  float64 `json:"max_pred_error"`
	WallNs        int64   `json:"wall_ns"`
}

type sweepReport struct {
	Axes        string       `json:"axes"` // human-readable grid description
	Tolerance   float64      `json:"tolerance"`
	TableI      []sweepBench `json:"table1"`       // per chain depth, tolerance-driven
	BudgetCurve []sweepBench `json:"budget_curve"` // stages=2 grid per budget cap
}

func main() {
	tokens := flag.Int("tokens", 2000, "didactic workload size in tokens")
	reps := flag.Int("reps", 3, "repetitions per engine (best wall time wins)")
	out := flag.String("o", "BENCH_engines.json", "output file (- for stdout)")
	computeOut := flag.String("compute-o", "BENCH_compute.json", "ComputeInstant benchmark output file (- for stdout, empty to skip)")
	steps := flag.Int("steps", 20000, "Step calls per ComputeInstant measurement")
	compare := flag.String("compare", "", "baseline BENCH_compute.json to guard against; exits 1 if compiled or batched ns/step regresses >10% at any size")
	sweepOut := flag.String("sweep-o", "BENCH_sweep.json", "sampled-sweep benchmark output file (- for stdout, empty to skip)")
	sweepCompare := flag.String("sweep-compare", "", "baseline BENCH_sweep.json to guard against; exits 1 if the sampler simulates more points or predicts worse")
	serveOut := flag.String("serve-o", "", "HTTP load benchmark output file (- for stdout, empty to skip)")
	serveCompare := flag.String("serve-compare", "", "baseline BENCH_serve.json to guard against; exits 1 on unstructured failures or a shed phase that never shed")
	serveClients := flag.Int("serve-clients", 8, "concurrent clients for the HTTP load benchmark")
	serveDuration := flag.Duration("serve-duration", 2*time.Second, "per-phase duration of the HTTP load benchmark")
	flag.Parse()

	if *reps < 1 {
		fatal(fmt.Errorf("-reps must be >= 1 (got %d)", *reps))
	}
	if *tokens < 1 {
		fatal(fmt.Errorf("-tokens must be >= 1 (got %d)", *tokens))
	}
	sc, err := zoo.LookupScenario("didactic")
	if err != nil {
		fatal(err)
	}
	params := zoo.ParamMap{"tokens": int64(*tokens)}
	report := benchReport{Scenario: sc.Name, Tokens: *tokens, Reps: *reps}
	ctx := context.Background()
	for _, name := range engine.Names() {
		eng, err := engine.Lookup(name)
		if err != nil {
			fatal(err)
		}
		opts := engine.Options{AbstractGroup: sc.GroupFor(name, params)}
		var best *engineBench
		for r := 0; r < *reps; r++ {
			res, err := eng.Run(ctx, sc.Build(params), opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			if best == nil || res.WallNs < best.NsPerPoint {
				best = &engineBench{
					Engine:      name,
					NsPerPoint:  res.WallNs,
					Events:      res.Events,
					Activations: res.Activations,
					GraphNodes:  res.GraphNodes,
					Switches:    res.Switches,
					Fallbacks:   res.Fallbacks,
				}
			}
		}
		report.Engines = append(report.Engines, *best)
	}

	writeJSON(*out, report)
	if *computeOut != "" {
		crep := computeInstantReport(*steps, *tokens)
		if *compare != "" {
			if err := compareCompute(*compare, crep); err != nil {
				writeJSON(*computeOut, crep)
				fatal(err)
			}
		}
		writeJSON(*computeOut, crep)
	}
	if *sweepOut != "" {
		srep := sweepSamplingReport()
		if *sweepCompare != "" {
			if err := compareSweep(*sweepCompare, srep); err != nil {
				writeJSON(*sweepOut, srep)
				fatal(err)
			}
		}
		writeJSON(*sweepOut, srep)
	}
	if *serveOut != "" {
		lrep := serveLoadReport(*serveClients, *serveDuration)
		if *serveCompare != "" {
			if err := compareServe(*serveCompare, lrep); err != nil {
				writeJSON(*serveOut, lrep)
				fatal(err)
			}
		}
		writeJSON(*serveOut, lrep)
	}
}

// sweepSamplingReport measures surrogate-guided sampling on the Table-I
// chain grids: a 16-point period axis in the source-dominated regime
// (the period exceeds every chain's aggregate compute time, so the
// metric surface is smooth — the regime the surrogate is for; kinked
// grids fall back to exhaustive simulation and are covered by the
// surrogate package's tests). Verify is on everywhere: max_pred_error
// is measured against exact re-simulation, never self-reported.
func sweepSamplingReport() sweepReport {
	const (
		tolerance   = 0.01
		sweepTokens = 250
		gridPoints  = 16
	)
	axes := []sweep.Axis{
		{Name: "period", Values: periodAxis(gridPoints)},
		{Name: "tokens", Values: []int64{sweepTokens}},
		{Name: "seed", Values: []int64{7}},
	}
	rep := sweepReport{
		Axes:      fmt.Sprintf("period=%d:%d:40; tokens=%d; seed=7", 1100, 1100+40*(gridPoints-1), sweepTokens),
		Tolerance: tolerance,
	}
	row := func(stages int64, budget int) sweepBench {
		gen := func(p sweep.Point) (*model.Architecture, error) {
			return zoo.DidacticChain(int(stages), zoo.DidacticSpec{
				Tokens: int(p.Get("tokens", sweepTokens)),
				Period: maxplus.T(p.Get("period", 1100)),
				Seed:   p.Get("seed", 7),
			}), nil
		}
		res, err := sweep.Run(axes, gen, sweep.Options{
			Sample: sweep.SampleOptions{Tolerance: tolerance, Budget: budget, Verify: true},
		})
		if err != nil {
			fatal(fmt.Errorf("sampled sweep (stages %d, budget %d): %w", stages, budget, err))
		}
		if res.Stats.Failed > 0 {
			fatal(fmt.Errorf("sampled sweep (stages %d, budget %d): %d points failed", stages, budget, res.Stats.Failed))
		}
		st := res.Stats
		return sweepBench{
			Scenario:      "chain",
			Stages:        stages,
			Points:        st.Points,
			Tolerance:     tolerance,
			Budget:        budget,
			Simulated:     st.SimulatedPoints,
			Predicted:     st.PredictedPoints,
			SimulatedFrac: float64(st.SimulatedPoints) / float64(st.Points),
			MaxPredError:  st.MaxPredError,
			WallNs:        st.Wall.Nanoseconds(),
		}
	}
	for stages := int64(1); stages <= 4; stages++ {
		rep.TableI = append(rep.TableI, row(stages, 0))
	}
	for _, budget := range []int{4, 6, 8, 10} {
		rep.BudgetCurve = append(rep.BudgetCurve, row(2, budget))
	}
	return rep
}

// periodAxis spans the source-dominated regime of the didactic chain;
// see sweepSamplingReport.
func periodAxis(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(1100 + 40*i)
	}
	return vals
}

// compareSweep guards the sampler against a committed baseline. The
// sampled-sweep numbers are deterministic (the grids are seeded and the
// surrogate has no randomness), so the guard is tight: every
// tolerance-driven row must keep its verified error within the
// tolerance while simulating at most 40% of the grid, and no row may
// simulate more points than the baseline plus one or predict worse than
// twice the baseline error.
func compareSweep(path string, fresh sweepReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-sweep-compare: %w", err)
	}
	var base sweepReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-sweep-compare %s: %w", path, err)
	}
	type key struct {
		stages int64
		budget int
	}
	baseRows := map[key]sweepBench{}
	for _, rows := range [][]sweepBench{base.TableI, base.BudgetCurve} {
		for _, r := range rows {
			baseRows[key{r.Stages, r.Budget}] = r
		}
	}
	var bad []string
	check := func(r sweepBench, toleranceDriven bool) {
		name := fmt.Sprintf("stages %d budget %d", r.Stages, r.Budget)
		if toleranceDriven {
			if r.MaxPredError > r.Tolerance {
				bad = append(bad, fmt.Sprintf("%s: verified error %.4f above tolerance %.4f", name, r.MaxPredError, r.Tolerance))
			}
			if r.SimulatedFrac > 0.40 {
				bad = append(bad, fmt.Sprintf("%s: simulated %.0f%% of the grid (want <= 40%%)", name, 100*r.SimulatedFrac))
			}
		}
		b, ok := baseRows[key{r.Stages, r.Budget}]
		if !ok {
			return
		}
		if r.Simulated > b.Simulated+1 {
			bad = append(bad, fmt.Sprintf("%s: simulated %d points vs baseline %d", name, r.Simulated, b.Simulated))
		}
		if limit := 2 * b.MaxPredError; r.MaxPredError > limit && r.MaxPredError > r.Tolerance {
			bad = append(bad, fmt.Sprintf("%s: verified error %.4f vs baseline %.4f", name, r.MaxPredError, b.MaxPredError))
		}
	}
	for _, r := range fresh.TableI {
		check(r, true)
	}
	for _, r := range fresh.BudgetCurve {
		check(r, false)
	}
	if len(bad) > 0 {
		return fmt.Errorf("sampled sweep regressed against %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "dyncomp-bench: sampled sweep within bounds of %s\n", path)
	return nil
}

// compareCompute guards the compiled ComputeInstant hot path against a
// committed baseline report. Absolute wall times drift with the host, so
// the fresh numbers are first normalized by the median interpreted-step
// ratio (fresh/baseline across sizes) — the interpreter is the
// machine-speed yardstick — and only then compared: a normalized
// compiled regression beyond 10% at any size, or a batched lane
// regression beyond 10% at any (size, width) cell, fails the build.
func compareCompute(path string, fresh computeReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var base computeReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	baseBySize := make(map[int]computeBench, len(base.Sizes))
	for _, cb := range base.Sizes {
		baseBySize[cb.Nodes] = cb
	}
	var ratios []float64
	for _, cb := range fresh.Sizes {
		if bb, ok := baseBySize[cb.Nodes]; ok && bb.InterpretedNs > 0 {
			ratios = append(ratios, cb.InterpretedNs/bb.InterpretedNs)
		}
	}
	if len(ratios) == 0 {
		return fmt.Errorf("-compare %s: no common sizes with the baseline", path)
	}
	sort.Float64s(ratios)
	hostScale := ratios[len(ratios)/2]
	var bad []string
	for _, cb := range fresh.Sizes {
		bb, ok := baseBySize[cb.Nodes]
		if !ok || bb.CompiledNs <= 0 {
			continue
		}
		norm := cb.CompiledNs / hostScale
		if norm > bb.CompiledNs*1.10 {
			bad = append(bad, fmt.Sprintf(
				"%d nodes: compiled %.1f ns/step (%.1f host-normalized) vs baseline %.1f (+%.0f%%)",
				cb.Nodes, cb.CompiledNs, norm, bb.CompiledNs, 100*(norm/bb.CompiledNs-1)))
		}
	}
	// The batched lane table shares the same yardstick: a regression in
	// any (size, width) cell means the amortized batched step got slower
	// relative to the machine, not that the machine got slower.
	type cell struct{ nodes, width int }
	baseBatched := make(map[cell]batchBench, len(base.Batched))
	for _, bb := range base.Batched {
		baseBatched[cell{bb.Nodes, bb.Width}] = bb
	}
	for _, fb := range fresh.Batched {
		bb, ok := baseBatched[cell{fb.Nodes, fb.Width}]
		if !ok || bb.NsPerStepPoint <= 0 {
			continue
		}
		norm := fb.NsPerStepPoint / hostScale
		if norm > bb.NsPerStepPoint*1.10 {
			bad = append(bad, fmt.Sprintf(
				"%d nodes x%d lanes: batched %.1f ns/step-point (%.1f host-normalized) vs baseline %.1f (+%.0f%%)",
				fb.Nodes, fb.Width, fb.NsPerStepPoint, norm, bb.NsPerStepPoint, 100*(norm/bb.NsPerStepPoint-1)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("ComputeInstant regressed beyond 10%% (host scale %.2f):\n  %s",
			hostScale, strings.Join(bad, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "dyncomp-bench: compiled and batched paths within 10%% of %s (host scale %.2f)\n", path, hostScale)
	return nil
}

// computeInstantReport measures the ComputeInstant hot path: interpreted
// vs compiled Step cost per graph size (the Fig. 5 padded didactic
// graphs), and the allocation profile of a full equivalent-model run of
// the case-study receiver shape (here the didactic scenario for
// comparability with the engine benchmark).
func computeInstantReport(steps, tokens int) computeReport {
	rep := computeReport{Steps: steps}
	for _, nodes := range []int{10, 100, 1000, 3000} {
		dres, err := derive.Derive(
			zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 100, Seed: 1}),
			derive.Options{PadNodes: nodes - 7})
		if err != nil {
			fatal(err)
		}
		iv, err := tdg.NewEvaluator(dres.Graph)
		if err != nil {
			fatal(err)
		}
		cv := dres.Program().NewEvaluator()
		cb := computeBench{
			Nodes:         nodes,
			InterpretedNs: stepCost(iv, steps),
			CompiledNs:    stepCost(cv, steps),
		}
		if cb.CompiledNs > 0 {
			cb.SpeedUp = cb.InterpretedNs / cb.CompiledNs
		}
		cv.Release()
		rep.Sizes = append(rep.Sizes, cb)
		for _, width := range []int{1, 4, 8, 16, 32} {
			bb := batchBench{
				Nodes:          nodes,
				Width:          width,
				NsPerStepPoint: batchStepCost(nodes, width, steps),
			}
			if bb.NsPerStepPoint > 0 {
				bb.SpeedUp = cb.CompiledNs / bb.NsPerStepPoint
			}
			rep.Batched = append(rep.Batched, bb)
		}
	}
	rep.ModelRun = modelRunCost(tokens)
	return rep
}

// stepCost times one evaluator over the given number of Step calls and
// returns the nanoseconds per call (best of 3 measurements).
func stepCost(ev *tdg.Evaluator, steps int) float64 {
	u := []maxplus.T{0}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < steps; i++ {
			u[0] = maxplus.T(i * 100)
			if _, err := ev.Step(u); err != nil {
				fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(steps)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// batchStepCost times an N-wide batch evaluator over enough batched
// steps to advance roughly the scalar measurement's point-iteration
// count, and returns the nanoseconds per step per lane (best of 3).
// The lanes are weight-lane rebinds of one derived shape, exactly what
// a batched sweep dispatches.
func batchStepCost(nodes, width, steps int) float64 {
	archs := make([]*model.Architecture, width)
	for l := range archs {
		archs[l] = zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: maxplus.T(100 + 10*l), Seed: int64(l + 1)})
	}
	lanes, err := derive.DeriveBatch(archs, derive.Options{PadNodes: nodes - 7})
	if err != nil {
		fatal(err)
	}
	progs := make([]*tdg.Program, width)
	for l, lane := range lanes {
		progs[l] = lane.Program()
	}
	be, err := tdg.NewBatchEvaluator(progs)
	if err != nil {
		fatal(err)
	}
	defer be.Release()
	nsteps := steps / width
	if nsteps < 500 {
		nsteps = 500
	}
	u := make([]maxplus.T, width)
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < nsteps; i++ {
			for lane := range u {
				u[lane] = maxplus.T(i * 100)
			}
			if _, err := be.Step(u); err != nil {
				fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(nsteps*width)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// modelRunCost measures one reusable equivalent model end to end:
// nanoseconds and heap allocations per Run (after a warmup run so
// pooled buffers are at steady capacity), and the allocation count
// amortized per iteration — zero when the steady-state loop is clean.
func modelRunCost(tokens int) runBench {
	dres, err := derive.Derive(
		zoo.Didactic(zoo.DidacticSpec{Tokens: tokens, Period: 1200, Seed: 41}),
		derive.Options{})
	if err != nil {
		fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		fatal(err)
	}
	if _, err := m.Run(core.Options{}); err != nil { // warmup
		fatal(err)
	}
	const reps = 5
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := m.Run(core.Options{}); err != nil {
			fatal(err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / reps
	return runBench{
		Scenario:     "didactic",
		Tokens:       tokens,
		NsPerRun:     wall.Nanoseconds() / reps,
		AllocsPerRun: allocs,
		AllocsPerIt:  allocs / float64(tokens),
	}
}

func writeJSON(path string, v interface{}) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dyncomp-bench: %v\n", err)
	os.Exit(1)
}
