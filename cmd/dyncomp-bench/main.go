// Command dyncomp-bench measures every registered engine on the
// didactic scenario and writes the results as JSON, one object per
// engine with nanoseconds per point (one point = one full run of the
// scenario, best of -reps) and the kernel work paid. CI runs it on
// every build and uploads BENCH_engines.json as an artifact, so the
// per-engine cost trend is trackable across commits.
//
//	dyncomp-bench -tokens 2000 -reps 3 -o BENCH_engines.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dyncomp/internal/engine"
	"dyncomp/internal/zoo"

	// Link the four executors into the registry.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
)

type engineBench struct {
	Engine      string `json:"engine"`
	NsPerPoint  int64  `json:"ns_per_point"` // best-of-reps wall time of one run
	Events      int64  `json:"events"`
	Activations int64  `json:"activations"`
	GraphNodes  int    `json:"graph_nodes,omitempty"`
	Switches    int    `json:"switches,omitempty"`
	Fallbacks   int    `json:"fallbacks,omitempty"`
}

type benchReport struct {
	Scenario string        `json:"scenario"`
	Tokens   int           `json:"tokens"`
	Reps     int           `json:"reps"`
	Engines  []engineBench `json:"engines"`
}

func main() {
	tokens := flag.Int("tokens", 2000, "didactic workload size in tokens")
	reps := flag.Int("reps", 3, "repetitions per engine (best wall time wins)")
	out := flag.String("o", "BENCH_engines.json", "output file (- for stdout)")
	flag.Parse()

	if *reps < 1 {
		fatal(fmt.Errorf("-reps must be >= 1 (got %d)", *reps))
	}
	if *tokens < 1 {
		fatal(fmt.Errorf("-tokens must be >= 1 (got %d)", *tokens))
	}
	sc, err := zoo.LookupScenario("didactic")
	if err != nil {
		fatal(err)
	}
	params := zoo.ParamMap{"tokens": int64(*tokens)}
	report := benchReport{Scenario: sc.Name, Tokens: *tokens, Reps: *reps}
	ctx := context.Background()
	for _, name := range engine.Names() {
		eng, err := engine.Lookup(name)
		if err != nil {
			fatal(err)
		}
		opts := engine.Options{AbstractGroup: sc.GroupFor(name, params)}
		var best *engineBench
		for r := 0; r < *reps; r++ {
			res, err := eng.Run(ctx, sc.Build(params), opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			if best == nil || res.WallNs < best.NsPerPoint {
				best = &engineBench{
					Engine:      name,
					NsPerPoint:  res.WallNs,
					Events:      res.Events,
					Activations: res.Activations,
					GraphNodes:  res.GraphNodes,
					Switches:    res.Switches,
					Fallbacks:   res.Fallbacks,
				}
			}
		}
		report.Engines = append(report.Engines, *best)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dyncomp-bench: %v\n", err)
	os.Exit(1)
}
