// Command dyncomp-bench measures every registered engine on the
// didactic scenario and writes the results as JSON, one object per
// engine with nanoseconds per point (one point = one full run of the
// scenario, best of -reps) and the kernel work paid. CI runs it on
// every build and uploads BENCH_engines.json as an artifact, so the
// per-engine cost trend is trackable across commits.
//
// It also measures the ComputeInstant hot path — interpreted versus
// compiled Step cost per graph size, and the allocation profile of a
// full equivalent-model run — into BENCH_compute.json, tracking the
// compiled evaluator's speed-up and the zero-alloc run path.
//
//	dyncomp-bench -tokens 2000 -reps 3 -o BENCH_engines.json -compute-o BENCH_compute.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"

	// Link the four executors into the registry.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/hybrid"
)

type engineBench struct {
	Engine      string `json:"engine"`
	NsPerPoint  int64  `json:"ns_per_point"` // best-of-reps wall time of one run
	Events      int64  `json:"events"`
	Activations int64  `json:"activations"`
	GraphNodes  int    `json:"graph_nodes,omitempty"`
	Switches    int    `json:"switches,omitempty"`
	Fallbacks   int    `json:"fallbacks,omitempty"`
}

type benchReport struct {
	Scenario string        `json:"scenario"`
	Tokens   int           `json:"tokens"`
	Reps     int           `json:"reps"`
	Engines  []engineBench `json:"engines"`
}

// computeBench is one graph size of the ComputeInstant benchmark.
type computeBench struct {
	Nodes         int     `json:"nodes"`
	InterpretedNs float64 `json:"interpreted_ns_per_step"`
	CompiledNs    float64 `json:"compiled_ns_per_step"`
	SpeedUp       float64 `json:"speed_up"`
}

// batchBench is one (graph size, lane width) cell of the batched
// ComputeInstant benchmark: the amortized cost of advancing one lane by
// one iteration inside an N-wide batch, and its speed-up over the
// per-point compiled evaluator of the same graph.
type batchBench struct {
	Nodes          int     `json:"nodes"`
	Width          int     `json:"width"`
	NsPerStepPoint float64 `json:"ns_per_step_point"`
	SpeedUp        float64 `json:"speed_up_vs_compiled"`
}

// runBench is the allocation/latency profile of core.Model.Run.
type runBench struct {
	Scenario     string  `json:"scenario"`
	Tokens       int     `json:"tokens"`
	NsPerRun     int64   `json:"ns_per_run"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	AllocsPerIt  float64 `json:"allocs_per_iteration"`
}

type computeReport struct {
	Steps    int            `json:"steps_per_measurement"`
	Sizes    []computeBench `json:"sizes"`
	Batched  []batchBench   `json:"batched"`
	ModelRun runBench       `json:"model_run"`
}

func main() {
	tokens := flag.Int("tokens", 2000, "didactic workload size in tokens")
	reps := flag.Int("reps", 3, "repetitions per engine (best wall time wins)")
	out := flag.String("o", "BENCH_engines.json", "output file (- for stdout)")
	computeOut := flag.String("compute-o", "BENCH_compute.json", "ComputeInstant benchmark output file (- for stdout, empty to skip)")
	steps := flag.Int("steps", 20000, "Step calls per ComputeInstant measurement")
	compare := flag.String("compare", "", "baseline BENCH_compute.json to guard against; exits 1 if compiled ns/step regresses >10% at any size")
	flag.Parse()

	if *reps < 1 {
		fatal(fmt.Errorf("-reps must be >= 1 (got %d)", *reps))
	}
	if *tokens < 1 {
		fatal(fmt.Errorf("-tokens must be >= 1 (got %d)", *tokens))
	}
	sc, err := zoo.LookupScenario("didactic")
	if err != nil {
		fatal(err)
	}
	params := zoo.ParamMap{"tokens": int64(*tokens)}
	report := benchReport{Scenario: sc.Name, Tokens: *tokens, Reps: *reps}
	ctx := context.Background()
	for _, name := range engine.Names() {
		eng, err := engine.Lookup(name)
		if err != nil {
			fatal(err)
		}
		opts := engine.Options{AbstractGroup: sc.GroupFor(name, params)}
		var best *engineBench
		for r := 0; r < *reps; r++ {
			res, err := eng.Run(ctx, sc.Build(params), opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			if best == nil || res.WallNs < best.NsPerPoint {
				best = &engineBench{
					Engine:      name,
					NsPerPoint:  res.WallNs,
					Events:      res.Events,
					Activations: res.Activations,
					GraphNodes:  res.GraphNodes,
					Switches:    res.Switches,
					Fallbacks:   res.Fallbacks,
				}
			}
		}
		report.Engines = append(report.Engines, *best)
	}

	writeJSON(*out, report)
	if *computeOut != "" {
		crep := computeInstantReport(*steps, *tokens)
		if *compare != "" {
			if err := compareCompute(*compare, crep); err != nil {
				writeJSON(*computeOut, crep)
				fatal(err)
			}
		}
		writeJSON(*computeOut, crep)
	}
}

// compareCompute guards the compiled ComputeInstant hot path against a
// committed baseline report. Absolute wall times drift with the host, so
// the fresh numbers are first normalized by the median interpreted-step
// ratio (fresh/baseline across sizes) — the interpreter is the
// machine-speed yardstick — and only then compared: a normalized
// compiled regression beyond 10% at any size fails the build.
func compareCompute(path string, fresh computeReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var base computeReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	baseBySize := make(map[int]computeBench, len(base.Sizes))
	for _, cb := range base.Sizes {
		baseBySize[cb.Nodes] = cb
	}
	var ratios []float64
	for _, cb := range fresh.Sizes {
		if bb, ok := baseBySize[cb.Nodes]; ok && bb.InterpretedNs > 0 {
			ratios = append(ratios, cb.InterpretedNs/bb.InterpretedNs)
		}
	}
	if len(ratios) == 0 {
		return fmt.Errorf("-compare %s: no common sizes with the baseline", path)
	}
	sort.Float64s(ratios)
	hostScale := ratios[len(ratios)/2]
	var bad []string
	for _, cb := range fresh.Sizes {
		bb, ok := baseBySize[cb.Nodes]
		if !ok || bb.CompiledNs <= 0 {
			continue
		}
		norm := cb.CompiledNs / hostScale
		if norm > bb.CompiledNs*1.10 {
			bad = append(bad, fmt.Sprintf(
				"%d nodes: compiled %.1f ns/step (%.1f host-normalized) vs baseline %.1f (+%.0f%%)",
				cb.Nodes, cb.CompiledNs, norm, bb.CompiledNs, 100*(norm/bb.CompiledNs-1)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("compiled ComputeInstant regressed beyond 10%% (host scale %.2f):\n  %s",
			hostScale, strings.Join(bad, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "dyncomp-bench: compiled path within 10%% of %s (host scale %.2f)\n", path, hostScale)
	return nil
}

// computeInstantReport measures the ComputeInstant hot path: interpreted
// vs compiled Step cost per graph size (the Fig. 5 padded didactic
// graphs), and the allocation profile of a full equivalent-model run of
// the case-study receiver shape (here the didactic scenario for
// comparability with the engine benchmark).
func computeInstantReport(steps, tokens int) computeReport {
	rep := computeReport{Steps: steps}
	for _, nodes := range []int{10, 100, 1000, 3000} {
		dres, err := derive.Derive(
			zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 100, Seed: 1}),
			derive.Options{PadNodes: nodes - 7})
		if err != nil {
			fatal(err)
		}
		iv, err := tdg.NewEvaluator(dres.Graph)
		if err != nil {
			fatal(err)
		}
		cv := dres.Program().NewEvaluator()
		cb := computeBench{
			Nodes:         nodes,
			InterpretedNs: stepCost(iv, steps),
			CompiledNs:    stepCost(cv, steps),
		}
		if cb.CompiledNs > 0 {
			cb.SpeedUp = cb.InterpretedNs / cb.CompiledNs
		}
		cv.Release()
		rep.Sizes = append(rep.Sizes, cb)
		for _, width := range []int{1, 4, 8, 16, 32} {
			bb := batchBench{
				Nodes:          nodes,
				Width:          width,
				NsPerStepPoint: batchStepCost(nodes, width, steps),
			}
			if bb.NsPerStepPoint > 0 {
				bb.SpeedUp = cb.CompiledNs / bb.NsPerStepPoint
			}
			rep.Batched = append(rep.Batched, bb)
		}
	}
	rep.ModelRun = modelRunCost(tokens)
	return rep
}

// stepCost times one evaluator over the given number of Step calls and
// returns the nanoseconds per call (best of 3 measurements).
func stepCost(ev *tdg.Evaluator, steps int) float64 {
	u := []maxplus.T{0}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < steps; i++ {
			u[0] = maxplus.T(i * 100)
			if _, err := ev.Step(u); err != nil {
				fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(steps)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// batchStepCost times an N-wide batch evaluator over enough batched
// steps to advance roughly the scalar measurement's point-iteration
// count, and returns the nanoseconds per step per lane (best of 3).
// The lanes are weight-lane rebinds of one derived shape, exactly what
// a batched sweep dispatches.
func batchStepCost(nodes, width, steps int) float64 {
	archs := make([]*model.Architecture, width)
	for l := range archs {
		archs[l] = zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: maxplus.T(100 + 10*l), Seed: int64(l + 1)})
	}
	lanes, err := derive.DeriveBatch(archs, derive.Options{PadNodes: nodes - 7})
	if err != nil {
		fatal(err)
	}
	progs := make([]*tdg.Program, width)
	for l, lane := range lanes {
		progs[l] = lane.Program()
	}
	be, err := tdg.NewBatchEvaluator(progs)
	if err != nil {
		fatal(err)
	}
	defer be.Release()
	nsteps := steps / width
	if nsteps < 500 {
		nsteps = 500
	}
	u := make([]maxplus.T, width)
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < nsteps; i++ {
			for lane := range u {
				u[lane] = maxplus.T(i * 100)
			}
			if _, err := be.Step(u); err != nil {
				fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(nsteps*width)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// modelRunCost measures one reusable equivalent model end to end:
// nanoseconds and heap allocations per Run (after a warmup run so
// pooled buffers are at steady capacity), and the allocation count
// amortized per iteration — zero when the steady-state loop is clean.
func modelRunCost(tokens int) runBench {
	dres, err := derive.Derive(
		zoo.Didactic(zoo.DidacticSpec{Tokens: tokens, Period: 1200, Seed: 41}),
		derive.Options{})
	if err != nil {
		fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		fatal(err)
	}
	if _, err := m.Run(core.Options{}); err != nil { // warmup
		fatal(err)
	}
	const reps = 5
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := m.Run(core.Options{}); err != nil {
			fatal(err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / reps
	return runBench{
		Scenario:     "didactic",
		Tokens:       tokens,
		NsPerRun:     wall.Nanoseconds() / reps,
		AllocsPerRun: allocs,
		AllocsPerIt:  allocs / float64(tokens),
	}
}

func writeJSON(path string, v interface{}) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dyncomp-bench: %v\n", err)
	os.Exit(1)
}
