// Command ltesim runs the LTE receiver case study (Section V of the
// paper) with both execution engines and prints a usage report: per-frame
// parameters, resource utilization, complexity peaks and the measured
// event saving.
//
//	ltesim -frames 10
//	ltesim -frames 10 -engine reference
package main

import (
	"flag"
	"fmt"
	"os"

	"dyncomp/internal/baseline"
	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/lte"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/observe"
)

func main() {
	frames := flag.Int("frames", 4, "number of 14-symbol frames")
	seed := flag.Int64("seed", 23, "frame parameter seed")
	engine := flag.String("engine", "equivalent", "engine: reference|equivalent|both")
	flag.Parse()

	symbols := *frames * lte.SymbolsPerFrame
	fmt.Printf("LTE receiver: %d frames (%d symbols), symbol period %d ns\n\n", *frames, symbols, int64(lte.SymbolPeriod))
	fmt.Println("Frame parameters:")
	for f := 0; f < *frames && f < 10; f++ {
		nprb, qm, rate := lte.FrameParams(*seed, f)
		fmt.Printf("  frame %2d: %3d PRB, %d bits/sym, code rate %.2f\n", f, nprb, qm, rate)
	}
	fmt.Println()

	var refTrace, eqTrace *observe.Trace
	var refActs, eqActs int64
	if *engine == "reference" || *engine == "both" {
		refTrace = observe.NewTrace("reference")
		res, err := baseline.Run(lte.Receiver(lte.Spec{Symbols: symbols, Seed: *seed}), baseline.Options{Trace: refTrace})
		fail(err)
		refActs = res.Stats.Activations
		report("reference executor", refTrace, refActs)
	}
	if *engine == "equivalent" || *engine == "both" {
		dres, err := derive.Derive(lte.Receiver(lte.Spec{Symbols: symbols, Seed: *seed}), derive.Options{})
		fail(err)
		m, err := core.New(dres)
		fail(err)
		eqTrace = observe.NewTrace("equivalent")
		res, err := m.Run(core.Options{Trace: eqTrace})
		fail(err)
		eqActs = res.Stats.Activations
		report("equivalent model", eqTrace, eqActs)
	}
	if refTrace != nil && eqTrace != nil {
		if err := observe.CompareInstants(refTrace, eqTrace); err != nil {
			fmt.Printf("ACCURACY VIOLATION: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("accuracy: all evolution instants identical; event ratio %.2f\n",
			float64(refActs)/float64(eqActs))
	}
}

func report(name string, tr *observe.Trace, acts int64) {
	end := tr.EndTime()
	fmt.Printf("%s: %d kernel activations, makespan %d ns\n", name, acts, int64(end))
	for _, r := range []string{"DSP", "HW"} {
		util := tr.Utilization(r, 0, end)
		s, err := tr.ComplexitySeries(r, 0, end, maxplus.T(10_000))
		fail(err)
		fmt.Printf("  %-4s utilization %5.1f%%, peak complexity %6.2f GOPS\n", r, 100*util, s.Max())
	}
	fmt.Println()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
