// Command dyncomp-serve runs the simulation-as-a-service HTTP layer: a
// long-lived process exposing the full engine × scenario matrix as a
// JSON API — synchronous single-point evaluation with a process-wide
// structure-keyed derivation cache, asynchronous design-space sweep jobs
// with server-sent-event progress and cancellation, and introspection /
// metrics endpoints. See docs/SERVING.md for the API reference.
//
//	dyncomp-serve -addr :8080
//	dyncomp-serve -addr 127.0.0.1:0 -job-workers 4 -sweep-workers 8
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/engines
//	curl -s -X POST localhost:8080/v1/run -d '{"scenario":"didactic","params":{"tokens":1000}}'
//
// With -addr host:0 the kernel picks a free port; the bound address is
// printed on stdout as "listening on <addr>" before serving begins, so
// wrappers (tests, scripts) can scrape it.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight HTTP requests get -drain-timeout to finish,
// running sweep jobs are cancelled through their contexts (settling as
// "cancelled" with partial results), and only then does the process
// exit.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyncomp/internal/serve"
)

// tokenFlags collects repeated -auth-token token=caller values.
type tokenFlags map[string]string

func (tf tokenFlags) String() string { return fmt.Sprintf("%d tokens", len(tf)) }

func (tf *tokenFlags) Set(v string) error {
	tok, caller, ok := strings.Cut(v, "=")
	if !ok || tok == "" || caller == "" {
		return fmt.Errorf("want token=caller, got %q", v)
	}
	if *tf == nil {
		*tf = tokenFlags{}
	}
	(*tf)[tok] = caller
	return nil
}

// loadTokenFile merges token=caller lines from path into tokens
// (blank lines and # comments skipped).
func loadTokenFile(path string, tokens map[string]string) (map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if tokens == nil {
		tokens = map[string]string{}
	}
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tok, caller, ok := strings.Cut(line, "=")
		if !ok || tok == "" || caller == "" {
			return nil, fmt.Errorf("%s:%d: want token=caller, got %q", path, i+1, line)
		}
		tokens[tok] = caller
	}
	return tokens, nil
}

// registerWorker announces self to a coordinator's POST /v1/workers,
// retrying while the coordinator boots.
func registerWorker(coord, self string) {
	body := fmt.Sprintf(`{"url":%q}`, self)
	client := &http.Client{Timeout: 5 * time.Second}
	for attempt := 0; attempt < 30; attempt++ {
		resp, err := client.Post(coord+"/v1/workers", "application/json",
			bytes.NewReader([]byte(body)))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Printf("registered with %s as %s\n", coord, self)
				return
			}
		}
		time.Sleep(500 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "dyncomp-serve: registration with %s never succeeded\n", coord)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
	jobWorkers := flag.Int("job-workers", 2, "concurrent sweep jobs")
	jobQueue := flag.Int("job-queue", 64, "queued sweep jobs before 429")
	sweepWorkers := flag.Int("sweep-workers", 0, "per-job point-level workers (0: all processors)")
	batchWidth := flag.Int("batch-width", 0, "default batched-evaluation lane width for sweep jobs (0: per-point)")
	maxPoints := flag.Int("max-grid-points", 100000, "largest accepted sweep grid")
	cacheEntries := flag.Int("cache-entries", 0, "derive-cache LRU bound in shapes (0: default, <0: unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	register := flag.String("register", "", "comma-separated dyncomp-coord base URLs to join as a fleet worker")
	advertise := flag.String("advertise", "", "base URL coordinators reach this worker at (default http://<bound-addr>)")
	var authTokens tokenFlags
	flag.Var(&authTokens, "auth-token", "token=caller bearer credential; repeatable (empty: auth disabled)")
	authTokenFile := flag.String("auth-token-file", "", "file of token=caller lines, one per caller (# comments allowed)")
	quotaJobs := flag.Int("quota-jobs", 0, "concurrently queued-or-running sweep jobs per caller (0: unlimited)")
	quotaPoints := flag.Int("quota-points", 0, "grid points one caller may admit per -quota-window (0: unlimited)")
	quotaWindow := flag.Duration("quota-window", time.Minute, "fixed accounting window for -quota-points")
	maxInFlight := flag.Int("max-inflight", 0, "work requests in flight before shedding with 429 (0: default 512, <0: unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0, "end-to-end deadline per work request (0: unbounded)")
	jobTTL := flag.Duration("job-ttl", 0, "evict settled jobs this long after finishing (0: keep forever)")
	maxJobs := flag.Int("max-jobs", 0, "retained jobs before the oldest settled ones are evicted (0: unbounded)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 0, "per-write deadline on SSE/NDJSON streams (0: default 30s, <0: off)")
	logRequests := flag.Bool("log", false, "structured request log on stderr")
	flag.Parse()

	tokens := map[string]string(authTokens)
	if *authTokenFile != "" {
		var err error
		if tokens, err = loadTokenFile(*authTokenFile, tokens); err != nil {
			fmt.Fprintf(os.Stderr, "dyncomp-serve: %v\n", err)
			os.Exit(1)
		}
	}
	var logger *slog.Logger
	if *logRequests {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	srv := serve.New(serve.Config{
		JobWorkers:         *jobWorkers,
		JobQueue:           *jobQueue,
		SweepWorkers:       *sweepWorkers,
		SweepBatchWidth:    *batchWidth,
		MaxGridPoints:      *maxPoints,
		CacheEntries:       *cacheEntries,
		AuthTokens:         tokens,
		QuotaJobs:          *quotaJobs,
		QuotaPoints:        *quotaPoints,
		QuotaWindow:        *quotaWindow,
		MaxInFlight:        *maxInFlight,
		RequestTimeout:     *requestTimeout,
		JobTTL:             *jobTTL,
		MaxJobs:            *maxJobs,
		StreamWriteTimeout: *streamWriteTimeout,
		Logger:             logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyncomp-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	// Fleet registration: announce this worker to every coordinator in
	// -register so it joins the distributed sweep fabric (see
	// docs/SERVING.md "Distributed sweeps"). Registration is
	// best-effort with retries — a coordinator that is still booting
	// picks the worker up on a later attempt; a worker that never
	// registers still serves its local API.
	if *register != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		for _, coord := range strings.Split(*register, ",") {
			if coord = strings.TrimSpace(coord); coord == "" {
				continue
			}
			go registerWorker(strings.TrimRight(coord, "/"), self)
		}
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener failed outright; nothing to drain.
		fmt.Fprintf(os.Stderr, "dyncomp-serve: %v\n", err)
		srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("shutting down")
	// Cancel running jobs first: they settle as "cancelled", which also
	// ends their SSE streams, so the HTTP drain below empties fast.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dyncomp-serve: shutdown: %v\n", err)
	}
	fmt.Println("bye")
}
