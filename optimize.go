package dyncomp

import (
	"context"

	"dyncomp/internal/optimize"
)

// Objective metrics for Optimize (minimized).
const (
	// ObjectiveCycleMean minimizes steady-state time per iteration.
	ObjectiveCycleMean = optimize.ObjectiveCycleMean
	// ObjectiveFinalTime minimizes the end-to-end evolution time.
	ObjectiveFinalTime = optimize.ObjectiveFinalTime
)

// Constraint metrics for OptimizeConstraint.
const (
	MetricArea  = optimize.MetricArea
	MetricPower = optimize.MetricPower
)

// OptimizeConstraint is one platform budget: the named analytic cost
// metric ("area" or "power") must not exceed Max. Constraining a
// metric the spec declares no cost model for is an error — the budget
// would be unenforceable, not trivially satisfied.
type OptimizeConstraint = optimize.Constraint

// OptimizePoint is one Pareto-optimal design: exact simulated
// objective, analytic platform costs, and provenance (seed | refined |
// exhaustive).
type OptimizePoint = optimize.Point

// OptimizeResult is the outcome of an optimization run. Front holds
// only exactly-simulated points; Simulated against GridPoints measures
// how much of the design space the surrogate let the search skip.
type OptimizeResult = optimize.Result

// OptimizeOptions configures Optimize.
type OptimizeOptions struct {
	// EngineName selects the executor evaluating simulated points by
	// registered name (empty: "equivalent").
	EngineName string
	// Workers sets the evaluation worker-pool size (0: all processors).
	Workers int
	// BatchWidth enables batched same-shape lane evaluation, as in
	// SweepOptions.
	BatchWidth int
	// Objective selects the minimized metric (empty: ObjectiveCycleMean).
	Objective string
	// Constraints are the analytic area/power budgets applied before any
	// simulation.
	Constraints []OptimizeConstraint
	// Budget caps the number of exactly simulated points (0: no cap);
	// an exhausted budget returns the partial front with Converged false.
	Budget int
	// Exhaustive forces brute-force simulation of every feasible point.
	Exhaustive bool
	// Group is the abstraction group for the hybrid engine (nil: the
	// spec's canonical group).
	Group []string
	// Cache shares a structure-keyed derivation cache (see NewCache)
	// with other runs and sweeps; nil derives privately.
	Cache *Cache
	// Progress, when set, observes (simulated, feasible) after every
	// simulation round.
	Progress func(simulated, feasible int)
}

// Optimize searches a spec's declared design space — the parameters
// listing candidate values — for the Pareto front of the objective
// against the spec's analytic cost metrics. Infeasible designs are
// discarded before simulation; a surrogate fitted on the simulated
// subset steers which candidates are worth simulating, and the
// returned front is computed exclusively from exact evaluations. See
// docs/MODEL_FORMAT.md for declaring parameter values and cost models.
func Optimize(ctx context.Context, spec *ArchSpec, opts OptimizeOptions) (*OptimizeResult, error) {
	o := optimize.Options{
		Engine:      opts.EngineName,
		Workers:     opts.Workers,
		BatchWidth:  opts.BatchWidth,
		Objective:   opts.Objective,
		Constraints: opts.Constraints,
		Budget:      opts.Budget,
		Exhaustive:  opts.Exhaustive,
		Group:       opts.Group,
		Progress:    opts.Progress,
	}
	if opts.Cache != nil {
		o.Cache = opts.Cache.c
	}
	return optimize.Run(ctx, spec, o)
}
