package core

import (
	"sort"
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// runBoth executes the reference executor and the equivalent model on the
// same architecture and returns both traces and results.
func runBoth(t *testing.T, a *model.Architecture) (*baseline.Result, *Result) {
	t.Helper()
	bt := observe.NewTrace("baseline")
	bres, err := baseline.Run(a, baseline.Options{Trace: bt})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	dres, err := derive.Derive(a, derive.Options{})
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	m, err := New(dres)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	et := observe.NewTrace("equivalent")
	eres, err := m.Run(Options{Trace: et})
	if err != nil {
		t.Fatalf("equivalent: %v", err)
	}
	return bres, eres
}

// assertExact checks the paper's headline accuracy claim: every evolution
// instant of the equivalent model equals the reference executor's.
func assertExact(t *testing.T, bres *baseline.Result, eres *Result) {
	t.Helper()
	if err := observe.CompareInstants(bres.Trace, eres.Trace); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
}

func assertActivitiesEqual(t *testing.T, bres *baseline.Result, eres *Result) {
	t.Helper()
	br, er := bres.Trace, eres.Trace
	resources := br.Resources()
	if len(resources) != len(er.Resources()) {
		t.Fatalf("resource sets differ: %v vs %v", resources, er.Resources())
	}
	key := func(a observe.Activity) observe.Activity { return a }
	for _, r := range resources {
		ba := append([]observe.Activity(nil), br.Activities(r)...)
		ea := append([]observe.Activity(nil), er.Activities(r)...)
		if len(ba) != len(ea) {
			t.Fatalf("%s: %d vs %d activities", r, len(ba), len(ea))
		}
		less := func(s []observe.Activity) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].Label != s[j].Label {
					return s[i].Label < s[j].Label
				}
				return s[i].K < s[j].K
			}
		}
		sort.Slice(ba, less(ba))
		sort.Slice(ea, less(ea))
		for i := range ba {
			if key(ba[i]) != key(ea[i]) {
				t.Fatalf("%s activity %d differs:\nbaseline:   %+v\nequivalent: %+v", r, i, ba[i], ea[i])
			}
		}
	}
}

// The fundamental reproduction result (Section IV of the paper): the
// equivalent model computes identical evolution instants to the fully
// simulated model, in every source regime.
func TestEquivalentModelIsExactDidactic(t *testing.T) {
	cases := []struct {
		name string
		spec zoo.DidacticSpec
	}{
		{"periodic-slow", zoo.DidacticSpec{Tokens: 500, Period: 2000, Seed: 7}},
		{"periodic-fast", zoo.DidacticSpec{Tokens: 500, Period: 300, Seed: 8}},
		{"eager", zoo.DidacticSpec{Tokens: 500, Period: 0, Seed: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bres, eres := runBoth(t, zoo.Didactic(tc.spec))
			assertExact(t, bres, eres)
			assertActivitiesEqual(t, bres, eres)
		})
	}
}

func TestEquivalentModelIsExactChains(t *testing.T) {
	for _, stages := range []int{2, 3, 4} {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 200, Period: 1200, Seed: 3})
		bres, eres := runBoth(t, a)
		assertExact(t, bres, eres)
		assertActivitiesEqual(t, bres, eres)
	}
}

func TestEquivalentModelIsExactFIFO(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 300, Period: 400, Seed: 5, UseFIFO: true}
	bres, eres := runBoth(t, zoo.Didactic(spec))
	assertExact(t, bres, eres)
	assertActivitiesEqual(t, bres, eres)
}

func TestEquivalentModelIsExactPipeline(t *testing.T) {
	for _, x := range []int{2, 6, 12} {
		a := zoo.Pipeline(zoo.PipelineSpec{XSize: x, Tokens: 150, Period: 0, Seed: 2})
		bres, eres := runBoth(t, a)
		assertExact(t, bres, eres)
	}
}

// The point of the method: the equivalent model needs far fewer kernel
// events and context switches than the reference executor.
func TestEquivalentModelSavesEvents(t *testing.T) {
	a := zoo.Didactic(zoo.DidacticSpec{Tokens: 1000, Period: 1000, Seed: 1})
	bres, eres := runBoth(t, a)
	ratio := float64(bres.Stats.Activations) / float64(eres.Stats.Activations)
	if ratio < 1.5 {
		t.Fatalf("activation ratio = %.2f (baseline %d, equivalent %d); expected a clear saving",
			ratio, bres.Stats.Activations, eres.Stats.Activations)
	}
	if eres.Iterations != 1000 {
		t.Fatalf("iterations = %d", eres.Iterations)
	}
}

// Event savings must grow with the number of abstracted processes
// (Table I's trend).
func TestEventRatioGrowsWithChainLength(t *testing.T) {
	var prev float64
	for _, stages := range []int{1, 2, 3, 4} {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 300, Period: 1200, Seed: 3})
		bt := observe.NewTrace("b")
		bres, err := baseline.Run(a, baseline.Options{Trace: bt})
		if err != nil {
			t.Fatal(err)
		}
		dres, err := derive.Derive(a, derive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(dres)
		if err != nil {
			t.Fatal(err)
		}
		eres, err := m.Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(bres.Stats.Activations) / float64(eres.Stats.Activations)
		if ratio <= prev {
			t.Fatalf("stages=%d: ratio %.2f did not grow (prev %.2f)", stages, ratio, prev)
		}
		prev = ratio
	}
}

// Without a trace the equivalent model must still count iterations and
// produce outputs (benchmark configuration).
func TestEquivalentModelNoTrace(t *testing.T) {
	dres, err := derive.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 100, Period: 500, Seed: 1}), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dres)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 100 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Trace != nil {
		t.Fatal("unexpected trace")
	}
}

// Padding the graph must not change any instant (only the compute cost).
func TestPaddedGraphStillExact(t *testing.T) {
	a := zoo.Didactic(zoo.DidacticSpec{Tokens: 200, Period: 800, Seed: 4})
	bt := observe.NewTrace("b")
	if _, err := baseline.Run(a, baseline.Options{Trace: bt}); err != nil {
		t.Fatal(err)
	}
	dres, err := derive.Derive(a, derive.Options{PadNodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dres)
	if err != nil {
		t.Fatal(err)
	}
	et := observe.NewTrace("e")
	if _, err := m.Run(Options{Trace: et}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(bt, et); err != nil {
		t.Fatalf("padding broke accuracy: %v", err)
	}
}

func TestNewRejectsMismatchedSourceCounts(t *testing.T) {
	a := model.NewArchitecture("two-sources")
	i1 := a.AddChannel("I1", model.Rendezvous, 0)
	i2 := a.AddChannel("I2", model.Rendezvous, 0)
	o1 := a.AddChannel("O1", model.Rendezvous, 0)
	o2 := a.AddChannel("O2", model.Rendezvous, 0)
	cost := model.FixedOps(100)
	f1 := a.AddFunction("G1", model.Read{Ch: i1}, model.Exec{Label: "T1", Cost: cost}, model.Write{Ch: o1})
	f2 := a.AddFunction("G2", model.Read{Ch: i2}, model.Exec{Label: "T2", Cost: cost}, model.Write{Ch: o2})
	a.Map(a.AddProcessor("PA", 1e9), f1)
	a.Map(a.AddProcessor("PB", 1e9), f2)
	tok := func(int) model.Token { return model.Token{Size: 4} }
	a.AddSource("S1", i1, model.Periodic(100, 0), tok, 10)
	a.AddSource("S2", i2, model.Periodic(100, 0), tok, 20)
	a.AddSink("K1", o1)
	a.AddSink("K2", o2)
	dres, err := derive.Derive(a, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dres); err == nil {
		t.Fatal("expected error for mismatched source counts")
	}
}

// A two-source architecture with equal counts must run and stay exact.
func TestEquivalentModelTwoInputs(t *testing.T) {
	a := model.NewArchitecture("join")
	i1 := a.AddChannel("I1", model.Rendezvous, 0)
	i2 := a.AddChannel("I2", model.Rendezvous, 0)
	out := a.AddChannel("O", model.Rendezvous, 0)
	cost := model.OpsPerByte(50, 1)
	// J reads both inputs and joins them into one output.
	j := a.AddFunction("J",
		model.Read{Ch: i1},
		model.Exec{Label: "Ta", Cost: cost},
		model.Read{Ch: i2},
		model.Exec{Label: "Tb", Cost: cost},
		model.Write{Ch: out},
	)
	a.Map(a.AddProcessor("P", 1e9), j)
	tok := func(k int) model.Token { return model.Token{Size: int64(16 + k%5)} }
	a.AddSource("S1", i1, model.Periodic(400, 0), tok, 250)
	a.AddSource("S2", i2, model.Periodic(500, 30), tok, 250)
	a.AddSink("K", out)

	bres, eres := runBoth(t, a)
	assertExact(t, bres, eres)
	assertActivitiesEqual(t, bres, eres)
}

// A Model must be reusable: repeated Runs simulate from scratch and agree
// bit-exactly (the sweep engine re-runs one derived structure across
// parameter points).
func TestModelRunTwiceIdentical(t *testing.T) {
	dres, err := derive.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 200, Period: 1100, Seed: 5}), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dres)
	if err != nil {
		t.Fatal(err)
	}
	t1 := observe.NewTrace("run1")
	r1, err := m.Run(Options{Trace: t1})
	if err != nil {
		t.Fatal(err)
	}
	t2 := observe.NewTrace("run2")
	r2, err := m.Run(Options{Trace: t2})
	if err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(t1, t2); err != nil {
		t.Fatalf("re-run diverged: %v", err)
	}
	if r1.Stats != r2.Stats || r1.Iterations != r2.Iterations {
		t.Fatalf("re-run stats diverged: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// A rebound derivation must drive the equivalent model exactly like a
// fresh derivation of the same parameter point.
func TestModelOnReboundDerivation(t *testing.T) {
	template, err := derive.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 120, Period: 1300, Seed: 1}), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := zoo.Didactic(zoo.DidacticSpec{Tokens: 80, Period: 800, Seed: 9})
	rres, err := derive.Rebind(template, target)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := New(rres)
	if err != nil {
		t.Fatal(err)
	}
	rt := observe.NewTrace("rebound")
	if _, err := mr.Run(Options{Trace: rt}); err != nil {
		t.Fatal(err)
	}

	dres, err := derive.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 80, Period: 800, Seed: 9}), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	md, err := New(dres)
	if err != nil {
		t.Fatal(err)
	}
	dt := observe.NewTrace("direct")
	if _, err := md.Run(Options{Trace: dt}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(dt, rt); err != nil {
		t.Fatalf("rebound model diverged from direct derivation: %v", err)
	}
}
