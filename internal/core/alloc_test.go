package core

import (
	"testing"

	"dyncomp/internal/derive"
	"dyncomp/internal/zoo"
)

// TestRunSteadyStateAllocationFree pins the zero-steady-state-alloc
// property of Model.Run: allocations per run are setup-only (kernel,
// goroutines, events), not proportional to the iteration count. A
// single allocation per iteration in the deliver/Step/emit loop would
// fail the margin by an order of magnitude.
func TestRunSteadyStateAllocationFree(t *testing.T) {
	runAllocs := func(tokens int) float64 {
		dres, err := derive.Derive(
			zoo.Didactic(zoo.DidacticSpec{Tokens: tokens, Period: 900, Seed: 3}),
			derive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(dres)
		if err != nil {
			t.Fatal(err)
		}
		m.warmup(t)
		return testing.AllocsPerRun(5, func() {
			if _, err := m.Run(Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := runAllocs(50)
	large := runAllocs(1550)
	// 1500 extra iterations must not cost 1500 extra allocations; allow
	// slack for goroutine stacks and queue growth noise.
	if grown := large - small; grown > 150 {
		t.Fatalf("Run allocations grow with iterations: %0.f (50 tokens) vs %0.f (1550 tokens)", small, large)
	}
}

// warmup runs the model once so pooled buffers reach steady capacity
// before the measured runs.
func (m *Model) warmup(t *testing.T) {
	t.Helper()
	if _, err := m.Run(Options{}); err != nil {
		t.Fatal(err)
	}
}
