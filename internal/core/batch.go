package core

import (
	"fmt"
	"sync"

	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
)

// BatchOptions configures a batched equivalent-model run.
type BatchOptions struct {
	// Traces, when non-nil, holds one trace per lane; a nil entry skips
	// recording for that lane.
	Traces []*observe.Trace
	// Limit bounds each lane's simulation time; zero runs to completion.
	Limit sim.Time
	// IterLimit, when positive, bounds every lane to iterations
	// [0, IterLimit).
	IterLimit int
}

// RunBatch simulates N re-bound equivalent models in lockstep over one
// shared tdg.BatchEvaluator: each lane keeps its own simulation kernel,
// boundary processes and pooled engine state — bit-exact against a
// scalar Run of the same lane — but every ComputeInstant is one batched
// pass computing iteration k for all lanes at once.
//
// The lanes must be weight-lane siblings of one compiled structure
// (derive.RebindBatch / Cache.DeriveBatch produce exactly that) and must
// be distinct Results: each lane's weight closures memoize through their
// own ExecInfos, which the lockstep coordinator relies on for
// race-freedom. A structural mismatch or a missing compiled program
// fails the batch wholesale (third return) so callers can fall back to
// scalar runs; per-lane simulation failures land in the error slice
// while the remaining lanes complete normally.
func RunBatch(lanes []*derive.Result, opts BatchOptions) ([]*Result, []error, error) {
	L := len(lanes)
	if L == 0 {
		return nil, nil, fmt.Errorf("core: RunBatch with no lanes")
	}
	if opts.Traces != nil && len(opts.Traces) != L {
		return nil, nil, fmt.Errorf("core: %d traces for %d lanes", len(opts.Traces), L)
	}
	progs := make([]*tdg.Program, L)
	iters := make([]int, L)
	for l, res := range lanes {
		if res == nil || res.Program() == nil {
			return nil, nil, fmt.Errorf("core: batch lane %d has no compiled program", l)
		}
		progs[l] = res.Program()
		iter, err := iterations(res)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch lane %d: %w", l, err)
		}
		if opts.IterLimit > 0 && opts.IterLimit < iter {
			iter = opts.IterLimit
		}
		iters[l] = iter
	}
	be, err := tdg.NewBatchEvaluator(progs)
	if err != nil {
		return nil, nil, err
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}

	bc := newBatchCoord(be)
	results := make([]*Result, L)
	errs := make([]error, L)
	var wg sync.WaitGroup
	for l := range lanes {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			// Retire the lane no matter how it exits: a lane stuck as
			// "active" would park every other lane at the barrier forever.
			defer bc.finish(l)
			defer func() {
				if r := recover(); r != nil {
					errs[l] = fmt.Errorf("core: batch lane %d panicked: %v", l, r)
				}
			}()
			var trace *observe.Trace
			if opts.Traces != nil {
				trace = opts.Traces[l]
			}
			lv := &laneView{bc: bc, lane: l}
			k := sim.New()
			eng := engineFor(lanes[l], iters[l], k, lv, trace)
			eng.build()
			runErr := k.Run(limit)
			recycle(eng)
			if runErr != nil {
				errs[l] = runErr
				return
			}
			results[l] = &Result{Stats: k.Stats(), Trace: trace, Iterations: lv.steps}
		}(l)
	}
	wg.Wait()
	be.Release()
	return results, errs, nil
}

// batchCoord synchronizes the lane goroutines on one BatchEvaluator:
// each lane's Step blocks until every still-active lane has supplied its
// inputs for the current iteration; the last arrival executes the
// batched step and wakes the rest.
//
// The lockstep is deadlock-free because lanes only couple at the
// barrier: a lane's kernel advances exactly as its scalar run would
// (sources, gates and rendezvous are all lane-local), so every active
// lane reaches every iteration — or retires through finish, which
// re-opens the barrier. A lane blocked here keeps its kernel paused
// (sim.Kernel runs one process at a time), so kernel shutdown can never
// race the barrier.
type batchCoord struct {
	mu   sync.Mutex
	cond *sync.Cond
	be   *tdg.BatchEvaluator

	u    []maxplus.T // lane-strided input slab of the pending iteration
	outs []maxplus.T // lane-strided outputs of the last batched step
	err  error       // sticky batched-step failure, fails every lane

	gen     uint64 // bumped per batched step; waiters watch it change
	active  int    // lanes not yet retired
	waiting int    // lanes blocked at the barrier
}

func newBatchCoord(be *tdg.BatchEvaluator) *batchCoord {
	bc := &batchCoord{
		be:     be,
		u:      make([]maxplus.T, len(be.Graph().Inputs())*be.Lanes()),
		active: be.Lanes(),
	}
	bc.cond = sync.NewCond(&bc.mu)
	return bc
}

// stepLocked runs one batched step. Requires bc.mu held; every other
// active lane is blocked at the barrier (and its kernel therefore
// paused), so the evaluator — including every lane's weight closures —
// is exclusively ours.
func (bc *batchCoord) stepLocked() {
	bc.waiting = 0
	outs, err := bc.be.Step(bc.u)
	if err != nil && bc.err == nil {
		bc.err = err
	}
	bc.outs = outs
	bc.gen++
	bc.cond.Broadcast()
}

// finish retires a lane: its weights stop being resolved and the barrier
// no longer waits for it. If the remaining active lanes are already all
// parked, the retirement itself completes the pending step.
func (bc *batchCoord) finish(lane int) {
	bc.mu.Lock()
	bc.be.Disable(lane)
	bc.active--
	if bc.active > 0 && bc.waiting >= bc.active {
		bc.stepLocked()
	}
	bc.mu.Unlock()
}

// laneView adapts one lane of the batch to the engine's stepper surface.
type laneView struct {
	bc    *batchCoord
	lane  int
	steps int         // iterations this lane has stepped
	out   []maxplus.T // deinterleaved outputs, reused per Step
}

func (lv *laneView) K() int { return lv.bc.be.K() }

func (lv *laneView) Step(u []maxplus.T) ([]maxplus.T, error) {
	bc := lv.bc
	L := bc.be.Lanes()
	bc.mu.Lock()
	if bc.err != nil {
		err := bc.err
		bc.mu.Unlock()
		return nil, err
	}
	if len(u)*L != len(bc.u) {
		bc.mu.Unlock()
		return nil, fmt.Errorf("core: batch lane %d supplied %d inputs, want %d", lv.lane, len(u), len(bc.u)/L)
	}
	for i, v := range u {
		bc.u[i*L+lv.lane] = v
	}
	gen := bc.gen
	bc.waiting++
	if bc.waiting >= bc.active {
		bc.stepLocked()
	} else {
		for bc.gen == gen && bc.err == nil {
			bc.cond.Wait()
		}
	}
	if err := bc.err; err != nil {
		bc.mu.Unlock()
		return nil, err
	}
	if lv.out == nil {
		lv.out = make([]maxplus.T, len(bc.outs)/L)
	}
	for j := range lv.out {
		lv.out[j] = bc.outs[j*L+lv.lane]
	}
	bc.mu.Unlock()
	lv.steps++
	return lv.out, nil
}

func (lv *laneView) PeekDelayed(arcs []tdg.Arc, k int) (maxplus.T, error) {
	// Reads settled ring history and the lane's own weight closures: safe
	// between barriers, concurrent with other lanes doing the same. The
	// next batched step cannot start until this lane re-enters Step.
	return lv.bc.be.LanePeekDelayed(lv.lane, arcs, k)
}

func (lv *laneView) ValuesInto(dst []maxplus.T) {
	lv.bc.be.LaneValuesInto(lv.lane, dst)
}
