package core

import (
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/derive"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// Property-based integration test: over many randomized architectures
// (pipelines of single stages and fork-join diamonds, mixed channel
// protocols, shared and dedicated resources, data-dependent durations),
// the equivalent model must reproduce the reference executor's evolution
// instants bit-exact — with and without arc reduction.
func TestRandomArchitecturesExact(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		spec := zoo.RandomSpec{Seed: int64(seed), Tokens: 60}

		bt := observe.NewTrace("baseline")
		if _, err := baseline.Run(zoo.Random(spec), baseline.Options{Trace: bt}); err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}

		for _, reduce := range []bool{false, true} {
			dres, err := derive.Derive(zoo.Random(spec), derive.Options{Reduce: reduce})
			if err != nil {
				t.Fatalf("seed %d derive(reduce=%v): %v", seed, reduce, err)
			}
			m, err := New(dres)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			et := observe.NewTrace("equivalent")
			if _, err := m.Run(Options{Trace: et}); err != nil {
				t.Fatalf("seed %d equivalent(reduce=%v): %v", seed, reduce, err)
			}
			if err := observe.CompareInstants(bt, et); err != nil {
				t.Fatalf("seed %d (reduce=%v): accuracy violated: %v", seed, reduce, err)
			}
		}
	}
}

// The same property for resource activities (start, end, ops): the
// observation-time reconstruction must match the simulated activities.
func TestRandomArchitecturesActivitiesExact(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		spec := zoo.RandomSpec{Seed: int64(seed) + 1000, Tokens: 40}
		bt := observe.NewTrace("baseline")
		if _, err := baseline.Run(zoo.Random(spec), baseline.Options{Trace: bt}); err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		dres, err := derive.Derive(zoo.Random(spec), derive.Options{})
		if err != nil {
			t.Fatalf("seed %d derive: %v", seed, err)
		}
		m, err := New(dres)
		if err != nil {
			t.Fatal(err)
		}
		et := observe.NewTrace("equivalent")
		if _, err := m.Run(Options{Trace: et}); err != nil {
			t.Fatalf("seed %d equivalent: %v", seed, err)
		}
		for _, r := range bt.Resources() {
			ba, ea := bt.Activities(r), et.Activities(r)
			if len(ba) != len(ea) {
				t.Fatalf("seed %d %s: %d vs %d activities", seed, r, len(ba), len(ea))
			}
			bSet := map[observe.Activity]int{}
			for _, a := range ba {
				bSet[a]++
			}
			for _, a := range ea {
				if bSet[a] == 0 {
					t.Fatalf("seed %d %s: activity %+v not in baseline", seed, r, a)
				}
				bSet[a]--
			}
		}
	}
}
