package core

import (
	"context"
	"fmt"
	"time"

	"dyncomp/internal/derive"
	uni "dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// eqEngine adapts the equivalent model to the uniform engine contract:
// derive (through the injected cache when one is supplied), build, run.
// Derivation happens outside the timed section — the paper's models are
// generated before simulation — so Result.WallNs covers the run only.
type eqEngine struct{}

func (eqEngine) Name() string { return "equivalent" }

func (eqEngine) Run(ctx context.Context, a *model.Architecture, opts uni.Options) (*uni.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var dres *derive.Result
	var err error
	if opts.Cache != nil {
		dres, err = opts.Cache.Derive(a, opts.Derive)
	} else {
		dres, err = derive.Derive(a, opts.Derive)
	}
	if err != nil {
		return nil, err
	}
	m, err := New(dres)
	if err != nil {
		return nil, err
	}
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/equivalent")
	}
	begin := time.Now()
	res, err := m.Run(Options{
		Trace:       trace,
		Limit:       sim.Time(opts.LimitNs),
		IterLimit:   opts.IterLimit,
		Interpreted: opts.Interpreted,
	})
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(res.Iterations, res.Iterations)
	}
	return &uni.Result{
		Trace:       trace,
		Activations: res.Stats.Activations,
		Events:      res.Stats.Events(),
		FinalTimeNs: int64(res.Stats.FinalTime),
		WallNs:      time.Since(begin).Nanoseconds(),
		Iterations:  res.Iterations,
		GraphNodes:  dres.Graph.NodeCountWithDelays(),
	}, nil
}

// RunBatch implements uni.BatchRunner: one derivation and one batched
// lockstep simulation serve every lane. Derivation (cached or not)
// happens outside the timed section, as in Run; the measured batch wall
// time is amortized uniformly over the lanes, so per-lane WallNs is the
// marginal cost of a point inside a batch — the quantity sweeps sum.
func (eqEngine) RunBatch(ctx context.Context, archs []*model.Architecture, opts uni.Options) ([]*uni.Result, []error, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if len(archs) == 0 {
		return nil, nil, fmt.Errorf("core: RunBatch with no architectures")
	}
	if opts.Interpreted {
		// The interpreter walks arc lists per graph; there is no batched
		// form of it. Callers fall back to scalar runs.
		return nil, nil, fmt.Errorf("core: batched evaluation requires the compiled path")
	}
	var lanes []*derive.Result
	var err error
	if opts.Cache != nil {
		lanes, err = opts.Cache.DeriveBatch(archs, opts.Derive)
	} else {
		lanes, err = derive.DeriveBatch(archs, opts.Derive)
	}
	if err != nil {
		return nil, nil, err
	}
	var traces []*observe.Trace
	if opts.Record {
		traces = make([]*observe.Trace, len(archs))
		for i, a := range archs {
			traces[i] = observe.NewTrace(a.Name + "/equivalent")
		}
	}
	begin := time.Now()
	results, laneErrs, err := RunBatch(lanes, BatchOptions{
		Traces:    traces,
		Limit:     sim.Time(opts.LimitNs),
		IterLimit: opts.IterLimit,
	})
	if err != nil {
		return nil, nil, err
	}
	perLane := time.Since(begin).Nanoseconds() / int64(len(archs))
	out := make([]*uni.Result, len(archs))
	for l, r := range results {
		if r == nil {
			continue // the lane's failure is in laneErrs[l]
		}
		out[l] = &uni.Result{
			Trace:       r.Trace,
			Activations: r.Stats.Activations,
			Events:      r.Stats.Events(),
			FinalTimeNs: int64(r.Stats.FinalTime),
			WallNs:      perLane,
			Iterations:  r.Iterations,
			GraphNodes:  lanes[l].Graph.NodeCountWithDelays(),
		}
	}
	return out, laneErrs, nil
}

func init() { uni.Register(eqEngine{}) }
