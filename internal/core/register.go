package core

import (
	"context"
	"time"

	"dyncomp/internal/derive"
	uni "dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// eqEngine adapts the equivalent model to the uniform engine contract:
// derive (through the injected cache when one is supplied), build, run.
// Derivation happens outside the timed section — the paper's models are
// generated before simulation — so Result.WallNs covers the run only.
type eqEngine struct{}

func (eqEngine) Name() string { return "equivalent" }

func (eqEngine) Run(ctx context.Context, a *model.Architecture, opts uni.Options) (*uni.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var dres *derive.Result
	var err error
	if opts.Cache != nil {
		dres, err = opts.Cache.Derive(a, opts.Derive)
	} else {
		dres, err = derive.Derive(a, opts.Derive)
	}
	if err != nil {
		return nil, err
	}
	m, err := New(dres)
	if err != nil {
		return nil, err
	}
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/equivalent")
	}
	begin := time.Now()
	res, err := m.Run(Options{
		Trace:       trace,
		Limit:       sim.Time(opts.LimitNs),
		IterLimit:   opts.IterLimit,
		Interpreted: opts.Interpreted,
	})
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(res.Iterations, res.Iterations)
	}
	return &uni.Result{
		Trace:       trace,
		Activations: res.Stats.Activations,
		Events:      res.Stats.Events(),
		FinalTimeNs: int64(res.Stats.FinalTime),
		WallNs:      time.Since(begin).Nanoseconds(),
		Iterations:  res.Iterations,
		GraphNodes:  dres.Graph.NodeCountWithDelays(),
	}, nil
}

func init() { uni.Register(eqEngine{}) }
