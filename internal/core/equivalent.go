// Package core implements the paper's contribution: the equivalent model.
//
// An equivalent model replaces all architecture processes with two kinds
// of lightweight simulation processes (Fig. 4 of the paper):
//
//   - Reception processes accept input tokens at the architecture
//     boundary. Whenever an iteration's inputs are complete, they perform
//     the ComputeInstant() action — evaluating the temporal dependency
//     graph in zero simulation time — which yields every internal
//     evolution instant and the output instants y(k).
//   - Emission processes replay the stored output instants: each waits
//     until simulation time reaches y(k) and only then emits the output
//     token.
//
// Only boundary events remain visible to the simulation kernel; all
// internal events are saved. Because the internal instants are still
// computed, resource usage is reconstructed exactly on a local
// observation time (Fig. 2b) without involving the simulator.
package core

import (
	"fmt"
	"sync"

	"dyncomp/internal/chanrt"
	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
)

// Options configures an equivalent-model run.
type Options struct {
	// Trace, when non-nil, records the computed evolution instants and the
	// reconstructed resource activity, bit-exact against the reference
	// executor.
	Trace *observe.Trace
	// Limit bounds simulation time; zero means run to completion.
	Limit sim.Time
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// Interpreted forces ComputeInstant through the tree-walking graph
	// interpreter instead of the compiled evaluation program. Off by
	// default (the compiled path is bit-exact and faster); the property
	// tests flip it to prove exactly that.
	Interpreted bool
}

// Result reports a completed run.
type Result struct {
	Stats      sim.Stats
	Trace      *observe.Trace
	Iterations int
}

// stepper is the ComputeInstant surface the engine drives. The scalar
// tdg.Evaluator satisfies it directly; a batched run hands each lane a
// view onto one shared tdg.BatchEvaluator instead (see RunBatch). The
// engine is oblivious to which one it got — that indirection is the
// whole batch refactor at this layer.
type stepper interface {
	K() int
	Step(u []maxplus.T) ([]maxplus.T, error)
	PeekDelayed(arcs []tdg.Arc, k int) (maxplus.T, error)
	ValuesInto(dst []maxplus.T)
}

// Model is a runnable equivalent model built from a derived temporal
// dependency graph.
//
// A Model is reusable: Run may be called any number of times
// (sequentially), each call simulating from scratch with a fresh kernel
// and evaluator. The iteration count is re-read from the architecture's
// sources on every Run, so a sweep can re-run one derived structure
// across parameter points without re-deriving. Engine state (the
// arrival and output buffers) is pooled across Run calls, and compiled
// evaluators recycle their history rings through the program's shared
// pool, so repeated runs of one shape allocate nothing per iteration.
type Model struct {
	res *derive.Result
}

// New builds an equivalent model from a derivation result. All sources of
// the architecture must produce the same token count (single-rate
// evolution), and every output must drain into an environment sink (the
// abstraction boundary of the paper's experiments).
func New(res *derive.Result) (*Model, error) {
	m := &Model{res: res}
	if _, err := m.iterations(); err != nil {
		return nil, err
	}
	return m, nil
}

// iterations resolves the number of iterations to simulate from the
// architecture's sources, which must agree on one token count.
func (m *Model) iterations() (int, error) { return iterations(m.res) }

func iterations(res *derive.Result) (int, error) {
	if len(res.Inputs) == 0 {
		return 0, fmt.Errorf("core: architecture %q has no inputs", res.Arch.Name)
	}
	count := res.Inputs[0].Source.Count
	for _, ib := range res.Inputs[1:] {
		if ib.Source.Count != count {
			return 0, fmt.Errorf("core: sources %q and %q produce different token counts (%d vs %d)",
				res.Inputs[0].Source.Name, ib.Source.Name, count, ib.Source.Count)
		}
	}
	return count, nil
}

// Run simulates the equivalent model.
func (m *Model) Run(opts Options) (*Result, error) {
	limit := opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}
	iter, err := m.iterations()
	if err != nil {
		return nil, err
	}
	if opts.IterLimit > 0 && opts.IterLimit < iter {
		iter = opts.IterLimit
	}
	k := sim.New()
	var ev *tdg.Evaluator
	if prog := m.res.Program(); prog != nil && !opts.Interpreted {
		ev = prog.NewEvaluator()
	} else if ev, err = tdg.NewEvaluator(m.res.Graph); err != nil {
		return nil, err
	}

	eng := engineFor(m.res, iter, k, ev, opts.Trace)
	eng.build()
	runErr := k.Run(limit)
	res := &Result{Stats: k.Stats(), Trace: opts.Trace, Iterations: ev.K()}
	// Recycle also on failure: Kernel.Run has shut every process down, so
	// the engine state and the evaluator ring are safe to pool either way.
	ev.Release()
	recycle(eng)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// enginePool recycles engine state (arrival and output buffers) across
// runs of any model; engineFor resizes the buffers to the architecture
// at hand. One pool serves scalar runs and every lane of a batched run.
var enginePool sync.Pool

// engineFor prepares the running state of one simulation, reusing a
// pooled engine (with its grown buffers) when one is available.
func engineFor(res *derive.Result, iter int, k *sim.Kernel, ev stepper, trace *observe.Trace) *engine {
	eng, ok := enginePool.Get().(*engine)
	if !ok {
		eng = &engine{}
	}
	eng.res = res
	eng.iter = iter
	eng.kernel = k
	eng.eval = ev
	eng.trace = trace
	eng.pending = 0
	if cap(eng.arrived) < len(res.Inputs) {
		eng.arrived = make([]int, len(res.Inputs))
		eng.inputs = make([]maxplus.T, len(res.Inputs))
	} else {
		eng.arrived = eng.arrived[:len(res.Inputs)]
		eng.inputs = eng.inputs[:len(res.Inputs)]
	}
	for i := range eng.arrived {
		eng.arrived[i] = 0
	}
	if cap(eng.outputs) < len(res.Outputs) {
		eng.outputs = make([][]maxplus.T, len(res.Outputs))
	} else {
		eng.outputs = eng.outputs[:len(res.Outputs)]
	}
	for j := range eng.outputs {
		// Preallocate the known iteration count so the steady-state loop
		// appends without growing.
		if cap(eng.outputs[j]) < iter {
			eng.outputs[j] = make([]maxplus.T, 0, iter)
		} else {
			eng.outputs[j] = eng.outputs[j][:0]
		}
	}
	eng.stepped = k.NewEvent("stepped")
	eng.emitted = k.NewEvent("emitted")
	if trace != nil {
		if cap(eng.vals) < res.Graph.NodeCount() {
			eng.vals = make([]maxplus.T, res.Graph.NodeCount())
		} else {
			eng.vals = eng.vals[:res.Graph.NodeCount()]
		}
	}
	return eng
}

// recycle parks a finished engine's state for the next run. The caller
// releases the evaluator itself — a batched run retires its lanes
// individually but releases the shared batch evaluator exactly once.
func recycle(eng *engine) {
	eng.res, eng.eval, eng.trace = nil, nil, nil
	eng.kernel, eng.stepped, eng.emitted = nil, nil, nil
	enginePool.Put(eng)
}

// engine is the running state of one equivalent-model simulation.
type engine struct {
	res    *derive.Result
	iter   int // iterations to simulate (source token count)
	kernel *sim.Kernel
	eval   stepper
	trace  *observe.Trace
	vals   []maxplus.T

	// arrivals per input: arrived[i] counts delivered iterations; the
	// engine steps iteration k once every input has arrived[i] > k.
	arrived []int
	inputs  []maxplus.T // arrival instants of the pending iteration
	pending int         // number of inputs that delivered the pending iteration

	outputs [][]maxplus.T // computed y(k) per output, grown by Step
	stepped *sim.Event    // broadcast after each arrival and ComputeInstant
	emitted *sim.Event    // broadcast after each computed output batch
}

func (e *engine) build() {
	res := e.res
	arch := res.Arch

	// Boundary channels keep their real runtimes; instants are recorded
	// from the computed values (not by the runtimes) to keep a single
	// source of truth.
	inChans := make([]chanrt.RT, len(res.Inputs))
	for i, ib := range res.Inputs {
		inChans[i] = chanrt.New(e.kernel, ib.Channel, nil)
	}
	outChans := make([]chanrt.RT, len(res.Outputs))
	for j, ob := range res.Outputs {
		outChans[j] = chanrt.New(e.kernel, ob.Channel, nil)
	}

	// Environment sources, exactly as in the reference executor.
	for i, ib := range res.Inputs {
		src := ib.Source
		ch := inChans[i]
		count := src.Count
		if count > e.iter {
			count = e.iter // Options.IterLimit stops sources early
		}
		e.kernel.Spawn(src.Name, func(p *sim.Proc) {
			for k := 0; k < count; k++ {
				u := src.Schedule(k)
				if u.IsEpsilon() {
					panic(fmt.Sprintf("core: source %q schedule(%d) is ε", src.Name, k))
				}
				p.WaitUntil(sim.Time(u))
				tok := src.Tokens(k)
				tok.K = k
				ch.Write(p, tok)
			}
		})
	}

	// Reception processes: gate, accept, compute.
	for i := range res.Inputs {
		idx := i
		ib := res.Inputs[i]
		ch := inChans[i]
		e.kernel.Spawn("Reception:"+ib.Channel.Name, func(p *sim.Proc) {
			e.runReception(p, idx, ib, ch)
		})
	}

	// Emission processes replay stored output instants.
	for j := range res.Outputs {
		idx := j
		ob := res.Outputs[j]
		ch := outChans[j]
		e.kernel.Spawn("Emission:"+ob.Channel.Name, func(p *sim.Proc) {
			for k := 0; k < e.iter; k++ {
				for len(e.outputs[idx]) <= k {
					p.WaitEvent(e.emitted)
				}
				y := e.outputs[idx][k]
				if y == maxplus.Epsilon {
					continue // this iteration produces no output yet
				}
				p.WaitUntil(sim.Time(y))
				tok := arch.TokenOf(ob.Channel, k)
				ch.Write(p, tok)
			}
		})
	}

	// Environment sinks.
	for j, ob := range res.Outputs {
		ch := outChans[j]
		e.kernel.Spawn(ob.Sink.Name, func(p *sim.Proc) {
			for {
				ch.Read(p)
			}
		})
	}
}

// runReception is the Reception process of one input: for each iteration
// it evaluates the readiness gate — from already-computed history plus,
// for same-iteration terms, from other inputs' observed arrivals —
// accepts the token (the rendezvous realizes max(u(k), gate)), and
// triggers ComputeInstant when the iteration's inputs are complete.
func (e *engine) runReception(p *sim.Proc, idx int, ib derive.InputBinding, ch chanrt.RT) {
	fifo, _ := ch.(*chanrt.FIFO)
	for k := 0; k < e.iter; k++ {
		// The delayed gate needs iteration k-1 fully computed; the
		// same-iteration terms need the referenced inputs' k-th arrivals.
		for !e.gateReady(ib, k) {
			p.WaitEvent(e.stepped)
		}
		gate, err := e.eval.PeekDelayed(ib.Gate, k)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		for _, sg := range ib.SameIterGate {
			v := sg.Weight.Apply(e.inputs[sg.InputIndex], k)
			gate = maxplus.Oplus(gate, v)
		}
		if !gate.IsEpsilon() && sim.Time(gate) > p.Now() {
			p.WaitUntil(sim.Time(gate))
		}
		ch.Read(p)
		arrival := maxplus.T(p.Now())
		if fifo != nil {
			// For FIFO inputs the boundary instant is the write instant,
			// not the read instant.
			arrival = fifo.WriteInstant(k)
		}
		e.deliver(k, idx, arrival)
	}
}

// gateReady reports whether everything the k-th gate of ib depends on has
// been computed or observed.
func (e *engine) gateReady(ib derive.InputBinding, k int) bool {
	if e.eval.K() < k {
		return false
	}
	for _, sg := range ib.SameIterGate {
		if e.arrived[sg.InputIndex] <= k {
			return false
		}
	}
	return true
}

// deliver records one input arrival and steps the evaluator once the
// iteration is complete. The step happens in zero simulation time.
func (e *engine) deliver(k, idx int, arrival maxplus.T) {
	e.inputs[idx] = arrival
	e.arrived[idx] = k + 1
	e.pending++
	if e.pending < len(e.inputs) {
		e.stepped.Notify() // other receptions may gate on this arrival
		return
	}
	e.pending = 0

	y, err := e.eval.Step(e.inputs)
	if err != nil {
		panic(fmt.Sprintf("core: ComputeInstant failed: %v", err))
	}
	for j := range e.outputs {
		e.outputs[j] = append(e.outputs[j], y[j])
	}
	if e.trace != nil {
		e.record(k)
	}
	e.stepped.Notify()
	e.emitted.Notify()
}

// record reconstructs the observable evolution of iteration k from the
// computed instants: every labelled instant and every execution activity,
// on the local observation time (no simulator involvement).
func (e *engine) record(k int) {
	e.eval.ValuesInto(e.vals)
	g := e.res.Graph
	for _, n := range g.Nodes() {
		label, ok := e.res.Labels[n.ID]
		if !ok {
			continue
		}
		e.trace.RecordInstant(label, e.vals[n.ID])
	}
	for _, pr := range e.res.Probes {
		start := pr.Start(e.vals[pr.Base], k)
		if start == maxplus.Epsilon {
			continue
		}
		load := pr.Exec.Load(k)
		e.trace.RecordActivity(observe.Activity{
			Resource: pr.Exec.Resource.Name,
			Label:    pr.Exec.Label,
			K:        k,
			Start:    start,
			End:      maxplus.Otimes(start, pr.Exec.Resource.DurationOf(load)),
			Ops:      load.Ops,
		})
	}
}
