package derive

import (
	"dyncomp/internal/tdg"
)

// reduce removes value-redundant weightless arcs from the graph: an arc
// (a → n, delay d, weight e) is redundant when another path from a to n
// has a total delay not exceeding d. Because every arc weight is a
// non-negative duration and evolution instants are non-decreasing in k
// (sources have non-decreasing schedules), such a path already enforces
// x_n(k) ≥ x_a(k-d), so removing the arc changes no instant.
//
// The paper's hand-written graphs are minimal in this sense; the
// derivation keeps redundant own-previous-end gates unless reduction is
// requested. Reduction shrinks the graph (fewer nodes in the Table-I
// counting, cheaper ComputeInstant) at zero accuracy cost — an ablation
// the benchmarks measure.
//
// Arcs are removed one at a time, re-testing against the updated graph,
// so mutually-justifying arcs cannot erase each other.
func reduce(g *tdg.Graph) int {
	removed := 0
	for {
		victimTo, victimIdx := findRedundantArc(g)
		if victimTo < 0 {
			return removed
		}
		i := 0
		g.FilterIncoming(tdg.NodeID(victimTo), func(tdg.Arc) bool {
			keep := i != victimIdx
			i++
			return keep
		})
		removed++
	}
}

// findRedundantArc returns the target node and arc index of one redundant
// arc, or (-1, -1).
func findRedundantArc(g *tdg.Graph) (int, int) {
	for _, n := range g.Nodes() {
		arcs := g.Incoming(n.ID)
		for i, a := range arcs {
			if !a.Weight.IsIdentity() {
				continue
			}
			if hasAltPath(g, a.From, n.ID, a.Delay, i) {
				return int(n.ID), i
			}
		}
	}
	return -1, -1
}

// hasAltPath reports whether a path from src to dst with total delay ≤
// budget exists that does not use arc skipIdx of dst's incoming list.
// It runs a 0-weighted BFS layered by accumulated delay (delays are tiny
// integers, so a simple Dijkstra over (node, delay) suffices).
func hasAltPath(g *tdg.Graph, src, dst tdg.NodeID, budget, skipIdx int) bool {
	n := g.NodeCount()
	// best[v] = minimal accumulated delay to reach v from src.
	best := make([]int, n)
	for i := range best {
		best[i] = budget + 1
	}
	best[src] = 0
	// Outgoing adjacency with the skipped arc excluded.
	type edge struct {
		to    tdg.NodeID
		delay int
	}
	out := make([][]edge, n)
	for _, node := range g.Nodes() {
		for i, a := range g.Incoming(node.ID) {
			if node.ID == dst && i == skipIdx {
				continue
			}
			out[a.From] = append(out[a.From], edge{to: node.ID, delay: a.Delay})
		}
	}
	// Bellman-Ford style relaxation; graphs are small and delays
	// non-negative, so a simple worklist converges quickly.
	work := []tdg.NodeID{src}
	for len(work) > 0 {
		v := work[0]
		work = work[1:]
		for _, e := range out[v] {
			nd := best[v] + e.delay
			if nd < best[e.to] {
				best[e.to] = nd
				work = append(work, e.to)
			}
		}
	}
	return best[dst] <= budget
}
