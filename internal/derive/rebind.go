package derive

import (
	"fmt"
	"strings"

	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
)

// execRef is an index-based reference to one Exec statement: functions
// and statements are identified by position so the reference resolves
// against any architecture of the same structural shape.
type execRef struct {
	fn   int // index into Architecture.Functions
	stmt int // index into Function.Body
}

// probeRef is the index-based form of a Probe.
type probeRef struct {
	base tdg.NodeID
	pre  []execRef
	exec execRef
}

// ShapeKey returns a canonical fingerprint of everything that determines
// the derived graph's structure: topology, channel protocols and
// capacities, statement sequences, resource kinds and rotations, and the
// names feeding node labels. Dynamics — token streams, source schedules
// and counts, cost functions and resource speeds — are excluded: two
// architectures with equal shape keys derive structurally identical
// graphs and can share one derivation through Rebind or a Cache.
func ShapeKey(a *model.Architecture) (string, error) {
	if err := a.Validate(); err != nil {
		return "", err
	}
	fnIdx := make(map[*model.Function]int, len(a.Functions))
	for i, f := range a.Functions {
		fnIdx[f] = i
	}
	chIdx := make(map[*model.Channel]int, len(a.Channels))
	for i, ch := range a.Channels {
		chIdx[ch] = i
	}
	resIdx := make(map[*model.Resource]int, len(a.Resources))
	for i, r := range a.Resources {
		resIdx[r] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, "arch %s\n", a.Name)
	for i, ch := range a.Channels {
		fmt.Fprintf(&b, "ch %d %s kind=%d cap=%d src=%t sink=%t\n",
			i, ch.Name, ch.Kind, ch.Capacity, ch.Source != nil, ch.Sink != nil)
	}
	for i, f := range a.Functions {
		fmt.Fprintf(&b, "fn %d %s res=%d rot=%d body=", i, f.Name, resIdx[f.Resource], f.RotIndex)
		for _, st := range f.Body {
			switch s := st.(type) {
			case model.Read:
				fmt.Fprintf(&b, "R%d;", chIdx[s.Ch])
			case model.Write:
				fmt.Fprintf(&b, "W%d;", chIdx[s.Ch])
			case model.Exec:
				fmt.Fprintf(&b, "X%s;", s.Label)
			}
		}
		b.WriteByte('\n')
	}
	for i, r := range a.Resources {
		fmt.Fprintf(&b, "res %d %s kind=%d conc=%d rot=", i, r.Name, r.Kind, r.Concurrency)
		for _, f := range r.Rotation {
			fmt.Fprintf(&b, "%d;", fnIdx[f])
		}
		b.WriteByte('\n')
	}
	for i, s := range a.Sources {
		fmt.Fprintf(&b, "src %d %s ch=%d\n", i, s.Name, chIdx[s.Ch])
	}
	for i, s := range a.Sinks {
		fmt.Fprintf(&b, "sink %d %s ch=%d\n", i, s.Name, chIdx[s.Ch])
	}
	return b.String(), nil
}

// Rebind instantiates an existing derivation against another architecture
// of the same structural shape, without re-deriving: the frozen graph
// structure (nodes, arcs, topological order) is shared, while every arc
// weight, probe and boundary binding is rebuilt from the new
// architecture's exec statements, sources and sinks. The rebound result
// evaluates bit-identically to Derive(a, sameOptions) at a fraction of
// the cost, and carries no mutable state of the original, so one template
// can be rebound concurrently from many goroutines.
func Rebind(base *Result, a *model.Architecture) (*Result, error) {
	key, err := ShapeKey(a) // also validates a
	if err != nil {
		return nil, err
	}
	return rebind(base, a, key)
}

// rebind is Rebind with the target's shape key already computed (and a
// validated): the cache hit path calls it directly so each point builds
// the key exactly once.
func rebind(base *Result, a *model.Architecture, key string) (*Result, error) {
	if base.shapeKey == "" {
		return nil, fmt.Errorf("derive: result for %q carries no rebinding metadata", base.Arch.Name)
	}
	if key != base.shapeKey {
		return nil, fmt.Errorf("derive: architecture %q does not share the structural shape of %q",
			a.Name, base.Arch.Name)
	}

	// Resolve each referenced exec statement once, so arcs and probes
	// evaluating the same duration share one memoizing ExecInfo, exactly
	// as after a fresh Derive.
	var err error
	infos := map[execRef]*model.ExecInfo{}
	resolve := func(r execRef) (*model.ExecInfo, error) {
		if e, ok := infos[r]; ok {
			return e, nil
		}
		if r.fn < 0 || r.fn >= len(a.Functions) {
			return nil, fmt.Errorf("derive: rebind references function %d of %d", r.fn, len(a.Functions))
		}
		e, err := a.ExecInfoOf(a.Functions[r.fn], r.stmt)
		if err != nil {
			return nil, err
		}
		infos[r] = e
		return e, nil
	}

	weights := make([]tdg.Weight, len(base.recipes))
	for i, recipe := range base.recipes {
		durs := make([]*model.ExecInfo, len(recipe))
		for j, r := range recipe {
			if durs[j], err = resolve(r); err != nil {
				return nil, err
			}
		}
		weights[i] = weightOf(durs)
	}
	g, err := base.Graph.CloneReweighted(func(to tdg.NodeID, arc tdg.Arc) (tdg.Weight, error) {
		if arc.Tag == 0 {
			if !arc.Weight.IsIdentity() {
				return tdg.Weight{}, fmt.Errorf("derive: graph %q has an untagged weighted arc into %q; cannot rebind",
					base.Graph.Name, base.Graph.Nodes()[to].Name)
			}
			return tdg.Weight{}, nil
		}
		if arc.Tag < 1 || arc.Tag > len(weights) {
			return tdg.Weight{}, fmt.Errorf("derive: arc tag %d outside recipe table of size %d", arc.Tag, len(weights))
		}
		return weights[arc.Tag-1], nil
	})
	if err != nil {
		return nil, err
	}

	probes := make([]Probe, len(base.probeRefs))
	for i, pr := range base.probeRefs {
		exec, err := resolve(pr.exec)
		if err != nil {
			return nil, err
		}
		pre := make([]*model.ExecInfo, len(pr.pre))
		for j, r := range pr.pre {
			if pre[j], err = resolve(r); err != nil {
				return nil, err
			}
		}
		probes[i] = Probe{Base: pr.base, Pre: pre, Exec: exec}
	}

	res := &Result{
		Arch:      a,
		Graph:     g,
		Probes:    probes,
		Labels:    base.Labels,
		shapeKey:  key,
		opts:      base.opts,
		srcU:      base.srcU,
		chWrite:   base.chWrite,
		chRead:    base.chRead,
		recipes:   base.recipes,
		probeRefs: base.probeRefs,
	}
	if base.prog != nil {
		// Patch the compiled weight tables against the rebound graph
		// instead of recompiling; the rebound program shares the
		// template's structure arrays and evaluator pool.
		if res.prog, err = base.prog.Rebound(g); err != nil {
			return nil, err
		}
	}
	if err := res.buildBindings(); err != nil {
		return nil, err
	}
	return res, nil
}
