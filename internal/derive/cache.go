package derive

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"dyncomp/internal/model"
)

// Cache memoizes derivations by structural shape: the first request for a
// shape runs Derive and keeps the result as an immutable template; every
// later request for the same shape — typically another point of a
// design-space sweep differing only in parameters — is served by Rebind,
// skipping the symbolic execution (and graph compilation) entirely.
//
// A Cache is safe for concurrent use; concurrent first requests for one
// shape still derive exactly once (the losers block until the winner's
// template is ready).
//
// The cache is bounded: once it holds more than its entry limit of
// distinct shapes, the least-recently-used template is evicted (and
// counted in Evictions). A handful of scenario shapes fits any limit; the
// bound protects long-lived servers against adversarial streams of
// structurally distinct inline models. NewCache applies DefaultEntries;
// NewCacheLimit(0) disables eviction.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	limit   int
	clock   int64 // logical LRU clock, bumped per request under mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// DefaultEntries is the entry bound applied by NewCache.
const DefaultEntries = 1024

// entryKeyFor extends a structural shape key with the derivation options
// that change the template (pad nodes, reduction, compilation), so one
// cache serves differently-derived views of one shape side by side.
func entryKeyFor(key string, opts Options) string {
	return fmt.Sprintf("%s\x00pad=%d reduce=%t nocompile=%t", key, opts.PadNodes, opts.Reduce, opts.NoCompile)
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error

	// Bookkeeping under Cache.mu.
	key      string // full entry key, for map deletion
	arch     string // architecture name, for snapshots
	hits     int64
	lastUsed int64
}

// NewCache creates an empty derivation cache bounded to DefaultEntries
// shapes.
func NewCache() *Cache { return NewCacheLimit(DefaultEntries) }

// NewCacheLimit creates an empty derivation cache evicting
// least-recently-used templates beyond limit entries; limit <= 0 means
// unbounded.
func NewCacheLimit(limit int) *Cache {
	return &Cache{entries: map[string]*cacheEntry{}, limit: limit}
}

// Limit returns the entry bound (0: unbounded).
func (c *Cache) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Derive returns a derivation of a bound to a itself, deriving only when
// the cache holds no template for a's structural shape under the given
// options. The returned Result is freshly bound (its graph weights,
// probes and boundary bindings reference a), so each caller may run it
// independently of every other point sharing the template.
func (c *Cache) Derive(a *model.Architecture, opts Options) (*Result, error) {
	key, err := ShapeKey(a)
	if err != nil {
		return nil, err
	}
	entryKey := entryKeyFor(key, opts)

	c.mu.Lock()
	c.clock++
	e, ok := c.entries[entryKey]
	if !ok {
		e = &cacheEntry{key: entryKey, arch: a.Name}
		c.entries[entryKey] = e
		c.evictLocked(e)
	}
	e.hits++
	e.lastUsed = c.clock
	c.mu.Unlock()

	first := false
	e.once.Do(func() {
		first = true
		c.misses.Add(1)
		e.res, e.err = Derive(a, opts)
	})
	if e.err != nil {
		return nil, e.err
	}
	if !first {
		c.hits.Add(1)
	}
	return rebind(e.res, a, key)
}

// evictLocked drops least-recently-used entries until the cache respects
// its limit again, never evicting keep (the entry just inserted). Callers
// already using an evicted template are unaffected: they hold the entry
// pointer, only the map forgets it. Requires c.mu.
func (c *Cache) evictLocked(keep *cacheEntry) {
	if c.limit <= 0 {
		return
	}
	for len(c.entries) > c.limit {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.evictions.Add(1)
	}
}

// Stats returns how many cache requests were served by an existing
// template (hits) and how many ran Derive (misses). Misses equal the
// number of derivations performed, including re-derivations of evicted
// shapes.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many templates the entry bound has evicted.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Shapes returns the number of distinct structural shapes cached.
func (c *Cache) Shapes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ShapeStat describes one cached template for occupancy introspection
// (the serving layer exports these as per-shape metrics).
type ShapeStat struct {
	// Arch is the architecture name of the first request that created the
	// template.
	Arch string
	// Digest is a short stable fingerprint of the full entry key (shape
	// key plus derivation options), usable as a metric label.
	Digest string
	// Hits counts requests served by this entry, including the miss that
	// created it.
	Hits int64
}

// Snapshot returns the cached templates ordered from most to least
// recently used.
func (c *Cache) Snapshot() []ShapeStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	type row struct {
		stat ShapeStat
		used int64
	}
	rows := make([]row, 0, len(c.entries))
	for _, e := range c.entries {
		h := fnv.New32a()
		h.Write([]byte(e.key))
		rows = append(rows, row{
			stat: ShapeStat{Arch: e.arch, Digest: fmt.Sprintf("%08x", h.Sum32()), Hits: e.hits},
			used: e.lastUsed,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].used > rows[j].used })
	out := make([]ShapeStat, len(rows))
	for i, r := range rows {
		out[i] = r.stat
	}
	return out
}
