package derive

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyncomp/internal/model"
)

// Cache memoizes derivations by structural shape: the first request for a
// shape runs Derive and keeps the result as an immutable template; every
// later request for the same shape — typically another point of a
// design-space sweep differing only in parameters — is served by Rebind,
// skipping the symbolic execution entirely.
//
// A Cache is safe for concurrent use; concurrent first requests for one
// shape still derive exactly once (the losers block until the winner's
// template is ready).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewCache creates an empty derivation cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

// Derive returns a derivation of a bound to a itself, deriving only when
// the cache holds no template for a's structural shape under the given
// options. The returned Result is freshly bound (its graph weights,
// probes and boundary bindings reference a), so each caller may run it
// independently of every other point sharing the template.
func (c *Cache) Derive(a *model.Architecture, opts Options) (*Result, error) {
	key, err := ShapeKey(a)
	if err != nil {
		return nil, err
	}
	entryKey := fmt.Sprintf("%s\x00pad=%d reduce=%t", key, opts.PadNodes, opts.Reduce)

	c.mu.Lock()
	e, ok := c.entries[entryKey]
	if !ok {
		e = &cacheEntry{}
		c.entries[entryKey] = e
	}
	c.mu.Unlock()

	first := false
	e.once.Do(func() {
		first = true
		c.misses.Add(1)
		e.res, e.err = Derive(a, opts)
	})
	if e.err != nil {
		return nil, e.err
	}
	if !first {
		c.hits.Add(1)
	}
	return rebind(e.res, a, key)
}

// Stats returns how many cache requests were served by an existing
// template (hits) and how many ran Derive (misses). Misses equal the
// number of distinct structural shapes requested so far.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Shapes returns the number of distinct structural shapes cached.
func (c *Cache) Shapes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
