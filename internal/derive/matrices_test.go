package derive

import (
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

// The matrix recurrence (equations (7)-(10)) must compute exactly the
// same instants as the graph evaluator on the didactic example.
func TestMatrixFormMatchesEvaluatorDidactic(t *testing.T) {
	res := deriveDidactic(t, zoo.DidacticSpec{Tokens: 100, Period: 900, Seed: 3})
	mf, err := NewMatrixForm(res)
	if err != nil {
		t.Fatal(err)
	}
	nx, nu, ny, maxDelay := mf.Dimensions()
	if nx != 6 || nu != 1 || ny != 1 || maxDelay != 1 {
		t.Fatalf("dimensions = %d,%d,%d,%d", nx, nu, ny, maxDelay)
	}
	sys, err := mf.System()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tdg.NewEvaluator(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		u := maxplus.Vector{maxplus.T(int64(k) * 900)}
		x, y, err := sys.Step(u)
		if err != nil {
			t.Fatal(err)
		}
		yev, err := ev.Step([]maxplus.T(u))
		if err != nil {
			t.Fatal(err)
		}
		if y[0] != yev[0] {
			t.Fatalf("k=%d: matrix output %v != evaluator %v", k, y[0], yev[0])
		}
		for i, id := range mf.XNodes() {
			if x[i] != ev.Value(id) {
				t.Fatalf("k=%d node %v: matrix %v != evaluator %v", k, id, x[i], ev.Value(id))
			}
		}
	}
}

// The same equality over randomized architectures (including FIFO
// channels, i.e. delays above 1).
func TestMatrixFormMatchesEvaluatorRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		res, err := Derive(zoo.Random(zoo.RandomSpec{Seed: seed, Tokens: 30}), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mf, err := NewMatrixForm(res)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sys, err := mf.System()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ev, err := tdg.NewEvaluator(res.Graph)
		if err != nil {
			t.Fatal(err)
		}
		nu := len(res.Graph.Inputs())
		for k := 0; k < 30; k++ {
			u := maxplus.NewVector(nu)
			for i := range u {
				u[i] = maxplus.T(int64(k) * 500)
			}
			x, _, err := sys.Step(u)
			if err != nil {
				t.Fatalf("seed %d k=%d: %v", seed, k, err)
			}
			if _, err := ev.Step([]maxplus.T(u)); err != nil {
				t.Fatal(err)
			}
			for i, id := range mf.XNodes() {
				if x[i] != ev.Value(id) {
					t.Fatalf("seed %d k=%d node %v: matrix %v != evaluator %v",
						seed, k, id, x[i], ev.Value(id))
				}
			}
		}
	}
}

// With constant durations, the cycle-mean throughput bound must equal the
// measured steady-state period of the simulated architecture.
func TestThroughputBoundMatchesSimulation(t *testing.T) {
	a := model.NewArchitecture("const")
	in := a.AddChannel("in", model.Rendezvous, 0)
	mid := a.AddChannel("mid", model.Rendezvous, 0)
	out := a.AddChannel("out", model.Rendezvous, 0)
	f1 := a.AddFunction("A",
		model.Read{Ch: in}, model.Exec{Label: "Ta", Cost: model.FixedOps(700)}, model.Write{Ch: mid})
	f2 := a.AddFunction("B",
		model.Read{Ch: mid}, model.Exec{Label: "Tb", Cost: model.FixedOps(400)}, model.Write{Ch: out})
	p := a.AddProcessor("P", 1e9) // both on one processor: period = 700+400
	a.Map(p, f1, f2)
	a.AddSource("S", in, model.Eager(), func(int) model.Token { return model.Token{Size: 1} }, 300)
	a.AddSink("K", out)

	res, err := Derive(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := NewMatrixForm(res)
	if err != nil {
		t.Fatal(err)
	}
	lambda, ok := mf.ThroughputBound(0)
	if !ok {
		t.Fatal("expected a cyclic system")
	}
	if lambda != 1100 {
		t.Fatalf("λ = %v, want 1100 (serialized executions)", lambda)
	}

	// Steady-state inter-output period from the evaluator.
	ev, err := tdg.NewEvaluator(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var prev, last maxplus.T
	for k := 0; k < 300; k++ {
		y, err := ev.Step([]maxplus.T{0})
		if err != nil {
			t.Fatal(err)
		}
		prev, last = last, y[0]
	}
	if period := last - prev; float64(period) != lambda {
		t.Fatalf("measured period %v != λ %v", period, lambda)
	}
}

// The didactic example with constant durations: the critical cycle is the
// P1 rotation (Ti1 + Tj1 + Ti2 around the xM4(k-1) feedback).
func TestThroughputBoundDidacticConstant(t *testing.T) {
	a := model.NewArchitecture("didactic-const")
	chs := map[string]*model.Channel{}
	for _, n := range []string{"M1", "M2", "M3", "M4", "M5", "M6"} {
		chs[n] = a.AddChannel(n, model.Rendezvous, 0)
	}
	cost := func(ops float64) model.CostFn { return model.FixedOps(ops) }
	f1 := a.AddFunction("F1",
		model.Read{Ch: chs["M1"]}, model.Exec{Label: "Ti1", Cost: cost(100)},
		model.Write{Ch: chs["M2"]}, model.Exec{Label: "Tj1", Cost: cost(140)},
		model.Write{Ch: chs["M3"]})
	f2 := a.AddFunction("F2",
		model.Read{Ch: chs["M3"]}, model.Exec{Label: "Ti2", Cost: cost(120)},
		model.Write{Ch: chs["M4"]})
	f3 := a.AddFunction("F3",
		model.Read{Ch: chs["M2"]}, model.Exec{Label: "Ti3", Cost: cost(180)},
		model.Read{Ch: chs["M4"]}, model.Exec{Label: "Tj3", Cost: cost(160)},
		model.Write{Ch: chs["M5"]})
	f4 := a.AddFunction("F4",
		model.Read{Ch: chs["M5"]}, model.Exec{Label: "Ti4", Cost: cost(110)},
		model.Write{Ch: chs["M6"]})
	p1 := a.AddProcessor("P1", 1e9)
	p2 := a.AddHardware("P2", 1e9)
	a.Map(p1, f1, f2)
	a.Map(p2, f3, f4)
	a.AddSource("F0", chs["M1"], model.Eager(), func(int) model.Token { return model.Token{Size: 1} }, 400)
	a.AddSink("env", chs["M6"])

	res, err := Derive(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := NewMatrixForm(res)
	if err != nil {
		t.Fatal(err)
	}
	lambda, ok := mf.ThroughputBound(0)
	if !ok {
		t.Fatal("expected cyclic system")
	}

	ev, err := tdg.NewEvaluator(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var prev, last maxplus.T
	for k := 0; k < 400; k++ {
		y, err := ev.Step([]maxplus.T{0})
		if err != nil {
			t.Fatal(err)
		}
		prev, last = last, y[0]
	}
	if period := float64(last - prev); period != lambda {
		t.Fatalf("measured steady-state period %v != λ %v", period, lambda)
	}
}

func TestMatrixFormRejectsUnfrozen(t *testing.T) {
	g := tdg.New("x")
	res := &Result{Graph: g}
	if _, err := NewMatrixForm(res); err == nil {
		t.Fatal("expected error for unfrozen graph")
	}
}
