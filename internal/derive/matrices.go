package derive

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/tdg"
)

// MatrixForm is the linear (max,+) representation of a derived temporal
// dependency graph — the paper's equations (7)-(10):
//
//	X(k) = A(k,0)⊗X(k) ⊕ ... ⊕ A(k,a)⊗X(k-a) ⊕ B(k,0)⊗U(k) ⊕ ...
//	Y(k) = C(k,0)⊗X(k)
//
// X collects every non-input node in node-ID order, U the input nodes in
// declaration order, Y the output nodes in declaration order. The matrix
// entries are evaluated per iteration, so data-dependent durations are
// preserved.
type MatrixForm struct {
	res *Result
	// xIndex maps node IDs to X positions; -1 for input nodes.
	xIndex     []int
	xNodes     []tdg.NodeID
	uIndex     []int // node ID -> U position; -1 otherwise
	nx, nu, ny int
	maxDelay   int
}

// NewMatrixForm builds the matrix view of a derivation result.
func NewMatrixForm(res *Result) (*MatrixForm, error) {
	g := res.Graph
	if !g.Frozen() {
		return nil, fmt.Errorf("derive: graph %q is not frozen", g.Name)
	}
	m := &MatrixForm{
		res:      res,
		xIndex:   make([]int, g.NodeCount()),
		uIndex:   make([]int, g.NodeCount()),
		maxDelay: g.MaxDelay(),
	}
	for i := range m.xIndex {
		m.xIndex[i] = -1
		m.uIndex[i] = -1
	}
	for i, id := range g.Inputs() {
		m.uIndex[id] = i
	}
	for _, n := range g.Nodes() {
		if n.Kind == tdg.Input {
			continue
		}
		m.xIndex[n.ID] = m.nx
		m.xNodes = append(m.xNodes, n.ID)
		m.nx++
	}
	m.nu = len(g.Inputs())
	m.ny = len(g.Outputs())
	if m.nx == 0 || m.nu == 0 || m.ny == 0 {
		return nil, fmt.Errorf("derive: degenerate matrix form (nx=%d nu=%d ny=%d)", m.nx, m.nu, m.ny)
	}
	return m, nil
}

// Dimensions returns (nx, nu, ny, maxDelay).
func (m *MatrixForm) Dimensions() (nx, nu, ny, maxDelay int) {
	return m.nx, m.nu, m.ny, m.maxDelay
}

// A returns the intermediate dependency matrix A(k, i).
func (m *MatrixForm) A(k, i int) *maxplus.Matrix {
	out := maxplus.NewMatrix(m.nx, m.nx)
	g := m.res.Graph
	for _, n := range g.Nodes() {
		to := m.xIndex[n.ID]
		if to < 0 {
			continue
		}
		for _, a := range g.Incoming(n.ID) {
			from := m.xIndex[a.From]
			if from < 0 || a.Delay != i {
				continue
			}
			out.Set(to, from, maxplus.Oplus(out.At(to, from), weightAt(a, k)))
		}
	}
	return out
}

// B returns the input dependency matrix B(k, j).
func (m *MatrixForm) B(k, j int) *maxplus.Matrix {
	out := maxplus.NewMatrix(m.nx, m.nu)
	g := m.res.Graph
	for _, n := range g.Nodes() {
		to := m.xIndex[n.ID]
		if to < 0 {
			continue
		}
		for _, a := range g.Incoming(n.ID) {
			from := m.uIndex[a.From]
			if from < 0 || a.Delay != j {
				continue
			}
			out.Set(to, from, maxplus.Oplus(out.At(to, from), weightAt(a, k)))
		}
	}
	return out
}

// C returns the output selection matrix C(k, l); only l = 0 is non-ε
// (outputs are instants of the current iteration).
func (m *MatrixForm) C(_, l int) *maxplus.Matrix {
	out := maxplus.NewMatrix(m.ny, m.nx)
	if l != 0 {
		return out
	}
	for j, id := range m.res.Graph.Outputs() {
		out.Set(j, m.xIndex[id], maxplus.E)
	}
	return out
}

// D returns the direct feedthrough matrix D(k, m): all ε (outputs never
// bypass the intermediate instants in derived graphs).
func (m *MatrixForm) D(_, _ int) *maxplus.Matrix {
	return maxplus.NewMatrix(m.ny, m.nu)
}

func weightAt(a tdg.Arc, k int) maxplus.T {
	return a.Weight.At(k)
}

// System instantiates the maxplus recurrence solver over this matrix
// form. Stepping it yields exactly the instants of the graph evaluator.
func (m *MatrixForm) System() (*maxplus.System, error) {
	return maxplus.NewSystem(m.nx, m.nu, m.ny, m.maxDelay, 0, m)
}

// XNodes returns the node IDs backing each X vector position.
func (m *MatrixForm) XNodes() []tdg.NodeID { return m.xNodes }

// ThroughputBound computes the maximum cycle mean λ of the architecture's
// autonomous dynamics using the durations of iteration k: the matrix
// Â = A0* ⊗ A1 propagates X(k-1) to X(k) when the environment is never
// the bottleneck, and λ(Â) is the asymptotic inter-iteration period
// (inverse throughput). For constant durations this is exact steady-state
// analysis (Baccelli et al. 1992); for data-dependent durations it is the
// bound at iteration k. The second result is false when the system is
// acyclic (throughput limited only by the environment).
func (m *MatrixForm) ThroughputBound(k int) (lambda float64, ok bool) {
	a0 := m.A(k, 0)
	ahat := a0.Star().Otimes(m.A(k, 1))
	for i := 2; i <= m.maxDelay; i++ {
		// Higher delays fold conservatively into the one-step matrix by
		// distributing their weight over i steps; exact for the common
		// maxDelay == capacity cases only when capacities are 1, so pull
		// them in at full weight (an upper bound on λ).
		ahat = ahat.Oplus(a0.Star().Otimes(m.A(k, i)))
	}
	return maxplus.MaxCycleMean(ahat)
}
