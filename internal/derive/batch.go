package derive

import (
	"fmt"

	"dyncomp/internal/model"
)

// RebindBatch instantiates one derivation template against N
// architectures of the same structural shape, yielding one weight-lane
// Result per architecture. Each lane carries its own freshly resolved
// ExecInfos and boundary bindings — the lanes are mutually independent,
// exactly as N individual Rebind calls would be — while all of them
// share the template's graph structure, packed arc table (copy-on-write
// through Program.Rebound) and evaluator pools. That sharing is what
// makes the lanes joinable into one tdg.BatchEvaluator.
//
// An architecture whose shape key differs from the template's fails the
// whole batch: callers group points into shape cohorts before batching.
func RebindBatch(base *Result, archs []*model.Architecture) ([]*Result, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("derive: RebindBatch with no architectures")
	}
	out := make([]*Result, len(archs))
	for i, a := range archs {
		r, err := Rebind(base, a)
		if err != nil {
			return nil, fmt.Errorf("derive: batch lane %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// DeriveBatch derives archs[0] once and re-binds the template to every
// other architecture of the batch: one symbolic execution (and one graph
// compilation), N weight-lane results. All architectures must share one
// structural shape.
func DeriveBatch(archs []*model.Architecture, opts Options) ([]*Result, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("derive: DeriveBatch with no architectures")
	}
	base, err := Derive(archs[0], opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(archs))
	out[0] = base
	for i, a := range archs[1:] {
		if out[i+1], err = Rebind(base, a); err != nil {
			return nil, fmt.Errorf("derive: batch lane %d: %w", i+1, err)
		}
	}
	return out, nil
}

// DeriveBatch is the batched form of Cache.Derive: one entry lookup (and
// at most one derivation) serves every lane of the batch. All
// architectures must share one structural shape — a mixed batch is an
// error, not a partial result, so callers can fall back to per-point
// derivation wholesale. The request counts as len(archs) cache requests:
// one miss plus len(archs)-1 hits when the template is fresh, len(archs)
// hits otherwise.
func (c *Cache) DeriveBatch(archs []*model.Architecture, opts Options) ([]*Result, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("derive: DeriveBatch with no architectures")
	}
	key, err := ShapeKey(archs[0])
	if err != nil {
		return nil, err
	}
	for i, a := range archs[1:] {
		k, err := ShapeKey(a)
		if err != nil {
			return nil, fmt.Errorf("derive: batch lane %d: %w", i+1, err)
		}
		if k != key {
			return nil, fmt.Errorf("derive: batch lane %d (%q) does not share the structural shape of %q",
				i+1, a.Name, archs[0].Name)
		}
	}
	entryKey := entryKeyFor(key, opts)

	c.mu.Lock()
	c.clock++
	e, ok := c.entries[entryKey]
	if !ok {
		e = &cacheEntry{key: entryKey, arch: archs[0].Name}
		c.entries[entryKey] = e
		c.evictLocked(e)
	}
	e.hits += int64(len(archs))
	e.lastUsed = c.clock
	c.mu.Unlock()

	first := false
	e.once.Do(func() {
		first = true
		c.misses.Add(1)
		e.res, e.err = Derive(archs[0], opts)
	})
	if e.err != nil {
		return nil, e.err
	}
	hits := int64(len(archs))
	if first {
		hits--
	}
	c.hits.Add(hits)

	out := make([]*Result, len(archs))
	for i, a := range archs {
		if out[i], err = rebind(e.res, a, key); err != nil {
			return nil, fmt.Errorf("derive: batch lane %d: %w", i, err)
		}
	}
	return out, nil
}
