package derive

import (
	"testing"

	"dyncomp/internal/zoo"
)

// The chain length changes the topology, so each stage count below is
// its own structural shape (one cache entry).
func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheLimit(2)
	build := func(stages int) {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1})
		if _, err := c.Derive(a, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	build(1)
	build(2)
	if got := c.Shapes(); got != 2 {
		t.Fatalf("cache holds %d shapes, want 2", got)
	}
	// Touch shape 1 so shape 2 is the LRU victim when shape 3 arrives.
	build(1)
	build(3)
	if got := c.Shapes(); got != 2 {
		t.Fatalf("cache holds %d shapes after eviction, want 2", got)
	}
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// Shape 1 must have survived (recently used): requesting it is a hit,
	// not a re-derivation.
	_, missesBefore := c.Stats()
	build(1)
	if _, misses := c.Stats(); misses != missesBefore {
		t.Fatalf("shape 1 was evicted despite being recently used")
	}
	// Shape 2 was evicted: requesting it re-derives.
	build(2)
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Fatalf("shape 2 not re-derived after eviction")
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCacheLimit(0)
	for stages := 1; stages <= 5; stages++ {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1})
		if _, err := c.Derive(a, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Shapes(); got != 5 {
		t.Fatalf("cache holds %d shapes, want 5", got)
	}
	if ev := c.Evictions(); ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
}

func TestCacheSnapshotOccupancy(t *testing.T) {
	c := NewCacheLimit(8)
	run := func(stages, times int) {
		for i := 0; i < times; i++ {
			a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: int64(i + 1)})
			if _, err := c.Derive(a, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(1, 3)
	run(2, 1)
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d rows, want 2", len(snap))
	}
	// Most recently used first.
	if snap[0].Hits != 1 || snap[1].Hits != 3 {
		t.Fatalf("snapshot hits = %d,%d, want 1,3 (MRU first)", snap[0].Hits, snap[1].Hits)
	}
	for _, sh := range snap {
		if sh.Arch == "" || len(sh.Digest) != 8 {
			t.Fatalf("malformed snapshot row %+v", sh)
		}
	}
}
