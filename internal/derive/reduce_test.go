package derive

import (
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

// Reduction on the didactic graph removes exactly one arc: F2's
// own-previous-end gate xM4(k-1) → xM3, which is dominated by the path
// xM4 → xM5 → xM2(k-1) → xM3. The binding gates must survive.
func TestReduceDidactic(t *testing.T) {
	full, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1}), Options{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *Result) int {
		n := 0
		for _, node := range r.Graph.Nodes() {
			n += len(r.Graph.Incoming(node.ID))
		}
		return n
	}
	if got, want := count(red), count(full)-1; got != want {
		t.Fatalf("reduced graph has %d arcs, want %d", got, want)
	}
	// xM3 must have lost its delayed arc.
	m3, _ := red.Graph.NodeByName("M3")
	for _, a := range red.Graph.Incoming(m3.ID) {
		if a.Delay == 1 {
			t.Fatal("xM4(k-1) → xM3 should have been reduced")
		}
	}
	// xM1's gate must survive (no alternative path into xM1).
	m1, _ := red.Graph.NodeByName("M1")
	hasGate := false
	for _, a := range red.Graph.Incoming(m1.ID) {
		if a.Delay == 1 {
			hasGate = true
		}
	}
	if !hasGate {
		t.Fatal("the binding gate xM4(k-1) → xM1 was wrongly reduced")
	}
}

// A reduced graph computes identical instants.
func TestReducePreservesValues(t *testing.T) {
	specs := []zoo.DidacticSpec{
		{Tokens: 200, Period: 700, Seed: 3},
		{Tokens: 200, Period: 0, Seed: 4},
	}
	for _, spec := range specs {
		full, err := Derive(zoo.Didactic(spec), Options{})
		if err != nil {
			t.Fatal(err)
		}
		red, err := Derive(zoo.Didactic(spec), Options{Reduce: true})
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := tdg.NewEvaluator(full.Graph)
		er, _ := tdg.NewEvaluator(red.Graph)
		for k := 0; k < spec.Tokens; k++ {
			u := maxplus.T(int64(k) * int64(spec.Period))
			yf, err1 := ef.Step([]maxplus.T{u})
			yr, err2 := er.Step([]maxplus.T{u})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if yf[0] != yr[0] {
				t.Fatalf("k=%d: reduced output %v != %v", k, yr[0], yf[0])
			}
			// Compare every shared named node.
			for _, n := range full.Graph.Nodes() {
				rn, ok := red.Graph.NodeByName(n.Name)
				if !ok {
					continue
				}
				if ef.Value(n.ID) != er.Value(rn.ID) {
					t.Fatalf("k=%d node %s: %v != %v", k, n.Name, er.Value(rn.ID), ef.Value(n.ID))
				}
			}
		}
	}
}

// Reduction must never remove weighted arcs.
func TestReduceKeepsWeightedArcs(t *testing.T) {
	red, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1}), Options{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each equation's duration arcs must still be present: 6 weighted arcs.
	weighted := 0
	for _, node := range red.Graph.Nodes() {
		for _, a := range red.Graph.Incoming(node.ID) {
			if !a.Weight.IsIdentity() {
				weighted++
			}
		}
	}
	if weighted != 6 {
		t.Fatalf("%d weighted arcs, want 6", weighted)
	}
}
