package derive

import (
	"testing"

	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

// TestDeriveBatchMatchesPerPointDerive checks each lane of a batch
// derivation evaluates bit-exactly like an individual Derive of the same
// architecture, and that the lanes share one compiled structure (they
// are joinable into a tdg.BatchEvaluator).
func TestDeriveBatchMatchesPerPointDerive(t *testing.T) {
	specs := []zoo.DidacticSpec{
		{Tokens: 12, Period: 1200, Seed: 41},
		{Tokens: 12, Period: 900, Seed: 7},
		{Tokens: 12, Period: 0, Seed: 99},
		{Tokens: 12, Period: 1200, Seed: 41}, // duplicate point: still its own lane
	}
	archs := make([]*model.Architecture, len(specs))
	for i, s := range specs {
		archs[i] = zoo.Didactic(s)
	}
	lanes, err := DeriveBatch(archs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != len(archs) {
		t.Fatalf("%d lanes for %d architectures", len(lanes), len(archs))
	}
	progs := make([]*tdg.Program, len(lanes))
	for i, lane := range lanes {
		want, err := Derive(archs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		evalAll(t, want, lane, 12)
		if lane.Program() == nil {
			t.Fatalf("lane %d carries no compiled program", i)
		}
		progs[i] = lane.Program()
	}
	if _, err := tdg.NewBatchEvaluator(progs); err != nil {
		t.Fatalf("batch lanes are not batch-compatible: %v", err)
	}
}

// TestRebindBatchRejectsShapeMismatch pins the whole-batch failure mode:
// one structurally different lane fails the batch, enabling a wholesale
// scalar fallback.
func TestRebindBatchRejectsShapeMismatch(t *testing.T) {
	base, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	archs := []*model.Architecture{
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 200, Seed: 2}),
		zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 5, Seed: 1}),
	}
	if _, err := RebindBatch(base, archs); err == nil {
		t.Fatal("RebindBatch accepted a shape-mismatched lane")
	}
	if _, err := RebindBatch(base, nil); err == nil {
		t.Fatal("RebindBatch accepted an empty batch")
	}
}

// TestCacheDeriveBatchAccounting checks the batched cache path derives
// once per shape and counts every lane as a request: a fresh batch of
// three is one miss plus two hits; a repeat batch is three hits.
func TestCacheDeriveBatchAccounting(t *testing.T) {
	c := NewCache()
	archs := []*model.Architecture{
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1}),
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 200, Seed: 2}),
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 300, Seed: 3}),
	}
	lanes, err := c.DeriveBatch(archs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("fresh batch: hits=%d misses=%d, want 2/1", hits, misses)
	}
	for i, lane := range lanes {
		if lane.Arch != archs[i] {
			t.Fatalf("lane %d bound to %q, want %q", i, lane.Arch.Name, archs[i].Name)
		}
	}
	if _, err := c.DeriveBatch(archs, Options{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 5 || misses != 1 {
		t.Fatalf("repeat batch: hits=%d misses=%d, want 5/1", hits, misses)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Hits != 6 {
		t.Fatalf("snapshot %+v, want one entry with 6 requests", snap)
	}

	// A mixed-shape batch fails whole.
	mixed := append(archs[:2:2], zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 5, Seed: 1}))
	if _, err := c.DeriveBatch(mixed, Options{}); err == nil {
		t.Fatal("DeriveBatch accepted a mixed-shape batch")
	}
}
