// Package derive generates the temporal dependency graph of an
// architecture model automatically, by symbolic execution of one
// steady-state iteration of every function. The paper obtained these
// graphs by hand (equations (1)-(6), Fig. 3) and mentions a generation
// tool as work in progress; this package implements that tool.
//
// The derivation applies the exact semantics of the event-driven
// reference executor:
//
//   - each rendezvous channel M contributes one node x_M(k), receiving
//     arcs from both the writer-readiness and reader-readiness
//     expressions;
//   - each FIFO channel contributes two nodes xw_M(k) and xr_M(k), with
//     xr(k) ≥ xw(k) (data availability) and xw(k) ≥ xr(k-capacity)
//     (backpressure);
//   - a function's iteration start is gated by its resource rotation:
//     with concurrency c, turn t waits for the end of turn t-c. When that
//     gate collapses onto the function's own first read (the predecessor's
//     last write feeds it directly), the gate is realized by the
//     rendezvous itself and the function's own previous end takes its
//     place — which is how equation (3) of the paper acquires its
//     x_M4(k-1) term;
//   - execution durations accumulate multiplicatively (⊗) along the body
//     between synchronization points.
//
// Deriving the didactic example reproduces equations (1)-(6) node for
// node and arc for arc; tests assert this.
package derive

import (
	"fmt"
	"sync/atomic"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
)

// Options tunes the derivation.
type Options struct {
	// PadNodes appends that many computationally active but semantically
	// inert nodes to the graph before freezing, to emulate more complex
	// computation methods (the Fig. 5 sweep).
	PadNodes int
	// Reduce removes value-redundant weightless arcs (see reduce),
	// producing graphs as minimal as the paper's hand-written ones. Off by
	// default to keep the derived structure literal.
	Reduce bool
	// NoCompile skips compiling the derived graph into a flat evaluation
	// program (tdg.Compile), leaving engines on the tree-walking
	// interpreter. Compilation is on by default; the flag exists for the
	// bit-exactness property tests and as an escape hatch.
	NoCompile bool
}

// Probe locates one execution on the graph for resource-usage
// observation: the execution starts at Base(k) ⊗ Σ Pre durations and runs
// for Exec.Duration(k).
type Probe struct {
	Base tdg.NodeID
	Pre  []*model.ExecInfo
	Exec *model.ExecInfo
}

// Start returns the execution start instant given the value of Base at
// iteration k.
func (p Probe) Start(base maxplus.T, k int) maxplus.T {
	for _, e := range p.Pre {
		base = maxplus.Otimes(base, e.Duration(k))
	}
	return base
}

// InputBinding connects one source-fed channel to the graph.
type InputBinding struct {
	Source  *model.Source
	Channel *model.Channel
	// U is the graph input node fed with observed arrival instants.
	U tdg.NodeID
	// Transfer is the node holding the boundary transfer instant
	// (rendezvous x_M, or FIFO xw_M).
	Transfer tdg.NodeID
	// Gate holds the delayed arcs expressing the abstracted subsystem's
	// readiness to accept iteration k from previous iterations; the
	// equivalent model's Reception process evaluates them before accepting
	// input.
	Gate []tdg.Arc
	// SameIterGate holds readiness terms depending on other inputs of the
	// same iteration (a function reading several boundary channels in one
	// body): the k-th token can be accepted only Weight(k) after input
	// InputIndex's k-th arrival.
	SameIterGate []SameIterGate
}

// SameIterGate is one same-iteration readiness term of an input channel.
type SameIterGate struct {
	InputIndex int
	Weight     tdg.Weight // zero value means identity
}

// OutputBinding connects one sink-drained channel to the graph.
type OutputBinding struct {
	Sink    *model.Sink
	Channel *model.Channel
	// Node holds the emission instant (rendezvous x_M, or FIFO xw_M).
	Node tdg.NodeID
}

// Result is a derived temporal dependency graph with everything the
// equivalent model needs to drive it.
type Result struct {
	Arch    *model.Architecture
	Graph   *tdg.Graph
	Inputs  []InputBinding
	Outputs []OutputBinding
	Probes  []Probe
	// Labels names the nodes whose instants are recorded in traces
	// (channel transfer nodes and auxiliary end-of-turn nodes), matching
	// the labels the reference executor records.
	Labels map[tdg.NodeID]string

	// Rebinding metadata (see Rebind): the structural shape key, the
	// derivation options, per-index node tables, and the exec-statement
	// recipes behind every weighted arc and probe. All of it is immutable
	// after Derive, so concurrent Rebinds from one Result are safe.
	shapeKey  string
	opts      Options
	srcU      []tdg.NodeID // input node per architecture source index
	chWrite   []tdg.NodeID // transfer/write node per channel index
	chRead    []tdg.NodeID // read node per channel index
	recipes   [][]execRef  // arc tag t -> recipes[t-1]
	probeRefs []probeRef

	// prog is the graph compiled into a flat evaluation program
	// (tdg.Compile). The cache/Rebind path compiles once per structural
	// shape and patches the rebound copies' weight tables in place of a
	// recompilation; rebound programs share one evaluator pool.
	prog *tdg.Program
}

// Program returns the compiled evaluation program of the derived graph,
// or nil when compilation was skipped (Options.NoCompile). Engines
// prefer it over interpreting Result.Graph; both evaluate bit-exactly.
func (res *Result) Program() *tdg.Program { return res.prog }

// term is one max-term of a readiness expression during symbolic
// execution: node(k-delay) ⊗ Σ durs.
type term struct {
	node  tdg.NodeID
	delay int
	durs  []*model.ExecInfo
}

type deriver struct {
	arch   *model.Architecture
	g      *tdg.Graph
	labels map[tdg.NodeID]string

	uNode     map[*model.Source]tdg.NodeID
	writeNode map[*model.Channel]tdg.NodeID // rendezvous x / FIFO xw
	readNode  map[*model.Channel]tdg.NodeID // rendezvous x / FIFO xr
	endNode   map[*model.Function]tdg.NodeID
	probes    []Probe

	fnIdx     map[*model.Function]int
	recipes   [][]execRef
	probeRefs []probeRef
}

// calls counts Derive invocations process-wide; tests and sweep
// statistics use it to demonstrate that caching actually avoids
// re-derivation.
var calls atomic.Int64

// Calls returns the number of times Derive has run in this process.
func Calls() int64 { return calls.Load() }

// Derive builds the temporal dependency graph of a validated
// architecture.
func Derive(a *model.Architecture, opts Options) (*Result, error) {
	calls.Add(1)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	d := &deriver{
		arch:      a,
		g:         tdg.New(a.Name),
		labels:    map[tdg.NodeID]string{},
		uNode:     map[*model.Source]tdg.NodeID{},
		writeNode: map[*model.Channel]tdg.NodeID{},
		readNode:  map[*model.Channel]tdg.NodeID{},
		endNode:   map[*model.Function]tdg.NodeID{},
		fnIdx:     map[*model.Function]int{},
	}
	for i, f := range a.Functions {
		d.fnIdx[f] = i
	}
	if err := d.declareNodes(); err != nil {
		return nil, err
	}
	for _, f := range a.Functions {
		if err := d.deriveFunction(f); err != nil {
			return nil, err
		}
	}
	d.connectSources()

	if opts.Reduce {
		reduce(d.g)
	}
	if opts.PadNodes > 0 {
		// Hang the pads off the first input so every ComputeInstant
		// traverses them.
		d.g.AddPadChain(d.uNode[a.Sources[0]], opts.PadNodes)
	}
	if err := d.g.Freeze(); err != nil {
		return nil, err
	}

	key, err := ShapeKey(a)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arch: a, Graph: d.g, Probes: d.probes, Labels: d.labels,
		shapeKey:  key,
		opts:      opts,
		srcU:      make([]tdg.NodeID, len(a.Sources)),
		chWrite:   make([]tdg.NodeID, len(a.Channels)),
		chRead:    make([]tdg.NodeID, len(a.Channels)),
		recipes:   d.recipes,
		probeRefs: d.probeRefs,
	}
	for i, s := range a.Sources {
		res.srcU[i] = d.uNode[s]
	}
	for i, ch := range a.Channels {
		res.chWrite[i] = d.writeNode[ch]
		res.chRead[i] = d.readNode[ch]
	}
	if !opts.NoCompile {
		if res.prog, err = tdg.Compile(d.g); err != nil {
			return nil, err
		}
	}
	if err := res.buildBindings(); err != nil {
		return nil, err
	}
	return res, nil
}

// ChannelNodes returns the graph nodes carrying the transfer instants of
// channel ch: a rendezvous channel exposes one node (write == read), a
// FIFO channel its write node xw and read node xr. The adaptive engine
// uses the mapping to seed a resumed simulation from recorded history.
func (res *Result) ChannelNodes(ch *model.Channel) (write, read tdg.NodeID, ok bool) {
	for i, c := range res.Arch.Channels {
		if c == ch {
			return res.chWrite[i], res.chRead[i], true
		}
	}
	return 0, 0, false
}

// buildBindings computes the input and output bindings of the result from
// its architecture and node tables. It runs after every (re)binding of
// the graph: the gate arcs it extracts carry the weights of the graph
// currently installed in the result.
func (res *Result) buildBindings() error {
	a := res.Arch
	chIdx := make(map[*model.Channel]int, len(a.Channels))
	for i, ch := range a.Channels {
		chIdx[ch] = i
	}
	transferIndex := map[tdg.NodeID]int{}
	for i, s := range a.Sources {
		transferIndex[res.chWrite[chIdx[s.Ch]]] = i
	}
	res.Inputs = nil
	for i, s := range a.Sources {
		ib, err := res.inputBinding(i, s, chIdx, transferIndex)
		if err != nil {
			return err
		}
		res.Inputs = append(res.Inputs, ib)
	}
	res.Outputs = nil
	for _, s := range a.Sinks {
		res.Outputs = append(res.Outputs, OutputBinding{
			Sink:    s,
			Channel: s.Ch,
			Node:    res.chWrite[chIdx[s.Ch]],
		})
	}
	return nil
}

// declareNodes creates every node before any arc is added, so functions
// can reference each other's instants regardless of processing order.
func (d *deriver) declareNodes() error {
	for _, s := range d.arch.Sources {
		d.uNode[s] = d.g.AddInput("u:" + s.Name)
	}
	for _, ch := range d.arch.Channels {
		switch ch.Kind {
		case model.Rendezvous:
			kind := tdg.Intermediate
			if ch.Sink != nil {
				kind = tdg.Output
			}
			n := d.g.AddNode(ch.Name, kind)
			d.writeNode[ch] = n
			d.readNode[ch] = n
			d.labels[n] = ch.Name
		case model.FIFO:
			wKind := tdg.Intermediate
			if ch.Sink != nil {
				wKind = tdg.Output
			}
			w := d.g.AddNode(ch.Name+".w", wKind)
			r := d.g.AddNode(ch.Name+".r", tdg.Intermediate)
			d.writeNode[ch] = w
			d.readNode[ch] = r
			d.labels[w] = ch.Name + ".w"
			d.labels[r] = ch.Name + ".r"
			// Data availability and backpressure.
			d.g.AddArc(w, r, 0, nil)
			d.g.AddArc(r, w, ch.Capacity, nil)
		default:
			return fmt.Errorf("derive: channel %q has unknown kind %v", ch.Name, ch.Kind)
		}
	}
	for _, f := range d.arch.Functions {
		if _, ok := f.Body[len(f.Body)-1].(model.Exec); ok {
			n := d.g.AddNode("end:"+f.Name, tdg.Intermediate)
			d.endNode[f] = n
			d.labels[n] = "end:" + f.Name
		}
	}
	// End nodes of functions finishing on a read or write reuse the
	// corresponding channel node.
	for _, f := range d.arch.Functions {
		if _, ok := d.endNode[f]; ok {
			continue
		}
		switch last := f.Body[len(f.Body)-1].(type) {
		case model.Write:
			d.endNode[f] = d.writeNode[last.Ch]
		case model.Read:
			d.endNode[f] = d.readNode[last.Ch]
		}
	}
	return nil
}

// gateTerms builds the readiness expression of a function's turn start.
func (d *deriver) gateTerms(f *model.Function) []term {
	r := f.Resource
	m := len(r.Rotation)
	c := r.Concurrency
	if c < 1 {
		c = 1
	}
	if c > m {
		c = m
	}
	j := f.RotIndex
	idx, delay := j-c, 0
	for idx < 0 {
		idx += m
		delay++
	}
	pred := r.Rotation[idx]
	gateNode := d.endNode[pred]

	if delay == 0 && gateNode == d.firstReadNode(f) {
		// The predecessor's turn ends by handing its last token to this
		// function: the gate is realized by the rendezvous itself and the
		// function's own previous end becomes the binding constraint
		// (equation (3) of the paper).
		return []term{{node: d.endNode[f], delay: 1}}
	}
	terms := []term{{node: gateNode, delay: delay}}
	if c > 1 && c < m {
		// Turns may end out of order: the own-previous-end constraint is
		// not subsumed by the windowed gate.
		terms = append(terms, term{node: d.endNode[f], delay: 1})
	}
	return terms
}

func (d *deriver) firstReadNode(f *model.Function) tdg.NodeID {
	first := f.Body[0].(model.Read) // validated
	return d.readNode[first.Ch]
}

// deriveFunction symbolically executes one iteration of f, adding its
// contribution arcs to every instant node it touches.
func (d *deriver) deriveFunction(f *model.Function) error {
	ready := d.gateTerms(f)
	for i, st := range f.Body {
		switch s := st.(type) {
		case model.Read:
			node := d.readNode[s.Ch]
			d.addArcs(node, ready)
			ready = []term{{node: node}}
		case model.Write:
			node := d.writeNode[s.Ch]
			d.addArcs(node, ready)
			ready = []term{{node: node}}
		case model.Exec:
			if len(ready) != 1 {
				return fmt.Errorf("derive: execute %q of %q has a non-unique start expression", s.Label, f.Name)
			}
			info, err := d.arch.ExecInfoOf(f, i)
			if err != nil {
				return err
			}
			pre := append([]*model.ExecInfo(nil), ready[0].durs...)
			d.probes = append(d.probes, Probe{Base: ready[0].node, Pre: pre, Exec: info})
			d.probeRefs = append(d.probeRefs, probeRef{
				base: ready[0].node,
				pre:  d.refsOf(pre),
				exec: execRef{fn: d.fnIdx[f], stmt: i},
			})
			ready[0].durs = append(pre, info) // fresh backing array via pre
		}
	}
	if aux, hasAux := d.auxEnd(f); hasAux {
		d.addArcs(aux, ready)
	}
	return nil
}

// auxEnd returns the auxiliary end node of f when its body ends in an
// Exec.
func (d *deriver) auxEnd(f *model.Function) (tdg.NodeID, bool) {
	if _, ok := f.Body[len(f.Body)-1].(model.Exec); !ok {
		return 0, false
	}
	return d.endNode[f], true
}

// addArcs adds one arc per term of expr into the target node, dropping
// weightless zero-delay self-references (x ⊕ ... = x on the least
// solution). Weighted arcs are tagged with the recipe of exec statements
// behind their weight so Rebind can reconstruct them for another
// parameter point.
func (d *deriver) addArcs(to tdg.NodeID, expr []term) {
	for _, t := range expr {
		if t.node == to && t.delay == 0 && len(t.durs) == 0 {
			continue
		}
		if len(t.durs) == 0 {
			d.g.AddArc(t.node, to, t.delay, nil)
			continue
		}
		d.recipes = append(d.recipes, d.refsOf(t.durs))
		d.g.AddWeightedArc(t.node, to, t.delay, weightOf(t.durs), len(d.recipes))
	}
}

// refsOf converts resolved exec statements into index-based references.
func (d *deriver) refsOf(durs []*model.ExecInfo) []execRef {
	refs := make([]execRef, len(durs))
	for i, e := range durs {
		refs[i] = execRef{fn: d.fnIdx[e.Func], stmt: e.StmtIndex}
	}
	return refs
}

// weightOf turns an accumulated duration list into an arc weight.
// Execution durations are data dependent (they evaluate the cost
// function on the k-th token), so the weight stays k-varying; the
// compiled evaluator routes it through its indirect side table.
func weightOf(durs []*model.ExecInfo) tdg.Weight {
	if len(durs) == 0 {
		return tdg.Weight{}
	}
	if len(durs) == 1 {
		e := durs[0]
		return tdg.VaryingWeight(func(k int) maxplus.T { return e.Duration(k) })
	}
	ds := append([]*model.ExecInfo(nil), durs...)
	return tdg.VaryingWeight(func(k int) maxplus.T {
		var sum maxplus.T
		for _, e := range ds {
			sum = maxplus.Otimes(sum, e.Duration(k))
		}
		return sum
	})
}

// connectSources feeds each source's schedule instant into its channel.
func (d *deriver) connectSources() {
	for _, s := range d.arch.Sources {
		d.g.AddArc(d.uNode[s], d.writeNode[s.Ch], 0, nil)
	}
}

// inputBinding extracts the Reception gate of a source channel: every arc
// into the boundary node other than the source's own contribution. For
// the equivalent model to compute the gate before accepting iteration k,
// every such arc must either be delayed (history suffices) or originate
// from another input's boundary node (its arrival instant is known before
// ComputeInstant runs).
func (res *Result) inputBinding(srcIdx int, s *model.Source, chIdx map[*model.Channel]int, transferIndex map[tdg.NodeID]int) (InputBinding, error) {
	ci := chIdx[s.Ch]
	ib := InputBinding{
		Source:   s,
		Channel:  s.Ch,
		U:        res.srcU[srcIdx],
		Transfer: res.chWrite[ci],
	}
	gateOn := res.chRead[ci] // rendezvous: == Transfer; FIFO: xr
	for _, a := range res.Graph.Incoming(gateOn) {
		if a.From == ib.U {
			continue
		}
		if s.Ch.Kind == model.FIFO && a.From == res.chWrite[ci] && a.Delay == 0 {
			continue // data availability, not readiness
		}
		if a.Delay == 0 {
			other, ok := transferIndex[a.From]
			if !ok {
				return ib, fmt.Errorf(
					"derive: input channel %q readiness depends on same-iteration instant %q; this abstraction boundary is unsupported",
					s.Ch.Name, res.Graph.Nodes()[a.From].Name)
			}
			ib.SameIterGate = append(ib.SameIterGate, SameIterGate{InputIndex: other, Weight: a.Weight})
			continue
		}
		ib.Gate = append(ib.Gate, a)
	}
	return ib, nil
}
