package derive

import (
	"fmt"
	"sync"
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

func TestShapeKeyIgnoresDynamics(t *testing.T) {
	a := zoo.Didactic(zoo.DidacticSpec{Tokens: 100, Period: 1200, Seed: 41})
	b := zoo.Didactic(zoo.DidacticSpec{Tokens: 7, Period: 0, Seed: 99})
	ka, err := ShapeKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ShapeKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("shape keys differ for parameter-only changes:\n%s\nvs\n%s", ka, kb)
	}
}

func TestShapeKeySeparatesStructures(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 10, Period: 1200, Seed: 41}
	keys := map[string]string{}
	for name, a := range map[string]*model.Architecture{
		"didactic": zoo.Didactic(spec),
		"chain2":   zoo.DidacticChain(2, spec),
		"fifo":     zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 1200, Seed: 41, UseFIFO: true}),
		"pipeline": zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 10, Seed: 1}),
	} {
		k, err := ShapeKey(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for other, ok := range keys {
			if ok == k {
				t.Fatalf("structures %s and %s share a shape key", name, other)
			}
		}
		keys[name] = k
	}
}

// evalAll steps both evaluators through n iterations with identical
// inputs and requires every node instant to match exactly.
func evalAll(t *testing.T, want, got *Result, n int) {
	t.Helper()
	if want.Graph.NodeCount() != got.Graph.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", want.Graph.NodeCount(), got.Graph.NodeCount())
	}
	ew, err := tdg.NewEvaluator(want.Graph)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := tdg.NewEvaluator(got.Graph)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]maxplus.T, len(want.Inputs))
	vw := make([]maxplus.T, want.Graph.NodeCount())
	vg := make([]maxplus.T, got.Graph.NodeCount())
	for k := 0; k < n; k++ {
		for i, ib := range want.Inputs {
			u[i] = ib.Source.Schedule(k)
		}
		if _, err := ew.Step(u); err != nil {
			t.Fatal(err)
		}
		if _, err := eg.Step(u); err != nil {
			t.Fatal(err)
		}
		ew.ValuesInto(vw)
		eg.ValuesInto(vg)
		for id := range vw {
			if vw[id] != vg[id] {
				t.Fatalf("iteration %d node %s: want %v, got %v",
					k, want.Graph.Nodes()[id].Name, vw[id], vg[id])
			}
		}
	}
	// Probe reconstruction must agree as well.
	if len(want.Probes) != len(got.Probes) {
		t.Fatalf("probe counts differ: %d vs %d", len(want.Probes), len(got.Probes))
	}
	for i := range want.Probes {
		pw, pg := want.Probes[i], got.Probes[i]
		if pw.Base != pg.Base || pw.Exec.Label != pg.Exec.Label {
			t.Fatalf("probe %d differs: base %d/%d label %s/%s", i, pw.Base, pg.Base, pw.Exec.Label, pg.Exec.Label)
		}
		k := n - 1
		if s1, s2 := pw.Start(vw[pw.Base], k), pg.Start(vg[pg.Base], k); s1 != s2 {
			t.Fatalf("probe %d start differs at k=%d: %v vs %v", i, k, s1, s2)
		}
	}
}

func TestRebindMatchesDeriveDidactic(t *testing.T) {
	template, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 100, Period: 1200, Seed: 41}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := zoo.Didactic(zoo.DidacticSpec{Tokens: 40, Period: 700, Seed: 7})
	rebound, err := Rebind(template, target)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 40, Period: 700, Seed: 7}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rebound.Arch != target {
		t.Fatal("rebound result not bound to the target architecture")
	}
	evalAll(t, direct, rebound, 40)
}

func TestRebindMatchesDeriveOptions(t *testing.T) {
	for _, opts := range []Options{{Reduce: true}, {PadNodes: 17}, {Reduce: true, PadNodes: 5}} {
		t.Run(fmt.Sprintf("reduce=%t_pad=%d", opts.Reduce, opts.PadNodes), func(t *testing.T) {
			template, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 30, Period: 1000, Seed: 3}), opts)
			if err != nil {
				t.Fatal(err)
			}
			rebound, err := Rebind(template, zoo.Didactic(zoo.DidacticSpec{Tokens: 30, Period: 650, Seed: 11}))
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 30, Period: 650, Seed: 11}), opts)
			if err != nil {
				t.Fatal(err)
			}
			evalAll(t, direct, rebound, 30)
		})
	}
}

// Rebinding must hold across arbitrary structures: FIFOs, fork-join
// diamonds, shared processors, hardware resources.
func TestRebindMatchesDeriveRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		template, err := Derive(zoo.Random(zoo.RandomSpec{Seed: seed, Tokens: 5}), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rebound, err := Rebind(template, zoo.Random(zoo.RandomSpec{Seed: seed, Tokens: 20}))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		direct, err := Derive(zoo.Random(zoo.RandomSpec{Seed: seed, Tokens: 20}), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evalAll(t, direct, rebound, 20)
		// Boundary bindings must match the direct derivation too.
		for i := range direct.Inputs {
			dw, rw := direct.Inputs[i], rebound.Inputs[i]
			if dw.U != rw.U || dw.Transfer != rw.Transfer || len(dw.Gate) != len(rw.Gate) ||
				len(dw.SameIterGate) != len(rw.SameIterGate) {
				t.Fatalf("seed %d: input binding %d differs", seed, i)
			}
		}
	}
}

func TestRebindRejectsShapeMismatch(t *testing.T) {
	template, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 1200, Seed: 41}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rebind(template, zoo.DidacticChain(2, zoo.DidacticSpec{Tokens: 10, Period: 1200, Seed: 41})); err == nil {
		t.Fatal("rebinding across structures did not fail")
	}
}

func TestCacheDerivesOncePerShape(t *testing.T) {
	c := NewCache()
	before := Calls()
	for seed := int64(0); seed < 8; seed++ {
		if _, err := c.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 900, Seed: seed}), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		if _, err := c.Derive(zoo.DidacticChain(2, zoo.DidacticSpec{Tokens: 10, Period: 900, Seed: seed}), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if misses != 2 || hits != 10 {
		t.Fatalf("cache stats: hits=%d misses=%d, want 10/2", hits, misses)
	}
	if got := Calls() - before; got != 2 {
		t.Fatalf("Derive ran %d times, want 2 (once per shape)", got)
	}
	if c.Shapes() != 2 {
		t.Fatalf("cache holds %d shapes, want 2", c.Shapes())
	}
}

func TestCacheOptionsSeparateEntries(t *testing.T) {
	c := NewCache()
	spec := zoo.DidacticSpec{Tokens: 10, Period: 900, Seed: 1}
	for _, opts := range []Options{{}, {Reduce: true}, {PadNodes: 3}} {
		if _, err := c.Derive(zoo.Didactic(spec), opts); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := c.Stats(); misses != 3 {
		t.Fatalf("distinct options shared a cache entry: misses=%d, want 3", misses)
	}
}

func TestCacheConcurrentSingleDerive(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	results := make([]*Result, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 900, Seed: int64(i)}), Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("concurrent requests derived %d times, want 1", misses)
	}
	for i, res := range results {
		if res == nil || res.Graph == nil || !res.Graph.Frozen() {
			t.Fatalf("result %d unusable", i)
		}
	}
}
