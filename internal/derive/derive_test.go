package derive

import (
	"strings"
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

func deriveDidactic(t *testing.T, spec zoo.DidacticSpec) *Result {
	t.Helper()
	res, err := Derive(zoo.Didactic(spec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The derived graph of the didactic example must match the paper's Fig. 3:
// 7 instant nodes (u, xM1..xM6), 10 nodes counting delayed references,
// and the dependency structure of equations (1)-(6).
func TestDeriveDidacticStructure(t *testing.T) {
	res := deriveDidactic(t, zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
	g := res.Graph
	if got := g.NodeCount(); got != 7 {
		t.Fatalf("NodeCount = %d, want 7", got)
	}
	if got := g.NodeCountWithDelays(); got != 10 {
		t.Fatalf("NodeCountWithDelays = %d, want 10 (Table I row 1)", got)
	}

	id := func(name string) tdg.NodeID {
		n, ok := g.NodeByName(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		return n.ID
	}
	type dep struct {
		from  string
		delay int
	}
	wantArcs := map[string][]dep{
		"M1": {{"u:F0", 0}, {"M4", 1}}, // eq (1)
		"M2": {{"M1", 0}, {"M5", 1}},   // eq (2)
		"M3": {{"M2", 0}, {"M4", 1}},   // eq (3)
		"M4": {{"M3", 0}, {"M2", 0}},   // eq (4)
		"M5": {{"M4", 0}, {"M6", 1}},   // eq (5)
		"M6": {{"M5", 0}},              // eq (6)
	}
	for node, want := range wantArcs {
		arcs := g.Incoming(id(node))
		if len(arcs) != len(want) {
			t.Fatalf("%s has %d incoming arcs, want %d", node, len(arcs), len(want))
		}
		for _, w := range want {
			found := false
			for _, a := range arcs {
				if a.From == id(w.from) && a.Delay == w.delay {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s missing arc from %s delay %d", node, w.from, w.delay)
			}
		}
	}
	// M6 is the single output; u:F0 the single input.
	if len(g.Outputs()) != 1 || g.Outputs()[0] != id("M6") {
		t.Fatalf("outputs = %v", g.Outputs())
	}
	if len(g.Inputs()) != 1 || g.Inputs()[0] != id("u:F0") {
		t.Fatalf("inputs = %v", g.Inputs())
	}
}

// Evaluating the derived graph must reproduce the literal equations.
func TestDeriveDidacticEvaluation(t *testing.T) {
	const n = 300
	spec := zoo.DidacticSpec{Tokens: n, Period: 700, Seed: 7}
	res := deriveDidactic(t, spec)
	ev, err := tdg.NewEvaluator(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"M1", "M2", "M3", "M4", "M5", "M6"}
	ids := make([]tdg.NodeID, len(names))
	for i, name := range names {
		node, ok := res.Graph.NodeByName(name)
		if !ok {
			t.Fatalf("missing node %s", name)
		}
		ids[i] = node.ID
	}

	prev := [6]maxplus.T{maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon}
	for k := 0; k < n; k++ {
		u := maxplus.T(int64(k) * 700)
		if _, err := ev.Step([]maxplus.T{u}); err != nil {
			t.Fatal(err)
		}
		ti1, tj1, ti2, ti3, tj3, ti4 := zoo.DidacticDurations(spec.Seed, k)
		var want [6]maxplus.T
		want[0] = maxplus.Oplus(u, prev[3])
		want[1] = maxplus.Oplus(maxplus.Otimes(want[0], ti1), prev[4])
		want[2] = maxplus.Oplus(maxplus.Otimes(want[1], tj1), prev[3])
		want[3] = maxplus.OplusN(maxplus.Otimes(want[2], ti2), maxplus.Otimes(want[1], ti3), prev[4])
		want[4] = maxplus.Oplus(maxplus.Otimes(want[3], tj3), prev[5])
		want[5] = maxplus.Otimes(want[4], ti4)
		for i := range names {
			if got := ev.Value(ids[i]); got != want[i] {
				t.Fatalf("k=%d %s = %v, want %v", k, names[i], got, want[i])
			}
		}
		prev = want
	}
}

func TestDeriveChainNodeCounts(t *testing.T) {
	// Chained stages share boundary channels, so each extra stage adds
	// 8 nodes in the Table-I counting (the paper's undescribed larger
	// examples add 9; see EXPERIMENTS.md).
	want := map[int]int{1: 10, 2: 18, 3: 26, 4: 34}
	for stages, nodes := range want {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
		res, err := Derive(a, Options{})
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if got := res.Graph.NodeCountWithDelays(); got != nodes {
			t.Fatalf("stages=%d: NodeCountWithDelays = %d, want %d", stages, got, nodes)
		}
	}
}

func TestDeriveInputBindingGate(t *testing.T) {
	res := deriveDidactic(t, zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
	if len(res.Inputs) != 1 {
		t.Fatalf("inputs = %d", len(res.Inputs))
	}
	ib := res.Inputs[0]
	if ib.Source.Name != "F0" || ib.Channel.Name != "M1" {
		t.Fatalf("binding = %+v", ib)
	}
	// Gate: xM4(k-1) only.
	if len(ib.Gate) != 1 || ib.Gate[0].Delay != 1 {
		t.Fatalf("gate arcs = %+v", ib.Gate)
	}
	from, _ := res.Graph.NodeByName("M4")
	if ib.Gate[0].From != from.ID {
		t.Fatalf("gate from node %d, want M4 (%d)", ib.Gate[0].From, from.ID)
	}
}

func TestDeriveProbes(t *testing.T) {
	res := deriveDidactic(t, zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
	if len(res.Probes) != 6 {
		t.Fatalf("%d probes, want 6", len(res.Probes))
	}
	byLabel := map[string]Probe{}
	for _, p := range res.Probes {
		byLabel[p.Exec.Label] = p
	}
	// Ti1 starts at xM1 with no prior durations.
	m1, _ := res.Graph.NodeByName("M1")
	if p := byLabel["Ti1"]; p.Base != m1.ID || len(p.Pre) != 0 {
		t.Fatalf("Ti1 probe = %+v", p)
	}
	// Tj3 starts at xM4 (after the second read of F3).
	m4, _ := res.Graph.NodeByName("M4")
	if p := byLabel["Tj3"]; p.Base != m4.ID || len(p.Pre) != 0 {
		t.Fatalf("Tj3 probe = %+v", p)
	}
	// Probe start arithmetic.
	p := byLabel["Ti1"]
	if got := p.Start(100, 0); got != 100 {
		t.Fatalf("Start = %v", got)
	}
}

func TestDeriveFIFO(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1, UseFIFO: true}
	res := deriveDidactic(t, spec)
	g := res.Graph
	// Two nodes per channel.
	for _, name := range []string{"M1", "M6"} {
		if _, ok := g.NodeByName(name + ".w"); !ok {
			t.Fatalf("missing %s.w", name)
		}
		if _, ok := g.NodeByName(name + ".r"); !ok {
			t.Fatalf("missing %s.r", name)
		}
	}
	// Backpressure arc xr -> xw with delay = capacity.
	w, _ := g.NodeByName("M1.w")
	r, _ := g.NodeByName("M1.r")
	found := false
	for _, a := range g.Incoming(w.ID) {
		if a.From == r.ID && a.Delay == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("missing backpressure arc M1.r -> M1.w with delay 2")
	}
	// Output binding points at the write node of M6.
	m6w, _ := g.NodeByName("M6.w")
	if res.Outputs[0].Node != m6w.ID {
		t.Fatalf("output node = %d, want M6.w", res.Outputs[0].Node)
	}
}

func TestDerivePadNodes(t *testing.T) {
	res, err := Derive(zoo.Didactic(zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1}), Options{PadNodes: 25})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Graph.NodeCount(); got != 7+25 {
		t.Fatalf("NodeCount = %d, want 32", got)
	}
}

func TestDeriveRejectsInvalidModel(t *testing.T) {
	a := model.NewArchitecture("broken")
	a.AddChannel("M", model.Rendezvous, 0)
	if _, err := Derive(a, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// An infeasible static schedule (consumer scheduled before its
// same-iteration producer) must surface as a zero-delay cycle.
func TestDeriveDetectsInfeasibleSchedule(t *testing.T) {
	a := model.NewArchitecture("infeasible")
	in := a.AddChannel("I", model.Rendezvous, 0)
	mid := a.AddChannel("Mid", model.Rendezvous, 0)
	mid2 := a.AddChannel("Mid2", model.Rendezvous, 0)
	out := a.AddChannel("O", model.Rendezvous, 0)
	cost := model.FixedOps(100)
	// fa: I -> Mid, fb: Mid -> Mid2 -> ..., fc consumes Mid2 producing O.
	fa := a.AddFunction("FA", model.Read{Ch: in}, model.Exec{Label: "TA", Cost: cost}, model.Write{Ch: mid})
	fb := a.AddFunction("FB", model.Read{Ch: mid}, model.Exec{Label: "TB", Cost: cost}, model.Write{Ch: mid2})
	fc := a.AddFunction("FC", model.Read{Ch: mid2}, model.Exec{Label: "TC", Cost: cost}, model.Write{Ch: out})
	p := a.AddProcessor("P", 1e9)
	// Schedule FC before FA: FC's gate (end of FB's same-iteration turn)
	// precedes data it needs — infeasible.
	a.Map(p, fc, fa, fb)
	a.AddSource("S", in, model.Eager(), func(int) model.Token { return model.Token{Size: 8} }, 5)
	a.AddSink("K", out)
	_, err := Derive(a, Options{})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want zero-delay cycle", err)
	}
	_ = fa
	_ = fb
}

func TestDeriveLabels(t *testing.T) {
	res := deriveDidactic(t, zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
	seen := map[string]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	for _, want := range []string{"M1", "M2", "M3", "M4", "M5", "M6"} {
		if !seen[want] {
			t.Fatalf("label %q missing", want)
		}
	}
	// No aux end nodes in the didactic example (all bodies end in writes).
	for _, l := range res.Labels {
		if strings.HasPrefix(l, "end:") {
			t.Fatalf("unexpected aux end label %q", l)
		}
	}
}

// A function body ending in an Exec gets an auxiliary end node.
func TestDeriveAuxEndNode(t *testing.T) {
	a := model.NewArchitecture("auxend")
	in := a.AddChannel("I", model.Rendezvous, 0)
	out := a.AddChannel("O", model.Rendezvous, 0)
	cost := model.FixedOps(50)
	f1 := a.AddFunction("W", model.Read{Ch: in}, model.Write{Ch: out}, model.Exec{Label: "Tpost", Cost: cost})
	p := a.AddProcessor("P", 1e9)
	a.Map(p, f1)
	a.AddSource("S", in, model.Periodic(100, 0), func(int) model.Token { return model.Token{Size: 8} }, 5)
	a.AddSink("K", out)
	res, err := Derive(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	endNode, ok := res.Graph.NodeByName("end:W")
	if !ok {
		t.Fatal("missing aux end node")
	}
	if got := len(res.Graph.Incoming(endNode.ID)); got != 1 {
		t.Fatalf("aux end has %d arcs, want 1", got)
	}
	// The next turn of W gates on end:W with delay 1 (arc into I's node).
	iNode, _ := res.Graph.NodeByName("I")
	found := false
	for _, arc := range res.Graph.Incoming(iNode.ID) {
		if arc.From == endNode.ID && arc.Delay == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("turn gate through aux end node missing")
	}
}
