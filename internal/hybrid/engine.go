package hybrid

import (
	"dyncomp/internal/chanrt"
	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
)

// engine drives the abstracted group with a stage-wise ("wave")
// evaluation of the temporal dependency graph.
//
// A monolithic ComputeInstant(k) would have to wait for the boundary
// transfer of iteration k-1 (the output writer's rotation gate references
// it), and that wait can fall later than instants other parts of
// iteration k need — physically delaying the boundary reads and
// distorting the trace. Instead, each node of iteration k is computed as
// soon as its own dependencies allow: a node at minimum delay-distance d
// from the output node waits only for the confirmation of output
// iteration k-d. Because every such node's value is, by (max,+)
// path-monotonicity, at least the confirmed transfer instant it waits
// for, the waits never push any simulated event past its true instant.
type engine struct {
	arch  *model.Architecture
	sub   *subArch
	dres  *derive.Result
	kern  *sim.Kernel
	trace *observe.Trace

	iters   int
	inputs  []int // arrived iterations per input
	arrRing [][]maxplus.T

	// Evaluation state.
	graph    *tdg.Graph
	prog     *tdg.Program // nil: interpret the graph's arc lists
	depth    int
	ring     []maxplus.T
	nodeDone []int // computed iterations per node
	outDist  []int // min delay-distance from the output node; -1 unreachable
	outNode  tdg.NodeID

	ys        []maxplus.T // emission-ready instants y(k)
	confirmed int
	progress  *sim.Event

	vals      []maxplus.T
	skipLabel map[string]bool
}

func newEngine(a *model.Architecture, sub *subArch, dres *derive.Result, kern *sim.Kernel, trace *observe.Trace, iters int) *engine {
	g := dres.Graph
	depth := g.MaxDelay() + 1
	e := &engine{
		arch:     a,
		sub:      sub,
		dres:     dres,
		kern:     kern,
		trace:    trace,
		iters:    iters,
		inputs:   make([]int, len(dres.Inputs)),
		graph:    g,
		prog:     dres.Program(),
		depth:    depth,
		ring:     make([]maxplus.T, g.NodeCount()*depth),
		nodeDone: make([]int, g.NodeCount()),
		outNode:  dres.Outputs[0].Node,
		progress: kern.NewEvent("hybrid:progress"),
	}
	for i := range e.ring {
		e.ring[i] = maxplus.Epsilon
	}
	e.arrRing = make([][]maxplus.T, len(dres.Inputs))
	for i := range e.arrRing {
		e.arrRing[i] = make([]maxplus.T, depth)
	}
	e.outDist = outDistances(g, e.outNode)
	if trace != nil {
		e.vals = make([]maxplus.T, g.NodeCount())
		e.skipLabel = boundaryLabels(sub)
	}
	return e
}

// outDistances computes, for every node, the minimum total arc delay of a
// path (with at least one arc) from the output node, following arc
// direction. Nodes unreachable from the output get -1.
func outDistances(g *tdg.Graph, out tdg.NodeID) []int {
	n := g.NodeCount()
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = inf
	}
	type edge struct {
		to    tdg.NodeID
		delay int
	}
	fwd := make([][]edge, n)
	for _, node := range g.Nodes() {
		for _, a := range g.Incoming(node.ID) {
			fwd[a.From] = append(fwd[a.From], edge{to: node.ID, delay: a.Delay})
		}
	}
	// Relaxation from the output's direct successors.
	work := []tdg.NodeID{}
	for _, e := range fwd[out] {
		if e.delay < dist[e.to] {
			dist[e.to] = e.delay
			work = append(work, e.to)
		}
	}
	for len(work) > 0 {
		v := work[0]
		work = work[1:]
		for _, e := range fwd[v] {
			nd := dist[v] + e.delay
			if nd < dist[e.to] {
				dist[e.to] = nd
				work = append(work, e.to)
			}
		}
	}
	res := make([]int, n)
	for i, d := range dist {
		if d == inf {
			res[i] = -1
		} else {
			res[i] = d
		}
	}
	return res
}

func (e *engine) slot(id tdg.NodeID, k int) *maxplus.T {
	return &e.ring[int(id)*e.depth+(k%e.depth)]
}

func (e *engine) value(id tdg.NodeID, k int) maxplus.T {
	if k < 0 || e.nodeDone[id] <= k {
		return maxplus.Epsilon
	}
	return *e.slot(id, k)
}

func (e *engine) build(boundary map[*model.Channel]chanrt.RT) {
	for i := range e.dres.Inputs {
		idx := i
		ib := e.dres.Inputs[i]
		orig := e.sub.inOrig[i]
		rt := boundary[orig]
		e.kern.Spawn("Reception:"+orig.Name, func(p *sim.Proc) {
			e.runReception(p, idx, ib, rt)
		})
	}
	e.kern.Spawn("Compute:"+e.sub.arch.Name, func(p *sim.Proc) {
		e.runComputer(p)
	})
	outOrig := e.sub.outOrig[0]
	rt := boundary[outOrig]
	e.kern.Spawn("Emission:"+outOrig.Name, func(p *sim.Proc) {
		e.runEmission(p, outOrig, rt)
	})
}

// gateReady reports whether every instant the k-th gate of ib references
// is final. References to the boundary output node require the confirmed
// transfer (the external reader's backpressure), not the provisional
// emission-ready value.
func (e *engine) gateReady(ib derive.InputBinding, k int) bool {
	for _, a := range ib.Gate {
		if a.Delay > k {
			continue
		}
		need := k - a.Delay + 1
		if a.From == e.outNode {
			if e.confirmed < need {
				return false
			}
		} else if e.nodeDone[a.From] < need {
			return false
		}
	}
	for _, sg := range ib.SameIterGate {
		if e.inputs[sg.InputIndex] <= k {
			return false
		}
	}
	return true
}

func (e *engine) gateValue(ib derive.InputBinding, k int) maxplus.T {
	gate := maxplus.Epsilon
	for _, a := range ib.Gate {
		v := e.value(a.From, k-a.Delay)
		if v == maxplus.Epsilon {
			continue
		}
		gate = maxplus.Oplus(gate, a.Weight.Apply(v, k))
	}
	for _, sg := range ib.SameIterGate {
		v := sg.Weight.Apply(e.arrRing[sg.InputIndex][k%e.depth], k)
		gate = maxplus.Oplus(gate, v)
	}
	return gate
}

func (e *engine) runReception(p *sim.Proc, idx int, ib derive.InputBinding, rt chanrt.RT) {
	fifo, _ := rt.(*chanrt.FIFO)
	for k := 0; k < e.iters; k++ {
		for !e.gateReady(ib, k) {
			p.WaitEvent(e.progress)
		}
		gate := e.gateValue(ib, k)
		if !gate.IsEpsilon() && sim.Time(gate) > p.Now() {
			p.WaitUntil(sim.Time(gate))
		}
		rt.Read(p)
		arrival := maxplus.T(p.Now())
		if fifo != nil {
			arrival = fifo.WriteInstant(k)
		}
		e.arrRing[idx][k%e.depth] = arrival
		e.inputs[idx] = k + 1
		e.progress.Notify()
	}
}

// runComputer evaluates iteration k node by node in topological order,
// waiting per node for the arrivals and output confirmations it actually
// depends on. Progress notifications are batched: waiters re-check only
// when the computer is about to block (so their own progress can unblock
// it) and when an iteration completes — computing a node costs no kernel
// events, which is the point of the method.
func (e *engine) runComputer(p *sim.Proc) {
	topo := e.graph.TopoOrder()
	uIdx := map[tdg.NodeID]int{}
	for i, id := range e.graph.Inputs() {
		uIdx[id] = i
	}
	// block flushes pending progress and parks until someone advances.
	block := func() {
		e.progress.Notify()
		p.WaitEvent(e.progress)
	}
	for k := 0; k < e.iters; k++ {
		for _, id := range topo {
			n := e.graph.Nodes()[id]
			if n.Kind == tdg.Input {
				i := uIdx[id]
				for e.inputs[i] <= k {
					block()
				}
				*e.slot(id, k) = e.arrRing[i][k%e.depth]
				e.nodeDone[id] = k + 1
				continue
			}
			// Wait for the output confirmation this node's value may
			// reference (directly or transitively).
			if d := e.outDist[id]; d >= 0 && k-d >= 0 {
				for e.confirmed < k-d+1 {
					block()
				}
			}
			var acc maxplus.T
			if e.prog != nil {
				// The compiled arc table shares the evaluator ring layout,
				// so the wave evaluation gets the flat fast path too.
				acc = e.prog.EvalIncoming(e.ring, id, k)
			} else {
				acc = maxplus.Epsilon
				for _, a := range e.graph.Incoming(id) {
					if a.Delay > k {
						continue
					}
					src := *e.slot(a.From, k-a.Delay)
					if src == maxplus.Epsilon {
						continue
					}
					v := a.Weight.Apply(src, k)
					if v > acc {
						acc = v
					}
				}
			}
			*e.slot(id, k) = acc
			e.nodeDone[id] = k + 1
			if id == e.outNode {
				e.ys = append(e.ys, acc)
			}
		}
		if e.trace != nil {
			e.record(k)
		}
		e.progress.Notify()
	}
}

// runEmission replays the computed output instants onto the real boundary
// channel and confirms each observed transfer, correcting the stored
// instant that later iterations' rotation gates reference.
func (e *engine) runEmission(p *sim.Proc, orig *model.Channel, rt chanrt.RT) {
	for k := 0; k < e.iters; k++ {
		for len(e.ys) <= k {
			p.WaitEvent(e.progress)
		}
		y := e.ys[k]
		if !y.IsEpsilon() && sim.Time(y) > p.Now() {
			p.WaitUntil(sim.Time(y))
		}
		rt.Write(p, e.arch.TokenOf(orig, k))
		actual := maxplus.T(p.Now())
		if fifo, ok := rt.(*chanrt.FIFO); ok {
			actual = fifo.WriteInstant(k)
		}
		*e.slot(e.outNode, k) = actual
		e.confirmed = k + 1
		e.progress.Notify()
	}
}

// record reconstructs the group's observable evolution of iteration k:
// internal instant labels (boundary channels are recorded by their real
// runtimes) and execution activities.
func (e *engine) record(k int) {
	for _, n := range e.graph.Nodes() {
		label, ok := e.dres.Labels[n.ID]
		if !ok || e.skipLabel[label] {
			continue
		}
		e.trace.RecordInstant(label, e.value(n.ID, k))
	}
	for _, pr := range e.dres.Probes {
		start := pr.Start(e.value(pr.Base, k), k)
		if start == maxplus.Epsilon {
			continue
		}
		load := pr.Exec.Load(k)
		e.trace.RecordActivity(observe.Activity{
			Resource: pr.Exec.Resource.Name,
			Label:    pr.Exec.Label,
			K:        k,
			Start:    start,
			End:      maxplus.Otimes(start, pr.Exec.Resource.DurationOf(load)),
			Ops:      load.Ops,
		})
	}
}
