// Package hybrid implements partial abstraction — the paper's general
// formulation of the method: "the proposed method allows some of the
// architecture processes to be combined into a single equivalent
// executable model as seen by the simulator". A chosen group of functions
// is replaced by an equivalent model (Reception / ComputeInstant /
// Emission over the group's temporal dependency graph) while the rest of
// the architecture keeps running event-by-event; the two halves meet at
// the group's boundary channels.
//
// Exactness across the boundary needs one care the whole-architecture
// case does not: the group's emission instant y(k) is only the earliest
// possible boundary transfer — a slow external reader can make the true
// transfer later, and internal instants of later iterations reference it
// (the writer's rotation gate). The engine therefore confirms each output
// transfer as it happens, corrects the stored instant, and defers
// ComputeInstant(k) until iteration k-1 is confirmed. Because the output
// writer's turn k starts no earlier than the confirmed transfer k-1, the
// deferral never delays an emission, and every computed instant is final
// when produced.
//
// Scope: the group must be closed under resources (a resource's rotation
// is either fully abstracted or fully simulated), must emit through
// exactly one boundary output channel, and the boundary write must be its
// writer's final statement. Violations are reported as errors.
package hybrid

import (
	"fmt"

	"dyncomp/internal/baseline"
	"dyncomp/internal/chanrt"
	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// Options configures a hybrid run.
type Options struct {
	// Group names the functions to abstract into the equivalent model.
	Group []string
	// Trace records evolution instants and resource activity of both the
	// simulated and the abstracted parts, comparable bit-exact with a full
	// reference run.
	Trace *observe.Trace
	// Limit bounds simulation time; zero runs to completion.
	Limit sim.Time
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// Derive sets the derivation options (arc reduction, pad nodes) for
	// the group's graph.
	Derive derive.Options
	// Reduce prunes value-redundant arcs from the group's graph; it is
	// the pre-Derive spelling of Derive.Reduce and ORs into it.
	Reduce bool
	// Cache supplies a shared structure-keyed derivation cache for the
	// group's graph (e.g. from a design-space sweep); nil derives
	// privately.
	Cache *derive.Cache
	// Interpreted forces the group's instants through the tree-walking
	// graph interpreter instead of the compiled evaluation program. Off
	// by default; the property tests flip it.
	Interpreted bool
}

// Result reports a completed hybrid run.
type Result struct {
	Stats      sim.Stats
	Trace      *observe.Trace
	Iterations int
	GraphNodes int // abstracted group's graph size (paper counting)
}

// Run simulates the architecture with the named group abstracted.
func Run(a *model.Architecture, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	group, err := resolveGroup(a, opts.Group)
	if err != nil {
		return nil, err
	}
	iters, err := iterationCount(a)
	if err != nil {
		return nil, err
	}
	if opts.IterLimit > 0 && opts.IterLimit < iters {
		iters = opts.IterLimit
	}
	sub, err := buildSub(a, group, iters)
	if err != nil {
		return nil, err
	}
	dopts := opts.Derive
	if opts.Reduce {
		dopts.Reduce = true
	}
	var dres *derive.Result
	if opts.Cache != nil {
		dres, err = opts.Cache.Derive(sub.arch, dopts)
	} else {
		dres, err = derive.Derive(sub.arch, dopts)
	}
	if err != nil {
		return nil, err
	}
	if err := checkBoundary(dres); err != nil {
		return nil, err
	}

	limit := opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}
	kern := sim.New()

	// Boundary channels get shared runtimes that record the real transfer
	// instants; internal channels of the group exist only as computed
	// instants.
	boundary := map[*model.Channel]chanrt.RT{}
	for _, ch := range sub.inOrig {
		boundary[ch] = chanrt.New(kern, ch, opts.Trace)
	}
	outOrig := sub.outOrig[0]
	boundary[outOrig] = chanrt.New(kern, outOrig, opts.Trace)

	inGroup := func(f *model.Function) bool { return group[f] }
	internal := func(ch *model.Channel) bool { return sub.internal[ch] }
	if _, err := baseline.Attach(kern, a, baseline.AttachOptions{
		Trace:       opts.Trace,
		Skip:        inGroup,
		SkipChannel: internal,
		Chans:       boundary,
		IterLimit:   opts.IterLimit,
	}); err != nil {
		return nil, err
	}

	eng := newEngine(a, sub, dres, kern, opts.Trace, iters)
	if opts.Interpreted {
		eng.prog = nil
	}
	eng.build(boundary)

	if err := kern.Run(limit); err != nil {
		return nil, err
	}
	return &Result{
		Stats:      kern.Stats(),
		Trace:      opts.Trace,
		Iterations: eng.nodeDone[eng.outNode],
		GraphNodes: dres.Graph.NodeCountWithDelays(),
	}, nil
}

func resolveGroup(a *model.Architecture, names []string) (map[*model.Function]bool, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("hybrid: empty group")
	}
	byName := map[string]*model.Function{}
	for _, f := range a.Functions {
		byName[f.Name] = f
	}
	group := map[*model.Function]bool{}
	for _, n := range names {
		f, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("hybrid: unknown function %q", n)
		}
		group[f] = true
	}
	// Resource closure: rotations must not straddle the boundary.
	for _, r := range a.Resources {
		in, out := 0, 0
		for _, f := range r.Rotation {
			if group[f] {
				in++
			} else {
				out++
			}
		}
		if in > 0 && out > 0 {
			return nil, fmt.Errorf("hybrid: resource %q is shared between the group and the rest; abstract whole resources", r.Name)
		}
	}
	return group, nil
}

func iterationCount(a *model.Architecture) (int, error) {
	if len(a.Sources) == 0 {
		return 0, fmt.Errorf("hybrid: architecture has no sources")
	}
	n := a.Sources[0].Count
	for _, s := range a.Sources[1:] {
		if s.Count != n {
			return 0, fmt.Errorf("hybrid: sources produce different token counts (%d vs %d)", n, s.Count)
		}
	}
	return n, nil
}

// checkBoundary enforces the supported abstraction boundary: exactly one
// output, whose node has no zero-delay dependents (other than the read
// node of its own FIFO channel).
func checkBoundary(dres *derive.Result) error {
	if len(dres.Inputs) == 0 {
		return fmt.Errorf("hybrid: group has no boundary inputs")
	}
	if len(dres.Outputs) != 1 {
		return fmt.Errorf("hybrid: group has %d boundary output channels; exactly 1 is supported", len(dres.Outputs))
	}
	out := dres.Outputs[0]
	g := dres.Graph
	for _, n := range g.Nodes() {
		for _, arc := range g.Incoming(n.ID) {
			if arc.From != out.Node || arc.Delay != 0 {
				continue
			}
			if out.Channel.Kind == model.FIFO && n.Name == out.Channel.Name+".r" {
				continue // the xw -> xr arc of the boundary FIFO itself
			}
			return fmt.Errorf("hybrid: instant %q depends on the boundary output in the same iteration; emit boundary outputs as the writer's final statement", n.Name)
		}
	}
	return nil
}

// boundaryLabels lists the instant labels recorded by the boundary
// channel runtimes, which the computed recording must skip.
func boundaryLabels(sub *subArch) map[string]bool {
	skip := map[string]bool{}
	mark := func(ch *model.Channel) {
		skip[ch.Name] = true
		skip[ch.Name+".w"] = true
		skip[ch.Name+".r"] = true
	}
	for _, ch := range sub.inOrig {
		mark(ch)
	}
	for _, ch := range sub.outOrig {
		mark(ch)
	}
	return skip
}
