package hybrid

import (
	"context"
	"fmt"
	"time"

	uni "dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// hybEngine adapts partial abstraction to the uniform engine contract.
// It is the one engine that requires Options.AbstractGroup: the named
// functions are abstracted into an equivalent model, the rest of the
// architecture runs event-by-event.
type hybEngine struct{}

func (hybEngine) Name() string { return "hybrid" }

func (hybEngine) Run(ctx context.Context, a *model.Architecture, opts uni.Options) (*uni.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(opts.AbstractGroup) == 0 {
		return nil, fmt.Errorf("hybrid: engine needs Options.AbstractGroup (the functions to abstract)")
	}
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/hybrid")
	}
	begin := time.Now()
	res, err := Run(a, Options{
		Group:       opts.AbstractGroup,
		Trace:       trace,
		Limit:       sim.Time(opts.LimitNs),
		IterLimit:   opts.IterLimit,
		Derive:      opts.Derive,
		Cache:       opts.Cache,
		Interpreted: opts.Interpreted,
	})
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(res.Iterations, res.Iterations)
	}
	return &uni.Result{
		Trace:       trace,
		Activations: res.Stats.Activations,
		Events:      res.Stats.Events(),
		FinalTimeNs: int64(res.Stats.FinalTime),
		WallNs:      time.Since(begin).Nanoseconds(),
		Iterations:  res.Iterations,
		GraphNodes:  res.GraphNodes,
	}, nil
}

func init() { uni.Register(hybEngine{}) }
