package hybrid

import (
	"sort"
	"strings"
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/lte"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// runFull produces the full event-driven reference trace.
func runFull(t *testing.T, a *model.Architecture) *observe.Trace {
	t.Helper()
	tr := observe.NewTrace("full")
	if _, err := baseline.Run(a, baseline.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func assertSameActivities(t *testing.T, full, hyb *observe.Trace) {
	t.Helper()
	fr := append([]string(nil), full.Resources()...)
	hr := append([]string(nil), hyb.Resources()...)
	sort.Strings(fr)
	sort.Strings(hr)
	if strings.Join(fr, ",") != strings.Join(hr, ",") {
		t.Fatalf("resource sets differ: %v vs %v", fr, hr)
	}
	for _, r := range fr {
		fa := append([]observe.Activity(nil), full.Activities(r)...)
		ha := append([]observe.Activity(nil), hyb.Activities(r)...)
		if len(fa) != len(ha) {
			t.Fatalf("%s: %d vs %d activities", r, len(fa), len(ha))
		}
		counts := map[observe.Activity]int{}
		for _, a := range fa {
			counts[a]++
		}
		for _, a := range ha {
			if counts[a] == 0 {
				t.Fatalf("%s: activity %+v missing from full run", r, a)
			}
			counts[a]--
		}
	}
}

// Abstracting the P2 subsystem {F3, F4} of the didactic example — the
// paper's "grouping some of the architecture processes" — must leave
// every evolution instant of the whole architecture unchanged. This group
// has two boundary inputs (M2 and M4, with a same-iteration gate between
// them) and one output (M6).
func TestHybridDidacticP2Group(t *testing.T) {
	for _, period := range []int64{0, 300, 2000} {
		spec := zoo.DidacticSpec{Tokens: 300, Period: maxplus.T(period), Seed: 7}
		full := runFull(t, zoo.Didactic(spec))
		ht := observe.NewTrace("hybrid")
		res, err := Run(zoo.Didactic(spec), Options{Group: []string{"F3", "F4"}, Trace: ht})
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		if err := observe.CompareInstants(full, ht); err != nil {
			t.Fatalf("period %d: accuracy violated: %v", period, err)
		}
		assertSameActivities(t, full, ht)
		if res.Iterations != 300 {
			t.Fatalf("iterations = %d", res.Iterations)
		}
	}
}

// Abstracting everything reproduces the whole-architecture equivalent
// model through the hybrid path.
func TestHybridFullGroup(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 200, Period: 900, Seed: 3}
	full := runFull(t, zoo.Didactic(spec))
	ht := observe.NewTrace("hybrid")
	res, err := Run(zoo.Didactic(spec), Options{Group: []string{"F1", "F2", "F3", "F4"}, Trace: ht})
	if err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(full, ht); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
	assertSameActivities(t, full, ht)
	if res.GraphNodes != 10 {
		t.Fatalf("graph nodes = %d, want 10", res.GraphNodes)
	}
}

// Abstracting one stage of a chain: the boundary output feeds a real
// downstream stage whose backpressure must flow into the abstracted
// group's instants (the confirm path).
func TestHybridChainStage(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 250, Period: 600, Seed: 11} // backpressured
	group := []string{"F1", "F2", "F3", "F4"}                    // first stage only
	full := runFull(t, zoo.DidacticChain(3, spec))
	ht := observe.NewTrace("hybrid")
	if _, err := Run(zoo.DidacticChain(3, spec), Options{Group: group, Trace: ht}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(full, ht); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
	assertSameActivities(t, full, ht)
}

// A middle stage: both boundaries internal to the architecture.
func TestHybridChainMiddleStage(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 200, Period: 700, Seed: 13}
	group := []string{"F1_2", "F2_2", "F3_2", "F4_2"}
	full := runFull(t, zoo.DidacticChain(3, spec))
	ht := observe.NewTrace("hybrid")
	if _, err := Run(zoo.DidacticChain(3, spec), Options{Group: group, Trace: ht}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(full, ht); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
	assertSameActivities(t, full, ht)
}

// The LTE DSP cluster abstracted, the hardware decoder still simulated:
// the decoder is the bottleneck, so its backpressure shapes the DSP
// instants across the boundary — including the Reception gate itself,
// whose rotation term references the group's own output channel. Long
// runs with heavy frames exercise that feedback path.
func TestHybridLTEDSPGroup(t *testing.T) {
	group := lte.FunctionNames[:7]
	for _, tc := range []struct {
		frames int
		seed   int64
	}{{4, 9}, {20, 23}, {30, 5}} {
		symbols := tc.frames * lte.SymbolsPerFrame
		full := runFull(t, lte.Receiver(lte.Spec{Symbols: symbols, Seed: tc.seed}))
		ht := observe.NewTrace("hybrid")
		res, err := Run(lte.Receiver(lte.Spec{Symbols: symbols, Seed: tc.seed}), Options{Group: group, Trace: ht})
		if err != nil {
			t.Fatal(err)
		}
		if err := observe.CompareInstants(full, ht); err != nil {
			t.Fatalf("frames=%d seed=%d: accuracy violated: %v", tc.frames, tc.seed, err)
		}
		assertSameActivities(t, full, ht)
		if res.GraphNodes == 0 {
			t.Fatal("graph nodes not reported")
		}
	}
}

// The decoder alone as the abstracted group.
func TestHybridLTEDecoderGroup(t *testing.T) {
	symbols := 3 * lte.SymbolsPerFrame
	full := runFull(t, lte.Receiver(lte.Spec{Symbols: symbols, Seed: 4}))
	ht := observe.NewTrace("hybrid")
	if _, err := Run(lte.Receiver(lte.Spec{Symbols: symbols, Seed: 4}), Options{Group: []string{"ChannelDecoder"}, Trace: ht}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(full, ht); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
	assertSameActivities(t, full, ht)
}

// With reduction enabled the hybrid stays exact.
func TestHybridReduced(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 150, Period: 500, Seed: 21}
	full := runFull(t, zoo.Didactic(spec))
	ht := observe.NewTrace("hybrid")
	if _, err := Run(zoo.Didactic(spec), Options{Group: []string{"F3", "F4"}, Trace: ht, Reduce: true}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(full, ht); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
}

// Abstracting a large enough group must save events versus the full
// reference (small groups pay more boundary overhead than they save; the
// LTE DSP cluster with 7 functions is the paper-style win).
func TestHybridSavesEvents(t *testing.T) {
	symbols := 10 * lte.SymbolsPerFrame
	fres, err := baseline.Run(lte.Receiver(lte.Spec{Symbols: symbols, Seed: 2}), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(lte.Receiver(lte.Spec{Symbols: symbols, Seed: 2}), Options{Group: lte.FunctionNames[:7]})
	if err != nil {
		t.Fatal(err)
	}
	if hres.Stats.Activations >= fres.Stats.Activations {
		t.Fatalf("no saving: hybrid %d vs full %d", hres.Stats.Activations, fres.Stats.Activations)
	}
}

func TestHybridErrors(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 10, Period: 100, Seed: 1}
	cases := []struct {
		name  string
		group []string
		want  string
	}{
		{"empty", nil, "empty group"},
		{"unknown", []string{"nope"}, "unknown function"},
		{"straddle", []string{"F1"}, "shared between"},
		{"two-outputs", []string{"F1", "F2"}, "output channels"},
	}
	for _, tc := range cases {
		_, err := Run(zoo.Didactic(spec), Options{Group: tc.group})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestHybridRejectsInvalidArchitecture(t *testing.T) {
	a := model.NewArchitecture("broken")
	a.AddChannel("M", model.Rendezvous, 0)
	if _, err := Run(a, Options{Group: []string{"F"}}); err == nil {
		t.Fatal("expected error")
	}
}

// Property: abstracting any single stage of a randomized chain stays
// bit-exact against the full reference, across seeds and source regimes.
func TestHybridRandomizedChains(t *testing.T) {
	stageNames := func(s int) []string {
		if s == 0 {
			return []string{"F1", "F2", "F3", "F4"}
		}
		suffix := []string{"", "_2", "_3"}[s]
		return []string{"F1" + suffix, "F2" + suffix, "F3" + suffix, "F4" + suffix}
	}
	for seed := int64(0); seed < 12; seed++ {
		period := maxplus.T(0)
		if seed%2 == 0 {
			period = maxplus.T(400 + 200*seed)
		}
		spec := zoo.DidacticSpec{Tokens: 120, Period: period, Seed: seed}
		full := runFull(t, zoo.DidacticChain(3, spec))
		stage := int(seed) % 3
		ht := observe.NewTrace("hybrid")
		if _, err := Run(zoo.DidacticChain(3, spec), Options{Group: stageNames(stage), Trace: ht}); err != nil {
			t.Fatalf("seed %d stage %d: %v", seed, stage, err)
		}
		if err := observe.CompareInstants(full, ht); err != nil {
			t.Fatalf("seed %d stage %d: accuracy violated: %v", seed, stage, err)
		}
	}
}
