package hybrid

import (
	"fmt"

	"dyncomp/internal/model"
)

// subArch is the mirrored sub-architecture of an abstracted group: the
// group's functions and internal channels, with synthetic sources feeding
// the boundary inputs and a synthetic sink draining the boundary output.
// Mirrored channels keep their original names so instant labels line up
// with a full reference run.
type subArch struct {
	arch     *model.Architecture
	mirror   map[*model.Channel]*model.Channel // original -> mirrored
	internal map[*model.Channel]bool           // original channels internal to the group
	inOrig   []*model.Channel                  // boundary inputs, in synthetic-source order
	outOrig  []*model.Channel                  // boundary outputs
}

// buildSub mirrors the group into a standalone architecture suitable for
// derivation. Token provenance of the synthetic sources resolves through
// the full architecture, so data-dependent durations stay identical.
func buildSub(a *model.Architecture, group map[*model.Function]bool, iters int) (*subArch, error) {
	sub := &subArch{
		arch:     model.NewArchitecture(a.Name + "/group"),
		mirror:   map[*model.Channel]*model.Channel{},
		internal: map[*model.Channel]bool{},
	}

	endpointIn := func(f *model.Function) bool { return f != nil && group[f] }
	for _, ch := range a.Channels {
		wIn := endpointIn(ch.WriterFunc)
		rIn := endpointIn(ch.ReaderFunc)
		if !wIn && !rIn {
			continue // fully outside
		}
		m := sub.arch.AddChannel(ch.Name, ch.Kind, ch.Capacity)
		sub.mirror[ch] = m
		switch {
		case wIn && rIn:
			sub.internal[ch] = true
		case rIn:
			sub.inOrig = append(sub.inOrig, ch)
		default:
			sub.outOrig = append(sub.outOrig, ch)
		}
	}

	// Mirror the group's functions with re-pointed channel references.
	mirrored := map[*model.Function]*model.Function{}
	for _, f := range a.Functions {
		if !group[f] {
			continue
		}
		body := make([]model.Stmt, len(f.Body))
		for i, st := range f.Body {
			switch s := st.(type) {
			case model.Read:
				mc := sub.mirror[s.Ch]
				if mc == nil {
					return nil, fmt.Errorf("hybrid: channel %q of %q not mirrored", s.Ch.Name, f.Name)
				}
				body[i] = model.Read{Ch: mc}
			case model.Write:
				mc := sub.mirror[s.Ch]
				if mc == nil {
					return nil, fmt.Errorf("hybrid: channel %q of %q not mirrored", s.Ch.Name, f.Name)
				}
				body[i] = model.Write{Ch: mc}
			default:
				body[i] = st
			}
		}
		mirrored[f] = sub.arch.AddFunction(f.Name, body...)
	}

	// Mirror the group's resources, preserving rotation order.
	for _, r := range a.Resources {
		if len(r.Rotation) == 0 || !group[r.Rotation[0]] {
			continue
		}
		var mr *model.Resource
		if r.Kind == model.Hardware {
			mr = sub.arch.AddHardware(r.Name, r.OpsPerSec)
		} else {
			mr = sub.arch.AddProcessor(r.Name, r.OpsPerSec)
		}
		for _, f := range r.Rotation {
			sub.arch.Map(mr, mirrored[f])
		}
	}

	// Synthetic environment: sources deliver the tokens that really cross
	// the boundary; the schedule is irrelevant (the equivalent model feeds
	// observed arrival instants).
	for _, ch := range sub.inOrig {
		orig := ch
		sub.arch.AddSource("bsrc:"+ch.Name, sub.mirror[ch], model.Eager(), func(k int) model.Token {
			return a.TokenOf(orig, k)
		}, iters)
	}
	for _, ch := range sub.outOrig {
		sub.arch.AddSink("bsink:"+ch.Name, sub.mirror[ch])
	}

	if err := sub.arch.Validate(); err != nil {
		return nil, fmt.Errorf("hybrid: group sub-architecture invalid: %w", err)
	}
	return sub, nil
}
