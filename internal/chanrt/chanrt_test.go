package chanrt

import (
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

func TestRendezvousWriterFirst(t *testing.T) {
	k := sim.New()
	tr := observe.NewTrace("t")
	ch := NewRV(k, &model.Channel{Name: "M"}, tr)
	var got model.Token
	var readAt, writeDone sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		p.Wait(5)
		ch.Write(p, model.Token{K: 1, Size: 42})
		writeDone = p.Now()
	})
	k.Spawn("reader", func(p *sim.Proc) {
		p.Wait(20)
		got = ch.Read(p)
		readAt = p.Now()
	})
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if got.Size != 42 {
		t.Fatalf("token = %+v", got)
	}
	// Transfer at max(5, 20) = 20; the blocked writer resumes then.
	if readAt != 20 || writeDone != 20 {
		t.Fatalf("readAt=%d writeDone=%d, want 20/20", readAt, writeDone)
	}
	xs := tr.Instants("M")
	if len(xs) != 1 || xs[0] != 20 {
		t.Fatalf("instants = %v", xs)
	}
}

func TestRendezvousReaderFirst(t *testing.T) {
	k := sim.New()
	tr := observe.NewTrace("t")
	ch := NewRV(k, &model.Channel{Name: "M"}, tr)
	var readAt sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		ch.Read(p)
		readAt = p.Now()
	})
	k.Spawn("writer", func(p *sim.Proc) {
		p.Wait(7)
		ch.Write(p, model.Token{})
	})
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if readAt != 7 {
		t.Fatalf("readAt = %d, want 7", readAt)
	}
}

func TestRendezvousSequence(t *testing.T) {
	k := sim.New()
	tr := observe.NewTrace("t")
	ch := NewRV(k, &model.Channel{Name: "M"}, tr)
	const n = 50
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Wait(3)
			ch.Write(p, model.Token{K: i})
		}
	})
	var seen []int
	k.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Wait(5)
			tok := ch.Read(p)
			seen = append(seen, tok.K)
		}
	})
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("read %d tokens", len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("token order broken at %d: %d", i, v)
		}
	}
	// Reader is the slow side: transfers every 5 ticks.
	xs := tr.Instants("M")
	for i := 1; i < len(xs); i++ {
		if xs[i]-xs[i-1] != 5 {
			t.Fatalf("transfer spacing %v at %d", xs[i]-xs[i-1], i)
		}
	}
}

func TestFIFOBuffering(t *testing.T) {
	k := sim.New()
	tr := observe.NewTrace("t")
	ch := NewFIFO(k, &model.Channel{Name: "F", Kind: model.FIFO, Capacity: 2}, tr)
	var writeTimes []sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ch.Write(p, model.Token{K: i})
			writeTimes = append(writeTimes, p.Now())
		}
	})
	k.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.Wait(10)
			ch.Read(p)
		}
	})
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	// First two writes immediate; third waits for the first read (t=10),
	// fourth for the second (t=20).
	want := []sim.Time{0, 0, 10, 20}
	for i, w := range want {
		if writeTimes[i] != w {
			t.Fatalf("write %d at %d, want %d (all: %v)", i, writeTimes[i], w, writeTimes)
		}
	}
	if got := ch.WriteInstant(2); got != 10 {
		t.Fatalf("WriteInstant(2) = %v", got)
	}
	if got := ch.WriteInstant(99); got != maxplus.Epsilon {
		t.Fatalf("WriteInstant(99) = %v, want ε", got)
	}
	if got := ch.WriteInstant(-1); got != maxplus.Epsilon {
		t.Fatalf("WriteInstant(-1) = %v, want ε", got)
	}
	// Trace labels.
	if len(tr.Instants("F.w")) != 4 || len(tr.Instants("F.r")) != 4 {
		t.Fatalf("labels: %v", tr.Labels())
	}
}

func TestFIFOReaderBlocksWhenEmpty(t *testing.T) {
	k := sim.New()
	ch := NewFIFO(k, &model.Channel{Name: "F", Kind: model.FIFO, Capacity: 4}, nil)
	var readAt sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		ch.Read(p)
		readAt = p.Now()
	})
	k.Spawn("writer", func(p *sim.Proc) {
		p.Wait(33)
		ch.Write(p, model.Token{})
	})
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if readAt != 33 {
		t.Fatalf("readAt = %d", readAt)
	}
}

func TestNewSelectsProtocol(t *testing.T) {
	k := sim.New()
	if _, ok := New(k, &model.Channel{Name: "a", Kind: model.Rendezvous}, nil).(*RV); !ok {
		t.Fatal("expected RV")
	}
	if _, ok := New(k, &model.Channel{Name: "b", Kind: model.FIFO, Capacity: 1}, nil).(*FIFO); !ok {
		t.Fatal("expected FIFO")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestNilTraceRecordsNothing(t *testing.T) {
	k := sim.New()
	ch := NewRV(k, &model.Channel{Name: "M"}, nil)
	k.Spawn("w", func(p *sim.Proc) { ch.Write(p, model.Token{}) })
	k.Spawn("r", func(p *sim.Proc) { ch.Read(p) })
	if err := k.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
}
