// Package chanrt provides the simulation runtimes of the two channel
// protocols of the modelling layer — rendezvous and bounded FIFO — on top
// of the discrete-event kernel. Both the event-driven reference executor
// and the equivalent model use these runtimes, so channel timing semantics
// are identical by construction.
package chanrt

import (
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// RT is the runtime of one channel.
type RT interface {
	// Read blocks until a token is available and consumes it.
	Read(p *sim.Proc) model.Token
	// Write offers a token, blocking according to the protocol.
	Write(p *sim.Proc, tok model.Token)
}

// New builds the runtime matching the channel's protocol.
func New(k *sim.Kernel, ch *model.Channel, trace *observe.Trace) RT {
	if ch.Kind == model.FIFO {
		return NewFIFO(k, ch, trace)
	}
	return NewRV(k, ch, trace)
}

// RV implements the rendezvous protocol: writer and reader wait on each
// other, and the transfer — one simulation event — happens at the max of
// both ready instants, which is the evolution instant x_M(k).
type RV struct {
	name        string
	ev          *sim.Event
	writerReady bool
	readerReady bool
	pending     model.Token
	k           int
	trace       *observe.Trace
}

// NewRV creates a rendezvous runtime recording transfer instants under the
// channel name when trace is non-nil.
func NewRV(k *sim.Kernel, ch *model.Channel, trace *observe.Trace) *RV {
	return &RV{name: ch.Name, ev: k.NewEvent(ch.Name), trace: trace}
}

func (c *RV) record(at sim.Time) {
	if c.trace != nil {
		c.trace.RecordInstant(c.name, maxplus.T(at))
	}
	c.k++
}

// Write implements RT. If the reader arrived first the writer completes
// the transfer immediately; otherwise it blocks until the reader does.
func (c *RV) Write(p *sim.Proc, tok model.Token) {
	if c.readerReady {
		c.readerReady = false
		c.pending = tok
		c.record(p.Now())
		c.ev.Notify()
		return
	}
	c.writerReady = true
	c.pending = tok
	p.WaitEvent(c.ev)
}

// Read implements RT, symmetrically to Write.
func (c *RV) Read(p *sim.Proc) model.Token {
	if c.writerReady {
		c.writerReady = false
		tok := c.pending
		c.record(p.Now())
		c.ev.Notify()
		return tok
	}
	c.readerReady = true
	p.WaitEvent(c.ev)
	return c.pending
}

// FIFO implements a bounded FIFO channel: the writer blocks only when the
// buffer is full, the reader only when it is empty. Write and read
// instants are the two evolution instants xw_M(k) and xr_M(k); they are
// recorded under "<name>.w" and "<name>.r".
type FIFO struct {
	name     string
	buf      []model.Token
	head     int
	n        int
	notFull  *sim.Event
	notEmpty *sim.Event
	writes   []maxplus.T // write instants by k, queryable by the equivalent model
	trace    *observe.Trace
}

// NewFIFO creates a FIFO runtime with the channel's capacity.
func NewFIFO(k *sim.Kernel, ch *model.Channel, trace *observe.Trace) *FIFO {
	return &FIFO{
		name:     ch.Name,
		buf:      make([]model.Token, ch.Capacity),
		notFull:  k.NewEvent(ch.Name + ".notfull"),
		notEmpty: k.NewEvent(ch.Name + ".notempty"),
		trace:    trace,
	}
}

// Write implements RT.
func (c *FIFO) Write(p *sim.Proc, tok model.Token) {
	for c.n == len(c.buf) {
		p.WaitEvent(c.notFull)
	}
	c.buf[(c.head+c.n)%len(c.buf)] = tok
	c.n++
	if c.trace != nil {
		c.trace.RecordInstant(c.name+".w", maxplus.T(p.Now()))
	}
	c.writes = append(c.writes, maxplus.T(p.Now()))
	c.notEmpty.Notify()
}

// Read implements RT.
func (c *FIFO) Read(p *sim.Proc) model.Token {
	for c.n == 0 {
		p.WaitEvent(c.notEmpty)
	}
	tok := c.buf[c.head]
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	if c.trace != nil {
		c.trace.RecordInstant(c.name+".r", maxplus.T(p.Now()))
	}
	c.notFull.Notify()
	return tok
}

// WriteInstant returns the recorded instant of the k-th write; the
// equivalent model feeds it into the temporal dependency graph as the
// input instant.
func (c *FIFO) WriteInstant(k int) maxplus.T {
	if k < 0 || k >= len(c.writes) {
		return maxplus.Epsilon
	}
	return c.writes[k]
}
