package adaptive

import (
	"context"
	"time"

	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// adEngine adapts temporal abstraction to the uniform engine contract.
// Result.WallNs covers the whole adaptive run: graph (re-)derivation
// through the cache is part of how this engine executes, not a separate
// model-generation step.
type adEngine struct{}

func (adEngine) Name() string { return "adaptive" }

func (adEngine) Run(ctx context.Context, a *model.Architecture, opts engine.Options) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/adaptive")
	}
	begin := time.Now()
	res, err := Run(a, Options{
		Trace:       trace,
		Limit:       sim.Time(opts.LimitNs),
		Window:      opts.WindowK,
		Confidence:  opts.Confidence,
		Derive:      opts.Derive,
		Cache:       opts.Cache,
		IterLimit:   opts.IterLimit,
		Ctx:         ctx,
		Progress:    opts.Progress,
		Interpreted: opts.Interpreted,
	})
	if err != nil {
		return nil, err
	}
	return &engine.Result{
		Trace:       trace,
		Activations: res.Stats.Activations,
		Events:      res.Stats.Events(),
		FinalTimeNs: int64(res.Stats.FinalTime),
		WallNs:      time.Since(begin).Nanoseconds(),
		Iterations:  res.Iterations,
		GraphNodes:  res.GraphNodes,
		Switches:    res.Switches,
		Fallbacks:   res.Fallbacks,
	}, nil
}

func init() { engine.Register(adEngine{}) }
