package adaptive

import (
	"fmt"
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/workload"
	"dyncomp/internal/zoo"
)

// refTrace runs the pure reference executor on a fresh architecture
// instance and returns its trace and stats.
func refTrace(t *testing.T, build func() *model.Architecture) (*observe.Trace, *baseline.Result) {
	t.Helper()
	tr := observe.NewTrace("reference")
	res, err := baseline.Run(build(), baseline.Options{Trace: tr})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return tr, res
}

// scenarios is the full test matrix: every scenario must produce a
// bit-exact adaptive trace, whatever mix of detailed and abstract phases
// the controller chooses.
func scenarios() map[string]func() *model.Architecture {
	return map[string]func() *model.Architecture{
		"didactic-random": func() *model.Architecture {
			// Per-iteration random sizes: never steady, stays detailed.
			return zoo.Didactic(zoo.DidacticSpec{Tokens: 120, Period: 1200, Seed: 41})
		},
		"didactic-constant": func() *model.Architecture {
			// One steady regime: a single switch, no fallback.
			return zoo.Didactic(zoo.DidacticSpec{Tokens: 200, Period: 1200,
				Sizes: func(int) int64 { return 128 }})
		},
		"didactic-eager-constant": func() *model.Architecture {
			// Eager source: rate set purely by backpressure.
			return zoo.Didactic(zoo.DidacticSpec{Tokens: 200,
				Sizes: func(int) int64 { return 96 }})
		},
		"phased": func() *model.Architecture {
			return zoo.Phased(zoo.PhasedSpec{Tokens: 600, Period: 1100, Seed: 7})
		},
		"phased-eager": func() *model.Architecture {
			return zoo.Phased(zoo.PhasedSpec{Tokens: 400, Seed: 11})
		},
		"phased-fifo": func() *model.Architecture {
			return zoo.Phased(zoo.PhasedSpec{Tokens: 400, Period: 1100, Seed: 13, UseFIFO: true})
		},
		"phased-fifo-eager": func() *model.Architecture {
			return zoo.Phased(zoo.PhasedSpec{Tokens: 300, Seed: 17, UseFIFO: true})
		},
		"phased-chain": func() *model.Architecture {
			return zoo.Phased(zoo.PhasedSpec{Tokens: 300, Period: 1300, Seed: 19, Stages: 3})
		},
		"pipeline-steady": func() *model.Architecture {
			return zoo.Pipeline(zoo.PipelineSpec{XSize: 8, Tokens: 200, Period: 600, Seed: 0})
		},
	}
}

// TestBitExactVsReference is the acceptance guard: on every scenario the
// adaptive engine's trace must agree bit-exact with the reference
// executor, for several steady-state windows (small windows force many
// chunk boundaries and exercise the resume floors heavily).
func TestBitExactVsReference(t *testing.T) {
	for name, build := range scenarios() {
		t.Run(name, func(t *testing.T) {
			want, _ := refTrace(t, build)
			for _, w := range []int{2, 3, 5, 8, 100000} {
				got := observe.NewTrace("adaptive")
				res, err := Run(build(), Options{Trace: got, Window: w})
				if err != nil {
					t.Fatalf("window %d: %v", w, err)
				}
				if err := observe.CompareInstants(want, got); err != nil {
					t.Fatalf("window %d: trace differs: %v", w, err)
				}
				if res.DetailedIters+res.AbstractIters != res.Iterations {
					t.Fatalf("window %d: iteration accounting: %d + %d != %d",
						w, res.DetailedIters, res.AbstractIters, res.Iterations)
				}
			}
		})
	}
}

// TestActivitiesMatchReference checks that the reconstructed resource
// activities (not only the instants) agree with the reference executor.
// Recording order within a resource differs between engines (the
// simulator interleaves by start time, the computed reconstruction goes
// iteration by iteration — same as the equivalent model), so activities
// are compared as sets keyed by (label, iteration).
func TestActivitiesMatchReference(t *testing.T) {
	build := func() *model.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 300, Period: 1100, Seed: 7})
	}
	want, _ := refTrace(t, build)
	got := observe.NewTrace("adaptive")
	if _, err := Run(build(), Options{Trace: got}); err != nil {
		t.Fatal(err)
	}
	key := func(a observe.Activity) string { return fmt.Sprintf("%s/%d", a.Label, a.K) }
	for _, res := range want.Resources() {
		wa, ga := want.Activities(res), got.Activities(res)
		if len(wa) != len(ga) {
			t.Fatalf("resource %s: %d vs %d activities", res, len(wa), len(ga))
		}
		byKey := make(map[string]observe.Activity, len(wa))
		for _, a := range wa {
			byKey[key(a)] = a
		}
		for _, a := range ga {
			if w, ok := byKey[key(a)]; !ok || w != a {
				t.Fatalf("resource %s activity %+v: reference has %+v", res, a, w)
			}
		}
	}
}

// TestEventsSavedAndFallbacks is the paper-facing acceptance criterion:
// on the phase-changing workload the adaptive engine executes at least
// 50% fewer kernel events than the reference executor while remaining
// bit-exact, and the run exercises both switch directions.
func TestEventsSavedAndFallbacks(t *testing.T) {
	build := func() *model.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 1200, Period: 1100, Seed: 7})
	}
	want, ref := refTrace(t, build)
	got := observe.NewTrace("adaptive")
	res, err := Run(build(), Options{Trace: got})
	if err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(want, got); err != nil {
		t.Fatalf("trace differs: %v", err)
	}
	refEvents := ref.Stats.Events()
	if res.Stats.Events() > refEvents/2 {
		t.Fatalf("adaptive paid %d kernel events, want <= half of reference's %d",
			res.Stats.Events(), refEvents)
	}
	if res.Switches < 1 {
		t.Fatalf("no detailed→abstract switch: %+v", res)
	}
	if res.Fallbacks < 1 {
		t.Fatalf("no abstract→detailed fallback: %+v", res)
	}
	if res.AbstractIters <= res.DetailedIters {
		t.Fatalf("abstract share too small: %d abstract vs %d detailed",
			res.AbstractIters, res.DetailedIters)
	}
}

// TestPhaseAccounting checks the per-phase statistics invariants: spans
// are contiguous and alternate modes, abstract phases pay zero kernel
// events, and the events sum matches the total.
func TestPhaseAccounting(t *testing.T) {
	res, err := Run(zoo.Phased(zoo.PhasedSpec{Tokens: 600, Period: 1100, Seed: 7}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 4 {
		t.Fatalf("expected several phases, got %d", len(res.Phases))
	}
	next := 0
	var events int64
	for i, ph := range res.Phases {
		if ph.StartK != next {
			t.Fatalf("phase %d starts at %d, want %d", i, ph.StartK, next)
		}
		if ph.EndK <= ph.StartK {
			t.Fatalf("phase %d is empty: %+v", i, ph)
		}
		if i > 0 && ph.Mode == res.Phases[i-1].Mode {
			t.Fatalf("phases %d and %d share mode %v", i-1, i, ph.Mode)
		}
		if ph.Mode == Abstract && (ph.Events != 0 || ph.Activations != 0) {
			t.Fatalf("abstract phase %d paid kernel work: %+v", i, ph)
		}
		next = ph.EndK
		events += ph.Events
	}
	if next != res.Iterations {
		t.Fatalf("phases end at %d, want %d", next, res.Iterations)
	}
	if events != res.Stats.Events() {
		t.Fatalf("phase events sum %d != total %d", events, res.Stats.Events())
	}
}

// TestDeterminism requires two adaptive runs to agree exactly — traces,
// kernel work and phase plan.
func TestDeterminism(t *testing.T) {
	build := func() *model.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 500, Period: 1100, Seed: 23, UseFIFO: true})
	}
	t1 := observe.NewTrace("a")
	r1, err := Run(build(), Options{Trace: t1})
	if err != nil {
		t.Fatal(err)
	}
	t2 := observe.NewTrace("b")
	r2, err := Run(build(), Options{Trace: t2})
	if err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(t1, t2); err != nil {
		t.Fatalf("runs differ: %v", err)
	}
	if r1.Stats != r2.Stats || r1.Switches != r2.Switches || r1.Fallbacks != r2.Fallbacks {
		t.Fatalf("stats differ: %+v vs %+v", r1, r2)
	}
	if len(r1.Phases) != len(r2.Phases) {
		t.Fatalf("phase plans differ: %d vs %d", len(r1.Phases), len(r2.Phases))
	}
	for i := range r1.Phases {
		if r1.Phases[i].Mode != r2.Phases[i].Mode ||
			r1.Phases[i].StartK != r2.Phases[i].StartK ||
			r1.Phases[i].EndK != r2.Phases[i].EndK {
			t.Fatalf("phase %d differs: %+v vs %+v", i, r1.Phases[i], r2.Phases[i])
		}
	}
}

// TestSharedCacheRebinds verifies that the abstract engine obtains its
// graphs through the structure-keyed cache: across two runs sharing a
// cache, only the first derivation misses and later switches re-bind.
func TestSharedCacheRebinds(t *testing.T) {
	cache := derive.NewCache()
	build := func(seed int64) *model.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 400, Period: 1100, Seed: seed})
	}
	before := derive.Calls()
	r1, err := Run(build(7), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(build(8), Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got := derive.Calls() - before; got != 1 {
		t.Fatalf("Derive ran %d times across two adaptive runs, want 1", got)
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits < int64(r1.Switches) {
		t.Fatalf("cache stats: %d hits, %d misses (switches %d)", hits, misses, r1.Switches)
	}
}

// TestTimeLimitTruncates checks that a simulated-time limit stops the
// run early at iteration granularity.
func TestTimeLimitTruncates(t *testing.T) {
	full, err := Run(zoo.Phased(zoo.PhasedSpec{Tokens: 400, Period: 1100, Seed: 7}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A limit landing inside a detailed chunk (the first window runs
	// detailed) must not report iterations the kernel never completed.
	for _, div := range []sim.Time{4, 100} {
		tr := observe.NewTrace("limited")
		lim, err := Run(zoo.Phased(zoo.PhasedSpec{Tokens: 400, Period: 1100, Seed: 7}),
			Options{Trace: tr, Limit: sim.Time(full.Stats.FinalTime) / div})
		if err != nil {
			t.Fatal(err)
		}
		if lim.Iterations >= full.Iterations {
			t.Fatalf("limit/%d did not truncate: %d vs %d iterations", div, lim.Iterations, full.Iterations)
		}
		if lim.DetailedIters+lim.AbstractIters != lim.Iterations {
			t.Fatalf("limit/%d: iteration accounting: %d + %d != %d",
				div, lim.DetailedIters, lim.AbstractIters, lim.Iterations)
		}
		for _, label := range tr.Labels() {
			if n := len(tr.Instants(label)); n < lim.Iterations {
				t.Fatalf("limit/%d: %d iterations reported but label %q evolved only %d times",
					div, lim.Iterations, label, n)
			}
		}
	}
}

// TestRejectsInvalid propagates model validation errors.
func TestRejectsInvalid(t *testing.T) {
	a := model.NewArchitecture("broken")
	a.AddChannel("M", model.Rendezvous, 0)
	if _, err := Run(a, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestPhaseStream pins the phase-walk semantics the scenarios rely on.
func TestPhaseStream(t *testing.T) {
	s := workload.PhaseStream(1, []workload.Phase{
		{Len: 3, Size: 10},
		{Len: 2, Size: 50, Span: 5},
		{Len: 1, Size: 7},
	})
	for k := 0; k < 3; k++ {
		if s(k) != 10 {
			t.Fatalf("s(%d) = %d, want 10", k, s(k))
		}
	}
	for k := 3; k < 5; k++ {
		if v := s(k); v < 50 || v >= 55 {
			t.Fatalf("s(%d) = %d, want in [50,55)", k, v)
		}
	}
	// The last phase is sticky.
	for k := 5; k < 20; k++ {
		if s(k) != 7 {
			t.Fatalf("s(%d) = %d, want 7", k, s(k))
		}
	}
	if s(1) != 10 || s(3) != s(3) {
		t.Fatal("stream not deterministic")
	}
}
