package adaptive

import (
	"math/rand"
	"testing"

	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// TestFixedWindowDetector pins the historical policy: fire exactly when
// the identical-signature run reaches the window, reset on any change,
// check in chunks of the window length.
func TestFixedWindowDetector(t *testing.T) {
	d := &fixedWindow{w: 3}
	if d.confirmed() {
		t.Fatal("confirmed before any evidence")
	}
	d.observe(true)
	d.observe(true)
	if d.confirmed() {
		t.Fatal("confirmed one transition early")
	}
	d.observe(true)
	if !d.confirmed() {
		t.Fatal("not confirmed at run == window")
	}
	d.observe(false)
	if d.confirmed() {
		t.Fatal("still confirmed after a change")
	}
	if d.nextCheck() != 3 {
		t.Fatalf("nextCheck %d, want the window", d.nextCheck())
	}
	if d.String() != "fixed:3" {
		t.Fatalf("String %q", d.String())
	}
}

// TestNewDetectorPolicy resolves the two policies exactly as the run
// options document: an explicit window wins, zero selects the
// confidence detector with the given (or default) threshold.
func TestNewDetectorPolicy(t *testing.T) {
	for _, tc := range []struct {
		window int
		conf   float64
		want   string
	}{
		{8, 0, "fixed:8"},
		{8, 0.99, "fixed:8"}, // explicit window wins over a threshold
		{0, 0, "confidence:0.90"},
		{0, 0.99, "confidence:0.99"},
		{0, 1.5, "confidence:1.00"}, // clamped below 1, printed rounded
	} {
		if got := newDetector(tc.window, tc.conf).String(); got != tc.want {
			t.Errorf("newDetector(%d, %g) = %q, want %q", tc.window, tc.conf, got, tc.want)
		}
	}
}

// streamRuns feeds the detector a stream that opens with a change and
// then alternates match-runs of the given lengths separated by single
// changes, returning true if the detector ever confirms.
func streamRuns(d detector, runs []int) bool {
	d.observe(false)
	if d.confirmed() {
		return true
	}
	for _, r := range runs {
		for i := 0; i < r; i++ {
			d.observe(true)
			if d.confirmed() {
				return true
			}
		}
		d.observe(false)
		if d.confirmed() {
			return true
		}
	}
	return false
}

// TestConfidenceNeverFiresOnShortRuns is the safety half of the policy
// contract: on every stream the fixed window rejects because no steady
// spell ever exceeds three iterations, the confidence detector must not
// fire either — eagerness may not turn turbulence into a switch. The
// streams enumerate every pattern of six match-runs with lengths 0..3
// after an initial change (the optimistic prior is only for
// steady-from-start streams, so the evidence starts with one change
// like any post-transient stream does).
func TestConfidenceNeverFiresOnShortRuns(t *testing.T) {
	const maxRun, depth = 3, 6
	runs := make([]int, depth)
	var walk func(i int)
	walk = func(i int) {
		if i == depth {
			if streamRuns(newConfidence(0), runs) {
				t.Fatalf("confidence fired on run pattern %v", runs)
			}
			if streamRuns(&fixedWindow{w: DefaultWindow}, runs) {
				t.Fatalf("fixed window fired on run pattern %v", runs)
			}
			return
		}
		for r := 0; r <= maxRun; r++ {
			runs[i] = r
			walk(i + 1)
		}
	}
	walk(0)
}

// TestConfidenceNeverFiresOnVolatileStream drives the detector with a
// long seeded stream of random steady runs, none longer than three
// transitions (an unbounded random stream is no counterexample: a lucky
// run of eight matches is steadiness the fixed window would also
// accept). It must never confirm, and its run statistics must describe
// the stream it saw.
func TestConfidenceNeverFiresOnVolatileStream(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := newConfidence(0)
	d.observe(false) // volatile from the first transition
	for i := 0; i < 2500; i++ {
		for r := rng.Intn(4); r > 0; r-- {
			d.observe(true)
			if d.confirmed() {
				t.Fatalf("confirmed inside bounded run %d", i)
			}
		}
		d.observe(false)
		if d.confirmed() {
			t.Fatalf("confirmed on the change closing run %d", i)
		}
	}
	mean, variance := d.runStats()
	if mean <= 0 || mean > 3 {
		t.Fatalf("run-length mean %g outside the generated (0, 3] range", mean)
	}
	if variance <= 0 {
		t.Fatalf("run-length variance %g, want > 0", variance)
	}
}

// TestConfidenceFiresOnSteadyStream is the eagerness half: a stream
// that is steady from the start confirms after minSteadyRun
// transitions — not after a full fixed window — and a change resets
// the run without erasing the posterior forever.
func TestConfidenceFiresOnSteadyStream(t *testing.T) {
	d := newConfidence(0)
	fired := -1
	for i := 1; i <= DefaultWindow; i++ {
		d.observe(true)
		if d.confirmed() {
			fired = i
			break
		}
	}
	if fired != minSteadyRun {
		t.Fatalf("steady-from-start stream fired at %d, want %d", fired, minSteadyRun)
	}
	d.observe(false)
	if d.confirmed() {
		t.Fatal("confirmed immediately after a change")
	}
	// After turbulence the detector recovers: enough matches re-confirm.
	for i := 0; i < 64 && !d.confirmed(); i++ {
		d.observe(true)
	}
	if !d.confirmed() {
		t.Fatal("never re-confirmed on a quiet stream after one change")
	}
}

// TestNextCheckIsTightest checks the chunk-length contract from
// arbitrary detector states: forward-simulated under all-matches,
// confirmed() turns true exactly at nextCheck() steps — no earlier (the
// chunk never overshoots an eligible switch) and no later (the chunk is
// not wastefully short). States are prefixes of a seeded random stream.
func TestNextCheckIsTightest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := newConfidence(0)
	for i := 0; i < 2000; i++ {
		d.observe(rng.Intn(4) == 0) // ~25% change rate: turbulent but not hopeless
		if d.confirmed() {
			continue // nextCheck is only consulted while unconfirmed
		}
		n := d.nextCheck()
		if n < 1 {
			t.Fatalf("state %d: nextCheck %d < 1", i, n)
		}
		sim := *d // value copy: the detector state is a plain struct
		for m := 1; m <= n; m++ {
			sim.observe(true)
			if got := sim.confirmed(); got != (m == n) {
				t.Fatalf("state %d: confirmed %v at step %d of nextCheck %d", i, got, m, n)
			}
			if m == 256 {
				break // the forward simulation's backstop cap
			}
		}
	}
}

// TestConfidenceSwitchesEarlierOnPhased compares the two policies on
// the phase-changing scenario end to end: the confidence detector must
// reach its first detailed→abstract switch with fewer kernel events
// than the fixed window — that is the reduction the policy buys — while
// both remain bit-exact against the reference executor at equal switch
// counts.
func TestConfidenceSwitchesEarlierOnPhased(t *testing.T) {
	build := func() *model.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 600, Period: 1100, Seed: 7})
	}
	want, _ := refTrace(t, build)

	eventsToSwitch := func(res *Result) (int64, bool) {
		var events int64
		for _, ph := range res.Phases {
			if ph.Mode == Abstract {
				return events, true
			}
			events += ph.Events
		}
		return events, false
	}
	run := func(opts Options) (*Result, int64) {
		got := observe.NewTrace("adaptive")
		opts.Trace = got
		res, err := Run(build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := observe.CompareInstants(want, got); err != nil {
			t.Fatalf("%s: trace differs from reference: %v", res.Detector, err)
		}
		events, switched := eventsToSwitch(res)
		if !switched {
			t.Fatalf("%s: never switched on the phased workload", res.Detector)
		}
		return res, events
	}
	fixed, fixedEvents := run(Options{Window: DefaultWindow})
	conf, confEvents := run(Options{})
	if confEvents >= fixedEvents {
		t.Fatalf("confidence paid %d kernel events to its first switch, fixed window %d — no reduction",
			confEvents, fixedEvents)
	}
	t.Logf("events to first switch: %s %d vs %s %d (%.0f%% saved)",
		conf.Detector, confEvents, fixed.Detector, fixedEvents,
		100*(1-float64(confEvents)/float64(fixedEvents)))
}
