package adaptive

import "fmt"

// This file is the steady-state detection policy, factored out of the
// run loop. A detector consumes the parameter-signature stream as a
// sequence of boolean transitions — "iteration k's signature equals
// iteration k-1's" — and decides when the evidence justifies switching
// to the abstract engine. Crucially, a detector is a *policy*, never a
// correctness mechanism: the hot switch is exact at any iteration
// boundary (see the package comment), so an eager detector can at worst
// waste a switch on a fallback, and a lazy one can at worst burn kernel
// events. That freedom is what allows the confidence detector to fire
// as early as the evidence allows instead of waiting out a fixed
// window.

// DefaultConfidence is the posterior steadiness threshold of the
// confidence-driven detector selected when Options.Window and
// Options.Confidence are both zero.
const DefaultConfidence = 0.9

// minSteadyRun is the minimum run of identical consecutive signatures
// the confidence detector requires before firing, independent of the
// posterior: a switch needs at least the current and the next iteration
// to agree (the same lookahead the fixed window performs), plus one
// more observation so a single coincidence never fires.
const minSteadyRun = 2

// detectorDecay is the confidence detector's forgetting factor: every
// new transition discounts the accumulated change/transition evidence
// by this factor, so the estimated change rate tracks the *current*
// regime with an effective memory of 1/(1-decay) = 5 transitions. An
// undiscounted posterior would never forgive a noisy transient — after
// 50 changes it would demand ~500 clean transitions before firing
// again, strictly worse than the fixed window on any phase-changing
// workload.
const detectorDecay = 0.8

// detector is an online steady-state detector over the boolean
// signature-transition stream.
type detector interface {
	// observe consumes the next transition of the signature stream:
	// whether sig(k) equals sig(k-1).
	observe(equal bool)
	// confirmed reports whether the evidence observed so far justifies
	// switching to the abstract engine at the current position.
	confirmed() bool
	// nextCheck returns how many further transitions are worth
	// consuming before confirmed() could possibly flip to true —
	// the detailed chunk length between steady-state checks. Always
	// at least 1.
	nextCheck() int
	// String describes the detector and its parameters for
	// introspection (Result.Detector).
	String() string
}

// fixedWindow is the original detector: fire after Window consecutive
// identical-signature transitions (Window steady iterations confirmed
// plus the one-step lookahead its final transition carries).
type fixedWindow struct {
	w   int
	run int
}

func (d *fixedWindow) observe(equal bool) {
	if equal {
		d.run++
	} else {
		d.run = 0
	}
}

func (d *fixedWindow) confirmed() bool { return d.run >= d.w }

// nextCheck keeps the historical cadence: detailed chunks of w
// iterations between checks.
func (d *fixedWindow) nextCheck() int { return d.w }

func (d *fixedWindow) String() string { return fmt.Sprintf("fixed:%d", d.w) }

// confidence is the confidence-driven detector: it maintains a
// streaming estimate of the signature stream's change rate and fires as
// soon as the posterior probability that the next transition matches
// clears the threshold — as early as the evidence allows on a quiet
// stream, never on a stream that keeps changing.
//
// The change rate q is estimated with a discounted Beta(α, β) posterior
// over the binary change stream: with discounted evidence of t
// transitions, c of them changes, the posterior mean is
// q̂ = (c+α)/(t+α+β), a streaming (exponentially weighted) mean that
// needs no history. The prior is optimistic — its mean α/(α+β) equals
// the change rate the threshold tolerates, 1-Confidence — so a
// steady-from-start stream fires after minSteadyRun transitions instead
// of waiting out a window, while every observed change pushes q̂ up and
// delays the next eligible fire point until enough matching transitions
// have decayed it back under tolerance. The detector additionally keeps
// Welford mean/variance over the completed steady-run lengths of the
// stream (runStats) — the streaming second moment behind introspection
// and the detector property tests.
type confidence struct {
	threshold float64 // required posterior match probability
	alpha     float64 // Beta prior pseudo-matches; see beta()
	minRun    int

	transitions float64 // t: discounted transitions observed
	changes     float64 // c: discounted changes observed
	run         int     // current identical-signature run length

	// Welford accumulator over completed run lengths (undiscounted;
	// introspection only).
	runs           int
	runMean, runM2 float64
}

// newConfidence builds the confidence detector for a threshold
// (0 selects DefaultConfidence; values are clamped below 1 — a
// threshold of 1 is unsatisfiable by a finite stream).
func newConfidence(threshold float64) *confidence {
	if threshold <= 0 {
		threshold = DefaultConfidence
	}
	if threshold >= 1 {
		threshold = 0.999
	}
	return &confidence{threshold: threshold, alpha: 1, minRun: minSteadyRun}
}

// beta is the prior pseudo-changes: chosen so the prior mean change
// rate α/(α+β) equals exactly the tolerated rate 1-threshold.
func (d *confidence) beta() float64 {
	return d.alpha * d.threshold / (1 - d.threshold)
}

func (d *confidence) observe(equal bool) {
	d.transitions = d.transitions*detectorDecay + 1
	d.changes *= detectorDecay
	if equal {
		d.run++
		return
	}
	d.changes++
	// A change closes the current steady run; fold its length into the
	// Welford accumulator before resetting.
	x := float64(d.run)
	d.runs++
	delta := x - d.runMean
	d.runMean += delta / float64(d.runs)
	d.runM2 += delta * (x - d.runMean)
	d.run = 0
}

// matchProb is the posterior probability that the next transition
// matches: 1 - q̂.
func (d *confidence) matchProb() float64 {
	return 1 - (d.changes+d.alpha)/(d.transitions+d.alpha+d.beta())
}

func (d *confidence) confirmed() bool {
	return d.run >= d.minRun && d.matchProb() >= d.threshold
}

// nextCheck simulates the detector forward under the best case — every
// further transition matches — and returns the first step at which
// confirmed() could turn true. A change inside the span only raises the
// discounted change mass and resets the run, pushing the true fire
// point further out, so a detailed chunk of this length never skips
// past an eligible switch: it is the tightest safe chunk length. It
// grows automatically after turbulence (fewer kernel restarts on
// streams that keep changing) and sits at minRun on a quiet stream.
func (d *confidence) nextCheck() int {
	c, t, run := d.changes, d.transitions, d.run
	for m := 1; ; m++ {
		t = t*detectorDecay + 1
		c *= detectorDecay
		run++
		if run >= d.minRun && 1-(c+d.alpha)/(t+d.alpha+d.beta()) >= d.threshold {
			return m
		}
		// The discounted change mass decays geometrically, so this
		// terminates in O(log c) steps; the cap is a pure backstop.
		if m >= 256 {
			return m
		}
	}
}

func (d *confidence) String() string {
	return fmt.Sprintf("confidence:%.2f", d.threshold)
}

// runStats returns the Welford mean and variance of the completed
// steady-run lengths observed so far.
func (d *confidence) runStats() (mean, variance float64) {
	if d.runs == 0 {
		return 0, 0
	}
	if d.runs == 1 {
		return d.runMean, 0
	}
	return d.runMean, d.runM2 / float64(d.runs-1)
}

// newDetector resolves the detection policy from the run options:
// an explicit Window keeps the original fixed-window behavior exactly
// (same chunks, same switch points); Window == 0 selects the
// confidence-driven detector with the given (or default) threshold.
func newDetector(window int, conf float64) detector {
	if window > 0 {
		return &fixedWindow{w: window}
	}
	return newConfidence(conf)
}
