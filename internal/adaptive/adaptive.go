// Package adaptive is the temporal-abstraction engine: it decides
// *online*, while a model runs, which execution engine simulates each
// span of iterations.
//
// A run starts event-by-event on the discrete-event kernel (the detailed
// mode) and watches the evolution for a confirmed steady state: an
// unchanged parameter signature — every data-dependent execution duration
// and every source-schedule increment — confirmed by an online detector,
// either a fixed window of iterations (Options.Window) or, by default,
// a confidence-driven estimator that fires as early as the evidence
// allows (see detector.go). Once confirmed, the steady region is
// hot-switched to the
// equivalent (max,+) model: a temporal-dependency-graph evaluator is
// seeded with the live simulation state (the recorded instant history
// supplies the graph's initial conditions) and computes all further
// instants with zero kernel events. Whenever the parameter signature
// changes — a reconfiguration of the modelled workload that invalidates
// the steady assumption — the engine falls back to event-driven
// execution, seeding the resumed kernel from the computed history, and
// re-binds the graph through the structure-keyed derive cache on the next
// steady window.
//
// Both directions of the switch are exact, not approximate. The detailed
// engine resumes at an arbitrary iteration boundary because every
// dependency that crosses the boundary is a delayed arc of the derived
// temporal dependency graph (rotation gates and FIFO backpressure; all
// zero-delay arcs stay within one iteration), and each such arc is
// realized in the resumed kernel as an absolute time floor on the process
// statement owning the target instant — by (max,+) semantics, waiting
// until the historical term before engaging a transfer adds exactly that
// term to the transfer's readiness expression. The abstract engine
// resumes because the evaluator's bounded history ring is seeded from the
// same recorded instants. Integration tests therefore require the
// adaptive trace to be bit-exact against the pure reference executor on
// every scenario, steady or not; the steady-state detector is a policy
// that decides how many kernel events are saved, never what the instants
// are.
package adaptive

import (
	"context"
	"fmt"
	"time"

	"dyncomp/internal/baseline"
	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
)

// DefaultWindow is the historical fixed-window width: the confirmation
// window (and detailed chunk length) of the original detector. Pass it
// as Options.Window to reproduce the pre-confidence behavior exactly;
// a zero Window now selects the confidence-driven detector.
const DefaultWindow = 8

// Mode identifies the engine executing a span of iterations.
type Mode int

// Execution modes.
const (
	// Detailed is event-by-event execution on the simulation kernel.
	Detailed Mode = iota
	// Abstract is dynamic computation over the temporal dependency graph.
	Abstract
)

func (m Mode) String() string {
	switch m {
	case Detailed:
		return "detailed"
	case Abstract:
		return "abstract"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures an adaptive run.
type Options struct {
	// Trace records evolution instants and resource activity,
	// bit-exact against the reference executor. The engine records
	// internally even without it (the history seeds every switch), so
	// requesting the trace costs nothing extra.
	Trace *observe.Trace
	// Limit bounds simulated time; zero runs to completion. The adaptive
	// engine truncates at iteration granularity: the run stops after the
	// first iteration whose instants exceed the limit.
	Limit sim.Time
	// Window, when positive, selects the fixed-window detector: the
	// number of consecutive iterations with an identical parameter
	// signature required before switching to the abstract engine, which
	// is also the detailed chunk length between steady-state checks.
	// Zero selects the confidence-driven detector (see Confidence),
	// which fires as early as the evidence allows.
	Window int
	// Confidence is the confidence-driven detector's posterior
	// steadiness threshold in (0, 1), read when Window is zero. Zero
	// means DefaultConfidence. Higher thresholds demand more evidence
	// before switching; the detector is a policy either way — the
	// recorded evolution is bit-exact at any setting.
	Confidence float64
	// Derive sets the derivation options (arc reduction, pad nodes) for
	// every graph the run obtains through the cache.
	Derive derive.Options
	// Cache supplies a shared structure-keyed derivation cache (e.g. from
	// a design-space sweep); nil creates a private one. Every switch to
	// the abstract engine obtains its graph through the cache, so repeated
	// steady windows re-bind one template instead of re-deriving.
	Cache *derive.Cache
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// Ctx, when non-nil, is checked at every phase boundary: a cancelled
	// context aborts the run with its error. Nil never cancels.
	Ctx context.Context
	// Progress, when non-nil, is invoked at every phase boundary with the
	// number of completed iterations and the total.
	Progress func(done, total int)
	// Interpreted forces every abstract phase through the tree-walking
	// graph interpreter instead of the compiled evaluation program. Off
	// by default; the property tests flip it.
	Interpreted bool
}

// Phase is one maximal span of iterations executed in a single mode.
type Phase struct {
	Mode   Mode
	StartK int // first iteration of the span
	EndK   int // one past the last iteration
	// Events and Activations are the kernel work paid during the span
	// (zero for abstract phases — that is the point of the method).
	Events      int64
	Activations int64
	// Wall is the host time spent in the span.
	Wall time.Duration
}

// Result reports a completed adaptive run.
type Result struct {
	// Stats sums the kernel work of all detailed phases; abstract phases
	// contribute nothing. FinalTime covers the whole evolution, including
	// instants computed abstractly.
	Stats sim.Stats
	// Trace is Options.Trace (nil when none was supplied).
	Trace *observe.Trace
	// Iterations is the number of evolution iterations completed.
	Iterations int
	// GraphNodes is the derived graph size in the paper's counting.
	GraphNodes int
	// Switches counts detailed→abstract transitions; Fallbacks counts
	// abstract→detailed transitions forced by a parameter change.
	Switches  int
	Fallbacks int
	// DetailedIters and AbstractIters count iterations per mode.
	DetailedIters int
	AbstractIters int
	// Detector describes the steady-state detection policy that drove
	// the run ("fixed:8", "confidence:0.90").
	Detector string
	// Phases lists the mode spans in execution order.
	Phases []Phase
}

// Run simulates the architecture with the adaptive engine. The recorded
// evolution is bit-exact against the reference executor regardless of how
// the run is partitioned into detailed and abstract phases.
func Run(a *model.Architecture, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	det := newDetector(opts.Window, opts.Confidence)
	cache := opts.Cache
	if cache == nil {
		cache = derive.NewCache()
	}
	dopts := opts.Derive
	dres, err := cache.Derive(a, dopts)
	if err != nil {
		return nil, err
	}
	n, err := iterations(a)
	if err != nil {
		return nil, err
	}
	if opts.IterLimit > 0 && opts.IterLimit < n {
		n = opts.IterLimit
	}
	rec := opts.Trace
	if rec == nil {
		rec = observe.NewTrace(a.Name + "/adaptive")
	}
	execs, err := a.Execs()
	if err != nil {
		return nil, err
	}

	r := &runner{
		arch:  a,
		opts:  opts,
		det:   det,
		cache: cache,
		dopts: dopts,
		dres:  dres,
		rec:   rec,
		n:     n,
		execs: execs,
	}
	if err := r.buildFloorPoints(); err != nil {
		return nil, err
	}

	res := &Result{Trace: opts.Trace, GraphNodes: dres.Graph.NodeCountWithDelays(), Detector: det.String()}
	// phaseDone runs at every phase boundary: report progress, honor
	// cancellation. The kernel itself is uninterruptible, so a cancelled
	// context aborts between phases, never inside one.
	phaseDone := func(k int) error {
		if opts.Progress != nil {
			opts.Progress(k, n)
		}
		if opts.Ctx != nil {
			return opts.Ctx.Err()
		}
		return nil
	}
	k := 0
	for k < n && !r.truncated {
		// Detailed: event-by-event chunks until the detector confirms a
		// steady state that still holds for the next iteration (the same
		// signature check the abstract engine performs before every
		// computed iteration). The chunk length between checks is the
		// detector's own estimate of the earliest possible confirmation.
		ph := Phase{Mode: Detailed, StartK: k}
		start := time.Now()
		before := r.total
		for k < n && !r.truncated {
			r.advanceDetector(k)
			k1 := k + r.det.nextCheck()
			if k1 > n {
				k1 = n
			}
			k, err = r.runChunk(k, k1)
			if err != nil {
				return nil, err
			}
			if r.switchable(k) {
				break
			}
		}
		ph.EndK = k
		ph.Wall = time.Since(start)
		ph.Events = r.total.Events() - before.Events()
		ph.Activations = r.total.Activations - before.Activations
		res.Phases = append(res.Phases, ph)
		res.DetailedIters += ph.EndK - ph.StartK
		if err := phaseDone(k); err != nil {
			return nil, err
		}
		if k >= n || r.truncated {
			break
		}

		// Abstract: compute instants over the (re-bound) graph until the
		// parameter signature deviates from the confirmed steady one.
		res.Switches++
		ph = Phase{Mode: Abstract, StartK: k}
		start = time.Now()
		k, err = r.runAbstract(k)
		if err != nil {
			return nil, err
		}
		ph.EndK = k
		ph.Wall = time.Since(start)
		res.Phases = append(res.Phases, ph)
		res.AbstractIters += ph.EndK - ph.StartK
		if err := phaseDone(k); err != nil {
			return nil, err
		}
		if k < n && !r.truncated {
			res.Fallbacks++
		}
	}

	res.Stats = r.total
	if r.endTime > sim.Time(res.Stats.FinalTime) {
		res.Stats.FinalTime = r.endTime
	}
	res.Iterations = k
	return res, nil
}

// iterations resolves the iteration count from the sources, which must
// agree on one token count (single-rate evolution).
func iterations(a *model.Architecture) (int, error) {
	if len(a.Sources) == 0 {
		return 0, fmt.Errorf("adaptive: architecture %q has no sources", a.Name)
	}
	n := a.Sources[0].Count
	for _, s := range a.Sources[1:] {
		if s.Count != n {
			return 0, fmt.Errorf("adaptive: sources %q and %q produce different token counts (%d vs %d)",
				a.Sources[0].Name, s.Name, n, s.Count)
		}
	}
	return n, nil
}

// runner is the state of one adaptive run.
type runner struct {
	arch  *model.Architecture
	opts  Options
	det   detector
	cache *derive.Cache
	dopts derive.Options
	dres  *derive.Result
	rec   *observe.Trace
	n     int

	execs    []*model.ExecInfo // controller-owned, for parameter signatures
	sigs     [][]maxplus.T     // memoized signatures by iteration
	sigIdx   int               // last signature index fed to the detector
	floorPts []floorPoint

	total     sim.Stats
	endTime   sim.Time // latest instant over all phases
	truncated bool
}

// sigAt returns the parameter signature of iteration k: every execution
// duration plus every source-schedule increment. Two iterations with
// equal signatures evolve under identical graph weights and input
// spacing — the paper's notion of unchanged model parameters.
func (r *runner) sigAt(k int) []maxplus.T {
	for len(r.sigs) <= k {
		r.sigs = append(r.sigs, nil)
	}
	if r.sigs[k] != nil {
		return r.sigs[k]
	}
	sig := make([]maxplus.T, 0, len(r.execs)+len(r.arch.Sources))
	for _, e := range r.execs {
		sig = append(sig, e.Duration(k))
	}
	for _, s := range r.arch.Sources {
		u := s.Schedule(k)
		if k > 0 {
			u -= s.Schedule(k - 1)
		}
		sig = append(sig, u)
	}
	r.sigs[k] = sig
	return sig
}

func sigsEqual(a, b []maxplus.T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// advanceDetector feeds the detector every signature transition up to
// and including (k-1, k), exactly once each: sigIdx tracks the last
// signature incorporated, so interleaved detailed chunks, steady-state
// checks and abstract fallbacks all observe one contiguous stream.
// Signatures are analytic (pure functions of the model), so the stream
// can run ahead of the simulated iterations — that final transition is
// the one-step lookahead keeping a switch from falling straight back.
func (r *runner) advanceDetector(k int) {
	for r.sigIdx < k {
		r.sigIdx++
		r.det.observe(sigsEqual(r.sigAt(r.sigIdx-1), r.sigAt(r.sigIdx)))
	}
}

// switchable reports whether the run may switch to the abstract engine
// at iteration k: the detector confirms steadiness over the transition
// stream ending at sig(k) — which includes the lookahead match of
// iteration k itself (otherwise the switch would fall straight back).
// With the fixed-window detector this is bit-identical to the original
// trailing-window check.
func (r *runner) switchable(k int) bool {
	if k < 1 || k >= r.n {
		return false
	}
	r.advanceDetector(k)
	return r.det.confirmed()
}

// hist returns the recorded instant of a graph node at iteration k, or ε
// when the node is unlabelled or the iteration not yet evolved.
func (r *runner) hist(id tdg.NodeID, k int) maxplus.T {
	label, ok := r.dres.Labels[id]
	if !ok {
		return maxplus.Epsilon
	}
	xs := r.rec.Instants(label)
	if k < 0 || k >= len(xs) {
		return maxplus.Epsilon
	}
	return xs[k]
}

// runChunk simulates iterations [k0, k1) event-by-event on a fresh
// kernel, seeded from the recorded history through statement floors, and
// returns the next iteration index: k1 normally, or — when the time
// limit cut the chunk short — the number of iterations the kernel
// actually completed for every instant label.
func (r *runner) runChunk(k0, k1 int) (int, error) {
	kern := sim.New()
	aopts := baseline.AttachOptions{
		Trace:      r.rec,
		IterOffset: k0,
		IterLimit:  k1,
	}
	if k0 > 0 {
		floors, srcFloors := r.floorsFor(k0)
		if len(floors) > 0 {
			aopts.Floor = func(f *model.Function, stmt, k int) sim.Time {
				return floors[floorKey{f: f, stmt: stmt, k: k}]
			}
		}
		if len(srcFloors) > 0 {
			aopts.SourceFloor = func(s *model.Source, k int) sim.Time {
				return srcFloors[srcFloorKey{s: s, k: k}]
			}
		}
	}
	if _, err := baseline.Attach(kern, r.arch, aopts); err != nil {
		return k0, err
	}
	limit := r.opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}
	if err := kern.Run(limit); err != nil {
		return k0, err
	}
	st := kern.Stats()
	if r.opts.Limit > 0 && st.FinalTime >= r.opts.Limit {
		r.truncated = true
	}
	if st.FinalTime > r.endTime {
		r.endTime = st.FinalTime
	}
	r.total = r.total.Add(st)
	if !r.truncated {
		return k1, nil
	}
	return r.completedIterations(k0, k1), nil
}

// completedIterations counts how many iterations the trace holds for
// every instant label — the evolution actually finished when a time
// limit stopped a chunk before its last iteration.
func (r *runner) completedIterations(k0, k1 int) int {
	done := k1
	for _, label := range r.dres.Labels {
		if n := len(r.rec.Instants(label)); n < done {
			done = n
		}
	}
	if done < k0 {
		done = k0
	}
	return done
}

// runAbstract computes iterations from k0 onward over the temporal
// dependency graph (obtained through the structure-keyed cache, so
// repeated steady windows re-bind one derivation) until the parameter
// signature deviates from the steady signature confirmed at the switch.
// It returns the first iteration not computed.
func (r *runner) runAbstract(k0 int) (int, error) {
	dres, err := r.cache.Derive(r.arch, r.dopts)
	if err != nil {
		return k0, err
	}
	// The hot switch seeds the compiled evaluator's ring directly from
	// the recorded live trace; the compiled and interpreted evaluators
	// share the ring layout, so SeedHistory is mode-agnostic.
	var ev *tdg.Evaluator
	if prog := dres.Program(); prog != nil && !r.opts.Interpreted {
		ev = prog.NewEvaluator()
		defer ev.Release()
	} else if ev, err = tdg.NewEvaluator(dres.Graph); err != nil {
		return k0, err
	}
	if err := ev.SeedHistory(k0, r.hist); err != nil {
		return k0, err
	}
	steady := r.sigAt(k0 - 1)
	us := make([]maxplus.T, len(r.arch.Sources))
	vals := make([]maxplus.T, dres.Graph.NodeCount())
	k := k0
	for k < r.n {
		if !sigsEqual(r.sigAt(k), steady) {
			break // reconfiguration: fall back to the detailed engine
		}
		for i, s := range r.arch.Sources {
			us[i] = s.Schedule(k)
		}
		if _, err := ev.Step(us); err != nil {
			return k, err
		}
		ev.ValuesInto(vals)
		iterEnd := r.record(dres, vals, k)
		if iterEnd > r.endTime {
			r.endTime = iterEnd
		}
		k++
		if r.opts.Limit > 0 && iterEnd >= r.opts.Limit {
			r.truncated = true
			break
		}
	}
	return k, nil
}

// record reconstructs the observable evolution of iteration k from the
// computed instants — every labelled instant and every execution
// activity — exactly as the equivalent model does, and returns the
// latest instant of the iteration.
func (r *runner) record(dres *derive.Result, vals []maxplus.T, k int) sim.Time {
	end := maxplus.Epsilon
	for _, nd := range dres.Graph.Nodes() {
		label, ok := dres.Labels[nd.ID]
		if !ok {
			continue
		}
		v := vals[nd.ID]
		r.rec.RecordInstant(label, v)
		end = maxplus.Oplus(end, v)
	}
	for _, pr := range dres.Probes {
		start := pr.Start(vals[pr.Base], k)
		if start == maxplus.Epsilon {
			continue
		}
		load := pr.Exec.Load(k)
		fin := maxplus.Otimes(start, pr.Exec.Resource.DurationOf(load))
		r.rec.RecordActivity(observe.Activity{
			Resource: pr.Exec.Resource.Name,
			Label:    pr.Exec.Label,
			K:        k,
			Start:    start,
			End:      fin,
			Ops:      load.Ops,
		})
		end = maxplus.Oplus(end, fin)
	}
	if end == maxplus.Epsilon {
		return 0
	}
	return sim.Time(end)
}
