package adaptive

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/sim"
	"dyncomp/internal/tdg"
)

// floorPoint localizes one instant with delayed incoming arcs on the
// process statement (or source emission) that realizes it in the detailed
// engine. When a kernel resumes at iteration k0, the arcs whose source
// iteration predates k0 are enforced as absolute time floors on that
// statement; arcs staying inside the resumed kernel are realized by the
// ordinary mechanisms (resource rotation gates, FIFO buffer state).
//
// Only two derivation rules produce delayed arcs — rotation gates, which
// land on a function's first statement, and FIFO backpressure, which
// lands on the writer side of the FIFO — so every floorPoint resolves to
// a concrete read, write or source-emission site. For a rendezvous node
// the floor may sit on either participant: the transfer instant is the ⊕
// of both ready instants, so flooring one of them adds exactly the
// historical term.
type floorPoint struct {
	arcs    []tdg.Arc // delayed arcs into the instant
	horizon int       // largest arc delay: floors vanish after k0+horizon
	f       *model.Function
	stmt    int
	src     *model.Source // set instead of f for source emissions
}

type floorKey struct {
	f    *model.Function
	stmt int
	k    int
}

type srcFloorKey struct {
	s *model.Source
	k int
}

// buildFloorPoints scans the derived graph for instants with delayed
// incoming arcs and resolves each to its floor site. It fails when a
// delayed dependency cannot be seeded from recorded history (unlabelled
// source node) or realized by any process — neither occurs for graphs
// produced by the current derivation rules.
func (r *runner) buildFloorPoints() error {
	g := r.dres.Graph
	type chansOf struct {
		read  *model.Channel
		write *model.Channel
	}
	byNode := map[tdg.NodeID]*chansOf{}
	at := func(id tdg.NodeID) *chansOf {
		c := byNode[id]
		if c == nil {
			c = &chansOf{}
			byNode[id] = c
		}
		return c
	}
	for _, ch := range r.arch.Channels {
		w, rd, ok := r.dres.ChannelNodes(ch)
		if !ok {
			return fmt.Errorf("adaptive: channel %q has no graph nodes", ch.Name)
		}
		at(w).write = ch
		at(rd).read = ch
	}

	for _, nd := range g.Nodes() {
		var delayed []tdg.Arc
		horizon := 0
		for _, a := range g.Incoming(nd.ID) {
			if a.Delay == 0 {
				continue
			}
			if _, ok := r.dres.Labels[a.From]; !ok {
				return fmt.Errorf("adaptive: delayed dependency of %q on unlabelled instant %q cannot be seeded across engine switches",
					nd.Name, g.Nodes()[a.From].Name)
			}
			delayed = append(delayed, a)
			if a.Delay > horizon {
				horizon = a.Delay
			}
		}
		if len(delayed) == 0 {
			continue
		}
		fp := floorPoint{arcs: delayed, horizon: horizon}
		cn := byNode[nd.ID]
		switch {
		case cn == nil:
			return fmt.Errorf("adaptive: delayed dependency into non-channel instant %q is unsupported", nd.Name)
		case cn.read != nil && cn.read.ReaderFunc != nil:
			fp.f = cn.read.ReaderFunc
			fp.stmt = stmtIndex(fp.f, cn.read, true)
		case cn.write != nil && cn.write.WriterFunc != nil:
			fp.f = cn.write.WriterFunc
			fp.stmt = stmtIndex(fp.f, cn.write, false)
		case cn.write != nil && cn.write.Source != nil:
			fp.src = cn.write.Source
		default:
			return fmt.Errorf("adaptive: no process can realize the resumed constraint into %q", nd.Name)
		}
		if fp.src == nil && fp.stmt < 0 {
			return fmt.Errorf("adaptive: instant %q has no owning statement", nd.Name)
		}
		r.floorPts = append(r.floorPts, fp)
	}
	return nil
}

// stmtIndex locates the statement of f touching ch (its Read when read is
// set, its Write otherwise); single-rate validation makes it unique.
func stmtIndex(f *model.Function, ch *model.Channel, read bool) int {
	for i, st := range f.Body {
		switch s := st.(type) {
		case model.Read:
			if read && s.Ch == ch {
				return i
			}
		case model.Write:
			if !read && s.Ch == ch {
				return i
			}
		}
	}
	return -1
}

// floorsFor evaluates every floor point against the recorded history for
// a kernel resuming at iteration k0. Only iterations within each point's
// horizon receive a floor; afterwards all referenced instants live inside
// the resumed kernel.
func (r *runner) floorsFor(k0 int) (map[floorKey]sim.Time, map[srcFloorKey]sim.Time) {
	floors := map[floorKey]sim.Time{}
	srcFloors := map[srcFloorKey]sim.Time{}
	for _, fp := range r.floorPts {
		for k := k0; k < k0+fp.horizon && k < r.n; k++ {
			acc := maxplus.Epsilon
			for _, a := range fp.arcs {
				ka := k - a.Delay
				if ka < 0 || ka >= k0 {
					continue // pre-origin (ε) or realized inside the kernel
				}
				v := r.hist(a.From, ka)
				if v == maxplus.Epsilon {
					continue
				}
				acc = maxplus.Oplus(acc, a.Weight.Apply(v, k))
			}
			if acc == maxplus.Epsilon || acc <= 0 {
				continue
			}
			if fp.src != nil {
				key := srcFloorKey{s: fp.src, k: k}
				srcFloors[key] = sim.Time(maxplus.Oplus(maxplus.T(srcFloors[key]), acc))
			} else {
				key := floorKey{f: fp.f, stmt: fp.stmt, k: k}
				floors[key] = sim.Time(maxplus.Oplus(maxplus.T(floors[key]), acc))
			}
		}
	}
	return floors, srcFloors
}
