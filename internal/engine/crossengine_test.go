package engine_test

import (
	"context"
	"errors"
	"testing"

	"dyncomp/internal/engine"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"

	// Link every executor and the LTE scenario into the test binary.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
	_ "dyncomp/internal/lte"
)

// testParams keeps every scenario small enough for a property-style
// sweep; each builder picks the parameters it knows.
var testParams = zoo.ParamMap{
	"tokens":  60,
	"symbols": 28,
	"xsize":   5,
	"stages":  2,
	"workers": 3,
	"seed":    3,
}

// The acceptance property of the whole refactor: every registered
// engine × every registered scenario produces evolution instants
// bit-exact against the reference executor. The hybrid engine runs
// wherever the scenario declares a canonical group.
func TestEveryEngineOnEveryScenarioBitExact(t *testing.T) {
	ctx := context.Background()
	ref, err := engine.Lookup("reference")
	if err != nil {
		t.Fatal(err)
	}
	engines := engine.Names()
	if len(engines) < 4 {
		t.Fatalf("registry holds %v, want at least the four built-in executors", engines)
	}
	scenarios := zoo.Scenarios()
	if len(scenarios) < 7 {
		t.Fatalf("scenario registry holds %d scenarios, want at least 7", len(scenarios))
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rr, err := ref.Run(ctx, sc.Build(testParams), engine.Options{Record: true})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, name := range engines {
				if name == "reference" {
					continue
				}
				eng, err := engine.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := engine.Options{Record: true, AbstractGroup: sc.GroupFor(name, testParams)}
				if name == "hybrid" && opts.AbstractGroup == nil {
					continue // no canonical group to abstract
				}
				r, err := eng.Run(ctx, sc.Build(testParams), opts)
				if err != nil {
					t.Errorf("%s on %s: %v", name, sc.Name, err)
					continue
				}
				if err := observe.CompareInstants(rr.Trace, r.Trace); err != nil {
					t.Errorf("%s differs from reference on %s: %v", name, sc.Name, err)
				}
			}
		})
	}
}

// Options.IterLimit is part of the uniform contract: every engine
// truncated to the same iteration prefix stays bit-exact against the
// equally-truncated reference executor.
func TestIterLimitUniformAcrossEngines(t *testing.T) {
	ctx := context.Background()
	sc, err := zoo.LookupScenario("didactic")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 10
	ref, err := engine.Lookup("reference")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ref.Run(ctx, sc.Build(testParams), engine.Options{Record: true, IterLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rr.Trace.Instants("M6_2")); n != limit {
		t.Fatalf("reference ran %d iterations under IterLimit %d", n, limit)
	}
	for _, name := range engine.Names() {
		if name == "reference" {
			continue
		}
		eng, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := engine.Options{Record: true, IterLimit: limit, AbstractGroup: sc.GroupFor(name, testParams)}
		r, err := eng.Run(ctx, sc.Build(testParams), opts)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := observe.CompareInstants(rr.Trace, r.Trace); err != nil {
			t.Errorf("%s differs under IterLimit: %v", name, err)
		}
	}
}

// A cancelled context stops every engine before it starts.
func TestEnginesHonorPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc, err := zoo.LookupScenario("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range engine.Names() {
		eng, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := engine.Options{AbstractGroup: sc.GroupFor(name, testParams)}
		if _, err := eng.Run(ctx, sc.Build(testParams), opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// The adaptive engine reports progress at phase boundaries: nondecreasing
// completed-iteration counts ending at the total.
func TestAdaptiveProgressCallback(t *testing.T) {
	eng, err := engine.Lookup("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := zoo.LookupScenario("phased")
	if err != nil {
		t.Fatal(err)
	}
	params := zoo.ParamMap{"tokens": 200}
	var calls []int
	r, err := eng.Run(context.Background(), sc.Build(params), engine.Options{
		Progress: func(done, total int) {
			if total != 200 {
				t.Fatalf("total = %d, want 200", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) < 2 {
		t.Fatalf("progress called %d times, want at least one per phase (>= 2)", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] < calls[i-1] {
			t.Fatalf("progress went backwards: %v", calls)
		}
	}
	if last := calls[len(calls)-1]; last != r.Iterations {
		t.Fatalf("final progress %d != iterations %d", last, r.Iterations)
	}
}
