package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a thread-safe name → Engine map. The package-level
// Register/Lookup/Names operate on Default; separate Registry values
// exist so tests (and embedders composing their own engine sets) can
// register fakes without leaking into the process-wide set.
type Registry struct {
	mu      sync.RWMutex
	engines map[string]Engine
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{engines: map[string]Engine{}}
}

// Register adds an engine under its Name. It panics on a nil engine, an
// empty name, or a duplicate registration — all programmer errors in an
// init function, not runtime conditions.
func (r *Registry) Register(e Engine) {
	if e == nil {
		panic("engine: Register(nil)")
	}
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.engines[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	r.engines[name] = e
}

// Lookup returns the engine registered under name. The error of an
// unknown name lists every registered engine, so CLI users see their
// options.
func (r *Registry) Lookup(name string) (Engine, error) {
	r.mu.RLock()
	e, ok := r.engines[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %s)",
			name, strings.Join(r.Names(), "|"))
	}
	return e, nil
}

// Names returns the registered engine names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default is the process-wide registry the executor packages register
// into from their init functions.
var Default = NewRegistry()

// Register adds an engine to the Default registry.
func Register(e Engine) { Default.Register(e) }

// Lookup finds an engine by name in the Default registry.
func Lookup(name string) (Engine, error) { return Default.Lookup(name) }

// Names lists the Default registry's engine names, sorted.
func Names() []string { return Default.Names() }
