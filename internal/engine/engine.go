// Package engine defines the uniform execution contract behind the
// repository's four executors — the event-driven reference executor
// (internal/baseline), the equivalent model (internal/core), partial
// abstraction (internal/hybrid) and temporal abstraction
// (internal/adaptive) — and a registry that makes them addressable by
// name.
//
// The paper's core claim is that these executors are interchangeable
// views of one model: every one of them must produce bit-exact evolution
// instants on any architecture it accepts. This package turns that claim
// into an interface: an Engine takes an architecture and one unified
// Options struct and returns one unified Result, so every consumer —
// design-space sweeps, the experiment harness, the CLIs, future
// distributed shards — plugs into all executors at once instead of once
// per executor.
//
// Implementations live next to their executors and self-register in
// init(); importing an executor package (directly or blank) makes it
// reachable through Lookup. The public dyncomp facade imports all four,
// as does internal/sweep, so any ordinary consumer sees the full set in
// Names().
package engine

import (
	"context"

	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
)

// Options is the unified per-run configuration shared by every engine.
// Engines ignore fields that do not apply to them (the reference
// executor has no graph to reduce, only the adaptive engine reads
// WindowK, only the hybrid engine reads AbstractGroup) but never fail on
// them, so one Options value can drive any registered engine.
type Options struct {
	// Record enables evolution-instant and resource-activity recording;
	// the recorded trace is returned in Result.Trace and is bit-exact
	// across engines.
	Record bool
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion). Engines truncate at their natural granularity (the
	// adaptive engine at iteration boundaries).
	LimitNs int64
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// WindowK is the adaptive engine's steady-state confirmation window
	// (0: the engine default, the confidence-driven detector); ignored
	// by the other engines.
	WindowK int
	// Confidence is the adaptive engine's confidence-driven detector
	// threshold, read when WindowK is zero (0: the engine default);
	// ignored by the other engines.
	Confidence float64
	// AbstractGroup names the functions the hybrid engine abstracts into
	// an equivalent model; the hybrid engine fails without it, the other
	// engines ignore it.
	AbstractGroup []string
	// Derive sets the derivation options (arc reduction, pad nodes) for
	// every temporal dependency graph the run obtains.
	Derive derive.Options
	// Cache supplies a shared structure-keyed derivation cache (e.g. from
	// a design-space sweep) so repeated shapes re-bind one template
	// instead of re-deriving; nil derives privately. The reference
	// executor needs no derivation and ignores it.
	Cache *derive.Cache
	// Progress, when non-nil, receives coarse progress notifications:
	// completed evolution iterations and the total (0 when the engine
	// cannot know it). Engines invoke it at their natural internal
	// boundaries — the adaptive engine at every mode switch, the others
	// once at completion — always from the calling goroutine.
	Progress func(done, total int)
	// Interpreted forces ComputeInstant through the tree-walking graph
	// interpreter instead of the compiled evaluation program
	// (tdg.Compile). Off by default: the compiled path is bit-exact —
	// the cross-engine property tests run both and compare — and
	// substantially faster. The reference executor evaluates no graph
	// and ignores it.
	Interpreted bool
}

// Result is the unified report of a completed run. Fields an engine
// cannot fill stay zero (the reference executor derives no graph, only
// the adaptive engine switches modes).
type Result struct {
	// Trace holds the recorded evolution when Options.Record was set.
	Trace *observe.Trace
	// Activations counts kernel context switches (the cost the dynamic
	// computation method removes).
	Activations int64
	// Events counts kernel event-queue operations.
	Events int64
	// FinalTimeNs is the simulated time reached.
	FinalTimeNs int64
	// WallNs is the host wall-clock time of the engine's execution
	// section, excluding graph derivation where the engine separates the
	// two (models are generated before simulation in the paper's
	// methodology).
	WallNs int64
	// Iterations is the number of evolution iterations completed (0 when
	// the engine does not track them).
	Iterations int
	// GraphNodes is the derived graph size in the paper's counting
	// (engines that derive one).
	GraphNodes int
	// Switches counts detailed→abstract transitions, Fallbacks the
	// forced abstract→detailed transitions (adaptive engine only).
	Switches  int
	Fallbacks int
}

// Engine is one executor of architecture models. Implementations must be
// safe for concurrent Run calls with distinct architectures (design-space
// sweeps call them from a worker pool) and must honor context
// cancellation at their natural boundaries: every engine checks the
// context before starting, the adaptive engine additionally between
// execution phases.
type Engine interface {
	// Name is the engine's registry key ("reference", "equivalent",
	// "hybrid", "adaptive", ...).
	Name() string
	// Run simulates the architecture. The recorded evolution instants
	// must be bit-exact against every other engine's on the same model.
	Run(ctx context.Context, a *model.Architecture, opts Options) (*Result, error)
}

// BatchRunner is the capability an engine advertises when it can
// evaluate several architectures of one structural shape in a single
// batched pass (the equivalent model batches ComputeInstant across
// weight lanes). Callers discover it by type assertion:
//
//	if br, ok := eng.(BatchRunner); ok { br.RunBatch(...) }
//
// and fall back to per-point Run calls otherwise — the adaptive engine,
// for example, switches representations mid-run and has no batched form.
type BatchRunner interface {
	Engine
	// RunBatch simulates every architecture as one lane of a batch. All
	// architectures must share one structural shape (derive.ShapeKey).
	// Each lane's Result and recorded trace must be bit-exact against an
	// individual Run of the same architecture with the same Options.
	//
	// The third return reports the batch failing wholesale (nothing ran
	// — shape mismatch, unsupported options); callers then fall back to
	// per-point Run. Per-lane failures land in the error slice, aligned
	// with archs, while the other lanes' results stay valid.
	RunBatch(ctx context.Context, archs []*model.Architecture, opts Options) ([]*Result, []error, error)
}
