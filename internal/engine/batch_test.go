package engine_test

import (
	"context"
	"testing"

	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"

	_ "dyncomp/internal/core"
	_ "dyncomp/internal/lte"
)

// laneParams derives the lane'th grid point of a scenario by varying a
// dynamics-only parameter, so every lane shares one structural shape and
// the batch path accepts the whole cohort. The random scenario's
// topology is a function of its seed, so its lanes vary the token count
// instead — which also exercises lanes retiring at different iterations.
func laneParams(scenario string, lane int) zoo.ParamMap {
	p := zoo.ParamMap{}
	for k, v := range testParams {
		p[k] = v
	}
	if scenario == "random" {
		p["tokens"] = testParams["tokens"] + int64(lane*3)
	} else {
		p["seed"] = testParams["seed"] + int64(lane*7+1)
	}
	return p
}

// The acceptance property of the batched pipeline: on every registered
// scenario, each lane of a RunBatch is bit-exact against a per-point
// compiled Run AND a per-point interpreted Run of the same architecture
// — across batch widths including a degenerate single lane and a width
// that is no multiple of anything.
func TestBatchRunBitExactOnEveryScenario(t *testing.T) {
	ctx := context.Background()
	eng, err := engine.Lookup("equivalent")
	if err != nil {
		t.Fatal(err)
	}
	br, ok := eng.(engine.BatchRunner)
	if !ok {
		t.Fatal("equivalent engine does not advertise BatchRunner")
	}
	scenarios := zoo.Scenarios()
	if len(scenarios) < 7 {
		t.Fatalf("scenario registry holds %d scenarios, want at least 7", len(scenarios))
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, width := range []int{1, 2, 7, 32} {
				archs := make([]*model.Architecture, width)
				for l := range archs {
					archs[l] = sc.Build(laneParams(sc.Name, l))
				}
				results, laneErrs, err := br.RunBatch(ctx, archs, engine.Options{Record: true})
				if err != nil {
					t.Fatalf("width %d: RunBatch failed wholesale: %v", width, err)
				}
				if len(results) != width || len(laneErrs) != width {
					t.Fatalf("width %d: got %d results / %d errors", width, len(results), len(laneErrs))
				}
				for l := range archs {
					if laneErrs[l] != nil {
						t.Errorf("width %d lane %d: %v", width, l, laneErrs[l])
						continue
					}
					for _, ref := range []struct {
						name string
						opts engine.Options
					}{
						{"compiled", engine.Options{Record: true}},
						{"interpreted", engine.Options{Record: true, Interpreted: true}},
					} {
						rr, err := eng.Run(ctx, sc.Build(laneParams(sc.Name, l)), ref.opts)
						if err != nil {
							t.Fatalf("width %d lane %d %s reference: %v", width, l, ref.name, err)
						}
						if err := observe.CompareInstants(rr.Trace, results[l].Trace); err != nil {
							t.Errorf("width %d lane %d differs from %s run: %v", width, l, ref.name, err)
						}
						if results[l].Iterations != rr.Iterations {
							t.Errorf("width %d lane %d: %d iterations, scalar %s ran %d",
								width, l, results[l].Iterations, ref.name, rr.Iterations)
						}
					}
				}
			}
		})
	}
}

// RunBatch refuses the interpreter wholesale — callers fall back to
// scalar runs — and honors a pre-cancelled context before touching the
// derivation cache.
func TestBatchRunRejectsInterpreterAndCancelledContext(t *testing.T) {
	eng, err := engine.Lookup("equivalent")
	if err != nil {
		t.Fatal(err)
	}
	br := eng.(engine.BatchRunner)
	archs := []*model.Architecture{
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1}),
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 200, Seed: 2}),
	}
	if _, _, err := br.RunBatch(context.Background(), archs, engine.Options{Interpreted: true}); err == nil {
		t.Fatal("RunBatch accepted Interpreted options")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := br.RunBatch(ctx, archs, engine.Options{}); err == nil {
		t.Fatal("RunBatch ran under a cancelled context")
	}
	if _, _, err := br.RunBatch(context.Background(), nil, engine.Options{}); err == nil {
		t.Fatal("RunBatch accepted an empty batch")
	}
}

// A structurally mixed batch fails wholesale with no per-lane results,
// which is the signal the sweep layer uses to fall back to scalar runs.
func TestBatchRunRejectsMixedShapes(t *testing.T) {
	eng, _ := engine.Lookup("equivalent")
	br := eng.(engine.BatchRunner)
	archs := []*model.Architecture{
		zoo.Didactic(zoo.DidacticSpec{Tokens: 5, Period: 100, Seed: 1}),
		zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 5, Seed: 1}),
	}
	if _, _, err := br.RunBatch(context.Background(), archs, engine.Options{}); err == nil {
		t.Fatal("RunBatch accepted a mixed-shape batch")
	}
}

// IterLimit applies per lane inside a batch exactly as it does to a
// scalar run.
func TestBatchRunHonorsIterLimit(t *testing.T) {
	eng, _ := engine.Lookup("equivalent")
	br := eng.(engine.BatchRunner)
	const limit = 9
	archs := make([]*model.Architecture, 4)
	for l := range archs {
		archs[l] = zoo.Didactic(zoo.DidacticSpec{Tokens: 40, Period: 700, Seed: int64(l + 1)})
	}
	results, laneErrs, err := br.RunBatch(context.Background(), archs, engine.Options{Record: true, IterLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	for l := range archs {
		if laneErrs[l] != nil {
			t.Fatalf("lane %d: %v", l, laneErrs[l])
		}
		rr, err := eng.Run(context.Background(), archs[l], engine.Options{Record: true, IterLimit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if err := observe.CompareInstants(rr.Trace, results[l].Trace); err != nil {
			t.Errorf("lane %d differs under IterLimit: %v", l, err)
		}
		if results[l].Iterations != limit {
			t.Errorf("lane %d ran %d iterations under IterLimit %d", l, results[l].Iterations, limit)
		}
	}
}
