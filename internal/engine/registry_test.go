package engine

import (
	"context"
	"strings"
	"testing"

	"dyncomp/internal/model"
)

type fakeEngine struct{ name string }

func (f fakeEngine) Name() string { return f.name }
func (f fakeEngine) Run(context.Context, *model.Architecture, Options) (*Result, error) {
	return &Result{}, nil
}

func TestRegistryRegisterLookupNames(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeEngine{"zeta"})
	r.Register(fakeEngine{"alpha"})
	got := r.Names()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Names() = %v, want sorted [alpha zeta]", got)
	}
	e, err := r.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "alpha" {
		t.Fatalf("Lookup returned %q", e.Name())
	}
}

func TestRegistryUnknownNameListsOptions(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeEngine{"only"})
	_, err := r.Lookup("nope")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "only") {
		t.Fatalf("error %q does not list registered engines", err)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	expectPanic("nil engine", func() { r.Register(nil) })
	expectPanic("empty name", func() { r.Register(fakeEngine{""}) })
	r.Register(fakeEngine{"dup"})
	expectPanic("duplicate", func() { r.Register(fakeEngine{"dup"}) })
}

// The Default registry must hold exactly the four executors once the
// implementation packages are linked in (the external test file imports
// them).
func TestDefaultHoldsFourExecutors(t *testing.T) {
	for _, name := range []string{"reference", "equivalent", "hybrid", "adaptive"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}
