package engine_test

import (
	"context"
	"testing"

	"dyncomp/internal/adaptive"
	"dyncomp/internal/engine"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// The compiled-evaluator acceptance property: on every registered
// scenario, every registered engine produces bit-exact evolution
// instants whether ComputeInstant runs the compiled evaluation program
// (the default) or the tree-walking interpreter, and both match the
// reference executor. This covers the equivalent model's Step loop, the
// hybrid engine's wave evaluation with SetValue/PeekDelayed on the
// boundary, and the adaptive engine's SeedHistory resume windows.
func TestCompiledEvaluatorBitExactEverywhere(t *testing.T) {
	ctx := context.Background()
	ref, err := engine.Lookup("reference")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range zoo.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rr, err := ref.Run(ctx, sc.Build(testParams), engine.Options{Record: true})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, name := range engine.Names() {
				if name == "reference" {
					continue
				}
				eng, err := engine.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				group := sc.GroupFor(name, testParams)
				if name == "hybrid" && group == nil {
					continue
				}
				var traces [2]*observe.Trace
				for i, interpreted := range []bool{false, true} {
					r, err := eng.Run(ctx, sc.Build(testParams), engine.Options{
						Record:        true,
						AbstractGroup: group,
						Interpreted:   interpreted,
					})
					if err != nil {
						t.Errorf("%s (interpreted=%t) on %s: %v", name, interpreted, sc.Name, err)
						continue
					}
					traces[i] = r.Trace
					if err := observe.CompareInstants(rr.Trace, r.Trace); err != nil {
						t.Errorf("%s (interpreted=%t) differs from reference on %s: %v", name, interpreted, sc.Name, err)
					}
				}
				if traces[0] != nil && traces[1] != nil {
					if err := observe.CompareInstants(traces[1], traces[0]); err != nil {
						t.Errorf("%s: compiled differs from interpreted on %s: %v", name, sc.Name, err)
					}
				}
			}
		})
	}
}

// TestCompiledAdaptiveHotSwitchResume drives the adaptive engine through
// real detailed→abstract→detailed transitions on the phase-changing
// workload and checks the compiled evaluator seeds its ring from the
// live trace exactly as the interpreter does.
func TestCompiledAdaptiveHotSwitchResume(t *testing.T) {
	sc, err := zoo.LookupScenario("phased")
	if err != nil {
		t.Fatal(err)
	}
	params := zoo.ParamMap{"tokens": 120, "seed": 5}
	run := func(interpreted bool) (*adaptive.Result, *observe.Trace) {
		trace := observe.NewTrace("phased/adaptive")
		res, err := adaptive.Run(sc.Build(params), adaptive.Options{
			Trace:       trace,
			Window:      4,
			Interpreted: interpreted,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, trace
	}
	cRes, cTrace := run(false)
	iRes, iTrace := run(true)
	if cRes.Switches == 0 || cRes.Fallbacks == 0 {
		t.Fatalf("workload did not exercise hot switching: %d switches, %d fallbacks", cRes.Switches, cRes.Fallbacks)
	}
	if cRes.Switches != iRes.Switches || cRes.Fallbacks != iRes.Fallbacks {
		t.Fatalf("switch counts differ: compiled %d/%d, interpreted %d/%d",
			cRes.Switches, cRes.Fallbacks, iRes.Switches, iRes.Fallbacks)
	}
	if err := observe.CompareInstants(iTrace, cTrace); err != nil {
		t.Fatalf("compiled adaptive trace differs from interpreted: %v", err)
	}
}
