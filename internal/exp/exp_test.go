package exp

import (
	"strings"
	"testing"

	"dyncomp/internal/model"
	"dyncomp/internal/sim"
	"dyncomp/internal/zoo"
)

// The experiment tests run with small token counts: they verify harness
// correctness and the direction of every trend, not absolute magnitudes
// (the benchmarks measure those).

func TestTable1(t *testing.T) {
	var b strings.Builder
	rows, err := Table1(400, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	wantNodes := []int{10, 18, 26, 34}
	for i, r := range rows {
		if r.Nodes != wantNodes[i] {
			t.Fatalf("row %d: nodes = %d, want %d", i, r.Nodes, wantNodes[i])
		}
		if r.EventRatio <= 1 {
			t.Fatalf("row %d: event ratio %.2f", i, r.EventRatio)
		}
		if i > 0 && r.EventRatio <= rows[i-1].EventRatio {
			t.Fatalf("event ratio not increasing: %+v", rows)
		}
	}
	out := b.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Example 1") {
		t.Fatalf("output = %q", out)
	}
}

func TestFig5SmallSweep(t *testing.T) {
	var b strings.Builder
	pts, err := Fig5(300, []int{6}, []int{10, 200}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.SpeedUp <= 0 {
			t.Fatalf("non-positive speed-up: %+v", p)
		}
	}
	if !strings.Contains(b.String(), "Fig. 5") {
		t.Fatal("missing header")
	}
}

func TestFig6(t *testing.T) {
	var b strings.Builder
	data, err := Fig6(2, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.U) != 28 || len(data.Y) != 28 {
		t.Fatalf("u/y lengths: %d/%d", len(data.U), len(data.Y))
	}
	// Inputs are periodic at the symbol period.
	if data.U[1]-data.U[0] < 71_000 {
		t.Fatalf("symbol spacing = %v", data.U[1]-data.U[0])
	}
	// Outputs trail inputs.
	for k := range data.U {
		if data.Y[k] <= data.U[k] {
			t.Fatalf("y(%d)=%v not after u(%d)=%v", k, data.Y[k], k, data.U[k])
		}
	}
	if data.DSP.Max() <= 0 || data.HW.Max() <= 0 {
		t.Fatal("empty complexity series")
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 6 (a)") || !strings.Contains(out, "GOPS") {
		t.Fatalf("output = %q", out)
	}
}

func TestCaseStudySmall(t *testing.T) {
	var b strings.Builder
	res, err := CaseStudy(280, &b)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventRatio <= 1.5 {
		t.Fatalf("event ratio %.2f, expected a clear saving", res.EventRatio)
	}
	if !strings.Contains(b.String(), "Case study") {
		t.Fatal("missing header")
	}
}

func TestAccuracyReport(t *testing.T) {
	var b strings.Builder
	n, err := AccuracyReport(func() *model.Architecture {
		return zoo.Didactic(zoo.DidacticSpec{Tokens: 200, Period: 800, Seed: 12})
	}, "equivalent", nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6*200 {
		t.Fatalf("compared %d instants, want 1200", n)
	}
	if !strings.Contains(b.String(), "identical") {
		t.Fatal("missing message")
	}
}

func TestAdaptiveCompareSmall(t *testing.T) {
	var b strings.Builder
	rows, err := AdaptiveCompare(600, &b)
	if err != nil {
		t.Fatal(err)
	}
	// One row per registered engine — at least the built-in four — with
	// the reference row first.
	if len(rows) < 4 {
		t.Fatalf("%d rows, want one per registered engine (>= 4)", len(rows))
	}
	if rows[0].Engine != "reference" {
		t.Fatalf("first row is %q, want reference", rows[0].Engine)
	}
	byName := map[string]AdaptiveRow{}
	for _, r := range rows {
		byName[r.Engine] = r
	}
	ref, eq, ad := byName["reference"], byName["equivalent"], byName["adaptive"]
	if _, ok := byName["hybrid"]; !ok {
		t.Fatal("no hybrid row")
	}
	if ad.Events > ref.Events/2 {
		t.Fatalf("adaptive events %d, want <= half of reference %d", ad.Events, ref.Events)
	}
	if eq.Events >= ref.Events {
		t.Fatalf("equivalent saved nothing: %d vs %d", eq.Events, ref.Events)
	}
	if ad.Switches < 1 || ad.Fallbacks < 1 {
		t.Fatalf("switching not exercised: %+v", ad)
	}
	if !strings.Contains(b.String(), "bit-exact") {
		t.Fatal("missing header")
	}
}

func TestQuantumSweep(t *testing.T) {
	var b strings.Builder
	rows, err := QuantumSweep(300, []sim.Time{1_000, 1_000_000}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 2 quanta + the exact method
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].MeanAbsErr >= rows[1].MeanAbsErr {
		t.Fatalf("error should grow with quantum: %+v", rows)
	}
	last := rows[len(rows)-1]
	if last.Quantum != 0 || last.MeanAbsErr != 0 {
		t.Fatalf("final row should be the exact method: %+v", last)
	}
	if !strings.Contains(b.String(), "dynamic computation method") {
		t.Fatal("missing exact row")
	}
}
