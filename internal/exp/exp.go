// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table I, Fig. 5, Fig. 6, the case
// study speed-up) plus the motivating loosely-timed trade-off, printing
// the same rows and series the paper reports.
//
// Absolute times depend on the host; the reproduced quantities are the
// shapes: event ratios, speed-ups tracking them, the complexity knee of
// Fig. 5, and the GOPS traces of Fig. 6.
package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"dyncomp/internal/baseline"
	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/ltdecoup"
	"dyncomp/internal/lte"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/sweep"
	"dyncomp/internal/zoo"
)

// Measurement is one timed simulation run.
type Measurement struct {
	Wall  time.Duration
	Stats sim.Stats
}

// runBaseline times one reference-executor run without tracing.
func runBaseline(a *model.Architecture) (Measurement, error) {
	start := time.Now()
	res, err := baseline.Run(a, baseline.Options{})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Wall: time.Since(start), Stats: res.Stats}, nil
}

// runEquivalent derives the graph (outside the timed section, as the
// paper's models are generated before simulation), then times one
// equivalent-model run.
func runEquivalent(a *model.Architecture, opts derive.Options) (Measurement, int, error) {
	dres, err := derive.Derive(a, opts)
	if err != nil {
		return Measurement{}, 0, err
	}
	m, err := core.New(dres)
	if err != nil {
		return Measurement{}, 0, err
	}
	start := time.Now()
	res, err := m.Run(core.Options{})
	if err != nil {
		return Measurement{}, 0, err
	}
	return Measurement{Wall: time.Since(start), Stats: res.Stats}, dres.Graph.NodeCountWithDelays(), nil
}

// Table1Row is one row of the paper's Table I.
type Table1Row struct {
	Example     int
	Stages      int
	BaselineSec float64
	EventRatio  float64 // baseline activations / equivalent activations
	SpeedUp     float64 // baseline wall / equivalent wall
	Nodes       int     // temporal dependency graph nodes (paper counting)
}

// Table1 measures simulation speed-up on the chained didactic
// architectures (the paper's Examples 1-4) with the given token count
// (the paper uses 20000). The measurement runs through the sweep engine
// over a baseline-paired stage axis; a single worker keeps the per-point
// wall-clock times undisturbed by concurrency.
func Table1(tokens int, w io.Writer) ([]Table1Row, error) {
	axes := []sweep.Axis{{Name: "stages", Values: []int64{1, 2, 3, 4}}}
	gen := func(p sweep.Point) (*model.Architecture, error) {
		return zoo.DidacticChain(int(p.Get("stages", 1)),
			zoo.DidacticSpec{Tokens: tokens, Period: 1200, Seed: 41}), nil
	}
	res, err := sweep.Run(axes, gen, sweep.Options{Workers: 1, Baseline: true})
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(res.Points))
	if w != nil {
		fmt.Fprintf(w, "Table I: measured simulation speed-up on distinct architecture models (%d tokens)\n", tokens)
		fmt.Fprintf(w, "%-10s %22s %12s %12s %8s\n", "Model", "baseline exec time (s)", "event ratio", "speed-up", "nodes")
	}
	for _, pr := range res.Points {
		if pr.Err != nil {
			return nil, pr.Err
		}
		stages := int(pr.Point.Get("stages", 0))
		row := Table1Row{
			Example:     stages,
			Stages:      stages,
			BaselineSec: pr.Baseline.Wall.Seconds(),
			EventRatio:  pr.EventRatio,
			SpeedUp:     pr.SpeedUp,
			Nodes:       pr.Run.GraphNodes,
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "Example %-3d %22.3f %12.2f %12.2f %8d\n",
				row.Example, row.BaselineSec, row.EventRatio, row.SpeedUp, row.Nodes)
		}
	}
	return rows, nil
}

// Fig5Point is one observation of the Fig. 5 sweep.
type Fig5Point struct {
	XSize   int
	Nodes   int // total graph nodes traversed by ComputeInstant
	SpeedUp float64
}

// Fig5 sweeps the computation-method complexity: for each X size
// (number of evolution instants, which fixes how many events the method
// saves), the temporal dependency graph is padded to growing node counts
// and the speed-up over the event-driven model is measured. Both halves
// run through the sweep engine: a reference sweep over the X-size axis
// gives the denominators, then an equivalent-model sweep over the
// (xsize × nodes) grid — with per-point pad options and a shared
// derivation cache — gives the numerators.
func Fig5(tokens int, xsizes, nodeCounts []int, w io.Writer) ([]Fig5Point, error) {
	if len(xsizes) == 0 {
		xsizes = []int{6, 10, 20, 30}
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 3, 10, 30, 100, 300, 1000, 3000}
	}
	xvals := make([]int64, len(xsizes))
	for i, x := range xsizes {
		xvals[i] = int64(x)
	}
	nvals := make([]int64, len(nodeCounts))
	for i, n := range nodeCounts {
		nvals[i] = int64(n)
	}
	gen := func(p sweep.Point) (*model.Architecture, error) {
		return zoo.Pipeline(zoo.PipelineSpec{
			XSize: int(p.Get("xsize", 6)), Tokens: tokens, Period: 600, Seed: 17}), nil
	}

	// Reference baselines, one per X size.
	bres, err := sweep.Run([]sweep.Axis{{Name: "xsize", Values: xvals}}, gen,
		sweep.Options{Workers: 1, Engine: "reference"})
	if err != nil {
		return nil, err
	}
	baseWall := map[int64]float64{}
	for _, pr := range bres.Points {
		if pr.Err != nil {
			return nil, pr.Err
		}
		baseWall[pr.Point.Get("xsize", 0)] = pr.Run.Wall.Seconds()
	}

	// Unpadded graph sizes per X size; the derivations land in the cache
	// the equivalent sweep reuses.
	cache := derive.NewCache()
	baseNodes := map[int64]int{}
	for _, x := range xvals {
		dres, err := cache.Derive(zoo.Pipeline(zoo.PipelineSpec{
			XSize: int(x), Tokens: tokens, Period: 600, Seed: 17}), derive.Options{})
		if err != nil {
			return nil, err
		}
		baseNodes[x] = dres.Graph.NodeCount()
	}
	pad := func(p sweep.Point) int {
		d := int(p.Get("nodes", 0)) - baseNodes[p.Get("xsize", 0)]
		if d < 0 {
			d = 0
		}
		return d
	}

	eres, err := sweep.Run([]sweep.Axis{
		{Name: "xsize", Values: xvals},
		{Name: "nodes", Values: nvals},
	}, gen, sweep.Options{
		Workers: 1,
		Cache:   cache,
		DeriveFor: func(p sweep.Point) derive.Options {
			return derive.Options{PadNodes: pad(p)}
		},
	})
	if err != nil {
		return nil, err
	}

	var pts []Fig5Point
	if w != nil {
		fmt.Fprintf(w, "Fig. 5: simulation speed-up vs computation method complexity (%d tokens)\n", tokens)
		fmt.Fprintf(w, "%-8s %-8s %-10s\n", "Xsize", "nodes", "speed-up")
	}
	for _, pr := range eres.Points {
		if pr.Err != nil {
			return nil, pr.Err
		}
		x := pr.Point.Get("xsize", 0)
		pt := Fig5Point{
			XSize:   int(x),
			Nodes:   baseNodes[x] + pad(pr.Point),
			SpeedUp: baseWall[x] / pr.Run.Wall.Seconds(),
		}
		pts = append(pts, pt)
		if w != nil {
			fmt.Fprintf(w, "%-8d %-8d %-10.2f\n", pt.XSize, pt.Nodes, pt.SpeedUp)
		}
	}
	return pts, nil
}

// AdaptiveRow is one engine's measurement on the phase-changing workload.
type AdaptiveRow struct {
	Engine      string
	Events      int64
	Activations int64
	WallSec     float64
	Switches    int
	Fallbacks   int
}

// AdaptiveCompare measures every registered engine — the registry holds
// reference, equivalent, hybrid and adaptive — on the phase-changing
// didactic workload (the "phased" scenario with the default phase plan)
// and verifies that every trace is bit-exact against the reference
// executor. The reference row comes first, the others follow in registry
// (name) order. The equivalent model still pays kernel events at the
// architecture boundary (sources, reception and emission processes); the
// adaptive engine's abstract phases compute even the boundary
// analytically and pay none, so on workloads with long steady plateaus
// it can undercut the equivalent model despite simulating every
// transient in detail.
func AdaptiveCompare(tokens int, w io.Writer) ([]AdaptiveRow, error) {
	sc, err := zoo.LookupScenario("phased")
	if err != nil {
		return nil, err
	}
	params := zoo.ParamMap{"tokens": int64(tokens)}

	// Reference first: it is the base every other engine is checked
	// against.
	names := []string{"reference"}
	for _, n := range engine.Names() {
		if n != "reference" {
			names = append(names, n)
		}
	}

	var rows []AdaptiveRow
	var refTrace *observe.Trace
	var refEvents int64
	ctx := context.Background()
	for _, name := range names {
		eng, err := engine.Lookup(name)
		if err != nil {
			return nil, err
		}
		opts := engine.Options{Record: true, AbstractGroup: sc.GroupFor(name, params)}
		if name == "hybrid" && opts.AbstractGroup == nil {
			continue
		}
		r, err := eng.Run(ctx, sc.Build(params), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if name == "reference" {
			refTrace, refEvents = r.Trace, r.Events
		} else if err := observe.CompareInstants(refTrace, r.Trace); err != nil {
			return nil, fmt.Errorf("%s trace differs: %w", name, err)
		}
		rows = append(rows, AdaptiveRow{
			Engine:      name,
			Events:      r.Events,
			Activations: r.Activations,
			WallSec:     float64(r.WallNs) / 1e9,
			Switches:    r.Switches,
			Fallbacks:   r.Fallbacks,
		})
	}
	if w != nil {
		fmt.Fprintf(w, "All registered engines on the phase-changing workload (%d tokens), all traces bit-exact:\n", tokens)
		fmt.Fprintf(w, "%-12s %12s %12s %10s %9s %10s\n", "engine", "events", "activations", "wall (s)", "switches", "fallbacks")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %12d %12d %10.3f %9d %10d\n",
				r.Engine, r.Events, r.Activations, r.WallSec, r.Switches, r.Fallbacks)
		}
		for _, r := range rows {
			if r.Engine == "adaptive" && refEvents > 0 {
				fmt.Fprintf(w, "adaptive saved %.1f%% of the reference kernel events (%d switches, %d fallbacks)\n",
					100*(1-float64(r.Events)/float64(refEvents)), r.Switches, r.Fallbacks)
			}
		}
	}
	return rows, nil
}

// Fig6Data holds the case-study observation of Fig. 6: input/output
// instants over the simulation time and per-resource complexity series
// over the observation time.
type Fig6Data struct {
	U, Y []maxplus.T
	DSP  *observe.Series
	HW   *observe.Series
}

// Fig6 runs the equivalent model of the LTE receiver over the given
// number of frames and reconstructs the Fig. 6 observations (the paper
// shows one frame of 14 symbols over 1000 µs).
func Fig6(frames int, w io.Writer) (*Fig6Data, error) {
	if frames <= 0 {
		frames = 1
	}
	symbols := frames * lte.SymbolsPerFrame
	a := lte.Receiver(lte.Spec{Symbols: symbols, Seed: 23})
	dres, err := derive.Derive(a, derive.Options{})
	if err != nil {
		return nil, err
	}
	m, err := core.New(dres)
	if err != nil {
		return nil, err
	}
	trace := observe.NewTrace("lte-equivalent")
	if _, err := m.Run(core.Options{Trace: trace}); err != nil {
		return nil, err
	}

	data := &Fig6Data{
		U: trace.Instants("Sym"),
		Y: trace.Instants("D8"),
	}
	end := trace.EndTime()
	window := maxplus.T(int64(frames) * lte.SymbolsPerFrame * int64(lte.SymbolPeriod))
	if end < window {
		end = window
	}
	const bin = maxplus.T(10_000) // 10 µs bins
	if data.DSP, err = trace.ComplexitySeries("DSP", 0, end, bin); err != nil {
		return nil, err
	}
	if data.HW, err = trace.ComplexitySeries("HW", 0, end, bin); err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "Fig. 6 (a): evolution over the simulation time (%d frames)\n", frames)
		for k := 0; k < len(data.U) && k < 2*lte.SymbolsPerFrame; k++ {
			fmt.Fprintf(w, "  u(%2d) = %8d ns    y(%2d) = %8d ns\n", k, int64(data.U[k]), k, int64(data.Y[k]))
		}
		fmt.Fprintf(w, "Fig. 6 (b): DSP complexity, peak %.2f GOPS\n", data.DSP.Max())
		fmt.Fprintf(w, "Fig. 6 (c): HW decoder complexity, peak %.2f GOPS\n", data.HW.Max())
	}
	return data, nil
}

// CaseStudyResult is the Section V speed-up measurement.
type CaseStudyResult struct {
	Symbols    int
	EventRatio float64
	SpeedUp    float64
	Nodes      int
}

// CaseStudy measures the LTE receiver speed-up (the paper: factor 4 at
// event ratio 4.2 for 20000 symbols).
func CaseStudy(symbols int, w io.Writer) (*CaseStudyResult, error) {
	a := lte.Receiver(lte.Spec{Symbols: symbols, Seed: 23})
	mb, err := runBaseline(a)
	if err != nil {
		return nil, err
	}
	me, nodes, err := runEquivalent(lte.Receiver(lte.Spec{Symbols: symbols, Seed: 23}), derive.Options{Reduce: true})
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{
		Symbols:    symbols,
		EventRatio: float64(mb.Stats.Activations) / float64(me.Stats.Activations),
		SpeedUp:    mb.Wall.Seconds() / me.Wall.Seconds(),
		Nodes:      nodes,
	}
	if w != nil {
		fmt.Fprintf(w, "Case study (%d symbols): event ratio %.2f, speed-up %.2f, %d graph nodes\n",
			res.Symbols, res.EventRatio, res.SpeedUp, res.Nodes)
	}
	return res, nil
}

// AccuracyReport verifies the bit-exactness claim on a given architecture
// builder: the named engine's trace (any name from engine.Names; the
// hybrid engine additionally needs the group to abstract) is compared
// against the reference executor's, returning the number of compared
// instants.
func AccuracyReport(build func() *model.Architecture, engineName string, group []string, w io.Writer) (int, error) {
	ctx := context.Background()
	ref, err := engine.Lookup("reference")
	if err != nil {
		return 0, err
	}
	rr, err := ref.Run(ctx, build(), engine.Options{Record: true})
	if err != nil {
		return 0, err
	}
	eng, err := engine.Lookup(engineName)
	if err != nil {
		return 0, err
	}
	er, err := eng.Run(ctx, build(), engine.Options{Record: true, AbstractGroup: group})
	if err != nil {
		return 0, err
	}
	if err := observe.CompareInstants(rr.Trace, er.Trace); err != nil {
		return 0, err
	}
	n := 0
	for _, label := range rr.Trace.Labels() {
		n += len(rr.Trace.Instants(label))
	}
	if w != nil {
		fmt.Fprintf(w, "accuracy: %d evolution instants identical between the reference executor and the %s engine\n", n, engineName)
	}
	return n, nil
}

// QuantumRow is one point of the loosely-timed trade-off ablation.
type QuantumRow struct {
	Quantum    sim.Time
	SpeedUp    float64
	MeanAbsErr float64 // ticks
}

// QuantumSweep measures the TLM-LT speed/accuracy trade-off the paper's
// introduction criticises, against the same baseline the equivalent model
// is compared to. The equivalent model's row is appended with quantum 0
// (exact by construction).
func QuantumSweep(tokens int, quanta []sim.Time, w io.Writer) ([]QuantumRow, error) {
	if len(quanta) == 0 {
		quanta = []sim.Time{1_000, 10_000, 100_000, 1_000_000}
	}
	spec := zoo.DidacticSpec{Tokens: tokens, Period: 900, Seed: 31}
	bt := observe.NewTrace("baseline")
	start := time.Now()
	if _, err := baseline.Run(zoo.Didactic(spec), baseline.Options{Trace: bt}); err != nil {
		return nil, err
	}
	baseWall := time.Since(start)

	var rows []QuantumRow
	if w != nil {
		fmt.Fprintf(w, "Loosely-timed trade-off (%d tokens, baseline %.3fs):\n", tokens, baseWall.Seconds())
		fmt.Fprintf(w, "%-12s %-10s %-14s\n", "quantum(ns)", "speed-up", "mean |err| ns")
	}
	for _, q := range quanta {
		lt := observe.NewTrace("lt")
		start := time.Now()
		if _, err := ltdecoup.Run(zoo.Didactic(spec), ltdecoup.Options{Quantum: q, Trace: lt}); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		row := QuantumRow{
			Quantum:    q,
			SpeedUp:    baseWall.Seconds() / wall.Seconds(),
			MeanAbsErr: observe.MeanAbsInstantError(bt, lt),
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-12d %-10.2f %-14.1f\n", int64(row.Quantum), row.SpeedUp, row.MeanAbsErr)
		}
	}

	// The dynamic computation method: speed-up with zero error.
	dres, err := derive.Derive(zoo.Didactic(spec), derive.Options{})
	if err != nil {
		return nil, err
	}
	m, err := core.New(dres)
	if err != nil {
		return nil, err
	}
	et := observe.NewTrace("equivalent")
	start = time.Now()
	if _, err := m.Run(core.Options{Trace: et}); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	row := QuantumRow{
		Quantum:    0,
		SpeedUp:    baseWall.Seconds() / wall.Seconds(),
		MeanAbsErr: observe.MeanAbsInstantError(bt, et),
	}
	rows = append(rows, row)
	if w != nil {
		fmt.Fprintf(w, "%-12s %-10.2f %-14.1f (dynamic computation method)\n", "exact", row.SpeedUp, row.MeanAbsErr)
	}
	return rows, nil
}
