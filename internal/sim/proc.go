package sim

import "fmt"

// Proc is a simulation process. Its body function receives the Proc and
// uses it to wait for durations or events. All Proc methods must be called
// from within the body (they yield control back to the kernel); calling
// them from outside a running simulation panics or deadlocks by design.
type Proc struct {
	name   string
	k      *Kernel
	resume chan struct{}
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// park yields control to the kernel and blocks until resumed. If the
// kernel is shutting down it aborts the process via stopSignal.
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
	if p.k.stopping {
		panic(stopSignal{})
	}
}

// Wait suspends the process for the duration d (which must be
// non-negative). A zero wait still yields through the kernel, consuming
// one event, exactly like SystemC's wait(SC_ZERO_TIME).
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative wait %d in process %q", d, p.name))
	}
	p.k.push(p.k.now+d, entry{wake: p})
	p.park()
}

// WaitUntil suspends the process until absolute time t; if t is in the
// past it degrades to a zero wait.
func (p *Proc) WaitUntil(t Time) {
	d := t - p.k.now
	if d < 0 {
		d = 0
	}
	p.Wait(d)
}

// WaitEvent suspends the process until e is notified. Notifications that
// occur while no process is waiting are lost (SystemC semantics).
func (p *Proc) WaitEvent(e *Event) {
	e.waiters = append(e.waiters, p)
	p.park()
}

// Event is a named synchronization point processes can wait on.
type Event struct {
	name    string
	k       *Kernel
	waiters []*Proc
}

// NewEvent creates an event owned by the kernel.
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{name: name, k: k}
}

// Name returns the event name.
func (e *Event) Name() string { return e.name }

// Notify wakes every process currently waiting on e in FIFO order, in the
// current delta cycle (still at the current simulation time).
func (e *Event) Notify() {
	e.k.stats.DeltaNotifies++
	e.release()
}

// NotifyAfter schedules the event to fire after duration d.
func (e *Event) NotifyAfter(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative notify delay %d for event %q", d, e.name))
	}
	e.k.push(e.k.now+d, entry{fire: e})
}

// NotifyAt schedules the event to fire at absolute time t (clamped to the
// current time if already past).
func (e *Event) NotifyAt(t Time) {
	d := t - e.k.now
	if d < 0 {
		d = 0
	}
	e.NotifyAfter(d)
}

// release moves all waiters to the runnable set and clears the list.
func (e *Event) release() {
	for _, p := range e.waiters {
		if !p.done {
			e.k.runnable = append(e.k.runnable, p)
		}
	}
	e.waiters = e.waiters[:0]
}
