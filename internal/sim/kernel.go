// Package sim implements a deterministic discrete-event simulation kernel
// in the style of the SystemC reference simulator.
//
// Processes are goroutines that the kernel runs strictly one at a time:
// resuming a process and receiving its yield each cost one channel
// handshake, which reproduces the context-switch cost structure that
// event-driven architecture models pay in SystemC. The dynamic computation
// method of the paper removes kernel events; this kernel makes the savings
// measurable, because every saved event is a saved pair of handshakes plus
// event-queue work.
//
// The kernel is strictly deterministic: simultaneous events are processed
// in scheduling order (FIFO by sequence number), and only one process ever
// executes at a time.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulation instant or duration in integer ticks (1 tick = 1 ns
// by convention throughout this repository).
type Time int64

// Forever may be passed to Kernel.Run as the time limit to run until the
// event queue drains.
const Forever Time = math.MaxInt64

// Stats counts the kernel work performed during a run. The paper's "number
// of simulation events" corresponds to TimedEvents + DeltaNotifies, and its
// "context switches" to Activations.
type Stats struct {
	Activations   int64 // process resumes (context switches)
	TimedEvents   int64 // entries pushed on the time-ordered event queue
	DeltaNotifies int64 // immediate notifications
	FinalTime     Time  // simulation time when Run returned
}

// Events returns the total kernel event-queue work, the paper's "number
// of simulation events": timed events plus delta notifications.
func (s Stats) Events() int64 { return s.TimedEvents + s.DeltaNotifies }

// Add returns the counter-wise sum of two Stats, keeping the later
// FinalTime. The adaptive engine runs its detailed phases on a sequence
// of kernels and sums their work with it.
func (s Stats) Add(o Stats) Stats {
	s.Activations += o.Activations
	s.TimedEvents += o.TimedEvents
	s.DeltaNotifies += o.DeltaNotifies
	if o.FinalTime > s.FinalTime {
		s.FinalTime = o.FinalTime
	}
	return s
}

// Kernel is a discrete-event simulator instance. Create one with New,
// spawn processes, then call Run. A Kernel must not be used from multiple
// goroutines; process bodies interact with it only through their Proc.
type Kernel struct {
	now      Time
	queue    eventQueue
	runnable []*Proc // ready at the current time, FIFO order
	runHead  int     // next runnable index; the drained prefix is reused
	procs    []*Proc
	parked   chan struct{} // signalled by a process when it yields
	seq      int64
	running  bool
	stopping bool
	failure  error
	stats    Stats
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns the counters accumulated so far.
func (k *Kernel) Stats() Stats {
	s := k.stats
	s.FinalTime = k.now
	return s
}

// Spawn registers a process with the given name and body. The body starts
// executing at simulation time zero, in spawn order. Spawn must be called
// before Run.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	if k.running {
		panic("sim: Spawn called while kernel is running")
	}
	p := &Proc{
		name:   name,
		k:      k,
		resume: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopSignal); !ok {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			k.parked <- struct{}{}
		}()
		<-p.resume
		if k.stopping {
			panic(stopSignal{})
		}
		body(p)
	}()
	// Every process gets an initial activation at time zero.
	k.push(0, entry{wake: p})
	return p
}

// stopSignal aborts a process goroutine during kernel shutdown; it is
// recovered by the spawn wrapper and never escapes the package.
type stopSignal struct{}

// entry is a scheduled occurrence: either waking a parked process or firing
// an event (releasing its waiters).
type entry struct {
	wake *Proc
	fire *Event
}

type queued struct {
	t   Time
	seq int64
	e   entry
}

// eventQueue is a binary min-heap ordered by (time, sequence). It is
// hand-rolled rather than container/heap because the interface-based
// heap boxes every pushed entry into an allocation; with a flat slice
// the steady-state simulation loop schedules events without allocating.
type eventQueue []queued

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

func (k *Kernel) push(t Time, e entry) {
	k.seq++
	k.queue = append(k.queue, queued{t: t, seq: k.seq, e: e})
	k.queue.up(len(k.queue) - 1)
	k.stats.TimedEvents++
}

// popMin removes and returns the earliest queued entry.
func (k *Kernel) popMin() queued {
	q := k.queue
	it := q[0]
	last := len(q) - 1
	q[0] = q[last]
	k.queue = q[:last]
	k.queue.down(0)
	return it
}

// Run executes the simulation until the event queue drains, the time limit
// is exceeded, or a process fails. It returns the first process failure,
// if any. After Run returns, every process goroutine has terminated.
func (k *Kernel) Run(limit Time) error {
	if k.running {
		return fmt.Errorf("sim: Run reentered")
	}
	k.running = true
	defer func() { k.running = false }()

	for k.failure == nil {
		// Drain the runnable set of the current delta. Activated
		// processes may append more runnables; the head index walks the
		// growing slice, and the drained storage is reclaimed for the
		// next delta instead of sliding (and reallocating) forward.
		for k.runHead < len(k.runnable) && k.failure == nil {
			p := k.runnable[k.runHead]
			k.runHead++
			k.activate(p)
		}
		k.runnable = k.runnable[:0]
		k.runHead = 0
		if k.failure != nil {
			break
		}
		if len(k.queue) == 0 {
			break
		}
		next := k.queue[0].t
		if next > limit {
			k.now = limit
			break
		}
		it := k.popMin()
		k.now = it.t
		k.dispatch(it.e)
	}
	k.shutdown()
	return k.failure
}

func (k *Kernel) dispatch(e entry) {
	switch {
	case e.wake != nil:
		if !e.wake.done {
			k.runnable = append(k.runnable, e.wake)
		}
	case e.fire != nil:
		e.fire.release()
	}
}

// activate hands control to p and blocks until it parks again.
func (k *Kernel) activate(p *Proc) {
	if p.done {
		return
	}
	k.stats.Activations++
	p.resume <- struct{}{}
	<-k.parked
}

// shutdown terminates every process goroutine that is still alive.
func (k *Kernel) shutdown() {
	k.stopping = true
	for _, p := range k.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-k.parked
	}
}
