package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestProcessesStartAtTimeZeroInSpawnOrder(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) { order = append(order, "a") })
	k.Spawn("b", func(p *Proc) { order = append(order, "b") })
	k.Spawn("c", func(p *Proc) { order = append(order, "c") })
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("start order = %q, want abc", got)
	}
	if k.Now() != 0 {
		t.Fatalf("final time = %d, want 0", k.Now())
	}
}

func TestWaitAdvancesTime(t *testing.T) {
	k := New()
	var seen []Time
	k.Spawn("p", func(p *Proc) {
		seen = append(seen, p.Now())
		p.Wait(10)
		seen = append(seen, p.Now())
		p.Wait(5)
		seen = append(seen, p.Now())
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 15}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
	if k.Stats().FinalTime != 15 {
		t.Fatalf("final time = %d", k.Stats().FinalTime)
	}
}

func TestZeroWaitYields(t *testing.T) {
	// A zero wait must let another runnable process execute in between.
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Wait(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, ",")
	if got != "a1,b1,a2" {
		t.Fatalf("order = %q, want a1,b1,a2", got)
	}
}

func TestWaitUntil(t *testing.T) {
	k := New()
	var at Time
	k.Spawn("p", func(p *Proc) {
		p.WaitUntil(42)
		at = p.Now()
		p.WaitUntil(10) // in the past: zero wait
		at = p.Now()
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("time = %d, want 42", at)
	}
}

func TestEventNotifyWakesWaiters(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	var woke []string
	k.Spawn("w1", func(p *Proc) {
		p.WaitEvent(ev)
		woke = append(woke, fmt.Sprintf("w1@%d", p.Now()))
	})
	k.Spawn("w2", func(p *Proc) {
		p.WaitEvent(ev)
		woke = append(woke, fmt.Sprintf("w2@%d", p.Now()))
	})
	k.Spawn("n", func(p *Proc) {
		p.Wait(7)
		ev.Notify()
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(woke, ",")
	if got != "w1@7,w2@7" {
		t.Fatalf("woke = %q", got)
	}
}

func TestNotifyWithNoWaitersIsLost(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	reached := false
	k.Spawn("n", func(p *Proc) {
		ev.Notify() // nobody waits yet: lost
	})
	k.Spawn("w", func(p *Proc) {
		p.Wait(1) // register after the notify
		p.WaitEvent(ev)
		reached = true // must never run
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("lost notification unexpectedly woke the waiter")
	}
}

func TestNotifyAfterAndAt(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	ev2 := k.NewEvent("ev2")
	var t1, t2 Time
	k.Spawn("w", func(p *Proc) {
		p.WaitEvent(ev)
		t1 = p.Now()
		p.WaitEvent(ev2)
		t2 = p.Now()
	})
	k.Spawn("n", func(p *Proc) {
		ev.NotifyAfter(30)
		p.Wait(30)
		ev2.NotifyAt(50)
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if t1 != 30 || t2 != 50 {
		t.Fatalf("wake times = %d, %d; want 30, 50", t1, t2)
	}
}

func TestNotifyAtInPastClampsToNow(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	var woke Time = -1
	k.Spawn("w", func(p *Proc) {
		p.WaitEvent(ev)
		woke = p.Now()
	})
	k.Spawn("n", func(p *Proc) {
		p.Wait(20)
		ev.NotifyAt(5)
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke != 20 {
		t.Fatalf("woke = %d, want 20", woke)
	}
}

func TestRunLimitStopsSimulation(t *testing.T) {
	k := New()
	steps := 0
	k.Spawn("p", func(p *Proc) {
		for {
			p.Wait(10)
			steps++
		}
	})
	if err := k.Run(35); err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	if k.Now() != 35 {
		t.Fatalf("final time = %d, want 35", k.Now())
	}
}

func TestBlockedProcessesAreTerminated(t *testing.T) {
	k := New()
	ev := k.NewEvent("never")
	cleaned := int32(0)
	k.Spawn("stuck-event", func(p *Proc) {
		defer atomic.AddInt32(&cleaned, 1)
		p.WaitEvent(ev)
	})
	k.Spawn("stuck-wait", func(p *Proc) {
		defer atomic.AddInt32(&cleaned, 1)
		p.Wait(5)
		p.WaitEvent(ev)
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&cleaned); got != 2 {
		t.Fatalf("cleaned = %d, want 2 (deferred funcs must run on shutdown)", got)
	}
}

func TestProcessPanicBecomesError(t *testing.T) {
	k := New()
	k.Spawn("bad", func(p *Proc) {
		p.Wait(1)
		panic("boom")
	})
	k.Spawn("good", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	err := k.Run(Forever)
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) { p.Wait(-1) })
	if err := k.Run(Forever); err == nil {
		t.Fatal("expected error from negative wait")
	}
}

func TestNegativeNotifyPanics(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	k.Spawn("p", func(p *Proc) { ev.NotifyAfter(-3) })
	if err := k.Run(Forever); err == nil {
		t.Fatal("expected error from negative notify delay")
	}
}

func TestSpawnWhileRunningPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		k.Spawn("q", func(*Proc) {})
	})
	if err := k.Run(Forever); err == nil {
		t.Fatal("expected error from spawn during run")
	}
}

func TestStatsCountActivationsAndEvents(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	k.Spawn("a", func(p *Proc) {
		p.Wait(1)
		p.Wait(1)
		ev.Notify()
	})
	k.Spawn("b", func(p *Proc) {
		p.WaitEvent(ev)
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	// Activations: a starts, b starts, a wakes twice, b wakes once = 5.
	if s.Activations != 5 {
		t.Fatalf("Activations = %d, want 5", s.Activations)
	}
	// Timed events: 2 initial wakes + 2 waits = 4.
	if s.TimedEvents != 4 {
		t.Fatalf("TimedEvents = %d, want 4", s.TimedEvents)
	}
	if s.DeltaNotifies != 1 {
		t.Fatalf("DeltaNotifies = %d, want 1", s.DeltaNotifies)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() ([]string, Stats) {
		k := New()
		ev := k.NewEvent("sync")
		var log []string
		k.Spawn("prod", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Wait(3)
				log = append(log, fmt.Sprintf("prod%d@%d", i, p.Now()))
				ev.Notify()
			}
		})
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.WaitEvent(ev)
				log = append(log, fmt.Sprintf("cons%d@%d", i, p.Now()))
			}
		})
		if err := k.Run(Forever); err != nil {
			t.Fatal(err)
		}
		return log, k.Stats()
	}
	l1, s1 := run()
	l2, s2 := run()
	if strings.Join(l1, ";") != strings.Join(l2, ";") {
		t.Fatalf("nondeterministic logs:\n%v\n%v", l1, l2)
	}
	if s1 != s2 {
		t.Fatalf("nondeterministic stats: %+v vs %+v", s1, s2)
	}
}

func TestSimultaneousEventsFIFOOrder(t *testing.T) {
	k := New()
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		k.Spawn(name, func(p *Proc) {
			p.Wait(10)
			order = append(order, p.Name())
		})
	}
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "p0,p1,p2,p3" {
		t.Fatalf("order = %q", got)
	}
}

func TestRunReentryFails(t *testing.T) {
	k := New()
	var inner error
	k.Spawn("p", func(p *Proc) {
		inner = k.Run(Forever)
	})
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Fatal("expected reentry error")
	}
}

func TestEventNames(t *testing.T) {
	k := New()
	ev := k.NewEvent("mychannel")
	if ev.Name() != "mychannel" {
		t.Fatalf("Name = %q", ev.Name())
	}
	var pname string
	p := k.Spawn("worker", func(p *Proc) {})
	pname = p.Name()
	if pname != "worker" {
		t.Fatalf("proc name = %q", pname)
	}
	if p.Kernel() != k {
		t.Fatal("Kernel() mismatch")
	}
	if err := k.Run(Forever); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddAndEvents(t *testing.T) {
	a := Stats{Activations: 3, TimedEvents: 5, DeltaNotifies: 2, FinalTime: 100}
	b := Stats{Activations: 1, TimedEvents: 4, DeltaNotifies: 6, FinalTime: 40}
	sum := a.Add(b)
	if sum.Activations != 4 || sum.TimedEvents != 9 || sum.DeltaNotifies != 8 {
		t.Fatalf("sum = %+v", sum)
	}
	if sum.FinalTime != 100 {
		t.Fatalf("FinalTime = %d, want the later 100", sum.FinalTime)
	}
	if sum.Events() != 17 {
		t.Fatalf("Events = %d, want 17", sum.Events())
	}
	if later := b.Add(a); later.FinalTime != 100 {
		t.Fatalf("Add is not symmetric in FinalTime: %d", later.FinalTime)
	}
}
