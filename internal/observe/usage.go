package observe

import (
	"fmt"
	"io"
	"sort"

	"dyncomp/internal/maxplus"
)

// Utilization returns the fraction of [from, to) during which the resource
// is busy, counting overlapping activities once (hardware resources may
// run several units concurrently; utilization measures occupancy of the
// resource as a whole, as the solid line of Fig. 2b does).
func (t *Trace) Utilization(resource string, from, to maxplus.T) float64 {
	if to <= from {
		return 0
	}
	type edge struct {
		at    maxplus.T
		delta int
	}
	var edges []edge
	for _, a := range t.activities[resource] {
		s, e := clampInterval(a.Start, a.End, from, to)
		if s >= e {
			continue
		}
		edges = append(edges, edge{s, +1}, edge{e, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open at ties
	})
	var busy int64
	depth := 0
	var last maxplus.T
	for _, e := range edges {
		if depth > 0 {
			busy += int64(e.at - last)
		}
		depth += e.delta
		last = e.at
	}
	return float64(busy) / float64(to-from)
}

// BusyTime returns the total busy time of the resource in [from, to),
// counting concurrent units separately (i.e. the integral of parallel
// occupancy).
func (t *Trace) BusyTime(resource string, from, to maxplus.T) maxplus.T {
	var busy int64
	for _, a := range t.activities[resource] {
		s, e := clampInterval(a.Start, a.End, from, to)
		if s < e {
			busy += int64(e - s)
		}
	}
	return maxplus.T(busy)
}

func clampInterval(s, e, from, to maxplus.T) (maxplus.T, maxplus.T) {
	if s == maxplus.Epsilon || e == maxplus.Epsilon {
		return 0, 0
	}
	if s < from {
		s = from
	}
	if e > to {
		e = to
	}
	return s, e
}

// Series is a binned time series: Values[i] covers
// [From + i·BinWidth, From + (i+1)·BinWidth).
type Series struct {
	From     maxplus.T
	BinWidth maxplus.T
	Values   []float64
}

// Bins returns the number of bins.
func (s *Series) Bins() int { return len(s.Values) }

// TimeOf returns the start time of bin i.
func (s *Series) TimeOf(i int) maxplus.T {
	return s.From + maxplus.T(int64(i)*int64(s.BinWidth))
}

// Max returns the largest bin value.
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// ComplexitySeries computes the computational complexity per time unit of
// a resource — the GOPS traces of Fig. 6b/6c. Each activity's operations
// are spread uniformly over its interval and accumulated into bins of the
// given width; bin values are in operations per nanosecond, which equals
// GOPS when ticks are nanoseconds.
func (t *Trace) ComplexitySeries(resource string, from, to, binWidth maxplus.T) (*Series, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("observe: bin width must be positive, got %v", binWidth)
	}
	if to <= from {
		return nil, fmt.Errorf("observe: empty window [%v, %v)", from, to)
	}
	nbins := int((int64(to-from) + int64(binWidth) - 1) / int64(binWidth))
	s := &Series{From: from, BinWidth: binWidth, Values: make([]float64, nbins)}
	for _, a := range t.activities[resource] {
		if a.End <= a.Start || a.Ops <= 0 {
			continue
		}
		rate := a.Ops / float64(a.End-a.Start) // ops per tick
		lo, hi := clampInterval(a.Start, a.End, from, to)
		if lo >= hi {
			continue
		}
		firstBin := int(int64(lo-from) / int64(binWidth))
		lastBin := int((int64(hi-from) - 1) / int64(binWidth))
		for b := firstBin; b <= lastBin && b < nbins; b++ {
			bs := from + maxplus.T(int64(b)*int64(binWidth))
			be := bs + binWidth
			cs, ce := lo, hi
			if cs < bs {
				cs = bs
			}
			if ce > be {
				ce = be
			}
			if ce > cs {
				s.Values[b] += rate * float64(ce-cs)
			}
		}
	}
	for i := range s.Values {
		s.Values[i] /= float64(binWidth)
	}
	return s, nil
}

// WriteCSV writes the series as "time,value" rows.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_ns,value\n"); err != nil {
		return err
	}
	for i, v := range s.Values {
		if _, err := fmt.Fprintf(w, "%d,%g\n", int64(s.TimeOf(i)), v); err != nil {
			return err
		}
	}
	return nil
}

// WriteInstantsCSV writes every instant label of the trace as
// "label,k,time" rows, labels in first-recorded order.
func (t *Trace) WriteInstantsCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "label,k,time_ns\n"); err != nil {
		return err
	}
	for _, label := range t.labels {
		for k, x := range t.instants[label] {
			if x == maxplus.Epsilon {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%d,%d\n", label, k, int64(x)); err != nil {
				return err
			}
		}
	}
	return nil
}
