package observe

import (
	"strings"
	"testing"

	"dyncomp/internal/maxplus"
)

func TestRecordAndQueryInstants(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordInstant("M1", 10)
	tr.RecordInstant("M1", 20)
	tr.RecordInstant("M2", 15)
	if got := tr.Instants("M1"); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("M1 instants = %v", got)
	}
	if got := tr.Labels(); len(got) != 2 || got[0] != "M1" || got[1] != "M2" {
		t.Fatalf("labels = %v", got)
	}
	if got := tr.Instants("missing"); got != nil {
		t.Fatalf("missing label = %v", got)
	}
}

func TestRecordActivities(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordActivity(Activity{Resource: "P1", Label: "T", K: 0, Start: 0, End: 10, Ops: 100})
	tr.RecordActivity(Activity{Resource: "P2", Label: "U", K: 0, Start: 5, End: 9, Ops: 50})
	if got := tr.Resources(); len(got) != 2 {
		t.Fatalf("resources = %v", got)
	}
	if got := tr.Activities("P1"); len(got) != 1 || got[0].Ops != 100 {
		t.Fatalf("P1 activities = %v", got)
	}
}

func TestEndTime(t *testing.T) {
	tr := NewTrace("t")
	if got := tr.EndTime(); got != maxplus.Epsilon {
		t.Fatalf("empty EndTime = %v", got)
	}
	tr.RecordInstant("M", 42)
	tr.RecordActivity(Activity{Resource: "P", Start: 10, End: 99})
	if got := tr.EndTime(); got != 99 {
		t.Fatalf("EndTime = %v", got)
	}
}

func TestCompareInstantsEqual(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	for _, tr := range []*Trace{a, b} {
		tr.RecordInstant("M1", 1)
		tr.RecordInstant("M1", 2)
		tr.RecordInstant("M2", 3)
	}
	if err := CompareInstants(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestCompareInstantsValueMismatch(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	a.RecordInstant("M1", 1)
	b.RecordInstant("M1", 2)
	err := CompareInstants(a, b)
	if err == nil {
		t.Fatal("expected mismatch")
	}
	diff, ok := err.(*InstantDiff)
	if !ok {
		t.Fatalf("err type %T", err)
	}
	if diff.Label != "M1" || diff.K != 0 || diff.A != 1 || diff.B != 2 {
		t.Fatalf("diff = %+v", diff)
	}
	if !strings.Contains(diff.Error(), "M1(0)") {
		t.Fatalf("message = %q", diff.Error())
	}
}

func TestCompareInstantsLengthMismatch(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	a.RecordInstant("M1", 1)
	a.RecordInstant("M1", 2)
	b.RecordInstant("M1", 1)
	err := CompareInstants(a, b)
	if err == nil {
		t.Fatal("expected mismatch")
	}
	diff := err.(*InstantDiff)
	if diff.K != 1 || diff.A != 2 || diff.B != maxplus.Epsilon {
		t.Fatalf("diff = %+v", diff)
	}
}

func TestCompareInstantsLabelMismatch(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	a.RecordInstant("M1", 1)
	b.RecordInstant("M2", 1)
	if err := CompareInstants(a, b); err == nil || !strings.Contains(err.Error(), "label sets") {
		t.Fatalf("err = %v", err)
	}
	c := NewTrace("c")
	if err := CompareInstants(a, c); err == nil {
		t.Fatal("expected label mismatch for empty trace")
	}
}

func TestMeanAbsInstantError(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	a.RecordInstant("M", 10)
	a.RecordInstant("M", 20)
	b.RecordInstant("M", 13)
	b.RecordInstant("M", 15)
	if got := MeanAbsInstantError(a, b); got != 4 { // (3+5)/2
		t.Fatalf("error = %v, want 4", got)
	}
	if got := MeanAbsInstantError(NewTrace("x"), NewTrace("y")); got != 0 {
		t.Fatalf("empty error = %v", got)
	}
}

func TestUtilizationNonOverlapping(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordActivity(Activity{Resource: "P", Start: 0, End: 25})
	tr.RecordActivity(Activity{Resource: "P", Start: 50, End: 75})
	if got := tr.Utilization("P", 0, 100); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestUtilizationOverlapCountedOnce(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordActivity(Activity{Resource: "P", Start: 0, End: 60})
	tr.RecordActivity(Activity{Resource: "P", Start: 30, End: 80})
	if got := tr.Utilization("P", 0, 100); got != 0.8 {
		t.Fatalf("utilization = %v, want 0.8", got)
	}
}

func TestUtilizationClampsWindow(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordActivity(Activity{Resource: "P", Start: -50, End: 50})
	if got := tr.Utilization("P", 0, 100); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := tr.Utilization("P", 100, 100); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestBusyTimeCountsConcurrency(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordActivity(Activity{Resource: "H", Start: 0, End: 60})
	tr.RecordActivity(Activity{Resource: "H", Start: 30, End: 80})
	if got := tr.BusyTime("H", 0, 100); got != 110 {
		t.Fatalf("busy = %v, want 110", got)
	}
}

func TestComplexitySeries(t *testing.T) {
	tr := NewTrace("t")
	// 1000 ops over [0, 100): rate 10 ops/tick.
	tr.RecordActivity(Activity{Resource: "P", Start: 0, End: 100, Ops: 1000})
	s, err := tr.ComplexitySeries("P", 0, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bins() != 4 {
		t.Fatalf("bins = %d", s.Bins())
	}
	if s.Values[0] != 10 || s.Values[1] != 10 {
		t.Fatalf("busy bins = %v", s.Values)
	}
	if s.Values[2] != 0 || s.Values[3] != 0 {
		t.Fatalf("idle bins = %v", s.Values)
	}
	if s.Max() != 10 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.TimeOf(2) != 100 {
		t.Fatalf("TimeOf(2) = %v", s.TimeOf(2))
	}
}

func TestComplexitySeriesPartialBins(t *testing.T) {
	tr := NewTrace("t")
	// 100 ops over [25, 75): rate 2 ops/tick; bin width 50:
	// bin 0 gets 25 ticks * 2 = 50 ops / 50 = 1; bin 1 same.
	tr.RecordActivity(Activity{Resource: "P", Start: 25, End: 75, Ops: 100})
	s, err := tr.ComplexitySeries("P", 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 1 || s.Values[1] != 1 {
		t.Fatalf("values = %v", s.Values)
	}
}

func TestComplexitySeriesErrors(t *testing.T) {
	tr := NewTrace("t")
	if _, err := tr.ComplexitySeries("P", 0, 100, 0); err == nil {
		t.Fatal("expected bin width error")
	}
	if _, err := tr.ComplexitySeries("P", 100, 100, 10); err == nil {
		t.Fatal("expected window error")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := &Series{From: 0, BinWidth: 10, Values: []float64{1.5, 2.5}}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "time_ns,value") || !strings.Contains(out, "0,1.5") || !strings.Contains(out, "10,2.5") {
		t.Fatalf("csv = %q", out)
	}
}

func TestInstantsCSV(t *testing.T) {
	tr := NewTrace("t")
	tr.RecordInstant("M1", 5)
	tr.RecordInstant("M1", maxplus.Epsilon) // skipped
	tr.RecordInstant("M2", 7)
	var b strings.Builder
	if err := tr.WriteInstantsCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "M1,0,5") || !strings.Contains(out, "M2,0,7") {
		t.Fatalf("csv = %q", out)
	}
	if strings.Contains(out, "M1,1") {
		t.Fatal("ε instant not skipped")
	}
}
