// Package observe records and analyses the evolution of architecture
// models: evolution-instant traces, resource activity, utilization and
// computational-complexity series (the "observation time" views of Fig. 2b
// and Fig. 6b/c of the paper).
//
// Both execution engines fill the same Trace structure — the event-driven
// reference simulator during simulation, the equivalent model from its
// dynamically computed instants — so that accuracy can be checked
// bit-exact with CompareInstants.
package observe

import (
	"fmt"
	"sort"

	"dyncomp/internal/maxplus"
)

// Activity is one execution of a statement on a resource: the interval
// [Start, End) during which the resource unit is busy, and the operation
// count it performs (for complexity-per-time observation).
type Activity struct {
	Resource string
	Label    string // execution duration name, e.g. "Ti1"
	K        int    // iteration index
	Start    maxplus.T
	End      maxplus.T
	Ops      float64
}

// Trace is a recorded model evolution: per-label instant sequences
// (indexed by iteration) and per-resource activity lists.
type Trace struct {
	Name       string
	instants   map[string][]maxplus.T
	labels     []string
	activities map[string][]Activity
	resources  []string
}

// NewTrace creates an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{
		Name:       name,
		instants:   make(map[string][]maxplus.T),
		activities: make(map[string][]Activity),
	}
}

// RecordInstant appends the instant of the next iteration of the given
// label (typically a channel name). Iterations must be recorded in order.
func (t *Trace) RecordInstant(label string, at maxplus.T) {
	if _, ok := t.instants[label]; !ok {
		t.labels = append(t.labels, label)
	}
	t.instants[label] = append(t.instants[label], at)
}

// Instants returns the recorded instants of a label indexed by iteration;
// the caller must not modify the slice.
func (t *Trace) Instants(label string) []maxplus.T { return t.instants[label] }

// Labels returns all instant labels in first-recorded order.
func (t *Trace) Labels() []string { return t.labels }

// RecordActivity appends a resource activity.
func (t *Trace) RecordActivity(a Activity) {
	if _, ok := t.activities[a.Resource]; !ok {
		t.resources = append(t.resources, a.Resource)
	}
	t.activities[a.Resource] = append(t.activities[a.Resource], a)
}

// Activities returns the activities of a resource in recorded order; the
// caller must not modify the slice.
func (t *Trace) Activities(resource string) []Activity { return t.activities[resource] }

// Resources returns all resources with recorded activity.
func (t *Trace) Resources() []string { return t.resources }

// EndTime returns the latest finite instant or activity end in the trace.
func (t *Trace) EndTime() maxplus.T {
	end := maxplus.Epsilon
	for _, xs := range t.instants {
		for _, x := range xs {
			end = maxplus.Oplus(end, x)
		}
	}
	for _, as := range t.activities {
		for _, a := range as {
			end = maxplus.Oplus(end, a.End)
		}
	}
	return end
}

// InstantDiff describes the first mismatch found by CompareInstants.
type InstantDiff struct {
	Label string
	K     int
	A, B  maxplus.T // maxplus.Epsilon marks "absent"
}

func (d *InstantDiff) Error() string {
	return fmt.Sprintf("observe: instant %s(%d) differs: %v vs %v", d.Label, d.K, d.A, d.B)
}

// CompareInstants checks that two traces hold exactly the same instants
// for every label they share, and that they share the same label set.
// It returns nil when the traces agree — the paper's accuracy criterion
// ("evolution instants of both models ... remain the same").
func CompareInstants(a, b *Trace) error {
	al, bl := append([]string(nil), a.labels...), append([]string(nil), b.labels...)
	sort.Strings(al)
	sort.Strings(bl)
	if len(al) != len(bl) {
		return fmt.Errorf("observe: label sets differ: %v vs %v", al, bl)
	}
	for i := range al {
		if al[i] != bl[i] {
			return fmt.Errorf("observe: label sets differ: %v vs %v", al, bl)
		}
	}
	for _, label := range al {
		xa, xb := a.instants[label], b.instants[label]
		n := len(xa)
		if len(xb) < n {
			n = len(xb)
		}
		for k := 0; k < n; k++ {
			if xa[k] != xb[k] {
				return &InstantDiff{Label: label, K: k, A: xa[k], B: xb[k]}
			}
		}
		if len(xa) != len(xb) {
			k := n
			da, db := maxplus.Epsilon, maxplus.Epsilon
			if k < len(xa) {
				da = xa[k]
			}
			if k < len(xb) {
				db = xb[k]
			}
			return &InstantDiff{Label: label, K: k, A: da, B: db}
		}
	}
	return nil
}

// MeanAbsInstantError returns the mean absolute difference between the
// instants of two traces over shared labels and iterations, in ticks.
// It quantifies the accuracy loss of approximate methods (e.g. the
// loosely-timed comparator); exact methods yield 0.
func MeanAbsInstantError(a, b *Trace) float64 {
	var sum float64
	var n int
	for _, label := range a.labels {
		xa := a.instants[label]
		xb := b.instants[label]
		m := len(xa)
		if len(xb) < m {
			m = len(xb)
		}
		for k := 0; k < m; k++ {
			d := int64(xa[k]) - int64(xb[k])
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
