package shard

import (
	"testing"

	"dyncomp/internal/serve"
	"dyncomp/internal/zoo"
)

// scenarioSweeps spans a small structurally diverse grid per registered
// scenario: at least one structure-changing axis (several shape
// cohorts, so the consistent-hash ring actually shards) and one
// dynamics axis (so cohorts are wider than one point and the batched
// lanes fill).
var scenarioSweeps = map[string]serve.SweepRequest{
	"didactic": {
		Scenario: "didactic",
		Axes: []serve.Axis{
			{Name: "stages", Values: []int64{1, 2}},
			{Name: "seed", Values: []int64{3, 5, 7}},
		},
		Params: map[string]int64{"tokens": 40},
	},
	"chain": {
		Scenario: "chain",
		Axes: []serve.Axis{
			{Name: "stages", Values: []int64{2, 3}},
			{Name: "seed", Values: []int64{3, 5}},
		},
		Params: map[string]int64{"tokens": 40},
	},
	"pipeline": {
		Scenario: "pipeline",
		Axes: []serve.Axis{
			{Name: "xsize", Values: []int64{3, 4}},
			{Name: "seed", Values: []int64{3, 5}},
		},
		Params: map[string]int64{"tokens": 40},
	},
	"phased": {
		Scenario: "phased",
		Axes: []serve.Axis{
			{Name: "stages", Values: []int64{1, 2}},
			{Name: "seed", Values: []int64{3, 5}},
		},
		Params: map[string]int64{"tokens": 40},
	},
	"forkjoin": {
		Scenario: "forkjoin",
		Axes: []serve.Axis{
			{Name: "workers", Values: []int64{2, 3}},
			{Name: "seed", Values: []int64{3, 5}},
		},
		Params: map[string]int64{"tokens": 40},
	},
	"random": {
		// Every seed is its own structural shape: the sharpest sharding
		// test — four cohorts of two points each.
		Scenario: "random",
		Axes: []serve.Axis{
			{Name: "seed", Values: []int64{1, 2, 3, 4}},
			{Name: "tokens", Values: []int64{30, 40}},
		},
	},
	"lte": {
		Scenario: "lte",
		Axes: []serve.Axis{
			{Name: "symbols", Values: []int64{20, 30}},
			{Name: "seed", Values: []int64{3, 5}},
		},
	},
}

// The fabric's acceptance property: every registered zoo scenario ×
// engines {equivalent, hybrid, adaptive}, swept through a 3-worker
// in-process fleet with batched lanes and small chunks (so every job
// spans several chunks and cohorts split across dispatches), is
// bit-identical to the single-process sweep of the same request —
// per-point engine counters, error strings, event ratios, point/shape
// counts, batch counts and batched-cohort occupancy. The hybrid engine
// runs wherever the scenario declares a canonical group, exactly as the
// single-process API would accept it.
func TestFleetSweepBitIdenticalOnEveryScenario(t *testing.T) {
	scenarios := zoo.Scenarios()
	if len(scenarios) < 7 {
		t.Fatalf("scenario registry holds %d scenarios, want at least 7", len(scenarios))
	}
	workers := newFleet(t, 3)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 4})

	for _, sc := range scenarios {
		req, ok := scenarioSweeps[sc.Name]
		if !ok {
			t.Fatalf("scenario %q has no sweep spec in this test; add one", sc.Name)
		}
		for _, engineName := range []string{"equivalent", "hybrid", "adaptive"} {
			if engineName == "hybrid" && sc.HybridGroup == nil {
				continue // no canonical group; the API rejects it either way
			}
			t.Run(sc.Name+"/"+engineName, func(t *testing.T) {
				r := req
				r.Engine = engineName
				r.Options.BatchWidth = 2
				// Aggregate statistics need the baseline ratios on at
				// least one configuration; keep it to the cheapest
				// scenario so the suite stays fast.
				if sc.Name == "didactic" && engineName == "equivalent" {
					r.Options.Baseline = true
				}

				job := submitSweep(t, ts.URL, r)
				res := waitTerminal(t, ts.URL, job.ID)
				local := localSweep(t, r)
				assertBitIdentical(t, res, local)
				uniqueIndexParams(t, res.Points)
			})
		}
	}
}
