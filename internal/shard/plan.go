package shard

import (
	"fmt"

	"dyncomp/internal/derive"
	"dyncomp/internal/serve"
	"dyncomp/internal/sweep"
)

// chunkPlan is one unit of dispatch: a run of row-major grid indices
// from a single shape cohort, routed on the ring by the cohort's
// structural shape.
type chunkPlan struct {
	shape   string
	indices []int
}

// jobPlan is a sweep spec compiled and cut for the fleet. Planning is
// deterministic — same spec, same chunks in the same order — which is
// what lets a restarted coordinator identify recovered chunk results by
// nothing more than their position in the plan.
type jobPlan struct {
	plan     *serve.SweepPlan
	chunks   []chunkPlan
	failed   []serve.ChunkPoint // points that fail before any worker sees them
	shapes   int                // distinct structural shapes across the grid
	effWidth int                // the batch width pinned into every chunk request
}

// planJob validates the spec through the exact path a worker will use
// (serve.CompileSweep), expands the grid, derives each point's
// structural shape, groups points into the same cohorts the worker-side
// sweep will form (sweep.CohortKey), and cuts each cohort into chunks.
//
// Chunk cuts are aligned to the effective batch width: every chunk but
// a cohort's last carries a multiple of the width, so the worker-side
// batching of the fleet's chunks produces exactly ceil(cohort/width)
// batches — the same count, occupancy and lane layout as a
// single-process sweep. Points whose generation or shape derivation
// fails are taken out of the plan and failed up front with the same
// error the sweep engine would attach.
func planJob(spec serve.SweepRequest, d serve.SweepDefaults, chunkPoints int) (*jobPlan, *serve.RequestError) {
	plan, rerr := serve.CompileSweep(spec, d)
	if rerr != nil {
		return nil, rerr
	}
	if plan.Opts.Sample.Enabled() {
		// The surrogate needs the whole grid to choose what to simulate;
		// a shard sees only its chunk. Sampled sweeps stay single-process.
		return nil, &serve.RequestError{Status: 400, Code: serve.CodeInvalidSample,
			Msg: "options.sample_tolerance is not supported on distributed sweeps"}
	}
	pts, err := sweep.Grid(plan.Axes)
	if err != nil {
		// CompileSweep already validated the axes; this is unreachable
		// short of a version skew between the two layers.
		return nil, &serve.RequestError{Status: 400, Code: serve.CodeInvalidAxes, Msg: err.Error()}
	}

	jp := &jobPlan{plan: plan, effWidth: plan.Opts.BatchWidth}

	// Chunk size: at least one batch, otherwise the target rounded down
	// to whole batches so only cohort tails run partial lanes.
	size := chunkPoints
	if w := jp.effWidth; w > 0 {
		size -= size % w
		if size < w {
			size = w
		}
	}
	if size < 1 {
		size = 1
	}

	// Group the grid into cohorts in grid order, mirroring the sweep
	// engine's batched path bit for bit.
	var order []string
	cohorts := map[string][]int{}
	shapeOf := map[string]string{}
	shapes := map[string]bool{}
	for _, p := range pts {
		shape, key, perr := pointCohort(plan, p)
		if perr != nil {
			jp.failed = append(jp.failed, failedPoint(p, perr))
			continue
		}
		shapes[shape] = true
		if _, ok := cohorts[key]; !ok {
			order = append(order, key)
			shapeOf[key] = shape
		}
		cohorts[key] = append(cohorts[key], p.Index)
	}
	jp.shapes = len(shapes)

	for _, key := range order {
		members := cohorts[key]
		for len(members) > 0 {
			n := size
			if n > len(members) {
				n = len(members)
			}
			jp.chunks = append(jp.chunks, chunkPlan{shape: shapeOf[key], indices: members[:n:n]})
			members = members[n:]
		}
	}
	return jp, nil
}

// pointCohort computes one point's structural shape and cohort key,
// confining builder panics to the point and mirroring the sweep
// engine's error wrapping so a plan-time failure carries the identical
// message a worker-side (or single-process) failure would.
func pointCohort(plan *serve.SweepPlan, p sweep.Point) (shape, key string, err error) {
	defer func() {
		if r := recover(); r != nil {
			shape, key = "", ""
			err = fmt.Errorf("sweep: point %d (%s): panic: %v", p.Index, p, r)
		}
	}()
	a, err := plan.Gen(p)
	if err != nil {
		return "", "", fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
	}
	if a == nil {
		return "", "", fmt.Errorf("sweep: point %d (%s): generator returned no architecture", p.Index, p)
	}
	shape, err = derive.ShapeKey(a)
	if err != nil {
		return "", "", fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
	}
	dopts := plan.Opts.Derive
	if plan.Opts.DeriveFor != nil {
		dopts = plan.Opts.DeriveFor(p)
	}
	group := plan.Opts.Group
	if plan.Opts.GroupFor != nil {
		group = plan.Opts.GroupFor(p)
	}
	return shape, sweep.CohortKey(shape, dopts, group), nil
}

// failedPoint renders a plan-time failure in the wire form a worker
// would have reported.
func failedPoint(p sweep.Point, err error) serve.ChunkPoint {
	params := map[string]int64{}
	for i, n := range p.Names {
		params[n] = p.Values[i]
	}
	return serve.ChunkPoint{
		Index:      p.Index,
		SweepPoint: serve.SweepPoint{Params: params, Error: err.Error()},
	}
}
