package shard

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dyncomp/internal/serve"
)

// cancelJob issues DELETE /v1/sweeps/{id} and expects 202.
func cancelJob(t *testing.T, coordURL, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, coordURL+"/v1/sweeps/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel answered %d", resp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE reads an SSE body to EOF — the coordinator closes the stream
// after the terminal state event — and returns the events in order.
func parseSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// The SSE progress stream of a fleet job reports strictly increasing
// done counts and ends with the terminal state at done == total, even
// with chunks finishing interleaved across workers and batched lanes in
// play — the distributed face of the coalesced-progress ordering
// guarantee.
func TestFleetSSEProgressMonotonic(t *testing.T) {
	workers := newFleet(t, 3)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2})
	job := submitSweep(t, ts.URL, faultReq)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	last := -1
	sawTerminal := false
	for _, ev := range parseSSE(t, resp) {
		switch ev.name {
		case "progress":
			var p struct{ Done, Total int }
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("bad progress payload %q: %v", ev.data, err)
			}
			if p.Done <= last {
				t.Fatalf("progress went backwards: %d after %d", p.Done, last)
			}
			last = p.Done
		case "state":
			var s serve.Job
			if err := json.Unmarshal([]byte(ev.data), &s); err != nil {
				t.Fatalf("bad state payload %q: %v", ev.data, err)
			}
			if terminalWire(s.State) {
				sawTerminal = true
				if s.State != "done" || s.Done != s.Total {
					t.Fatalf("terminal state %q with done %d/%d", s.State, s.Done, s.Total)
				}
			}
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal state event")
	}
}

// The NDJSON stream delivers every point exactly once in arrival order
// and terminates with a trailer carrying the terminal state and the
// statistics; connecting to a finished job replays everything.
func TestFleetNDJSONStream(t *testing.T) {
	workers := newFleet(t, 3)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2})
	job := submitSweep(t, ts.URL, faultReq)

	// Once streamed live, once replayed after the job finished: the
	// stream contract is identical.
	for _, phase := range []string{"live", "replay"} {
		t.Run(phase, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/v1/sweeps/" + job.ID + "/results")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("content type %q", ct)
			}
			seen := map[int]bool{}
			var trailer *ResultLine
			dec := json.NewDecoder(resp.Body)
			for {
				var line ResultLine
				if err := dec.Decode(&line); err != nil {
					break
				}
				if trailer != nil {
					t.Fatal("line after the trailer")
				}
				if line.Point != nil {
					if seen[line.Point.Index] {
						t.Fatalf("index %d streamed twice", line.Point.Index)
					}
					seen[line.Point.Index] = true
					continue
				}
				l := line
				trailer = &l
			}
			if trailer == nil || trailer.State != "done" || trailer.Stats == nil {
				t.Fatalf("missing or bad trailer: %+v", trailer)
			}
			if len(seen) != 12 {
				t.Fatalf("%d points streamed, want 12", len(seen))
			}
			if trailer.Stats.Points != 12 {
				t.Fatalf("trailer stats points %d, want 12", trailer.Stats.Points)
			}
		})
	}
}

// The coordinator relays the serving layer's validation vocabulary:
// compile-time rejections answer with the same HTTP status and error
// code a single dyncomp-serve process would use.
func TestCoordValidationErrors(t *testing.T) {
	workers := newFleet(t, 1)
	_, ts := newCoord(t, Config{Workers: workers})

	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"unknown scenario",
			serve.SweepRequest{Scenario: "nope",
				Axes: []serve.Axis{{Name: "seed", Values: []int64{1}}}},
			http.StatusBadRequest, serve.CodeUnknownScenario},
		{"unknown engine",
			func() any { r := faultReq; r.Engine = "warp"; return r }(),
			http.StatusBadRequest, serve.CodeUnknownEngine},
		{"no axes",
			serve.SweepRequest{Scenario: "didactic"},
			http.StatusBadRequest, serve.CodeInvalidAxes},
		{"unknown field",
			map[string]any{"scenario": "didactic", "bogus": 1},
			http.StatusBadRequest, serve.CodeBadJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/sweeps", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if code := errorCode(t, resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job answered %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != serve.CodeJobNotFound {
		t.Fatalf("code %q, want %q", code, serve.CodeJobNotFound)
	}
}

// Worker registration: valid URLs join the ring (visible in the list
// and in healthz), junk is rejected with the shared error envelope.
func TestCoordWorkerRegistration(t *testing.T) {
	workers := newFleet(t, 1)
	_, ts := newCoord(t, Config{Workers: workers})

	type workerList struct {
		Workers []WorkerStatus `json:"workers"`
	}
	resp := postJSON(t, ts.URL+"/v1/workers", map[string]string{"url": "http://127.0.0.1:19999"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register answered %d", resp.StatusCode)
	}
	if got := decodeBody[workerList](t, resp); len(got.Workers) != 2 {
		t.Fatalf("%d workers after registration, want 2", len(got.Workers))
	}

	for _, bad := range []string{"", "not-a-url", "ftp://x", "/relative"} {
		resp := postJSON(t, ts.URL+"/v1/workers", map[string]string{"url": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("url %q answered %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[Health](t, hresp)
	if h.Status != "ok" || h.Workers != 2 || h.WorkersAlive != 2 {
		t.Fatalf("healthz %+v, want ok with 2/2 workers", h)
	}
}

// Cancelling a running job settles it as cancelled; cancelling a
// settled job answers the terminal-state conflict, same as the serving
// layer.
func TestCoordCancelLifecycle(t *testing.T) {
	workers := newFleet(t, 2)
	gate := &gateTransport{inner: &httpTransport{client: &http.Client{}}, limit: 0}
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: gate})

	job := submitSweep(t, ts.URL, faultReq)
	cancelJob(t, ts.URL, job.ID)
	res := waitTerminal(t, ts.URL, job.ID)
	if res.State != "cancelled" {
		t.Fatalf("state %q, want cancelled", res.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel answered %d, want 409", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != serve.CodeJobTerminal {
		t.Fatalf("code %q, want %q", code, serve.CodeJobTerminal)
	}
}

// The job list renders every job in creation order with the shared wire
// vocabulary.
func TestCoordSweepList(t *testing.T) {
	workers := newFleet(t, 2)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 4})

	first := submitSweep(t, ts.URL, faultReq)
	second := submitSweep(t, ts.URL, faultReq)
	waitTerminal(t, ts.URL, first.ID)
	waitTerminal(t, ts.URL, second.ID)

	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	out := decodeBody[struct {
		Jobs []serve.Job `json:"jobs"`
	}](t, resp)
	if len(out.Jobs) != 2 || out.Jobs[0].ID != first.ID || out.Jobs[1].ID != second.ID {
		t.Fatalf("list %+v, want [%s %s] in order", out.Jobs, first.ID, second.ID)
	}
	for _, j := range out.Jobs {
		if j.State != "done" || j.Done != 12 || j.Total != 12 {
			t.Fatalf("job %s listed as %q %d/%d", j.ID, j.State, j.Done, j.Total)
		}
	}
}
