package shard

// Circuit-breaker lifecycle tests: a benched worker comes back through
// the open → half-open → closed probe path instead of waiting for a
// re-registration, failed probes keep it benched under growing backoff,
// per-worker shedding answers re-steer without benching, and a failure
// threshold above one tolerates sporadic faults.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dyncomp/internal/serve"
)

// A worker benched by a transport failure recovers through the probe
// loop: the first probe fails (half-open → open, backoff grows), the
// second succeeds, and the fleet returns to all-closed with the
// transitions counted.
func TestBreakerProbeRecoversWorker(t *testing.T) {
	workers := newFleet(t, 2)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt == 1 {
			return errors.New("injected: connection dropped")
		}
		return nil
	})
	var probes atomic.Int64
	c, ts := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2, Transport: tr,
		ProbeBase: 5 * time.Millisecond,
		Prober: ProberFunc(func(ctx context.Context, url string) error {
			if probes.Add(1) == 1 {
				return errors.New("injected: still down")
			}
			return nil
		}),
	})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))

	deadline := time.Now().Add(10 * time.Second)
	for c.ring.alive() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("benched worker never recovered; workers: %+v", c.ring.workers())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := probes.Load(); n < 2 {
		t.Fatalf("%d probes, want at least 2 (one failed, one succeeded)", n)
	}
	if n := c.breakerOpened.Load(); n != 1 {
		t.Fatalf("breakerOpened %d, want 1", n)
	}
	if n := c.breakerClosedN.Load(); n != 1 {
		t.Fatalf("breakerClosed %d, want 1", n)
	}
	for _, ws := range c.ring.workers() {
		if ws.Breaker != "closed" || ws.Down {
			t.Fatalf("worker %s state %q down=%v after recovery", ws.URL, ws.Breaker, ws.Down)
		}
	}
}

// While every probe fails, the breaker stays open and the worker stays
// out of rotation — no premature un-benching.
func TestBreakerStaysOpenWhileProbesFail(t *testing.T) {
	workers := newFleet(t, 2)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt == 1 {
			return errors.New("injected: connection dropped")
		}
		return nil
	})
	var probes atomic.Int64
	c, ts := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2, Transport: tr,
		ProbeBase: 2 * time.Millisecond, ProbeMax: 10 * time.Millisecond,
		Prober: ProberFunc(func(ctx context.Context, url string) error {
			probes.Add(1)
			return errors.New("injected: still down")
		}),
	})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))

	deadline := time.Now().Add(10 * time.Second)
	for probes.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d probes fired", probes.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if alive := c.ring.alive(); alive != 1 {
		t.Fatalf("%d workers alive, want 1 (failing probes must not revive)", alive)
	}
}

// A 429 answer is the worker shedding load, not a verdict on the
// request: the chunk re-steers to another worker and the shedding
// worker is neither benched nor the chunk failed.
func TestWorkerShedReSteersWithoutBenching(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt <= 2 {
			return &WorkerError{Status: http.StatusTooManyRequests,
				Code: "overloaded", Msg: "injected: shedding"}
		}
		return nil
	})
	c, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
	if alive := c.ring.alive(); alive != 3 {
		t.Fatalf("%d workers alive, want 3 (a shed answer must not bench)", alive)
	}
	if n := c.breakerOpened.Load(); n != 0 {
		t.Fatalf("breakerOpened %d, want 0", n)
	}
}

// With a threshold above one, a single sporadic transport failure does
// not open the breaker — the chunk re-steers, the worker stays in
// rotation.
func TestBreakerThresholdToleratesSporadicFailure(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt == 1 {
			return errors.New("injected: one-off drop")
		}
		return nil
	})
	c, ts := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2, Transport: tr,
		BreakerThreshold: 3,
	})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	if alive := c.ring.alive(); alive != 3 {
		t.Fatalf("%d workers alive, want 3 (one failure is below the threshold)", alive)
	}
	if n := c.breakerOpened.Load(); n != 0 {
		t.Fatalf("breakerOpened %d, want 0", n)
	}
}

// The coordinator's observability endpoints: /metrics exposes the
// resilience series, /readyz keys on having a worker in rotation.
func TestCoordMetricsAndReadyz(t *testing.T) {
	workers := newFleet(t, 2)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz answered %d with a live fleet", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, series := range []string{
		"dyncomp_coord_workers 2",
		"dyncomp_coord_workers_alive 2",
		"dyncomp_coord_breaker_state{worker=",
		"dyncomp_coord_breaker_opened_total 0",
		"dyncomp_coord_breaker_closed_total 0",
		"dyncomp_coord_chunk_retries_total 0",
		"dyncomp_coord_jobs 0",
		"dyncomp_coord_jobs_evicted_total 0",
		"dyncomp_coord_store_compactions_total 0",
		"dyncomp_coord_panics_total 0",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %q:\n%s", series, body)
		}
	}

	// An empty fleet cannot make progress: not ready, but still alive.
	_, tsEmpty := newCoord(t, Config{})
	resp, err = http.Get(tsEmpty.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz answered %d with no workers, want 503", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "unavailable" {
		t.Fatalf("readyz code %q, want unavailable", code)
	}
	resp, err = http.Get(tsEmpty.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz answered %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}
