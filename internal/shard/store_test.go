package shard

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dyncomp/internal/serve"
)

// writeSeedStore produces a store with one job, two chunk records and a
// terminal state through the public append API, and returns its path.
func writeSeedStore(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/jobs.ndjson"
	st, recovered, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(recovered))
	}
	if err := st.AppendJob("job-000001", time.Unix(10, 0), faultReq, 2); err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < 2; ci++ {
		resp := &serve.ChunkResponse{
			Points: []serve.ChunkPoint{
				{Index: 2 * ci, SweepPoint: serve.SweepPoint{Params: map[string]int64{"seed": int64(ci)}}},
				{Index: 2*ci + 1, SweepPoint: serve.SweepPoint{Params: map[string]int64{"seed": int64(ci + 10)}}},
			},
			Batches: 1, BatchedPoints: 2,
		}
		if err := st.AppendChunk("job-000001", ci, "http://w", resp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendState("job-000001", "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func reopen(t *testing.T, path string) []JobRecord {
	t.Helper()
	st, recovered, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopening corrupted store: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return recovered
}

// fileSize returns the store file's current length.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// A torn tail — the crash cut the last record mid-write, leaving no
// newline — is truncated on open: the job comes back at the last intact
// record boundary and the file shrinks to exactly that point.
func TestStoreTornTailTruncated(t *testing.T) {
	path := writeSeedStore(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	// Keep job + chunk 0 intact, then half of chunk 1's record.
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := reopen(t, path)
	if len(recovered) != 1 {
		t.Fatalf("%d jobs recovered, want 1", len(recovered))
	}
	jr := recovered[0]
	if len(jr.Chunks) != 1 {
		t.Fatalf("%d chunks recovered, want 1 (the last intact boundary)", len(jr.Chunks))
	}
	if _, ok := jr.Chunks[0]; !ok {
		t.Fatal("chunk 0 lost even though its record was intact")
	}
	if jr.State != "" {
		t.Fatalf("state %q recovered from a truncated tail, want in-flight", jr.State)
	}
	if got, want := fileSize(t, path), int64(len(lines[0])+len(lines[1])); got != want {
		t.Fatalf("file is %d bytes after recovery, want %d (truncated to the last intact record)", got, want)
	}
}

// A garbage line poisons everything after it: replay stops at the first
// unparseable record even if later lines happen to be valid JSON — a
// tail written after corruption is not trustworthy.
func TestStoreGarbageLineEndsReplay(t *testing.T) {
	path := writeSeedStore(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	// job + chunk 0, then garbage, then the (intact) state record.
	mangled := lines[0] + lines[1] + "!!not json!!\n" + lines[3]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := reopen(t, path)
	if len(recovered) != 1 {
		t.Fatalf("%d jobs recovered, want 1", len(recovered))
	}
	jr := recovered[0]
	if len(jr.Chunks) != 1 || jr.State != "" {
		t.Fatalf("recovered %d chunks, state %q; want 1 chunk and in-flight (the post-garbage tail discarded)",
			len(jr.Chunks), jr.State)
	}
	if got, want := fileSize(t, path), int64(len(lines[0])+len(lines[1])); got != want {
		t.Fatalf("file is %d bytes, want %d", got, want)
	}
}

// An unknown record type — a future version's record, or corruption
// that still parses — ends the replay at the same boundary rule.
func TestStoreUnknownRecordTypeEndsReplay(t *testing.T) {
	path := writeSeedStore(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	mangled := lines[0] + lines[1] + `{"type":"hologram","job":"job-000001"}` + "\n" + lines[2] + lines[3]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := reopen(t, path)
	if len(recovered) != 1 || len(recovered[0].Chunks) != 1 || recovered[0].State != "" {
		t.Fatalf("recovered %+v, want one job with exactly chunk 0 and no terminal state", recovered)
	}
}

// The satellite's acceptance path: a coordinator whose store lost its
// tail — the terminal state and the last chunk record cut off mid-write
// — recovers to the last valid chunk boundary and finishes the job
// against the fleet instead of failing it: the re-run evaluates only
// the lost chunks, and the merged result is bit-identical to the
// single-process sweep.
func TestCoordinatorRecoversFromCorruptStore(t *testing.T) {
	workers := newFleet(t, 2)
	storePath := t.TempDir() + "/jobs.ndjson"

	c1, ts1 := newCoord(t, Config{Workers: workers, ChunkPoints: 2, StorePath: storePath})
	job := submitSweep(t, ts1.URL, faultReq)
	waitTerminal(t, ts1.URL, job.ID)
	ts1.Close()
	c1.Close()

	// Corrupt the tail: drop the state record entirely and tear the last
	// chunk record in half. 6 chunks were persisted; 5 survive.
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 8 { // job + 6 chunks + state
		t.Fatalf("store holds %d records, expected 8", len(lines))
	}
	var keep strings.Builder
	for _, l := range lines[:6] {
		keep.WriteString(l)
	}
	keep.WriteString(lines[6][:len(lines[6])/2])
	if err := os.WriteFile(storePath, []byte(keep.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	tr := newFaultTransport(nil)
	c2, err := New(Config{Workers: workers, ChunkPoints: 2, StorePath: storePath, Transport: tr})
	if err != nil {
		t.Fatalf("coordinator refused the corrupted store: %v", err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})

	res := waitTerminal(t, ts2.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	uniqueIndexParams(t, res.Points)

	// Exactly one chunk (2 points) was re-evaluated — the torn one.
	tr.mu.Lock()
	redone := len(tr.delivered)
	tr.mu.Unlock()
	if redone != 2 {
		t.Fatalf("recovery re-evaluated %d points, want the torn chunk's 2", redone)
	}
}

// A nil store (memory-only coordinator) accepts every append and
// remembers nothing — the no-durability configuration must not need
// guards at call sites.
func TestNilStoreIsValid(t *testing.T) {
	var st *Store
	if err := st.AppendJob("job-000001", time.Unix(0, 0), faultReq, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendChunk("job-000001", 0, "http://w", &serve.ChunkResponse{}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState("job-000001", "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// Appending to a closed store fails loudly instead of losing records
// silently.
func TestClosedStoreRejectsAppends(t *testing.T) {
	path := t.TempDir() + "/jobs.ndjson"
	st, _, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState("job-000001", "done", ""); err == nil {
		t.Fatal("append to a closed store succeeded")
	}
}
