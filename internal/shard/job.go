package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"dyncomp/internal/serve"
	"dyncomp/internal/sweep"
)

// jobState is the coordinator-side job lifecycle. It matches the
// serving layer's states on the wire so fleet clients see one
// vocabulary: queued → running → done | failed | cancelled, with the
// transient "cancelling" rendered while a cancel drains.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (st jobState) String() string {
	switch st {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return "unknown"
}

func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCancelled
}

// job is one distributed sweep. All mutable fields are guarded by mu;
// watchers (SSE, NDJSON streams) wait on the changed channel, which is
// closed and replaced on every mutation — a broadcast that cannot drop
// or block, because consumers re-read the state they care about under
// the lock instead of receiving deltas.
type job struct {
	id       string
	spec     serve.SweepRequest // effective batch width pinned
	engine   string
	scenario string
	axes     []sweep.Axis
	created  time.Time

	mu              sync.Mutex
	state           jobState
	cancelRequested bool
	cancel          context.CancelFunc
	started         time.Time
	finished        time.Time
	errMsg          string

	total    int
	shapes   int
	effWidth int
	chunks   []chunkPlan

	done          int
	chunkDone     []bool
	points        []*serve.SweepPoint // by global grid index
	arrived       []serve.ChunkPoint  // arrival order, feeds the NDJSON stream
	batches       int
	batchedPoints int
	failed        int

	changed  chan struct{}
	rendered *serve.JobResult
}

// newJob binds a deterministic plan to a fresh job and fails the
// plan-time casualties immediately — they count toward done from the
// start, exactly as the sweep engine finishes unbuildable points before
// dispatch.
func newJob(id string, spec serve.SweepRequest, created time.Time, jp *jobPlan) *job {
	j := &job{
		id:        id,
		spec:      spec,
		engine:    jp.plan.Engine,
		scenario:  jp.plan.Scenario,
		axes:      jp.plan.Axes,
		created:   created,
		total:     jp.plan.Total,
		shapes:    jp.shapes,
		effWidth:  jp.effWidth,
		chunks:    jp.chunks,
		chunkDone: make([]bool, len(jp.chunks)),
		points:    make([]*serve.SweepPoint, jp.plan.Total),
		changed:   make(chan struct{}),
	}
	for _, cp := range jp.failed {
		pt := cp.SweepPoint
		j.points[cp.Index] = &pt
		j.arrived = append(j.arrived, cp)
		j.done++
		j.failed++
	}
	return j
}

// bumpLocked wakes every watcher.
func (j *job) bumpLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// start moves a queued job to running. It reports false when the job
// must not dispatch: already started, or cancelled while still queued
// (which settles it here).
func (j *job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobQueued {
		return false
	}
	if j.cancelRequested {
		j.state = jobCancelled
		j.errMsg = context.Canceled.Error()
		j.finished = now
		j.bumpLocked()
		return false
	}
	j.state = jobRunning
	j.started = now
	j.cancel = cancel
	j.bumpLocked()
	return true
}

// applyChunk merges one completed chunk. The chunkDone guard makes the
// merge idempotent: replay after a restart, or any stray duplicate
// delivery, can neither double-count progress nor duplicate points.
// Progress is monotonic by construction — done only ever grows, under
// one lock.
func (j *job) applyChunk(ci int, points []serve.ChunkPoint, batches, batchedPoints int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ci < 0 || ci >= len(j.chunks) || j.chunkDone[ci] || j.state.terminal() {
		return false
	}
	j.chunkDone[ci] = true
	for _, cp := range points {
		if cp.Index < 0 || cp.Index >= j.total || j.points[cp.Index] != nil {
			continue
		}
		pt := cp.SweepPoint
		j.points[cp.Index] = &pt
		j.arrived = append(j.arrived, cp)
		j.done++
		if cp.Error != "" {
			j.failed++
		}
	}
	j.batches += batches
	j.batchedPoints += batchedPoints
	j.bumpLocked()
	return true
}

// failChunk settles an undeliverable chunk: every point fails with the
// fabric error, so done still reaches total and the results report what
// happened to each point. Fabric failures are deliberately not
// persisted — a restarted coordinator re-dispatches the chunk, and a
// recovered fleet may then complete it.
func (j *job) failChunk(ci int, err error) {
	pts, gerr := sweep.GridSelect(j.axes, j.chunks[ci].indices)
	if gerr != nil {
		return // the plan produced these indices; cannot happen
	}
	points := make([]serve.ChunkPoint, 0, len(pts))
	for _, p := range pts {
		points = append(points, failedPoint(p, err))
	}
	j.applyChunk(ci, points, 0, 0)
}

// pendingChunks lists the chunks not yet merged, in plan order.
func (j *job) pendingChunks() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	for ci, done := range j.chunkDone {
		if !done {
			out = append(out, ci)
		}
	}
	return out
}

// settle moves the job into a terminal state.
func (j *job) settle(st jobState, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = st
	j.errMsg = errMsg
	j.finished = now
	j.bumpLocked()
}

// settledAt reports when a terminal job finished (ok false while live),
// feeding the coordinator's TTL eviction.
func (j *job) settledAt() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return time.Time{}, false
	}
	return j.finished, true
}

// complete reports whether every chunk has been merged.
func (j *job) complete() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, done := range j.chunkDone {
		if !done {
			return false
		}
	}
	return true
}

// observe returns the lifecycle snapshot plus the channel that closes
// on the next mutation — the building block of the SSE and NDJSON
// streams: emit what changed, wait, re-read.
func (j *job) observe() (serve.Job, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(), j.changed
}

// arrivedSince returns the points that arrived at position from on, in
// arrival order, with the current wire state and change channel — one
// iteration of the NDJSON streaming loop.
func (j *job) arrivedSince(from int) ([]serve.ChunkPoint, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []serve.ChunkPoint
	if from < len(j.arrived) {
		out = append(out, j.arrived[from:]...)
	}
	return out, j.wireStateLocked(), j.changed
}

func (j *job) wireStateLocked() string {
	if (j.state == jobRunning || j.state == jobQueued) && j.cancelRequested {
		return "cancelling"
	}
	return j.state.String()
}

// snapshot renders the lifecycle in the serving layer's wire form.
func (j *job) snapshot() serve.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() serve.Job {
	out := serve.Job{
		ID:       j.id,
		State:    j.wireStateLocked(),
		Engine:   j.engine,
		Scenario: j.scenario,
		Done:     j.done,
		Total:    j.total,
		Created:  j.created,
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	return out
}

// result renders the job as GET /v1/sweeps/{id} answers it: the
// lifecycle plus — terminal only — fleet-level statistics and the
// per-point results in grid order. Terminal renderings are memoized.
//
// Stats semantics in the distributed setting: Shapes counts the
// distinct structural shapes the plan derived; DeriveCalls and
// CacheHits are zero because derivation caches live in the workers
// (scrape their /metrics); BatchOccupancy is recomputed from the
// summed batch counts and the pinned width, which matches the
// single-process number exactly because chunk cuts are width-aligned.
func (j *job) result() serve.JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rendered != nil {
		return *j.rendered
	}
	out := serve.JobResult{Job: j.snapshotLocked()}
	if j.state.terminal() {
		out.Stats = j.statsLocked()
		out.Points = make([]serve.SweepPoint, j.total)
		for i, pt := range j.points {
			if pt != nil {
				out.Points[i] = *pt
				continue
			}
			// A chunk that never came back before settling: fail the
			// point explicitly rather than serving a hole.
			out.Points[i] = serve.SweepPoint{Params: map[string]int64{}, Error: "point never evaluated"}
		}
		j.rendered = &out
	}
	return out
}

func (j *job) statsLocked() *serve.SweepStats {
	st := &serve.SweepStats{
		Points:        j.total,
		Failed:        j.failed,
		Shapes:        j.shapes,
		Batches:       j.batches,
		BatchedPoints: j.batchedPoints,
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.WallNs = j.finished.Sub(j.started).Nanoseconds()
	}
	if j.batches > 0 && j.effWidth > 0 {
		st.BatchOccupancy = float64(j.batchedPoints) / float64(j.batches*j.effWidth)
	}
	if j.spec.Options.Baseline {
		// Aggregate in grid order from the successful points, the exact
		// sequence the single-process summarize feeds AggregateOf — same
		// values, same order, bit-identical floats.
		var speedups, ratios []float64
		for _, pt := range j.points {
			if pt == nil || pt.Error != "" {
				continue
			}
			speedups = append(speedups, pt.SpeedUp)
			ratios = append(ratios, pt.EventRatio)
		}
		if a := sweep.AggregateOf(speedups); a.N > 0 {
			st.SpeedUp = &serve.Aggregate{N: a.N, Min: a.Min, Max: a.Max, Mean: a.Mean, Geomean: a.Geomean}
		}
		if a := sweep.AggregateOf(ratios); a.N > 0 {
			st.EventRatio = &serve.Aggregate{N: a.N, Min: a.Min, Max: a.Max, Mean: a.Mean, Geomean: a.Geomean}
		}
	}
	return st
}

// requestCancel asks the job to stop; terminal jobs report ok false.
func (j *job) requestCancel() (state string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return j.state.String(), false
	}
	j.cancelRequested = true
	if j.cancel != nil {
		j.cancel()
	}
	j.bumpLocked()
	return j.wireStateLocked(), true
}

// stateFromWire maps a persisted terminal state back onto the
// lifecycle. Unknown strings — a corrupted but parseable record —
// settle as failed rather than resurrecting the job.
func stateFromWire(s string) jobState {
	switch s {
	case "done":
		return jobDone
	case "cancelled":
		return jobCancelled
	}
	return jobFailed
}

// applyRecords replays recovered chunk results into the job, in chunk
// order so the NDJSON arrival stream of a resumed job is deterministic.
func (j *job) applyRecords(chunks map[int]ChunkRecord) {
	ids := make([]int, 0, len(chunks))
	for ci := range chunks {
		ids = append(ids, ci)
	}
	sort.Ints(ids)
	for _, ci := range ids {
		cr := chunks[ci]
		j.applyChunk(ci, cr.Points, cr.Batches, cr.BatchedPoints)
	}
}
