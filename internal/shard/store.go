package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dyncomp/internal/serve"
)

// Store is the coordinator's narrow durability layer: an append-only
// file of newline-delimited JSON records — one per submitted job, one
// per completed chunk, one per terminal state transition. It is not a
// database: replay is a single forward scan, and recovery from a torn
// write is "truncate to the last intact record". Everything else (chunk
// plans, point order, totals) is recomputed deterministically from the
// persisted sweep spec, so the store only has to remember what cannot
// be replanned: which job was asked for, which chunk results already
// exist, and how finished jobs ended.
//
// A nil *Store is valid and remembers nothing — an in-memory-only
// coordinator for tests and throwaway fleets.
type Store struct {
	mu sync.Mutex
	f  *os.File
}

// record is the single on-disk line format; Type selects which fields
// are meaningful.
type record struct {
	Type string `json:"type"` // "job", "chunk" or "state"
	Job  string `json:"job"`

	// Type "job": the submitted spec (with the effective batch width
	// pinned) plus the chunk-size target in force at submission — the
	// two inputs that make replanning after a restart cut identical
	// chunks even if the coordinator was restarted with different
	// flags.
	Created     *time.Time          `json:"created,omitempty"`
	Spec        *serve.SweepRequest `json:"spec,omitempty"`
	ChunkPoints int                 `json:"chunk_points,omitempty"`

	// Type "chunk": one completed chunk, identified by its position in
	// the deterministic plan.
	Chunk         *int               `json:"chunk,omitempty"`
	Worker        string             `json:"worker,omitempty"`
	Batches       int                `json:"batches,omitempty"`
	BatchedPoints int                `json:"batched_points,omitempty"`
	Points        []serve.ChunkPoint `json:"points,omitempty"`

	// Type "state": the terminal state.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// ChunkRecord is one recovered chunk result.
type ChunkRecord struct {
	Worker        string
	Batches       int
	BatchedPoints int
	Points        []serve.ChunkPoint
}

// JobRecord is one job reassembled from the record stream: the spec to
// replan from, every chunk already completed, and the terminal state if
// the job settled ("" when it was still in flight — the restarted
// coordinator resumes it).
type JobRecord struct {
	ID          string
	Created     time.Time
	Spec        serve.SweepRequest
	ChunkPoints int
	Chunks      map[int]ChunkRecord
	State       string
	Error       string
}

// OpenStore opens (or creates) the store file, replays every intact
// record into per-job histories, and truncates any torn tail — a crash
// mid-append must cost at most the record being written, never the
// job. Records are validated individually: a line that is not
// \n-terminated, not JSON, or not a known record type ends the replay
// and everything from it on is discarded.
func OpenStore(path string) (*Store, []JobRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	var (
		jobs  = map[string]*JobRecord{}
		order []string
		valid int64 // byte offset past the last intact record
	)
replay:
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminator
		}
		line := raw[off : off+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == "" {
			break
		}
		switch rec.Type {
		case "job":
			if rec.Spec == nil {
				break replay
			}
			jr := &JobRecord{ID: rec.Job, Spec: *rec.Spec, ChunkPoints: rec.ChunkPoints, Chunks: map[int]ChunkRecord{}}
			if rec.Created != nil {
				jr.Created = *rec.Created
			}
			if _, dup := jobs[rec.Job]; !dup {
				jobs[rec.Job] = jr
				order = append(order, rec.Job)
			}
		case "chunk":
			if rec.Chunk == nil {
				break replay
			}
			if jr, ok := jobs[rec.Job]; ok {
				jr.Chunks[*rec.Chunk] = ChunkRecord{
					Worker:        rec.Worker,
					Batches:       rec.Batches,
					BatchedPoints: rec.BatchedPoints,
					Points:        rec.Points,
				}
			}
		case "state":
			if jr, ok := jobs[rec.Job]; ok {
				jr.State, jr.Error = rec.State, rec.Error
			}
		default:
			// Unknown record type: written by a future version or
			// corruption that still parses. Stop here; the tail is
			// not trustworthy.
			break replay
		}
		off += nl + 1
		valid = int64(off)
	}

	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}

	out := make([]JobRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return &Store{f: f}, out, nil
}

// append writes one record followed by a newline and syncs — each
// record is a recovery point.
func (st *Store) append(rec record) error {
	if st == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return fmt.Errorf("shard: store closed")
	}
	if _, err := st.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return st.f.Sync()
}

// AppendJob records a submitted job.
func (st *Store) AppendJob(id string, created time.Time, spec serve.SweepRequest, chunkPoints int) error {
	return st.append(record{Type: "job", Job: id, Created: &created, Spec: &spec, ChunkPoints: chunkPoints})
}

// AppendChunk records one completed chunk.
func (st *Store) AppendChunk(id string, chunk int, worker string, resp *serve.ChunkResponse) error {
	return st.append(record{
		Type: "chunk", Job: id, Chunk: &chunk, Worker: worker,
		Batches: resp.Batches, BatchedPoints: resp.BatchedPoints, Points: resp.Points,
	})
}

// AppendState records a terminal state.
func (st *Store) AppendState(id, state, errMsg string) error {
	return st.append(record{Type: "state", Job: id, State: state, Error: errMsg})
}

// Compact rewrites the store keeping only records of jobs in live,
// dropping everything the coordinator has evicted — the log stays
// proportional to the retained jobs instead of the all-time history.
// The rewrite goes through a synced temp file renamed over the
// original, so a crash at any instant leaves either the old complete
// log or the new complete log, never a mix; replay semantics
// (stop-at-first-bad-line) are preserved because compaction copies the
// same prefix replay would accept.
func (st *Store) Compact(live map[string]bool) (kept, dropped int, err error) {
	if st == nil {
		return 0, 0, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return 0, 0, fmt.Errorf("shard: store closed")
	}
	if _, err := st.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	raw, err := io.ReadAll(st.f)
	if err != nil {
		return 0, 0, err
	}
	var out bytes.Buffer
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break
		}
		line := raw[off : off+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == "" {
			break // mirror replay: nothing past the first bad line survives
		}
		if live[rec.Job] {
			out.Write(line)
			out.WriteByte('\n')
			kept++
		} else {
			dropped++
		}
		off += nl + 1
	}

	path := st.f.Name()
	tmp := path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	if _, err := nf.Write(out.Bytes()); err != nil {
		nf.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	reopened, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename landed but we lost our handle to the new file;
		// further appends would go to the unlinked old inode. Fail closed.
		st.f.Close()
		st.f = nil
		return kept, dropped, err
	}
	st.f.Close()
	st.f = reopened
	return kept, dropped, nil
}

// Close closes the store file.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}
