package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dyncomp/internal/serve"
)

// Transport carries one chunk evaluation to one worker. It is an
// interface so the fault-injection tests can wrap the real HTTP
// transport with dropped connections, delays, 5xx answers and
// kills-mid-chunk without running a broken fleet.
type Transport interface {
	// RunChunk posts the chunk to the worker's POST /v1/chunks and
	// returns its response. Errors other than *WorkerError are
	// transport-level (connection refused, torn response) and always
	// retryable.
	RunChunk(ctx context.Context, workerURL string, req serve.ChunkRequest) (*serve.ChunkResponse, error)
}

// WorkerError is a worker's non-2xx answer, carrying the API error
// envelope through to the coordinator.
type WorkerError struct {
	Status int
	Code   string
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("worker answered %d (%s): %s", e.Status, e.Code, e.Msg)
}

// Permanent reports whether retrying the same request elsewhere is
// pointless: a 4xx is the request's fault and every worker validates
// identically, so the first rejection settles the chunk. Two 4xx codes
// are per-worker conditions, not verdicts on the request — 429 (the
// worker is shedding load or throttling this caller) and 408 — so those
// re-steer to another worker like a 5xx.
func (e *WorkerError) Permanent() bool {
	return e.Status >= 400 && e.Status < 500 &&
		e.Status != http.StatusTooManyRequests && e.Status != http.StatusRequestTimeout
}

// httpTransport is the production transport: plain JSON over the
// injected client (which sets the per-attempt timeout policy; the
// default client has none and relies on context cancellation).
type httpTransport struct {
	client *http.Client
}

func (t *httpTransport) RunChunk(ctx context.Context, workerURL string, req serve.ChunkRequest) (*serve.ChunkResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimRight(workerURL, "/") + "/v1/chunks"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var envelope serve.ErrorResponse
		if json.Unmarshal(raw, &envelope) == nil && envelope.Err.Code != "" {
			return nil, &WorkerError{Status: resp.StatusCode, Code: envelope.Err.Code, Msg: envelope.Err.Message}
		}
		return nil, &WorkerError{Status: resp.StatusCode, Code: "unknown", Msg: strings.TrimSpace(string(raw))}
	}
	var out serve.ChunkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding chunk response: %w", err)
	}
	return &out, nil
}
