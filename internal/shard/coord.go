// Package shard is the distributed sweep fabric: a coordinator that
// accepts the serving layer's sweep job API, partitions the grid by
// structural shape via consistent hashing, dispatches chunks to a fleet
// of dyncomp-serve workers over their POST /v1/chunks endpoint, and
// merges the results back into grid order — bit-identical to a
// single-process sweep.Run of the same request.
//
// The design follows three rules:
//
//   - Shape affinity. Chunks are routed on a consistent-hash ring keyed
//     by derive.ShapeKey, so every chunk of a shape cohort lands on the
//     same worker: its structure-keyed derivation cache derives once and
//     rebinds for the rest, and its batched lanes fill exactly as a
//     single-process sweep's would (chunk cuts are aligned to the batch
//     width).
//
//   - Deterministic planning. The plan — grid expansion, cohort
//     grouping, chunk cuts — is a pure function of the persisted sweep
//     spec and the chunk-size target, so a restarted coordinator replans
//     the identical chunk list and identifies recovered results by
//     nothing more than their chunk position.
//
//   - Narrow durability. The append-only store remembers only what
//     cannot be recomputed: submitted specs, completed chunk results and
//     terminal states. Everything else is replay.
//
// Worker failure triggers bounded retry with re-hash to surviving
// workers; a degraded single-worker fleet still completes every job. A
// chunk no worker can evaluate settles its points with the fabric error
// — done still reaches total, mirroring the sweep engine's per-point
// failure semantics.
package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyncomp/internal/serve"
)

// Config tunes the coordinator. The zero value is usable given at least
// one worker (registered up front in Workers or later via POST
// /v1/workers).
type Config struct {
	// Workers are the initial fleet members' base URLs.
	Workers []string
	// StorePath is the append-only job store file; empty runs the
	// coordinator memory-only (jobs do not survive a restart).
	StorePath string
	// ChunkPoints is the target grid points per dispatched chunk
	// (default 16). Larger chunks amortize HTTP overhead; smaller ones
	// spread a cohort wider and shrink the retry unit.
	ChunkPoints int
	// Retries bounds how many workers one chunk is attempted on before
	// its points fail with the fabric error (default 3).
	Retries int
	// ChunkTimeout bounds one dispatch attempt (0: no per-attempt
	// timeout; the job context still applies).
	ChunkTimeout time.Duration
	// Dispatch bounds the in-flight chunks per job (default 4).
	Dispatch int
	// Transport carries chunks to workers; nil selects the real HTTP
	// transport over Client. Tests inject faults here.
	Transport Transport
	// Client is the HTTP client of the default transport (nil:
	// http.DefaultClient semantics with no overall timeout).
	Client *http.Client
	// Defaults are the sweep-compilation defaults applied to request
	// fields left at zero, exactly as a worker's serve.Config would.
	Defaults serve.SweepDefaults
	// BreakerThreshold is the consecutive transport-failure count that
	// opens a worker's circuit breaker (default 1: the first failure
	// benches the worker, as before the breaker existed).
	BreakerThreshold int
	// ProbeBase / ProbeMax bound the jittered exponential backoff
	// between recovery probes of an open breaker (defaults 500ms / 30s).
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// ProbeTimeout bounds one probe attempt (default 2s).
	ProbeTimeout time.Duration
	// Prober checks readiness of a benched worker; nil selects
	// GET /readyz over Client. Tests inject outcomes here.
	Prober Prober
	// RetryBase / RetryMax bound the decorrelated-jitter backoff between
	// dispatch attempts of one chunk (defaults 10ms / 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// JobTTL evicts settled jobs this long after they finish (0: keep
	// forever); MaxJobs additionally evicts the oldest settled jobs
	// beyond the count (0: unbounded). Eviction compacts the store past
	// the dropped jobs.
	JobTTL  time.Duration
	MaxJobs int
	// StreamWriteTimeout bounds each write on the SSE and NDJSON streams
	// so one stalled consumer cannot pin a handler goroutine forever
	// (default 30s; negative disables).
	StreamWriteTimeout time.Duration
	// Logger receives structured access logs (nil: no request logging;
	// panic recovery stays active).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ChunkPoints <= 0 {
		c.ChunkPoints = 16
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.Dispatch <= 0 {
		c.Dispatch = 4
	}
	client := c.Client
	if client == nil {
		client = &http.Client{}
	}
	if c.Transport == nil {
		c.Transport = &httpTransport{client: client}
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 1
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = 500 * time.Millisecond
	}
	if c.ProbeMax <= 0 {
		c.ProbeMax = 30 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Prober == nil {
		c.Prober = &httpProber{client: client}
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	switch {
	case c.StreamWriteTimeout == 0:
		c.StreamWriteTimeout = 30 * time.Second
	case c.StreamWriteTimeout < 0:
		c.StreamWriteTimeout = 0
	}
	return c
}

// Coordinator is the fabric's control plane: the worker ring, the job
// table and the durability store, exposed over the same /v1/sweeps API
// vocabulary as a single dyncomp-serve process — plus the fleet
// endpoints (/v1/workers) and an NDJSON result stream.
type Coordinator struct {
	cfg   Config
	ring  *ring
	store *Store
	mux   *http.ServeMux

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// Resilience counters, exported by GET /metrics.
	breakerOpened  atomic.Int64
	breakerClosedN atomic.Int64
	chunkRetries   atomic.Int64
	jobsEvicted    atomic.Int64
	compactions    atomic.Int64
	panics         atomic.Int64
}

// New creates a Coordinator: opens the store (when configured), replays
// it — finished jobs become readable again, in-flight ones resume
// dispatching — and wires the HTTP handlers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    newRing(cfg.Workers),
		mux:     http.NewServeMux(),
		jobs:    map[string]*job{},
		baseCtx: ctx,
		stop:    stop,
	}
	if cfg.StorePath != "" {
		store, recovered, err := OpenStore(cfg.StorePath)
		if err != nil {
			stop()
			return nil, fmt.Errorf("shard: opening store: %w", err)
		}
		c.store = store
		for _, jr := range recovered {
			c.recoverJob(jr)
		}
	}
	c.routes()
	if cfg.JobTTL > 0 || cfg.MaxJobs > 0 {
		c.wg.Add(1)
		go c.jobJanitor()
	}
	return c, nil
}

// jobJanitor periodically evicts settled jobs past the TTL or beyond
// MaxJobs and compacts the store past them.
func (c *Coordinator) jobJanitor() {
	defer c.wg.Done()
	interval := c.cfg.JobTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	if interval > time.Second || c.cfg.JobTTL <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case now := <-t.C:
			c.evictJobs(now)
		}
	}
}

// evictJobs drops settled jobs past the TTL (by finish time) plus the
// oldest settled jobs beyond MaxJobs, then compacts the store down to
// the survivors: neither the job table nor the on-disk log grows
// without bound under sustained traffic. Running jobs are never
// touched.
func (c *Coordinator) evictJobs(now time.Time) {
	c.mu.Lock()
	drop := map[string]bool{}
	var settled []string // creation order
	for _, id := range c.order {
		if at, ok := c.jobs[id].settledAt(); ok {
			if c.cfg.JobTTL > 0 && now.Sub(at) >= c.cfg.JobTTL {
				drop[id] = true
			} else {
				settled = append(settled, id)
			}
		}
	}
	if c.cfg.MaxJobs > 0 {
		kept := len(c.order) - len(drop)
		for _, id := range settled {
			if kept <= c.cfg.MaxJobs {
				break
			}
			drop[id] = true
			kept--
		}
	}
	if len(drop) == 0 {
		c.mu.Unlock()
		return
	}
	order := c.order[:0]
	live := map[string]bool{}
	for _, id := range c.order {
		if drop[id] {
			delete(c.jobs, id)
			continue
		}
		order = append(order, id)
		live[id] = true
	}
	c.order = order
	c.mu.Unlock()
	c.jobsEvicted.Add(int64(len(drop)))
	if c.store != nil {
		if _, _, err := c.store.Compact(live); err == nil {
			c.compactions.Add(1)
		}
	}
}

// recoverJob rebuilds one persisted job: replan deterministically from
// the pinned spec, replay the recorded chunk results, then either
// settle the recorded terminal state or resume dispatching the chunks
// that never came back.
func (c *Coordinator) recoverJob(jr JobRecord) {
	if n := idSeq(jr.ID); n > c.seq {
		c.seq = n
	}
	// Replan under neutral defaults: the spec's pinned batch width and
	// the recorded chunk size carry the plan-relevant knobs, so a
	// restart with different flags still cuts identical chunks.
	jp, rerr := planJob(jr.Spec, serve.SweepDefaults{Workers: c.cfg.Defaults.Workers}, jr.ChunkPoints)
	if rerr != nil {
		// The spec no longer compiles (e.g. a scenario was removed).
		// Surface the job as failed instead of silently dropping it.
		j := &job{
			id: jr.ID, spec: jr.Spec, created: jr.Created,
			state: jobFailed, errMsg: rerr.Msg, changed: make(chan struct{}),
		}
		c.register(j)
		return
	}
	j := newJob(jr.ID, jr.Spec, jr.Created, jp)
	j.applyRecords(jr.Chunks)
	c.register(j)
	if jr.State != "" {
		st := stateFromWire(jr.State)
		if st == jobDone {
			// done promises done == total; a chunk whose record was
			// torn off the tail settles with an explicit error.
			for _, ci := range j.pendingChunks() {
				j.failChunk(ci, errors.New("shard: chunk result lost before coordinator shutdown"))
			}
		}
		j.settle(st, jr.Error, jr.Created)
		return
	}
	c.wg.Add(1)
	go c.runJob(j)
}

// register adds a job to the table in creation order.
func (c *Coordinator) register(j *job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
}

// idSeq parses the numeric suffix of a "job-%06d" id (0 when foreign).
func idSeq(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// Handler returns the root handler serving the coordinator API,
// wrapped in the same panic-recovery and access-logging middleware the
// serving layer uses.
func (c *Coordinator) Handler() http.Handler {
	return serve.AccessLog{
		Logger:  c.cfg.Logger,
		OnPanic: func() { c.panics.Add(1) },
	}.Wrap(c.mux)
}

// Close stops the coordinator: running jobs are interrupted mid-dispatch
// WITHOUT settling a terminal state — their store records end at the
// last completed chunk, which is exactly where a restarted coordinator
// resumes them. Close blocks until every dispatcher returned, then
// closes the store.
func (c *Coordinator) Close() {
	c.stop()
	c.wg.Wait()
	_ = c.store.Close()
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkersList)
	c.mux.HandleFunc("POST /v1/workers", c.handleWorkersAdd)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSweepCreate)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleSweepList)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepGet)
	c.mux.HandleFunc("DELETE /v1/sweeps/{id}", c.handleSweepCancel)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/events", c.handleSweepEvents)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/results", c.handleSweepResults)
}

// submit plans, persists and launches one job. Exported through the
// HTTP handler only; tests drive the same path over httptest.
func (c *Coordinator) submit(req serve.SweepRequest) (*job, *serve.RequestError) {
	if c.baseCtx.Err() != nil {
		return nil, &serve.RequestError{Status: http.StatusServiceUnavailable,
			Code: serve.CodeUnavailable, Msg: "coordinator shutting down"}
	}
	jp, rerr := planJob(req, c.cfg.Defaults, c.cfg.ChunkPoints)
	if rerr != nil {
		return nil, rerr
	}
	// Pin the effective batch width into the persisted (and dispatched)
	// spec: workers must not substitute their own default, and a
	// restarted coordinator must replan the same cuts.
	req.Options.BatchWidth = jp.effWidth

	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("job-%06d", c.seq)
	c.mu.Unlock()
	j := newJob(id, req, time.Now(), jp)
	c.register(j)
	if err := c.store.AppendJob(id, j.created, req, c.cfg.ChunkPoints); err != nil {
		j.settle(jobFailed, fmt.Sprintf("persisting job: %v", err), time.Now())
		return j, nil
	}
	c.wg.Add(1)
	go c.runJob(j)
	return j, nil
}

// runJob dispatches every pending chunk of a job across the fleet, a
// bounded number in flight at a time, then settles the terminal state.
func (c *Coordinator) runJob(j *job) {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(c.baseCtx)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		if j.cancelled() {
			// Cancelled while still queued: start settled the job;
			// persist the state so a restart does not resurrect it.
			_ = c.store.AppendState(j.id, "cancelled", context.Canceled.Error())
		}
		return
	}

	sem := make(chan struct{}, c.cfg.Dispatch)
	var wg sync.WaitGroup
	for _, ci := range j.pendingChunks() {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(ci int) {
			defer func() { <-sem; wg.Done() }()
			c.dispatchChunk(ctx, j, ci)
		}(ci)
	}
	wg.Wait()

	now := time.Now()
	switch {
	case j.complete():
		// Every chunk merged — point-level failures (including fabric
		// failures) travel in the results, exactly as in the sweep
		// engine, so the job itself is done.
		_ = c.store.AppendState(j.id, "done", "")
		j.settle(jobDone, "", now)
	case j.cancelled():
		_ = c.store.AppendState(j.id, "cancelled", context.Canceled.Error())
		j.settle(jobCancelled, context.Canceled.Error(), now)
	default:
		// Coordinator shutdown: leave the job unsettled in the store so
		// a restart resumes it from the last completed chunk.
	}
}

// dispatchChunk delivers one chunk: look the owning worker up on the
// ring, post the chunk, and on failure re-hash to the next surviving
// worker under a decorrelated-jitter backoff — transport-level failures
// additionally count against the worker's circuit breaker, benching it
// fleet-wide once the threshold trips. A permanent 4xx answer settles
// the chunk (every worker validates identically); retries are bounded
// by Config.Retries and by fleet exhaustion, after which the chunk's
// points settle with the fabric error.
func (c *Coordinator) dispatchChunk(ctx context.Context, j *job, ci int) {
	cp := j.chunks[ci]
	req := serve.ChunkRequest{SweepRequest: j.spec, Indices: cp.indices}
	exclude := map[string]bool{}
	var lastErr error
	var backoff time.Duration
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if attempt > 0 {
			// Decorrelated-jitter pause before re-dispatching: a fleet-wide
			// hiccup (worker restart, network blip) clears instead of being
			// hammered through the retry budget in microseconds.
			backoff = nextBackoff(backoff, c.cfg.RetryBase, c.cfg.RetryMax)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			c.chunkRetries.Add(1)
		}
		worker, ok := c.ring.lookup(cp.shape, exclude)
		if !ok {
			if lastErr == nil {
				lastErr = errors.New("no live worker")
			}
			break
		}
		actx := ctx
		if c.cfg.ChunkTimeout > 0 {
			var acancel context.CancelFunc
			actx, acancel = context.WithTimeout(ctx, c.cfg.ChunkTimeout)
			defer acancel()
		}
		resp, err := c.cfg.Transport.RunChunk(actx, worker, req)
		if err == nil {
			c.ring.recordSuccess(worker)
			if j.applyChunk(ci, resp.Points, resp.Batches, resp.BatchedPoints) {
				_ = c.store.AppendChunk(j.id, ci, worker, resp)
			}
			return
		}
		if ctx.Err() != nil {
			return // job cancelled or coordinator shutting down
		}
		var we *WorkerError
		switch {
		case errors.As(err, &we) && we.Permanent():
			j.failChunk(ci, err)
			return
		case errors.As(err, &we):
			// The worker answered (5xx, or a per-worker 429/408), so it is
			// alive but unhealthy or shedding — steer this chunk elsewhere
			// without benching the worker.
			exclude[worker] = true
		default:
			// Transport-level: connection refused, torn response,
			// per-attempt timeout. Count it against the worker's breaker;
			// past the threshold the breaker opens and a probe loop owns
			// bringing the worker back.
			c.benchWorker(worker)
			exclude[worker] = true
		}
		lastErr = err
	}
	j.failChunk(ci, fmt.Errorf("shard: chunk undeliverable: %w", lastErr))
}

// benchWorker records one transport-level dispatch failure against a
// worker's breaker; on the closed→open transition it starts the
// recovery probe loop (exactly one per open breaker).
func (c *Coordinator) benchWorker(url string) {
	if !c.ring.recordFailure(url, c.cfg.BreakerThreshold) {
		return
	}
	c.breakerOpened.Add(1)
	c.wg.Add(1)
	go c.probeWorker(url)
}

// probeWorker drives one open breaker back to closed: wait out a
// jittered exponential backoff, half-open the breaker, probe the
// worker's readiness, and either close the breaker (success) or re-open
// it and back off further. The loop also exits when the worker closes
// by other means (re-registration) or the coordinator shuts down.
func (c *Coordinator) probeWorker(url string) {
	defer c.wg.Done()
	defer c.ring.probeDone(url)
	backoff := c.cfg.ProbeBase
	for {
		t := time.NewTimer(jitter(backoff))
		select {
		case <-c.baseCtx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		if !c.ring.beginProbe(url) {
			return
		}
		pctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ProbeTimeout)
		err := c.cfg.Prober.Probe(pctx, url)
		cancel()
		if err == nil {
			c.ring.probeSucceeded(url)
			c.breakerClosedN.Add(1)
			return
		}
		c.ring.probeFailed(url)
		backoff *= 2
		if backoff > c.cfg.ProbeMax {
			backoff = c.cfg.ProbeMax
		}
	}
}

// cancelled reports whether a cancel was requested.
func (j *job) cancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// get looks a job up by id.
func (c *Coordinator) get(id string) (*job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// list returns every job in creation order.
func (c *Coordinator) list() []*job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// Health is the body of GET /healthz.
type Health struct {
	Status       string `json:"status"`
	Workers      int    `json:"workers"`
	WorkersAlive int    `json:"workers_alive"`
	Jobs         int    `json:"jobs"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:       "ok",
		Workers:      len(c.ring.workers()),
		WorkersAlive: c.ring.alive(),
		Jobs:         jobs,
	})
}

func (c *Coordinator) handleWorkersList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerStatus `json:"workers"`
	}{Workers: c.ring.workers()})
}

// workerAddRequest is the body of POST /v1/workers: a dyncomp-serve
// process announcing itself (see the -register flag). Re-registering a
// benched worker puts it back in rotation under its original ring
// positions.
type workerAddRequest struct {
	URL string `json:"url"`
}

func (c *Coordinator) handleWorkersAdd(w http.ResponseWriter, r *http.Request) {
	var req workerAddRequest
	if rerr := decodeJSON(w, r, &req); rerr != nil {
		writeError(w, rerr)
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, &serve.RequestError{Status: http.StatusBadRequest,
			Code: serve.CodeBadJSON, Msg: fmt.Sprintf("url %q is not an absolute http(s) URL", req.URL)})
		return
	}
	c.ring.add(strings.TrimRight(req.URL, "/"))
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerStatus `json:"workers"`
	}{Workers: c.ring.workers()})
}

func (c *Coordinator) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	var req serve.SweepRequest
	if rerr := decodeJSON(w, r, &req); rerr != nil {
		writeError(w, rerr)
		return
	}
	j, rerr := c.submit(req)
	if rerr != nil {
		writeError(w, rerr)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (c *Coordinator) handleSweepList(w http.ResponseWriter, r *http.Request) {
	jobs := c.list()
	out := struct {
		Jobs []serve.Job `json:"jobs"`
	}{Jobs: make([]serve.Job, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := c.get(r.PathValue("id"))
	if !ok {
		writeError(w, &serve.RequestError{Status: http.StatusNotFound,
			Code: serve.CodeJobNotFound, Msg: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.result())
}

func (c *Coordinator) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.get(r.PathValue("id"))
	if !ok {
		writeError(w, &serve.RequestError{Status: http.StatusNotFound,
			Code: serve.CodeJobNotFound, Msg: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	st, ok := j.requestCancel()
	if !ok {
		writeError(w, &serve.RequestError{Status: http.StatusConflict,
			Code: serve.CodeJobTerminal, Msg: fmt.Sprintf("job %s already settled as %q", j.id, st)})
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}
