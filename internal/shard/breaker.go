package shard

// Circuit-breaking worker health. Before this layer the coordinator
// benched a worker on the first transport failure until it re-registered
// — a flapping worker degraded the fleet until an operator restarted
// it. Now each fleet member carries a breaker:
//
//	closed ──consecutive transport failures ≥ threshold──► open
//	open ──jittered exponential backoff elapsed──► half-open
//	half-open ──readiness probe ok──► closed
//	half-open ──probe failed──► open (backoff doubles)
//
// Only closed members take chunks. The recovery probe hits the worker's
// GET /readyz — its readiness signal, not bare liveness — so a worker
// that is up but draining or queue-saturated stays benched. Worker
// re-registration (POST /v1/workers) still closes the breaker
// immediately, exactly as before.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// breakerState is one member's position in the breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Prober checks whether a benched worker is ready to take chunks again.
// It is an interface so tests can pin a worker open or script recovery.
type Prober interface {
	Probe(ctx context.Context, workerURL string) error
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(ctx context.Context, workerURL string) error

// Probe implements Prober.
func (f ProberFunc) Probe(ctx context.Context, workerURL string) error {
	return f(ctx, workerURL)
}

// httpProber is the production prober: GET {worker}/readyz, any 2xx is
// ready.
type httpProber struct {
	client *http.Client
}

func (p *httpProber) Probe(ctx context.Context, workerURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(workerURL, "/")+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("worker %s not ready: status %d", workerURL, resp.StatusCode)
	}
	return nil
}

// jitter spreads a delay over [d/2, d), so the probes of several open
// breakers (or several coordinators sharing a fleet) never synchronize.
func jitter(d time.Duration) time.Duration {
	if d <= time.Nanosecond {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// nextBackoff is decorrelated-jitter backoff: each delay is drawn from
// [base, prev*3], capped — retries spread out instead of marching in
// the lockstep graded schedule they replaced.
func nextBackoff(prev, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	hi := 3 * prev
	if hi < base {
		hi = base
	}
	d := base + time.Duration(rand.Int63n(int64(hi-base)+1))
	if d > max {
		d = max
	}
	return d
}
