package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dyncomp/internal/serve"
	"dyncomp/internal/sweep"
)

// newFleet starts n in-process dyncomp-serve workers over httptest and
// returns their base URLs. Each worker is a full serving layer — own
// derivation cache, own batched lanes — so the fleet exercises exactly
// the production chunk path, minus the network.
func newFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// newCoord wires a coordinator over httptest; Close and server shutdown
// are handled by cleanup.
func newCoord(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var env serve.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body is not the envelope: %s", raw)
	}
	return env.Err.Code
}

// submitSweep posts a sweep to the coordinator and returns the accepted
// job snapshot.
func submitSweep(t *testing.T, coordURL string, req serve.SweepRequest) serve.Job {
	t.Helper()
	resp := postJSON(t, coordURL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit answered %d (%s)", resp.StatusCode, errorCode(t, resp))
	}
	return decodeBody[serve.Job](t, resp)
}

// getResult fetches GET /v1/sweeps/{id}.
func getResult(t *testing.T, coordURL, id string) serve.JobResult {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get answered %d (%s)", resp.StatusCode, errorCode(t, resp))
	}
	return decodeBody[serve.JobResult](t, resp)
}

// waitTerminal polls the job until it settles.
func waitTerminal(t *testing.T, coordURL, id string) serve.JobResult {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		res := getResult(t, coordURL, id)
		if terminalWire(res.State) {
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q (%d/%d) after 60s", id, res.State, res.Done, res.Total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// localSweep evaluates the same request single-process through the
// identical compilation path a worker uses — the bit-exactness
// reference for every fleet test.
func localSweep(t *testing.T, req serve.SweepRequest) *sweep.Result {
	t.Helper()
	plan, rerr := serve.CompileSweep(req, serve.SweepDefaults{})
	if rerr != nil {
		t.Fatalf("local compile: %s", rerr.Msg)
	}
	res, err := sweep.Run(plan.Axes, plan.Gen, plan.Opts)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	return res
}

// assertBitIdentical compares a settled fleet job against the
// single-process reference: per-point results in grid order (engine
// counters, event ratios, error strings) and the deterministic slice of
// the statistics — point counts, shape count, batch counts and lane
// occupancy. Wall-clock numbers and the distributed-vs-local cache
// counters are exempt by design.
func assertBitIdentical(t *testing.T, res serve.JobResult, local *sweep.Result) {
	t.Helper()
	if res.State != "done" {
		t.Fatalf("job settled as %q (%s)", res.State, res.Error)
	}
	if res.Done != res.Total || res.Total != len(local.Points) {
		t.Fatalf("done %d / total %d, local grid %d", res.Done, res.Total, len(local.Points))
	}
	if len(res.Points) != len(local.Points) {
		t.Fatalf("%d points, local %d", len(res.Points), len(local.Points))
	}
	for i, lp := range local.Points {
		fp := res.Points[i]
		wantErr := ""
		if lp.Err != nil {
			wantErr = lp.Err.Error()
		}
		if fp.Error != wantErr {
			t.Fatalf("point %d: error %q, local %q", i, fp.Error, wantErr)
		}
		if wantErr != "" {
			continue
		}
		if fp.Result == nil {
			t.Fatalf("point %d has no result", i)
		}
		if fp.Result.FinalTimeNs != lp.Run.FinalTimeNs ||
			fp.Result.Activations != lp.Run.Activations ||
			fp.Result.Events != lp.Run.Events ||
			fp.Result.Iterations != lp.Run.Iterations ||
			fp.Result.GraphNodes != lp.Run.GraphNodes ||
			fp.Result.Switches != lp.Run.Switches ||
			fp.Result.Fallbacks != lp.Run.Fallbacks {
			t.Fatalf("point %d: fleet %+v != local %+v", i, *fp.Result, lp.Run)
		}
		if math.Float64bits(fp.EventRatio) != math.Float64bits(lp.EventRatio) {
			t.Fatalf("point %d: event ratio %v != local %v", i, fp.EventRatio, lp.EventRatio)
		}
	}

	st := res.Stats
	if st == nil {
		t.Fatal("settled job has no stats")
	}
	ls := local.Stats
	if st.Points != ls.Points || st.Failed != ls.Failed || st.Shapes != ls.Shapes {
		t.Fatalf("stats points/failed/shapes %d/%d/%d, local %d/%d/%d",
			st.Points, st.Failed, st.Shapes, ls.Points, ls.Failed, ls.Shapes)
	}
	if st.Batches != ls.Batches || st.BatchedPoints != ls.BatchedPoints {
		t.Fatalf("stats batches %d/%d, local %d/%d",
			st.Batches, st.BatchedPoints, ls.Batches, ls.BatchedPoints)
	}
	if math.Float64bits(st.BatchOccupancy) != math.Float64bits(ls.BatchOccupancy) {
		t.Fatalf("batch occupancy %v, local %v", st.BatchOccupancy, ls.BatchOccupancy)
	}
	if ls.EventRatio.N > 0 {
		if st.EventRatio == nil {
			t.Fatal("local aggregated event ratios, fleet did not")
		}
		if st.EventRatio.N != ls.EventRatio.N ||
			math.Float64bits(st.EventRatio.Min) != math.Float64bits(ls.EventRatio.Min) ||
			math.Float64bits(st.EventRatio.Max) != math.Float64bits(ls.EventRatio.Max) ||
			math.Float64bits(st.EventRatio.Mean) != math.Float64bits(ls.EventRatio.Mean) ||
			math.Float64bits(st.EventRatio.Geomean) != math.Float64bits(ls.EventRatio.Geomean) {
			t.Fatalf("event-ratio aggregate %+v, local %+v", *st.EventRatio, ls.EventRatio)
		}
	}
}

// uniqueIndexParams asserts every grid point appears exactly once in a
// result set by its parameter tuple rendering — the no-duplicate /
// no-loss property of the fabric.
func uniqueIndexParams(t *testing.T, points []serve.SweepPoint) {
	t.Helper()
	seen := map[string]bool{}
	for i, p := range points {
		key := fmt.Sprintf("%v", p.Params)
		if p.Params == nil || len(p.Params) == 0 {
			t.Fatalf("point %d has no params (hole in the merge): %+v", i, p)
		}
		if seen[key] {
			t.Fatalf("params %s appear twice", key)
		}
		seen[key] = true
	}
}
