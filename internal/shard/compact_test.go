package shard

// Store compaction tests: evicting settled jobs shrinks the on-disk
// log, a restart over the compacted store replays only the live jobs,
// and the torn-tail recovery contract survives compaction.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

func storeSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// MaxJobs eviction drops the oldest settled job, compacts the store
// past it, and a coordinator restarted over the compacted store —
// including a torn tail appended after compaction — replays exactly the
// surviving job with full results.
func TestEvictionCompactsStoreAcrossRestart(t *testing.T) {
	workers := newFleet(t, 2)
	storePath := t.TempDir() + "/jobs.ndjson"
	c1, ts1 := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2, StorePath: storePath, MaxJobs: 1,
	})

	a := submitSweep(t, ts1.URL, faultReq)
	waitTerminal(t, ts1.URL, a.ID)
	b := submitSweep(t, ts1.URL, faultReq)
	waitTerminal(t, ts1.URL, b.ID)

	before := storeSize(t, storePath)
	c1.evictJobs(time.Now())
	if n := c1.jobsEvicted.Load(); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
	if n := c1.compactions.Load(); n != 1 {
		t.Fatalf("%d compactions, want 1", n)
	}
	if after := storeSize(t, storePath); after >= before {
		t.Fatalf("store %d bytes after compaction, was %d — nothing reclaimed", after, before)
	}

	// The evicted job is gone from the API; the survivor is intact.
	resp, err := http.Get(ts1.URL + "/v1/sweeps/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job answered %d, want 404", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "job_not_found" {
		t.Fatalf("evicted job code %q, want job_not_found", code)
	}
	assertBitIdentical(t, getResult(t, ts1.URL, b.ID), localSweep(t, faultReq))

	// The store still appends after compaction (the fd was swapped): a
	// third job persists and survives too.
	cJob := submitSweep(t, ts1.URL, faultReq)
	waitTerminal(t, ts1.URL, cJob.ID)

	ts1.Close()
	c1.Close()

	// Tear the tail of the compacted store: recovery must still truncate
	// to the last intact record.
	f, err := os.OpenFile(storePath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"state","job":"job-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := New(Config{Workers: workers, ChunkPoints: 2, StorePath: storePath})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})
	if _, ok := c2.get(a.ID); ok {
		t.Fatalf("evicted job %s resurrected by restart", a.ID)
	}
	assertBitIdentical(t, getResult(t, ts2.URL, b.ID), localSweep(t, faultReq))
	assertBitIdentical(t, getResult(t, ts2.URL, cJob.ID), localSweep(t, faultReq))
}

// TTL eviction through the janitor: settled jobs age out without any
// explicit call, live jobs stay.
func TestJobTTLEvictsSettledJobs(t *testing.T) {
	workers := newFleet(t, 2)
	c, ts := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2,
		JobTTL: 50 * time.Millisecond,
	})

	job := submitSweep(t, ts.URL, faultReq)
	waitTerminal(t, ts.URL, job.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("settled job never aged out past the TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.jobsEvicted.Load(); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
}
