package shard

// Coordinator observability: GET /metrics exposes the fabric's
// resilience counters in the Prometheus text format (hand-rolled like
// the serving layer's — stdlib only), and GET /readyz is the readiness
// probe load balancers and upstream breakers key on: a coordinator with
// no live worker accepts jobs it cannot dispatch, so it reports not
// ready.

import (
	"fmt"
	"net/http"

	"dyncomp/internal/serve"
)

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ws := c.ring.workers()
	alive := 0
	for _, m := range ws {
		if !m.Down {
			alive++
		}
	}
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()

	fmt.Fprintf(w, "# HELP dyncomp_coord_workers Registered fleet members.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_workers gauge\n")
	fmt.Fprintf(w, "dyncomp_coord_workers %d\n", len(ws))
	fmt.Fprintf(w, "# HELP dyncomp_coord_workers_alive Fleet members with a closed breaker (in rotation).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_workers_alive gauge\n")
	fmt.Fprintf(w, "dyncomp_coord_workers_alive %d\n", alive)
	fmt.Fprintf(w, "# HELP dyncomp_coord_breaker_state Breaker state per worker (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_breaker_state gauge\n")
	for _, m := range ws {
		v := 0
		switch m.Breaker {
		case breakerOpen.String():
			v = 1
		case breakerHalfOpen.String():
			v = 2
		}
		fmt.Fprintf(w, "dyncomp_coord_breaker_state{worker=%q} %d\n", m.URL, v)
	}
	fmt.Fprintf(w, "# HELP dyncomp_coord_breaker_opened_total Breakers opened (worker benched).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_breaker_opened_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_breaker_opened_total %d\n", c.breakerOpened.Load())
	fmt.Fprintf(w, "# HELP dyncomp_coord_breaker_closed_total Breakers closed by a successful readiness probe.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_breaker_closed_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_breaker_closed_total %d\n", c.breakerClosedN.Load())
	fmt.Fprintf(w, "# HELP dyncomp_coord_chunk_retries_total Chunk dispatch attempts past the first.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_chunk_retries_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_chunk_retries_total %d\n", c.chunkRetries.Load())
	fmt.Fprintf(w, "# HELP dyncomp_coord_jobs Jobs in the table.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_jobs gauge\n")
	fmt.Fprintf(w, "dyncomp_coord_jobs %d\n", jobs)
	fmt.Fprintf(w, "# HELP dyncomp_coord_jobs_evicted_total Settled jobs evicted by TTL or the MaxJobs cap.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_jobs_evicted_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_jobs_evicted_total %d\n", c.jobsEvicted.Load())
	fmt.Fprintf(w, "# HELP dyncomp_coord_store_compactions_total Store compactions past evicted jobs.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_store_compactions_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_store_compactions_total %d\n", c.compactions.Load())
	fmt.Fprintf(w, "# HELP dyncomp_coord_panics_total Handler panics recovered by the middleware.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_coord_panics_total counter\n")
	fmt.Fprintf(w, "dyncomp_coord_panics_total %d\n", c.panics.Load())
}

// handleReadyz answers whether the coordinator can make progress:
// not shutting down and at least one worker in rotation. /healthz stays
// pure liveness.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.baseCtx.Err() != nil {
		writeError(w, &serve.RequestError{Status: http.StatusServiceUnavailable,
			Code: serve.CodeUnavailable, Msg: "coordinator shutting down"})
		return
	}
	if c.ring.alive() == 0 {
		writeError(w, &serve.RequestError{Status: http.StatusServiceUnavailable,
			Code: serve.CodeUnavailable, Msg: "no worker in rotation"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}
