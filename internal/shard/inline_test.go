package shard

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"dyncomp/internal/serve"
)

// shardInlineSpec is the inline architecture the fabric tests sweep:
// final time is exactly (count-1)·period + work, so any fabric-level
// corruption of the pinned spec would be visible in the merged numbers.
const shardInlineSpec = `{
  "version": 1,
  "name": "fabricgrid",
  "parameters": [
    {"name": "period", "default": 700, "values": [500, 600, 700]},
    {"name": "work", "default": 100, "values": [50, 100, 150, 200]}
  ],
  "channels": [
    {"name": "in", "kind": "rendezvous"},
    {"name": "out", "kind": "rendezvous"}
  ],
  "functions": [
    {"name": "F", "body": [
      {"read": "in"},
      {"exec": {"label": "T", "cost": {"kind": "fixed", "ops": "$work"}}},
      {"write": "out"}
    ]}
  ],
  "resources": [{"name": "P1", "kind": "processor", "ops_per_sec": 1e9}],
  "mapping": [{"resource": "P1", "functions": ["F"]}],
  "sources": [{"name": "src", "channel": "in", "count": 25,
               "schedule": {"kind": "periodic", "period": "$period", "offset": 0}}],
  "sinks": [{"name": "sink", "channel": "out"}]
}`

// inlineReq sweeps the full 12-point grid of shardInlineSpec.
var inlineReq = serve.SweepRequest{
	Architecture: json.RawMessage(shardInlineSpec),
	Axes: []serve.Axis{
		{Name: "period", Values: []int64{500, 600, 700}},
		{Name: "work", Values: []int64{50, 100, 150, 200}},
	},
	Options: serve.SweepOptions{Workers: 2},
}

// An inline-architecture sweep distributes like a scenario sweep: the
// coordinator plans from the spec carried in the request, every chunk
// ships the spec to its worker, and the merged result is bit-identical
// to the single-process evaluation.
func TestInlineArchitectureSweepThroughFleet(t *testing.T) {
	workers := newFleet(t, 2)
	tr := newFaultTransport(nil)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 3, Transport: tr})

	job := submitSweep(t, ts.URL, inlineReq)
	if job.Scenario != "fabricgrid" {
		t.Fatalf("job names %q, want the spec name", job.Scenario)
	}
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, inlineReq))
	uniqueIndexParams(t, res.Points)
	tr.deliveredOnce(t, res.Total)
}

// The tentpole's durability property: the inline spec is pinned in the
// coordinator's job store, so a restarted coordinator — whose registry
// knows nothing about this architecture — replans the identical chunk
// list from the persisted bytes and finishes the job bit-identically,
// re-evaluating only the chunks whose records were lost.
func TestInlineArchitecturePinnedAcrossRestart(t *testing.T) {
	workers := newFleet(t, 2)
	storePath := t.TempDir() + "/jobs.ndjson"

	c1, ts1 := newCoord(t, Config{Workers: workers, ChunkPoints: 3, StorePath: storePath})
	job := submitSweep(t, ts1.URL, inlineReq)
	waitTerminal(t, ts1.URL, job.ID)
	ts1.Close()
	c1.Close()

	// Simulate a crash that lost the tail: drop the terminal state and
	// tear the last chunk record. 4 chunks were persisted; 3 survive.
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 6 { // job + 4 chunks + state
		t.Fatalf("store holds %d records, expected 6", len(lines))
	}
	var keep strings.Builder
	for _, l := range lines[:4] {
		keep.WriteString(l)
	}
	keep.WriteString(lines[4][:len(lines[4])/2])
	if err := os.WriteFile(storePath, []byte(keep.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	tr := newFaultTransport(nil)
	c2, err := New(Config{Workers: workers, ChunkPoints: 3, StorePath: storePath, Transport: tr})
	if err != nil {
		t.Fatalf("coordinator refused the store: %v", err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})

	res := waitTerminal(t, ts2.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, inlineReq))
	uniqueIndexParams(t, res.Points)

	// Only the torn chunk's 3 points were re-evaluated — the pinned spec
	// replanned the same cuts, and the recorded chunks replayed.
	tr.mu.Lock()
	redone := len(tr.delivered)
	tr.mu.Unlock()
	if redone != 3 {
		t.Fatalf("recovery re-evaluated %d points, want the torn chunk's 3", redone)
	}
}

// Inline validation failures surface at submission with the same codes
// a worker would answer.
func TestInlineArchitectureSubmitErrors(t *testing.T) {
	workers := newFleet(t, 1)
	_, ts := newCoord(t, Config{Workers: workers})

	bad := inlineReq
	bad.Architecture = json.RawMessage(`{"version": 99, "name": "x"}`)
	resp := postJSON(t, ts.URL+"/v1/sweeps", bad)
	if code := errorCode(t, resp); code != serve.CodeUnsupportedVersion {
		t.Fatalf("future version: code %q", code)
	}

	bad = inlineReq
	bad.Axes = []serve.Axis{{Name: "phase", Values: []int64{1}}}
	resp = postJSON(t, ts.URL+"/v1/sweeps", bad)
	if code := errorCode(t, resp); code != serve.CodeInvalidAxes {
		t.Fatalf("undeclared axis: code %q", code)
	}
}
