package shard

import (
	"net/http"
	"testing"

	"dyncomp/internal/serve"
)

// The coordinator rejects sampled sweeps up front: the surrogate needs
// the whole grid to choose what to simulate, and a shard sees only its
// chunk. The client gets the same stable error code the worker-side
// chunk endpoint answers.
func TestCoordinatorRejectsSampling(t *testing.T) {
	workers := newFleet(t, 1)
	_, ts := newCoord(t, Config{Workers: workers})
	resp := postJSON(t, ts.URL+"/v1/sweeps", serve.SweepRequest{
		Scenario: "didactic",
		Axes:     []serve.Axis{{Name: "seed", Values: []int64{1, 2, 3}}},
		Params:   map[string]int64{"tokens": 20},
		Options:  serve.SweepOptions{SampleTolerance: 0.01},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sampled sweep accepted: status %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != serve.CodeInvalidSample {
		t.Fatalf("code %q, want %q", code, serve.CodeInvalidSample)
	}
}
