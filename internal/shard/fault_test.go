package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dyncomp/internal/serve"
)

// faultTransport wraps the real HTTP transport with an injection hook:
// the hook sees every attempt (attempt ordinal across the whole
// transport, worker URL, chunk request) before it goes out and may
// synthesize a failure — a dropped connection, a 5xx envelope, a delay
// — without running a broken fleet. A nil hook result lets the attempt
// through to the real worker. Injection keys on the attempt ordinal,
// not the worker URL: httptest ports are random, so which worker the
// ring picks for a shape differs run to run, but "the first dispatch
// fails" is deterministic.
type faultTransport struct {
	inner Transport
	hook  func(attempt int, workerURL string, req serve.ChunkRequest) error

	mu       sync.Mutex
	attempts int
	// delivered records every grid index the transport returned results
	// for, counting duplicates — the fabric must evaluate each point
	// exactly once per job.
	delivered map[int]int
}

func newFaultTransport(hook func(attempt int, workerURL string, req serve.ChunkRequest) error) *faultTransport {
	return &faultTransport{
		inner:     &httpTransport{client: &http.Client{}},
		hook:      hook,
		delivered: map[int]int{},
	}
}

func (t *faultTransport) RunChunk(ctx context.Context, workerURL string, req serve.ChunkRequest) (*serve.ChunkResponse, error) {
	t.mu.Lock()
	t.attempts++
	n := t.attempts
	t.mu.Unlock()
	if t.hook != nil {
		if err := t.hook(n, workerURL, req); err != nil {
			return nil, err
		}
	}
	resp, err := t.inner.RunChunk(ctx, workerURL, req)
	if err == nil {
		t.mu.Lock()
		for _, cp := range resp.Points {
			t.delivered[cp.Index]++
		}
		t.mu.Unlock()
	}
	return resp, err
}

func (t *faultTransport) attemptCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// deliveredOnce asserts every index in [0, total) was delivered exactly
// once by the transport — no duplicated and no lost points.
func (t *faultTransport) deliveredOnce(tt *testing.T, total int) {
	tt.Helper()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < total; i++ {
		if n := t.delivered[i]; n != 1 {
			tt.Fatalf("index %d delivered %d times", i, n)
		}
	}
	if len(t.delivered) != total {
		tt.Fatalf("%d distinct indices delivered, want %d", len(t.delivered), total)
	}
}

// faultReq is the grid every fault test sweeps: 12 points in 2 shape
// cohorts; with ChunkPoints 2 that is 6 width-aligned chunks — enough
// dispatches for failures to land mid-job.
var faultReq = serve.SweepRequest{
	Scenario: "didactic",
	Axes: []serve.Axis{
		{Name: "stages", Values: []int64{1, 2}},
		{Name: "seed", Values: []int64{3, 5, 7, 9, 11, 13}},
	},
	Params:  map[string]int64{"tokens": 30},
	Options: serve.SweepOptions{BatchWidth: 2},
}

// Dropped connections re-hash the chunk to a surviving worker: the job
// completes bit-identical to the single-process sweep with every point
// evaluated exactly once, even though the first two dispatch attempts
// never reach a worker and bench their targets.
func TestFaultTransportDropRetries(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt <= 2 {
			return errors.New("injected: connection dropped")
		}
		return nil
	})
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
}

// A worker answering 500 stays in rotation (it is alive, just
// unhealthy) while the chunk retries elsewhere; the job still completes
// with no duplicated or lost points.
func TestFaultWorker500Rehash(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt <= 2 {
			return &WorkerError{Status: 500, Code: "internal", Msg: "injected"}
		}
		return nil
	})
	c, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
	if alive := c.ring.alive(); alive != 3 {
		t.Fatalf("%d workers alive after 500s, want 3 (a 5xx must not bench the worker)", alive)
	}
}

// A delayed attempt hits the per-attempt chunk timeout: the slow worker
// is benched as transport-dead, the chunk re-hashes to a survivor, and
// the job completes.
func TestFaultDelayTimesOutAndRehashes(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		if attempt == 1 {
			time.Sleep(300 * time.Millisecond) // >> ChunkTimeout
		}
		return nil
	})
	c, ts := newCoord(t, Config{
		Workers: workers, ChunkPoints: 2, Transport: tr,
		ChunkTimeout: 50 * time.Millisecond,
		// Pin benched workers open: the real prober would revive the
		// worker (it is alive, only the injected attempt was slow) and
		// race the alive() assertion below.
		Prober: ProberFunc(func(context.Context, string) error {
			return errors.New("probing disabled")
		}),
	})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
	if alive := c.ring.alive(); alive != 2 {
		t.Fatalf("%d workers alive, want 2 (the timed-out worker benched)", alive)
	}
}

// killableFleet starts n real serving-layer workers behind a middleware
// that elects a victim — the first worker fleet-wide to receive a chunk
// — and tears every later chunk request to it at the TCP level: the
// handler hijacks the connection and closes it without answering,
// exactly what the coordinator sees when a worker process dies under
// load. The victim serves its first chunk normally, so the kill lands
// mid-job with results already merged from the dead worker.
func killableFleet(t *testing.T, n int) (urls []string, victimServed *atomic.Int64) {
	t.Helper()
	var victim atomic.Int64
	victim.Store(-1)
	victimServed = &atomic.Int64{}
	urls = make([]string, n)
	for i := range urls {
		s := serve.New(serve.Config{})
		idx := int64(i)
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/chunks") {
				if victim.CompareAndSwap(-1, idx) {
					victimServed.Add(1) // the victim's first chunk: serve it
				} else if victim.Load() == idx {
					victimServed.Add(1)
					conn, _, err := http.NewResponseController(w).Hijack()
					if err == nil {
						conn.Close()
					}
					return
				}
			}
			s.Handler().ServeHTTP(w, r)
		})
		ts := httptest.NewServer(h)
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		urls[i] = ts.URL
	}
	return urls, victimServed
}

// Killing a worker mid-job tears its in-flight chunks; the coordinator
// benches it, re-hashes the torn chunks to survivors, and the job
// completes bit-identical with every point evaluated exactly once —
// including the chunk the dead worker served before it died.
func TestFaultWorkerKilledMidChunk(t *testing.T) {
	workers, victimServed := killableFleet(t, 3)
	tr := newFaultTransport(nil)
	c, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr,
		// The victim only tears /v1/chunks; its /readyz still answers, so
		// the real prober would un-bench it and race the alive() check.
		Prober: ProberFunc(func(context.Context, string) error {
			return errors.New("probing disabled")
		}),
	})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
	// Each shape cohort spans 3 chunks and all of a cohort routes to one
	// worker, so the victim always sees at least a second request — the
	// one that tears.
	if n := victimServed.Load(); n < 2 {
		t.Fatalf("victim saw %d chunk requests, want at least 2 (serve one, tear one)", n)
	}
	if alive := c.ring.alive(); alive != 2 {
		t.Fatalf("%d workers alive, want 2 (the killed worker benched)", alive)
	}
}

// A degraded single-worker fleet still completes every job — the
// distributed mirror of the batch engine's scalar fallback: less
// parallelism, identical results.
func TestFaultSingleWorkerFleetCompletes(t *testing.T) {
	workers := newFleet(t, 1)
	tr := newFaultTransport(nil)
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	tr.deliveredOnce(t, res.Total)
}

// With every worker unreachable the job still settles: done reaches
// total and each point carries the fabric error — no hung jobs, no
// holes, mirroring the sweep engine's per-point failure semantics.
func TestFaultFleetExhaustedFailsPoints(t *testing.T) {
	workers := newFleet(t, 2)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		return errors.New("injected: fleet unreachable")
	})
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	if res.State != "done" {
		t.Fatalf("job settled as %q, want done with per-point errors", res.State)
	}
	if res.Done != res.Total {
		t.Fatalf("done %d != total %d", res.Done, res.Total)
	}
	if res.Stats == nil || res.Stats.Failed != res.Total {
		t.Fatalf("stats %+v, want all %d points failed", res.Stats, res.Total)
	}
	for i, p := range res.Points {
		if !strings.Contains(p.Error, "chunk undeliverable") {
			t.Fatalf("point %d error %q does not carry the fabric error", i, p.Error)
		}
	}
}

// A permanent (4xx) worker answer settles the chunk immediately — every
// worker validates identically, so retrying elsewhere is pointless.
func TestFaultPermanentErrorDoesNotRetry(t *testing.T) {
	workers := newFleet(t, 3)
	tr := newFaultTransport(func(attempt int, workerURL string, req serve.ChunkRequest) error {
		return &WorkerError{Status: 400, Code: "bad_request", Msg: "injected"}
	})
	_, ts := newCoord(t, Config{Workers: workers, ChunkPoints: 2, Transport: tr})

	job := submitSweep(t, ts.URL, faultReq)
	res := waitTerminal(t, ts.URL, job.ID)
	if res.Stats == nil || res.Stats.Failed != res.Total {
		t.Fatalf("stats %+v, want all %d points failed", res.Stats, res.Total)
	}
	// 6 chunks, one attempt each: a permanent answer must not burn the
	// retry budget.
	if n := tr.attemptCount(); n != 6 {
		t.Fatalf("%d attempts for 6 chunks, want exactly one each", n)
	}
}

// swapTransport delegates to a replaceable inner transport, so a test
// can run one phase against the real fleet and the next against a
// fault, without mutating the coordinator's config concurrently.
type swapTransport struct {
	mu    sync.Mutex
	inner Transport
}

func (t *swapTransport) set(inner Transport) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inner = inner
}

func (t *swapTransport) RunChunk(ctx context.Context, workerURL string, req serve.ChunkRequest) (*serve.ChunkResponse, error) {
	t.mu.Lock()
	inner := t.inner
	t.mu.Unlock()
	return inner.RunChunk(ctx, workerURL, req)
}

// gateTransport lets a fixed number of chunks through, then blocks
// every further dispatch until its context dies — the harness for
// killing a coordinator mid-job with a known amount of durable state.
type gateTransport struct {
	inner   Transport
	allowed atomic.Int64
	limit   int64
}

func (t *gateTransport) RunChunk(ctx context.Context, workerURL string, req serve.ChunkRequest) (*serve.ChunkResponse, error) {
	if t.allowed.Add(1) > t.limit {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return t.inner.RunChunk(ctx, workerURL, req)
}

// Killing the coordinator mid-job and restarting it over the same store
// resumes the job from the last persisted chunk: the resumed run
// re-dispatches only the missing chunks (persisted results replay, they
// are not re-evaluated), reaches done == total, and the merged result
// is bit-identical to the single-process sweep. A job that finished
// before the restart stays readable with its full results.
func TestCoordinatorRestartResumesFromStore(t *testing.T) {
	workers := newFleet(t, 3)
	storePath := t.TempDir() + "/jobs.ndjson"

	// Phase 0: a job that completes before the kill.
	sw := &swapTransport{inner: &httpTransport{client: &http.Client{}}}
	c1, ts1 := newCoord(t, Config{Workers: workers, ChunkPoints: 2, StorePath: storePath, Transport: sw})
	doneJob := submitSweep(t, ts1.URL, faultReq)
	waitTerminal(t, ts1.URL, doneJob.ID)

	// Phase 1: a second job whose dispatch freezes after 2 chunks.
	sw.set(&gateTransport{inner: &httpTransport{client: &http.Client{}}, limit: 2})
	frozen := submitSweep(t, ts1.URL, faultReq)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if res := getResult(t, ts1.URL, frozen.ID); res.Done >= 4 {
			break // 2 chunks × 2 points merged and persisted
		}
		if time.Now().After(deadline) {
			t.Fatal("frozen job never persisted its first chunks")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Kill the coordinator: blocked dispatches abort, the job stays
	// unsettled in the store.
	ts1.Close()
	c1.Close()

	// Phase 2: restart over the same store with a healthy transport.
	tr2 := newFaultTransport(nil)
	c2, err := New(Config{Workers: workers, ChunkPoints: 2, StorePath: storePath, Transport: tr2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})

	// The finished job survived the restart with full results.
	assertBitIdentical(t, getResult(t, ts2.URL, doneJob.ID), localSweep(t, faultReq))

	// The frozen job resumed and completed.
	res := waitTerminal(t, ts2.URL, frozen.ID)
	assertBitIdentical(t, res, localSweep(t, faultReq))
	uniqueIndexParams(t, res.Points)

	// Resume must not re-evaluate persisted chunks: the restarted
	// transport saw only the 8 unpersisted points, each exactly once.
	tr2.mu.Lock()
	redispatched := len(tr2.delivered)
	dup := false
	for _, n := range tr2.delivered {
		if n != 1 {
			dup = true
		}
	}
	tr2.mu.Unlock()
	if redispatched != 8 || dup {
		t.Fatalf("restart re-dispatched %d points (dup=%v), want exactly the 8 unpersisted ones", redispatched, dup)
	}
}

// Cancelling a job persists the terminal state: a restarted coordinator
// reports it cancelled instead of resurrecting the work.
func TestCancelledJobStaysCancelledAfterRestart(t *testing.T) {
	workers := newFleet(t, 2)
	storePath := t.TempDir() + "/jobs.ndjson"

	gate := &gateTransport{inner: &httpTransport{client: &http.Client{}}, limit: 0}
	c1, ts1 := newCoord(t, Config{Workers: workers, ChunkPoints: 2, StorePath: storePath, Transport: gate})
	job := submitSweep(t, ts1.URL, faultReq)

	cancelJob(t, ts1.URL, job.ID)
	res := waitTerminal(t, ts1.URL, job.ID)
	if res.State != "cancelled" {
		t.Fatalf("state %q, want cancelled", res.State)
	}
	ts1.Close()
	c1.Close()

	c2, err := New(Config{Workers: workers, ChunkPoints: 2, StorePath: storePath,
		Transport: newFaultTransport(nil)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	j, ok := c2.get(job.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID)
	}
	if snap := j.snapshot(); snap.State != "cancelled" {
		t.Fatalf("restarted state %q, want cancelled", snap.State)
	}
}
