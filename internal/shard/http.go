package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dyncomp/internal/serve"
)

// The coordinator speaks the exact wire dialect of the serving layer —
// same error envelope, same strict decoding — so a fleet client is a
// single-process client pointed at a different port. These helpers
// mirror internal/serve's unexported ones; the envelope types and codes
// are shared through the serve package.

const maxBodyBytes = 1 << 20

// decodeJSON strictly decodes a bounded request body into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *serve.RequestError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &serve.RequestError{Status: http.StatusRequestEntityTooLarge,
				Code: serve.CodeBodyTooLarge, Msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return &serve.RequestError{Status: http.StatusBadRequest,
			Code: serve.CodeBadJSON, Msg: fmt.Sprintf("decoding request: %v", err)}
	}
	if dec.More() {
		return &serve.RequestError{Status: http.StatusBadRequest,
			Code: serve.CodeBadJSON, Msg: "trailing data after JSON body"}
	}
	return nil
}

// writeJSON writes a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the serving layer's uniform error envelope.
func writeError(w http.ResponseWriter, rerr *serve.RequestError) {
	writeJSON(w, rerr.Status, serve.ErrorResponse{Err: serve.Error{
		Code:    rerr.Code,
		Message: rerr.Msg,
	}})
}

// terminalWire reports whether a wire state string is final.
func terminalWire(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

// handleSweepEvents serves GET /v1/sweeps/{id}/events as a server-sent
// event stream, with the single-process contract: an initial "state"
// snapshot, "progress" events carrying absolute done/total counts
// (strictly monotonic — chunk merges only ever advance the counter),
// and a final "state" event when the job settles, then EOF. The stream
// is driven by the job's change broadcast: every emission re-reads a
// consistent snapshot, so a slow consumer skips intermediate counts but
// can never observe them out of order.
func (c *Coordinator) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.get(r.PathValue("id"))
	if !ok {
		writeError(w, &serve.RequestError{Status: http.StatusNotFound,
			Code: serve.CodeJobNotFound, Msg: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	emit := func(name string, data any) bool {
		raw, err := json.Marshal(data)
		if err != nil {
			return false
		}
		// A per-write deadline bounds how long one stalled consumer can
		// pin this goroutine; errors are ignored because test recorders
		// do not implement the controller.
		if d := c.cfg.StreamWriteTimeout; d > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(d))
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, raw); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	lastState := ""
	lastDone := -1
	for {
		snap, changed := j.observe()
		if snap.State != lastState {
			if !emit("state", snap) {
				return
			}
			lastState = snap.State
		}
		if terminalWire(snap.State) {
			return
		}
		if snap.Done != lastDone {
			if !emit("progress", struct {
				Done  int `json:"done"`
				Total int `json:"total"`
			}{snap.Done, snap.Total}) {
				return
			}
			lastDone = snap.Done
		}
		select {
		case <-r.Context().Done():
			return
		case <-c.baseCtx.Done():
			// Coordinator shutdown: unsettled jobs will never change
			// again in this process; end the stream so the HTTP drain
			// does not wait for it.
			return
		case <-changed:
		}
	}
}

// ResultLine is one line of the GET /v1/sweeps/{id}/results NDJSON
// stream: either a point (Point set — one evaluated grid point, in
// arrival order) or the trailer (State set — the terminal state plus
// the fleet-level statistics), which is always the last line.
type ResultLine struct {
	Point *serve.ChunkPoint `json:"point,omitempty"`
	State string            `json:"state,omitempty"`
	Stats *serve.SweepStats `json:"stats,omitempty"`
}

// handleSweepResults serves GET /v1/sweeps/{id}/results as an NDJSON
// stream: one line per evaluated point in arrival order — streamed
// while the job runs, so a client consumes partial results long before
// the grid finishes — terminated by a trailer line carrying the
// terminal state and statistics. Connecting to a finished job replays
// every recorded point, which is how results of jobs completed before a
// coordinator restart are consumed.
func (c *Coordinator) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	j, ok := c.get(r.PathValue("id"))
	if !ok {
		writeError(w, &serve.RequestError{Status: http.StatusNotFound,
			Code: serve.CodeJobNotFound, Msg: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	streamed := 0
	for {
		points, state, changed := j.arrivedSince(streamed)
		if len(points) > 0 {
			// One deadline per drained batch: a consumer that stops
			// reading gets the connection torn down instead of pinning
			// this goroutine and the job's arrival buffer forever.
			if d := c.cfg.StreamWriteTimeout; d > 0 {
				_ = rc.SetWriteDeadline(time.Now().Add(d))
			}
		}
		for i := range points {
			if err := enc.Encode(ResultLine{Point: &points[i]}); err != nil {
				return
			}
		}
		streamed += len(points)
		if len(points) > 0 {
			if rc.Flush() != nil {
				return
			}
		}
		if terminalWire(state) {
			res := j.result()
			_ = enc.Encode(ResultLine{State: state, Stats: res.Stats})
			_ = rc.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-c.baseCtx.Done():
			return
		case <-changed:
		}
	}
}
