package shard

// Stalled-consumer tests: a client that connects to a streaming
// endpoint and never reads must not pin the handler goroutine forever —
// the per-write deadline tears the connection down and the handler
// returns.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dyncomp/internal/serve"
)

// stalledStream opens a raw TCP connection to the server, sends a GET
// for path, and never reads the response — the rudest consumer there
// is. It returns a cleanup that closes the connection.
func stalledStream(t *testing.T, tsURL, path string) func() {
	t.Helper()
	addr := strings.TrimPrefix(tsURL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nAccept: */*\r\n\r\n", path, addr)
	return func() { conn.Close() }
}

// waitHandlerDone fails the test unless done closes within the window.
func waitHandlerDone(t *testing.T, done <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("%s handler still pinned by a stalled consumer after 15s", what)
	}
}

// streamCoord builds a coordinator with a tight stream write deadline
// and a handler wrapper that closes done when a request to markerPath
// finishes.
func streamCoord(t *testing.T, markerPath string) (*Coordinator, *httptest.Server, <-chan struct{}) {
	t.Helper()
	c, err := New(Config{Workers: []string{"http://127.0.0.1:1"},
		StreamWriteTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var once atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Handler().ServeHTTP(w, r)
		if strings.Contains(r.URL.Path, markerPath) && once.CompareAndSwap(false, true) {
			close(done)
		}
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts, done
}

// A never-reading NDJSON /results consumer of a job with megabytes of
// buffered points is disconnected by the write deadline.
func TestResultsStreamWriteDeadline(t *testing.T) {
	c, ts, done := streamCoord(t, "/results")

	// Fabricate a running job with ~8MB of arrived points: replay blocks
	// on the socket once the kernel buffers fill.
	j := &job{id: "job-900001", state: jobRunning, changed: make(chan struct{})}
	padding := strings.Repeat("x", 4096)
	for i := 0; i < 2000; i++ {
		j.arrived = append(j.arrived, serve.ChunkPoint{
			Index:      i,
			SweepPoint: serve.SweepPoint{Error: padding},
		})
	}
	c.register(j)

	stop := stalledStream(t, ts.URL, "/v1/sweeps/job-900001/results")
	defer stop()
	waitHandlerDone(t, done, "NDJSON results")
}

// A never-reading SSE /events consumer of a chatty job is disconnected
// by the write deadline instead of pinning the emitter.
func TestEventsStreamWriteDeadline(t *testing.T) {
	c, ts, done := streamCoord(t, "/events")

	// A snapshot bigger than any socket buffer: the initial state event
	// cannot complete against a non-reading consumer, so the write
	// deadline is the only way out.
	j := &job{id: "job-900002", state: jobRunning, total: 1,
		scenario: strings.Repeat("x", 32<<20),
		changed:  make(chan struct{})}
	c.register(j)

	stop := stalledStream(t, ts.URL, "/v1/sweeps/job-900002/events")
	defer stop()
	waitHandlerDone(t, done, "SSE events")
}
