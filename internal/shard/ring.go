package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ring is a consistent-hash ring over the worker fleet, keyed by the
// structural shape of the points a chunk carries. Same shape, same
// worker: the worker's structure-keyed derivation cache stays hot and
// its batched lanes stay full across every chunk of a cohort. Virtual
// nodes smooth the assignment so a small fleet still splits a diverse
// shape population roughly evenly, and removing one worker only moves
// the shapes that hashed to it.
type ring struct {
	mu      sync.RWMutex
	members map[string]*member
	vnodes  []vnode // sorted by hash
}

// member is one registered worker. A down member stays on the ring —
// its vnodes are skipped by lookup — so re-registering it restores the
// original shape assignment instead of reshuffling the fleet.
type member struct {
	url  string
	down bool
}

type vnode struct {
	hash uint64
	url  string
}

// vnodesPerMember trades lookup-table size against assignment
// smoothness; 64 keeps the skew of a 3-worker fleet under a few
// percent.
const vnodesPerMember = 64

func newRing(workers []string) *ring {
	r := &ring{members: map[string]*member{}}
	for _, w := range workers {
		r.add(w)
	}
	return r
}

// add registers a worker (idempotent) or revives a down one.
func (r *ring) add(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.down = false
		return
	}
	r.members[url] = &member{url: url}
	for i := 0; i < vnodesPerMember; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: fnv64(fmt.Sprintf("%s#%d", url, i)), url: url})
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
}

// markDown takes a worker out of rotation without forgetting it.
func (r *ring) markDown(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.down = true
	}
}

// lookup returns the worker owning key: the first alive member at or
// clockwise after the key's hash, skipping down members and everything
// in exclude (the workers a chunk already failed on). ok is false when
// the fleet is exhausted.
func (r *ring) lookup(key string, exclude map[string]bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return "", false
	}
	h := fnv64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := map[string]bool{}
	for i := 0; i < len(r.vnodes); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.url] {
			continue
		}
		seen[vn.url] = true
		if exclude[vn.url] || r.members[vn.url].down {
			continue
		}
		return vn.url, true
	}
	return "", false
}

// WorkerStatus is the wire form of one fleet member, served by
// GET /v1/workers.
type WorkerStatus struct {
	URL  string `json:"url"`
	Down bool   `json:"down,omitempty"`
}

// workers lists the fleet, sorted by URL for stable output.
func (r *ring) workers() []WorkerStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]WorkerStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, WorkerStatus{URL: m.url, Down: m.down})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// alive counts members in rotation.
func (r *ring) alive() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, m := range r.members {
		if !m.down {
			n++
		}
	}
	return n
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
