package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ring is a consistent-hash ring over the worker fleet, keyed by the
// structural shape of the points a chunk carries. Same shape, same
// worker: the worker's structure-keyed derivation cache stays hot and
// its batched lanes stay full across every chunk of a cohort. Virtual
// nodes smooth the assignment so a small fleet still splits a diverse
// shape population roughly evenly, and removing one worker only moves
// the shapes that hashed to it.
type ring struct {
	mu      sync.RWMutex
	members map[string]*member
	vnodes  []vnode // sorted by hash
}

// member is one registered worker. A benched (non-closed) member stays
// on the ring — its vnodes are skipped by lookup — so recovery restores
// the original shape assignment instead of reshuffling the fleet.
type member struct {
	url     string
	state   breakerState
	fails   int  // consecutive dispatch failures while closed
	probing bool // a probe goroutine owns recovery for this member
}

type vnode struct {
	hash uint64
	url  string
}

// vnodesPerMember trades lookup-table size against assignment
// smoothness; 64 keeps the skew of a 3-worker fleet under a few
// percent.
const vnodesPerMember = 64

func newRing(workers []string) *ring {
	r := &ring{members: map[string]*member{}}
	for _, w := range workers {
		r.add(w)
	}
	return r
}

// add registers a worker (idempotent) or revives a benched one:
// re-registration closes the breaker immediately, no probe needed —
// the worker itself is asserting readiness.
func (r *ring) add(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.state = breakerClosed
		m.fails = 0
		return
	}
	r.members[url] = &member{url: url}
	for i := 0; i < vnodesPerMember; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: fnv64(fmt.Sprintf("%s#%d", url, i)), url: url})
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
}

// recordFailure counts one transport-level dispatch failure against a
// worker. When the consecutive count reaches threshold on a closed
// breaker the breaker opens; opened is true only on that transition and
// only when no probe goroutine already owns recovery — the caller then
// starts one.
func (r *ring) recordFailure(url string, threshold int) (opened bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[url]
	if !ok {
		return false
	}
	m.fails++
	if m.state == breakerClosed && m.fails >= threshold {
		m.state = breakerOpen
		if !m.probing {
			m.probing = true
			return true
		}
	}
	return false
}

// recordSuccess resets the consecutive-failure count after a delivered
// chunk, so sporadic failures spread over hours never sum to an open
// breaker.
func (r *ring) recordSuccess(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok && m.state == breakerClosed {
		m.fails = 0
	}
}

// beginProbe moves an open breaker to half-open for one probe attempt.
// false means the member closed by other means (re-registration) or
// left the ring; the probe goroutine should exit.
func (r *ring) beginProbe(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[url]
	if !ok || m.state == breakerClosed {
		return false
	}
	m.state = breakerHalfOpen
	return true
}

// probeFailed re-opens a half-open breaker after a failed probe.
func (r *ring) probeFailed(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok && m.state == breakerHalfOpen {
		m.state = breakerOpen
	}
}

// probeSucceeded closes the breaker: the worker answered its readiness
// probe and rejoins rotation.
func (r *ring) probeSucceeded(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.state = breakerClosed
		m.fails = 0
	}
}

// probeDone releases the single-prober guard when a probe goroutine
// exits, whatever the outcome.
func (r *ring) probeDone(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.probing = false
	}
}

// lookup returns the worker owning key: the first closed-breaker member
// at or clockwise after the key's hash, skipping benched members and
// everything in exclude (the workers a chunk already failed on). ok is
// false when the fleet is exhausted.
func (r *ring) lookup(key string, exclude map[string]bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return "", false
	}
	h := fnv64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := map[string]bool{}
	for i := 0; i < len(r.vnodes); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.url] {
			continue
		}
		seen[vn.url] = true
		if exclude[vn.url] || r.members[vn.url].state != breakerClosed {
			continue
		}
		return vn.url, true
	}
	return "", false
}

// WorkerStatus is the wire form of one fleet member, served by
// GET /v1/workers.
type WorkerStatus struct {
	URL string `json:"url"`
	// Down is kept for wire compatibility: true whenever the breaker is
	// not closed.
	Down bool `json:"down,omitempty"`
	// Breaker is the breaker state: closed, open or half-open.
	Breaker string `json:"breaker"`
}

// workers lists the fleet, sorted by URL for stable output.
func (r *ring) workers() []WorkerStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]WorkerStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, WorkerStatus{
			URL:     m.url,
			Down:    m.state != breakerClosed,
			Breaker: m.state.String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// alive counts members in rotation (breaker closed).
func (r *ring) alive() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, m := range r.members {
		if m.state == breakerClosed {
			n++
		}
	}
	return n
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
