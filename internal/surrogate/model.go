package surrogate

import (
	"fmt"
	"math"
)

// This file is the analytical surrogate itself: a ridge-regularized
// polynomial regression over the normalized parameter axes, with
// leave-one-out (LOO) cross-validation error computed in closed form
// from the hat-matrix diagonal. The model is deliberately small and
// fully deterministic — no stochastic optimizer, no random restarts —
// so a sampled sweep is exactly reproducible: same grid, same
// tolerance, same budget ⇒ same simulated subset, same predictions.
//
// The basis adapts to how much data the sampling loop has collected so
// far: constant → linear (1, zᵢ) → quadratic with interactions
// (1, zᵢ, zᵢzⱼ, zᵢ²), where zᵢ is the axis value min-max normalized to
// [-1, 1]. Quadratic-with-interactions captures the metric surfaces the
// (max,+) evolution produces over smooth parameter axes (latency is
// piecewise near-linear in periods and token counts, with curvature at
// regime boundaries) while keeping the design matrix tiny.

// ridge is the Tikhonov regularization added to the normal equations'
// diagonal. Axes are normalized to [-1, 1], so a single scale fits all
// grids; the value is small enough not to bias well-conditioned fits
// and large enough to keep near-singular seed sets solvable.
const ridge = 1e-6

// basisKind enumerates the model complexities the fit can fall back
// through when the simulated sample is still small.
type basisKind int

const (
	basisConstant basisKind = iota
	basisLinear
	basisQuadratic
)

// normalizer maps raw axis values into [-1, 1] per dimension.
// Degenerate axes (a single distinct value) are dropped from the
// feature space entirely — they carry no information.
type normalizer struct {
	lo, span []float64 // per kept dimension
	keep     []int     // indices of non-degenerate axes
}

func newNormalizer(axes [][]int64) *normalizer {
	nz := &normalizer{}
	for d, vals := range axes {
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			continue
		}
		nz.keep = append(nz.keep, d)
		nz.lo = append(nz.lo, float64(lo))
		nz.span = append(nz.span, float64(hi-lo))
	}
	return nz
}

// dims is the number of informative axes.
func (nz *normalizer) dims() int { return len(nz.keep) }

// z normalizes one grid point's axis values into [-1, 1] per kept
// dimension.
func (nz *normalizer) z(values []int64) []float64 {
	out := make([]float64, len(nz.keep))
	for i, d := range nz.keep {
		out[i] = 2*(float64(values[d])-nz.lo[i])/nz.span[i] - 1
	}
	return out
}

// features builds the basis expansion of a normalized point.
func features(z []float64, kind basisKind) []float64 {
	d := len(z)
	switch kind {
	case basisConstant:
		return []float64{1}
	case basisLinear:
		f := make([]float64, 1+d)
		f[0] = 1
		copy(f[1:], z)
		return f
	default:
		f := make([]float64, 0, 1+d+d*(d+1)/2)
		f = append(f, 1)
		f = append(f, z...)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				f = append(f, z[i]*z[j])
			}
		}
		return f
	}
}

// basisTerms is the feature count of a basis over d dimensions.
func basisTerms(d int, kind basisKind) int {
	switch kind {
	case basisConstant:
		return 1
	case basisLinear:
		return 1 + d
	default:
		return 1 + d + d*(d+1)/2
	}
}

// basisFor picks the richest basis the sample size supports: at least
// two observations per coefficient, so the LOO estimate has slack to
// mean something.
func basisFor(d, n int) basisKind {
	if n >= 2*basisTerms(d, basisQuadratic) {
		return basisQuadratic
	}
	if n >= 2*basisTerms(d, basisLinear) {
		return basisLinear
	}
	return basisConstant
}

// fit is one metric's trained surrogate.
type fit struct {
	kind  basisKind
	coef  []float64 // ridge least-squares coefficients
	inv   [][]float64
	sigma float64 // RMS of the LOO residuals
	loo   float64 // max |LOO residual| / scale over the training set
	scale float64 // relative-error denominator: max(|y|) over training, floored at 1
}

// fitMetric trains one metric's surrogate on the simulated points:
// rows of normalized features X and observations y. It solves the
// ridge normal equations A = XᵀX + λI, keeps A⁻¹ for prediction
// variance, and derives the leave-one-out residuals in closed form:
// e⁽ⁱ⁾ = rᵢ / (1 - hᵢᵢ) with hᵢᵢ = xᵢᵀ A⁻¹ xᵢ — the exact LOO error of
// the ridge fit without refitting n times.
func fitMetric(X [][]float64, y []float64) (*fit, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("surrogate: no observations")
	}
	m := len(X[0])
	// Normal equations.
	A := make([][]float64, m)
	b := make([]float64, m)
	for i := range A {
		A[i] = make([]float64, m)
		A[i][i] = ridge
	}
	for r := 0; r < n; r++ {
		x := X[r]
		for i := 0; i < m; i++ {
			b[i] += x[i] * y[r]
			for j := 0; j < m; j++ {
				A[i][j] += x[i] * x[j]
			}
		}
	}
	inv, err := invert(A)
	if err != nil {
		return nil, err
	}
	coef := matVec(inv, b)

	f := &fit{coef: coef, inv: inv, scale: 1}
	for _, v := range y {
		if a := math.Abs(v); a > f.scale {
			f.scale = a
		}
	}
	// Closed-form LOO residuals via the hat diagonal.
	var sse float64
	for r := 0; r < n; r++ {
		x := X[r]
		pred := dot(coef, x)
		h := quadForm(inv, x)
		if h > 1-1e-9 {
			h = 1 - 1e-9
		}
		e := (y[r] - pred) / (1 - h)
		sse += e * e
		if rel := math.Abs(e) / f.scale; rel > f.loo {
			f.loo = rel
		}
	}
	f.sigma = math.Sqrt(sse / float64(n))
	return f, nil
}

// predBoundFactor widens the per-point uncertainty into the reported
// bound. The LOO sigma estimates the typical held-out error; the factor
// covers its tail so the declared bound holds across the grid, not just
// on average.
const predBoundFactor = 3

// predict returns the metric prediction at features x and the relative
// error bound: the LOO noise scaled by the ridge prediction variance
// factor sqrt(1 + xᵀA⁻¹x), widened by predBoundFactor, and never
// tighter than the worst LOO residual itself.
func (f *fit) predict(x []float64) (value, bound float64) {
	value = dot(f.coef, x)
	s := f.sigma * math.Sqrt(1+quadForm(f.inv, x)) * predBoundFactor / f.scale
	if s < f.loo {
		s = f.loo
	}
	return value, s
}

// invert computes the inverse of a small symmetric positive-definite
// matrix by Gauss-Jordan elimination with partial pivoting.
func invert(A [][]float64) ([][]float64, error) {
	m := len(A)
	// Augment [A | I] in a working copy.
	w := make([][]float64, m)
	for i := range w {
		w[i] = make([]float64, 2*m)
		copy(w[i], A[i])
		w[i][m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < m; r++ {
			if math.Abs(w[r][col]) > math.Abs(w[p][col]) {
				p = r
			}
		}
		if math.Abs(w[p][col]) < 1e-12 {
			return nil, fmt.Errorf("surrogate: singular normal equations (column %d)", col)
		}
		w[col], w[p] = w[p], w[col]
		piv := w[col][col]
		for j := 0; j < 2*m; j++ {
			w[col][j] /= piv
		}
		for r := 0; r < m; r++ {
			if r == col || w[r][col] == 0 {
				continue
			}
			f := w[r][col]
			for j := 0; j < 2*m; j++ {
				w[r][j] -= f * w[col][j]
			}
		}
	}
	inv := make([][]float64, m)
	for i := range inv {
		inv[i] = w[i][m:]
	}
	return inv, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func matVec(A [][]float64, v []float64) []float64 {
	out := make([]float64, len(A))
	for i := range A {
		out[i] = dot(A[i], v)
	}
	return out
}

// quadForm computes xᵀAx for symmetric A.
func quadForm(A [][]float64, x []float64) float64 {
	s := 0.0
	for i := range A {
		s += x[i] * dot(A[i], x)
	}
	return s
}
