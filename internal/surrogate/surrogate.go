// Package surrogate is the active-sampling sweep driver: instead of
// simulating every point of a design-space grid, it evaluates a seed
// subset exactly (through the ordinary sweep engine, batched shape
// cohorts included), fits an incrementally updated analytical surrogate
// per metric over the parameter axes (model.go), and keeps simulating
// the highest-uncertainty points until the cross-validated error bound
// drops below the user's tolerance — every remaining point is then
// *predicted* by the surrogate and flagged as such, with a per-point
// error bound. The paper's accuracy-per-CPU-second argument, lifted one
// level: the (max,+) model already replaces event-by-event simulation
// inside a run; the surrogate replaces whole runs across the grid
// wherever the model already knows the answer.
//
// The driver registers itself with the sweep engine in init()
// (sweep.RegisterSampler), following the executor-registry idiom:
// importing this package (directly or blank) makes
// sweep.Options.Sample work.
//
// Gated metrics and error semantics: the surrogate fits and gates the
// end-to-end latency (FinalTimeNs) and the cycle mean (FinalTimeNs per
// iteration); a third, ungated fit predicts the iteration count to fill
// the result struct. All errors — the LOO cross-validation error, the
// per-point bound (PointResult.PredBound) and the verified observed
// error (PredObserved, Stats.MaxPredError) — are relative to the
// metric's observed magnitude over the simulated training set (floored
// at 1), so one tolerance spans metrics of different units. Predicted
// points report zero Activations/Events/Wall: those describe
// simulation work, and no simulation happened — that is the point.
//
// Everything is deterministic: the seed set, the uncertainty argmax
// (ties break on grid index) and the regression itself involve no
// randomness, so a sampled sweep is exactly reproducible and
// Sample.Tolerance = 0 degenerates to the exhaustive sweep bit-exactly
// (the sweep engine never calls this driver then).
package surrogate

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"dyncomp/internal/derive"
	"dyncomp/internal/sweep"
)

func init() { sweep.RegisterSampler(Run) }

// refineBatch is how many highest-uncertainty points one refinement
// round simulates: enough to amortize the batched cohort path, small
// enough not to overshoot the tolerance by much.
const refineBatch = 8

// metricFinal and metricCycle index the gated fits; metricIters is the
// ungated iteration-count fit.
const (
	metricFinal = iota
	metricCycle
	metricIters
	numMetrics
)

// Run is the sampling driver behind sweep.Options.Sample; the sweep
// engine calls it via the registered hook, so its contract mirrors
// sweep.RunContext: a full grid result in row-major order, ctx.Err()
// alongside the partial result on cancellation, with Progress counting
// every grid point exactly once (simulated points as their rounds
// finish, predicted points coalesced; Verify re-simulations never
// count).
func Run(ctx context.Context, axes []sweep.Axis, gen sweep.Generator, opts sweep.Options) (*sweep.Result, error) {
	pts, err := sweep.Grid(axes)
	if err != nil {
		return nil, err
	}
	total := len(pts)
	start := time.Now()

	cache := opts.Cache
	if cache == nil {
		cache = derive.NewCache()
	}
	tap := &progressTap{total: total, fn: opts.Progress}

	inner := opts
	inner.Sample = sweep.SampleOptions{}
	inner.Cache = cache
	inner.Progress = nil // each simulate round installs a fresh delta tracker

	s := &sampler{
		ctx:     ctx,
		axes:    axes,
		gen:     gen,
		opts:    opts,
		inner:   inner,
		pts:     pts,
		nz:      newNormalizer(axisValues(axes)),
		results: make([]sweep.PointResult, total),
		state:   make([]byte, total),
		tap:     tap,
	}
	s.feats = make([][]float64, total)

	res := s.run()
	res.Stats = sweep.Summarize(res.Points, cache, time.Since(start))
	res.Stats.Batches = s.batches
	res.Stats.BatchedPoints = s.batchedPoints
	if s.batches > 0 && opts.BatchWidth > 0 {
		res.Stats.BatchOccupancy = float64(s.batchedPoints) / float64(s.batches*opts.BatchWidth)
	}
	res.Stats.SimulatedPoints = s.simulated
	res.Stats.PredictedPoints = s.predicted
	res.Stats.MaxPredError = s.maxPredError
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// point states.
const (
	stateNone      = byte(iota) // not yet resolved
	stateSimulated              // evaluated exactly (possibly failed)
	statePredicted              // filled in by the surrogate
)

type sampler struct {
	ctx   context.Context
	axes  []sweep.Axis
	gen   sweep.Generator
	opts  sweep.Options
	inner sweep.Options
	pts   []sweep.Point
	nz    *normalizer
	tap   *progressTap

	results []sweep.PointResult
	state   []byte
	feats   [][]float64 // memoized quadratic features per point

	// predVals keeps each predicted point's raw fit predictions per
	// metric, for the Verify comparison.
	predVals map[int][]float64

	simulated, predicted   int
	batches, batchedPoints int
	maxPredError           float64
}

func (s *sampler) run() *sweep.Result {
	res := &sweep.Result{Points: s.results}

	// Seed: grid corners, the center, and an even stride across the
	// row-major order — exact evaluations the first fit trains on.
	budget := s.opts.Sample.Budget
	seed := seedIndices(len(s.pts), s.nz.dims(), budget)
	s.simulate(seed)

	// Refine: keep simulating the highest-uncertainty points until the
	// cross-validated error and every remaining point's bound clear the
	// tolerance, the budget runs out, or the grid is exhausted.
	tol := s.opts.Sample.Tolerance
	for s.ctx.Err() == nil {
		fits := s.fit()
		if fits == nil {
			// Not enough successful simulations to train on: evaluate
			// the rest exactly — never hand out unfounded predictions.
			s.simulate(s.unresolved())
			break
		}
		worst, converged := s.assess(fits, tol)
		if converged {
			s.predict(fits)
			break
		}
		if len(worst) == 0 {
			break // everything simulated exactly
		}
		if budget > 0 && s.simulated >= budget {
			// Budget exhausted before tolerance: predict the rest with
			// the honest (too-large) bounds the model reports.
			s.predict(fits)
			break
		}
		n := refineBatch
		if budget > 0 && budget-s.simulated < n {
			n = budget - s.simulated
		}
		if n > len(worst) {
			n = len(worst)
		}
		s.simulate(worst[:n])
	}

	// A cancelled run still resolves — and counts — every grid point.
	if err := s.ctx.Err(); err != nil {
		left := s.unresolved()
		for _, i := range left {
			s.results[i] = sweep.PointResult{Point: s.pts[i], Err: err}
		}
		s.tap.add(len(left))
		return res
	}

	if s.opts.Sample.Verify {
		s.verify()
	}
	return res
}

// simulate evaluates the given grid indices exactly through the inner
// sweep engine (worker pool, shape cohorts, batching — all of it) and
// folds the results into the grid.
func (s *sampler) simulate(indices []int) {
	if len(indices) == 0 {
		return
	}
	round := s.inner
	round.Progress = s.tap.inner()
	r, err := sweep.RunIndicesContext(s.ctx, s.axes, indices, s.gen, round)
	if err != nil && r == nil {
		// Grid/selection errors cannot happen for indices we generated;
		// treat a wholesale failure like a cancelled round.
		for _, i := range indices {
			s.results[i] = sweep.PointResult{Point: s.pts[i], Err: err}
			s.state[i] = stateSimulated
			s.simulated++
		}
		s.tap.add(len(indices))
		return
	}
	for _, pr := range r.Points {
		pr.Source = sweep.SourceSimulated
		s.results[pr.Point.Index] = pr
		s.state[pr.Point.Index] = stateSimulated
		s.simulated++
	}
	s.batches += r.Stats.Batches
	s.batchedPoints += r.Stats.BatchedPoints
}

// fit trains the per-metric surrogates on every successful simulated
// point. It returns nil while the sample is too small (or too failed)
// for the leave-one-out estimate to mean anything.
func (s *sampler) fit() []*fit {
	var X [][]float64
	var ys [numMetrics][]float64
	cycleOK := true
	for i, st := range s.state {
		if st != stateSimulated || s.results[i].Err != nil {
			continue
		}
		run := s.results[i].Run
		if run.Iterations <= 0 {
			cycleOK = false
		}
	}
	for i, st := range s.state {
		if st != stateSimulated || s.results[i].Err != nil {
			continue
		}
		run := s.results[i].Run
		X = append(X, s.featuresOf(i, basisQuadratic))
		ys[metricFinal] = append(ys[metricFinal], float64(run.FinalTimeNs))
		if cycleOK {
			ys[metricCycle] = append(ys[metricCycle], float64(run.FinalTimeNs)/float64(run.Iterations))
		}
		ys[metricIters] = append(ys[metricIters], float64(run.Iterations))
	}
	kind := basisFor(s.nz.dims(), len(X))
	terms := basisTerms(s.nz.dims(), kind)
	if len(X) < terms+2 || len(X) < 4 {
		return nil
	}
	if kind != basisQuadratic {
		for r := range X {
			X[r] = X[r][:terms] // quadratic features prefix-contain the simpler bases
		}
	}
	fits := make([]*fit, numMetrics)
	for m := range fits {
		if m == metricCycle && !cycleOK {
			continue
		}
		f, err := fitMetric(X, ys[m])
		if err != nil {
			return nil
		}
		f.kind = kind
		fits[m] = f
	}
	return fits
}

// featuresOf memoizes the full quadratic feature vector of a point;
// simpler bases slice its prefix (constant, then linear terms, then
// the quadratic tail — features() lays them out in exactly that order).
func (s *sampler) featuresOf(i int, kind basisKind) []float64 {
	if s.feats[i] == nil {
		s.feats[i] = features(s.nz.z(s.pts[i].Values), basisQuadratic)
	}
	return s.feats[i][:basisTerms(s.nz.dims(), kind)]
}

// assess computes every unresolved point's error bound under the
// current fits and reports whether the sweep has converged: the gated
// fits' cross-validated error and every remaining bound within
// tolerance. The returned indices are the unresolved points sorted by
// descending bound (ties on ascending index) — the refinement order.
func (s *sampler) assess(fits []*fit, tol float64) (worst []int, converged bool) {
	type scored struct {
		idx   int
		bound float64
	}
	var un []scored
	maxBound := 0.0
	for i, st := range s.state {
		if st != stateNone {
			continue
		}
		b := 0.0
		for m, f := range fits {
			if f == nil || m == metricIters {
				continue
			}
			x := s.featuresOf(i, f.kind)
			if _, fb := f.predict(x); fb > b {
				b = fb
			}
		}
		if b > maxBound {
			maxBound = b
		}
		un = append(un, scored{i, b})
	}
	sort.Slice(un, func(a, b int) bool {
		if un[a].bound != un[b].bound {
			return un[a].bound > un[b].bound
		}
		return un[a].idx < un[b].idx
	})
	worst = make([]int, len(un))
	for i, sc := range un {
		worst[i] = sc.idx
	}
	cv := 0.0
	for m, f := range fits {
		if f == nil || m == metricIters {
			continue
		}
		if f.loo > cv {
			cv = f.loo
		}
	}
	return worst, cv <= tol && maxBound <= tol
}

// predict fills every unresolved point from the fits, flags it, and
// counts the whole batch as one coalesced progress advance.
func (s *sampler) predict(fits []*fit) {
	s.predVals = map[int][]float64{}
	n := 0
	for i, st := range s.state {
		if st != stateNone {
			continue
		}
		vals := make([]float64, numMetrics)
		bound := 0.0
		for m, f := range fits {
			if f == nil {
				continue
			}
			x := s.featuresOf(i, f.kind)
			v, b := f.predict(x)
			vals[m] = v
			if m != metricIters && b > bound {
				bound = b
			}
		}
		iters := int(math.Round(vals[metricIters]))
		if iters < 0 {
			iters = 0
		}
		ft := int64(math.Round(vals[metricFinal]))
		if ft < 0 {
			ft = 0
		}
		s.results[i] = sweep.PointResult{
			Point:     s.pts[i],
			Run:       sweep.PointStats{FinalTimeNs: ft, Iterations: iters},
			Source:    sweep.SourcePredicted,
			PredBound: bound,
		}
		s.state[i] = statePredicted
		s.predVals[i] = vals
		if bound > s.maxPredError {
			s.maxPredError = bound
		}
		s.predicted++
		n++
	}
	s.tap.add(n)
}

// verify re-simulates every predicted point exactly, replaces the
// predicted metrics with the exact results (keeping the predicted
// flag and bound) and reports the maximum observed relative error.
// Verify runs never count toward progress — the grid was already fully
// accounted — and a cancellation mid-verify leaves the remaining
// points with their predictions intact.
func (s *sampler) verify() {
	var indices []int
	for i, st := range s.state {
		if st == statePredicted {
			indices = append(indices, i)
		}
	}
	if len(indices) == 0 {
		s.maxPredError = 0
		return
	}
	vopts := s.inner
	vopts.Progress = nil
	r, err := sweep.RunIndicesContext(s.ctx, s.axes, indices, s.gen, vopts)
	if err != nil && r == nil {
		return
	}
	s.maxPredError = 0
	for _, pr := range r.Points {
		i := pr.Point.Index
		if pr.Err != nil {
			continue // keep the prediction; nothing exact to report
		}
		obs := observedError(s.predVals[i], pr.Run)
		pred := s.results[i]
		pr.Source = sweep.SourcePredicted
		pr.PredBound = pred.PredBound
		pr.PredObserved = obs
		s.results[i] = pr
		if obs > s.maxPredError {
			s.maxPredError = obs
		}
	}
	s.batches += r.Stats.Batches
	s.batchedPoints += r.Stats.BatchedPoints
}

// observedError is the maximum relative error of the gated predictions
// against an exact run, with the same relative-to-magnitude semantics
// as the fit bounds (denominator floored at 1).
func observedError(vals []float64, exact sweep.PointStats) float64 {
	rel := func(pred, got float64) float64 {
		den := math.Abs(got)
		if den < 1 {
			den = 1
		}
		return math.Abs(pred-got) / den
	}
	e := rel(vals[metricFinal], float64(exact.FinalTimeNs))
	if exact.Iterations > 0 && vals[metricCycle] != 0 {
		if c := rel(vals[metricCycle], float64(exact.FinalTimeNs)/float64(exact.Iterations)); c > e {
			e = c
		}
	}
	return e
}

// unresolved lists the grid indices not yet simulated or predicted.
func (s *sampler) unresolved() []int {
	var out []int
	for i, st := range s.state {
		if st == stateNone {
			out = append(out, i)
		}
	}
	return out
}

// seedIndices picks the deterministic seed set: every grid corner (all
// combinations of each axis's first and last value, up to 5 axes), the
// center point, and an even stride over the row-major order until the
// set is large enough to train the quadratic basis with headroom.
func seedIndices(total, dims, budget int) []int {
	target := 2 * basisTerms(dims, basisQuadratic)
	if target < 4 {
		target = 4
	}
	if target > total {
		target = total
	}
	if budget > 0 && target > budget {
		target = budget
	}
	seen := make(map[int]bool, target)
	var out []int
	add := func(i int) {
		if i >= 0 && i < total && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	add(0)
	add(total - 1)
	add(total / 2)
	for stride := 2; len(out) < target; stride *= 2 {
		for j := 1; j < stride && len(out) < target; j += 2 {
			add(j * (total - 1) / stride)
		}
		if stride > 2*total {
			break
		}
	}
	sort.Ints(out)
	if len(out) > target {
		out = out[:target]
	}
	return out
}

// axisValues projects the axes' value lists for the normalizer.
func axisValues(axes []sweep.Axis) [][]int64 {
	out := make([][]int64, len(axes))
	for i, ax := range axes {
		out[i] = ax.Values
	}
	return out
}

// progressTap serializes and re-bases progress across the driver's
// inner sweep rounds: each round reports its own (done, total); the tap
// translates those into deltas against the full grid and keeps the
// delivered sequence strictly monotonic under one lock, exactly like
// the sweep engine's own coalesced reporting.
type progressTap struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

func (p *progressTap) add(n int) {
	if n <= 0 || p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done += n
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// inner returns the Progress callback for one inner sweep round (a
// fresh delta tracker per call), or nil when nobody is listening.
func (p *progressTap) inner() func(done, total int) {
	if p.fn == nil {
		return nil
	}
	last := 0
	var mu sync.Mutex
	return func(done, total int) {
		mu.Lock()
		d := done - last
		last = done
		mu.Unlock()
		p.add(d)
	}
}
