package surrogate

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"dyncomp/internal/model"
	"dyncomp/internal/sweep"
	"dyncomp/internal/zoo"
)

// --- model.go: the regression layer in isolation ---

// A noiseless quadratic surface must be recovered essentially exactly:
// near-zero LOO error and near-zero prediction error off the training
// set.
func TestFitRecoversQuadratic(t *testing.T) {
	f := func(x, y float64) float64 { return 3 + 2*x - y + 0.5*x*x + x*y }
	var X [][]float64
	var ys []float64
	grid := []float64{-1, -0.5, 0, 0.5, 1}
	for _, x := range grid {
		for _, y := range grid {
			X = append(X, features([]float64{x, y}, basisQuadratic))
			ys = append(ys, f(x, y))
		}
	}
	ft, err := fitMetric(X, ys)
	if err != nil {
		t.Fatal(err)
	}
	if ft.loo > 1e-6 {
		t.Fatalf("LOO error %g on a noiseless quadratic", ft.loo)
	}
	v, b := ft.predict(features([]float64{0.3, -0.7}, basisQuadratic))
	if want := f(0.3, -0.7); math.Abs(v-want) > 1e-6 {
		t.Fatalf("predict = %g, want %g", v, want)
	}
	if b > 1e-3 {
		t.Fatalf("bound %g on a noiseless quadratic", b)
	}
}

func TestBasisFallsBackWithSmallSamples(t *testing.T) {
	if k := basisFor(2, 3); k != basisConstant {
		t.Fatalf("basisFor(2,3) = %v, want constant", k)
	}
	if k := basisFor(2, 6); k != basisLinear {
		t.Fatalf("basisFor(2,6) = %v, want linear", k)
	}
	if k := basisFor(2, 12); k != basisQuadratic {
		t.Fatalf("basisFor(2,12) = %v, want quadratic", k)
	}
	// Feature layouts must prefix-contain each other — the driver slices
	// the memoized quadratic vector for the simpler bases.
	z := []float64{0.25, -0.75}
	q := features(z, basisQuadratic)
	l := features(z, basisLinear)
	c := features(z, basisConstant)
	for i, v := range l {
		if q[i] != v {
			t.Fatalf("linear features not a prefix of quadratic at %d", i)
		}
	}
	if q[0] != c[0] {
		t.Fatal("constant feature not a prefix of quadratic")
	}
}

func TestNormalizerDropsDegenerateAxes(t *testing.T) {
	nz := newNormalizer([][]int64{{5, 5, 5}, {10, 20, 30}})
	if nz.dims() != 1 {
		t.Fatalf("dims = %d, want 1 (degenerate axis kept)", nz.dims())
	}
	z := nz.z([]int64{5, 20})
	if len(z) != 1 || z[0] != 0 {
		t.Fatalf("z = %v, want [0]", z)
	}
	if z := nz.z([]int64{5, 10}); z[0] != -1 {
		t.Fatalf("low edge z = %v, want -1", z[0])
	}
	if z := nz.z([]int64{5, 30}); z[0] != 1 {
		t.Fatalf("high edge z = %v, want 1", z[0])
	}
}

// --- the driver ---

func chainGen(t *testing.T) sweep.Generator {
	t.Helper()
	sc, err := zoo.LookupScenario("chain")
	if err != nil {
		t.Fatal(err)
	}
	return func(p sweep.Point) (*model.Architecture, error) { return sc.Build(p), nil }
}

// periodAxis spans the source-dominated regime of the didactic family
// (the compute bottleneck cycles near ~940 for the seeds used here):
// final time is essentially bilinear in (period, tokens) there, which is
// what gives the surrogate a surface it can actually learn. Grids that
// straddle the compute/period regime kink keep simulating instead — see
// TestKinkedGridStaysHonest.
func periodAxis(n int) sweep.Axis {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(1100 + 40*i)
	}
	return sweep.Axis{Name: "period", Values: vals}
}

// A sampled sweep over a smooth grid must actually save simulations:
// fewer exact evaluations than grid points, every point flagged with its
// source, and the flag counts adding up to the grid.
func TestSampledSweepSavesSimulations(t *testing.T) {
	axes := []sweep.Axis{
		periodAxis(16),
		{Name: "tokens", Values: []int64{200, 300, 400, 500}},
		{Name: "seed", Values: []int64{7}},
		{Name: "stages", Values: []int64{2}},
	}
	res, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Workers: 4,
		Sample:  sweep.SampleOptions{Tolerance: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 16 * 4
	st := res.Stats
	if st.Points != total {
		t.Fatalf("points = %d, want %d", st.Points, total)
	}
	if st.SimulatedPoints+st.PredictedPoints != total {
		t.Fatalf("simulated %d + predicted %d != %d", st.SimulatedPoints, st.PredictedPoints, total)
	}
	if st.PredictedPoints == 0 {
		t.Fatalf("no predictions on a smooth %d-point grid (simulated all %d)", total, st.SimulatedPoints)
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d", st.Failed)
	}
	for i, pr := range res.Points {
		switch pr.Source {
		case sweep.SourceSimulated:
			if pr.Run.Activations == 0 {
				t.Fatalf("point %d simulated but empty", i)
			}
		case sweep.SourcePredicted:
			if pr.Run.FinalTimeNs <= 0 || pr.Run.Iterations <= 0 {
				t.Fatalf("point %d predicted nonsense: %+v", i, pr.Run)
			}
			if pr.Run.Activations != 0 || pr.Run.Events != 0 {
				t.Fatalf("point %d predicted but carries simulation work: %+v", i, pr.Run)
			}
			if pr.PredBound <= 0 || pr.PredBound > 0.01 {
				t.Fatalf("point %d bound %g outside (0, tol]", i, pr.PredBound)
			}
		default:
			t.Fatalf("point %d has no source (%q)", i, pr.Source)
		}
	}
	if st.MaxPredError <= 0 || st.MaxPredError > 0.01 {
		t.Fatalf("MaxPredError = %g, want within tolerance", st.MaxPredError)
	}
}

// Budget caps the exact evaluations even when the tolerance is
// unreachable; the rest of the grid is predicted with honest bounds.
func TestBudgetCapsSimulations(t *testing.T) {
	axes := []sweep.Axis{periodAxis(32), {Name: "tokens", Values: []int64{200}}, {Name: "seed", Values: []int64{7}}}
	res, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Workers: 2,
		Sample:  sweep.SampleOptions{Tolerance: 1e-12, Budget: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SimulatedPoints > 10 {
		t.Fatalf("simulated %d > budget 10", st.SimulatedPoints)
	}
	if st.SimulatedPoints+st.PredictedPoints != 32 {
		t.Fatalf("simulated %d + predicted %d != 32", st.SimulatedPoints, st.PredictedPoints)
	}
	for _, pr := range res.Points {
		if pr.Source == sweep.SourcePredicted && pr.PredBound <= 0 {
			t.Fatalf("predicted point %s without a bound", pr.Point)
		}
	}
}

// Verify re-simulates every predicted point: exact metrics replace the
// predictions, the observed error is recorded per point, and the
// worst observed error — not the model's guess — lands in the stats.
func TestVerifyReportsObservedError(t *testing.T) {
	axes := []sweep.Axis{periodAxis(24), {Name: "tokens", Values: []int64{300}}, {Name: "seed", Values: []int64{7}}}
	tol := 0.01
	res, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Workers: 2,
		Sample:  sweep.SampleOptions{Tolerance: tol, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PredictedPoints == 0 {
		t.Skip("grid too hard for the surrogate; nothing verified")
	}
	// Compare against an exhaustive sweep: after Verify, every point must
	// carry exact metrics.
	exact, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Points {
		if pr.Run.FinalTimeNs != exact.Points[i].Run.FinalTimeNs {
			t.Fatalf("point %d: verified FinalTimeNs %d != exact %d", i, pr.Run.FinalTimeNs, exact.Points[i].Run.FinalTimeNs)
		}
		if pr.Source == sweep.SourcePredicted {
			if pr.PredObserved > tol {
				t.Fatalf("point %d observed error %g > tolerance %g", i, pr.PredObserved, tol)
			}
			if pr.PredObserved > res.Stats.MaxPredError {
				t.Fatalf("point %d observed %g > MaxPredError %g", i, pr.PredObserved, res.Stats.MaxPredError)
			}
		}
	}
}

// The per-scenario accuracy property: for every zoo scenario swept over
// smooth axes (fixed seed — the randomized token sizes stay fixed per
// point), a sampled sweep with Verify keeps every predicted metric
// within the declared tolerance of the exact result. Scenarios where
// the surrogate cannot converge simply simulate everything — also a
// pass: the contract is "never hand out a prediction worse than
// declared", not "always predict".
func TestEveryScenarioWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		scenario string
		axes     []sweep.Axis
	}{
		{"didactic", []sweep.Axis{periodAxis(20), {Name: "tokens", Values: []int64{300}}, {Name: "seed", Values: []int64{5}}}},
		{"chain", []sweep.Axis{periodAxis(20), {Name: "tokens", Values: []int64{250}}, {Name: "seed", Values: []int64{7}}, {Name: "stages", Values: []int64{3}}}},
		{"pipeline", []sweep.Axis{periodAxis(20), {Name: "xsize", Values: []int64{5}}, {Name: "tokens", Values: []int64{80}}, {Name: "seed", Values: []int64{3}}}},
		{"phased", []sweep.Axis{periodAxis(20), {Name: "tokens", Values: []int64{200}}, {Name: "seed", Values: []int64{11}}}},
		{"forkjoin", []sweep.Axis{periodAxis(20), {Name: "workers", Values: []int64{4}}, {Name: "tokens", Values: []int64{60}}, {Name: "seed", Values: []int64{2}}}},
		{"random", []sweep.Axis{{Name: "tokens", Values: []int64{40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260}}, {Name: "seed", Values: []int64{9}}}},
	}
	const tol = 0.02
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			t.Parallel()
			sc, err := zoo.LookupScenario(tc.scenario)
			if err != nil {
				t.Fatal(err)
			}
			gen := func(p sweep.Point) (*model.Architecture, error) { return sc.Build(p), nil }
			res, err := sweep.RunContext(context.Background(), tc.axes, gen, sweep.Options{
				Workers: 2,
				Sample:  sweep.SampleOptions{Tolerance: tol, Verify: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.SimulatedPoints+st.PredictedPoints != st.Points {
				t.Fatalf("simulated %d + predicted %d != %d", st.SimulatedPoints, st.PredictedPoints, st.Points)
			}
			for i, pr := range res.Points {
				if pr.Err != nil {
					t.Fatalf("point %d: %v", i, pr.Err)
				}
				if pr.Source == sweep.SourcePredicted && pr.PredObserved > tol {
					t.Fatalf("point %d (%s) observed error %g > declared tolerance %g",
						i, pr.Point, pr.PredObserved, tol)
				}
			}
			t.Logf("%s: %d/%d simulated, %d predicted, max observed error %.4f",
				tc.scenario, st.SimulatedPoints, st.Points, st.PredictedPoints, st.MaxPredError)
		})
	}
}

// Tolerance = 0 disables sampling entirely: the sweep engine never calls
// this driver and the result is bit-identical to an exhaustive sweep —
// including the absence of source flags.
func TestToleranceZeroIsExhaustive(t *testing.T) {
	axes := []sweep.Axis{periodAxis(6), {Name: "tokens", Values: []int64{100}}, {Name: "seed", Values: []int64{7}}}
	sampled, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Sample: sweep.SampleOptions{Tolerance: 0, Budget: 3, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Stats.SimulatedPoints != 0 || sampled.Stats.PredictedPoints != 0 {
		t.Fatalf("Tolerance=0 engaged the sampler: %+v", sampled.Stats)
	}
	for i := range plain.Points {
		a, b := sampled.Points[i], plain.Points[i]
		if a.Source != "" {
			t.Fatalf("point %d flagged %q without sampling", i, a.Source)
		}
		// Wall time is the one legitimately nondeterministic field.
		if a.Run.FinalTimeNs != b.Run.FinalTimeNs || a.Run.Iterations != b.Run.Iterations ||
			a.Run.Activations != b.Run.Activations || a.Run.Events != b.Run.Events {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Run, b.Run)
		}
	}
}

// The Progress contract under sampling, including cancellation: done
// strictly increases, never exceeds the grid size, and reaches exactly
// the grid size both on completion and on a cancelled run — predicted
// points counted exactly once, verify re-simulations never counted.
func TestSampledProgressContract(t *testing.T) {
	axes := []sweep.Axis{periodAxis(16), {Name: "tokens", Values: []int64{150}}, {Name: "seed", Values: []int64{7}}}
	total := 16
	run := func(t *testing.T, cancelAt int, opts sweep.SampleOptions) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var mu sync.Mutex
		last := 0
		built := 0
		sc, err := zoo.LookupScenario("chain")
		if err != nil {
			t.Fatal(err)
		}
		gen := func(p sweep.Point) (*model.Architecture, error) {
			mu.Lock()
			built++
			if cancelAt > 0 && built == cancelAt {
				cancel()
			}
			mu.Unlock()
			return sc.Build(p), nil
		}
		res, err := sweep.RunContext(ctx, axes, gen, sweep.Options{
			Workers: 3,
			Sample:  opts,
			Progress: func(done, tot int) {
				mu.Lock()
				defer mu.Unlock()
				if tot != total {
					t.Errorf("progress total %d, want %d", tot, total)
				}
				if done <= last || done > tot {
					t.Errorf("progress not strictly monotonic: %d after %d", done, last)
				}
				last = done
			},
		})
		if cancelAt > 0 {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if last != total {
			t.Fatalf("progress stopped at %d/%d", last, total)
		}
		if got := len(res.Points); got != total {
			t.Fatalf("result has %d points, want %d", got, total)
		}
	}
	t.Run("completion", func(t *testing.T) { run(t, 0, sweep.SampleOptions{Tolerance: 0.02, Verify: true}) })
	t.Run("cancelMidSeed", func(t *testing.T) { run(t, 3, sweep.SampleOptions{Tolerance: 0.02}) })
	t.Run("cancelLate", func(t *testing.T) { run(t, 9, sweep.SampleOptions{Tolerance: 1e-12}) })
}

// Sampling composes with the batched lane path: cohorts form inside the
// driver's inner rounds and the batch counters surface in the stats.
func TestSamplingWithBatchedLanes(t *testing.T) {
	axes := []sweep.Axis{periodAxis(24), {Name: "tokens", Values: []int64{200}}, {Name: "seed", Values: []int64{7}}}
	res, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Workers:    2,
		BatchWidth: 4,
		Sample:     sweep.SampleOptions{Tolerance: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Batches == 0 || res.Stats.BatchedPoints == 0 {
		t.Fatalf("no batched evaluation under sampling: %+v", res.Stats)
	}
	if res.Stats.BatchedPoints != res.Stats.SimulatedPoints {
		t.Fatalf("batched %d != simulated %d", res.Stats.BatchedPoints, res.Stats.SimulatedPoints)
	}
}

// A grid the surrogate cannot learn to tolerance — one straddling the
// compute-bound/period-bound regime kink — must fall back to simulating
// every point rather than handing out predictions it cannot back.
func TestKinkedGridStaysHonest(t *testing.T) {
	vals := make([]int64, 16)
	for i := range vals {
		vals[i] = int64(800 + 40*i) // kink near ~940 for this seed
	}
	axes := []sweep.Axis{
		{Name: "period", Values: vals},
		{Name: "tokens", Values: []int64{200}},
		{Name: "seed", Values: []int64{7}},
		{Name: "stages", Values: []int64{2}},
	}
	res, err := sweep.RunContext(context.Background(), axes, chainGen(t), sweep.Options{
		Workers: 2,
		Sample:  sweep.SampleOptions{Tolerance: 0.005},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PredictedPoints != 0 || res.Stats.SimulatedPoints != 16 {
		t.Fatalf("kinked grid predicted anyway: %+v", res.Stats)
	}
}

// Index-subset sweeps (the distributed chunk path) must reject sampling
// outright: a shard cannot fit a grid-global surrogate.
func TestIndicesRejectSampling(t *testing.T) {
	axes := []sweep.Axis{periodAxis(4)}
	_, err := sweep.RunIndicesContext(context.Background(), axes, []int{0, 1}, chainGen(t), sweep.Options{
		Sample: sweep.SampleOptions{Tolerance: 0.01},
	})
	if err == nil {
		t.Fatal("index subset accepted sampling")
	}
}
