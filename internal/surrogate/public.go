package surrogate

import "fmt"

// This file is the surrogate's exported face for callers outside the
// sweep sampling loop — today the design-space optimizer
// (internal/optimize), which uses the same ridge-polynomial fit as an
// acquisition model: fit the objective on the simulated subset,
// predict value + uncertainty everywhere else, and simulate where the
// optimistic bound keeps a point competitive. Keeping the wrapper here
// (instead of exporting the internals) pins one property: the
// optimizer's acquisition math is *identical* to the sampled sweep's —
// same normalizer, same adaptive basis, same closed-form LOO bound.

// Model is a fitted surrogate over a grid's axis values, safe for
// concurrent Predict calls.
type Model struct {
	nz   *normalizer
	kind basisKind
	f    *fit
}

// FitValues trains a surrogate on observed grid points: axes declares
// each dimension's value list (for normalization), pts holds one
// axis-value vector per observation, y the observed metric. The basis
// adapts to the sample size (constant → linear → quadratic); an error
// means the sample cannot support even the constant basis or the
// normal equations are singular — callers should fall back to
// exhaustive simulation, as the sampled sweep does.
func FitValues(axes [][]int64, pts [][]int64, y []float64) (*Model, error) {
	if len(pts) != len(y) {
		return nil, fmt.Errorf("surrogate: %d points vs %d observations", len(pts), len(y))
	}
	nz := newNormalizer(axes)
	kind := basisFor(nz.dims(), len(pts))
	need := basisTerms(nz.dims(), kind) + 2
	if need < 4 {
		need = 4
	}
	if len(pts) < need {
		return nil, fmt.Errorf("surrogate: %d observations cannot support a %d-term basis (need %d)",
			len(pts), basisTerms(nz.dims(), kind), need)
	}
	X := make([][]float64, len(pts))
	for i, p := range pts {
		if len(p) != len(axes) {
			return nil, fmt.Errorf("surrogate: point %d has %d values for %d axes", i, len(p), len(axes))
		}
		X[i] = features(nz.z(p), kind)
	}
	f, err := fitMetric(X, y)
	if err != nil {
		return nil, err
	}
	return &Model{nz: nz, kind: kind, f: f}, nil
}

// Predict returns the fitted metric at the grid point and the
// half-width of its uncertainty interval in the metric's own units
// (the fit's relative bound scaled back by the training magnitude), so
// value±halfWidth brackets the observation with the same confidence
// the sampled sweep's pred_bound carries.
func (m *Model) Predict(values []int64) (value, halfWidth float64) {
	v, rel := m.f.predict(features(m.nz.z(values), m.kind))
	return v, rel * m.f.scale
}

// SeedIndices exposes the sampled sweep's deterministic seed plan —
// grid corners, center, and an even row-major stride sized to train
// the quadratic basis with headroom — for callers driving their own
// sampling loop over a grid of the given total size and axis count.
func SeedIndices(total, dims, budget int) []int {
	return seedIndices(total, dims, budget)
}
