package chaos

// The chaos soak wall: mixed traffic against a fleet whose workers flap
// (torn connections, injected 500s) while breakers open, probe and
// close, followed by a coordinator kill-and-restart over the same
// store; and an overload scenario hammering the serving layer's
// admission control. The invariants:
//
//   - every non-2xx answer anywhere is the structured envelope with a
//     stable code — never a torn or unstructured 500;
//   - every submitted job settles, and every settled result survives
//     the coordinator restart byte-identical;
//   - the fleet recovers to all-closed breakers once the faults stop.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dyncomp/internal/serve"
	"dyncomp/internal/shard"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

var soakReq = serve.SweepRequest{
	Scenario: "pipeline",
	Axes: []serve.Axis{
		{Name: "tokens", Values: []int64{20, 40}},
		{Name: "period", Values: []int64{500, 800}},
	},
	Options: serve.SweepOptions{BatchWidth: 2},
}

// workersAllClosed polls GET /v1/workers until every breaker reports
// closed.
func workersAllClosed(t *testing.T, coordURL string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/v1/workers")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Workers []shard.WorkerStatus `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		closed := 0
		for _, ws := range out.Workers {
			if ws.Breaker == "closed" {
				closed++
			}
		}
		if closed == len(out.Workers) && closed > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered to all-closed breakers: %+v", out.Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// jobSnapshot fetches one settled job and re-marshals its durable
// fields — state, counts and the full points array — as the identity
// token for the restart comparison. Wall-clock metadata (started,
// finished, wall_ns) is deliberately not persisted by the store and is
// excluded.
func jobSnapshot(t *testing.T, coordURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s answered %d", id, resp.StatusCode)
	}
	var full map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	durable := map[string]json.RawMessage{}
	for _, k := range []string{"id", "state", "engine", "scenario", "done", "total"} {
		durable[k] = full[k]
	}
	// Successful point results must survive byte-identical. Failed points
	// must stay failed, but fabric-error text is not durable — the store
	// persists results, not in-flight delivery errors — so collapse the
	// error string to a marker.
	var points []map[string]json.RawMessage
	if err := json.Unmarshal(full["points"], &points); err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if e, ok := p["error"]; ok && len(e) > 2 {
			p["error"] = json.RawMessage(`"<failed>"`)
		}
	}
	pts, err := json.Marshal(points)
	if err != nil {
		t.Fatal(err)
	}
	durable["points"] = pts
	raw, err := json.Marshal(durable)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChaosSoak drives concurrent sweep traffic through a coordinator
// whose workers flap between healthy, torn-connection and denial modes,
// then lets the fleet heal, kills the coordinator and restarts it over
// the same store.
func TestChaosSoak(t *testing.T) {
	// Three real workers behind flap-able fault wrappers that break only
	// the chunk path — health and readiness stay honest, exactly like a
	// worker whose evaluation path wedged but whose process lives.
	var flakies []*Flaky
	var workerURLs []string
	for i := 0; i < 3; i++ {
		s := serve.New(serve.Config{})
		fl := NewFlaky(s.Handler(), "/v1/chunks")
		ws := httptest.NewServer(fl)
		t.Cleanup(func() {
			ws.Close()
			s.Close()
		})
		flakies = append(flakies, fl)
		workerURLs = append(workerURLs, ws.URL)
	}

	storePath := t.TempDir() + "/jobs.ndjson"
	coordCfg := shard.Config{
		Workers: workerURLs, ChunkPoints: 2, StorePath: storePath,
		Retries:   5,
		ProbeBase: 20 * time.Millisecond, ProbeTimeout: time.Second,
		RetryBase: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}
	c1, err := shard.New(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())

	// Flapper: cycle each worker through tear → deny → heal while the
	// traffic runs.
	flapStop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		modes := []Mode{Tear, Pass, Deny, Pass}
		for i := 0; ; i++ {
			select {
			case <-flapStop:
				for _, fl := range flakies {
					fl.Set(Pass)
				}
				return
			case <-time.After(25 * time.Millisecond):
			}
			flakies[i%len(flakies)].Set(modes[i%len(modes)])
		}
	}()

	// Mixed traffic: concurrent submitters, each polling its jobs to
	// terminal, every response checked for the envelope invariant.
	var (
		mu         sync.Mutex
		violations []string
		jobIDs     []string
		checked    atomic.Int64
	)
	check := func(resp *http.Response) string {
		checked.Add(1)
		code, err := CheckEnvelope(resp)
		if err != nil {
			mu.Lock()
			violations = append(violations, err.Error())
			mu.Unlock()
		}
		return code
	}
	var traffic sync.WaitGroup
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			for n := 0; n < 3; n++ {
				resp := postJSON(t, ts1.URL+"/v1/sweeps", soakReq)
				if resp.StatusCode != http.StatusAccepted {
					check(resp)
					continue
				}
				var j serve.Job
				if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
					t.Error(err)
					resp.Body.Close()
					continue
				}
				resp.Body.Close()
				mu.Lock()
				jobIDs = append(jobIDs, j.ID)
				mu.Unlock()
				deadline := time.Now().Add(60 * time.Second)
				for {
					r, err := http.Get(ts1.URL + "/v1/sweeps/" + j.ID)
					if err != nil {
						t.Error(err)
						return
					}
					var jr serve.JobResult
					raw, _ := io.ReadAll(r.Body)
					r.Body.Close()
					if err := json.Unmarshal(raw, &jr); err != nil {
						t.Errorf("job poll: %v (%q)", err, raw)
						return
					}
					if jr.State == "done" || jr.State == "failed" || jr.State == "cancelled" {
						if jr.Done != jr.Total {
							t.Errorf("job %s settled %q with done %d != total %d",
								j.ID, jr.State, jr.Done, jr.Total)
						}
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("job %s never settled under chaos", j.ID)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}
	traffic.Wait()
	close(flapStop)
	flapWG.Wait()

	if len(violations) > 0 {
		t.Fatalf("%d unstructured failures under chaos, first: %s",
			len(violations), violations[0])
	}
	if len(jobIDs) == 0 {
		t.Fatal("no job survived submission under chaos")
	}

	// Faults off: the fleet must heal to all-closed breakers via the
	// real /readyz probe path.
	workersAllClosed(t, ts1.URL)

	// Snapshot every settled job, then kill the coordinator.
	before := map[string][]byte{}
	for _, id := range jobIDs {
		before[id] = jobSnapshot(t, ts1.URL, id)
	}
	ts1.Close()
	c1.Close()

	// Restart over the same store: every settled result replays
	// byte-identical.
	c2, err := shard.New(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})
	for _, id := range jobIDs {
		if got := jobSnapshot(t, ts2.URL, id); !bytes.Equal(got, before[id]) {
			t.Fatalf("job %s changed across restart:\nbefore: %s\nafter:  %s",
				id, before[id], got)
		}
	}

	// The NDJSON replay of a finished job ends with its terminal
	// trailer.
	resp, err := http.Get(ts2.URL + "/v1/sweeps/" + jobIDs[0] + "/results")
	if err != nil {
		t.Fatal(err)
	}
	lines, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimSpace(string(lines))
	last := trimmed[strings.LastIndexByte(trimmed, '\n')+1:]
	if !strings.Contains(last, `"state"`) {
		t.Fatalf("results replay does not end with the terminal trailer: %q", last)
	}
}

// TestChaosOverloadAdmission hammers a small serving instance from many
// clients, some unauthenticated, at quotas and in-flight limits far
// below the offered load: every rejection must be one of the stable
// admission codes, and the counters must surface on /metrics.
func TestChaosOverloadAdmission(t *testing.T) {
	s := serve.New(serve.Config{
		AuthTokens:  map[string]string{"tok": "alice"},
		QuotaPoints: 40, QuotaWindow: time.Minute,
		MaxInFlight: 4,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	allowed := map[string]bool{
		"unauthorized": true, "quota_exceeded": true,
		"overloaded": true, "queue_full": true,
	}
	var (
		mu         sync.Mutex
		violations []string
		sawCode    = map[string]int{}
	)
	runBody := []byte(`{"scenario":"pipeline","params":{"tokens":20}}`)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		authed := g%4 != 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
					bytes.NewReader(runBody))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if authed {
					req.Header.Set("Authorization", "Bearer tok")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				code, cerr := CheckEnvelope(resp)
				mu.Lock()
				if cerr != nil {
					violations = append(violations, cerr.Error())
				} else if code != "" {
					sawCode[code]++
					if !allowed[code] {
						violations = append(violations,
							fmt.Sprintf("unexpected rejection code %q", code))
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(violations) > 0 {
		t.Fatalf("%d admission violations, first: %s", len(violations), violations[0])
	}
	if sawCode["unauthorized"] == 0 {
		t.Fatal("no unauthorized rejection despite unauthenticated clients")
	}
	if sawCode["quota_exceeded"] == 0 {
		t.Fatal("no quota rejection despite offered load far above the point budget")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, series := range []string{
		`dyncomp_serve_rejections_total{reason="unauthorized"}`,
		`dyncomp_serve_rejections_total{reason="quota_points"}`,
		"dyncomp_serve_inflight_requests",
		"dyncomp_serve_jobs_evicted_total",
		"dyncomp_serve_panics_total",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %q after the overload run:\n%s", series, body)
		}
	}
}
