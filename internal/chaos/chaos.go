// Package chaos is the fault-injection harness behind the resilience
// soak wall: it wraps real serving-layer workers in scripted faults —
// torn connections, structured denials, hangs — and checks the one
// invariant every failure path of the system must satisfy: errors reach
// the caller as the structured envelope with a stable code, never as a
// torn or unstructured 500, and no settled result is ever lost.
//
// The package holds only reusable harness pieces; the soak scenarios
// themselves live in the package's tests.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"dyncomp/internal/serve"
)

// Mode is one scripted fault behavior of a Flaky wrapper.
type Mode int32

const (
	// Pass serves normally.
	Pass Mode = iota
	// Tear hijacks the connection and closes it without answering —
	// what a caller sees when the process dies mid-request.
	Tear
	// Deny answers 500 with the structured envelope — an unhealthy but
	// well-behaved worker.
	Deny
)

// Flaky wraps a handler with a switchable fault mode applied to one
// path prefix; everything else (health, readiness, registration) passes
// through untouched, so recovery probes behave exactly as they would
// against a worker whose chunk path is broken but whose process lives.
type Flaky struct {
	next   http.Handler
	prefix string
	mode   atomic.Int32
}

// NewFlaky wraps next, faulting only requests under pathPrefix.
func NewFlaky(next http.Handler, pathPrefix string) *Flaky {
	return &Flaky{next: next, prefix: pathPrefix}
}

// Set switches the fault mode; safe under concurrent traffic.
func (f *Flaky) Set(m Mode) { f.mode.Store(int32(m)) }

func (f *Flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, f.prefix) {
		switch Mode(f.mode.Load()) {
		case Tear:
			conn, _, err := http.NewResponseController(w).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		case Deny:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Err: serve.Error{
				Code: "internal", Message: "chaos: injected denial",
			}})
			return
		}
	}
	f.next.ServeHTTP(w, r)
}

// CheckEnvelope enforces the structured-failure invariant on one
// response: any non-2xx status must carry the uniform error envelope
// with a non-empty code. It returns that code ("" on a 2xx) and
// consumes the response body.
func CheckEnvelope(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("chaos: reading %d response: %w", resp.StatusCode, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return "", nil
	}
	var env serve.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Err.Code == "" {
		return "", fmt.Errorf("chaos: unstructured %d response: %q", resp.StatusCode, raw)
	}
	return env.Err.Code, nil
}
