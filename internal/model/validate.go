package model

import (
	"errors"
	"fmt"

	"dyncomp/internal/maxplus"
)

// Validate resolves channel endpoints and rotation metadata and checks the
// structural rules required by both execution engines:
//
//   - every channel has exactly one writer and one reader;
//   - every function is mapped, has a non-empty body, and its first
//     statement is a Read (an iteration is triggered by data arrival);
//   - a function reads or writes each channel at most once per iteration
//     (single-rate dataflow) and never both ends of the same channel;
//   - every Exec has a cost function, every FIFO a positive capacity,
//     every resource a positive speed, every source a positive count;
//   - token provenance is acyclic, so data-dependent execution durations
//     are well defined for the k-th iteration.
//
// Validate is idempotent and must be called before BuildBaseline/Derive.
func (a *Architecture) Validate() error {
	if a.validated {
		return nil
	}

	writers := make(map[*Channel][]string)
	readers := make(map[*Channel][]string)
	owned := make(map[*Channel]bool)
	for _, ch := range a.Channels {
		owned[ch] = true
		ch.WriterFunc, ch.ReaderFunc, ch.Source, ch.Sink = nil, nil, nil, nil
		if ch.Name == "" {
			return errors.New("model: channel with empty name")
		}
		if ch.Kind == FIFO && ch.Capacity < 1 {
			return fmt.Errorf("model: FIFO channel %q needs capacity >= 1, got %d", ch.Name, ch.Capacity)
		}
	}

	for _, f := range a.Functions {
		if f.Name == "" {
			return errors.New("model: function with empty name")
		}
		if len(f.Body) == 0 {
			return fmt.Errorf("model: function %q has an empty body", f.Name)
		}
		if _, ok := f.Body[0].(Read); !ok {
			return fmt.Errorf("model: function %q must start with a Read (data-driven iteration)", f.Name)
		}
		if f.Resource == nil {
			return fmt.Errorf("model: function %q is not mapped to any resource", f.Name)
		}
		seenRead := make(map[*Channel]bool)
		seenWrite := make(map[*Channel]bool)
		for i, st := range f.Body {
			switch s := st.(type) {
			case Read:
				if s.Ch == nil {
					return fmt.Errorf("model: function %q statement %d reads a nil channel", f.Name, i)
				}
				if !owned[s.Ch] {
					return fmt.Errorf("model: function %q reads channel %q that is not part of the architecture", f.Name, s.Ch.Name)
				}
				if seenRead[s.Ch] {
					return fmt.Errorf("model: function %q reads channel %q twice per iteration (multi-rate is unsupported)", f.Name, s.Ch.Name)
				}
				seenRead[s.Ch] = true
				readers[s.Ch] = append(readers[s.Ch], f.Name)
				s.Ch.ReaderFunc = f
			case Write:
				if s.Ch == nil {
					return fmt.Errorf("model: function %q statement %d writes a nil channel", f.Name, i)
				}
				if !owned[s.Ch] {
					return fmt.Errorf("model: function %q writes channel %q that is not part of the architecture", f.Name, s.Ch.Name)
				}
				if seenWrite[s.Ch] {
					return fmt.Errorf("model: function %q writes channel %q twice per iteration (multi-rate is unsupported)", f.Name, s.Ch.Name)
				}
				seenWrite[s.Ch] = true
				writers[s.Ch] = append(writers[s.Ch], f.Name)
				s.Ch.WriterFunc = f
			case Exec:
				if s.Cost == nil {
					return fmt.Errorf("model: function %q execute %q has no cost function", f.Name, s.Label)
				}
			default:
				return fmt.Errorf("model: function %q has unknown statement type %T", f.Name, st)
			}
		}
		for ch := range seenRead {
			if seenWrite[ch] {
				return fmt.Errorf("model: function %q both reads and writes channel %q", f.Name, ch.Name)
			}
		}
	}

	for _, s := range a.Sources {
		if s.Ch == nil || !owned[s.Ch] {
			return fmt.Errorf("model: source %q feeds an unknown channel", s.Name)
		}
		if s.Schedule == nil || s.Tokens == nil {
			return fmt.Errorf("model: source %q needs both a schedule and a token generator", s.Name)
		}
		if s.Count <= 0 {
			return fmt.Errorf("model: source %q needs a positive token count, got %d", s.Name, s.Count)
		}
		writers[s.Ch] = append(writers[s.Ch], s.Name)
		s.Ch.Source = s
	}
	for _, s := range a.Sinks {
		if s.Ch == nil || !owned[s.Ch] {
			return fmt.Errorf("model: sink %q drains an unknown channel", s.Name)
		}
		readers[s.Ch] = append(readers[s.Ch], s.Name)
		s.Ch.Sink = s
	}

	for _, ch := range a.Channels {
		if n := len(writers[ch]); n != 1 {
			return fmt.Errorf("model: channel %q has %d writers %v, want exactly 1", ch.Name, n, writers[ch])
		}
		if n := len(readers[ch]); n != 1 {
			return fmt.Errorf("model: channel %q has %d readers %v, want exactly 1", ch.Name, n, readers[ch])
		}
	}

	for _, r := range a.Resources {
		if r.OpsPerSec <= 0 {
			return fmt.Errorf("model: resource %q needs a positive speed", r.Name)
		}
		switch r.Kind {
		case Processor:
			r.Concurrency = 1
		case Hardware:
			r.Concurrency = len(r.Rotation)
		default:
			return fmt.Errorf("model: resource %q has unknown kind %v", r.Name, r.Kind)
		}
		if len(r.Rotation) == 0 && r.Kind == Hardware {
			r.Concurrency = 1
		}
	}

	if err := a.checkProvenance(); err != nil {
		return err
	}

	a.validated = true
	return nil
}

// TokenOf resolves the token processed on channel ch at iteration k by
// following provenance back to a source. Validate must have succeeded.
func (a *Architecture) TokenOf(ch *Channel, k int) Token {
	cur := ch
	for cur.Source == nil {
		cur = a.provenanceOf(cur)
	}
	tok := cur.Source.Tokens(k)
	tok.K = k
	return tok
}

// provenanceOf returns the channel whose token the writer of ch forwards:
// the channel of the last Read preceding the Write of ch in the writer's
// body.
func (a *Architecture) provenanceOf(ch *Channel) *Channel {
	f := ch.WriterFunc
	var last *Channel
	for _, st := range f.Body {
		switch s := st.(type) {
		case Read:
			last = s.Ch
		case Write:
			if s.Ch == ch {
				return last
			}
		}
	}
	return nil
}

// checkProvenance verifies that every channel's token can be traced back
// to a source without cycles.
func (a *Architecture) checkProvenance() error {
	for _, ch := range a.Channels {
		seen := map[*Channel]bool{}
		cur := ch
		for cur.Source == nil {
			if seen[cur] {
				return fmt.Errorf("model: token provenance cycle through channel %q", ch.Name)
			}
			seen[cur] = true
			next := a.provenanceOf(cur)
			if next == nil {
				return fmt.Errorf("model: channel %q is written before any read in function %q; token provenance undefined", cur.Name, cur.WriterFunc.Name)
			}
			cur = next
		}
	}
	return nil
}

// ExecInfo is one Exec statement resolved against the mapping. It exposes
// the statement's load and duration as pure functions of the iteration
// index; both execution engines use it so that instants agree bit-exact.
//
// The token provenance is resolved to its source once at construction,
// and the last computed load is memoized (temporal dependency graphs
// evaluate the same duration through several arcs of one iteration).
// ExecInfo is not safe for concurrent use; each engine builds its own.
type ExecInfo struct {
	Func      *Function
	StmtIndex int
	Label     string
	Resource  *Resource

	arch *Architecture
	prov *Channel
	src  *Source
	cost CostFn

	lastK    int
	lastLoad Load
	hasLast  bool
}

// Load returns the operation count of the statement at iteration k.
func (e *ExecInfo) Load(k int) Load {
	if e.hasLast && e.lastK == k {
		return e.lastLoad
	}
	tok := e.src.Tokens(k)
	tok.K = k
	l := e.cost(tok)
	e.lastK, e.lastLoad, e.hasLast = k, l, true
	return l
}

// Duration returns the execution duration at iteration k in ticks.
func (e *ExecInfo) Duration(k int) maxplus.T { return e.Resource.DurationOf(e.Load(k)) }

// ExecInfoOf resolves the stmtIndex-th statement of f, which must be an
// Exec with a preceding Read (its token provenance). Validate must have
// succeeded.
func (a *Architecture) ExecInfoOf(f *Function, stmtIndex int) (*ExecInfo, error) {
	if stmtIndex < 0 || stmtIndex >= len(f.Body) {
		return nil, fmt.Errorf("model: statement index %d out of range for %q", stmtIndex, f.Name)
	}
	ex, ok := f.Body[stmtIndex].(Exec)
	if !ok {
		return nil, fmt.Errorf("model: statement %d of %q is not an Exec", stmtIndex, f.Name)
	}
	var prov *Channel
	for i := 0; i < stmtIndex; i++ {
		if r, ok := f.Body[i].(Read); ok {
			prov = r.Ch
		}
	}
	if prov == nil {
		return nil, fmt.Errorf("model: execute %q of %q has no preceding Read", ex.Label, f.Name)
	}
	// Resolve the provenance chain to its source once.
	cur := prov
	for cur.Source == nil {
		cur = a.provenanceOf(cur)
	}
	return &ExecInfo{
		Func:      f,
		StmtIndex: stmtIndex,
		Label:     ex.Label,
		Resource:  f.Resource,
		arch:      a,
		prov:      prov,
		src:       cur.Source,
		cost:      ex.Cost,
	}, nil
}

// Execs returns the resolved ExecInfo of every Exec statement in the
// architecture, in function declaration then body order.
func (a *Architecture) Execs() ([]*ExecInfo, error) {
	var out []*ExecInfo
	for _, f := range a.Functions {
		for i := range f.Body {
			if _, ok := f.Body[i].(Exec); !ok {
				continue
			}
			e, err := a.ExecInfoOf(f, i)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
