package model

import (
	"strings"
	"testing"

	"dyncomp/internal/maxplus"
)

// didactic builds the paper's Fig. 1 example: five functions F0..F4 (F0 as
// source), two processing resources P1 (processor) and P2 (hardware).
func didactic(t *testing.T) (*Architecture, map[string]*Channel) {
	t.Helper()
	a := NewArchitecture("didactic")
	chs := map[string]*Channel{}
	for _, n := range []string{"M1", "M2", "M3", "M4", "M5", "M6"} {
		chs[n] = a.AddChannel(n, Rendezvous, 0)
	}
	cost := OpsPerByte(100, 1)
	f1 := a.AddFunction("F1",
		Read{chs["M1"]}, Exec{"Ti1", cost}, Write{chs["M2"]}, Exec{"Tj1", cost}, Write{chs["M3"]})
	f2 := a.AddFunction("F2",
		Read{chs["M3"]}, Exec{"Ti2", cost}, Write{chs["M4"]})
	f3 := a.AddFunction("F3",
		Read{chs["M2"]}, Exec{"Ti3", cost}, Read{chs["M4"]}, Exec{"Tj3", cost}, Write{chs["M5"]})
	f4 := a.AddFunction("F4",
		Read{chs["M5"]}, Exec{"Ti4", cost}, Write{chs["M6"]})
	p1 := a.AddProcessor("P1", 1e9)
	p2 := a.AddHardware("P2", 1e9)
	a.Map(p1, f1, f2)
	a.Map(p2, f3, f4)
	a.AddSource("F0", chs["M1"], Periodic(1000, 0), func(k int) Token {
		return Token{Size: int64(100 + k%7)}
	}, 100)
	a.AddSink("env", chs["M6"])
	return a, chs
}

func TestValidateDidactic(t *testing.T) {
	a, chs := didactic(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if chs["M1"].Source == nil || chs["M1"].ReaderFunc.Name != "F1" {
		t.Fatal("M1 endpoints not resolved")
	}
	if chs["M6"].Sink == nil || chs["M6"].WriterFunc.Name != "F4" {
		t.Fatal("M6 endpoints not resolved")
	}
	if chs["M3"].WriterFunc.Name != "F1" || chs["M3"].ReaderFunc.Name != "F2" {
		t.Fatal("M3 endpoints not resolved")
	}
	var p1, p2 *Resource
	for _, r := range a.Resources {
		switch r.Name {
		case "P1":
			p1 = r
		case "P2":
			p2 = r
		}
	}
	if p1.Concurrency != 1 {
		t.Fatalf("P1 concurrency = %d, want 1", p1.Concurrency)
	}
	if p2.Concurrency != 2 {
		t.Fatalf("P2 concurrency = %d, want 2", p2.Concurrency)
	}
	// Validate is idempotent.
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTokenProvenance(t *testing.T) {
	a, chs := didactic(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every channel's token traces to the source, so sizes match u(k)'s.
	for _, name := range []string{"M1", "M2", "M3", "M4", "M5", "M6"} {
		for k := 0; k < 10; k++ {
			tok := a.TokenOf(chs[name], k)
			if tok.Size != int64(100+k%7) {
				t.Fatalf("TokenOf(%s, %d).Size = %d", name, k, tok.Size)
			}
			if tok.K != k {
				t.Fatalf("TokenOf(%s, %d).K = %d", name, k, tok.K)
			}
		}
	}
}

func TestExecInfo(t *testing.T) {
	a, _ := didactic(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	execs, err := a.Execs()
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 6 {
		t.Fatalf("got %d execs, want 6", len(execs))
	}
	labels := []string{}
	for _, e := range execs {
		labels = append(labels, e.Label)
	}
	if got := strings.Join(labels, ","); got != "Ti1,Tj1,Ti2,Ti3,Tj3,Ti4" {
		t.Fatalf("exec labels = %q", got)
	}
	// Duration: ops = 100 + size, speed 1e9 ops/s => duration = ops ns.
	e := execs[0]
	if d := e.Duration(0); d != 200 {
		t.Fatalf("Duration(0) = %v, want 200", d)
	}
	if d := e.Duration(3); d != 203 {
		t.Fatalf("Duration(3) = %v, want 203", d)
	}
	if l := e.Load(3); l.Ops != 203 {
		t.Fatalf("Load(3).Ops = %v", l.Ops)
	}
}

func TestExecInfoErrors(t *testing.T) {
	a, _ := didactic(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	f1 := a.Functions[0]
	if _, err := a.ExecInfoOf(f1, 0); err == nil {
		t.Fatal("expected error: statement 0 is a Read")
	}
	if _, err := a.ExecInfoOf(f1, 99); err == nil {
		t.Fatal("expected error: index out of range")
	}
}

func TestValidateRejectsUnmappedFunction(t *testing.T) {
	a := NewArchitecture("bad")
	m := a.AddChannel("M", Rendezvous, 0)
	out := a.AddChannel("O", Rendezvous, 0)
	a.AddFunction("F", Read{m}, Write{out})
	a.AddSource("S", m, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSink("K", out)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsEmptyBody(t *testing.T) {
	a := NewArchitecture("bad")
	f := a.AddFunction("F")
	a.Map(a.AddProcessor("P", 1e9), f)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "empty body") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsBodyNotStartingWithRead(t *testing.T) {
	a := NewArchitecture("bad")
	m := a.AddChannel("M", Rendezvous, 0)
	f := a.AddFunction("F", Write{m})
	a.Map(a.AddProcessor("P", 1e9), f)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "must start with a Read") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsChannelWithTwoWriters(t *testing.T) {
	a := NewArchitecture("bad")
	in1 := a.AddChannel("I1", Rendezvous, 0)
	in2 := a.AddChannel("I2", Rendezvous, 0)
	m := a.AddChannel("M", Rendezvous, 0)
	f1 := a.AddFunction("F1", Read{in1}, Write{m})
	f2 := a.AddFunction("F2", Read{in2}, Write{m})
	a.Map(a.AddProcessor("P", 1e9), f1, f2)
	a.AddSource("S1", in1, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSource("S2", in2, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSink("K", m)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "writers") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDanglingChannel(t *testing.T) {
	a := NewArchitecture("bad")
	a.AddChannel("M", Rendezvous, 0)
	if err := a.Validate(); err == nil {
		t.Fatal("expected error for dangling channel")
	}
}

func TestValidateRejectsMultiRate(t *testing.T) {
	a := NewArchitecture("bad")
	in := a.AddChannel("I", Rendezvous, 0)
	out := a.AddChannel("O", Rendezvous, 0)
	f := a.AddFunction("F", Read{in}, Read{in}, Write{out})
	a.Map(a.AddProcessor("P", 1e9), f)
	a.AddSource("S", in, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSink("K", out)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	a := NewArchitecture("bad")
	in := a.AddChannel("I", Rendezvous, 0)
	loop := a.AddChannel("L", Rendezvous, 0)
	f := a.AddFunction("F", Read{in}, Read{loop}, Write{loop})
	a.Map(a.AddProcessor("P", 1e9), f)
	a.AddSource("S", in, Eager(), func(int) Token { return Token{} }, 1)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "both reads and writes") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsZeroCapacityFIFO(t *testing.T) {
	a := NewArchitecture("bad")
	a.AddChannel("M", FIFO, 0)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsMissingCost(t *testing.T) {
	a := NewArchitecture("bad")
	in := a.AddChannel("I", Rendezvous, 0)
	out := a.AddChannel("O", Rendezvous, 0)
	f := a.AddFunction("F", Read{in}, Exec{Label: "T"}, Write{out})
	a.Map(a.AddProcessor("P", 1e9), f)
	a.AddSource("S", in, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSink("K", out)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "cost") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsBadResource(t *testing.T) {
	a := NewArchitecture("bad")
	in := a.AddChannel("I", Rendezvous, 0)
	out := a.AddChannel("O", Rendezvous, 0)
	f := a.AddFunction("F", Read{in}, Write{out})
	a.Map(a.AddProcessor("P", 0), f) // zero speed
	a.AddSource("S", in, Eager(), func(int) Token { return Token{} }, 1)
	a.AddSink("K", out)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "speed") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsNonPositiveSourceCount(t *testing.T) {
	a := NewArchitecture("bad")
	in := a.AddChannel("I", Rendezvous, 0)
	out := a.AddChannel("O", Rendezvous, 0)
	f := a.AddFunction("F", Read{in}, Write{out})
	a.Map(a.AddProcessor("P", 1e9), f)
	a.AddSource("S", in, Eager(), func(int) Token { return Token{} }, 0)
	a.AddSink("K", out)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("err = %v", err)
	}
}

func TestDurationOf(t *testing.T) {
	r := &Resource{Name: "R", OpsPerSec: 2e9}
	if d := r.DurationOf(Load{Ops: 2000}); d != 1000 {
		t.Fatalf("DurationOf = %v, want 1000", d)
	}
	if d := r.DurationOf(Load{Ops: 0}); d != 0 {
		t.Fatalf("DurationOf(0) = %v", d)
	}
	if d := r.DurationOf(Load{Ops: -5}); d != 0 {
		t.Fatalf("DurationOf(-5) = %v", d)
	}
	if d := r.DurationOf(Load{Ops: 3}); d != 2 { // 1.5ns rounds to 2
		t.Fatalf("DurationOf(3 ops @2GHz) = %v, want 2", d)
	}
}

func TestSchedules(t *testing.T) {
	p := Periodic(100, 7)
	if p(0) != 7 || p(3) != 307 {
		t.Fatalf("Periodic wrong: %v %v", p(0), p(3))
	}
	e := Eager()
	if e(0) != 0 || e(99) != 0 {
		t.Fatal("Eager wrong")
	}
}

func TestTokenAttr(t *testing.T) {
	tok := Token{Attrs: []float64{1.5, 2.5}}
	if tok.Attr(0) != 1.5 || tok.Attr(1) != 2.5 {
		t.Fatal("Attr lookup wrong")
	}
	if tok.Attr(2) != 0 || tok.Attr(-1) != 0 {
		t.Fatal("Attr out-of-range should be 0")
	}
}

func TestCostHelpers(t *testing.T) {
	f := FixedOps(42)
	if f(Token{Size: 999}).Ops != 42 {
		t.Fatal("FixedOps wrong")
	}
	g := OpsPerByte(10, 2)
	if g(Token{Size: 5}).Ops != 20 {
		t.Fatal("OpsPerByte wrong")
	}
}

func TestKindStrings(t *testing.T) {
	if Processor.String() != "processor" || Hardware.String() != "hardware" {
		t.Fatal("ResourceKind strings wrong")
	}
	if Rendezvous.String() != "rendezvous" || FIFO.String() != "fifo" {
		t.Fatal("ChannelKind strings wrong")
	}
	if !strings.Contains(ResourceKind(9).String(), "9") || !strings.Contains(ChannelKind(9).String(), "9") {
		t.Fatal("unknown kind strings wrong")
	}
}

func TestPeriodicOverflowSafe(t *testing.T) {
	p := Periodic(maxplus.T(1<<40), 0)
	if p(2) != maxplus.T(1<<41) {
		t.Fatalf("Periodic large = %v", p(2))
	}
}
