// Package model describes performance models of multi-core architectures:
// an application of dataflow functions exchanging tokens over channels, a
// platform of processing resources, and a mapping layer allocating
// functions to resources (Fig. 1 of the paper).
//
// The modelling semantics are those implied by the paper's equations
// (1)-(6):
//
//   - functions are statically scheduled and non-preemptive; each body is a
//     fixed cyclic sequence of read / execute / write statements processing
//     one token per iteration (single-rate dataflow);
//   - channels use a rendezvous protocol by default (writer and reader wait
//     on each other; the transfer instant is the max of both ready
//     instants); bounded FIFO channels are supported as an extension;
//   - a resource runs its mapped functions in a fixed rotation; with
//     concurrency 1 (a processor) the rotation is fully serialized, with
//     concurrency equal to the number of mapped functions (dedicated
//     hardware) the functions evolve independently;
//   - execution durations are data dependent, derived from per-statement
//     operation counts evaluated on the token being processed and the
//     speed of the executing resource.
//
// A model.Architecture is consumed by two engines that must agree exactly:
// the event-driven reference executor (internal/baseline) and the temporal
// dependency graph derivation (internal/derive) feeding the equivalent
// model (internal/core).
package model

import (
	"fmt"
	"math"

	"dyncomp/internal/maxplus"
)

// Token is one unit of data flowing through the application. Tokens are
// produced by sources and passed through unchanged by functions, so the
// k-th iteration of every function processes attributes that trace back to
// the k-th token of a source.
type Token struct {
	K     int       // iteration index, assigned by the source
	Size  int64     // payload size in bytes; the default cost driver
	Attrs []float64 // workload-specific parameters (e.g. LTE frame config)
}

// Attr returns Attrs[i], or 0 when absent, so cost functions can be written
// without bounds checks.
func (t Token) Attr(i int) float64 {
	if i < 0 || i >= len(t.Attrs) {
		return 0
	}
	return t.Attrs[i]
}

// Load is the computation demand of one execute statement.
type Load struct {
	Ops float64 // number of operations; duration = Ops / resource speed
}

// CostFn computes the load an execute statement places on its resource for
// a given token. Implementations must be pure: the same token must always
// yield the same load, because the reference simulator and the equivalent
// model both evaluate it and their instants are compared bit-exact.
type CostFn func(tok Token) Load

// FixedOps returns a CostFn with a constant operation count.
func FixedOps(ops float64) CostFn {
	return func(Token) Load { return Load{Ops: ops} }
}

// OpsPerByte returns a CostFn of the form base + perByte·Size.
func OpsPerByte(base, perByte float64) CostFn {
	return func(t Token) Load { return Load{Ops: base + perByte*float64(t.Size)} }
}

// ResourceKind distinguishes sequential processors from concurrent
// dedicated hardware.
type ResourceKind int

// Resource kinds.
const (
	// Processor executes one mapped function at a time (concurrency 1) in
	// a fixed rotation — the P1 of the didactic example.
	Processor ResourceKind = iota
	// Hardware provides one dedicated unit per mapped function
	// (concurrency = number of mapped functions) — the P2 of the example.
	Hardware
)

func (k ResourceKind) String() string {
	switch k {
	case Processor:
		return "processor"
	case Hardware:
		return "hardware"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource is a processing resource of the platform.
type Resource struct {
	Name      string
	Kind      ResourceKind
	OpsPerSec float64 // processing speed

	// Rotation is the static schedule: the mapped functions in turn order.
	// It is filled by Architecture.Map.
	Rotation []*Function

	// Concurrency is the number of turns that may be active at once;
	// resolved during Validate (1 for Processor, len(Rotation) for
	// Hardware).
	Concurrency int
}

// DurationOf converts a load into an execution duration in ticks
// (nanoseconds) on this resource, rounding to the nearest tick. Both
// simulation engines use this exact conversion so that instants agree.
func (r *Resource) DurationOf(l Load) maxplus.T {
	if l.Ops <= 0 {
		return 0
	}
	return maxplus.T(math.Round(l.Ops / r.OpsPerSec * 1e9))
}

// ChannelKind selects the communication protocol of a channel.
type ChannelKind int

// Channel kinds.
const (
	// Rendezvous blocks both sides until the transfer happens.
	Rendezvous ChannelKind = iota
	// FIFO buffers up to Capacity tokens; the writer blocks only when the
	// buffer is full, the reader when it is empty.
	FIFO
)

func (k ChannelKind) String() string {
	switch k {
	case Rendezvous:
		return "rendezvous"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// Channel is a point-to-point relation between two endpoints (functions,
// a source, or a sink).
type Channel struct {
	Name     string
	Kind     ChannelKind
	Capacity int // FIFO only

	// Resolved during Validate.
	WriterFunc *Function // nil when written by a source
	ReaderFunc *Function // nil when read by a sink
	Source     *Source   // non-nil when fed by a source
	Sink       *Sink     // non-nil when drained by a sink
}

// Stmt is one statement of a function body: Read, Exec or Write.
type Stmt interface {
	stmtKind() string
}

// Read blocks until a token is available on the channel and consumes it.
type Read struct{ Ch *Channel }

// Write offers the function's current token on the channel.
type Write struct{ Ch *Channel }

// Exec occupies the function's resource for the duration given by Cost
// applied to the current token.
type Exec struct {
	Label string // duration name, e.g. "Ti1"; used in traces and the TDG
	Cost  CostFn
}

func (Read) stmtKind() string  { return "read" }
func (Write) stmtKind() string { return "write" }
func (Exec) stmtKind() string  { return "exec" }

// Function is one application function: a named cyclic sequence of
// statements.
type Function struct {
	Name string
	Body []Stmt

	// Resolved during Validate / Map.
	Resource *Resource
	// RotIndex is the function's position in its resource's rotation.
	RotIndex int
}

// ScheduleFn gives the instant u(k) at which a source tries to produce its
// k-th token.
type ScheduleFn func(k int) maxplus.T

// Periodic returns the schedule u(k) = offset + k·period.
func Periodic(period, offset maxplus.T) ScheduleFn {
	return func(k int) maxplus.T {
		return maxplus.Otimes(offset, maxplus.T(int64(k)*int64(period)))
	}
}

// Eager returns the schedule u(k) = 0: the source is always ready and the
// production rate is set entirely by downstream backpressure.
func Eager() ScheduleFn {
	return func(int) maxplus.T { return 0 }
}

// TokenFn generates the k-th token of a source. It must be deterministic.
type TokenFn func(k int) Token

// Source is an environment process producing tokens into a channel.
type Source struct {
	Name     string
	Ch       *Channel
	Schedule ScheduleFn
	Tokens   TokenFn
	Count    int // number of tokens to produce; must be positive
}

// Sink is an environment process that is always ready to consume tokens
// from a channel.
type Sink struct {
	Name string
	Ch   *Channel
}

// Architecture is a complete performance model: application, platform and
// mapping. Build one with NewArchitecture and the Add/Map methods, then
// call Validate before handing it to an execution engine.
type Architecture struct {
	Name      string
	Functions []*Function
	Channels  []*Channel
	Sources   []*Source
	Sinks     []*Sink
	Resources []*Resource

	validated bool
}

// NewArchitecture creates an empty named architecture.
func NewArchitecture(name string) *Architecture {
	return &Architecture{Name: name}
}

// AddChannel declares a channel. Capacity is ignored for rendezvous
// channels.
func (a *Architecture) AddChannel(name string, kind ChannelKind, capacity int) *Channel {
	ch := &Channel{Name: name, Kind: kind, Capacity: capacity}
	a.Channels = append(a.Channels, ch)
	a.validated = false
	return ch
}

// AddFunction declares an application function with the given body.
func (a *Architecture) AddFunction(name string, body ...Stmt) *Function {
	f := &Function{Name: name, Body: body}
	a.Functions = append(a.Functions, f)
	a.validated = false
	return f
}

// AddProcessor declares a sequential processing resource.
func (a *Architecture) AddProcessor(name string, opsPerSec float64) *Resource {
	r := &Resource{Name: name, Kind: Processor, OpsPerSec: opsPerSec}
	a.Resources = append(a.Resources, r)
	a.validated = false
	return r
}

// AddHardware declares a dedicated hardware resource with one unit per
// mapped function.
func (a *Architecture) AddHardware(name string, opsPerSec float64) *Resource {
	r := &Resource{Name: name, Kind: Hardware, OpsPerSec: opsPerSec}
	a.Resources = append(a.Resources, r)
	a.validated = false
	return r
}

// Map allocates functions to a resource; the argument order defines the
// static rotation (schedule) on that resource.
func (a *Architecture) Map(r *Resource, fns ...*Function) {
	for _, f := range fns {
		f.Resource = r
		f.RotIndex = len(r.Rotation)
		r.Rotation = append(r.Rotation, f)
	}
	a.validated = false
}

// AddSource declares an environment source feeding ch.
func (a *Architecture) AddSource(name string, ch *Channel, sched ScheduleFn, tokens TokenFn, count int) *Source {
	s := &Source{Name: name, Ch: ch, Schedule: sched, Tokens: tokens, Count: count}
	a.Sources = append(a.Sources, s)
	a.validated = false
	return s
}

// AddSink declares an environment sink draining ch.
func (a *Architecture) AddSink(name string, ch *Channel) *Sink {
	s := &Sink{Name: name, Ch: ch}
	a.Sinks = append(a.Sinks, s)
	a.validated = false
	return s
}
