package sweep

import (
	"testing"

	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

// Adaptive sweep points must honor Options.Derive (pad nodes included),
// like the equivalent path does.
func TestAdaptiveHonorsDeriveOptions(t *testing.T) {
	gen := func(p Point) (*model.Architecture, error) {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 120, Period: 1100, Seed: 7}), nil
	}
	axes := []Axis{{Name: "x", Values: []int64{1}}}
	plain, err := Run(axes, gen, Options{Engine: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	padded, err := Run(axes, gen, Options{Engine: "adaptive", Derive: derive.Options{PadNodes: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if padded.Points[0].Run.GraphNodes != plain.Points[0].Run.GraphNodes+50 {
		t.Fatalf("pad nodes dropped: %d vs %d+50",
			padded.Points[0].Run.GraphNodes, plain.Points[0].Run.GraphNodes)
	}
}

// Hybrid sweep points must honor Options.Derive too — the unified
// options contract says every engine receives the full derive options.
func TestHybridHonorsDeriveOptions(t *testing.T) {
	sc, err := zoo.LookupScenario("forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(p Point) (*model.Architecture, error) { return sc.Build(p), nil }
	axes := []Axis{{Name: "tokens", Values: []int64{20}}}
	group := sc.HybridGroup(zoo.ParamMap{})
	plain, err := Run(axes, gen, Options{Engine: "hybrid", Group: group})
	if err != nil {
		t.Fatal(err)
	}
	padded, err := Run(axes, gen, Options{Engine: "hybrid", Group: group,
		Derive: derive.Options{PadNodes: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if padded.Points[0].Run.GraphNodes != plain.Points[0].Run.GraphNodes+50 {
		t.Fatalf("pad nodes dropped by the hybrid engine: %d vs %d+50",
			padded.Points[0].Run.GraphNodes, plain.Points[0].Run.GraphNodes)
	}
}
