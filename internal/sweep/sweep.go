// Package sweep is a concurrent design-space exploration engine. The
// paper's value proposition is evaluating many candidate multi-core
// configurations fast; this package turns the single-run library into a
// batch evaluator: a parameter grid (the cartesian product of named
// integer axes) is expanded into points, a generator maps each point to
// an architecture model, and a worker pool evaluates every point with
// any executor registered in internal/engine, selected by name —
// "equivalent" (default), "reference", "hybrid" (with Options.Group) or
// "adaptive", plus whatever future engines register.
//
// Derivation is cached by structural shape (derive.Cache): when points
// differ only in parameters — token counts, periods, seeds, schedules,
// costs, resource speeds — the temporal dependency graph is derived
// once and re-bound per point, so the symbolic execution cost is paid
// once per shape rather than once per point. The cache is injected into
// every engine run, so the hybrid and adaptive engines share it too.
//
// Every point is evaluated independently and deterministically: the
// per-point results (instants, stats) are identical regardless of the
// worker count or scheduling order. RunContext threads a context through
// the worker pool: a cancelled context stops dispatching points,
// fails the remaining ones with the context's error, and returns it
// alongside the partial result.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"

	// Register the built-in executors, so any consumer of the sweep
	// engine can select them by name.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
)

// Axis is one dimension of the design-space grid.
type Axis struct {
	Name   string
	Values []int64
}

// Point is one configuration of the grid: an assignment of one value per
// axis. Index is the point's position in row-major grid order (the last
// axis varies fastest), which is also its position in Result.Points.
type Point struct {
	Index  int
	Names  []string // axis names, shared across all points of a grid
	Values []int64  // one value per axis
}

// Lookup returns the value of the named axis.
func (p Point) Lookup(name string) (int64, bool) {
	for i, n := range p.Names {
		if n == name {
			return p.Values[i], true
		}
	}
	return 0, false
}

// Get returns the value of the named axis, or def when the grid has no
// such axis.
func (p Point) Get(name string, def int64) int64 {
	if v, ok := p.Lookup(name); ok {
		return v
	}
	return def
}

func (p Point) String() string {
	s := ""
	for i, n := range p.Names {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%d", n, p.Values[i])
	}
	return s
}

// gridShape validates axes and returns the shared name slice and the
// grid's total point count.
func gridShape(axes []Axis) ([]string, int, error) {
	if len(axes) == 0 {
		return nil, 0, fmt.Errorf("sweep: no axes")
	}
	names := make([]string, len(axes))
	total := 1
	for i, ax := range axes {
		if ax.Name == "" {
			return nil, 0, fmt.Errorf("sweep: axis %d has no name", i)
		}
		if len(ax.Values) == 0 {
			return nil, 0, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		for _, prev := range names[:i] {
			if prev == ax.Name {
				return nil, 0, fmt.Errorf("sweep: duplicate axis %q", ax.Name)
			}
		}
		names[i] = ax.Name
		total *= len(ax.Values)
	}
	return names, total, nil
}

// pointAt synthesizes the grid point at row-major index i.
func pointAt(axes []Axis, names []string, i int) Point {
	vals := make([]int64, len(axes))
	rem := i
	for d := len(axes) - 1; d >= 0; d-- {
		n := len(axes[d].Values)
		vals[d] = axes[d].Values[rem%n]
		rem /= n
	}
	return Point{Index: i, Names: names, Values: vals}
}

// Grid expands axes into their cartesian product in row-major order: the
// last axis varies fastest.
func Grid(axes []Axis) ([]Point, error) {
	names, total, err := gridShape(axes)
	if err != nil {
		return nil, err
	}
	pts := make([]Point, total)
	for i := range pts {
		pts[i] = pointAt(axes, names, i)
	}
	return pts, nil
}

// GridSelect expands only the given row-major grid indices, in the given
// order. Each point keeps its global grid index, so a subset evaluation
// (a distributed shard's chunk) reports results a coordinator can merge
// back into full-grid order. Out-of-range and duplicate indices are
// rejected: a chunk must never evaluate a point twice.
func GridSelect(axes []Axis, indices []int) ([]Point, error) {
	names, total, err := gridShape(axes)
	if err != nil {
		return nil, err
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("sweep: no indices selected")
	}
	seen := make(map[int]bool, len(indices))
	pts := make([]Point, len(indices))
	for k, idx := range indices {
		if idx < 0 || idx >= total {
			return nil, fmt.Errorf("sweep: index %d outside grid of %d points", idx, total)
		}
		if seen[idx] {
			return nil, fmt.Errorf("sweep: duplicate index %d", idx)
		}
		seen[idx] = true
		pts[k] = pointAt(axes, names, idx)
	}
	return pts, nil
}

// Generator maps a grid point to an architecture model. It must be
// deterministic and safe for concurrent calls with distinct points; the
// engine may call it more than once per point (e.g. to build a separate
// instance for the baseline run).
type Generator func(Point) (*model.Architecture, error)

// DefaultEngine evaluates the points when Options.Engine is empty.
const DefaultEngine = "equivalent"

// Point sources reported by sampled sweeps (PointResult.Source).
const (
	// SourceSimulated marks a point evaluated exactly by an engine.
	SourceSimulated = "simulated"
	// SourcePredicted marks a point filled in by the surrogate model.
	SourcePredicted = "predicted"
)

// SampleOptions configures surrogate-guided sweep sampling: instead of
// simulating every grid point, an active-sampling driver evaluates a
// seed subset exactly, fits an analytical surrogate over the parameter
// axes, keeps simulating the highest-uncertainty points until the
// cross-validated error drops below Tolerance, and *predicts* the rest.
// Predicted points are flagged per point (PointResult.Source,
// PredBound) and counted in Stats.PredictedPoints.
type SampleOptions struct {
	// Tolerance is the target maximum relative prediction error on the
	// gated metrics (end-to-end latency and cycle mean). Zero disables
	// sampling entirely: the sweep degenerates to the exhaustive run,
	// bit-exactly.
	Tolerance float64
	// Budget caps the number of points simulated exactly by the
	// sampling loop (0: no cap). When the budget runs out before the
	// tolerance is met, the remaining points are still predicted —
	// with whatever error bound the model honestly reports.
	Budget int
	// Verify re-simulates every predicted point exactly after the
	// sampling loop converges, replaces the predicted metrics with the
	// exact results (keeping Source == "predicted" and filling
	// PredObserved), and reports the maximum observed prediction error
	// in Stats.MaxPredError. The escape hatch costs the full grid but
	// measures the surrogate instead of trusting it.
	Verify bool
}

// Enabled reports whether sampling is requested.
func (s SampleOptions) Enabled() bool { return s.Tolerance > 0 }

// Options configures a sweep.
type Options struct {
	// Workers sets the worker-pool size; 0 means GOMAXPROCS. Timings
	// (PointStats.Wall) of concurrent runs perturb each other: use
	// Workers 1 when wall-clock speed-ups are the measurement.
	Workers int
	// Engine names the registered executor evaluating every point
	// (engine.Names() lists them); empty selects DefaultEngine.
	Engine string
	// Window sets the adaptive engine's steady-state confirmation window
	// (0: the engine's default, the confidence-driven detector). Ignored
	// by the other engines.
	Window int
	// Confidence sets the adaptive engine's confidence-driven detector
	// threshold when Window is zero (0: the engine default). Ignored by
	// the other engines.
	Confidence float64
	// Group names the functions the hybrid engine abstracts on every
	// point. Required by (and only read by) the hybrid engine.
	Group []string
	// GroupFor, when non-nil, overrides Group per point — for grids
	// whose axes change the architecture's structure (and with it the
	// group), e.g. sweeping the fork-join worker count.
	GroupFor func(Point) []string
	// Baseline also runs the reference executor on every point (from a
	// fresh Generator call) and fills PointResult.Baseline, EventRatio
	// and SpeedUp. Meaningful with any engine but "reference" itself.
	Baseline bool
	// Record keeps per-point evolution traces.
	Record bool
	// Limit bounds simulated time per point; 0 runs to completion.
	Limit sim.Time
	// Derive sets the derivation options for every point.
	Derive derive.Options
	// DeriveFor, when non-nil, overrides Derive per point (e.g. the
	// Fig. 5 sweep pads the graph differently at each point).
	DeriveFor func(Point) derive.Options
	// Cache supplies a shared derivation cache; nil creates a fresh one
	// for the sweep. Sharing a cache across sweeps carries its hit/miss
	// statistics over.
	Cache *derive.Cache
	// Progress, when non-nil, receives (completed, total) after every
	// point finishes — successful or failed. Deliveries are serialized
	// and strictly monotonic: the counter advance and the callback run
	// under one lock, so a later call always carries a larger count. In
	// a per-point sweep every count 1..total is delivered exactly once,
	// also under cancellation; a batched sweep (BatchWidth > 0)
	// coalesces the notifications — one per finished chunk, advancing
	// by the chunk size — but still reaches total, also under
	// cancellation. Because the lock spans the callback, a blocking
	// consumer stalls every worker: forward, never block.
	Progress func(done, total int)
	// Interpreted forces every point through the tree-walking graph
	// interpreter instead of the compiled evaluation program; for
	// debugging and bit-exactness testing. Disables batching
	// (BatchWidth): there is no batched interpreter.
	Interpreted bool
	// Sample enables surrogate-guided sampling (Sample.Tolerance > 0):
	// only a model-chosen subset of the grid is simulated exactly and
	// the rest is predicted by an analytical surrogate. Requires the
	// sampling driver to be linked (import _ "dyncomp/internal/
	// surrogate"); only Run/RunContext support it — a distributed
	// chunk evaluation (RunIndices) rejects it, because the surrogate
	// needs the whole grid to choose its samples.
	Sample SampleOptions
	// BatchWidth, when positive, groups grid points sharing one
	// structural shape (derive.ShapeKey, same per-point derive options
	// and group) into cohorts and evaluates each cohort in chunks of up
	// to BatchWidth lanes through the engine's batched path
	// (engine.BatchRunner) — one compiled structure, one lockstep pass
	// per iteration for the whole chunk. Points keep their bit-exact
	// per-point results; only the evaluation strategy changes. Engines
	// without the batch capability (reference, hybrid, adaptive) and
	// interpreted sweeps fall back to the per-point path, as does any
	// chunk whose batched run fails wholesale. 0 disables batching.
	BatchWidth int
}

// PointStats reports one completed simulation of one point.
type PointStats struct {
	Activations int64         // kernel context switches
	Events      int64         // kernel event-queue operations
	FinalTimeNs int64         // simulated time reached
	Iterations  int           // evolution iterations computed
	GraphNodes  int           // graph size in the paper's counting (equivalent only)
	Switches    int           // detailed→abstract switches (adaptive engine)
	Fallbacks   int           // abstract→detailed fallbacks (adaptive engine)
	Wall        time.Duration // host wall-clock time of the run
}

// PointResult is the evaluation of one grid point.
type PointResult struct {
	Point Point
	// Run is the selected engine's result (the equivalent model unless
	// Options.Engine says otherwise).
	Run PointStats
	// Trace is the recorded evolution when Options.Record is set.
	Trace *observe.Trace
	// Baseline pairing (Options.Baseline): the reference executor's
	// result, its trace, and the paper's two headline ratios.
	Baseline      *PointStats
	BaselineTrace *observe.Trace
	EventRatio    float64 // baseline activations / equivalent activations
	SpeedUp       float64 // baseline wall / equivalent wall
	// Source reports how a sampled sweep obtained this point:
	// SourceSimulated or SourcePredicted. Empty in exhaustive sweeps.
	Source string
	// PredBound is the surrogate's relative error bound on this
	// predicted point's gated metrics (predicted points only).
	PredBound float64
	// PredObserved is the observed relative prediction error against
	// the exact re-simulation (predicted points under Sample.Verify).
	PredObserved float64
	// Err reports a failed point; the other fields are zero.
	Err error
}

// Aggregate summarizes one metric across the grid. The JSON field
// names are what the dyncomp-sweep CLI's -format json output emits,
// matching the snake_case convention of docs/SERVING.md (whose wire
// structs are deliberately separate).
type Aggregate struct {
	N       int     `json:"n"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Geomean float64 `json:"geomean"`
}

// Stats summarizes a completed sweep. The JSON field names are what
// the dyncomp-sweep CLI's -format json output emits, matching the
// snake_case convention of docs/SERVING.md.
type Stats struct {
	Points      int           `json:"points"`       // grid size
	Failed      int           `json:"failed"`       // points with Err set
	Shapes      int           `json:"shapes"`       // distinct structural shapes in the cache
	DeriveCalls int64         `json:"derive_calls"` // cache misses == derivations performed
	CacheHits   int64         `json:"cache_hits"`   // points served by rebinding
	Wall        time.Duration `json:"wall_ns"`      // wall-clock time of the whole sweep
	// Batched-evaluation accounting (zero in per-point sweeps):
	// Batches counts the batched engine invocations, BatchedPoints the
	// points they evaluated, and BatchOccupancy the mean lane
	// utilization — BatchedPoints over Batches × BatchWidth capacity.
	Batches        int     `json:"batches"`
	BatchedPoints  int     `json:"batched_points"`
	BatchOccupancy float64 `json:"batch_occupancy"`
	// Sampled-sweep accounting (zero in exhaustive sweeps):
	// SimulatedPoints counts points evaluated exactly by the sampling
	// loop, PredictedPoints the points filled in by the surrogate, and
	// MaxPredError the maximum relative prediction error — observed
	// (against exact re-simulation) under Sample.Verify, the model's
	// own bound otherwise.
	SimulatedPoints int     `json:"simulated_points,omitempty"`
	PredictedPoints int     `json:"predicted_points,omitempty"`
	MaxPredError    float64 `json:"max_pred_error,omitempty"`
	// SpeedUp and EventRatio aggregate the per-point ratios when
	// Options.Baseline was set.
	SpeedUp    Aggregate `json:"speed_up"`
	EventRatio Aggregate `json:"event_ratio"`
}

// Result is a completed sweep: one entry per grid point, in grid order,
// plus aggregate statistics.
type Result struct {
	Points []PointResult
	Stats  Stats
}

// Sampler is the surrogate-guided sweep driver: it owns the whole grid,
// simulates a subset of it exactly (through RunIndicesContext with
// Sample cleared) and predicts the rest. internal/surrogate registers
// one in init(); the indirection keeps this package free of a
// dependency on its own driver.
type Sampler func(ctx context.Context, axes []Axis, gen Generator, opts Options) (*Result, error)

var sampler Sampler

// RegisterSampler installs the surrogate sampling driver, following the
// registry idiom of internal/engine: importing the driver package makes
// Options.Sample work.
func RegisterSampler(fn Sampler) { sampler = fn }

// Run expands the grid, shards it across the worker pool and evaluates
// every point. Per-point failures are reported in PointResult.Err (and
// counted in Stats.Failed); Run itself fails only on unusable input. It
// is RunContext with a background context.
func Run(axes []Axis, gen Generator, opts Options) (*Result, error) {
	return RunContext(context.Background(), axes, gen, opts)
}

// RunContext is Run with cancellation threaded through the worker pool:
// once ctx is cancelled no further point is dispatched, every remaining
// point fails with the context's error, and RunContext returns ctx.Err()
// alongside the partial result (completed points keep their stats and
// the aggregate statistics cover them). In-flight points stop at their
// engine's cancellation granularity.
func RunContext(ctx context.Context, axes []Axis, gen Generator, opts Options) (*Result, error) {
	if opts.Sample.Enabled() {
		if sampler == nil {
			return nil, fmt.Errorf(`sweep: sampling requested but no driver linked (import _ "dyncomp/internal/surrogate")`)
		}
		if ctx == nil {
			ctx = context.Background()
		}
		return sampler(ctx, axes, gen, opts)
	}
	pts, err := Grid(axes)
	if err != nil {
		return nil, err
	}
	return runPoints(ctx, pts, gen, opts)
}

// RunIndices evaluates only the given row-major grid indices — one
// shard's chunk of a distributed sweep. Results come back in indices
// order with each point's global grid Index preserved, and Progress
// counts against len(indices). Because every point is evaluated
// independently and batched cohorts are cut in the order given, a
// coordinator that routes whole shape cohorts (aligned to BatchWidth)
// reproduces the single-process sweep bit for bit, batch counts
// included. It is RunIndicesContext with a background context.
func RunIndices(axes []Axis, indices []int, gen Generator, opts Options) (*Result, error) {
	return RunIndicesContext(context.Background(), axes, indices, gen, opts)
}

// RunIndicesContext is RunIndices with cancellation, under the same
// contract as RunContext.
func RunIndicesContext(ctx context.Context, axes []Axis, indices []int, gen Generator, opts Options) (*Result, error) {
	if opts.Sample.Enabled() {
		// The surrogate chooses which indices to simulate from the whole
		// grid; a pre-selected chunk contradicts that by construction.
		return nil, fmt.Errorf("sweep: sampling (Options.Sample) is not supported on index subsets")
	}
	pts, err := GridSelect(axes, indices)
	if err != nil {
		return nil, err
	}
	return runPoints(ctx, pts, gen, opts)
}

// runPoints is the shared evaluation core behind RunContext and
// RunIndicesContext: resolve the engine, spin the worker pool and
// evaluate every given point (per point or in shape-cohort batches).
func runPoints(ctx context.Context, pts []Point, gen Generator, opts Options) (*Result, error) {
	if gen == nil {
		return nil, fmt.Errorf("sweep: nil generator")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	name := opts.Engine
	if name == "" {
		name = DefaultEngine
	}
	eng, err := engine.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var refEng engine.Engine
	if opts.Baseline {
		if refEng, err = engine.Lookup("reference"); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	cache := opts.Cache
	if cache == nil {
		cache = derive.NewCache()
	}

	start := time.Now()
	results := make([]PointResult, len(pts))
	// report advances the coalesced progress counter by n finished
	// points; the per-point path always advances by one, the batched
	// path by whole chunks. The counter and the callback are serialized
	// under one mutex: with an atomic counter alone, two workers
	// finishing interleaved cohort chunks could deliver their counts out
	// of order (a later call carrying a smaller count), so the lock is
	// what makes the delivered sequence strictly increasing.
	var (
		progressMu sync.Mutex
		completed  int
	)
	report := func(n int) {
		if n <= 0 {
			return
		}
		progressMu.Lock()
		completed += n
		if opts.Progress != nil {
			opts.Progress(completed, len(pts))
		}
		progressMu.Unlock()
	}
	finish := func(i int, pr PointResult) {
		results[i] = pr
		report(1)
	}

	var bstats batchStats
	if br, ok := eng.(engine.BatchRunner); ok && opts.BatchWidth > 0 && !opts.Interpreted {
		bstats = runBatched(ctx, pts, gen, br, refEng, opts, cache, workers, results, report)
	} else {
		runPerPoint(ctx, pts, gen, eng, refEng, opts, cache, workers, finish)
	}

	res := &Result{Points: results}
	res.Stats = Summarize(results, cache, time.Since(start))
	res.Stats.Batches = bstats.batches
	res.Stats.BatchedPoints = bstats.points
	if bstats.batches > 0 {
		res.Stats.BatchOccupancy = float64(bstats.points) / float64(bstats.batches*opts.BatchWidth)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runPerPoint is the point-at-a-time worker pool: every grid point is an
// independent job.
func runPerPoint(ctx context.Context, pts []Point, gen Generator, eng, refEng engine.Engine, opts Options, cache *derive.Cache, workers int, finish func(int, PointResult)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A dispatched point may still see the cancellation
				// before its evaluation started.
				if err := ctx.Err(); err != nil {
					finish(i, PointResult{Point: pts[i], Err: err})
					continue
				}
				finish(i, evalPoint(ctx, pts[i], gen, eng, refEng, opts, cache))
			}
		}()
	}
dispatch:
	for i := range pts {
		select {
		case <-ctx.Done():
			// Stop dispatching; the undispatched tail is only touched
			// here, never by a worker. The tail still counts toward
			// progress, so consumers see done == total even on cancel.
			for j := i; j < len(pts); j++ {
				finish(j, PointResult{Point: pts[j], Err: ctx.Err()})
			}
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
}

// evalPoint evaluates one grid point: generate the architecture, run the
// selected engine on it (with the sweep's shared derive cache injected),
// and optionally pair it with a reference-executor baseline. Panics —
// model builders and engines use them for invalid configurations —
// are confined to the point: one bad configuration must not kill a
// thousand-point sweep.
func evalPoint(ctx context.Context, p Point, gen Generator, eng, refEng engine.Engine, opts Options, cache *derive.Cache) (pr PointResult) {
	defer func() {
		if r := recover(); r != nil {
			pr = PointResult{
				Point: p,
				Err:   fmt.Errorf("sweep: point %d (%s): panic: %v", p.Index, p, r),
			}
		}
	}()
	pr = PointResult{Point: p}
	a, err := gen(p)
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
		return pr
	}
	if a == nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): generator returned no architecture", p.Index, p)
		return pr
	}

	dopts := opts.Derive
	if opts.DeriveFor != nil {
		dopts = opts.DeriveFor(p)
	}
	group := opts.Group
	if opts.GroupFor != nil {
		group = opts.GroupFor(p)
	}
	r, err := eng.Run(ctx, a, engine.Options{
		Record:        opts.Record,
		LimitNs:       int64(opts.Limit),
		WindowK:       opts.Window,
		Confidence:    opts.Confidence,
		AbstractGroup: group,
		Derive:        dopts,
		Cache:         cache,
		Interpreted:   opts.Interpreted,
	})
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
		return pr
	}
	pr.Run = pointStats(r)
	pr.Trace = r.Trace

	if opts.Baseline {
		addBaseline(ctx, p, gen, refEng, opts, &pr)
	}
	return pr
}

// addBaseline pairs an evaluated point with a reference-executor run and
// fills the paper's two headline ratios. Both the per-point and the
// batched path use it — baselines always run point-at-a-time (the
// reference executor has no batched form).
func addBaseline(ctx context.Context, p Point, gen Generator, refEng engine.Engine, opts Options, pr *PointResult) {
	// A fresh instance keeps the engines from sharing memoized
	// per-statement state.
	ab, err := gen(p)
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): baseline: %w", p.Index, p, err)
		return
	}
	br, err := refEng.Run(ctx, ab, engine.Options{
		Record:  opts.Record,
		LimitNs: int64(opts.Limit),
	})
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): baseline: %w", p.Index, p, err)
		return
	}
	bs := pointStats(br)
	pr.Baseline = &bs
	pr.BaselineTrace = br.Trace
	if pr.Run.Activations > 0 {
		pr.EventRatio = float64(bs.Activations) / float64(pr.Run.Activations)
	}
	if pr.Run.Wall > 0 {
		pr.SpeedUp = bs.Wall.Seconds() / pr.Run.Wall.Seconds()
	}
}

// pointStats converts a uniform engine result into per-point statistics.
func pointStats(r *engine.Result) PointStats {
	return PointStats{
		Activations: r.Activations,
		Events:      r.Events,
		FinalTimeNs: r.FinalTimeNs,
		Iterations:  r.Iterations,
		GraphNodes:  r.GraphNodes,
		Switches:    r.Switches,
		Fallbacks:   r.Fallbacks,
		Wall:        time.Duration(r.WallNs),
	}
}

// Summarize computes the aggregate statistics over evaluated points.
// Exported for drivers that assemble a Result from several partial runs
// (the surrogate sampler merges its simulation rounds and predictions
// into one grid-ordered result) — reusing it keeps their aggregate
// float math bit-identical to an exhaustive sweep over the same values.
func Summarize(results []PointResult, cache *derive.Cache, wall time.Duration) Stats {
	st := Stats{Points: len(results), Wall: wall, Shapes: cache.Shapes()}
	st.CacheHits, st.DeriveCalls = cache.Stats()
	var speedups, ratios []float64
	for i := range results {
		pr := &results[i]
		if pr.Err != nil {
			st.Failed++
			continue
		}
		if pr.Baseline != nil {
			speedups = append(speedups, pr.SpeedUp)
			ratios = append(ratios, pr.EventRatio)
		}
	}
	st.SpeedUp = AggregateOf(speedups)
	st.EventRatio = AggregateOf(ratios)
	return st
}

// AggregateOf summarizes one metric across a value sequence. Exported so
// layers that merge partial sweeps (a distributed coordinator stitching
// shard results back together) reproduce the sweep's exact float math —
// the same values in the same order aggregate bit-identically.
func AggregateOf(xs []float64) Aggregate {
	if len(xs) == 0 {
		return Aggregate{}
	}
	a := Aggregate{N: len(xs), Min: xs[0], Max: xs[0]}
	sum, logSum := 0.0, 0.0
	geomean := true
	for _, x := range xs {
		if x < a.Min {
			a.Min = x
		}
		if x > a.Max {
			a.Max = x
		}
		sum += x
		if x > 0 {
			logSum += math.Log(x)
		} else {
			geomean = false
		}
	}
	a.Mean = sum / float64(len(xs))
	if geomean {
		a.Geomean = math.Exp(logSum / float64(len(xs)))
	}
	return a
}
