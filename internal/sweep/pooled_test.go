package sweep

import (
	"fmt"
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

// TestPooledEvaluatorsUnderParallelSweep hammers the compiled-evaluator
// pool from the worker pool: every point of the grid shares one
// structural shape, so every worker rebinds the same template and
// recycles rings through the program's shared sync.Pool. Run with -race
// (CI does), this is the data-race check for pooled evaluator reuse; the
// per-point results must also be independent of the worker count.
func TestPooledEvaluatorsUnderParallelSweep(t *testing.T) {
	axes := []Axis{
		{Name: "period", Values: []int64{500, 700, 900, 1100, 1300, 1500}},
		{Name: "seed", Values: []int64{1, 2, 3, 4, 5, 6}},
	}
	gen := func(p Point) (*model.Architecture, error) {
		return zoo.Didactic(zoo.DidacticSpec{
			Tokens: 25,
			Period: maxplus.T(p.Get("period", 1000)),
			Seed:   p.Get("seed", 1),
		}), nil
	}
	run := func(workers int) *Result {
		res, err := Run(axes, gen, Options{Workers: workers, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Failed > 0 {
			t.Fatalf("%d points failed", res.Stats.Failed)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial.Points {
		s, p := serial.Points[i], parallel.Points[i]
		if s.Run.FinalTimeNs != p.Run.FinalTimeNs || s.Run.Iterations != p.Run.Iterations {
			t.Fatalf("point %d (%s): serial (%d ns, %d iters) != parallel (%d ns, %d iters)",
				i, s.Point, s.Run.FinalTimeNs, s.Run.Iterations, p.Run.FinalTimeNs, p.Run.Iterations)
		}
		label := fmt.Sprintf("point %d (%s)", i, s.Point)
		si := s.Trace.Instants("M6_2")
		pi := p.Trace.Instants("M6_2")
		if len(si) != len(pi) {
			t.Fatalf("%s: trace lengths differ", label)
		}
		for k := range si {
			if si[k] != pi[k] {
				t.Fatalf("%s: instant %d differs: %v vs %v", label, k, si[k], pi[k])
			}
		}
	}
}
