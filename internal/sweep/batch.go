package sweep

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/model"
)

// batchStats accumulates the batched-evaluation counters feeding
// Stats.Batches / BatchedPoints / BatchOccupancy.
type batchStats struct {
	batches int // batched engine invocations that ran
	points  int // points those invocations evaluated
}

// genPoint is one pre-generated grid point awaiting batched dispatch.
type genPoint struct {
	arch  *model.Architecture
	dopts derive.Options
	group []string
}

// CohortKey names the equivalence class of points a single batched run
// can carry: one structural shape evaluated under one set of per-point
// options. Points whose generation or shape derivation fails are
// finished immediately and never join a cohort. Exported so the
// distributed coordinator (internal/shard) cuts its chunks along
// exactly the cohort boundaries the worker-side sweep will use — that
// alignment is what keeps the fleet's batch accounting bit-identical to
// a single-process sweep.
func CohortKey(shape string, dopts derive.Options, group []string) string {
	return fmt.Sprintf("%s\x00pad=%d reduce=%t nocompile=%t\x00%s",
		shape, dopts.PadNodes, dopts.Reduce, dopts.NoCompile, strings.Join(group, ","))
}

// runBatched is the batch-first evaluation strategy: pre-generate every
// point, group the points into shape cohorts, chunk each cohort at
// Options.BatchWidth and evaluate the chunks on the engine's batched
// path from a worker pool. Three phases:
//
//  1. Generate all architectures concurrently and derive each point's
//     structural shape. Failures finish the point right away.
//  2. Group by cohort key in grid order and cut chunks of at most
//     BatchWidth points — grid neighbours stay lane neighbours, so
//     results remain deterministic and independent of the worker count.
//  3. Dispatch chunks to the worker pool. Each chunk is one RunBatch
//     call; a wholesale batch failure re-evaluates that chunk's points
//     through the scalar path (which regenerates them), per-lane
//     failures fail only their point. Baselines, when requested, run
//     per point — the reference executor has no batched form.
//
// Progress is coalesced: one notification per finished chunk, advancing
// by the chunk size, still summing to the total under cancellation.
func runBatched(ctx context.Context, pts []Point, gen Generator, br engine.BatchRunner, refEng engine.Engine, opts Options, cache *derive.Cache, workers int, results []PointResult, report func(int)) batchStats {
	prep := make([]genPoint, len(pts))
	keys := make([]string, len(pts))
	failed := make([]bool, len(pts))

	// Phase 1: concurrent generation and shape derivation.
	var wg sync.WaitGroup
	gjobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range gjobs {
				prepPoint(ctx, pts[i], gen, opts, &prep[i], &keys[i], &results[i])
				failed[i] = results[i].Err != nil
			}
		}()
	}
	for i := range pts {
		gjobs <- i
	}
	close(gjobs)
	wg.Wait()

	// Points that already failed (generation, shape derivation or a
	// pre-existing cancellation) are finished; report them as one
	// coalesced stride.
	nfailed := 0
	for i := range pts {
		if failed[i] {
			nfailed++
		}
	}
	report(nfailed)

	// Phase 2: cohorts in grid order, cut into chunks of BatchWidth.
	order := make([]string, 0)
	cohorts := make(map[string][]int)
	for i := range pts {
		if failed[i] {
			continue
		}
		k := keys[i]
		if _, ok := cohorts[k]; !ok {
			order = append(order, k)
		}
		cohorts[k] = append(cohorts[k], i)
	}
	var chunks [][]int
	for _, k := range order {
		members := cohorts[k]
		for len(members) > 0 {
			n := opts.BatchWidth
			if n > len(members) {
				n = len(members)
			}
			chunks = append(chunks, members[:n:n])
			members = members[n:]
		}
	}

	// Phase 3: chunk worker pool, mirroring the per-point dispatch
	// loop's cancellation contract (done == total even on cancel).
	var batches, batched atomic.Int64
	cjobs := make(chan []int)
	failChunk := func(chunk []int, err error) {
		for _, i := range chunk {
			results[i] = PointResult{Point: pts[i], Err: err}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range cjobs {
				if err := ctx.Err(); err != nil {
					failChunk(chunk, err)
				} else {
					evalChunk(ctx, chunk, pts, prep, gen, br, refEng, opts, cache, results, &batches, &batched)
				}
				report(len(chunk))
			}
		}()
	}
dispatch:
	for ci := range chunks {
		select {
		case <-ctx.Done():
			for _, chunk := range chunks[ci:] {
				failChunk(chunk, ctx.Err())
				report(len(chunk))
			}
			break dispatch
		case cjobs <- chunks[ci]:
		}
	}
	close(cjobs)
	wg.Wait()
	return batchStats{batches: int(batches.Load()), points: int(batched.Load())}
}

// prepPoint generates one point's architecture and cohort key. Panics
// are confined to the point, exactly as in evalPoint.
func prepPoint(ctx context.Context, p Point, gen Generator, opts Options, gp *genPoint, key *string, pr *PointResult) {
	defer func() {
		if r := recover(); r != nil {
			*pr = PointResult{Point: p, Err: fmt.Errorf("sweep: point %d (%s): panic: %v", p.Index, p, r)}
		}
	}()
	*pr = PointResult{Point: p}
	if err := ctx.Err(); err != nil {
		pr.Err = err
		return
	}
	a, err := gen(p)
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
		return
	}
	if a == nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): generator returned no architecture", p.Index, p)
		return
	}
	shape, err := derive.ShapeKey(a)
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err)
		return
	}
	gp.arch = a
	gp.dopts = opts.Derive
	if opts.DeriveFor != nil {
		gp.dopts = opts.DeriveFor(p)
	}
	gp.group = opts.Group
	if opts.GroupFor != nil {
		gp.group = opts.GroupFor(p)
	}
	*key = CohortKey(shape, gp.dopts, gp.group)
}

// evalChunk evaluates one shape cohort chunk through the batched engine
// path; on a wholesale batch failure every point of the chunk re-runs
// through the scalar path.
func evalChunk(ctx context.Context, chunk []int, pts []Point, prep []genPoint, gen Generator, br engine.BatchRunner, refEng engine.Engine, opts Options, cache *derive.Cache, results []PointResult, batches, batched *atomic.Int64) {
	archs := make([]*model.Architecture, len(chunk))
	for l, i := range chunk {
		archs[l] = prep[i].arch
	}
	// All chunk members share one cohort key, so the first point's
	// options speak for the chunk.
	lead := prep[chunk[0]]
	out, laneErrs, err := runBatchRecovered(ctx, br, archs, engine.Options{
		Record:        opts.Record,
		LimitNs:       int64(opts.Limit),
		WindowK:       opts.Window,
		Confidence:    opts.Confidence,
		AbstractGroup: lead.group,
		Derive:        lead.dopts,
		Cache:         cache,
	})
	if err != nil {
		// Wholesale failure: nothing ran. Fall back to scalar
		// evaluation so a batch-path limitation never fails a point a
		// per-point sweep would have completed.
		for _, i := range chunk {
			results[i] = evalPoint(ctx, pts[i], gen, br, refEng, opts, cache)
		}
		return
	}
	batches.Add(1)
	batched.Add(int64(len(chunk)))
	for l, i := range chunk {
		p := pts[i]
		if laneErrs[l] != nil {
			results[i] = PointResult{Point: p, Err: fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, laneErrs[l])}
			continue
		}
		pr := PointResult{Point: p, Run: pointStats(out[l]), Trace: out[l].Trace}
		if opts.Baseline {
			addBaseline(ctx, p, gen, refEng, opts, &pr)
		}
		results[i] = pr
	}
}

// runBatchRecovered shields the sweep from a panicking batched run the
// way evalPoint shields it from a panicking scalar one; a panic reads as
// a wholesale failure, triggering the scalar fallback.
func runBatchRecovered(ctx context.Context, br engine.BatchRunner, archs []*model.Architecture, eopts engine.Options) (out []*engine.Result, laneErrs []error, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, laneErrs = nil, nil
			err = fmt.Errorf("sweep: batched run panicked: %v", r)
		}
	}()
	return br.RunBatch(ctx, archs, eopts)
}
