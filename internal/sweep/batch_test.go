package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// didacticGen maps grid points onto didactic chains: the stages axis is
// structural (its own shape cohort), period and seed are dynamics-only.
func didacticGen(p Point) (*model.Architecture, error) {
	return zoo.DidacticChain(int(p.Get("stages", 1)), zoo.DidacticSpec{
		Tokens: 25,
		Period: maxplus.T(p.Get("period", 1000)),
		Seed:   p.Get("seed", 1),
	}), nil
}

// A batched sweep is an evaluation strategy, not a semantics change:
// every point's stats and trace are bit-exact against the per-point
// sweep of the same grid, and the batch counters account for every
// point exactly once.
func TestBatchedSweepBitExactAgainstPerPoint(t *testing.T) {
	axes := []Axis{
		{Name: "stages", Values: []int64{1, 2}},
		{Name: "period", Values: []int64{500, 900}},
		{Name: "seed", Values: []int64{1, 2, 3}},
	}
	scalar, err := Run(axes, didacticGen, Options{Record: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(axes, didacticGen, Options{Record: true, Workers: 3, BatchWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Stats.Failed != 0 {
		t.Fatalf("%d batched points failed", batched.Stats.Failed)
	}
	for i := range scalar.Points {
		s, b := scalar.Points[i], batched.Points[i]
		if b.Err != nil {
			t.Fatalf("point %d (%s): %v", i, b.Point, b.Err)
		}
		if s.Run.FinalTimeNs != b.Run.FinalTimeNs || s.Run.Iterations != b.Run.Iterations ||
			s.Run.Activations != b.Run.Activations || s.Run.Events != b.Run.Events {
			t.Fatalf("point %d (%s): scalar %+v != batched %+v", i, s.Point, s.Run, b.Run)
		}
		if err := observe.CompareInstants(s.Trace, b.Trace); err != nil {
			t.Fatalf("point %d (%s): %v", i, s.Point, err)
		}
	}
	// 12 points in 2 shape cohorts of 6, chunked at width 5: 5+1 twice.
	st := batched.Stats
	if st.Batches != 4 || st.BatchedPoints != 12 {
		t.Fatalf("batches=%d batched_points=%d, want 4/12", st.Batches, st.BatchedPoints)
	}
	if want := 12.0 / 20.0; st.BatchOccupancy != want {
		t.Fatalf("occupancy %v, want %v", st.BatchOccupancy, want)
	}
	if st.Shapes != 2 {
		t.Fatalf("cache saw %d shapes, want 2", st.Shapes)
	}
	if scalar.Stats.Batches != 0 || scalar.Stats.BatchedPoints != 0 || scalar.Stats.BatchOccupancy != 0 {
		t.Fatalf("per-point sweep reports batch stats: %+v", scalar.Stats)
	}
}

// Batched progress coalesces to one notification per chunk — strides
// summing to the total — instead of one per point.
func TestBatchedSweepProgressCoalesced(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}}
	var dones []int
	_, err := Run(axes, didacticGen, Options{
		Workers:    1,
		BatchWidth: 4,
		Progress:   func(done, total int) { dones = append(dones, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// One cohort of 10 at width 4: chunks of 4, 4 and 2.
	want := []int{4, 8, 10}
	if len(dones) != len(want) {
		t.Fatalf("progress fired %d times (%v), want %v", len(dones), dones, want)
	}
	for i := range want {
		if dones[i] != want[i] {
			t.Fatalf("progress sequence %v, want %v", dones, want)
		}
	}
}

// Cancellation keeps the batched progress contract: the counts still
// sum to the total, undispatched chunks fail with the context error,
// and RunContext surfaces it.
func TestBatchedSweepProgressReachesTotalOnCancel(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: make([]int64, 24)}}
	for i := range axes[0].Values {
		axes[0].Values[i] = int64(i + 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	maxDone := 0
	res, err := RunContext(ctx, axes, didacticGen, Options{
		Workers:    2,
		BatchWidth: 2,
		Progress: func(done, total int) {
			mu.Lock()
			if done > maxDone {
				maxDone = done
			}
			mu.Unlock()
			cancel() // first finished chunk cancels the rest
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	if maxDone != 24 {
		t.Fatalf("progress peaked at %d, want total 24", maxDone)
	}
	mu.Unlock()
	if res.Stats.Failed == 0 {
		t.Fatal("cancellation failed no points")
	}
	for i := range res.Points {
		pr := res.Points[i]
		if pr.Err != nil && !errors.Is(pr.Err, context.Canceled) {
			t.Fatalf("point %d failed with %v, want context.Canceled", i, pr.Err)
		}
	}
}

// Engines without the batch capability and interpreted sweeps silently
// use the per-point path: same results, zero batch counters.
func TestBatchedSweepFallsBackWithoutCapability(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3, 4}}}
	for _, opts := range []Options{
		{Engine: "adaptive", BatchWidth: 8},
		{Interpreted: true, BatchWidth: 8},
		{Engine: "reference", BatchWidth: 8},
	} {
		res, err := Run(axes, didacticGen, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.Stats.Failed != 0 {
			t.Fatalf("%+v: %d points failed", opts, res.Stats.Failed)
		}
		if res.Stats.Batches != 0 || res.Stats.BatchedPoints != 0 {
			t.Fatalf("%+v: batch counters %d/%d on a per-point path", opts, res.Stats.Batches, res.Stats.BatchedPoints)
		}
	}
}

// A wholesale batch failure falls back to scalar evaluation instead of
// failing the chunk's points: NoCompile derivations have no compiled
// program, which the batched path requires, so every chunk degrades to
// per-point interpreter runs — and still succeeds.
func TestBatchedSweepScalarFallbackOnWholesaleFailure(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3, 4, 5}}}
	res, err := Run(axes, didacticGen, Options{
		BatchWidth: 4,
		Derive:     derive.Options{NoCompile: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 0 {
		for i := range res.Points {
			if res.Points[i].Err != nil {
				t.Logf("point %d: %v", i, res.Points[i].Err)
			}
		}
		t.Fatalf("%d points failed under the scalar fallback", res.Stats.Failed)
	}
	if res.Stats.Batches != 0 || res.Stats.BatchedPoints != 0 {
		t.Fatalf("batch counters %d/%d, want 0/0 after wholesale fallback", res.Stats.Batches, res.Stats.BatchedPoints)
	}
}

// The batched analogue of TestPooledEvaluatorsUnderParallelSweep: chunk
// evaluation recycles batch evaluators through the program's shared
// pool from many workers at once. Run with -race (CI does), this is the
// data-race check for pooled batched state; results must also be
// independent of the worker count.
func TestPooledBatchEvaluatorsUnderParallelBatchedSweep(t *testing.T) {
	axes := []Axis{
		{Name: "period", Values: []int64{500, 700, 900, 1100, 1300, 1500}},
		{Name: "seed", Values: []int64{1, 2, 3, 4, 5, 6}},
	}
	run := func(workers int) *Result {
		res, err := Run(axes, didacticGen, Options{Workers: workers, Record: true, BatchWidth: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Failed > 0 {
			t.Fatalf("%d points failed", res.Stats.Failed)
		}
		if res.Stats.Batches != 12 || res.Stats.BatchedPoints != 36 {
			t.Fatalf("batches=%d batched_points=%d, want 12/36", res.Stats.Batches, res.Stats.BatchedPoints)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial.Points {
		s, p := serial.Points[i], parallel.Points[i]
		if s.Run.FinalTimeNs != p.Run.FinalTimeNs || s.Run.Iterations != p.Run.Iterations {
			t.Fatalf("point %d (%s): serial (%d ns, %d iters) != parallel (%d ns, %d iters)",
				i, s.Point, s.Run.FinalTimeNs, s.Run.Iterations, p.Run.FinalTimeNs, p.Run.Iterations)
		}
		if err := observe.CompareInstants(s.Trace, p.Trace); err != nil {
			t.Fatalf("point %d (%s): %v", i, fmt.Sprint(s.Point), err)
		}
	}
}

// Progress deliveries are strictly monotonic even when cohort chunks
// finish interleaved across many workers: the counter advance and the
// callback are serialized under one lock. The callback appends without
// its own synchronization on purpose — if the sweep ever stops
// serializing deliveries, the race detector flags this test before the
// monotonicity assertion even runs.
func TestBatchedSweepProgressMonotonic(t *testing.T) {
	axes := []Axis{
		{Name: "stages", Values: []int64{1, 2, 3}},
		{Name: "period", Values: []int64{500, 700, 900, 1100}},
		{Name: "seed", Values: []int64{1, 2, 3}},
	}
	var dones []int
	res, err := Run(axes, didacticGen, Options{
		Workers:    8,
		BatchWidth: 2,
		Progress:   func(done, total int) { dones = append(dones, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 0 {
		t.Fatalf("%d points failed", res.Stats.Failed)
	}
	if len(dones) == 0 {
		t.Fatal("progress never fired")
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatalf("progress went backwards at delivery %d: %v", i, dones)
		}
	}
	if last := dones[len(dones)-1]; last != 36 {
		t.Fatalf("progress peaked at %d, want 36", last)
	}
}

// RunIndices evaluates a subset of the grid bit-exactly against the
// same points of the full sweep, preserving global indices — and when
// the subset is one whole shape cohort cut at a BatchWidth boundary,
// the batch accounting matches what the full sweep spent on it.
func TestRunIndicesMatchesFullSweep(t *testing.T) {
	axes := []Axis{
		{Name: "stages", Values: []int64{1, 2}},
		{Name: "seed", Values: []int64{1, 2, 3, 4, 5}},
	}
	full, err := Run(axes, didacticGen, Options{Workers: 2, BatchWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Indices 5..9 are the whole stages=2 cohort, in grid order.
	indices := []int{5, 6, 7, 8, 9}
	part, err := RunIndices(axes, indices, didacticGen, Options{Workers: 2, BatchWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Points) != len(indices) {
		t.Fatalf("got %d points, want %d", len(part.Points), len(indices))
	}
	for k, idx := range indices {
		p, f := part.Points[k], full.Points[idx]
		if p.Point.Index != idx {
			t.Fatalf("point %d has grid index %d, want %d", k, p.Point.Index, idx)
		}
		if p.Err != nil {
			t.Fatalf("point %d: %v", idx, p.Err)
		}
		if p.Run.FinalTimeNs != f.Run.FinalTimeNs || p.Run.Iterations != f.Run.Iterations ||
			p.Run.Activations != f.Run.Activations || p.Run.Events != f.Run.Events {
			t.Fatalf("point %d: subset %+v != full %+v", idx, p.Run, f.Run)
		}
	}
	// The cohort of 5 at width 2 cuts into 2+2+1 both ways.
	if part.Stats.Batches != 3 || part.Stats.BatchedPoints != 5 {
		t.Fatalf("batches=%d batched_points=%d, want 3/5",
			part.Stats.Batches, part.Stats.BatchedPoints)
	}
}

// GridSelect rejects out-of-range and duplicate indices — a chunk must
// never evaluate a point twice or a point of another grid.
func TestGridSelectValidation(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3}}}
	if _, err := GridSelect(axes, []int{0, 3}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := GridSelect(axes, []int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := GridSelect(axes, nil); err == nil {
		t.Fatal("empty selection accepted")
	}
	pts, err := GridSelect(axes, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Index != 2 || pts[1].Index != 0 {
		t.Fatalf("indices not preserved in order: %v", pts)
	}
}
