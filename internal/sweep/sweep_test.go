package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

func pipelineGen(xsizeAxis bool) Generator {
	return func(p Point) (*model.Architecture, error) {
		x := int(p.Get("xsize", 6))
		_ = xsizeAxis
		return zoo.Pipeline(zoo.PipelineSpec{
			XSize:  x,
			Tokens: int(p.Get("tokens", 50)),
			Period: maxplus.T(p.Get("period", 600)),
			Seed:   p.Get("seed", 17),
		}), nil
	}
}

func TestGridRowMajor(t *testing.T) {
	pts, err := Grid([]Axis{
		{Name: "a", Values: []int64{1, 2}},
		{Name: "b", Values: []int64{10, 20, 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("grid size %d, want 6", len(pts))
	}
	want := [][2]int64{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if p.Values[0] != want[i][0] || p.Values[1] != want[i][1] {
			t.Fatalf("point %d = %v, want %v", i, p.Values, want[i])
		}
	}
	if v, ok := pts[3].Lookup("b"); !ok || v != 10 {
		t.Fatalf("Lookup(b) on point 3 = %d,%t", v, ok)
	}
	if pts[0].Get("missing", 42) != 42 {
		t.Fatal("Get default not applied")
	}
}

func TestGridRejectsBadAxes(t *testing.T) {
	for name, axes := range map[string][]Axis{
		"empty":     nil,
		"noValues":  {{Name: "a"}},
		"noName":    {{Values: []int64{1}}},
		"duplicate": {{Name: "a", Values: []int64{1}}, {Name: "a", Values: []int64{2}}},
	} {
		if _, err := Grid(axes); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// The acceptance property: identical per-point results regardless of the
// worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	axes := []Axis{
		{Name: "tokens", Values: []int64{20, 40}},
		{Name: "period", Values: []int64{500, 800}},
		{Name: "seed", Values: []int64{1, 2, 3}},
	}
	run := func(workers int) *Result {
		res, err := Run(axes, pipelineGen(false), Options{Workers: workers, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{4, 8} {
		parallel := run(workers)
		if len(parallel.Points) != len(serial.Points) {
			t.Fatalf("point counts differ: %d vs %d", len(parallel.Points), len(serial.Points))
		}
		for i := range serial.Points {
			s, p := serial.Points[i], parallel.Points[i]
			if s.Err != nil || p.Err != nil {
				t.Fatalf("point %d failed: %v / %v", i, s.Err, p.Err)
			}
			if s.Run.Activations != p.Run.Activations ||
				s.Run.Events != p.Run.Events ||
				s.Run.FinalTimeNs != p.Run.FinalTimeNs ||
				s.Run.Iterations != p.Run.Iterations ||
				s.Run.GraphNodes != p.Run.GraphNodes {
				t.Fatalf("point %d stats differ between 1 and %d workers:\n%+v\n%+v",
					i, workers, s.Run, p.Run)
			}
			if err := observe.CompareInstants(s.Trace, p.Trace); err != nil {
				t.Fatalf("point %d instants differ between 1 and %d workers: %v", i, workers, err)
			}
		}
	}
}

// One structural shape swept across 12 parameter points must derive
// exactly once, even under concurrency.
func TestDeriveOncePerShape(t *testing.T) {
	axes := []Axis{
		{Name: "tokens", Values: []int64{10, 20}},
		{Name: "period", Values: []int64{400, 700}},
		{Name: "seed", Values: []int64{5, 6, 7}},
	}
	before := derive.Calls()
	res, err := Run(axes, pipelineGen(false), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 0 {
		t.Fatalf("%d points failed", res.Stats.Failed)
	}
	if got := derive.Calls() - before; got != 1 {
		t.Fatalf("Derive ran %d times for one shape, want 1", got)
	}
	if res.Stats.DeriveCalls != 1 || res.Stats.CacheHits != 11 || res.Stats.Shapes != 1 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// Distinct shapes each derive once.
func TestDerivePerShapeMultiShape(t *testing.T) {
	axes := []Axis{
		{Name: "xsize", Values: []int64{4, 6, 8}},
		{Name: "seed", Values: []int64{1, 2, 3, 4}},
	}
	before := derive.Calls()
	res, err := Run(axes, pipelineGen(true), Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 0 {
		t.Fatalf("%d points failed", res.Stats.Failed)
	}
	if got := derive.Calls() - before; got != 3 {
		t.Fatalf("Derive ran %d times for three shapes, want 3", got)
	}
	if res.Stats.Shapes != 3 || res.Stats.CacheHits != 9 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// Baseline pairing: bit-exact agreement per point and sensible ratios.
func TestBaselinePairing(t *testing.T) {
	axes := []Axis{
		{Name: "tokens", Values: []int64{30}},
		{Name: "seed", Values: []int64{1, 2}},
	}
	res, err := Run(axes, pipelineGen(false), Options{Workers: 2, Baseline: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
		if pr.Baseline == nil {
			t.Fatalf("point %d: no baseline", i)
		}
		if err := observe.CompareInstants(pr.BaselineTrace, pr.Trace); err != nil {
			t.Fatalf("point %d not bit-exact against reference: %v", i, err)
		}
		if pr.EventRatio <= 1 {
			t.Fatalf("point %d: event ratio %.2f, want > 1", i, pr.EventRatio)
		}
		if pr.Baseline.Activations <= pr.Run.Activations {
			t.Fatalf("point %d: equivalent model saved no activations", i)
		}
	}
	if res.Stats.EventRatio.N != 2 || res.Stats.EventRatio.Min <= 1 {
		t.Fatalf("aggregate event ratio: %+v", res.Stats.EventRatio)
	}
	if res.Stats.SpeedUp.N != 2 {
		t.Fatalf("aggregate speed-up: %+v", res.Stats.SpeedUp)
	}
}

func TestReferenceEngine(t *testing.T) {
	axes := []Axis{{Name: "tokens", Values: []int64{10, 20}}}
	before := derive.Calls()
	res, err := Run(axes, pipelineGen(false), Options{Engine: "reference", Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := derive.Calls() - before; got != 0 {
		t.Fatalf("reference sweep derived %d times", got)
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
		if pr.Run.Activations == 0 || pr.Trace == nil {
			t.Fatalf("point %d: empty reference run", i)
		}
	}
}

func TestPointErrorsAreIsolated(t *testing.T) {
	axes := []Axis{{Name: "seed", Values: []int64{0, 1, 2, 3}}}
	bad := errors.New("boom")
	gen := func(p Point) (*model.Architecture, error) {
		if p.Get("seed", 0) == 2 {
			return nil, bad
		}
		return zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 5, Seed: p.Get("seed", 0)}), nil
	}
	res, err := Run(axes, gen, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Stats.Failed)
	}
	for i, pr := range res.Points {
		isBad := pr.Point.Get("seed", 0) == 2
		if isBad && !errors.Is(pr.Err, bad) {
			t.Fatalf("point %d: err = %v, want wrapped boom", i, pr.Err)
		}
		if !isBad && pr.Err != nil {
			t.Fatalf("point %d: unexpected error %v", i, pr.Err)
		}
		if !isBad && pr.Run.Activations == 0 {
			t.Fatalf("point %d did not run", i)
		}
	}
}

// A panicking generator (model builders panic on invalid specs) must be
// confined to its point, not kill the sweep.
func TestPointPanicsAreIsolated(t *testing.T) {
	axes := []Axis{{Name: "stages", Values: []int64{0, 1, 2}}}
	gen := func(p Point) (*model.Architecture, error) {
		return zoo.DidacticChain(int(p.Get("stages", 1)),
			zoo.DidacticSpec{Tokens: 5, Period: 900, Seed: 1}), nil
	}
	res, err := Run(axes, gen, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Stats.Failed)
	}
	if res.Points[0].Err == nil || !strings.Contains(res.Points[0].Err.Error(), "panic") {
		t.Fatalf("stages=0 err = %v, want panic report", res.Points[0].Err)
	}
	for _, pr := range res.Points[1:] {
		if pr.Err != nil || pr.Run.Activations == 0 {
			t.Fatalf("healthy point affected: %+v", pr)
		}
	}
}

// DeriveFor must be able to vary derivation options per point (the
// Fig. 5 pad sweep) without corrupting the cache.
func TestDeriveForPerPoint(t *testing.T) {
	axes := []Axis{{Name: "pad", Values: []int64{0, 8, 16}}}
	gen := func(p Point) (*model.Architecture, error) {
		return zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 10, Seed: 3}), nil
	}
	res, err := Run(axes, gen, Options{
		DeriveFor: func(p Point) derive.Options {
			return derive.Options{PadNodes: int(p.Get("pad", 0))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int]int{}
	for _, pr := range res.Points {
		if pr.Err != nil {
			t.Fatal(pr.Err)
		}
		nodes[pr.Run.GraphNodes]++
	}
	if len(nodes) != 3 {
		t.Fatalf("pad options collapsed: distinct node counts %v", nodes)
	}
	if res.Stats.Shapes != 3 {
		t.Fatalf("padded variants must be distinct cache entries: %d", res.Stats.Shapes)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(nil, pipelineGen(false), Options{}); err == nil {
		t.Fatal("empty axes accepted")
	}
	if _, err := Run([]Axis{{Name: "a", Values: []int64{1}}}, nil, Options{}); err == nil {
		t.Fatal("nil generator accepted")
	}
}

func TestPointString(t *testing.T) {
	pts, err := Grid([]Axis{{Name: "a", Values: []int64{1}}, {Name: "b", Values: []int64{2}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[0].String(); got != "a=1,b=2" {
		t.Fatalf("String() = %q", got)
	}
	if got := fmt.Sprint(pts[0]); got != "a=1,b=2" {
		t.Fatalf("Sprint = %q", got)
	}
}

// Progress fires once per finished point with a monotonic completed
// count, and reaches done == total — also when points fail.
func TestProgressHook(t *testing.T) {
	axes := []Axis{
		{Name: "tokens", Values: []int64{10, 20}},
		{Name: "period", Values: []int64{500, 800, 1100}},
	}
	var mu sync.Mutex
	var dones []int
	res, err := Run(axes, pipelineGen(false), Options{
		Workers: 3,
		Progress: func(done, total int) {
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points != 6 {
		t.Fatalf("points = %d, want 6", res.Stats.Points)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != 6 {
		t.Fatalf("progress fired %d times, want 6", len(dones))
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("completed counts %v, want 1..6", dones)
		}
	}
}

// A cancelled sweep still drives progress to done == total: the
// undispatched tail is counted as it is failed, so streaming consumers
// observe a complete bar before the terminal state.
func TestProgressReachesTotalOnCancel(t *testing.T) {
	axes := []Axis{{Name: "tokens", Values: []int64{10, 20, 30, 40}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Deliveries may be observed out of order; track the max.
	var high atomic.Int64
	_, err := RunContext(ctx, axes, pipelineGen(false), Options{
		Workers: 2,
		Progress: func(done, total int) {
			for {
				cur := high.Load()
				if int64(done) <= cur || high.CompareAndSwap(cur, int64(done)) {
					return
				}
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := high.Load(); got != 4 {
		t.Fatalf("final completed count = %d, want 4", got)
	}
}
