package sweep

import (
	"context"
	"errors"
	"testing"

	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// A context cancelled before the sweep starts must stop everything: no
// point evaluates, every point carries the context error, and RunContext
// returns it with the (all-failed) stats.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3, 4}}}
	res, err := RunContext(ctx, axes, pipelineGen(false), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if res.Stats.Points != 4 || res.Stats.Failed != 4 {
		t.Fatalf("stats = %+v, want 4 points all failed", res.Stats)
	}
	for i, pr := range res.Points {
		if !errors.Is(pr.Err, context.Canceled) {
			t.Fatalf("point %d err = %v, want context.Canceled", i, pr.Err)
		}
	}
}

// Cancelling mid-sweep stops dispatching: already-evaluated points keep
// their results (partial stats), the rest fail with ctx.Err(), and
// RunContext returns ctx.Err(). A single worker makes the dispatch order
// deterministic: the generator cancels while building point 2, so points
// 0 and 1 complete and points 2 and 3 fail.
func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	axes := []Axis{{Name: "seed", Values: []int64{0, 1, 2, 3}}}
	res, err := RunContext(ctx, axes, func(p Point) (*model.Architecture, error) {
		if p.Get("seed", 0) == 2 {
			cancel()
		}
		return zoo.Pipeline(zoo.PipelineSpec{XSize: 4, Tokens: 10, Seed: p.Get("seed", 0)}), nil
	}, Options{Workers: 1, Record: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stats.Points != 4 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	for i, pr := range res.Points[:2] {
		if pr.Err != nil {
			t.Fatalf("completed point %d lost: %v", i, pr.Err)
		}
		if pr.Run.Activations == 0 || pr.Trace == nil {
			t.Fatalf("completed point %d has empty stats: %+v", i, pr.Run)
		}
	}
	for i, pr := range res.Points[2:] {
		if !errors.Is(pr.Err, context.Canceled) {
			t.Fatalf("point %d err = %v, want context.Canceled", i+2, pr.Err)
		}
	}
	if res.Stats.Failed != 2 {
		t.Fatalf("failed = %d, want 2", res.Stats.Failed)
	}
}

// The hybrid engine is a first-class sweep engine: points run with the
// named group abstracted and stay bit-exact against the paired
// reference baseline.
func TestHybridEngineInSweep(t *testing.T) {
	axes := []Axis{
		{Name: "tokens", Values: []int64{20, 35}},
		{Name: "seed", Values: []int64{1, 2}},
	}
	sc, err := zoo.LookupScenario("forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(p Point) (*model.Architecture, error) { return sc.Build(p), nil }
	res, err := Run(axes, gen, Options{
		Workers:  2,
		Engine:   "hybrid",
		Group:    sc.HybridGroup(zoo.ParamMap{}),
		Baseline: true,
		Record:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
		if pr.Run.GraphNodes == 0 {
			t.Fatalf("point %d: hybrid derived no graph", i)
		}
		if err := observe.CompareInstants(pr.BaselineTrace, pr.Trace); err != nil {
			t.Fatalf("point %d not bit-exact: %v", i, err)
		}
	}
	// One sub-architecture shape, derived once, re-bound 3 times.
	if res.Stats.Shapes != 1 || res.Stats.CacheHits != 3 {
		t.Fatalf("hybrid derive sharing broken: %+v", res.Stats)
	}
}

// Regression: an axis that changes the architecture's structure (the
// fork-join worker count) changes the hybrid group with it, so the
// group must be resolved per point via Options.GroupFor — a single
// static group would only fit the first worker count.
func TestHybridGroupResolvedPerPoint(t *testing.T) {
	sc, err := zoo.LookupScenario("forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	axes := []Axis{
		{Name: "workers", Values: []int64{2, 3, 4}},
		{Name: "tokens", Values: []int64{15}},
	}
	res, err := Run(axes, func(p Point) (*model.Architecture, error) { return sc.Build(p), nil }, Options{
		Engine:   "hybrid",
		GroupFor: func(p Point) []string { return sc.HybridGroup(p) },
		Record:   true,
		Baseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d (%s): %v", i, pr.Point, pr.Err)
		}
		if err := observe.CompareInstants(pr.BaselineTrace, pr.Trace); err != nil {
			t.Fatalf("point %d not bit-exact: %v", i, err)
		}
	}
	// Three worker counts are three distinct sub-architecture shapes.
	if res.Stats.Shapes != 3 {
		t.Fatalf("shapes = %d, want 3", res.Stats.Shapes)
	}
}

// An unknown engine name is unusable input, reported before any point
// runs.
func TestUnknownEngineName(t *testing.T) {
	axes := []Axis{{Name: "a", Values: []int64{1}}}
	if _, err := Run(axes, pipelineGen(false), Options{Engine: "warp-drive"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
