package archjson

import (
	"fmt"
	"math"
	"sort"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// Params is a named-integer parameter binding, structurally identical
// to zoo.Params so sweep points and zoo.ParamMap values bind directly.
type Params interface {
	Lookup(name string) (int64, bool)
}

// ParamNames returns the spec's declared parameter names, sorted.
func (s *Spec) ParamNames() []string {
	names := make([]string, 0, len(s.Parameters))
	for i := range s.Parameters {
		names = append(names, s.Parameters[i].Name)
	}
	sort.Strings(names)
	return names
}

// CheckParams rejects bindings that name parameters the spec does not
// declare, mirroring zoo.CheckParams so typos fail loudly instead of
// silently falling back to defaults.
func (s *Spec) CheckParams(p map[string]int64) error {
	declared := map[string]bool{}
	for i := range s.Parameters {
		declared[s.Parameters[i].Name] = true
	}
	var bad []string
	for name := range p {
		if !declared[name] {
			bad = append(bad, name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	known := s.ParamNames()
	if len(known) == 0 {
		return errf(CodeInvalid, "architecture %q declares no parameters, got %v", s.Name, bad)
	}
	return errf(CodeInvalid, "architecture %q: unknown parameter(s) %v (declared: %v)", s.Name, bad, known)
}

// binding resolves the spec's parameters under p (nil p: all defaults).
func (s *Spec) bindingFor(p Params) binding {
	b := make(binding, len(s.Parameters))
	for i := range s.Parameters {
		par := &s.Parameters[i]
		v := par.Default
		if p != nil {
			if pv, ok := p.Lookup(par.Name); ok {
				v = pv
			}
		}
		b[par.Name] = float64(v)
	}
	return b
}

// CanonicalGroup returns the spec's canonical abstraction group for
// the hybrid engine: the group named "hybrid" when present, else the
// sole declared group, else nil (hybrid not runnable without an
// explicit group).
func (s *Spec) CanonicalGroup() []string {
	for i := range s.Groups {
		if s.Groups[i].Name == "hybrid" {
			return append([]string(nil), s.Groups[i].Functions...)
		}
	}
	if len(s.Groups) == 1 {
		return append([]string(nil), s.Groups[0].Functions...)
	}
	return nil
}

// Build resolves the spec under the parameter binding p (nil: declared
// defaults) into a validated model.Architecture. Failures — including
// resolved-value violations the structural Check cannot see, and
// anything model.Validate rejects — come back as *Error with
// CodeInvalid. Build never panics.
func (s *Spec) Build(p Params) (a *model.Architecture, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, errf(CodeInvalid, "architecture %q does not build: %v", s.Name, r)
		}
	}()
	if err := s.Check(); err != nil {
		return nil, err
	}
	b := s.bindingFor(p)

	a = model.NewArchitecture(s.Name)
	channels := make(map[string]*model.Channel, len(s.Channels))
	for i := range s.Channels {
		c := &s.Channels[i]
		kind := model.Rendezvous
		if c.Kind == KindFIFO {
			kind = model.FIFO
		}
		channels[c.Name] = a.AddChannel(c.Name, kind, c.Capacity)
	}
	functions := make(map[string]*model.Function, len(s.Functions))
	for i := range s.Functions {
		f := &s.Functions[i]
		body := make([]model.Stmt, 0, len(f.Body))
		for j := range f.Body {
			st := &f.Body[j]
			switch {
			case st.Read != "":
				body = append(body, model.Read{Ch: channels[st.Read]})
			case st.Write != "":
				body = append(body, model.Write{Ch: channels[st.Write]})
			default:
				cost, err := st.Exec.Cost.costFn(b)
				if err != nil {
					return nil, errf(CodeInvalid, "function %q statement %d: %v", f.Name, j, err)
				}
				label := st.Exec.Label
				if label == "" {
					label = fmt.Sprintf("%s_e%d", f.Name, j)
				}
				body = append(body, model.Exec{Label: label, Cost: cost})
			}
		}
		functions[f.Name] = a.AddFunction(f.Name, body...)
	}
	for i := range s.Resources {
		r := &s.Resources[i]
		speed := r.OpsPerSec.resolve(b, 0)
		if !(speed > 0) || math.IsInf(speed, 0) {
			return nil, errf(CodeInvalid, "resource %q: ops_per_sec resolves to %g (must be a positive finite number)", r.Name, speed)
		}
		var res *model.Resource
		if r.Kind == KindHardware {
			res = a.AddHardware(r.Name, speed)
		} else {
			res = a.AddProcessor(r.Name, speed)
		}
		for j := range s.Mapping {
			m := &s.Mapping[j]
			if m.Resource != r.Name {
				continue
			}
			fns := make([]*model.Function, len(m.Functions))
			for k, name := range m.Functions {
				fns[k] = functions[name]
			}
			a.Map(res, fns...)
		}
	}
	for i := range s.Sources {
		src := &s.Sources[i]
		count := src.Count.resolve(b, 0)
		if count != math.Trunc(count) || count < 1 || count > maxCount {
			return nil, errf(CodeInvalid, "source %q: count resolves to %g (must be an integer in [1, %d])", src.Name, count, maxCount)
		}
		sched, err := src.Schedule.scheduleFn(src.Name, b)
		if err != nil {
			return nil, err
		}
		tokens, err := src.Tokens.tokenFn(src.Name, b)
		if err != nil {
			return nil, err
		}
		a.AddSource(src.Name, channels[src.Channel], sched, tokens, int(count))
	}
	for i := range s.Sinks {
		sk := &s.Sinks[i]
		a.AddSink(sk.Name, channels[sk.Channel])
	}
	if err := a.Validate(); err != nil {
		return nil, errf(CodeInvalid, "architecture %q does not validate: %v", s.Name, err)
	}
	return a, nil
}

// costFn compiles a cost declaration under a binding. Table costs are
// keyed on the token's iteration index K, which every engine stamps at
// the source, so tables are engine-uniform by construction.
func (c *Cost) costFn(b binding) (model.CostFn, error) {
	switch c.Kind {
	case CostFixed:
		ops := c.Ops.resolve(b, 0)
		if ops < 0 {
			return nil, fmt.Errorf("fixed cost ops resolves to %g (must be >= 0)", ops)
		}
		return model.FixedOps(ops), nil
	case CostPerByte:
		base := c.Base.resolve(b, 0)
		per := c.PerByte.resolve(b, 0)
		if base < 0 || per < 0 {
			return nil, fmt.Errorf("per_byte cost resolves to base %g per_byte %g (must be >= 0)", base, per)
		}
		return model.OpsPerByte(base, per), nil
	default: // CostTable, by Check
		table := c.Table
		return func(t model.Token) model.Load {
			return model.Load{Ops: table[clampIndex(t.K, len(table))]}
		}, nil
	}
}

// scheduleFn compiles a schedule declaration (nil: eager).
func (sc *Schedule) scheduleFn(source string, b binding) (model.ScheduleFn, error) {
	if sc == nil {
		return model.Eager(), nil
	}
	switch sc.Kind {
	case ScheduleEager:
		return model.Eager(), nil
	case SchedulePeriodic:
		period := sc.Period.resolve(b, 0)
		offset := sc.Offset.resolve(b, 0)
		if period != math.Trunc(period) || period < 0 || offset != math.Trunc(offset) || offset < 0 {
			return nil, errf(CodeInvalid, "source %q: periodic schedule resolves to period %g offset %g (must be nonnegative integers)", source, period, offset)
		}
		return model.Periodic(maxplus.T(period), maxplus.T(offset)), nil
	default: // ScheduleTable, by Check
		table := sc.Table
		return func(k int) maxplus.T {
			return maxplus.T(table[clampIndex(k, len(table))])
		}, nil
	}
}

// scalarFn compiles one per-iteration value stream.
func (sc *Scalar) scalarFn(where string, b binding) (func(k int) float64, error) {
	switch sc.Kind {
	case ScalarFixed:
		v := sc.Value.resolve(b, 0)
		return func(int) float64 { return v }, nil
	case ScalarStream:
		seed := sc.Seed.resolve(b, 0)
		min := sc.Min.resolve(b, 0)
		span := sc.Span.resolve(b, 1)
		for _, f := range []struct {
			name string
			v    float64
		}{{"seed", seed}, {"min", min}, {"span", span}} {
			if f.v != math.Trunc(f.v) {
				return nil, errf(CodeInvalid, "%s: stream %s resolves to %g (must be an integer)", where, f.name, f.v)
			}
		}
		if span < 1 {
			return nil, errf(CodeInvalid, "%s: stream span resolves to %g (must be >= 1)", where, span)
		}
		stream := workload.SizeStream(int64(seed), int64(min), int64(span))
		return func(k int) float64 { return float64(stream(k)) }, nil
	default: // ScalarTable, by Check
		table := sc.Table
		return func(k int) float64 {
			return table[clampIndex(k, len(table))]
		}, nil
	}
}

// tokenFn compiles the token generator (nil: size-0 tokens).
func (t *Tokens) tokenFn(source string, b binding) (model.TokenFn, error) {
	if t == nil {
		return func(k int) model.Token { return model.Token{K: k} }, nil
	}
	var size func(k int) float64
	if t.Size != nil {
		var err error
		size, err = t.Size.scalarFn(fmt.Sprintf("source %q token size", source), b)
		if err != nil {
			return nil, err
		}
	}
	attrs := make([]func(k int) float64, len(t.Attrs))
	for i := range t.Attrs {
		fn, err := t.Attrs[i].scalarFn(fmt.Sprintf("source %q token attr %d", source, i), b)
		if err != nil {
			return nil, err
		}
		attrs[i] = fn
	}
	return func(k int) model.Token {
		tok := model.Token{K: k}
		if size != nil {
			tok.Size = int64(size(k))
		}
		if len(attrs) > 0 {
			tok.Attrs = make([]float64, len(attrs))
			for i, fn := range attrs {
				tok.Attrs[i] = fn(k)
			}
		}
		return tok
	}, nil
}

// clampIndex clamps k into [0, n): iterations beyond a table's end
// repeat its last entry, matching how steady-state extension works
// elsewhere (and keeping exported finite tables total functions).
func clampIndex(k, n int) int {
	if k < 0 {
		return 0
	}
	if k >= n {
		return n - 1
	}
	return k
}

// CostMetrics is the analytic platform cost of one parameter binding,
// summed over the declared per-parameter cost models.
type CostMetrics struct {
	Area     float64
	Power    float64
	HasArea  bool // at least one parameter declares an area model
	HasPower bool // at least one parameter declares a power model
}

// EvalCost evaluates the spec's declared area/power models under p.
func (s *Spec) EvalCost(p Params) (CostMetrics, error) {
	var m CostMetrics
	b := s.bindingFor(p)
	for i := range s.Parameters {
		par := &s.Parameters[i]
		v := b[par.Name]
		if par.Area != nil {
			c, err := par.Area.eval(par.Name, "area", v)
			if err != nil {
				return CostMetrics{}, err
			}
			m.Area += c
			m.HasArea = true
		}
		if par.Power != nil {
			c, err := par.Power.eval(par.Name, "power", v)
			if err != nil {
				return CostMetrics{}, err
			}
			m.Power += c
			m.HasPower = true
		}
	}
	return m, nil
}

func (cm *CostModel) eval(param, which string, v float64) (float64, error) {
	exp := cm.Exp
	if exp == 0 {
		exp = 1
	}
	c := cm.Base + cm.Scale*math.Pow(v, exp)
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, errf(CodeInvalid, "parameter %q: %s cost is not finite at value %g", param, which, v)
	}
	return c, nil
}
