package archjson

import (
	"encoding/json"

	"dyncomp/internal/model"
)

// Export turns a compiled-in architecture into a version-1 spec that
// Decode+Build reproduce bit-exact: structure is copied field for
// field, while Go closures (costs, schedules, token streams) — which
// cannot be introspected — are tabulated over the finite iteration
// range and compacted back to a closed form when one fits (all-equal
// cost → fixed, affine schedule → periodic/eager, all-equal scalar →
// fixed). Tabulated costs are evaluated through the same
// ExecInfo.Load path the engines use, so the emitted table is by
// construction the sequence of operation counts every engine would
// compute.
//
// Export requires every source count to be at most the table bound
// (65536); larger models have no finite exact tabulation and are
// rejected with CodeInvalid. The exported spec carries no abstraction
// groups (an Architecture does not know its hybrid group); callers
// holding one can append it to Spec.Groups.
func Export(a *model.Architecture) (*Spec, error) {
	if err := a.Validate(); err != nil {
		return nil, errf(CodeInvalid, "architecture %q does not validate: %v", a.Name, err)
	}
	s := &Spec{Version: Version, Name: a.Name}

	for _, ch := range a.Channels {
		c := Channel{Name: ch.Name, Kind: KindRendezvous}
		if ch.Kind == model.FIFO {
			c.Kind, c.Capacity = KindFIFO, ch.Capacity
		}
		s.Channels = append(s.Channels, c)
	}
	for _, f := range a.Functions {
		ef := Function{Name: f.Name}
		for i, st := range f.Body {
			switch stmt := st.(type) {
			case model.Read:
				ef.Body = append(ef.Body, Stmt{Read: stmt.Ch.Name})
			case model.Write:
				ef.Body = append(ef.Body, Stmt{Write: stmt.Ch.Name})
			case model.Exec:
				cost, err := exportCost(a, f, i)
				if err != nil {
					return nil, err
				}
				ef.Body = append(ef.Body, Stmt{Exec: &Exec{Label: stmt.Label, Cost: cost}})
			default:
				return nil, errf(CodeInvalid, "function %q statement %d: unknown statement type %T", f.Name, i, st)
			}
		}
		s.Functions = append(s.Functions, ef)
	}
	for _, r := range a.Resources {
		kind := KindProcessor
		if r.Kind == model.Hardware {
			kind = KindHardware
		}
		s.Resources = append(s.Resources, Resource{Name: r.Name, Kind: kind, OpsPerSec: Num(r.OpsPerSec)})
		if len(r.Rotation) > 0 {
			m := Mapping{Resource: r.Name}
			for _, f := range r.Rotation {
				m.Functions = append(m.Functions, f.Name)
			}
			s.Mapping = append(s.Mapping, m)
		}
	}
	for _, src := range a.Sources {
		if src.Count > maxTableLen {
			return nil, errf(CodeInvalid, "source %q: %d tokens exceed the exportable table bound %d", src.Name, src.Count, maxTableLen)
		}
		sched, err := exportSchedule(src)
		if err != nil {
			return nil, err
		}
		s.Sources = append(s.Sources, Source{
			Name:     src.Name,
			Channel:  src.Ch.Name,
			Count:    Num(float64(src.Count)),
			Schedule: sched,
			Tokens:   exportTokens(src),
		})
	}
	for _, sk := range a.Sinks {
		s.Sinks = append(s.Sinks, Sink{Name: sk.Name, Channel: sk.Ch.Name})
	}
	if err := s.Check(); err != nil {
		return nil, errf(CodeInvalid, "architecture %q does not re-check after export: %v", a.Name, err)
	}
	return s, nil
}

// Marshal encodes a spec as indented JSON.
func Marshal(s *Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, errf(CodeInvalid, "encoding architecture %q: %v", s.Name, err)
	}
	return data, nil
}

// exportCost tabulates the operation counts of one Exec statement over
// the iteration range of its provenance source, via the exact
// ExecInfo.Load path the engines evaluate.
func exportCost(a *model.Architecture, f *model.Function, stmtIndex int) (Cost, error) {
	info, err := a.ExecInfoOf(f, stmtIndex)
	if err != nil {
		return Cost{}, errf(CodeInvalid, "function %q statement %d: %v", f.Name, stmtIndex, err)
	}
	src, err := provenanceSource(a, f, stmtIndex)
	if err != nil {
		return Cost{}, err
	}
	if src.Count > maxTableLen {
		return Cost{}, errf(CodeInvalid, "function %q statement %d: source %q's %d tokens exceed the exportable table bound %d",
			f.Name, stmtIndex, src.Name, src.Count, maxTableLen)
	}
	table := make([]float64, src.Count)
	allEqual := true
	for k := range table {
		table[k] = info.Load(k).Ops
		allEqual = allEqual && table[k] == table[0]
	}
	if allEqual {
		return Cost{Kind: CostFixed, Ops: Num(table[0])}, nil
	}
	return Cost{Kind: CostTable, Table: table}, nil
}

// provenanceSource resolves the source feeding the last Read preceding
// stmtIndex in f's body, walking last-read-before-write chains exactly
// like model.ExecInfoOf does (via exported fields only).
func provenanceSource(a *model.Architecture, f *model.Function, stmtIndex int) (*model.Source, error) {
	var prov *model.Channel
	for i := 0; i < stmtIndex; i++ {
		if r, ok := f.Body[i].(model.Read); ok {
			prov = r.Ch
		}
	}
	if prov == nil {
		return nil, errf(CodeInvalid, "function %q statement %d has no preceding read", f.Name, stmtIndex)
	}
	seen := map[*model.Channel]bool{}
	cur := prov
	for cur.Source == nil {
		if seen[cur] {
			return nil, errf(CodeInvalid, "token provenance cycle through channel %q", prov.Name)
		}
		seen[cur] = true
		var last *model.Channel
		done := false
		for _, st := range cur.WriterFunc.Body {
			switch stmt := st.(type) {
			case model.Read:
				last = stmt.Ch
			case model.Write:
				done = stmt.Ch == cur
			}
			if done {
				break
			}
		}
		if last == nil {
			return nil, errf(CodeInvalid, "channel %q is written before any read; provenance undefined", cur.Name)
		}
		cur = last
	}
	return cur.Source, nil
}

// exportSchedule tabulates u(k) over the source's range and compacts:
// all zero → eager, affine nondecreasing → periodic, else a table.
func exportSchedule(src *model.Source) (*Schedule, error) {
	n := src.Count
	table := make([]int64, n)
	for k := range table {
		u := int64(src.Schedule(k))
		if u < 0 {
			return nil, errf(CodeInvalid, "source %q: schedule instant u(%d)=%d is negative; not exportable", src.Name, k, u)
		}
		table[k] = u
	}
	allZero := true
	for _, u := range table {
		allZero = allZero && u == 0
	}
	if allZero {
		return nil, nil // the default: eager
	}
	if n == 1 {
		return &Schedule{Kind: SchedulePeriodic, Period: Num(0), Offset: Num(float64(table[0]))}, nil
	}
	d := table[1] - table[0]
	affine := d >= 0
	for k := 2; affine && k < n; k++ {
		affine = table[k]-table[k-1] == d
	}
	if affine {
		return &Schedule{Kind: SchedulePeriodic, Period: Num(float64(d)), Offset: Num(float64(table[0]))}, nil
	}
	for k := 1; k < n; k++ {
		if table[k] < table[k-1] {
			return nil, errf(CodeInvalid, "source %q: schedule instants decrease at k=%d; not exportable", src.Name, k)
		}
	}
	return &Schedule{Kind: ScheduleTable, Table: table}, nil
}

// exportTokens tabulates the source's token sizes and attributes.
// These carry no bit-exactness weight (exported costs are tables over
// the iteration index), but keep the spec a faithful description.
func exportTokens(src *model.Source) *Tokens {
	n := src.Count
	sizes := make([]float64, n)
	maxAttrs := 0
	toks := make([]model.Token, n)
	for k := 0; k < n; k++ {
		toks[k] = src.Tokens(k)
		sizes[k] = float64(toks[k].Size)
		if len(toks[k].Attrs) > maxAttrs {
			maxAttrs = len(toks[k].Attrs)
		}
	}
	t := &Tokens{Size: compactScalar(sizes)}
	for i := 0; i < maxAttrs; i++ {
		vals := make([]float64, n)
		for k := 0; k < n; k++ {
			vals[k] = toks[k].Attr(i)
		}
		sc := compactScalar(vals)
		if sc == nil {
			sc = &Scalar{Kind: ScalarFixed, Value: Num(0)}
		}
		t.Attrs = append(t.Attrs, *sc)
	}
	if t.Size == nil && len(t.Attrs) == 0 {
		return nil
	}
	return t
}

// compactScalar emits the shortest exact scalar: nil for all-zero,
// fixed for all-equal, a table otherwise.
func compactScalar(vals []float64) *Scalar {
	allEqual := true
	for _, v := range vals {
		allEqual = allEqual && v == vals[0]
	}
	if allEqual {
		if len(vals) == 0 || vals[0] == 0 {
			return nil
		}
		return &Scalar{Kind: ScalarFixed, Value: Num(vals[0])}
	}
	return &Scalar{Kind: ScalarTable, Table: vals}
}
