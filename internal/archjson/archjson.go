// Package archjson is the open, versioned JSON model format: a
// declarative architecture specification that decodes — through strict
// validation — into a model.Architecture, plus an exporter that turns
// any compiled-in architecture back into a spec. It is what lets the
// serving layer evaluate models it has never seen: the paper's whole
// point is fast evaluation of *arbitrary* multi-core designs, and a
// service that only runs compiled-in scenarios caps that at whatever
// was hard-coded.
//
// A version-1 spec mirrors model.Architecture one to one: channels
// (rendezvous or bounded FIFO), functions with cyclic read/exec/write
// bodies, processor/hardware resources with a speed, the mapping
// rotation, sources with schedules and token generators, sinks, and
// optional abstraction groups for the hybrid engine. On top of the
// structural mirror it adds what a design-space explorer needs:
// declared sweepable parameters. Any numeric field may be written as
// "$name" instead of a literal; Build resolves the reference against
// the caller's parameter binding (a sweep point, an optimizer
// candidate) falling back to the declared default. Parameters may also
// declare lumos-style area/power cost models, which EvalCost turns
// into analytic platform-cost metrics — the constraint vocabulary of
// the optimizer (internal/optimize).
//
// Costs, schedules and token streams come in two flavors: compact
// closed forms (fixed, per_byte, periodic, stream) for hand-written
// specs, and explicit per-iteration tables — what Export emits, since
// a Go closure cannot be introspected. Tables are exact: every
// operation count, instant and token attribute is a float64/int64 that
// round-trips through JSON bit for bit, so an exported scenario
// re-imported through Decode produces bit-exact evolution instants on
// every engine (the round-trip property test holds all zoo scenarios
// to that).
//
// Decode is fuzz-hardened: it never panics, bounds every dimension of
// the input (spec bytes, element counts, body lengths, table sizes)
// and reports failures as structured *Error values with stable codes,
// which the serving layer maps onto its HTTP error contract.
package archjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Size and cardinality bounds enforced by Decode, so a hostile spec is
// rejected with a structured error instead of exhausting memory.
const (
	// MaxSpecBytes bounds the encoded spec (matches the serving layer's
	// request-body cap).
	MaxSpecBytes = 1 << 20
	// maxElems bounds every top-level element list (channels, functions,
	// resources, sources, sinks, groups, parameters, mapping entries).
	maxElems = 4096
	// maxBodyStmts bounds one function body.
	maxBodyStmts = 1024
	// maxTableLen bounds one cost/schedule/token table and one declared
	// parameter value list.
	maxTableLen = 1 << 16
	// maxCount bounds a source's resolved token count.
	maxCount = 100_000_000
)

// Error codes, stable across releases: the serving layer relays them
// (and its tests pin them), so they are part of the wire contract.
const (
	// CodeInvalid reports a spec that is malformed JSON, violates the
	// schema, or fails model validation.
	CodeInvalid = "invalid_architecture"
	// CodeVersion reports a spec whose version field is not a version
	// this package reads.
	CodeVersion = "unsupported_version"
	// CodeTooLarge reports a spec exceeding MaxSpecBytes.
	CodeTooLarge = "architecture_too_large"
)

// Error is the structured decode/build failure: a stable
// machine-readable code plus a human-readable message. Every error
// returned by Decode, Build, EvalCost and Export is one of these.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// ErrCode extracts the stable code of an archjson error ("" for any
// other error), so callers can branch without unwrapping.
func ErrCode(err error) string {
	if e, ok := err.(*Error); ok {
		return e.Code
	}
	return ""
}

// Spec is a version-1 architecture specification. The zero value is
// not usable; obtain one from Decode or Export, or fill every section
// and call Check.
type Spec struct {
	Version    int         `json:"version"`
	Name       string      `json:"name"`
	Parameters []Parameter `json:"parameters,omitempty"`
	Channels   []Channel   `json:"channels,omitempty"`
	Functions  []Function  `json:"functions,omitempty"`
	Resources  []Resource  `json:"resources,omitempty"`
	Mapping    []Mapping   `json:"mapping,omitempty"`
	Sources    []Source    `json:"sources,omitempty"`
	Sinks      []Sink      `json:"sinks,omitempty"`
	Groups     []Group     `json:"groups,omitempty"`
}

// Parameter declares one named sweepable knob: numeric fields written
// as "$name" resolve to the caller's binding of this parameter (or
// Default). Values, when present, declare the parameter's design-space
// candidates — the axes the optimizer explores. Area and Power attach
// lumos-style analytic cost models evaluated by EvalCost.
type Parameter struct {
	Name    string     `json:"name"`
	Default int64      `json:"default"`
	Values  []int64    `json:"values,omitempty"`
	Area    *CostModel `json:"area,omitempty"`
	Power   *CostModel `json:"power,omitempty"`
}

// CostModel is an analytic per-parameter platform-cost contribution:
// Base + Scale·value^Exp, with Exp defaulting to 1 when zero. Negative
// or fractional exponents (e.g. power ∝ 1/period) require a positive
// parameter value.
type CostModel struct {
	Base  float64 `json:"base,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Exp   float64 `json:"exp,omitempty"`
}

// Channel kinds and resource kinds on the wire.
const (
	KindRendezvous = "rendezvous"
	KindFIFO       = "fifo"
	KindProcessor  = "processor"
	KindHardware   = "hardware"
)

// Channel declares one point-to-point channel.
type Channel struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // "rendezvous" | "fifo"
	Capacity int    `json:"capacity,omitempty"`
}

// Function declares one application function and its cyclic body.
type Function struct {
	Name string `json:"name"`
	Body []Stmt `json:"body"`
}

// Stmt is one body statement; exactly one of the three fields must be
// set: {"read": "ch"}, {"write": "ch"} or {"exec": {...}}.
type Stmt struct {
	Read  string `json:"read,omitempty"`
	Write string `json:"write,omitempty"`
	Exec  *Exec  `json:"exec,omitempty"`
}

// Exec declares one execute statement.
type Exec struct {
	Label string `json:"label,omitempty"`
	Cost  Cost   `json:"cost"`
}

// Cost kinds.
const (
	CostFixed   = "fixed"    // Ops operations regardless of the token
	CostPerByte = "per_byte" // Base + PerByte·token size
	CostTable   = "table"    // Table[k] operations at iteration k
)

// Cost declares the operation count of one execute statement.
type Cost struct {
	Kind    string    `json:"kind"`
	Ops     *Expr     `json:"ops,omitempty"`
	Base    *Expr     `json:"base,omitempty"`
	PerByte *Expr     `json:"per_byte,omitempty"`
	Table   []float64 `json:"table,omitempty"`
}

// Resource declares one processing resource.
type Resource struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "processor" | "hardware"
	OpsPerSec *Expr  `json:"ops_per_sec"`
}

// Mapping allocates functions to a resource; the function order is the
// static rotation.
type Mapping struct {
	Resource  string   `json:"resource"`
	Functions []string `json:"functions"`
}

// Source declares one environment source.
type Source struct {
	Name     string    `json:"name"`
	Channel  string    `json:"channel"`
	Count    *Expr     `json:"count"`
	Schedule *Schedule `json:"schedule,omitempty"` // nil: eager
	Tokens   *Tokens   `json:"tokens,omitempty"`   // nil: size-0 tokens
}

// Schedule kinds.
const (
	ScheduleEager    = "eager"    // u(k) = 0
	SchedulePeriodic = "periodic" // u(k) = offset + k·period
	ScheduleTable    = "table"    // u(k) = Table[k]
)

// Schedule declares a source's production instants u(k) in
// nanoseconds.
type Schedule struct {
	Kind   string  `json:"kind"`
	Period *Expr   `json:"period,omitempty"`
	Offset *Expr   `json:"offset,omitempty"`
	Table  []int64 `json:"table,omitempty"`
}

// Tokens declares a source's token generator: the payload size and
// optional per-index attributes, each as a scalar stream over the
// iteration index.
type Tokens struct {
	Size  *Scalar  `json:"size,omitempty"`
	Attrs []Scalar `json:"attrs,omitempty"`
}

// Scalar kinds.
const (
	ScalarFixed  = "fixed"  // Value at every iteration
	ScalarStream = "stream" // Min + Hash64(Seed,k) mod Span (workload.SizeStream)
	ScalarTable  = "table"  // Table[k]
)

// Scalar declares one per-iteration value stream.
type Scalar struct {
	Kind  string    `json:"kind"`
	Value *Expr     `json:"value,omitempty"`
	Seed  *Expr     `json:"seed,omitempty"`
	Min   *Expr     `json:"min,omitempty"`
	Span  *Expr     `json:"span,omitempty"`
	Table []float64 `json:"table,omitempty"`
}

// Sink declares one environment sink.
type Sink struct {
	Name    string `json:"name"`
	Channel string `json:"channel"`
}

// Group names a function set for the hybrid engine's partial
// abstraction. The group named "hybrid" (or a sole group) is the
// spec's canonical abstraction group.
type Group struct {
	Name      string   `json:"name"`
	Functions []string `json:"functions"`
}

// Expr is a numeric field of the spec: either a literal number or a
// "$name" reference to a declared parameter, resolved at Build time.
type Expr struct {
	value float64
	param string
}

// Num returns a literal expression.
func Num(v float64) *Expr { return &Expr{value: v} }

// Ref returns a parameter reference expression.
func Ref(name string) *Expr { return &Expr{param: name} }

// UnmarshalJSON accepts a JSON number or a "$name" string.
func (e *Expr) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		if !strings.HasPrefix(s, "$") || len(s) < 2 {
			return fmt.Errorf("string expression %q is not a $parameter reference", s)
		}
		e.param, e.value = s[1:], 0
		return nil
	}
	e.param = ""
	return json.Unmarshal(b, &e.value)
}

// MarshalJSON renders the literal or the "$name" reference.
func (e Expr) MarshalJSON() ([]byte, error) {
	if e.param != "" {
		return json.Marshal("$" + e.param)
	}
	return json.Marshal(e.value)
}

// binding is a resolved parameter assignment.
type binding map[string]float64

// resolve evaluates the expression under a binding. A nil receiver
// resolves to def.
func (e *Expr) resolve(b binding, def float64) float64 {
	if e == nil {
		return def
	}
	if e.param != "" {
		return b[e.param] // decode guarantees the reference is declared
	}
	return e.value
}

// refs appends the expression's parameter reference, if any.
func (e *Expr) refs(out []string) []string {
	if e != nil && e.param != "" {
		return append(out, e.param)
	}
	return out
}
