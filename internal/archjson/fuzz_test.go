package archjson

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeArchitecture is the decoder's panic/OOM wall: whatever the
// bytes, Decode either returns a spec that builds (or fails to build)
// with a structured error, or rejects the input with a structured
// error — never a panic, never an unbounded allocation (every table
// and list is capped before it is walked). CI runs this for a short
// -fuzztime smoke on every push.
func FuzzDecodeArchitecture(f *testing.F) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, seed := range []string{
		``,
		`{`,
		`42`,
		`{"version": 1}`,
		`{"version": 9, "name": "x"}`,
		`{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "fifo"}]}`,
		`{"version": 1, "name": "x", "resources": [{"name": "P", "kind": "processor", "ops_per_sec": "$ghost"}]}`,
		`{"version": 1, "name": "x", "sources": [{"name": "s", "channel": "c", "count": 1e99}]}`,
		`{"version": 1, "name": "x", "functions": [{"name": "F", "body": [{"exec": {"cost": {"kind": "table", "table": [1e308, -1e308]}}}]}]}`,
		`{"version": 1, "name": "x"} trailing`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			if ErrCode(err) == "" {
				t.Fatalf("Decode returned an unstructured error %T: %v", err, err)
			}
			return
		}
		// A decoded spec must marshal, and build must either succeed or
		// fail structured — no panics on any path.
		if _, err := Marshal(spec); err != nil {
			t.Fatalf("Marshal of a decoded spec failed: %v", err)
		}
		if _, err := spec.Build(nil); err != nil && ErrCode(err) == "" {
			t.Fatalf("Build returned an unstructured error %T: %v", err, err)
		}
	})
}
