package archjson_test

import (
	"context"
	"testing"

	"dyncomp/internal/archjson"
	"dyncomp/internal/engine"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"

	// Link every executor and the LTE scenario into the test binary.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
	_ "dyncomp/internal/lte"
)

// Same sizing as the cross-engine property harness: small enough for a
// property-style sweep, each builder picks the parameters it knows.
var testParams = zoo.ParamMap{
	"tokens":  60,
	"symbols": 28,
	"xsize":   5,
	"stages":  2,
	"workers": 3,
	"seed":    3,
}

// The exporter's acceptance property: every registered zoo scenario
// exports to JSON, re-imports through Decode+Build, and the rebuilt
// architecture produces evolution instants bit-exact against the
// compiled-in original on every registered engine. This is what makes
// the open format trustworthy — a spec on the wire is not a lossy
// approximation of the Go model, it *is* the model.
func TestZooRoundTripBitExactOnEveryEngine(t *testing.T) {
	ctx := context.Background()
	ref, err := engine.Lookup("reference")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range zoo.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			orig := sc.Build(testParams)
			spec, err := archjson.Export(orig)
			if err != nil {
				t.Fatalf("Export: %v", err)
			}
			data, err := archjson.Marshal(spec)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			decoded, err := archjson.Decode(data)
			if err != nil {
				t.Fatalf("Decode of exported spec: %v", err)
			}
			refWant, err := ref.Run(ctx, sc.Build(testParams), engine.Options{Record: true})
			if err != nil {
				t.Fatalf("reference on original: %v", err)
			}
			for _, name := range engine.Names() {
				group := sc.GroupFor(name, testParams)
				if name == "hybrid" && group == nil {
					continue // no canonical group to abstract
				}
				eng, err := engine.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := engine.Options{Record: true, AbstractGroup: group}
				want, err := eng.Run(ctx, sc.Build(testParams), opts)
				if err != nil {
					t.Errorf("%s on original %s: %v", name, sc.Name, err)
					continue
				}
				rebuilt, err := decoded.Build(nil)
				if err != nil {
					t.Fatalf("Build of exported spec: %v", err)
				}
				r, err := eng.Run(ctx, rebuilt, opts)
				if err != nil {
					t.Errorf("%s on round-tripped %s: %v", name, sc.Name, err)
					continue
				}
				// Bit-exact against the same engine on the original (final
				// time and iteration count are same-engine semantics), and
				// instant-exact against the reference (the cross-engine
				// anchor).
				if err := observe.CompareInstants(want.Trace, r.Trace); err != nil {
					t.Errorf("%s on round-tripped %s differs from original: %v", name, sc.Name, err)
				}
				if err := observe.CompareInstants(refWant.Trace, r.Trace); err != nil {
					t.Errorf("%s on round-tripped %s differs from reference on original: %v", name, sc.Name, err)
				}
				if r.FinalTimeNs != want.FinalTimeNs || r.Iterations != want.Iterations {
					t.Errorf("%s on round-tripped %s: final %d/%d iters %d/%d differ",
						name, sc.Name, r.FinalTimeNs, want.FinalTimeNs, r.Iterations, want.Iterations)
				}
			}
		})
	}
}
