package archjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Decode parses and validates a version-1 spec. Failures are always a
// *Error with a stable code; Decode never panics, whatever the input.
func Decode(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, errf(CodeTooLarge, "architecture spec is %d bytes (max %d)", len(data), MaxSpecBytes)
	}
	// Probe the version first with a loose decode so an unknown version
	// reports CodeVersion even when the rest of the document uses fields
	// this release does not know.
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, errf(CodeInvalid, "architecture is not a JSON object: %v", err)
	}
	if probe.Version != Version {
		return nil, errf(CodeVersion, "unsupported architecture version %d (this build reads version %d)", probe.Version, Version)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, errf(CodeInvalid, "invalid architecture spec: %v", err)
	}
	if dec.More() {
		return nil, errf(CodeInvalid, "invalid architecture spec: trailing data after JSON object")
	}
	if err := s.Check(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Check validates the spec's structure: bounds, name uniqueness,
// reference resolution, kind/field consistency. It does not resolve
// parameters — resolved-value rules (positive speeds, count bounds)
// are enforced by Build, which knows the binding.
func (s *Spec) Check() error {
	if s.Version != Version {
		return errf(CodeVersion, "unsupported architecture version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return errf(CodeInvalid, "architecture name must not be empty")
	}
	for section, n := range map[string]int{
		"parameters": len(s.Parameters), "channels": len(s.Channels),
		"functions": len(s.Functions), "resources": len(s.Resources),
		"mapping": len(s.Mapping), "sources": len(s.Sources),
		"sinks": len(s.Sinks), "groups": len(s.Groups),
	} {
		if n > maxElems {
			return errf(CodeInvalid, "%s has %d entries (max %d)", section, n, maxElems)
		}
	}
	params := map[string]*Parameter{}
	for i := range s.Parameters {
		p := &s.Parameters[i]
		if p.Name == "" {
			return errf(CodeInvalid, "parameter %d: name must not be empty", i)
		}
		if _, dup := params[p.Name]; dup {
			return errf(CodeInvalid, "duplicate parameter %q", p.Name)
		}
		params[p.Name] = p
		if len(p.Values) > maxTableLen {
			return errf(CodeInvalid, "parameter %q: %d values (max %d)", p.Name, len(p.Values), maxTableLen)
		}
		seen := map[int64]bool{}
		for _, v := range p.Values {
			if seen[v] {
				return errf(CodeInvalid, "parameter %q: duplicate value %d", p.Name, v)
			}
			seen[v] = true
		}
		for _, cm := range []struct {
			name  string
			model *CostModel
		}{{"area", p.Area}, {"power", p.Power}} {
			if cm.model == nil {
				continue
			}
			if err := cm.model.check(p, cm.name); err != nil {
				return err
			}
		}
	}
	refOK := func(where string, e *Expr) error {
		if e == nil || e.param == "" {
			return nil
		}
		if _, ok := params[e.param]; !ok {
			return errf(CodeInvalid, "%s references undeclared parameter %q", where, e.param)
		}
		return nil
	}
	channels := map[string]*Channel{}
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Name == "" {
			return errf(CodeInvalid, "channel %d: name must not be empty", i)
		}
		if _, dup := channels[c.Name]; dup {
			return errf(CodeInvalid, "duplicate channel %q", c.Name)
		}
		channels[c.Name] = c
		switch c.Kind {
		case KindRendezvous:
			if c.Capacity != 0 {
				return errf(CodeInvalid, "channel %q: rendezvous channels take no capacity", c.Name)
			}
		case KindFIFO:
			if c.Capacity < 1 {
				return errf(CodeInvalid, "channel %q: fifo capacity must be >= 1 (got %d)", c.Name, c.Capacity)
			}
		default:
			return errf(CodeInvalid, "channel %q: unknown kind %q (want %q or %q)", c.Name, c.Kind, KindRendezvous, KindFIFO)
		}
	}
	functions := map[string]bool{}
	for i := range s.Functions {
		f := &s.Functions[i]
		if f.Name == "" {
			return errf(CodeInvalid, "function %d: name must not be empty", i)
		}
		if functions[f.Name] {
			return errf(CodeInvalid, "duplicate function %q", f.Name)
		}
		functions[f.Name] = true
		if len(f.Body) == 0 {
			return errf(CodeInvalid, "function %q: body must not be empty", f.Name)
		}
		if len(f.Body) > maxBodyStmts {
			return errf(CodeInvalid, "function %q: body has %d statements (max %d)", f.Name, len(f.Body), maxBodyStmts)
		}
		if f.Body[0].Read == "" {
			return errf(CodeInvalid, "function %q: body must start with a read (the model is read-driven)", f.Name)
		}
		for j := range f.Body {
			st := &f.Body[j]
			set := 0
			for _, on := range []bool{st.Read != "", st.Write != "", st.Exec != nil} {
				if on {
					set++
				}
			}
			if set != 1 {
				return errf(CodeInvalid, "function %q statement %d: exactly one of read/write/exec must be set", f.Name, j)
			}
			switch {
			case st.Read != "":
				if _, ok := channels[st.Read]; !ok {
					return errf(CodeInvalid, "function %q reads unknown channel %q", f.Name, st.Read)
				}
			case st.Write != "":
				if _, ok := channels[st.Write]; !ok {
					return errf(CodeInvalid, "function %q writes unknown channel %q", f.Name, st.Write)
				}
			default:
				where := fmt.Sprintf("function %q statement %d cost", f.Name, j)
				if err := st.Exec.Cost.check(where, refOK); err != nil {
					return err
				}
			}
		}
	}
	resources := map[string]bool{}
	for i := range s.Resources {
		r := &s.Resources[i]
		if r.Name == "" {
			return errf(CodeInvalid, "resource %d: name must not be empty", i)
		}
		if resources[r.Name] {
			return errf(CodeInvalid, "duplicate resource %q", r.Name)
		}
		resources[r.Name] = true
		if r.Kind != KindProcessor && r.Kind != KindHardware {
			return errf(CodeInvalid, "resource %q: unknown kind %q (want %q or %q)", r.Name, r.Kind, KindProcessor, KindHardware)
		}
		if r.OpsPerSec == nil {
			return errf(CodeInvalid, "resource %q: ops_per_sec is required", r.Name)
		}
		if err := checkExpr(fmt.Sprintf("resource %q ops_per_sec", r.Name), r.OpsPerSec, refOK); err != nil {
			return err
		}
	}
	mapped := map[string]string{}
	for i := range s.Mapping {
		m := &s.Mapping[i]
		if !resources[m.Resource] {
			return errf(CodeInvalid, "mapping %d: unknown resource %q", i, m.Resource)
		}
		if len(m.Functions) == 0 {
			return errf(CodeInvalid, "mapping for resource %q allocates no functions", m.Resource)
		}
		if len(m.Functions) > maxElems {
			return errf(CodeInvalid, "mapping for resource %q has %d functions (max %d)", m.Resource, len(m.Functions), maxElems)
		}
		for _, fn := range m.Functions {
			if !functions[fn] {
				return errf(CodeInvalid, "mapping for resource %q allocates unknown function %q", m.Resource, fn)
			}
			if prev, dup := mapped[fn]; dup {
				return errf(CodeInvalid, "function %q mapped to both %q and %q", fn, prev, m.Resource)
			}
			mapped[fn] = m.Resource
		}
	}
	sources := map[string]bool{}
	for i := range s.Sources {
		src := &s.Sources[i]
		if src.Name == "" {
			return errf(CodeInvalid, "source %d: name must not be empty", i)
		}
		if sources[src.Name] {
			return errf(CodeInvalid, "duplicate source %q", src.Name)
		}
		sources[src.Name] = true
		if _, ok := channels[src.Channel]; !ok {
			return errf(CodeInvalid, "source %q feeds unknown channel %q", src.Name, src.Channel)
		}
		if src.Count == nil {
			return errf(CodeInvalid, "source %q: count is required", src.Name)
		}
		if err := checkExpr(fmt.Sprintf("source %q count", src.Name), src.Count, refOK); err != nil {
			return err
		}
		if src.Schedule != nil {
			if err := src.Schedule.check(src.Name, refOK); err != nil {
				return err
			}
		}
		if src.Tokens != nil {
			if src.Tokens.Size != nil {
				if err := src.Tokens.Size.check(fmt.Sprintf("source %q token size", src.Name), refOK); err != nil {
					return err
				}
			}
			if len(src.Tokens.Attrs) > maxElems {
				return errf(CodeInvalid, "source %q: %d token attrs (max %d)", src.Name, len(src.Tokens.Attrs), maxElems)
			}
			for j := range src.Tokens.Attrs {
				if err := src.Tokens.Attrs[j].check(fmt.Sprintf("source %q token attr %d", src.Name, j), refOK); err != nil {
					return err
				}
			}
		}
	}
	for i := range s.Sinks {
		sk := &s.Sinks[i]
		if sk.Name == "" {
			return errf(CodeInvalid, "sink %d: name must not be empty", i)
		}
		if _, ok := channels[sk.Channel]; !ok {
			return errf(CodeInvalid, "sink %q drains unknown channel %q", sk.Name, sk.Channel)
		}
	}
	groups := map[string]bool{}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Name == "" {
			return errf(CodeInvalid, "group %d: name must not be empty", i)
		}
		if groups[g.Name] {
			return errf(CodeInvalid, "duplicate group %q", g.Name)
		}
		groups[g.Name] = true
		if len(g.Functions) == 0 {
			return errf(CodeInvalid, "group %q names no functions", g.Name)
		}
		if len(g.Functions) > maxElems {
			return errf(CodeInvalid, "group %q has %d functions (max %d)", g.Name, len(g.Functions), maxElems)
		}
		for _, fn := range g.Functions {
			if !functions[fn] {
				return errf(CodeInvalid, "group %q names unknown function %q", g.Name, fn)
			}
		}
	}
	return nil
}

func (cm *CostModel) check(p *Parameter, which string) error {
	for _, v := range []float64{cm.Base, cm.Scale, cm.Exp} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errf(CodeInvalid, "parameter %q: %s cost model has a non-finite coefficient", p.Name, which)
		}
	}
	if cm.Exp != 0 && cm.Exp != math.Trunc(cm.Exp) || cm.Exp < 0 {
		// v^exp with fractional or negative exp is only defined for v > 0.
		bad := p.Default <= 0
		for _, v := range p.Values {
			bad = bad || v <= 0
		}
		if bad {
			return errf(CodeInvalid, "parameter %q: %s cost model exponent %g requires strictly positive default and values", p.Name, which, cm.Exp)
		}
	}
	return nil
}

func checkExpr(where string, e *Expr, refOK func(string, *Expr) error) error {
	if e == nil {
		return nil
	}
	if err := refOK(where, e); err != nil {
		return err
	}
	if e.param == "" && (math.IsNaN(e.value) || math.IsInf(e.value, 0)) {
		return errf(CodeInvalid, "%s is not finite", where)
	}
	return nil
}

func (c *Cost) check(where string, refOK func(string, *Expr) error) error {
	switch c.Kind {
	case CostFixed:
		if c.Ops == nil {
			return errf(CodeInvalid, "%s: fixed cost requires ops", where)
		}
		if c.Base != nil || c.PerByte != nil || c.Table != nil {
			return errf(CodeInvalid, "%s: fixed cost takes only ops", where)
		}
		return checkExpr(where+" ops", c.Ops, refOK)
	case CostPerByte:
		if c.Ops != nil || c.Table != nil {
			return errf(CodeInvalid, "%s: per_byte cost takes only base and per_byte", where)
		}
		if err := checkExpr(where+" base", c.Base, refOK); err != nil {
			return err
		}
		return checkExpr(where+" per_byte", c.PerByte, refOK)
	case CostTable:
		if c.Ops != nil || c.Base != nil || c.PerByte != nil {
			return errf(CodeInvalid, "%s: table cost takes only table", where)
		}
		return checkTable(where, c.Table)
	default:
		return errf(CodeInvalid, "%s: unknown cost kind %q", where, c.Kind)
	}
}

func checkTable(where string, t []float64) error {
	if len(t) == 0 {
		return errf(CodeInvalid, "%s: table must not be empty", where)
	}
	if len(t) > maxTableLen {
		return errf(CodeInvalid, "%s: table has %d entries (max %d)", where, len(t), maxTableLen)
	}
	for i, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errf(CodeInvalid, "%s: table entry %d is not finite", where, i)
		}
	}
	return nil
}

func (sc *Schedule) check(source string, refOK func(string, *Expr) error) error {
	where := fmt.Sprintf("source %q schedule", source)
	switch sc.Kind {
	case ScheduleEager:
		if sc.Period != nil || sc.Offset != nil || sc.Table != nil {
			return errf(CodeInvalid, "%s: eager schedule takes no fields", where)
		}
		return nil
	case SchedulePeriodic:
		if sc.Table != nil {
			return errf(CodeInvalid, "%s: periodic schedule takes period and offset only", where)
		}
		if sc.Period == nil {
			return errf(CodeInvalid, "%s: periodic schedule requires period", where)
		}
		if err := checkExpr(where+" period", sc.Period, refOK); err != nil {
			return err
		}
		return checkExpr(where+" offset", sc.Offset, refOK)
	case ScheduleTable:
		if sc.Period != nil || sc.Offset != nil {
			return errf(CodeInvalid, "%s: table schedule takes table only", where)
		}
		if len(sc.Table) == 0 {
			return errf(CodeInvalid, "%s: table must not be empty", where)
		}
		if len(sc.Table) > maxTableLen {
			return errf(CodeInvalid, "%s: table has %d entries (max %d)", where, len(sc.Table), maxTableLen)
		}
		prev := int64(0)
		for i, v := range sc.Table {
			if v < 0 {
				return errf(CodeInvalid, "%s: instant %d is negative", where, i)
			}
			if v < prev {
				return errf(CodeInvalid, "%s: instants must be nondecreasing (entry %d)", where, i)
			}
			prev = v
		}
		return nil
	default:
		return errf(CodeInvalid, "%s: unknown kind %q", where, sc.Kind)
	}
}

func (sc *Scalar) check(where string, refOK func(string, *Expr) error) error {
	switch sc.Kind {
	case ScalarFixed:
		if sc.Seed != nil || sc.Min != nil || sc.Span != nil || sc.Table != nil {
			return errf(CodeInvalid, "%s: fixed scalar takes value only", where)
		}
		return checkExpr(where+" value", sc.Value, refOK)
	case ScalarStream:
		if sc.Value != nil || sc.Table != nil {
			return errf(CodeInvalid, "%s: stream scalar takes seed/min/span only", where)
		}
		if sc.Span == nil {
			return errf(CodeInvalid, "%s: stream scalar requires span", where)
		}
		for _, f := range []struct {
			name string
			e    *Expr
		}{{"seed", sc.Seed}, {"min", sc.Min}, {"span", sc.Span}} {
			if err := checkExpr(where+" "+f.name, f.e, refOK); err != nil {
				return err
			}
		}
		return nil
	case ScalarTable:
		if sc.Value != nil || sc.Seed != nil || sc.Min != nil || sc.Span != nil {
			return errf(CodeInvalid, "%s: table scalar takes table only", where)
		}
		return checkTable(where, sc.Table)
	default:
		return errf(CodeInvalid, "%s: unknown scalar kind %q", where, sc.Kind)
	}
}

// DecodeReader decodes a spec from r, enforcing MaxSpecBytes while
// reading so an over-long stream is cut off, not buffered.
func DecodeReader(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxSpecBytes+1))
	if err != nil {
		return nil, errf(CodeInvalid, "reading architecture spec: %v", err)
	}
	return Decode(data)
}
