package archjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyncomp/internal/zoo"
)

// Every golden fixture under testdata/ decodes, builds under its
// declared defaults, and survives a Marshal → Decode round trip.
func TestGoldenFixturesDecodeAndBuild(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("found %d golden fixtures, want at least 3", len(files))
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			a, err := spec.Build(nil)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if a.Name != spec.Name {
				t.Fatalf("architecture name %q != spec name %q", a.Name, spec.Name)
			}
			out, err := Marshal(spec)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if _, err := Decode(out); err != nil {
				t.Fatalf("re-Decode of Marshal output: %v", err)
			}
		})
	}
}

// The fixture with declared parameters rebinds under explicit values,
// checks bindings, and evaluates its cost models.
func TestSweepableFixtureParameters(t *testing.T) {
	data, err := os.ReadFile("testdata/sweepable.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.ParamNames(), []string{"period", "work"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParamNames = %v, want %v", got, want)
	}
	if err := spec.CheckParams(map[string]int64{"periodd": 1}); err == nil {
		t.Fatal("CheckParams accepted a misspelled parameter")
	}
	a, err := spec.Build(zoo.ParamMap{"period": 500, "work": 200})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sources[0].Schedule(2) != 1000 {
		t.Fatalf("u(2) = %d, want 1000 under period 500", a.Sources[0].Schedule(2))
	}
	m, err := spec.EvalCost(zoo.ParamMap{"period": 500, "work": 200})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasPower || !m.HasArea {
		t.Fatalf("cost metrics missing declared models: %+v", m)
	}
	// power = 2e5/500 + 0.5*200 = 400 + 100; area = 1 + 0.01*200.
	if m.Power != 500 || m.Area != 3 {
		t.Fatalf("EvalCost = %+v, want power 500 area 3", m)
	}
}

// The invalid-case table pins the stable error codes of the decoder:
// structured errors, never panics, and the exact code per failure
// class (the serving layer relays these on the wire).
func TestDecodeInvalidSpecsStableCodes(t *testing.T) {
	valid, err := os.ReadFile("testdata/minimal.json")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		code string
	}{
		{"empty", ``, CodeInvalid},
		{"not json", `{`, CodeInvalid},
		{"json scalar", `42`, CodeInvalid},
		{"missing version", `{"name": "x"}`, CodeVersion},
		{"future version", `{"version": 2, "name": "x"}`, CodeVersion},
		{"unknown field", `{"version": 1, "name": "x", "wibble": 1}`, CodeInvalid},
		{"trailing data", `{"version": 1, "name": "x"} {}`, CodeInvalid},
		{"empty name", `{"version": 1, "name": ""}`, CodeInvalid},
		{"bad expr string", `{"version": 1, "name": "x", "resources": [{"name": "P", "kind": "processor", "ops_per_sec": "fast"}]}`, CodeInvalid},
		{"unknown channel kind", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "mailbox"}]}`, CodeInvalid},
		{"rendezvous with capacity", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous", "capacity": 3}]}`, CodeInvalid},
		{"fifo without capacity", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "fifo"}]}`, CodeInvalid},
		{"duplicate channel", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous"}, {"name": "c", "kind": "rendezvous"}]}`, CodeInvalid},
		{"body not read-first", strings.Replace(string(valid), `{"read": "in"},`, ``, 1), CodeInvalid},
		{"two stmt fields", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous"}], "functions": [{"name": "F", "body": [{"read": "c", "write": "c"}]}]}`, CodeInvalid},
		{"unknown read channel", `{"version": 1, "name": "x", "functions": [{"name": "F", "body": [{"read": "ghost"}]}]}`, CodeInvalid},
		{"unknown cost kind", strings.Replace(string(valid), `"kind": "fixed", "ops": 1000`, `"kind": "quadratic"`, 1), CodeInvalid},
		{"undeclared param ref", strings.Replace(string(valid), `"ops": 1000`, `"ops": "$work"`, 1), CodeInvalid},
		{"decreasing schedule table", `{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous"}], "sources": [{"name": "s", "channel": "c", "count": 2, "schedule": {"kind": "table", "table": [5, 3]}}]}`, CodeInvalid},
		{"unmapped function ref in group", strings.Replace(string(valid), `"sinks"`, `"groups": [{"name": "g", "functions": ["ghost"]}], "sinks"`, 1), CodeInvalid},
		{"oversize", `{"version": 1, "name": "` + strings.Repeat("x", MaxSpecBytes) + `"}`, CodeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.data))
			if err == nil {
				t.Fatal("Decode accepted an invalid spec")
			}
			if got := ErrCode(err); got != tc.code {
				t.Fatalf("code = %q (%v), want %q", got, err, tc.code)
			}
		})
	}
}

// Build-level failures — resolved values the structural check cannot
// see, and model.Validate rejections — also carry CodeInvalid.
func TestBuildInvalidResolutionsStableCodes(t *testing.T) {
	cases := []struct {
		name string
		data string
		p    zoo.ParamMap
	}{
		{
			"zero speed",
			`{"version": 1, "name": "x", "resources": [{"name": "P", "kind": "processor", "ops_per_sec": 0}]}`,
			nil,
		},
		{
			"zero count",
			`{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous"}], "sources": [{"name": "s", "channel": "c", "count": 0}], "sinks": [{"name": "k", "channel": "c"}]}`,
			nil,
		},
		{
			"param-driven zero speed",
			`{"version": 1, "name": "x", "parameters": [{"name": "mhz", "default": 1}], "resources": [{"name": "P", "kind": "processor", "ops_per_sec": "$mhz"}]}`,
			zoo.ParamMap{"mhz": 0},
		},
		{
			// Passes Check but not model.Validate: the channel has a
			// writer and no reader.
			"model validation failure",
			`{"version": 1, "name": "x", "channels": [{"name": "c", "kind": "rendezvous"}], "sources": [{"name": "s", "channel": "c", "count": 1}]}`,
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Decode([]byte(tc.data))
			if err != nil {
				t.Fatalf("Decode rejected the spec before Build: %v", err)
			}
			var p Params
			if tc.p != nil {
				p = tc.p
			}
			if _, err := spec.Build(p); ErrCode(err) != CodeInvalid {
				t.Fatalf("Build err = %v, want code %q", err, CodeInvalid)
			}
		})
	}
}

// CanonicalGroup picks the group named "hybrid", else a sole group.
func TestCanonicalGroup(t *testing.T) {
	s := &Spec{Groups: []Group{{Name: "a", Functions: []string{"F1"}}}}
	if g := s.CanonicalGroup(); len(g) != 1 || g[0] != "F1" {
		t.Fatalf("sole group: %v", g)
	}
	s.Groups = append(s.Groups, Group{Name: "hybrid", Functions: []string{"F2"}})
	if g := s.CanonicalGroup(); len(g) != 1 || g[0] != "F2" {
		t.Fatalf("hybrid group: %v", g)
	}
	s.Groups = []Group{{Name: "a", Functions: []string{"F1"}}, {Name: "b", Functions: []string{"F2"}}}
	if g := s.CanonicalGroup(); g != nil {
		t.Fatalf("ambiguous groups should yield nil, got %v", g)
	}
}
