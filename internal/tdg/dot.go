package tdg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT form, in the style of the
// paper's Fig. 3: solid arcs for zero-delay dependencies, dashed arcs for
// delayed ones annotated with (k-d).
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n")
	for _, n := range g.nodes {
		shape := "ellipse"
		switch n.Kind {
		case Input:
			shape = "invtriangle"
		case Output:
			shape = "doublecircle"
		case Pad:
			shape = "point"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, n.Name, shape)
	}
	for to, arcs := range g.in {
		for _, a := range arcs {
			attr := ""
			if a.Delay > 0 {
				attr = fmt.Sprintf(" [style=dashed label=\"(k-%d)\"]", a.Delay)
			} else if a.Weight.IsIdentity() {
				attr = " [label=\"e\"]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", a.From, to, attr)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
