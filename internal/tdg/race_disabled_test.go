//go:build !race

package tdg

const raceEnabled = false
