// Package tdg implements temporal dependency graphs, the oriented-graph
// form of the (max,+) evolution-instant equations used by the dynamic
// computation method (Section III-C of the paper).
//
// Each node corresponds to one evolution instant x_n(k); each arc carries
// a delay d (the arc references the source node's value at iteration k-d)
// and a weight (a duration, possibly varying with k through data-dependent
// execution times). Traversing the graph in topological order of its
// zero-delay arcs computes all instants of iteration k — the paper's
// ComputeInstant() action — in time linear in the number of arcs and with
// no simulation events.
package tdg

import (
	"fmt"
	"sort"

	"dyncomp/internal/maxplus"
)

// NodeID identifies a node within its graph.
type NodeID int

// NodeKind classifies evolution instants.
type NodeKind int

// Node kinds.
const (
	// Input nodes carry externally supplied instants u_i(k).
	Input NodeKind = iota
	// Intermediate nodes are internal evolution instants x_n(k).
	Intermediate
	// Output nodes are the instants y_j(k) re-emitted as simulation events.
	Output
	// Pad nodes are computationally active but semantically inert; they
	// exist to study the influence of graph size on ComputeInstant cost
	// (Fig. 5 of the paper).
	Pad
)

func (k NodeKind) String() string {
	switch k {
	case Input:
		return "input"
	case Intermediate:
		return "intermediate"
	case Output:
		return "output"
	case Pad:
		return "pad"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// WeightFn returns an arc weight (a duration) for iteration k. Weights
// must be deterministic in k.
type WeightFn func(k int) maxplus.T

// Weight describes an arc weight for evaluation and compilation: the
// identity e, a compile-time constant, or a genuinely k-dependent
// function. The zero value is the identity. Compile inlines identity and
// constant weights into the flat arc table; only varying weights keep an
// indirect call at evaluation time, so builders that know a weight is
// constant (AddConstArc, or derive threading constness through rebinding)
// should say so rather than wrap the constant in a closure.
type Weight struct {
	fn WeightFn
	c  maxplus.T
}

// ConstWeight returns a weight with the same value at every iteration.
func ConstWeight(v maxplus.T) Weight { return Weight{c: v} }

// VaryingWeight wraps a k-dependent weight function; a nil fn is the
// identity.
func VaryingWeight(fn WeightFn) Weight {
	if fn == nil {
		return Weight{}
	}
	return Weight{fn: fn}
}

// IsIdentity reports whether the weight is e (adds nothing).
func (w Weight) IsIdentity() bool { return w.fn == nil && w.c == maxplus.E }

// Const returns the weight's value and true when it is iteration
// independent (identity or constant).
func (w Weight) Const() (maxplus.T, bool) { return w.c, w.fn == nil }

// At returns the weight at iteration k.
func (w Weight) At(k int) maxplus.T {
	if w.fn != nil {
		return w.fn(k)
	}
	return w.c
}

// Apply returns src ⊗ w(k): src unchanged for the identity, the
// saturating (max,+) product otherwise (ε absorbing).
func (w Weight) Apply(src maxplus.T, k int) maxplus.T {
	if w.fn == nil {
		if w.c == maxplus.E {
			return src
		}
		return maxplus.Otimes(src, w.c)
	}
	return maxplus.Otimes(src, w.fn(k))
}

// Node is one evolution instant of the graph.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// Arc is a time dependency: the target instant is at least
// source(k-Delay) ⊗ Weight(k).
type Arc struct {
	From   NodeID
	Delay  int
	Weight Weight // zero value means the identity e (weight 0)
	// Tag is an opaque positive identifier the graph builder may attach
	// to a weighted arc so the weight can later be re-bound to another
	// parameter point of the same structure (see CloneReweighted); 0
	// means untagged.
	Tag int
}

// Graph is a temporal dependency graph under construction or frozen for
// evaluation. Build it with AddInput/AddNode/AddArc and call Freeze once;
// evaluation requires a frozen graph.
type Graph struct {
	Name string

	nodes   []Node
	in      [][]Arc // incoming arcs per node
	inputs  []NodeID
	outputs []NodeID

	frozen   bool
	topo     []NodeID
	maxDelay int
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddInput declares an input node u_i(k). Input order defines the layout
// of the input vector passed to Evaluator.Step.
func (g *Graph) AddInput(name string) NodeID {
	id := g.addNode(name, Input)
	g.inputs = append(g.inputs, id)
	return id
}

// AddNode declares an intermediate, output or pad node. Declaring an
// Output node appends it to the output vector in declaration order.
func (g *Graph) AddNode(name string, kind NodeKind) NodeID {
	if kind == Input {
		panic("tdg: use AddInput for input nodes")
	}
	id := g.addNode(name, kind)
	if kind == Output {
		g.outputs = append(g.outputs, id)
	}
	return id
}

func (g *Graph) addNode(name string, kind NodeKind) NodeID {
	if g.frozen {
		panic("tdg: graph is frozen")
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind})
	g.in = append(g.in, nil)
	return id
}

// AddArc adds the dependency to(k) ≥ from(k-delay) ⊗ w(k). A nil weight
// is the identity e.
func (g *Graph) AddArc(from, to NodeID, delay int, w WeightFn) {
	g.AddWeightedArc(from, to, delay, VaryingWeight(w), 0)
}

// AddTaggedArc is AddArc with a rebinding tag attached to the arc.
func (g *Graph) AddTaggedArc(from, to NodeID, delay int, w WeightFn, tag int) {
	g.AddWeightedArc(from, to, delay, VaryingWeight(w), tag)
}

// AddWeightedArc adds an arc with an explicit weight descriptor and
// rebinding tag; it is the general form behind AddArc/AddTaggedArc/
// AddConstArc.
func (g *Graph) AddWeightedArc(from, to NodeID, delay int, w Weight, tag int) {
	if g.frozen {
		panic("tdg: graph is frozen")
	}
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("tdg: arc references unknown node (%d -> %d)", from, to))
	}
	if delay < 0 {
		panic(fmt.Sprintf("tdg: negative delay %d on arc %s -> %s", delay, g.nodes[from].Name, g.nodes[to].Name))
	}
	if g.nodes[to].Kind == Input {
		panic(fmt.Sprintf("tdg: arc into input node %s", g.nodes[to].Name))
	}
	g.in[to] = append(g.in[to], Arc{From: from, Delay: delay, Weight: w, Tag: tag})
}

// AddConstArc adds an arc with a constant weight, which the compiled
// evaluator inlines into its flat arc table.
func (g *Graph) AddConstArc(from, to NodeID, delay int, w maxplus.T) {
	g.AddWeightedArc(from, to, delay, ConstWeight(w), 0)
}

// AddPadChain appends n pad nodes chained from the given node with
// identity weights; they inflate ComputeInstant cost without changing any
// result (used by the Fig. 5 complexity experiment). It returns the last
// pad node.
func (g *Graph) AddPadChain(from NodeID, n int) NodeID {
	cur := from
	for i := 0; i < n; i++ {
		p := g.AddNode(fmt.Sprintf("pad%d_%d", from, i), Pad)
		g.AddArc(cur, p, 0, nil)
		cur = p
	}
	return cur
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// FilterIncoming removes the incoming arcs of a node for which keep
// returns false, returning how many were removed. It panics on a frozen
// graph.
func (g *Graph) FilterIncoming(to NodeID, keep func(Arc) bool) int {
	if g.frozen {
		panic("tdg: graph is frozen")
	}
	if !g.valid(to) {
		panic(fmt.Sprintf("tdg: unknown node %d", to))
	}
	kept := g.in[to][:0]
	removed := 0
	for _, a := range g.in[to] {
		if keep(a) {
			kept = append(kept, a)
		} else {
			removed++
		}
	}
	g.in[to] = kept
	return removed
}

// Nodes returns the nodes in ID order.
func (g *Graph) Nodes() []Node { return g.nodes }

// Inputs returns the input node IDs in declaration order.
func (g *Graph) Inputs() []NodeID { return g.inputs }

// Outputs returns the output node IDs in declaration order.
func (g *Graph) Outputs() []NodeID { return g.outputs }

// Incoming returns the incoming arcs of a node.
func (g *Graph) Incoming(id NodeID) []Arc { return g.in[id] }

// NodeByName returns the first node with the given name.
func (g *Graph) NodeByName(name string) (Node, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// NodeCount returns the number of graph nodes (inputs, intermediates,
// outputs and pads).
func (g *Graph) NodeCount() int { return len(g.nodes) }

// NodeCountWithDelays counts nodes the way the paper's Table I does:
// every node plus one extra node per distinct delayed reference
// (node, delay>0), which the paper draws as separate x(k-d) nodes.
func (g *Graph) NodeCountWithDelays() int {
	type ref struct {
		from  NodeID
		delay int
	}
	seen := map[ref]bool{}
	for _, arcs := range g.in {
		for _, a := range arcs {
			if a.Delay > 0 {
				seen[ref{a.From, a.Delay}] = true
			}
		}
	}
	return len(g.nodes) + len(seen)
}

// MaxDelay returns the largest arc delay. Valid after Freeze.
func (g *Graph) MaxDelay() int { return g.maxDelay }

// TopoOrder returns the evaluation order fixed by Freeze: a topological
// order of the zero-delay arcs. The caller must not modify it.
func (g *Graph) TopoOrder() []NodeID {
	if !g.frozen {
		panic("tdg: TopoOrder before Freeze")
	}
	return g.topo
}

// Frozen reports whether Freeze has succeeded.
func (g *Graph) Frozen() bool { return g.frozen }

// Freeze validates the graph and fixes the evaluation order. It fails if
// a zero-delay dependency cycle exists (the instantaneous dependency
// matrix A(k,0) would not be nilpotent) or if the graph has no input or
// no output.
func (g *Graph) Freeze() error {
	if g.frozen {
		return nil
	}
	if len(g.inputs) == 0 {
		return fmt.Errorf("tdg: graph %q has no input node", g.Name)
	}
	if len(g.outputs) == 0 {
		return fmt.Errorf("tdg: graph %q has no output node", g.Name)
	}

	// Kahn's algorithm over zero-delay arcs.
	n := len(g.nodes)
	indeg := make([]int, n)
	maxDelay := 0
	for to, arcs := range g.in {
		for _, a := range arcs {
			if a.Delay == 0 {
				indeg[to]++
			} else if a.Delay > maxDelay {
				maxDelay = a.Delay
			}
		}
	}
	ready := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, NodeID(i))
		}
	}
	// Outgoing adjacency for zero-delay arcs.
	outs := make([][]NodeID, n)
	for to, arcs := range g.in {
		for _, a := range arcs {
			if a.Delay == 0 {
				outs[a.From] = append(outs[a.From], NodeID(to))
			}
		}
	}
	var topo []NodeID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		for _, to := range outs[id] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(topo) != n {
		var stuck []string
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				stuck = append(stuck, g.nodes[i].Name)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("tdg: graph %q has a zero-delay dependency cycle through %v", g.Name, stuck)
	}
	g.topo = topo
	g.maxDelay = maxDelay
	g.frozen = true
	return nil
}

// CloneReweighted returns a frozen copy of a frozen graph that shares the
// structural parts (nodes, inputs, outputs, topological order) and carries
// fresh arc slices whose weights are replaced by rw(to, arc). rw returning
// an error aborts the clone. The clone is independently evaluable: derive
// uses it to re-bind one derived structure to many parameter points
// without re-deriving. Constness threads through: an rw returning
// ConstWeight keeps the compiled evaluator's inline fast path on the
// clone.
func (g *Graph) CloneReweighted(rw func(to NodeID, a Arc) (Weight, error)) (*Graph, error) {
	if !g.frozen {
		return nil, fmt.Errorf("tdg: CloneReweighted on unfrozen graph %q", g.Name)
	}
	in := make([][]Arc, len(g.in))
	for to, arcs := range g.in {
		if len(arcs) == 0 {
			continue
		}
		dst := make([]Arc, len(arcs))
		for i, a := range arcs {
			w, err := rw(NodeID(to), a)
			if err != nil {
				return nil, err
			}
			a.Weight = w
			dst[i] = a
		}
		in[to] = dst
	}
	return &Graph{
		Name:     g.Name,
		nodes:    g.nodes,
		in:       in,
		inputs:   g.inputs,
		outputs:  g.outputs,
		frozen:   true,
		topo:     g.topo,
		maxDelay: g.maxDelay,
	}, nil
}
