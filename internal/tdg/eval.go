package tdg

import (
	"fmt"

	"dyncomp/internal/maxplus"
)

// Evaluator executes ComputeInstant() over a frozen graph: each Step(k)
// computes every evolution instant of iteration k from the inputs u(k) and
// the bounded history of previous iterations.
//
// The evaluator keeps one ring buffer per node sized by the graph's
// maximum delay, so memory is O(nodes × (maxDelay+1)) regardless of how
// many iterations are computed.
//
// An evaluator runs in one of two modes with bit-identical results: the
// tree-walking interpreter over the graph's arc lists (NewEvaluator), or
// the flat compiled program of Compile (Program.NewEvaluator), which
// replaces the per-arc pointer chasing and weight closure calls of the
// interpreter with a branch-light pass over packed arrays.
type Evaluator struct {
	g      *Graph
	prog   *Program // non-nil: Step runs the compiled passes
	k      int
	depth  int         // ring depth = maxDelay + 1
	ring   []maxplus.T // ring[node*depth + (k mod depth)]
	outBuf []maxplus.T // reused by Step
}

// NewEvaluator creates an interpreting evaluator over a frozen graph.
func NewEvaluator(g *Graph) (*Evaluator, error) {
	if !g.frozen {
		return nil, fmt.Errorf("tdg: graph %q is not frozen", g.Name)
	}
	depth := g.maxDelay + 1
	ring := make([]maxplus.T, len(g.nodes)*depth)
	for i := range ring {
		ring[i] = maxplus.Epsilon
	}
	return &Evaluator{
		g:      g,
		depth:  depth,
		ring:   ring,
		outBuf: make([]maxplus.T, len(g.outputs)),
	}, nil
}

// Compiled reports whether Step runs the compiled program rather than the
// interpreter.
func (e *Evaluator) Compiled() bool { return e.prog != nil }

// Release returns a compiled evaluator to its program's pool for reuse by
// a later Program.NewEvaluator (sweeps re-run one shape across many
// points; pooling makes those runs allocation-free). The evaluator must
// not be used after Release. Releasing an interpreting evaluator is a
// no-op.
func (e *Evaluator) Release() {
	if e.prog != nil {
		e.prog.release(e)
	}
}

// K returns the index of the next iteration to be computed.
func (e *Evaluator) K() int { return e.k }

// Graph returns the underlying graph.
func (e *Evaluator) Graph() *Graph { return e.g }

// Step computes all evolution instants of the next iteration k from the
// input instants u (one per input node, in declaration order) and returns
// the output instants y(k). The returned slice is reused by the next Step.
//
// Step performs no simulation work: it is the zero-simulation-time
// ComputeInstant() action of the paper.
func (e *Evaluator) Step(u []maxplus.T) ([]maxplus.T, error) {
	if len(u) != len(e.g.inputs) {
		return nil, fmt.Errorf("tdg: %d inputs supplied, graph %q has %d", len(u), e.g.Name, len(e.g.inputs))
	}
	k := e.k
	slot := k % e.depth
	for i, id := range e.g.inputs {
		e.ring[int(id)*e.depth+slot] = u[i]
	}
	if e.prog != nil {
		e.prog.pass(e.ring, k, slot)
	} else {
		e.interpretPass(k, slot)
	}
	for i, id := range e.g.outputs {
		e.outBuf[i] = e.ring[int(id)*e.depth+slot]
	}
	e.k++
	return e.outBuf, nil
}

// interpretPass computes every non-input instant of iteration k by
// walking the graph's arc lists — the reference semantics the compiled
// passes must match bit-exactly.
func (e *Evaluator) interpretPass(k, slot int) {
	for _, id := range e.g.topo {
		n := e.g.nodes[id]
		if n.Kind == Input {
			continue
		}
		acc := maxplus.Epsilon
		for _, a := range e.g.in[id] {
			if a.Delay > k {
				continue // references an iteration before the origin: ε
			}
			src := e.ring[int(a.From)*e.depth+((k-a.Delay)%e.depth)]
			if src == maxplus.Epsilon {
				continue
			}
			v := a.Weight.Apply(src, k)
			if v > acc {
				acc = v
			}
		}
		e.ring[int(id)*e.depth+slot] = acc
	}
}

// Value returns the instant of the given node at the most recently
// computed iteration. It panics if no iteration has been computed.
func (e *Evaluator) Value(id NodeID) maxplus.T {
	if e.k == 0 {
		panic("tdg: Value before first Step")
	}
	return e.ring[int(id)*e.depth+((e.k-1)%e.depth)]
}

// ValuesInto copies the instants of all nodes at the most recently
// computed iteration into dst (which must have NodeCount entries), in node
// ID order.
func (e *Evaluator) ValuesInto(dst []maxplus.T) {
	if e.k == 0 {
		panic("tdg: ValuesInto before first Step")
	}
	if len(dst) != len(e.g.nodes) {
		panic(fmt.Sprintf("tdg: ValuesInto dst size %d, want %d", len(dst), len(e.g.nodes)))
	}
	slot := (e.k - 1) % e.depth
	for i := range e.g.nodes {
		dst[i] = e.ring[i*e.depth+slot]
	}
}

// SeedHistory initialises a fresh evaluator to resume computation at
// iteration startK: the bounded history window (iterations
// startK-maxDelay-1 .. startK-1, clipped at the origin) is filled by
// querying value for every node, and the next Step computes iteration
// startK. value may return maxplus.Epsilon for instants it cannot supply
// (e.g. input nodes); delayed arcs reading them contribute nothing, which
// matches an evolution that never produced the instant.
//
// The adaptive engine uses this to hot-switch a live event-driven
// simulation into the equivalent model: the recorded trace of the
// detailed phase supplies the initial conditions of the temporal
// dependency graph.
func (e *Evaluator) SeedHistory(startK int, value func(id NodeID, k int) maxplus.T) error {
	if e.k != 0 {
		return fmt.Errorf("tdg: SeedHistory on a started evaluator (at iteration %d)", e.k)
	}
	if startK < 0 {
		return fmt.Errorf("tdg: SeedHistory with negative start iteration %d", startK)
	}
	lo := startK - e.depth
	if lo < 0 {
		lo = 0
	}
	for id := range e.g.nodes {
		for k := lo; k < startK; k++ {
			e.ring[id*e.depth+(k%e.depth)] = value(NodeID(id), k)
		}
	}
	e.k = startK
	return nil
}

// Reset rewinds the evaluator to iteration zero and clears all history.
func (e *Evaluator) Reset() {
	e.k = 0
	for i := range e.ring {
		e.ring[i] = maxplus.Epsilon
	}
}

// SetValue overrides the stored instant of a node at iteration k. The
// iteration must already be computed and still within the history window.
// Partial abstraction uses this to replace an output node's provisional
// emission-ready instant y(k) with the observed boundary transfer instant
// once the external reader has taken the token.
func (e *Evaluator) SetValue(id NodeID, k int, v maxplus.T) error {
	if !e.g.valid(id) {
		return fmt.Errorf("tdg: SetValue on unknown node %d", id)
	}
	if k >= e.k || k < 0 {
		return fmt.Errorf("tdg: SetValue(%d) outside computed range [0, %d)", k, e.k)
	}
	if e.k-k > e.depth {
		return fmt.Errorf("tdg: SetValue(%d) outside history window (depth %d, at %d)", k, e.depth, e.k)
	}
	e.ring[int(id)*e.depth+(k%e.depth)] = v
	return nil
}

// ValueAt returns the stored instant of a node at iteration k, which must
// be computed and within the history window.
func (e *Evaluator) ValueAt(id NodeID, k int) (maxplus.T, error) {
	if !e.g.valid(id) {
		return maxplus.Epsilon, fmt.Errorf("tdg: ValueAt on unknown node %d", id)
	}
	if k >= e.k || k < 0 || e.k-k > e.depth {
		return maxplus.Epsilon, fmt.Errorf("tdg: ValueAt(%d) outside window (at %d, depth %d)", k, e.k, e.depth)
	}
	return e.ring[int(id)*e.depth+(k%e.depth)], nil
}

// PeekDelayed evaluates ⊕ over the given arcs for iteration k using only
// already-computed history. Every arc must carry a positive delay not
// exceeding the graph's maximum delay, and iteration k-1 must have been
// computed (or k must be 0). The equivalent model uses this to obtain the
// readiness gate of an input channel before iteration k's inputs exist.
func (e *Evaluator) PeekDelayed(arcs []Arc, k int) (maxplus.T, error) {
	if k > e.k {
		return maxplus.Epsilon, fmt.Errorf("tdg: PeekDelayed(%d) ahead of computed iteration %d", k, e.k)
	}
	acc := maxplus.Epsilon
	for _, a := range arcs {
		if a.Delay < 1 {
			return maxplus.Epsilon, fmt.Errorf("tdg: PeekDelayed requires delayed arcs, got delay %d", a.Delay)
		}
		if a.Delay > k {
			continue
		}
		src := e.ring[int(a.From)*e.depth+((k-a.Delay)%e.depth)]
		if src == maxplus.Epsilon {
			continue
		}
		v := a.Weight.Apply(src, k)
		if v > acc {
			acc = v
		}
	}
	return acc, nil
}
