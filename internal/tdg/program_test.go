package tdg

import (
	"fmt"
	"math/rand"
	"testing"

	"dyncomp/internal/maxplus"
)

// randomGraph builds a frozen random DAG (on zero-delay arcs) exercising
// every arc flavour the compiler specializes: identity, constant and
// k-varying weights, zero and positive delays, multi-input, pad chains
// (the copy-node fast path) and nodes with no incoming arcs.
func randomGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := New(fmt.Sprintf("random%d", seed))
	nIn := 1 + r.Intn(3)
	var ids []NodeID
	for i := 0; i < nIn; i++ {
		ids = append(ids, g.AddInput(fmt.Sprintf("u%d", i)))
	}
	nMid := 4 + r.Intn(12)
	for i := 0; i < nMid; i++ {
		kind := Intermediate
		if i == nMid-1 {
			kind = Output
		}
		id := g.AddNode(fmt.Sprintf("x%d", i), kind)
		// Zero-delay arcs only from earlier nodes: acyclic by construction.
		arcs := 1 + r.Intn(3)
		for a := 0; a < arcs; a++ {
			from := ids[r.Intn(len(ids))]
			delay := 0
			if r.Intn(3) == 0 {
				delay = 1 + r.Intn(3)
			}
			switch r.Intn(3) {
			case 0:
				g.AddArc(from, id, delay, nil)
			case 1:
				g.AddConstArc(from, id, delay, maxplus.T(r.Int63n(500)))
			default:
				mul := maxplus.T(1 + r.Int63n(7))
				g.AddArc(from, id, delay, func(k int) maxplus.T {
					return maxplus.T(int64(k)%97) * mul
				})
			}
		}
		// Occasional delayed self-feedback, as rotation gates produce.
		if r.Intn(4) == 0 {
			g.AddArc(id, id, 1+r.Intn(2), nil)
		}
		ids = append(ids, id)
	}
	g.AddPadChain(ids[len(ids)-1], 3+r.Intn(5))
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g
}

func stepInputs(g *Graph, k int) []maxplus.T {
	u := make([]maxplus.T, len(g.Inputs()))
	for i := range u {
		u[i] = maxplus.T(int64(k)*50 + int64(i)*7)
	}
	return u
}

// TestCompiledMatchesInterpreterOnRandomGraphs is the evaluator-level
// bit-exactness property: every instant of every iteration agrees
// between the compiled program and the interpreter, through the warm
// window and deep into steady state.
func TestCompiledMatchesInterpreterOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := randomGraph(t, seed)
		prog, err := Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := NewEvaluator(g)
		if err != nil {
			t.Fatal(err)
		}
		cv := prog.NewEvaluator()
		if !cv.Compiled() || iv.Compiled() {
			t.Fatal("evaluator modes mixed up")
		}
		vi := make([]maxplus.T, g.NodeCount())
		vc := make([]maxplus.T, g.NodeCount())
		for k := 0; k < 40; k++ {
			u := stepInputs(g, k)
			yi, err := iv.Step(u)
			if err != nil {
				t.Fatal(err)
			}
			yc, err := cv.Step(u)
			if err != nil {
				t.Fatal(err)
			}
			for j := range yi {
				if yi[j] != yc[j] {
					t.Fatalf("seed %d k=%d output %d: interpreted %v, compiled %v", seed, k, j, yi[j], yc[j])
				}
			}
			iv.ValuesInto(vi)
			cv.ValuesInto(vc)
			for n := range vi {
				if vi[n] != vc[n] {
					t.Fatalf("seed %d k=%d node %d: interpreted %v, compiled %v", seed, k, n, vi[n], vc[n])
				}
			}
		}
		cv.Release()
	}
}

// TestCompiledSeedHistoryResume checks the hot-switch path: a compiled
// evaluator seeded from a reference history at an arbitrary iteration
// continues bit-exactly, including inside the warm (pre-origin) window.
func TestCompiledSeedHistoryResume(t *testing.T) {
	g := randomGraph(t, 7)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// Reference evolution, recorded per (node, k).
	ref, err := NewEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	const total = 30
	hist := make([][]maxplus.T, total)
	for k := 0; k < total; k++ {
		if _, err := ref.Step(stepInputs(g, k)); err != nil {
			t.Fatal(err)
		}
		hist[k] = make([]maxplus.T, g.NodeCount())
		ref.ValuesInto(hist[k])
	}
	for _, startK := range []int{1, 2, 5, 17} {
		cv := prog.NewEvaluator()
		err := cv.SeedHistory(startK, func(id NodeID, k int) maxplus.T {
			return hist[k][id]
		})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]maxplus.T, g.NodeCount())
		for k := startK; k < total; k++ {
			if _, err := cv.Step(stepInputs(g, k)); err != nil {
				t.Fatal(err)
			}
			cv.ValuesInto(vals)
			for n := range vals {
				if vals[n] != hist[k][n] {
					t.Fatalf("resume at %d, k=%d node %d: got %v, want %v", startK, k, n, vals[n], hist[k][n])
				}
			}
		}
		cv.Release()
	}
}

// TestCompiledSetValueAndPeekDelayed checks the boundary-correction API
// the hybrid engine relies on: overriding a stored instant changes later
// delayed reads identically in both modes.
func TestCompiledSetValueAndPeekDelayed(t *testing.T) {
	g := randomGraph(t, 11)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := NewEvaluator(g)
	cv := prog.NewEvaluator()
	out := g.Outputs()[0]
	arcs := []Arc{{From: out, Delay: 1}, {From: out, Delay: 2, Weight: ConstWeight(13)}}
	for k := 0; k < 12; k++ {
		u := stepInputs(g, k)
		if _, err := iv.Step(u); err != nil {
			t.Fatal(err)
		}
		if _, err := cv.Step(u); err != nil {
			t.Fatal(err)
		}
		// Correct the output instant, as the hybrid engine does when the
		// observed boundary transfer lands later than the provisional y(k).
		corrected := maxplus.Otimes(iv.Value(out), 5)
		if err := iv.SetValue(out, k, corrected); err != nil {
			t.Fatal(err)
		}
		if err := cv.SetValue(out, k, corrected); err != nil {
			t.Fatal(err)
		}
		gi, err := iv.PeekDelayed(arcs, k+1)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := cv.PeekDelayed(arcs, k+1)
		if err != nil {
			t.Fatal(err)
		}
		if gi != gc {
			t.Fatalf("k=%d: PeekDelayed interpreted %v, compiled %v", k, gi, gc)
		}
		wi, err := iv.ValueAt(out, k)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := cv.ValueAt(out, k)
		if err != nil {
			t.Fatal(err)
		}
		if wi != wc || wc != corrected {
			t.Fatalf("k=%d: ValueAt interpreted %v, compiled %v, want %v", k, wi, wc, corrected)
		}
	}
}

// TestEvaluatorPoolReuse proves Release/NewEvaluator recycles rings and
// that a recycled evaluator starts from a clean origin state.
func TestEvaluatorPoolReuse(t *testing.T) {
	g := randomGraph(t, 3)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	first := prog.NewEvaluator()
	var want []maxplus.T
	for k := 0; k < 9; k++ {
		y, err := first.Step(stepInputs(g, k))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			want = append([]maxplus.T(nil), y...)
		}
	}
	first.Release()

	second := prog.NewEvaluator()
	if second.K() != 0 {
		t.Fatalf("recycled evaluator starts at iteration %d", second.K())
	}
	y, err := second.Step(stepInputs(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	for j := range y {
		if y[j] != want[j] {
			t.Fatalf("recycled evaluator output %d: got %v, want %v (dirty ring?)", j, y[j], want[j])
		}
	}
	second.Release()
}

// TestCompiledStepDoesNotAllocate pins the zero-alloc property of the
// steady-state ComputeInstant loop.
func TestCompiledStepDoesNotAllocate(t *testing.T) {
	g := randomGraph(t, 5)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	ev := prog.NewEvaluator()
	u := stepInputs(g, 0)
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ev.Step(u); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("compiled Step allocates %.1f times per iteration", allocs)
	}
}

// TestReboundPatchesWeights checks that a CloneReweighted sibling
// evaluates with its own weights through a rebound program, shares the
// original's evaluator pool, and that reclassified weights (identity →
// constant) recompile correctly.
func TestReboundPatchesWeights(t *testing.T) {
	g := New("rebindable")
	u := g.AddInput("u")
	x := g.AddNode("x", Intermediate)
	y := g.AddNode("y", Output)
	g.AddTaggedArc(u, x, 0, func(k int) maxplus.T { return maxplus.T(10 + k) }, 1)
	g.AddArc(x, y, 0, nil)
	g.AddArc(y, x, 1, nil)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}

	g2, err := g.CloneReweighted(func(to NodeID, a Arc) (Weight, error) {
		if a.Tag == 1 {
			return VaryingWeight(func(k int) maxplus.T { return maxplus.T(1000 + k) }), nil
		}
		return a.Weight, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := prog.Rebound(g2)
	if err != nil {
		t.Fatal(err)
	}
	ev, ev2 := prog.NewEvaluator(), prog2.NewEvaluator()
	in := []maxplus.T{0}
	y1, err := ev.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if y1[0] != 10 {
		t.Fatalf("template y(0) = %v, want 10", y1[0])
	}
	y2, err := ev2.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if y2[0] != 1000 {
		t.Fatalf("rebound y(0) = %v, want 1000", y2[0])
	}

	// Reclassification: the varying weight becomes a constant; the copy
	// specialization tables must be rebuilt, not shared stale.
	g3, err := g.CloneReweighted(func(to NodeID, a Arc) (Weight, error) {
		if a.Tag == 1 {
			return ConstWeight(77), nil
		}
		return a.Weight, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prog3, err := prog.Rebound(g3)
	if err != nil {
		t.Fatal(err)
	}
	ev3 := prog3.NewEvaluator()
	y3, err := ev3.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if y3[0] != 77 {
		t.Fatalf("reclassified rebound y(0) = %v, want 77", y3[0])
	}
	st := prog3.Stats()
	if st.Indirect != 0 {
		t.Fatalf("all-const rebound keeps %d indirect arcs", st.Indirect)
	}
}

// TestProgramStats sanity-checks the inline/indirect split: a pad chain
// compiles to inline arcs only.
func TestProgramStats(t *testing.T) {
	g := New("pads")
	u := g.AddInput("u")
	out := g.AddNode("y", Output)
	g.AddArc(u, out, 0, nil)
	g.AddPadChain(out, 10)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.Indirect != 0 || st.Inline != 11 || st.Nodes != 11 {
		t.Fatalf("unexpected stats %+v", st)
	}
}
