package tdg

import (
	"math/rand"
	"strings"
	"testing"

	"dyncomp/internal/maxplus"
)

// didacticDurations mirrors the pseudo-random duration streams used across
// the test suites for the paper's didactic example.
func didacticDurations(k int) (ti1, tj1, ti2, ti3, tj3, ti4 maxplus.T) {
	r := rand.New(rand.NewSource(int64(k) + 1000))
	f := func() maxplus.T { return maxplus.T(1 + r.Int63n(50)) }
	return f(), f(), f(), f(), f(), f()
}

// buildDidactic constructs the temporal dependency graph of the paper's
// Fig. 3, implementing equations (1)-(6).
func buildDidactic(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New("didactic")
	ids := map[string]NodeID{}
	ids["u"] = g.AddInput("u")
	for _, n := range []string{"xM1", "xM2", "xM3", "xM4", "xM5"} {
		ids[n] = g.AddNode(n, Intermediate)
	}
	ids["xM6"] = g.AddNode("xM6", Output)

	d := func(sel int) WeightFn {
		return func(k int) maxplus.T {
			ti1, tj1, ti2, ti3, tj3, ti4 := didacticDurations(k)
			return []maxplus.T{ti1, tj1, ti2, ti3, tj3, ti4}[sel]
		}
	}
	g.AddArc(ids["u"], ids["xM1"], 0, nil)
	g.AddArc(ids["xM4"], ids["xM1"], 1, nil)
	g.AddArc(ids["xM1"], ids["xM2"], 0, d(0)) // Ti1
	g.AddArc(ids["xM5"], ids["xM2"], 1, nil)
	g.AddArc(ids["xM2"], ids["xM3"], 0, d(1)) // Tj1
	g.AddArc(ids["xM4"], ids["xM3"], 1, nil)
	g.AddArc(ids["xM3"], ids["xM4"], 0, d(2)) // Ti2
	g.AddArc(ids["xM2"], ids["xM4"], 0, d(3)) // Ti3
	g.AddArc(ids["xM5"], ids["xM4"], 1, nil)
	g.AddArc(ids["xM4"], ids["xM5"], 0, d(4)) // Tj3
	g.AddArc(ids["xM6"], ids["xM5"], 1, nil)
	g.AddArc(ids["xM5"], ids["xM6"], 0, d(5)) // Ti4
	return g, ids
}

// didacticDirect evaluates equations (1)-(6) literally.
func didacticDirect(n int, u func(k int) maxplus.T) [][]maxplus.T {
	var xs [][]maxplus.T
	prev := maxplus.NewVector(6)
	for k := 0; k < n; k++ {
		ti1, tj1, ti2, ti3, tj3, ti4 := didacticDurations(k)
		x := maxplus.NewVector(6)
		x[0] = maxplus.Oplus(u(k), prev[3])
		x[1] = maxplus.Oplus(maxplus.Otimes(x[0], ti1), prev[4])
		x[2] = maxplus.Oplus(maxplus.Otimes(x[1], tj1), prev[3])
		x[3] = maxplus.OplusN(maxplus.Otimes(x[2], ti2), maxplus.Otimes(x[1], ti3), prev[4])
		x[4] = maxplus.Oplus(maxplus.Otimes(x[3], tj3), prev[5])
		x[5] = maxplus.Otimes(x[4], ti4)
		xs = append(xs, x)
		prev = x
	}
	return xs
}

func TestEvaluatorReproducesDidacticEquations(t *testing.T) {
	g, ids := buildDidactic(t)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	u := func(k int) maxplus.T { return maxplus.T(int64(k) * 100) }
	want := didacticDirect(300, u)
	names := []string{"xM1", "xM2", "xM3", "xM4", "xM5", "xM6"}
	for k := 0; k < 300; k++ {
		y, err := ev.Step([]maxplus.T{u(k)})
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range names {
			if got := ev.Value(ids[n]); got != want[k][i] {
				t.Fatalf("k=%d %s = %v, want %v", k, n, got, want[k][i])
			}
		}
		if y[0] != want[k][5] {
			t.Fatalf("k=%d output = %v, want %v", k, y[0], want[k][5])
		}
	}
	if ev.K() != 300 {
		t.Fatalf("K() = %d", ev.K())
	}
}

func TestNodeCounts(t *testing.T) {
	g, _ := buildDidactic(t)
	if got := g.NodeCount(); got != 7 {
		t.Fatalf("NodeCount = %d, want 7", got)
	}
	// The paper counts xM4(k-1), xM5(k-1), xM6(k-1) as three extra nodes,
	// giving the 10 nodes of Table I row 1.
	if got := g.NodeCountWithDelays(); got != 10 {
		t.Fatalf("NodeCountWithDelays = %d, want 10", got)
	}
}

func TestFreezeDetectsZeroDelayCycle(t *testing.T) {
	g := New("cyclic")
	u := g.AddInput("u")
	a := g.AddNode("a", Intermediate)
	b := g.AddNode("b", Output)
	g.AddArc(u, a, 0, nil)
	g.AddConstArc(a, b, 0, 1)
	g.AddConstArc(b, a, 0, 1)
	err := g.Freeze()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestFreezeAllowsDelayedCycle(t *testing.T) {
	g := New("delayed")
	u := g.AddInput("u")
	a := g.AddNode("a", Intermediate)
	y := g.AddNode("y", Output)
	g.AddArc(u, a, 0, nil)
	g.AddConstArc(y, a, 1, 0) // feedback through a delay
	g.AddConstArc(a, y, 0, 5)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDelay() != 1 {
		t.Fatalf("MaxDelay = %d", g.MaxDelay())
	}
}

func TestFreezeRequiresInputsAndOutputs(t *testing.T) {
	g := New("no-input")
	g.AddNode("y", Output)
	if err := g.Freeze(); err == nil || !strings.Contains(err.Error(), "no input") {
		t.Fatalf("err = %v", err)
	}
	g2 := New("no-output")
	g2.AddInput("u")
	if err := g2.Freeze(); err == nil || !strings.Contains(err.Error(), "no output") {
		t.Fatalf("err = %v", err)
	}
}

func TestPadsDoNotChangeOutputs(t *testing.T) {
	g1, _ := buildDidactic(t)
	g2, ids2 := buildDidactic(t)
	g2.AddPadChain(ids2["xM3"], 50)
	if err := g1.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Freeze(); err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != g1.NodeCount()+50 {
		t.Fatalf("pad count wrong: %d vs %d", g2.NodeCount(), g1.NodeCount())
	}
	e1, _ := NewEvaluator(g1)
	e2, _ := NewEvaluator(g2)
	for k := 0; k < 50; k++ {
		u := []maxplus.T{maxplus.T(k * 10)}
		y1, err1 := e1.Step(u)
		y2, err2 := e2.Step(u)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if y1[0] != y2[0] {
			t.Fatalf("k=%d: padded output %v differs from %v", k, y2[0], y1[0])
		}
	}
}

func TestEvaluatorHistoryBeforeOriginIsEpsilon(t *testing.T) {
	// A node depending only on a deep delay stays ε until k reaches it.
	g := New("deep")
	u := g.AddInput("u")
	y := g.AddNode("y", Output)
	g.AddConstArc(u, y, 3, 7)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(g)
	for k := 0; k < 6; k++ {
		yv, err := ev.Step([]maxplus.T{maxplus.T(k * 100)})
		if err != nil {
			t.Fatal(err)
		}
		if k < 3 {
			if yv[0] != maxplus.Epsilon {
				t.Fatalf("k=%d: y = %v, want ε", k, yv[0])
			}
		} else {
			want := maxplus.T((k-3)*100 + 7)
			if yv[0] != want {
				t.Fatalf("k=%d: y = %v, want %v", k, yv[0], want)
			}
		}
	}
}

// TestSeedHistoryResumesMidStream seeds a fresh evaluator from a running
// one's history and requires identical values from the resume point on —
// the property the adaptive engine's detailed→abstract switch rests on.
func TestSeedHistoryResumesMidStream(t *testing.T) {
	build := func() *Graph {
		g := New("resume")
		u := g.AddInput("u")
		x := g.AddNode("x", Intermediate)
		y := g.AddNode("y", Output)
		g.AddArc(u, x, 0, nil)
		g.AddConstArc(x, x, 1, 10) // x(k) = max(u(k), x(k-1)+10)
		g.AddConstArc(x, y, 2, 5)  // y(k) = x(k-2)+5
		if err := g.Freeze(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := build()
	full, _ := NewEvaluator(g)
	hist := map[[2]int]maxplus.T{} // (node, k) -> value
	var wantY []maxplus.T
	u := func(k int) maxplus.T { return maxplus.T(k * 4) }
	for k := 0; k < 8; k++ {
		yv, err := full.Step([]maxplus.T{u(k)})
		if err != nil {
			t.Fatal(err)
		}
		wantY = append(wantY, yv[0])
		vals := make([]maxplus.T, g.NodeCount())
		full.ValuesInto(vals)
		for id, v := range vals {
			hist[[2]int{id, k}] = v
		}
	}

	const resume = 5
	seeded, _ := NewEvaluator(build())
	err := seeded.SeedHistory(resume, func(id NodeID, k int) maxplus.T {
		v, ok := hist[[2]int{int(id), k}]
		if !ok {
			return maxplus.Epsilon
		}
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.K() != resume {
		t.Fatalf("K() = %d after seeding, want %d", seeded.K(), resume)
	}
	for k := resume; k < 8; k++ {
		yv, err := seeded.Step([]maxplus.T{u(k)})
		if err != nil {
			t.Fatal(err)
		}
		if yv[0] != wantY[k] {
			t.Fatalf("k=%d: seeded y = %v, full run = %v", k, yv[0], wantY[k])
		}
	}

	// Seeding a started evaluator or a negative origin is rejected.
	if err := seeded.SeedHistory(0, func(NodeID, int) maxplus.T { return 0 }); err == nil {
		t.Fatal("SeedHistory on a started evaluator should fail")
	}
	fresh, _ := NewEvaluator(build())
	if err := fresh.SeedHistory(-1, func(NodeID, int) maxplus.T { return 0 }); err == nil {
		t.Fatal("negative start iteration should fail")
	}
}

func TestValuesInto(t *testing.T) {
	g, _ := buildDidactic(t)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(g)
	if _, err := ev.Step([]maxplus.T{0}); err != nil {
		t.Fatal(err)
	}
	vals := make([]maxplus.T, g.NodeCount())
	ev.ValuesInto(vals)
	if vals[0] != 0 { // input u
		t.Fatalf("vals[0] = %v", vals[0])
	}
	for i, v := range vals {
		if v == maxplus.Epsilon {
			t.Fatalf("node %d still ε after step", i)
		}
	}
}

func TestEvaluatorReset(t *testing.T) {
	g, _ := buildDidactic(t)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(g)
	y1, _ := ev.Step([]maxplus.T{0})
	first := y1[0]
	_, _ = ev.Step([]maxplus.T{100})
	ev.Reset()
	if ev.K() != 0 {
		t.Fatal("Reset did not rewind")
	}
	y2, _ := ev.Step([]maxplus.T{0})
	if y2[0] != first {
		t.Fatalf("after Reset y=%v, want %v", y2[0], first)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	g, _ := buildDidactic(t)
	if _, err := NewEvaluator(g); err == nil {
		t.Fatal("expected error for unfrozen graph")
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(g)
	if _, err := ev.Step([]maxplus.T{1, 2}); err == nil {
		t.Fatal("expected error for wrong input count")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"arc-into-input", func() {
			g := New("x")
			u := g.AddInput("u")
			a := g.AddNode("a", Output)
			g.AddArc(a, u, 0, nil)
		}},
		{"negative-delay", func() {
			g := New("x")
			u := g.AddInput("u")
			a := g.AddNode("a", Output)
			g.AddArc(u, a, -1, nil)
		}},
		{"unknown-node", func() {
			g := New("x")
			u := g.AddInput("u")
			g.AddArc(u, NodeID(99), 0, nil)
		}},
		{"add-input-via-addnode", func() {
			g := New("x")
			g.AddNode("u", Input)
		}},
		{"mutate-frozen", func() {
			g := New("x")
			u := g.AddInput("u")
			y := g.AddNode("y", Output)
			g.AddArc(u, y, 0, nil)
			if err := g.Freeze(); err != nil {
				panic("unexpected: " + err.Error())
			}
			g.AddNode("z", Intermediate)
		}},
		{"value-before-step", func() {
			g := New("x")
			u := g.AddInput("u")
			y := g.AddNode("y", Output)
			g.AddArc(u, y, 0, nil)
			_ = g.Freeze()
			ev, _ := NewEvaluator(g)
			ev.Value(u)
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestDOT(t *testing.T) {
	g, _ := buildDidactic(t)
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "xM1", "xM6", "(k-1)", "invtriangle", "doublecircle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{Input: "input", Intermediate: "intermediate", Output: "output", Pad: "pad"} {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}

// Property: evaluation is monotone in the inputs (causality), checked on
// the didactic graph with random input streams.
func TestEvaluatorMonotoneInInputs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g1, _ := buildDidactic(t)
		g2, _ := buildDidactic(t)
		if err := g1.Freeze(); err != nil {
			t.Fatal(err)
		}
		if err := g2.Freeze(); err != nil {
			t.Fatal(err)
		}
		e1, _ := NewEvaluator(g1)
		e2, _ := NewEvaluator(g2)
		var base maxplus.T
		for k := 0; k < 30; k++ {
			base += maxplus.T(r.Int63n(100))
			shift := maxplus.T(r.Int63n(40))
			y1, _ := e1.Step([]maxplus.T{base})
			y2, _ := e2.Step([]maxplus.T{base + shift})
			if y2[0] < y1[0] {
				t.Fatalf("later input produced earlier output at k=%d", k)
			}
		}
	}
}
