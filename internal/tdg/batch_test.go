package tdg

import (
	"testing"

	"dyncomp/internal/maxplus"
)

// laneRW re-weights every varying arc by a lane-specific offset, keeping
// the arc classification (varying stays varying, constants stay shared)
// so Rebound produces a true weight-lane sibling.
func laneRW(delta maxplus.T) func(to NodeID, a Arc) (Weight, error) {
	return func(to NodeID, a Arc) (Weight, error) {
		if _, ok := a.Weight.Const(); ok {
			return a.Weight, nil
		}
		w := a.Weight
		return VaryingWeight(func(k int) maxplus.T { return w.At(k) + delta }), nil
	}
}

// laneProgs derives L weight-lane siblings of prog via CloneReweighted +
// Rebound, each with a distinct offset on every varying weight.
func laneProgs(t *testing.T, g *Graph, prog *Program, L int) ([]*Graph, []*Program) {
	t.Helper()
	graphs := make([]*Graph, L)
	progs := make([]*Program, L)
	for l := 0; l < L; l++ {
		gl, err := g.CloneReweighted(laneRW(maxplus.T(1 + 13*l)))
		if err != nil {
			t.Fatal(err)
		}
		pl, err := prog.Rebound(gl)
		if err != nil {
			t.Fatal(err)
		}
		graphs[l], progs[l] = gl, pl
	}
	return graphs, progs
}

// laneInputs builds the lane-strided input vector of iteration k: each
// lane sees the scalar inputs shifted by a lane-specific offset.
func laneInputs(g *Graph, k, L int) []maxplus.T {
	u := make([]maxplus.T, len(g.Inputs())*L)
	for i := range g.Inputs() {
		for l := 0; l < L; l++ {
			u[i*L+l] = maxplus.T(int64(k)*50+int64(i)*7) + maxplus.T(3*l)
		}
	}
	return u
}

// checkBatchAgainstScalar steps the batch and per-lane scalar evaluators
// (compiled and interpreting) in lockstep for `steps` iterations and
// compares every output and every node instant bit-exactly.
func checkBatchAgainstScalar(t *testing.T, g *Graph, graphs []*Graph, be *BatchEvaluator, scalars []*Evaluator, steps int) {
	t.Helper()
	L := be.Lanes()
	interp := make([]*Evaluator, L)
	for l := range interp {
		iv, err := NewEvaluator(graphs[l])
		if err != nil {
			t.Fatal(err)
		}
		interp[l] = iv
	}
	vb := make([]maxplus.T, g.NodeCount())
	vs := make([]maxplus.T, g.NodeCount())
	for k := 0; k < steps; k++ {
		u := laneInputs(g, k, L)
		yb, err := be.Step(u)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < L; l++ {
			su := make([]maxplus.T, len(g.Inputs()))
			for i := range su {
				su[i] = u[i*L+l]
			}
			ys, err := scalars[l].Step(su)
			if err != nil {
				t.Fatal(err)
			}
			yi, err := interp[l].Step(su)
			if err != nil {
				t.Fatal(err)
			}
			for j := range ys {
				if yb[j*L+l] != ys[j] {
					t.Fatalf("L=%d lane %d k=%d output %d: batch %v, scalar %v", L, l, k, j, yb[j*L+l], ys[j])
				}
				if yb[j*L+l] != yi[j] {
					t.Fatalf("L=%d lane %d k=%d output %d: batch %v, interpreted %v", L, l, k, j, yb[j*L+l], yi[j])
				}
			}
			be.LaneValuesInto(l, vb)
			scalars[l].ValuesInto(vs)
			for n := range vb {
				if vb[n] != vs[n] {
					t.Fatalf("L=%d lane %d k=%d node %d: batch %v, scalar %v", L, l, k, n, vb[n], vs[n])
				}
			}
		}
	}
}

// TestBatchMatchesScalarOnRandomGraphs is the batch-level bit-exactness
// property: every instant of every lane agrees with a per-lane scalar
// run — compiled and interpreting — through the warm window and deep
// into steady state, across batch widths.
func TestBatchMatchesScalarOnRandomGraphs(t *testing.T) {
	for _, L := range []int{1, 2, 7, 32} {
		for seed := int64(0); seed < 8; seed++ {
			g := randomGraph(t, seed)
			prog, err := Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			graphs, progs := laneProgs(t, g, prog, L)
			be, err := NewBatchEvaluator(progs)
			if err != nil {
				t.Fatal(err)
			}
			scalars := make([]*Evaluator, L)
			for l := range scalars {
				scalars[l] = progs[l].NewEvaluator()
			}
			checkBatchAgainstScalar(t, g, graphs, be, scalars, 25)
			for _, s := range scalars {
				s.Release()
			}
			be.Release()
		}
	}
}

// TestBatchWaveParallelPath forces the goroutine wave fan-out onto small
// graphs by dropping the work threshold and re-runs the bit-exactness
// comparison through it.
func TestBatchWaveParallelPath(t *testing.T) {
	old := batchParallelMinWork
	batchParallelMinWork = 1
	defer func() { batchParallelMinWork = old }()
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(t, 100+seed)
		prog, err := Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		const L = 8
		graphs, progs := laneProgs(t, g, prog, L)
		be, err := NewBatchEvaluator(progs)
		if err != nil {
			t.Fatal(err)
		}
		scalars := make([]*Evaluator, L)
		for l := range scalars {
			scalars[l] = progs[l].NewEvaluator()
		}
		checkBatchAgainstScalar(t, g, graphs, be, scalars, 20)
		be.Release()
	}
}

// TestBatchMidRunRebind patches one lane's weights mid-batch and checks
// the continued evolution is bit-exact against a scalar run whose
// weights dispatch on the switch iteration — the same history, the same
// weights at every k, so the same instants.
func TestBatchMidRunRebind(t *testing.T) {
	const (
		L      = 4
		swK    = 9
		total  = 24
		patchL = 2
	)
	g := randomGraph(t, 21)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	graphs, progs := laneProgs(t, g, prog, L)
	be, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	// The patch target: lane patchL switches to offset 999 at k = swK.
	gPatch, err := g.CloneReweighted(laneRW(999))
	if err != nil {
		t.Fatal(err)
	}
	pPatch, err := prog.Rebound(gPatch)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar reference: a weight that is the lane weight before swK and
	// the patch weight after, over one uninterrupted run.
	gRef, err := g.CloneReweighted(func(to NodeID, a Arc) (Weight, error) {
		if _, ok := a.Weight.Const(); ok {
			return a.Weight, nil
		}
		w := a.Weight
		return VaryingWeight(func(k int) maxplus.T {
			if k < swK {
				return w.At(k) + maxplus.T(1+13*patchL)
			}
			return w.At(k) + 999
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pRef, err := prog.Rebound(gRef)
	if err != nil {
		t.Fatal(err)
	}
	ref := pRef.NewEvaluator()
	vb := make([]maxplus.T, g.NodeCount())
	vr := make([]maxplus.T, g.NodeCount())
	for k := 0; k < total; k++ {
		if k == swK {
			if err := be.Rebind(patchL, pPatch); err != nil {
				t.Fatal(err)
			}
		}
		u := laneInputs(g, k, L)
		if _, err := be.Step(u); err != nil {
			t.Fatal(err)
		}
		su := make([]maxplus.T, len(g.Inputs()))
		for i := range su {
			su[i] = u[i*L+patchL]
		}
		if _, err := ref.Step(su); err != nil {
			t.Fatal(err)
		}
		be.LaneValuesInto(patchL, vb)
		ref.ValuesInto(vr)
		for n := range vb {
			if vb[n] != vr[n] {
				t.Fatalf("k=%d node %d: patched lane %v, reference %v", k, n, vb[n], vr[n])
			}
		}
	}
	_ = graphs
}

// TestBatchLanePeekDelayed compares the lane-wise delayed gate against
// the scalar evaluator's on identical histories.
func TestBatchLanePeekDelayed(t *testing.T) {
	g := randomGraph(t, 11)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const L = 3
	graphs, progs := laneProgs(t, g, prog, L)
	be, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*Evaluator, L)
	for l := range scalars {
		scalars[l] = progs[l].NewEvaluator()
	}
	out := g.Outputs()[0]
	for k := 0; k < 12; k++ {
		u := laneInputs(g, k, L)
		if _, err := be.Step(u); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < L; l++ {
			su := make([]maxplus.T, len(g.Inputs()))
			for i := range su {
				su[i] = u[i*L+l]
			}
			if _, err := scalars[l].Step(su); err != nil {
				t.Fatal(err)
			}
			arcs := []Arc{{From: out, Delay: 1}, {From: out, Delay: 2, Weight: ConstWeight(13)}}
			gs, err := scalars[l].PeekDelayed(arcs, k+1)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := be.LanePeekDelayed(l, arcs, k+1)
			if err != nil {
				t.Fatal(err)
			}
			if gs != gb {
				t.Fatalf("lane %d k=%d: scalar gate %v, batch gate %v", l, k, gs, gb)
			}
		}
	}
	if _, err := be.LanePeekDelayed(0, []Arc{{From: out, Delay: 0}}, 1); err == nil {
		t.Fatal("LanePeekDelayed accepted a zero-delay arc")
	}
	_ = graphs
}

// TestBatchDisableKeepsOtherLanesExact retires one lane mid-run and
// checks the surviving lanes stay bit-exact against their scalar runs.
func TestBatchDisableKeepsOtherLanesExact(t *testing.T) {
	g := randomGraph(t, 4)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const L = 4
	_, progs := laneProgs(t, g, prog, L)
	be, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*Evaluator, L)
	for l := range scalars {
		scalars[l] = progs[l].NewEvaluator()
	}
	vb := make([]maxplus.T, g.NodeCount())
	vs := make([]maxplus.T, g.NodeCount())
	for k := 0; k < 18; k++ {
		if k == 6 {
			be.Disable(1)
			if be.ActiveLanes() != L-1 {
				t.Fatalf("ActiveLanes = %d after Disable", be.ActiveLanes())
			}
		}
		u := laneInputs(g, k, L)
		if _, err := be.Step(u); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < L; l++ {
			if l == 1 {
				continue
			}
			su := make([]maxplus.T, len(g.Inputs()))
			for i := range su {
				su[i] = u[i*L+l]
			}
			if _, err := scalars[l].Step(su); err != nil {
				t.Fatal(err)
			}
			be.LaneValuesInto(l, vb)
			scalars[l].ValuesInto(vs)
			for n := range vb {
				if vb[n] != vs[n] {
					t.Fatalf("lane %d k=%d node %d: batch %v, scalar %v", l, k, n, vb[n], vs[n])
				}
			}
		}
	}
}

// TestBatchPoolReuse proves Release/NewBatchEvaluator recycles the lane
// buffers through the programs' shared pool and that a recycled batch
// starts from a clean origin state.
func TestBatchPoolReuse(t *testing.T) {
	g := randomGraph(t, 3)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const L = 5
	_, progs := laneProgs(t, g, prog, L)
	first, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	var want []maxplus.T
	for k := 0; k < 7; k++ {
		y, err := first.Step(laneInputs(g, k, L))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			want = append([]maxplus.T(nil), y...)
		}
	}
	first.Release()

	second, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	if second != first && !raceEnabled {
		t.Fatal("pool did not recycle the batch evaluator")
	}
	if second.K() != 0 || second.ActiveLanes() != L {
		t.Fatalf("recycled batch at k=%d with %d active lanes", second.K(), second.ActiveLanes())
	}
	y, err := second.Step(laneInputs(g, 0, L))
	if err != nil {
		t.Fatal(err)
	}
	for j := range y {
		if y[j] != want[j] {
			t.Fatalf("recycled batch output %d: got %v, want %v (dirty ring?)", j, y[j], want[j])
		}
	}
	second.Release()
}

// TestBatchRejectsIncompatibleLanes pins the scalar-fallback trigger: a
// structurally different program cannot join a batch.
func TestBatchRejectsIncompatibleLanes(t *testing.T) {
	g1 := randomGraph(t, 1)
	g2 := randomGraph(t, 2)
	p1, err := Compile(g1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchEvaluator([]*Program{p1, p2}); err == nil {
		t.Fatal("NewBatchEvaluator accepted structurally different lanes")
	}
	if _, err := NewBatchEvaluator(nil); err == nil {
		t.Fatal("NewBatchEvaluator accepted zero lanes")
	}
}

// TestBatchStepDoesNotAllocate pins the zero-alloc property of the
// sequential batched pass.
func TestBatchStepDoesNotAllocate(t *testing.T) {
	g := randomGraph(t, 5)
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const L = 8
	_, progs := laneProgs(t, g, prog, L)
	be, err := NewBatchEvaluator(progs)
	if err != nil {
		t.Fatal(err)
	}
	u := laneInputs(g, 0, L)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := be.Step(u); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched Step allocates %.1f times per iteration", allocs)
	}
}

// TestReboundSharesArcTable pins the copy-on-write arc table of Rebound:
// a varying-weights-only sibling aliases the parent's packed arcs (no
// per-point table allocation on the sweep rebind path), while a sibling
// changing an inline constant gets a private copy.
func TestReboundSharesArcTable(t *testing.T) {
	g := New("cow")
	u := g.AddInput("u")
	x := g.AddNode("x", Intermediate)
	y := g.AddNode("y", Output)
	g.AddTaggedArc(u, x, 0, func(k int) maxplus.T { return maxplus.T(10 + k) }, 1)
	g.AddConstArc(x, y, 0, 5)
	g.AddArc(y, x, 1, nil)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}

	// Varying-only rebind: the packed table is shared outright.
	g2, err := g.CloneReweighted(laneRW(7))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := prog.Rebound(g2)
	if err != nil {
		t.Fatal(err)
	}
	if &p2.arcs[0] != &prog.arcs[0] {
		t.Fatal("varying-only rebind copied the packed arc table")
	}
	if &p2.waves[0] != &prog.waves[0] {
		t.Fatal("rebind did not share the wave fences")
	}

	// Changing an inline constant forces a private copy, leaving the
	// parent untouched.
	g3, err := g.CloneReweighted(func(to NodeID, a Arc) (Weight, error) {
		if c, ok := a.Weight.Const(); ok && c == 5 {
			return ConstWeight(50), nil
		}
		return a.Weight, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := prog.Rebound(g3)
	if err != nil {
		t.Fatal(err)
	}
	if &p3.arcs[0] == &prog.arcs[0] {
		t.Fatal("const-changing rebind shared the packed arc table")
	}
	ev := prog.NewEvaluator()
	y1, err := ev.Step([]maxplus.T{0})
	if err != nil {
		t.Fatal(err)
	}
	if y1[0] != 15 {
		t.Fatalf("parent y(0) = %v after COW rebinds, want 15", y1[0])
	}
	ev3 := p3.NewEvaluator()
	y3, err := ev3.Step([]maxplus.T{0})
	if err != nil {
		t.Fatal(err)
	}
	if y3[0] != 60 {
		t.Fatalf("const-rebound y(0) = %v, want 60", y3[0])
	}
}

// TestComputeWaves pins the wave fences on a known shape: a diamond
// (two independent middles) shares a wave; a chain does not.
func TestComputeWaves(t *testing.T) {
	g := New("diamond")
	u := g.AddInput("u")
	a := g.AddNode("a", Intermediate)
	b := g.AddNode("b", Intermediate)
	y := g.AddNode("y", Output)
	g.AddConstArc(u, a, 0, 1)
	g.AddConstArc(u, b, 0, 2)
	g.AddConstArc(a, y, 0, 3)
	g.AddConstArc(b, y, 0, 4)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// a and b are zero-delay-independent: one wave; y depends on both.
	if len(p.waves) != 3 || p.waves[0] != 0 || p.waves[1] != 2 || p.waves[2] != 3 {
		t.Fatalf("diamond waves = %v, want [0 2 3]", p.waves)
	}

	c := New("chain")
	cu := c.AddInput("u")
	prev := cu
	for i := 0; i < 4; i++ {
		n := c.AddNode(string(rune('a'+i)), Intermediate)
		c.AddConstArc(prev, n, 0, 1)
		prev = n
	}
	cy := c.AddNode("y", Output)
	c.AddConstArc(prev, cy, 0, 1)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	pc, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every node depends on its predecessor: one wave per node.
	if len(pc.waves) != len(pc.nodes)+1 {
		t.Fatalf("chain waves = %v for %d nodes", pc.waves, len(pc.nodes))
	}
}
