package tdg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyncomp/internal/maxplus"
)

// Program is a frozen graph compiled into a flat evaluation program: the
// topological node order and every arc are packed into contiguous arrays
// with ring-slot offsets precomputed, and iteration-independent weights
// (the identity and constants) are inlined into the arc table. Only
// genuinely k-dependent weights keep an indirect call, through a side
// table the rebinding path patches without recompiling.
//
// One Program serves any number of concurrent evaluators: all compiled
// state is immutable after Compile. The steady-state pass (once every
// delayed reference lands after the origin) is branch-light and performs
// no allocations, which is what moves the knee of the paper's Fig. 5 —
// the point where ComputeInstant cost catches up with the saved kernel
// events — toward larger graphs.
type Program struct {
	g     *Graph
	depth int32

	// nodes lists the non-input nodes in evaluation (topological) order;
	// the arcs of nodes[i] are arcs[nodes[i].lo:nodes[i].hi].
	nodes []progNode
	arcs  []progArc
	// weights is the indirect side table for k-dependent arc weights.
	weights []Weight
	// nodeRange maps a NodeID to its arc range for random access
	// (EvalIncoming); input nodes have an empty range.
	nodeRange [][2]int32

	// waves partitions nodes into maximal contiguous runs free of
	// intra-run zero-delay dependencies: nodes[waves[i]:waves[i+1]] may be
	// evaluated in any order (or concurrently) once the preceding waves of
	// the same iteration are done. Only zero-delay arcs constrain the
	// order within one pass — a positive delay references an earlier
	// iteration's ring slot. The batch evaluator parallelizes large waves.
	waves []int32

	// pool recycles evaluators (ring and output buffers) across runs.
	// Rebound clones share it, so a design-space sweep reuses the same
	// rings for every point of one structural shape. bpool does the same
	// for batch evaluators.
	pool  *sync.Pool
	bpool *sync.Pool

	constArcs int
	varyArcs  int
}

// progNode is one non-input node of the compiled evaluation order.
type progNode struct {
	slotBase int32 // NodeID * depth: base index of the node's ring slots
	lo, hi   int32 // arc range in Program.arcs
	// copySrc specializes the most common node shape — exactly one
	// zero-delay identity arc (pad chains, rendezvous forwarding) — into
	// a single ring-to-ring copy: >= 0 is the source node's slot base,
	// -1 means evaluate the arc range.
	copySrc int32
}

// progArc is one packed arc of the flat table.
type progArc struct {
	srcBase int32 // From * depth
	slotSub int32 // Delay % depth: ring-slot offset of the referenced slot
	delay   int32 // full delay, for the pre-origin rule of the warm pass
	widx    int32 // >= 0: index into Program.weights; < 0: w is inline
	w       maxplus.T
}

// compiles counts Compile invocations process-wide; serving metrics use
// it to show how much model-construction work the rebinding path avoids.
var compiles atomic.Int64

// Compiles returns the number of times Compile has run in this process.
func Compiles() int64 { return compiles.Load() }

// Compile flattens a frozen graph into an evaluation program. The
// compiled evaluator is bit-exact against the interpreter by
// construction: both apply the same (max,+) fold in the same node and
// arc order.
func Compile(g *Graph) (*Program, error) {
	if !g.frozen {
		return nil, fmt.Errorf("tdg: Compile on unfrozen graph %q", g.Name)
	}
	compiles.Add(1)
	depth := int32(g.maxDelay + 1)
	p := &Program{
		g:         g,
		depth:     depth,
		nodes:     make([]progNode, 0, len(g.topo)-len(g.inputs)),
		nodeRange: make([][2]int32, len(g.nodes)),
		pool:      &sync.Pool{},
		bpool:     &sync.Pool{},
	}
	arcCount := 0
	for _, arcs := range g.in {
		arcCount += len(arcs)
	}
	p.arcs = make([]progArc, 0, arcCount)
	for _, id := range g.topo {
		if g.nodes[id].Kind == Input {
			continue
		}
		lo := int32(len(p.arcs))
		for _, a := range g.in[id] {
			p.arcs = append(p.arcs, p.packArc(a))
		}
		hi := int32(len(p.arcs))
		n := progNode{slotBase: int32(id) * depth, lo: lo, hi: hi, copySrc: -1}
		if hi == lo+1 {
			if a := &p.arcs[lo]; a.delay == 0 && a.widx < 0 && a.w == maxplus.E {
				n.copySrc = a.srcBase
			}
		}
		p.nodes = append(p.nodes, n)
		p.nodeRange[id] = [2]int32{lo, hi}
	}
	p.computeWaves()
	return p, nil
}

// computeWaves greedily splits the evaluation order into maximal
// contiguous runs in which no node has a zero-delay arc from another
// node of the same run. The boundaries are stored as a fence list:
// waves[0] = 0, waves[len-1] = len(nodes).
func (p *Program) computeWaves() {
	// gen[src] == cur marks src as a member of the wave under construction.
	gen := make([]int32, len(p.g.nodes))
	cur := int32(1)
	waves := make([]int32, 1, 8)
	for ni := range p.nodes {
		n := &p.nodes[ni]
		for ai := n.lo; ai < n.hi; ai++ {
			a := &p.arcs[ai]
			if a.delay == 0 && gen[a.srcBase/p.depth] == cur {
				waves = append(waves, int32(ni))
				cur++
				break
			}
		}
		gen[n.slotBase/p.depth] = cur
	}
	waves = append(waves, int32(len(p.nodes)))
	p.waves = waves
}

// packArc flattens one arc, inlining iteration-independent weights and
// appending the k-dependent ones to the side table.
func (p *Program) packArc(a Arc) progArc {
	pa := progArc{
		srcBase: int32(a.From) * p.depth,
		slotSub: int32(a.Delay) % p.depth,
		delay:   int32(a.Delay),
		widx:    -1,
	}
	if c, ok := a.Weight.Const(); ok {
		pa.w = c
		p.constArcs++
	} else {
		pa.widx = int32(len(p.weights))
		p.weights = append(p.weights, a.Weight)
		p.varyArcs++
	}
	return pa
}

// Rebound returns a program for a CloneReweighted sibling of the compiled
// graph: the flat structure (node order, arc layout, ring geometry) is
// shared, only the weight tables are rebuilt from g's arcs. The rebound
// program shares the original's evaluator pool, so one structural shape
// re-bound across many sweep points recycles one set of rings. A graph
// whose structure does not match falls back to a full Compile.
//
// The packed arc table is shared copy-on-write: when only varying
// weights change (the common derive rebind — every duration stays a
// side-table entry at the same index), no arc of the table differs and
// the sibling aliases the parent's table outright; the first arc whose
// packed form changes (e.g. a constant with a new inline value) triggers
// one private copy. Only the weight side table is always rebuilt — its
// closures bind the sibling's parameters.
func (p *Program) Rebound(g *Graph) (*Program, error) {
	if !g.frozen || len(g.nodes) != len(p.g.nodes) || g.maxDelay != p.g.maxDelay {
		return Compile(g)
	}
	np := &Program{
		g:         g,
		depth:     p.depth,
		nodes:     p.nodes,
		nodeRange: p.nodeRange,
		arcs:      p.arcs, // shared until an arc actually differs
		weights:   make([]Weight, 0, len(p.weights)),
		waves:     p.waves,
		pool:      p.pool,
		bpool:     p.bpool,
	}
	owned := false
	ai := 0
	reclassified := false
	for _, id := range g.topo {
		if g.nodes[id].Kind == Input {
			continue
		}
		for _, a := range g.in[id] {
			if ai >= len(p.arcs) {
				return Compile(g)
			}
			old := p.arcs[ai]
			if old.srcBase != int32(a.From)*p.depth || old.delay != int32(a.Delay) {
				return Compile(g) // structure drifted: recompile
			}
			na := old
			if c, ok := a.Weight.Const(); ok {
				na.w, na.widx = c, -1
				np.constArcs++
			} else {
				na.w = maxplus.E
				na.widx = int32(len(np.weights))
				np.weights = append(np.weights, a.Weight)
				np.varyArcs++
			}
			wasIdentity := old.widx < 0 && old.w == maxplus.E
			if wasIdentity != (na.widx < 0 && na.w == maxplus.E) {
				reclassified = true
			}
			if na != old && !owned {
				arcs := make([]progArc, len(p.arcs))
				copy(arcs, p.arcs)
				np.arcs = arcs
				owned = true
			}
			if owned {
				np.arcs[ai] = na
			}
			ai++
		}
	}
	if ai != len(p.arcs) {
		return Compile(g)
	}
	if reclassified {
		// The copy-node specialization baked into the shared node table
		// no longer matches the new weights; recompile (still sharing the
		// evaluator pools — the ring geometry is unchanged).
		fresh, err := Compile(g)
		if err != nil {
			return nil, err
		}
		fresh.pool = p.pool
		fresh.bpool = p.bpool
		return fresh, nil
	}
	return np, nil
}

// Graph returns the graph the program was compiled from.
func (p *Program) Graph() *Graph { return p.g }

// ProgramStats describes a compiled program's shape.
type ProgramStats struct {
	Nodes    int // evaluated (non-input) nodes
	Arcs     int // total packed arcs
	Inline   int // arcs with identity or constant weight, inlined
	Indirect int // arcs with k-dependent weights, via the side table
}

// Stats returns the program's shape counters.
func (p *Program) Stats() ProgramStats {
	return ProgramStats{
		Nodes:    len(p.nodes),
		Arcs:     len(p.arcs),
		Inline:   p.constArcs,
		Indirect: p.varyArcs,
	}
}

// NewEvaluator returns an evaluator running the compiled program,
// recycling a previously Released one when available. The evaluator
// starts at iteration zero with an ε-cleared history ring.
func (p *Program) NewEvaluator() *Evaluator {
	if e, ok := p.pool.Get().(*Evaluator); ok {
		// Pooled rings come from a program of identical geometry (the
		// pool is shared only across Rebound siblings), but may carry the
		// previous run's instants.
		e.g = p.g
		e.prog = p
		e.Reset()
		return e
	}
	depth := int(p.depth)
	ring := make([]maxplus.T, len(p.g.nodes)*depth)
	for i := range ring {
		ring[i] = maxplus.Epsilon
	}
	return &Evaluator{
		g:      p.g,
		prog:   p,
		depth:  depth,
		ring:   ring,
		outBuf: make([]maxplus.T, len(p.g.outputs)),
	}
}

// release returns an evaluator to the pool (see Evaluator.Release).
func (p *Program) release(e *Evaluator) {
	p.pool.Put(e)
}

// pass computes every non-input instant of iteration k. The warm pass
// applies the pre-origin rule (a delayed arc referencing an iteration
// before the origin contributes ε); once k is at least the maximum
// delay — immediately for delay-free graphs, and for every resumed
// evaluator past its seed window — the steady pass drops that branch.
func (p *Program) pass(ring []maxplus.T, k, slot int) {
	if k >= int(p.depth)-1 {
		p.steadyPass(ring, k, slot)
	} else {
		p.warmPass(ring, k, slot)
	}
}

// steadyPass is the hot loop of ComputeInstant: one branch-light,
// allocation-free sweep over the packed arc table.
func (p *Program) steadyPass(ring []maxplus.T, k, slot int) {
	arcs := p.arcs
	weights := p.weights
	depth := p.depth
	s := int32(slot)
	for ni := range p.nodes {
		n := &p.nodes[ni]
		if cs := n.copySrc; cs >= 0 {
			ring[n.slotBase+s] = ring[cs+s]
			continue
		}
		acc := maxplus.Epsilon
		for ai := n.lo; ai < n.hi; ai++ {
			a := &arcs[ai]
			ss := s - a.slotSub
			if ss < 0 {
				ss += depth
			}
			src := ring[a.srcBase+ss]
			var v maxplus.T
			if a.widx < 0 {
				if a.w == maxplus.E {
					v = src // identity: ε stays ε, finite stays put
				} else {
					v = maxplus.Otimes(src, a.w)
				}
			} else {
				if src == maxplus.Epsilon {
					continue
				}
				v = maxplus.Otimes(src, weights[a.widx].At(k))
			}
			if v > acc {
				acc = v
			}
		}
		ring[n.slotBase+s] = acc
	}
}

// warmPass is steadyPass plus the pre-origin rule for iterations still
// inside the delay window.
func (p *Program) warmPass(ring []maxplus.T, k, slot int) {
	arcs := p.arcs
	weights := p.weights
	depth := p.depth
	s := int32(slot)
	k32 := int32(k)
	for ni := range p.nodes {
		n := &p.nodes[ni]
		if cs := n.copySrc; cs >= 0 {
			// Zero-delay identity arcs never reference a pre-origin
			// iteration, so the copy fast path holds in the warm pass too.
			ring[n.slotBase+s] = ring[cs+s]
			continue
		}
		acc := maxplus.Epsilon
		for ai := n.lo; ai < n.hi; ai++ {
			a := &arcs[ai]
			if a.delay > k32 {
				continue // references an iteration before the origin: ε
			}
			ss := s - a.slotSub
			if ss < 0 {
				ss += depth
			}
			src := ring[a.srcBase+ss]
			var v maxplus.T
			if a.widx < 0 {
				if a.w == maxplus.E {
					v = src
				} else {
					v = maxplus.Otimes(src, a.w)
				}
			} else {
				if src == maxplus.Epsilon {
					continue
				}
				v = maxplus.Otimes(src, weights[a.widx].At(k))
			}
			if v > acc {
				acc = v
			}
		}
		ring[n.slotBase+s] = acc
	}
}

// EvalIncoming computes ⊕ over the compiled incoming arcs of node id at
// iteration k against a ring in the evaluator's layout
// (ring[node*depth + k%depth]), applying the pre-origin rule. The hybrid
// engine's stage-wise ("wave") evaluation uses it to compute single nodes
// out of the monolithic Step order without walking Arc slices.
func (p *Program) EvalIncoming(ring []maxplus.T, id NodeID, k int) maxplus.T {
	r := p.nodeRange[id]
	arcs := p.arcs
	depth := p.depth
	s := int32(k % int(depth))
	k32 := int32(k)
	acc := maxplus.Epsilon
	for ai := r[0]; ai < r[1]; ai++ {
		a := &arcs[ai]
		if a.delay > k32 {
			continue
		}
		ss := s - a.slotSub
		if ss < 0 {
			ss += depth
		}
		src := ring[a.srcBase+ss]
		var v maxplus.T
		if a.widx < 0 {
			if a.w == maxplus.E {
				v = src
			} else {
				v = maxplus.Otimes(src, a.w)
			}
		} else {
			if src == maxplus.Epsilon {
				continue
			}
			v = maxplus.Otimes(src, p.weights[a.widx].At(k))
		}
		if v > acc {
			acc = v
		}
	}
	return acc
}
