//go:build race

package tdg

// The race detector makes sync.Pool drop a fraction of Puts on purpose,
// so tests asserting pool reuse by pointer identity relax under -race.
const raceEnabled = true
