package tdg

import (
	"fmt"
	"runtime"
	"sync"

	"dyncomp/internal/maxplus"
)

// batchParallelMinWork is the node×lane product below which a batched
// pass stays single-threaded: the per-wave goroutine fan-out only pays
// for itself on large graphs. Tests lower it to force the parallel path
// onto small graphs.
var batchParallelMinWork = 1 << 14

// BatchEvaluator evaluates N re-bound sibling programs of one structural
// shape in lockstep: one pass over the shared packed arc table computes
// iteration k for every lane at once.
//
// Memory is laid out lane-innermost (structure of arrays): the history
// ring holds ring[(node*depth+slot)*L + lane], the varying-weight buffer
// wbuf[widx*L + lane], and Step's inputs and outputs are lane-strided
// the same way (u[i*L+lane] is input i of lane `lane`). One instruction
// stream therefore amortizes the arc-table walk, the branch pattern and
// the ring indexing over all lanes, while each lane keeps its own weight
// closures — which is exactly the sweep access pattern: many parameter
// points over one shared structure.
//
// Lanes must be structurally identical programs: Rebound siblings (which
// alias one arc table, checked in O(1)) or independently compiled
// programs whose packed tables match element-wise. Const and identity
// weights are baked into the shared arc table and so must agree across
// lanes; only side-table (varying) weights may differ per lane.
//
// A BatchEvaluator is bit-exact against running each lane through its
// own scalar Evaluator: both apply the same (max,+) fold in the same
// node and arc order.
type BatchEvaluator struct {
	proto *Program   // structure owner: nodes, arcs, waves
	lanes []*Program // per-lane programs (weight side tables)

	k     int
	depth int
	width int // number of lanes L

	ring   []maxplus.T // [(node*depth + slot)*L + lane]
	wbuf   []maxplus.T // [widx*L + lane], refilled each Step
	outBuf []maxplus.T // [output*L + lane], reused by Step

	active  []bool // lanes still stepping; disabled lanes keep stale values
	nActive int
}

// NewBatchEvaluator builds a batch evaluator over the given lane
// programs, recycling a previously Released one of matching geometry
// from the programs' shared pool. All lanes must share one compiled
// structure (see BatchEvaluator); a mismatch is an error — callers fall
// back to per-lane scalar evaluation.
func NewBatchEvaluator(lanes []*Program) (*BatchEvaluator, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("tdg: NewBatchEvaluator needs at least one lane")
	}
	proto := lanes[0]
	for i, p := range lanes[1:] {
		if err := batchCompatible(proto, p); err != nil {
			return nil, fmt.Errorf("tdg: batch lane %d: %w", i+1, err)
		}
	}
	L := len(lanes)
	depth := int(proto.depth)
	if b, ok := proto.bpool.Get().(*BatchEvaluator); ok {
		if b.width == L &&
			len(b.ring) == len(proto.g.nodes)*depth*L &&
			len(b.wbuf) == len(proto.weights)*L &&
			len(b.outBuf) == len(proto.g.outputs)*L {
			b.proto = proto
			copy(b.lanes, lanes)
			b.reset()
			return b, nil
		}
		// Geometry drifted (a reclassifying recompile resized the side
		// table): drop the stale buffers for the collector.
	}
	b := &BatchEvaluator{
		proto:  proto,
		lanes:  append([]*Program(nil), lanes...),
		depth:  depth,
		width:  L,
		ring:   make([]maxplus.T, len(proto.g.nodes)*depth*L),
		wbuf:   make([]maxplus.T, len(proto.weights)*L),
		outBuf: make([]maxplus.T, len(proto.g.outputs)*L),
		active: make([]bool, L),
	}
	b.reset()
	return b, nil
}

// batchCompatible reports whether q can share p's compiled structure.
func batchCompatible(p, q *Program) error {
	switch {
	case q == nil:
		return fmt.Errorf("nil program")
	case p.depth != q.depth:
		return fmt.Errorf("ring depth %d vs %d", p.depth, q.depth)
	case len(p.g.nodes) != len(q.g.nodes):
		return fmt.Errorf("%d vs %d graph nodes", len(p.g.nodes), len(q.g.nodes))
	case len(p.arcs) != len(q.arcs), len(p.nodes) != len(q.nodes):
		return fmt.Errorf("packed table sizes differ")
	case len(p.weights) != len(q.weights):
		return fmt.Errorf("%d vs %d varying weights", len(p.weights), len(q.weights))
	case !equalIDs(p.g.inputs, q.g.inputs), !equalIDs(p.g.outputs, q.g.outputs):
		return fmt.Errorf("input/output vectors differ")
	}
	// Rebound siblings alias one table: identical by construction.
	if len(p.arcs) == 0 || &p.arcs[0] == &q.arcs[0] {
		return nil
	}
	for i := range p.arcs {
		if p.arcs[i] != q.arcs[i] {
			return fmt.Errorf("packed arc %d differs (structure or inline weight)", i)
		}
	}
	for i := range p.nodes {
		if p.nodes[i] != q.nodes[i] {
			return fmt.Errorf("packed node %d differs", i)
		}
	}
	return nil
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset rewinds to iteration zero: ε-cleared ring, every lane active.
func (b *BatchEvaluator) reset() {
	b.k = 0
	for i := range b.ring {
		b.ring[i] = maxplus.Epsilon
	}
	for i := range b.active {
		b.active[i] = true
	}
	b.nActive = b.width
}

// Release returns the batch evaluator to its structure's pool for reuse
// by a later NewBatchEvaluator of the same geometry. The evaluator must
// not be used after Release.
func (b *BatchEvaluator) Release() {
	for i := range b.lanes {
		b.lanes[i] = b.proto // drop sibling references; geometry stays valid
	}
	b.proto.bpool.Put(b)
}

// K returns the index of the next iteration to be computed. All active
// lanes advance in lockstep.
func (b *BatchEvaluator) K() int { return b.k }

// Lanes returns the batch width L.
func (b *BatchEvaluator) Lanes() int { return b.width }

// Graph returns the structure lane 0 was compiled from. All lanes share
// its node, input and output layout.
func (b *BatchEvaluator) Graph() *Graph { return b.proto.g }

// Disable marks a lane as finished: fillWeights skips its closures and
// its ring values go stale. Disabling is how a caller retires lanes that
// diverge (shorter runs, failed lanes) while the rest keep stepping; the
// pass still computes the dead lane's slots, on garbage inputs, which is
// harmless — saturating (max,+) arithmetic cannot trap and the values
// are never read.
func (b *BatchEvaluator) Disable(lane int) {
	if b.active[lane] {
		b.active[lane] = false
		b.nActive--
	}
}

// ActiveLanes returns how many lanes are still enabled.
func (b *BatchEvaluator) ActiveLanes() int { return b.nActive }

// Rebind swaps one lane's program mid-run: iterations from the current K
// on use p's weight side table against the lane's accumulated history —
// the batched form of re-binding one structural shape to a new parameter
// point. p must share the batch's compiled structure.
func (b *BatchEvaluator) Rebind(lane int, p *Program) error {
	if lane < 0 || lane >= b.width {
		return fmt.Errorf("tdg: Rebind lane %d of %d", lane, b.width)
	}
	if err := batchCompatible(b.proto, p); err != nil {
		return fmt.Errorf("tdg: Rebind lane %d: %w", lane, err)
	}
	b.lanes[lane] = p
	return nil
}

// Step computes all evolution instants of the next iteration k for every
// lane. u holds the input instants lane-strided — u[i*L+lane] is input i
// of lane `lane`, L = Lanes() — and the returned outputs are laid out the
// same way. The returned slice is reused by the next Step.
func (b *BatchEvaluator) Step(u []maxplus.T) ([]maxplus.T, error) {
	L := b.width
	g := b.proto.g
	if len(u) != len(g.inputs)*L {
		return nil, fmt.Errorf("tdg: %d batched inputs supplied, graph %q has %d inputs × %d lanes",
			len(u), g.Name, len(g.inputs), L)
	}
	k := b.k
	slot := k % b.depth
	for i, id := range g.inputs {
		base := (int(id)*b.depth + slot) * L
		copy(b.ring[base:base+L], u[i*L:(i+1)*L])
	}
	b.fillWeights(k)
	b.pass(k, slot)
	for j, id := range g.outputs {
		base := (int(id)*b.depth + slot) * L
		copy(b.outBuf[j*L:(j+1)*L], b.ring[base:base+L])
	}
	b.k++
	return b.outBuf, nil
}

// fillWeights resolves every lane's varying weights at iteration k into
// the lane-strided weight buffer. It runs single-threaded before the
// (possibly parallel) pass: weight closures — and the ExecInfo
// memoization behind derived durations — are only ever called here and
// from the lane's own PeekDelayed, never concurrently.
func (b *BatchEvaluator) fillWeights(k int) {
	L := b.width
	for l, p := range b.lanes {
		if !b.active[l] {
			continue
		}
		w := p.weights
		for v := range w {
			b.wbuf[v*L+l] = w[v].At(k)
		}
	}
}

// pass computes slot `slot` of iteration k for every node and lane. Large
// graphs fan the independent waves of the evaluation order out across
// goroutines; below the work threshold one sequential sweep (which needs
// no wave fences — the topological order respects all dependencies) is
// faster.
func (b *BatchEvaluator) pass(k, slot int) {
	if len(b.proto.nodes)*b.width >= batchParallelMinWork &&
		len(b.proto.waves) > 2 && runtime.GOMAXPROCS(0) > 1 {
		b.parallelPass(k, slot)
		return
	}
	b.runNodes(0, len(b.proto.nodes), k, slot)
}

// parallelPass evaluates wave by wave, splitting each large wave across
// GOMAXPROCS goroutines. Within a wave no node depends on another
// through a zero-delay arc (Program.computeWaves), and delayed arcs read
// slots written in earlier iterations, so the chunks write disjoint ring
// slots and read only settled ones.
func (b *BatchEvaluator) parallelPass(k, slot int) {
	waves := b.proto.waves
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for wi := 0; wi+1 < len(waves); wi++ {
		lo, hi := int(waves[wi]), int(waves[wi+1])
		if (hi-lo)*b.width < batchParallelMinWork {
			b.runNodes(lo, hi, k, slot)
			continue
		}
		chunk := (hi - lo + workers - 1) / workers
		for s := lo; s < hi; s += chunk {
			e := s + chunk
			if e > hi {
				e = hi
			}
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				b.runNodes(s, e, k, slot)
			}(s, e)
		}
		wg.Wait() // fence before the next wave reads this wave's slots
	}
}

// runNodes is the lane-innermost kernel: for each node of
// proto.nodes[nlo:nhi] it folds the packed arcs over all L lanes at
// once. Slicing every ring window to exactly L lets the compiler drop
// the per-lane bounds checks from the inner loops.
func (b *BatchEvaluator) runNodes(nlo, nhi, k, slot int) {
	p := b.proto
	arcs := p.arcs
	ring := b.ring
	wbuf := b.wbuf
	L := b.width
	depth := int32(b.depth)
	s := int32(slot)
	k32 := int32(k)
	warm := k < b.depth-1
	for ni := nlo; ni < nhi; ni++ {
		n := &p.nodes[ni]
		db := int(n.slotBase+s) * L
		dst := ring[db : db+L]
		if cs := n.copySrc; cs >= 0 {
			// Zero-delay identity arcs never reference a pre-origin
			// iteration, so the copy fast path holds in the warm window too.
			sb := int(cs+s) * L
			copy(dst, ring[sb:sb+L])
			continue
		}
		for l := range dst {
			dst[l] = maxplus.Epsilon
		}
		for ai := n.lo; ai < n.hi; ai++ {
			a := &arcs[ai]
			if warm && a.delay > k32 {
				continue // references an iteration before the origin: ε
			}
			ss := s - a.slotSub
			if ss < 0 {
				ss += depth
			}
			sb := int(a.srcBase+ss) * L
			src := ring[sb : sb+L]
			dst := dst[:len(src)]
			if a.widx < 0 {
				if a.w == maxplus.E {
					for l, sv := range src {
						if sv > dst[l] {
							dst[l] = sv // identity: ε stays ε, finite stays put
						}
					}
				} else {
					w := a.w
					for l, sv := range src {
						if v := maxplus.Otimes(sv, w); v > dst[l] {
							dst[l] = v
						}
					}
				}
				continue
			}
			wb := int(a.widx) * L
			ws := wbuf[wb : wb+L]
			ws = ws[:len(src)]
			for l, sv := range src {
				if sv == maxplus.Epsilon {
					continue
				}
				if v := maxplus.Otimes(sv, ws[l]); v > dst[l] {
					dst[l] = v
				}
			}
		}
	}
}

// LaneValuesInto copies one lane's instants at the most recently
// computed iteration into dst (NodeCount entries, node ID order) — the
// batched counterpart of Evaluator.ValuesInto.
func (b *BatchEvaluator) LaneValuesInto(lane int, dst []maxplus.T) {
	if b.k == 0 {
		panic("tdg: LaneValuesInto before first Step")
	}
	if len(dst) != len(b.proto.g.nodes) {
		panic(fmt.Sprintf("tdg: LaneValuesInto dst size %d, want %d", len(dst), len(b.proto.g.nodes)))
	}
	L := b.width
	slot := (b.k - 1) % b.depth
	for i := range dst {
		dst[i] = b.ring[(i*b.depth+slot)*L+lane]
	}
}

// LanePeekDelayed evaluates ⊕ over the given arcs for iteration k on one
// lane's history, mirroring Evaluator.PeekDelayed: every arc must carry
// a positive delay, and k may not be ahead of the batch iteration. The
// arcs come from the lane's own graph, so their weight closures are the
// lane's — safe to call from concurrent per-lane goroutines between
// Steps.
func (b *BatchEvaluator) LanePeekDelayed(lane int, arcs []Arc, k int) (maxplus.T, error) {
	if k > b.k {
		return maxplus.Epsilon, fmt.Errorf("tdg: LanePeekDelayed(%d) ahead of computed iteration %d", k, b.k)
	}
	L := b.width
	acc := maxplus.Epsilon
	for _, a := range arcs {
		if a.Delay < 1 {
			return maxplus.Epsilon, fmt.Errorf("tdg: LanePeekDelayed requires delayed arcs, got delay %d", a.Delay)
		}
		if a.Delay > k {
			continue
		}
		src := b.ring[(int(a.From)*b.depth+((k-a.Delay)%b.depth))*L+lane]
		if src == maxplus.Epsilon {
			continue
		}
		v := a.Weight.Apply(src, k)
		if v > acc {
			acc = v
		}
	}
	return acc, nil
}
