// Package lte models the case study of Section V of the paper: a
// heterogeneous receiver architecture implementing part of the LTE
// physical layer. The application holds eight functions; channel decoding
// runs on a dedicated hardware resource while the seven other functions
// share a digital signal processor. The environment produces data symbols
// in frames of 14 symbols spaced 71.42 µs apart, with frame parameters
// (resource blocks, modulation order, code rate) varying per frame.
//
// The authors' CoFluent model and its exact operation counts are not
// public; this package substitutes synthetic per-function operation-count
// formulas scaled by the LTE frame parameters and calibrated so that the
// observable behaviour matches Fig. 6: the DSP complexity peaks around
// 8 GOPS, the decoder around 150 GOPS, and heavy frames push the decoder
// beyond the symbol period so output instants spread out. The
// substitution exercises the same code path: a statically scheduled
// heterogeneous pipeline with strongly data-dependent execution times.
package lte

import (
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// SymbolPeriod is the LTE symbol spacing used by the paper: 71.42 µs.
const SymbolPeriod maxplus.T = 71_420

// SymbolsPerFrame is the number of symbols in one frame (a 1 ms subframe
// of two slots, as in Fig. 6).
const SymbolsPerFrame = 14

// Default resource speeds (operations per second).
const (
	DefaultDSPSpeed = 8e9   // 8 GOPS digital signal processor
	DefaultHWSpeed  = 150e9 // 150 GOPS turbo-decoder hardware
)

// Spec parameterizes the case study.
type Spec struct {
	Symbols  int   // number of data symbols to process
	Seed     int64 // frame parameter stream seed
	DSPSpeed float64
	HWSpeed  float64
}

func (s Spec) withDefaults() Spec {
	if s.DSPSpeed == 0 {
		s.DSPSpeed = DefaultDSPSpeed
	}
	if s.HWSpeed == 0 {
		s.HWSpeed = DefaultHWSpeed
	}
	if s.Symbols <= 0 {
		s.Symbols = SymbolsPerFrame
	}
	return s
}

// FrameParams returns the varying transmission parameters of a frame:
// number of physical resource blocks (6..100), modulation order (2, 4 or
// 6 bits per symbol) and code rate (0.33..0.92).
func FrameParams(seed int64, frame int) (nprb, qm int, rate float64) {
	nprb = int(workload.Uniform(seed, frame*3, 6, 100))
	qm = []int{2, 4, 6}[workload.Hash64(seed, frame*3+1)%3]
	rate = workload.UniformFloat(seed, frame*3+2, 0.33, 0.92)
	return nprb, qm, rate
}

// Attribute indices of the symbol tokens.
const (
	AttrNPRB = iota
	AttrQm
	AttrRate
)

// SymbolToken builds the token of the k-th data symbol: its frame's
// parameters and a size equal to the coded bits it carries.
func SymbolToken(seed int64, k int) model.Token {
	nprb, qm, rate := FrameParams(seed, k/SymbolsPerFrame)
	nsc := 12 * nprb
	return model.Token{
		Size:  int64(nsc * qm / 8),
		Attrs: []float64{float64(nprb), float64(qm), rate},
	}
}

// Operation-count formulas per function. nsc is the number of active
// subcarriers (12·NPRB); the FFT works on the full 2048-point grid.
const fftSize = 2048

func nscOf(t model.Token) float64 { return 12 * t.Attr(AttrNPRB) }

func opsCPRemoval(t model.Token) model.Load {
	return model.Load{Ops: 1.5*fftSize + 0.5*nscOf(t)}
}

func opsFFT(model.Token) model.Load {
	// 5·N·log2(N) real operations for a radix-2 FFT.
	return model.Load{Ops: 5 * fftSize * 11}
}

func opsChannelEstimation(t model.Token) model.Load {
	return model.Load{Ops: 40 * nscOf(t)}
}

func opsEqualization(t model.Token) model.Load {
	return model.Load{Ops: 60 * nscOf(t)}
}

func opsTransformDecoder(t model.Token) model.Load {
	// DFT-spread-OFDM despreading, ~N·log2(N) over active subcarriers.
	return model.Load{Ops: 5 * nscOf(t) * 11}
}

func opsDemapper(t model.Token) model.Load {
	return model.Load{Ops: 20 * nscOf(t) * t.Attr(AttrQm)}
}

func opsDescrambling(t model.Token) model.Load {
	return model.Load{Ops: 10 * nscOf(t) * t.Attr(AttrQm)}
}

const turboIterations = 6

func opsChannelDecoder(t model.Token) model.Load {
	codedBits := nscOf(t) * t.Attr(AttrQm)
	return model.Load{Ops: 550 * codedBits * turboIterations * t.Attr(AttrRate)}
}

// FunctionNames lists the eight application functions in pipeline order.
var FunctionNames = []string{
	"CPRemoval", "FFT", "ChannelEstimation", "Equalization",
	"TransformDecoder", "Demapper", "Descrambling", "ChannelDecoder",
}

// Receiver builds the case-study architecture.
func Receiver(spec Spec) *model.Architecture {
	spec = spec.withDefaults()
	a := model.NewArchitecture("lte-receiver")

	costs := []model.CostFn{
		opsCPRemoval, opsFFT, opsChannelEstimation, opsEqualization,
		opsTransformDecoder, opsDemapper, opsDescrambling, opsChannelDecoder,
	}
	labels := []string{"Tcpr", "Tfft", "Tce", "Teq", "Ttd", "Tdm", "Tds", "Tcd"}

	chs := make([]*model.Channel, len(costs)+1)
	chs[0] = a.AddChannel("Sym", model.Rendezvous, 0)
	for i := 1; i < len(chs); i++ {
		chs[i] = a.AddChannel("D"+string(rune('0'+i)), model.Rendezvous, 0)
	}

	fns := make([]*model.Function, len(costs))
	for i := range costs {
		fns[i] = a.AddFunction(FunctionNames[i],
			model.Read{Ch: chs[i]},
			model.Exec{Label: labels[i], Cost: costs[i]},
			model.Write{Ch: chs[i+1]},
		)
	}

	dsp := a.AddProcessor("DSP", spec.DSPSpeed)
	hw := a.AddHardware("HW", spec.HWSpeed)
	a.Map(dsp, fns[:7]...)
	a.Map(hw, fns[7])

	// Precompute the per-frame token attributes: SymbolToken allocates a
	// fresh Attrs slice per call, which would be the only allocation left
	// in the equivalent model's steady-state loop (every weight
	// evaluation re-generates the processed token). Tokens of one frame
	// share one read-only attrs array instead.
	seed := spec.Seed
	frames := (spec.Symbols + SymbolsPerFrame - 1) / SymbolsPerFrame
	if frames < 1 {
		frames = 1
	}
	type frameInfo struct {
		size  int64
		attrs [3]float64
	}
	frame := make([]frameInfo, frames)
	for f := range frame {
		tok := SymbolToken(seed, f*SymbolsPerFrame)
		frame[f] = frameInfo{size: tok.Size, attrs: [3]float64{tok.Attrs[0], tok.Attrs[1], tok.Attrs[2]}}
	}
	a.AddSource("Env", chs[0], model.Periodic(SymbolPeriod, 0), func(k int) model.Token {
		fi := &frame[k/SymbolsPerFrame]
		return model.Token{Size: fi.size, Attrs: fi.attrs[:]}
	}, spec.Symbols)
	a.AddSink("Out", chs[len(chs)-1])
	return a
}
