package lte

import (
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
)

func TestReceiverValidates(t *testing.T) {
	a := Receiver(Spec{Symbols: 14, Seed: 1})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Functions) != 8 {
		t.Fatalf("%d functions, want 8", len(a.Functions))
	}
	if len(a.Resources) != 2 {
		t.Fatalf("%d resources", len(a.Resources))
	}
	var dsp, hw int
	for _, r := range a.Resources {
		switch r.Name {
		case "DSP":
			dsp = len(r.Rotation)
		case "HW":
			hw = len(r.Rotation)
		}
	}
	if dsp != 7 || hw != 1 {
		t.Fatalf("rotation sizes: DSP=%d HW=%d", dsp, hw)
	}
}

func TestFrameParamsRanges(t *testing.T) {
	for f := 0; f < 500; f++ {
		nprb, qm, rate := FrameParams(3, f)
		if nprb < 6 || nprb > 100 {
			t.Fatalf("frame %d: nprb=%d", f, nprb)
		}
		if qm != 2 && qm != 4 && qm != 6 {
			t.Fatalf("frame %d: qm=%d", f, qm)
		}
		if rate < 0.33 || rate >= 0.92 {
			t.Fatalf("frame %d: rate=%v", f, rate)
		}
	}
	// Deterministic.
	a1, b1, c1 := FrameParams(3, 7)
	a2, b2, c2 := FrameParams(3, 7)
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatal("FrameParams not deterministic")
	}
}

func TestSymbolsShareFrameParams(t *testing.T) {
	t0 := SymbolToken(5, 0)
	t13 := SymbolToken(5, 13)
	t14 := SymbolToken(5, 14)
	if t0.Attr(AttrNPRB) != t13.Attr(AttrNPRB) {
		t.Fatal("symbols 0 and 13 should share a frame")
	}
	// With overwhelming probability the next frame differs in some
	// parameter; check at least one of many frames differs.
	same := t13.Attr(AttrNPRB) == t14.Attr(AttrNPRB) &&
		t13.Attr(AttrQm) == t14.Attr(AttrQm)
	if same {
		t15 := SymbolToken(5, 28)
		if t15.Attr(AttrNPRB) == t0.Attr(AttrNPRB) && t15.Attr(AttrQm) == t0.Attr(AttrQm) {
			t.Skip("improbable: three identical frames")
		}
	}
}

func tokenWith(nprb, qm int, rate float64) model.Token {
	return model.Token{
		Size:  int64(12 * nprb * qm / 8),
		Attrs: []float64{float64(nprb), float64(qm), rate},
	}
}

// The DSP must be able to sustain the heaviest symbol within roughly one
// symbol period (it is not meant to be the bottleneck), while the decoder
// exceeds the period on heavy frames (the Fig. 6 burstiness).
func TestCalibration(t *testing.T) {
	heavy := tokenWith(100, 6, 0.91)
	light := tokenWith(6, 2, 0.34)

	costFns := []model.CostFn{
		opsCPRemoval, opsFFT, opsChannelEstimation, opsEqualization,
		opsTransformDecoder, opsDemapper, opsDescrambling,
	}
	var dspOps float64
	for _, f := range costFns {
		dspOps += f(heavy).Ops
	}
	dspTime := dspOps / DefaultDSPSpeed * 1e9 // ns
	if dspTime > 1.05*float64(SymbolPeriod) {
		t.Fatalf("heaviest DSP symbol takes %.0f ns > symbol period", dspTime)
	}

	decHeavy := opsChannelDecoder(heavy).Ops / DefaultHWSpeed * 1e9
	if decHeavy < float64(SymbolPeriod) {
		t.Fatalf("heavy decode takes %.0f ns; expected beyond the symbol period", decHeavy)
	}
	decLight := opsChannelDecoder(light).Ops / DefaultHWSpeed * 1e9
	if decLight > float64(SymbolPeriod)/2 {
		t.Fatalf("light decode takes %.0f ns; expected well under the period", decLight)
	}
}

// The equivalent model of the LTE receiver must be exact (the Section V
// claim: "the same accuracy is thus obtained as with the initial
// architecture model").
func TestLTEEquivalentModelExact(t *testing.T) {
	a := Receiver(Spec{Symbols: 6 * SymbolsPerFrame, Seed: 9})
	bt := observe.NewTrace("baseline")
	if _, err := baseline.Run(a, baseline.Options{Trace: bt}); err != nil {
		t.Fatal(err)
	}
	dres, err := derive.Derive(a, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		t.Fatal(err)
	}
	et := observe.NewTrace("equivalent")
	if _, err := m.Run(core.Options{Trace: et}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(bt, et); err != nil {
		t.Fatalf("accuracy violated: %v", err)
	}
}

// The derived graph should be close to the paper's reported 11 nodes.
func TestLTEGraphSize(t *testing.T) {
	// Literal derivation keeps every own-previous-end gate of the 7-deep
	// DSP rotation: 9 transfers + u + 7 delayed references.
	dres, err := derive.Derive(Receiver(Spec{Symbols: 14, Seed: 1}), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dres.Graph.NodeCountWithDelays(); got != 17 {
		t.Fatalf("NodeCountWithDelays = %d, want 17", got)
	}
	// Arc reduction prunes the value-redundant pipeline gates down to the
	// two binding ones, close to the paper's hand-minimized 11 nodes.
	rres, err := derive.Derive(Receiver(Spec{Symbols: 14, Seed: 1}), derive.Options{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rres.Graph.NodeCountWithDelays(); got != 12 {
		t.Fatalf("reduced NodeCountWithDelays = %d, want 12 (paper: 11)", got)
	}
}

// Reduction must not change any instant of the LTE model.
func TestLTEReducedStillExact(t *testing.T) {
	a := Receiver(Spec{Symbols: 3 * SymbolsPerFrame, Seed: 13})
	bt := observe.NewTrace("baseline")
	if _, err := baseline.Run(a, baseline.Options{Trace: bt}); err != nil {
		t.Fatal(err)
	}
	dres, err := derive.Derive(a, derive.Options{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		t.Fatal(err)
	}
	et := observe.NewTrace("equivalent")
	if _, err := m.Run(core.Options{Trace: et}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(bt, et); err != nil {
		t.Fatalf("reduced accuracy violated: %v", err)
	}
}

// The decoder complexity trace must show the hardware near its nominal
// speed while busy (the ~150 GOPS plateaus of Fig. 6c).
func TestLTEComplexityLevels(t *testing.T) {
	a := Receiver(Spec{Symbols: 2 * SymbolsPerFrame, Seed: 4})
	bt := observe.NewTrace("b")
	if _, err := baseline.Run(a, baseline.Options{Trace: bt}); err != nil {
		t.Fatal(err)
	}
	end := bt.EndTime()
	hw, err := bt.ComplexitySeries("HW", 0, end, maxplus.T(1000))
	if err != nil {
		t.Fatal(err)
	}
	if max := hw.Max(); max < 100 || max > 160 {
		t.Fatalf("HW peak complexity %.1f GOPS, want ~150", max)
	}
	dsp, err := bt.ComplexitySeries("DSP", 0, end, maxplus.T(1000))
	if err != nil {
		t.Fatal(err)
	}
	if max := dsp.Max(); max < 5 || max > 9 {
		t.Fatalf("DSP peak complexity %.1f GOPS, want ~8", max)
	}
}
