package lte

import (
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

// The case study registers itself as a scenario, so the CLIs and the
// cross-engine tests can run any engine on the LTE receiver by name.
func init() {
	zoo.Register(zoo.Scenario{
		Name:       "lte",
		Desc:       "the Section V LTE receiver case study",
		ParamsHelp: "symbols, seed",
		Build: func(p zoo.Params) *model.Architecture {
			return Receiver(Spec{
				Symbols: lookup(p, "symbols", 1000),
				Seed:    int64(lookup(p, "seed", 23)),
			})
		},
		HybridGroup: func(zoo.Params) []string {
			// The DSP cluster; the hardware decoder stays simulated.
			return append([]string(nil), FunctionNames[:7]...)
		},
	})
}

func lookup(p zoo.Params, name string, def int) int {
	if v, ok := p.Lookup(name); ok {
		return int(v)
	}
	return def
}
