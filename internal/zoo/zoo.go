// Package zoo builds the reference architectures used throughout the
// repository: the paper's didactic example (Fig. 1), the chained variants
// behind Table I, and the synthetic pipelines behind the Fig. 5 complexity
// sweep. Tests, examples, benchmarks and the experiment harness all share
// these constructors so that every engine sees identical models.
package zoo

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// DidacticSpec parameterizes the didactic example.
type DidacticSpec struct {
	Tokens  int       // number of tokens produced through M1
	Period  maxplus.T // source period; 0 means an eager source
	Seed    int64     // token size stream seed
	UseFIFO bool      // use capacity-2 FIFO channels instead of rendezvous
	// Sizes overrides the token-size stream (nil: the default seeded
	// random stream). Phase-changing workloads plug in here.
	Sizes func(k int) int64
}

// didactic cost bases in operations; with 1 GOPS resources the execution
// durations are (base + size) nanoseconds, data-dependent through the
// token size.
var didacticBases = map[string]float64{
	"Ti1": 100, "Tj1": 140, "Ti2": 120, "Ti3": 180, "Tj3": 160, "Ti4": 110,
}

const (
	didacticSpeed    = 1e9 // ops/s for P1 and P2
	didacticSizeMin  = 64
	didacticSizeSpan = 192
)

// DidacticSize returns the size of the k-th token for a given seed.
func DidacticSize(seed int64, k int) int64 {
	return workload.SizeStream(seed, didacticSizeMin, didacticSizeSpan)(k)
}

// DidacticDurations returns the six execution durations of iteration k in
// ticks, exactly as both engines will compute them.
func DidacticDurations(seed int64, k int) (ti1, tj1, ti2, ti3, tj3, ti4 maxplus.T) {
	size := float64(DidacticSize(seed, k))
	d := func(label string) maxplus.T {
		return maxplus.T(didacticBases[label] + size) // speed 1e9 => ns = ops
	}
	return d("Ti1"), d("Tj1"), d("Ti2"), d("Ti3"), d("Tj3"), d("Ti4")
}

// Didactic builds the paper's Fig. 1 architecture: functions F1..F4 over
// channels M1..M6, F1+F2 on processor P1, F3+F4 on dedicated hardware P2,
// source F0 and an environment sink.
func Didactic(spec DidacticSpec) *model.Architecture {
	a, _ := didacticStage(model.NewArchitecture("didactic"), 0, spec, nil)
	return a
}

// DidacticChain builds n didactic stages connected in series: the M6 of
// stage s feeds the M1 of stage s+1. These are the larger architecture
// models of Table I — each added stage contributes 9 temporal dependency
// graph nodes (6 instants + 3 delayed references), giving 10/19/28/37
// nodes for 1/2/3/4 stages.
func DidacticChain(n int, spec DidacticSpec) *model.Architecture {
	if n < 1 {
		panic("zoo: chain needs at least one stage")
	}
	a := model.NewArchitecture(fmt.Sprintf("didactic-chain-%d", n))
	var in *model.Channel
	for s := 0; s < n; s++ {
		a, in = didacticStage(a, s, spec, in)
	}
	a.AddSink("env", in)
	return a
}

// didacticStage appends one didactic stage to a. When in is nil the stage
// is fed by a fresh source (and the caller of Didactic adds the sink);
// otherwise the stage reads from in. It returns the stage's output
// channel. For the single-stage Didactic, the sink is added here.
func didacticStage(a *model.Architecture, s int, spec DidacticSpec, in *model.Channel) (*model.Architecture, *model.Channel) {
	suffix := ""
	if s > 0 || in != nil {
		suffix = fmt.Sprintf("_%d", s+1)
	}
	kind := model.Rendezvous
	capacity := 0
	if spec.UseFIFO {
		kind = model.FIFO
		capacity = 2
	}
	name := func(base string) string { return base + suffix }

	var m1 *model.Channel
	if in == nil {
		m1 = a.AddChannel(name("M1"), kind, capacity)
		sched := model.Eager()
		if spec.Period > 0 {
			sched = model.Periodic(spec.Period, 0)
		}
		tokens := spec.Tokens
		if tokens <= 0 {
			tokens = 1
		}
		sizes := spec.Sizes
		if sizes == nil {
			seed := spec.Seed
			sizes = func(k int) int64 { return DidacticSize(seed, k) }
		}
		a.AddSource("F0", m1, sched, func(k int) model.Token {
			return model.Token{Size: sizes(k)}
		}, tokens)
	} else {
		m1 = in
	}
	m2 := a.AddChannel(name("M2"), kind, capacity)
	m3 := a.AddChannel(name("M3"), kind, capacity)
	m4 := a.AddChannel(name("M4"), kind, capacity)
	m5 := a.AddChannel(name("M5"), kind, capacity)
	m6 := a.AddChannel(name("M6"), kind, capacity)

	cost := func(label string) model.CostFn {
		base := didacticBases[label]
		return func(t model.Token) model.Load {
			return model.Load{Ops: base + float64(t.Size)}
		}
	}
	f1 := a.AddFunction(name("F1"),
		model.Read{Ch: m1},
		model.Exec{Label: name("Ti1"), Cost: cost("Ti1")},
		model.Write{Ch: m2},
		model.Exec{Label: name("Tj1"), Cost: cost("Tj1")},
		model.Write{Ch: m3},
	)
	f2 := a.AddFunction(name("F2"),
		model.Read{Ch: m3},
		model.Exec{Label: name("Ti2"), Cost: cost("Ti2")},
		model.Write{Ch: m4},
	)
	f3 := a.AddFunction(name("F3"),
		model.Read{Ch: m2},
		model.Exec{Label: name("Ti3"), Cost: cost("Ti3")},
		model.Read{Ch: m4},
		model.Exec{Label: name("Tj3"), Cost: cost("Tj3")},
		model.Write{Ch: m5},
	)
	f4 := a.AddFunction(name("F4"),
		model.Read{Ch: m5},
		model.Exec{Label: name("Ti4"), Cost: cost("Ti4")},
		model.Write{Ch: m6},
	)
	p1 := a.AddProcessor(name("P1"), didacticSpeed)
	p2 := a.AddHardware(name("P2"), didacticSpeed)
	a.Map(p1, f1, f2)
	a.Map(p2, f3, f4)

	if in == nil && a.Name == "didactic" {
		a.AddSink("env", m6)
	}
	return a, m6
}

// PipelineSpec parameterizes the synthetic pipelines of the Fig. 5 sweep.
type PipelineSpec struct {
	XSize  int // number of channel transfer instants (the paper's "X size")
	Tokens int
	Period maxplus.T // 0 means eager
	Seed   int64
}

// Pipeline builds a linear pipeline with XSize transfer instants:
// XSize-1 functions, each on its own processor, reading C_{i-1} and
// writing C_i. The number of saveable events grows with XSize while the
// temporal dependency graph stays minimal, which is exactly the knob the
// Fig. 5 experiment turns.
func Pipeline(spec PipelineSpec) *model.Architecture {
	if spec.XSize < 2 {
		panic("zoo: pipeline needs XSize >= 2")
	}
	a := model.NewArchitecture(fmt.Sprintf("pipeline-x%d", spec.XSize))
	nfun := spec.XSize - 1
	chs := make([]*model.Channel, spec.XSize)
	for i := range chs {
		chs[i] = a.AddChannel(fmt.Sprintf("C%d", i), model.Rendezvous, 0)
	}
	for i := 0; i < nfun; i++ {
		base := 80 + 10*float64(i%7)
		f := a.AddFunction(fmt.Sprintf("S%d", i+1),
			model.Read{Ch: chs[i]},
			model.Exec{Label: fmt.Sprintf("T%d", i+1), Cost: func(t model.Token) model.Load {
				return model.Load{Ops: base + float64(t.Size)}
			}},
			model.Write{Ch: chs[i+1]},
		)
		p := a.AddProcessor(fmt.Sprintf("P%d", i+1), 1e9)
		a.Map(p, f)
	}
	sched := model.Eager()
	if spec.Period > 0 {
		sched = model.Periodic(spec.Period, 0)
	}
	tokens := spec.Tokens
	if tokens <= 0 {
		tokens = 1
	}
	seed := spec.Seed
	a.AddSource("src", chs[0], sched, func(k int) model.Token {
		return model.Token{Size: workload.SizeStream(seed, 32, 96)(k)}
	}, tokens)
	a.AddSink("env", chs[spec.XSize-1])
	return a
}
