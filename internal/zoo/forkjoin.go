package zoo

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// DefaultForkJoinWorkers is the worker count used when a ForkJoin spec
// or parameter set does not name one.
const DefaultForkJoinWorkers = 3

// ForkJoinSpec parameterizes the fork-join scenario.
type ForkJoinSpec struct {
	Workers int       // parallel workers between split and gather (>= 1)
	Tokens  int       // tokens produced by the source
	Period  maxplus.T // source period; 0 means an eager source
	Seed    int64     // token size stream seed
}

// ForkJoin builds a fork-join architecture: a producer reads the source
// stream, splits each token to N parallel workers (one write per worker
// channel), every worker processes its copy on its own processor with a
// distinct data-dependent cost, and a gather stage on dedicated hardware
// joins the N results and emits one output token. Unlike the didactic
// example and the linear pipelines, iteration k's critical path runs
// through whichever worker is slowest, exercising the ⊕ (max) over
// parallel branches in every engine.
func ForkJoin(spec ForkJoinSpec) *model.Architecture {
	n := spec.Workers
	if n < 1 {
		panic("zoo: fork-join needs at least one worker")
	}
	a := model.NewArchitecture(fmt.Sprintf("forkjoin-%d", n))

	cin := a.AddChannel("FJ_in", model.Rendezvous, 0)
	fan := make([]*model.Channel, n)
	join := make([]*model.Channel, n)
	for i := range fan {
		fan[i] = a.AddChannel(fmt.Sprintf("FJ_f%d", i+1), model.Rendezvous, 0)
		join[i] = a.AddChannel(fmt.Sprintf("FJ_g%d", i+1), model.Rendezvous, 0)
	}
	out := a.AddChannel("FJ_out", model.Rendezvous, 0)

	cost := func(base float64) model.CostFn {
		return func(t model.Token) model.Load {
			return model.Load{Ops: base + float64(t.Size)}
		}
	}

	// Producer: one split execution, then one write per worker.
	body := []model.Stmt{
		model.Read{Ch: cin},
		model.Exec{Label: "Tsplit", Cost: cost(90)},
	}
	for i := range fan {
		body = append(body, model.Write{Ch: fan[i]})
	}
	split := a.AddFunction("Split", body...)
	psplit := a.AddProcessor("Psplit", 1e9)
	a.Map(psplit, split)

	// Workers: one per processor, staggered cost bases so the critical
	// branch is data-dependent, not fixed.
	for i := 0; i < n; i++ {
		w := a.AddFunction(fmt.Sprintf("W%d", i+1),
			model.Read{Ch: fan[i]},
			model.Exec{Label: fmt.Sprintf("Tw%d", i+1), Cost: cost(100 + 30*float64(i%5))},
			model.Write{Ch: join[i]},
		)
		p := a.AddProcessor(fmt.Sprintf("Pw%d", i+1), 1e9)
		a.Map(p, w)
	}

	// Gather: read every branch, join, emit.
	gbody := make([]model.Stmt, 0, n+2)
	for i := range join {
		gbody = append(gbody, model.Read{Ch: join[i]})
	}
	gbody = append(gbody,
		model.Exec{Label: "Tgather", Cost: cost(120)},
		model.Write{Ch: out},
	)
	gather := a.AddFunction("Gather", gbody...)
	pg := a.AddHardware("Pgather", 1e9)
	a.Map(pg, gather)

	sched := model.Eager()
	if spec.Period > 0 {
		sched = model.Periodic(spec.Period, 0)
	}
	tokens := spec.Tokens
	if tokens <= 0 {
		tokens = 1
	}
	seed := spec.Seed
	a.AddSource("src", cin, sched, func(k int) model.Token {
		return model.Token{Size: workload.SizeStream(seed, 48, 144)(k)}
	}, tokens)
	a.AddSink("env", out)
	return a
}

// ForkJoinFromParams builds the fork-join scenario from the parameters
// workers, tokens, period and seed.
func ForkJoinFromParams(p Params) *model.Architecture {
	return ForkJoin(ForkJoinSpec{
		Workers: int(param(p, "workers", DefaultForkJoinWorkers)),
		Tokens:  int(param(p, "tokens", 1000)),
		Period:  maxplus.T(param(p, "period", 800)),
		Seed:    param(p, "seed", 11),
	})
}

// forkJoinHybridGroup abstracts the parallel region: every worker plus
// the gather stage. The group is closed under their resources, takes the
// N fan-out channels as boundary inputs and emits through FJ_out.
func forkJoinHybridGroup(workers int) []string {
	group := make([]string, 0, workers+1)
	for i := 1; i <= workers; i++ {
		group = append(group, fmt.Sprintf("W%d", i))
	}
	return append(group, "Gather")
}
