package zoo

import (
	"testing"

	"dyncomp/internal/model"
)

func TestDidacticValidates(t *testing.T) {
	a := Didactic(DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Functions) != 4 || len(a.Channels) != 6 {
		t.Fatalf("functions=%d channels=%d", len(a.Functions), len(a.Channels))
	}
	if len(a.Sources) != 1 || len(a.Sinks) != 1 {
		t.Fatalf("sources=%d sinks=%d", len(a.Sources), len(a.Sinks))
	}
	if a.Name != "didactic" {
		t.Fatalf("name = %q", a.Name)
	}
}

func TestDidacticChainValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		a := DidacticChain(n, DidacticSpec{Tokens: 10, Period: 100, Seed: 1})
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(a.Functions); got != 4*n {
			t.Fatalf("n=%d: %d functions", n, got)
		}
		if got := len(a.Channels); got != 6+5*(n-1) {
			t.Fatalf("n=%d: %d channels", n, got)
		}
		if got := len(a.Resources); got != 2*n {
			t.Fatalf("n=%d: %d resources", n, got)
		}
	}
}

func TestDidacticChainPanicsOnZeroStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DidacticChain(0, DidacticSpec{})
}

func TestDidacticDurationsMatchCosts(t *testing.T) {
	spec := DidacticSpec{Tokens: 5, Period: 100, Seed: 42}
	a := Didactic(spec)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	execs, err := a.Execs()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]*model.ExecInfo{}
	for _, e := range execs {
		byLabel[e.Label] = e
	}
	for k := 0; k < 5; k++ {
		ti1, tj1, ti2, ti3, tj3, ti4 := DidacticDurations(spec.Seed, k)
		checks := map[string]interface{ IsEpsilon() bool }{}
		_ = checks
		if byLabel["Ti1"].Duration(k) != ti1 {
			t.Fatalf("Ti1(%d) mismatch", k)
		}
		if byLabel["Tj1"].Duration(k) != tj1 {
			t.Fatalf("Tj1(%d) mismatch", k)
		}
		if byLabel["Ti2"].Duration(k) != ti2 {
			t.Fatalf("Ti2(%d) mismatch", k)
		}
		if byLabel["Ti3"].Duration(k) != ti3 {
			t.Fatalf("Ti3(%d) mismatch", k)
		}
		if byLabel["Tj3"].Duration(k) != tj3 {
			t.Fatalf("Tj3(%d) mismatch", k)
		}
		if byLabel["Ti4"].Duration(k) != ti4 {
			t.Fatalf("Ti4(%d) mismatch", k)
		}
	}
}

func TestDidacticFIFOVariant(t *testing.T) {
	a := Didactic(DidacticSpec{Tokens: 10, Period: 100, Seed: 1, UseFIFO: true})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ch := range a.Channels {
		if ch.Kind != model.FIFO || ch.Capacity != 2 {
			t.Fatalf("channel %s: kind=%v cap=%d", ch.Name, ch.Kind, ch.Capacity)
		}
	}
}

func TestPipelineValidates(t *testing.T) {
	for _, x := range []int{2, 6, 30} {
		a := Pipeline(PipelineSpec{XSize: x, Tokens: 10, Period: 100, Seed: 1})
		if err := a.Validate(); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if got := len(a.Functions); got != x-1 {
			t.Fatalf("x=%d: %d functions", x, got)
		}
		if got := len(a.Channels); got != x {
			t.Fatalf("x=%d: %d channels", x, got)
		}
	}
}

func TestPipelinePanicsOnTinyX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pipeline(PipelineSpec{XSize: 1})
}

func TestDidacticSizeRange(t *testing.T) {
	for k := 0; k < 1000; k++ {
		s := DidacticSize(9, k)
		if s < 64 || s >= 256 {
			t.Fatalf("size out of range: %d", s)
		}
	}
}
