package zoo

import (
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// PhasedSpec parameterizes the phase-changing didactic workload: the
// Fig. 1 architecture processing a token stream whose size regime shifts
// between steady plateaus and noisy transients. It is the reference
// scenario for the adaptive engine — steady phases run on the equivalent
// model, every transient forces a fallback to event-driven execution.
type PhasedSpec struct {
	Tokens  int              // total tokens; must cover the phase plan
	Period  maxplus.T        // source period; 0 means an eager source
	Seed    int64            // transient-noise seed
	UseFIFO bool             // capacity-2 FIFO channels instead of rendezvous
	Phases  []workload.Phase // nil: DefaultPhases(Tokens)
	Stages  int              // chained didactic stages; 0 or 1: single stage
}

// Phased builds the phase-changing didactic architecture.
func Phased(spec PhasedSpec) *model.Architecture {
	phases := spec.Phases
	if phases == nil {
		phases = DefaultPhases(spec.Tokens)
	}
	d := DidacticSpec{
		Tokens:  spec.Tokens,
		Period:  spec.Period,
		Seed:    spec.Seed,
		UseFIFO: spec.UseFIFO,
		Sizes:   workload.PhaseStream(spec.Seed, phases),
	}
	if spec.Stages > 1 {
		return DidacticChain(spec.Stages, d)
	}
	return Didactic(d)
}

// DefaultPhases is the canonical phase plan used by tests, benchmarks
// and experiments: three steady plateaus at distinct operating points,
// separated by short noisy transients (~5% of the run each), scaled to
// the token count. With the didactic costs the plateaus dominate, so an
// adaptive run abstracts the bulk of the evolution and falls back twice.
func DefaultPhases(tokens int) []workload.Phase {
	if tokens < 20 {
		return []workload.Phase{{Len: tokens, Size: 128}}
	}
	steady := tokens * 3 / 10
	trans := tokens / 20
	rest := tokens - 2*steady - 2*trans
	return []workload.Phase{
		{Len: steady, Size: 128},
		{Len: trans, Size: 96, Span: 160},
		{Len: steady, Size: 224},
		{Len: trans, Size: 64, Span: 192},
		{Len: rest, Size: 96},
	}
}

// PhasedFromParams builds the phase-changing didactic workload from the
// parameters tokens, period, seed, fifo (0/1) and stages.
func PhasedFromParams(p Params) *model.Architecture {
	return Phased(PhasedSpec{
		Tokens:  int(param(p, "tokens", 1000)),
		Period:  maxplus.T(param(p, "period", 1100)),
		Seed:    param(p, "seed", 7),
		UseFIFO: param(p, "fifo", 0) != 0,
		Stages:  int(param(p, "stages", 1)),
	})
}
