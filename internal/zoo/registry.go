package zoo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
)

// Scenario is a named, parameterized architecture family. Scenarios are
// the second half of the engine × scenario matrix: any registered engine
// (internal/engine) can run any registered scenario by name, which is
// what the CLIs, the cross-engine equivalence tests and the experiment
// harness iterate over.
type Scenario struct {
	// Name is the registry key ("didactic", "pipeline", ...).
	Name string
	// Desc is a one-line description for CLI usage texts.
	Desc string
	// ParamsHelp lists the recognized parameter names (absent parameters
	// fall back to scenario defaults), for CLI usage texts.
	ParamsHelp string
	// Build maps named integer parameters to an architecture. It must be
	// deterministic and safe for concurrent calls.
	Build func(Params) *model.Architecture
	// HybridGroup returns the scenario's canonical function group for
	// the hybrid engine on the architecture Build(p) — the group is
	// closed under resources and emits through one boundary channel.
	// Nil when the scenario has no canonical group (e.g. randomized
	// structures); the hybrid engine is then skipped for it.
	HybridGroup func(p Params) []string
}

// ParamNames returns the scenario's recognized parameter names, parsed
// from ParamsHelp (a comma-separated list). An empty ParamsHelp yields
// nil: the scenario takes no parameters.
func (s Scenario) ParamNames() []string {
	if strings.TrimSpace(s.ParamsHelp) == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(s.ParamsHelp, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// CheckParams rejects parameters the scenario does not recognize — the
// builders silently fall back to defaults on absent names, so a typoed
// parameter would otherwise be ignored without a trace. Serving layers
// decoding parameters from JSON call this before Build.
func (s Scenario) CheckParams(p ParamMap) error {
	known := s.ParamNames()
	var bad []string
	for name := range p {
		found := false
		for _, k := range known {
			if k == name {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("zoo: scenario %q: unknown parameter(s) %s (recognized: %s)",
		s.Name, strings.Join(bad, ", "), s.ParamsHelp)
}

// GroupFor returns the scenario's canonical abstraction group when the
// named engine needs one ("hybrid"), and nil otherwise — including when
// the scenario declares no canonical group, which callers should treat
// as "this engine × scenario combination is not runnable by default".
func (s Scenario) GroupFor(engineName string, p Params) []string {
	if engineName != "hybrid" || s.HybridGroup == nil {
		return nil
	}
	return s.HybridGroup(p)
}

// ParamMap is a literal Params implementation for tests and defaults.
type ParamMap map[string]int64

// Lookup implements Params.
func (m ParamMap) Lookup(name string) (int64, bool) {
	v, ok := m[name]
	return v, ok
}

var (
	scenarioMu  sync.RWMutex
	scenarioReg = map[string]Scenario{}
)

// Register adds a scenario to the registry. It panics on an empty name,
// a nil Build, or a duplicate — programmer errors in an init function.
func Register(s Scenario) {
	if s.Name == "" {
		panic("zoo: Register with empty scenario name")
	}
	if s.Build == nil {
		panic(fmt.Sprintf("zoo: scenario %q has no Build", s.Name))
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[s.Name]; dup {
		panic(fmt.Sprintf("zoo: duplicate scenario %q", s.Name))
	}
	scenarioReg[s.Name] = s
}

// LookupScenario returns the scenario registered under name; the error
// of an unknown name lists every registered scenario.
func LookupScenario(name string) (Scenario, error) {
	scenarioMu.RLock()
	s, ok := scenarioReg[name]
	scenarioMu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("zoo: unknown scenario %q (registered: %s)",
			name, strings.Join(ScenarioNames(), "|"))
	}
	return s, nil
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarioReg))
	for _, s := range scenarioReg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioReg))
	for n := range scenarioReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// didacticHybridGroup is the canonical hybrid group of the (chained)
// didactic architecture: the last stage's hardware half {F3, F4} —
// closed under resource P2 of that stage, emitting through the final M6.
func didacticHybridGroup(stages int) []string {
	suffix := ""
	if stages > 1 {
		suffix = fmt.Sprintf("_%d", stages)
	}
	return []string{"F3" + suffix, "F4" + suffix}
}

func init() {
	Register(Scenario{
		Name:       "didactic",
		Desc:       "the paper's Fig. 1 example (Table I chained variant via stages)",
		ParamsHelp: "stages, tokens, period, seed, fifo",
		Build:      func(p Params) *model.Architecture { return DidacticFromParams(p) },
		HybridGroup: func(p Params) []string {
			return didacticHybridGroup(int(param(p, "stages", 1)))
		},
	})
	Register(Scenario{
		Name:       "chain",
		Desc:       "chained didactic stages in series (Table I Examples 2-4)",
		ParamsHelp: "stages, tokens, period, seed, fifo",
		Build: func(p Params) *model.Architecture {
			return DidacticChain(int(param(p, "stages", 2)), DidacticSpec{
				Tokens:  int(param(p, "tokens", 1000)),
				Period:  maxplus.T(param(p, "period", 1200)),
				Seed:    param(p, "seed", 41),
				UseFIFO: param(p, "fifo", 0) != 0,
			})
		},
		HybridGroup: func(p Params) []string {
			return didacticHybridGroup(int(param(p, "stages", 2)))
		},
	})
	Register(Scenario{
		Name:       "pipeline",
		Desc:       "the Fig. 5 synthetic linear pipeline",
		ParamsHelp: "xsize, tokens, period, seed",
		Build:      func(p Params) *model.Architecture { return PipelineFromParams(p) },
		HybridGroup: func(p Params) []string {
			// The tail of the pipeline: up to the last two stages.
			nfun := int(param(p, "xsize", 6)) - 1
			first := nfun - 1
			if first < 1 {
				first = 1
			}
			var group []string
			for i := first; i <= nfun; i++ {
				group = append(group, fmt.Sprintf("S%d", i))
			}
			return group
		},
	})
	Register(Scenario{
		Name:       "phased",
		Desc:       "phase-changing didactic workload (the adaptive engine's reference)",
		ParamsHelp: "tokens, period, seed, fifo, stages",
		Build:      func(p Params) *model.Architecture { return PhasedFromParams(p) },
		HybridGroup: func(p Params) []string {
			return didacticHybridGroup(int(param(p, "stages", 1)))
		},
	})
	Register(Scenario{
		Name:       "forkjoin",
		Desc:       "one producer fanning out to N parallel workers with a gather stage",
		ParamsHelp: "workers, tokens, period, seed",
		Build:      func(p Params) *model.Architecture { return ForkJoinFromParams(p) },
		HybridGroup: func(p Params) []string {
			return forkJoinHybridGroup(int(param(p, "workers", DefaultForkJoinWorkers)))
		},
	})
	Register(Scenario{
		Name:       "random",
		Desc:       "randomized-but-valid architecture (property-test structures)",
		ParamsHelp: "seed, tokens",
		Build:      func(p Params) *model.Architecture { return RandomFromParams(p) },
		// No canonical hybrid group: the structure varies with the seed.
	})
}
