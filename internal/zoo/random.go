package zoo

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/workload"
)

// RandomSpec parameterizes Random.
type RandomSpec struct {
	Seed   int64
	Tokens int
}

// Random builds a randomized — but always valid and feasibly scheduled —
// architecture: a pipeline of 2..5 blocks, each either a single function
// or a fork-join diamond, over randomly chosen channel protocols,
// resource kinds, sharing patterns and cost functions. Everything is a
// pure function of the seed.
//
// The property-based integration tests run the reference executor and
// the equivalent model on hundreds of these and require bit-exact
// agreement of every evolution instant.
func Random(spec RandomSpec) *model.Architecture {
	r := &randSrc{seed: spec.Seed}
	a := model.NewArchitecture(fmt.Sprintf("random-%d", spec.Seed))

	nblocks := 2 + r.intn(4)
	// A shared processor that some blocks may map onto (in pipeline
	// order, so the rotation stays feasible).
	shared := a.AddProcessor("Pshared", 1e9)

	cur := a.AddChannel("c_in", r.chanKind(), r.capacity())
	tokens := spec.Tokens
	if tokens <= 0 {
		tokens = 1
	}
	sched := model.Eager()
	if r.intn(2) == 0 {
		period := maxplus.T(300 + r.intn(1500))
		sched = model.Periodic(period, maxplus.T(r.intn(100)))
	}
	seed := spec.Seed
	a.AddSource("src", cur, sched, func(k int) model.Token {
		return model.Token{Size: workload.SizeStream(seed, 32, 128)(k)}
	}, tokens)

	for bi := 0; bi < nblocks; bi++ {
		if r.intn(3) == 0 {
			cur = r.diamond(a, bi, cur)
		} else {
			cur = r.stage(a, bi, cur, shared)
		}
	}
	a.AddSink("env", cur)
	return a
}

// randSrc is a deterministic random stream over workload.Hash64.
type randSrc struct {
	seed int64
	n    int
}

func (r *randSrc) intn(n int) int {
	r.n++
	return int(workload.Hash64(r.seed, r.n) % uint64(n))
}

func (r *randSrc) chanKind() model.ChannelKind {
	if r.intn(3) == 0 {
		return model.FIFO
	}
	return model.Rendezvous
}

func (r *randSrc) capacity() int { return 1 + r.intn(3) }

func (r *randSrc) cost() model.CostFn {
	base := float64(50 + r.intn(400))
	perByte := float64(r.intn(4))
	return model.OpsPerByte(base, perByte)
}

// stage appends a single-function block, mapped either onto the shared
// processor or a fresh resource. A function whose body ends in an Exec
// never goes on the shared processor: a successor gated by its auxiliary
// end instant could then depend on its own read — an infeasible static
// schedule (the derivation would reject it as a zero-delay cycle).
func (r *randSrc) stage(a *model.Architecture, bi int, in *model.Channel, shared *model.Resource) *model.Channel {
	out := a.AddChannel(fmt.Sprintf("c%d", bi), r.chanKind(), r.capacity())
	body := []model.Stmt{model.Read{Ch: in}}
	nexec := 1 + r.intn(2)
	for e := 0; e < nexec; e++ {
		body = append(body, model.Exec{Label: fmt.Sprintf("T%d_%d", bi, e), Cost: r.cost()})
	}
	body = append(body, model.Write{Ch: out})
	trailing := r.intn(4) == 0
	if trailing {
		// Trailing execution: exercises auxiliary end-of-turn nodes.
		body = append(body, model.Exec{Label: fmt.Sprintf("T%d_post", bi), Cost: r.cost()})
	}
	f := a.AddFunction(fmt.Sprintf("F%d", bi), body...)
	switch choice := r.intn(3); {
	case choice == 0 && !trailing:
		a.Map(shared, f)
	case choice == 1:
		a.Map(a.AddProcessor(fmt.Sprintf("P%d", bi), 1e9+float64(r.intn(3))*5e8), f)
	default:
		a.Map(a.AddHardware(fmt.Sprintf("H%d", bi), 1e9+float64(r.intn(3))*5e8), f)
	}
	return out
}

// diamond appends a fork-join block in the style of the didactic example:
// a splitter on a processor, two workers on a second resource, the join
// on the splitter's processor.
func (r *randSrc) diamond(a *model.Architecture, bi int, in *model.Channel) *model.Channel {
	name := func(s string) string { return fmt.Sprintf("%s%d", s, bi) }
	l := a.AddChannel(name("dl"), r.chanKind(), r.capacity())
	rr := a.AddChannel(name("dr"), r.chanKind(), r.capacity())
	lo := a.AddChannel(name("dlo"), r.chanKind(), r.capacity())
	ro := a.AddChannel(name("dro"), r.chanKind(), r.capacity())
	out := a.AddChannel(name("dout"), r.chanKind(), r.capacity())

	split := a.AddFunction(name("split"),
		model.Read{Ch: in},
		model.Exec{Label: name("Tsplit"), Cost: r.cost()},
		model.Write{Ch: l},
		model.Write{Ch: rr},
	)
	workL := a.AddFunction(name("workL"),
		model.Read{Ch: l},
		model.Exec{Label: name("TworkL"), Cost: r.cost()},
		model.Write{Ch: lo},
	)
	workR := a.AddFunction(name("workR"),
		model.Read{Ch: rr},
		model.Exec{Label: name("TworkR"), Cost: r.cost()},
		model.Write{Ch: ro},
	)
	join := a.AddFunction(name("join"),
		model.Read{Ch: lo},
		model.Exec{Label: name("TjoinL"), Cost: r.cost()},
		model.Read{Ch: ro},
		model.Exec{Label: name("TjoinR"), Cost: r.cost()},
		model.Write{Ch: out},
	)
	p := a.AddProcessor(name("Pd"), 1e9)
	a.Map(p, split, join)
	if r.intn(2) == 0 {
		a.Map(a.AddHardware(name("Hd"), 2e9), workL, workR)
	} else {
		// Two workers on one sequential processor would deadlock behind
		// the join's rotation gate; give each its own.
		a.Map(a.AddProcessor(name("PwL"), 2e9), workL)
		a.Map(a.AddProcessor(name("PwR"), 2e9), workR)
	}
	return out
}
