package zoo_test

import (
	"fmt"
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/core"
	"dyncomp/internal/derive"
	"dyncomp/internal/hybrid"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// The built-in scenarios must all be registered, buildable with default
// parameters, and valid.
func TestRegisteredScenariosBuildValidModels(t *testing.T) {
	names := zoo.ScenarioNames()
	for _, want := range []string{"chain", "didactic", "forkjoin", "phased", "pipeline", "random"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
	}
	for _, sc := range zoo.Scenarios() {
		a := sc.Build(zoo.ParamMap{"tokens": 5, "symbols": 5})
		if a == nil {
			t.Fatalf("scenario %q built nil architecture", sc.Name)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
	}
}

// ParamNames parses ParamsHelp; CheckParams rejects unknown parameter
// names (the builders silently default absent ones, so a typo would
// otherwise vanish) and accepts every advertised one.
func TestParamNamesAndCheckParams(t *testing.T) {
	sc, err := zoo.LookupScenario("didactic")
	if err != nil {
		t.Fatal(err)
	}
	names := sc.ParamNames()
	if len(names) == 0 {
		t.Fatal("didactic advertises no parameters")
	}
	all := zoo.ParamMap{}
	for _, n := range names {
		all[n] = 1
	}
	if err := sc.CheckParams(all); err != nil {
		t.Fatalf("advertised params rejected: %v", err)
	}
	if err := sc.CheckParams(zoo.ParamMap{"tokens": 10, "bogus": 1}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if err := sc.CheckParams(nil); err != nil {
		t.Fatalf("empty params rejected: %v", err)
	}
	if got := (zoo.Scenario{}).ParamNames(); got != nil {
		t.Fatalf("empty ParamsHelp parsed to %v, want nil", got)
	}
}

func TestLookupScenario(t *testing.T) {
	if _, err := zoo.LookupScenario("pipeline"); err != nil {
		t.Fatal(err)
	}
	if _, err := zoo.LookupScenario("no-such"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty name", func() { zoo.Register(zoo.Scenario{}) })
	expectPanic("nil build", func() { zoo.Register(zoo.Scenario{Name: "x"}) })
	expectPanic("duplicate", func() {
		sc, err := zoo.LookupScenario("pipeline")
		if err != nil {
			t.Fatal(err)
		}
		zoo.Register(sc)
	})
}

// The fork-join scenario: structure sanity, bit-exact equivalence, and a
// usable hybrid group.
func TestForkJoin(t *testing.T) {
	spec := zoo.ForkJoinSpec{Workers: 4, Tokens: 30, Period: 700, Seed: 5}
	a := zoo.ForkJoin(spec)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Producer + N workers + gather.
	if got, want := len(a.Functions), 4+2; got != want {
		t.Fatalf("functions = %d, want %d", got, want)
	}

	bt := observe.NewTrace("ref")
	if _, err := baseline.Run(zoo.ForkJoin(spec), baseline.Options{Trace: bt}); err != nil {
		t.Fatal(err)
	}
	// Every worker must have executed once per token on its own resource.
	for i := 1; i <= spec.Workers; i++ {
		acts := bt.Activities(fmt.Sprintf("Pw%d", i))
		if len(acts) != spec.Tokens {
			t.Fatalf("worker %d executed %d times, want %d", i, len(acts), spec.Tokens)
		}
	}

	dres, err := derive.Derive(zoo.ForkJoin(spec), derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(dres)
	if err != nil {
		t.Fatal(err)
	}
	et := observe.NewTrace("eq")
	if _, err := m.Run(core.Options{Trace: et}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(bt, et); err != nil {
		t.Fatalf("fork-join not bit-exact: %v", err)
	}

	sc, err := zoo.LookupScenario("forkjoin")
	if err != nil {
		t.Fatal(err)
	}
	group := sc.HybridGroup(zoo.ParamMap{"workers": int64(spec.Workers)})
	ht := observe.NewTrace("hyb")
	if _, err := hybrid.Run(zoo.ForkJoin(spec), hybrid.Options{Group: group, Trace: ht}); err != nil {
		t.Fatal(err)
	}
	if err := observe.CompareInstants(bt, ht); err != nil {
		t.Fatalf("fork-join hybrid group not bit-exact: %v", err)
	}
}

func TestForkJoinRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero workers")
		}
	}()
	zoo.ForkJoin(zoo.ForkJoinSpec{Workers: 0, Tokens: 1})
}
