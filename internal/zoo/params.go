package zoo

import (
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
)

// Params supplies named integer parameters. A design-space sweep point
// implements it, so the FromParams builders below plug directly into the
// sweep engine as architecture generators; absent names fall back to the
// scenario's defaults.
type Params interface {
	Lookup(name string) (int64, bool)
}

func param(p Params, name string, def int64) int64 {
	if v, ok := p.Lookup(name); ok {
		return v
	}
	return def
}

// PipelineFromParams builds the Fig. 5 synthetic pipeline from the
// parameters xsize, tokens, period and seed.
func PipelineFromParams(p Params) *model.Architecture {
	return Pipeline(PipelineSpec{
		XSize:  int(param(p, "xsize", 6)),
		Tokens: int(param(p, "tokens", 1000)),
		Period: maxplus.T(param(p, "period", 600)),
		Seed:   param(p, "seed", 17),
	})
}

// DidacticFromParams builds a chained didactic architecture from the
// parameters stages, tokens, period, seed and fifo (0/1).
func DidacticFromParams(p Params) *model.Architecture {
	return DidacticChain(int(param(p, "stages", 1)), DidacticSpec{
		Tokens:  int(param(p, "tokens", 1000)),
		Period:  maxplus.T(param(p, "period", 1200)),
		Seed:    param(p, "seed", 41),
		UseFIFO: param(p, "fifo", 0) != 0,
	})
}

// RandomFromParams builds a randomized-but-valid architecture from the
// parameters seed and tokens.
func RandomFromParams(p Params) *model.Architecture {
	return Random(RandomSpec{
		Seed:   param(p, "seed", 0),
		Tokens: int(param(p, "tokens", 100)),
	})
}
