package serve

// This file is the inline-architecture side of the API: POST /v1/run
// and POST /v1/sweeps accept an "architecture" object — a spec in the
// open JSON model format (internal/archjson, docs/MODEL_FORMAT.md) —
// in place of a registered scenario name. The spec is decoded,
// structurally validated and built through the same model.Validate
// path the compiled-in scenarios use, and the resulting model flows
// into the very same evaluation plumbing: the process-wide derivation
// cache keys on the built model's structural shape, so two inline
// requests carrying the same structure rebind one cached temporal
// dependency graph exactly as repeated scenario requests do.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dyncomp/internal/archjson"
	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/sweep"
	"dyncomp/internal/zoo"
)

// hasArchitecture reports whether a request actually carries an inline
// spec — an explicit JSON null counts as absent, like an omitted field.
func hasArchitecture(raw []byte) bool {
	s := strings.TrimSpace(string(raw))
	return s != "" && s != "null"
}

// decodeArchitecture decodes and validates an inline spec, mapping the
// archjson error taxonomy onto the wire codes: oversize specs answer
// 413 like oversize bodies, an unsupported format version gets its own
// code, and everything else is invalid_architecture.
func decodeArchitecture(raw []byte) (*archjson.Spec, *RequestError) {
	spec, err := archjson.Decode(raw)
	if err != nil {
		switch archjson.ErrCode(err) {
		case archjson.CodeTooLarge:
			return nil, requestErrorf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge, "%v", err)
		case archjson.CodeVersion:
			return nil, requestErrorf(http.StatusBadRequest, CodeUnsupportedVersion, "%v", err)
		default:
			return nil, requestErrorf(http.StatusBadRequest, CodeInvalidArchitecture, "%v", err)
		}
	}
	return spec, nil
}

// resolveInline is resolve's counterpart for inline requests: engine
// name, mutual exclusion against a scenario name, spec decoding and
// parameter-name validation.
func resolveInline(engineName, scenarioName string, raw []byte, params map[string]int64) (engine.Engine, *archjson.Spec, *RequestError) {
	if scenarioName != "" {
		return nil, nil, requestErrorf(http.StatusBadRequest, CodeInvalidArchitecture,
			"scenario and architecture are mutually exclusive")
	}
	if engineName == "" {
		engineName = "equivalent"
	}
	eng, err := engine.Lookup(engineName)
	if err != nil {
		return nil, nil, requestErrorf(http.StatusBadRequest, CodeUnknownEngine, "%v", err)
	}
	spec, aerr := decodeArchitecture(raw)
	if aerr != nil {
		return nil, nil, aerr
	}
	if err := spec.CheckParams(params); err != nil {
		return nil, nil, requestErrorf(http.StatusBadRequest, CodeUnknownParam, "%v", err)
	}
	return eng, spec, nil
}

// inlineHybridGroup resolves the hybrid engine's abstraction group for
// an inline spec: the request's explicit group wins, then the spec's
// canonical group (a declared group named "hybrid", or its only one).
func inlineHybridGroup(eng engine.Engine, spec *archjson.Spec, requested []string) ([]string, *RequestError) {
	if eng.Name() != "hybrid" || len(requested) > 0 {
		return requested, nil
	}
	if g := spec.CanonicalGroup(); g != nil {
		return g, nil
	}
	return nil, requestErrorf(http.StatusBadRequest, CodeMissingGroup,
		"architecture %q declares no abstraction group; set options.group", spec.Name)
}

// handleRunInline is POST /v1/run for requests carrying an inline
// architecture: same evaluation, cache and metrics path as a scenario
// run, different model source.
func (s *Server) handleRunInline(w http.ResponseWriter, r *http.Request, req RunRequest) {
	eng, spec, aerr := resolveInline(req.Engine, req.Scenario, req.Architecture, req.Params)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	group, aerr := inlineHybridGroup(eng, spec, req.Options.Group)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	a, err := spec.Build(zoo.ParamMap(req.Params))
	if err != nil {
		// Resolved-value violations the structural check cannot see
		// (e.g. a parameter binding driving a speed to zero).
		writeError(w, http.StatusBadRequest, CodeInvalidArchitecture, "%v", err)
		return
	}
	if !s.admitPoints(w, r, 1) {
		return
	}

	opts := req.Options.engineOptions(group)
	opts.Cache = s.cache
	res, err := runEngine(r.Context(), eng, a, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"run exceeded the request deadline")
			return
		}
		if errors.Is(err, context.Canceled) {
			// The caller went away; there is nobody to answer.
			return
		}
		writeError(w, http.StatusUnprocessableEntity, CodeRunFailed, "%v", err)
		return
	}
	s.metrics.inc(metricRuns, fmt.Sprintf(`engine=%q`, eng.Name()))
	hits, misses := s.cache.Stats()
	writeJSON(w, http.StatusOK, RunResponse{
		Engine:       eng.Name(),
		Architecture: spec.Name,
		Result:       resultJSON(res),
		Cache:        CacheStats{Shapes: s.cache.Shapes(), Hits: hits, Misses: misses},
	})
}

// compileSweepInline is CompileSweep for requests carrying an inline
// architecture. Axes must name parameters the spec declares (a typoed
// axis would sweep a knob no expression reads, evaluating one point N
// times); the per-point generator rebuilds the spec under the layered
// point-over-fixed binding exactly like the scenario path.
func compileSweepInline(req SweepRequest, d SweepDefaults) (*SweepPlan, *RequestError) {
	eng, spec, aerr := resolveInline(req.Engine, req.Scenario, req.Architecture, req.Params)
	if aerr != nil {
		return nil, aerr
	}
	axes, err := sweepAxes(req.Axes)
	if err != nil {
		return nil, requestErrorf(http.StatusBadRequest, CodeInvalidAxes, "%v", err)
	}
	axisParams := map[string]int64{}
	for _, ax := range axes {
		axisParams[ax.Name] = ax.Values[0]
	}
	if err := spec.CheckParams(axisParams); err != nil {
		return nil, requestErrorf(http.StatusBadRequest, CodeInvalidAxes, "%v", err)
	}
	points := 1
	for _, ax := range axes {
		points *= len(ax.Values)
		if points > d.MaxGridPoints {
			return nil, requestErrorf(http.StatusBadRequest, CodeGridTooLarge,
				"grid exceeds %d points", d.MaxGridPoints)
		}
	}
	group, aerr := inlineHybridGroup(eng, spec, req.Options.Group)
	if aerr != nil {
		return nil, aerr
	}
	opts, aerr := compileSweepOptions(req.Options, d, eng.Name())
	if aerr != nil {
		return nil, aerr
	}
	// Unlike scenarios, whose structure (and canonical group) may change
	// with the swept parameters, an inline spec's function set is static:
	// one group serves every point.
	opts.Group = group

	fixed := zoo.ParamMap(req.Params)
	return &SweepPlan{
		Engine:   eng.Name(),
		Scenario: spec.Name,
		Axes:     axes,
		Opts:     opts,
		Total:    points,
		Gen: func(p sweep.Point) (*model.Architecture, error) {
			return spec.Build(layeredParams{p: p, fixed: fixed})
		},
	}, nil
}
