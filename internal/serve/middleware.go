package serve

// The resilience middleware shared by the serving fabric. AccessLog is
// the outermost wrap of both dyncomp-serve and the shard coordinator:
// it turns handler panics into structured 500 envelopes (one bad
// request must never take the process or leak an unstructured error)
// and, when a logger is configured, emits one structured access-log
// line per request — method, path, caller, status, latency, bytes.

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"time"
)

// callerCtxKey carries the authenticated caller name through the
// request context.
type callerCtxKey struct{}

// withCaller stamps the authenticated caller onto the request context.
func withCaller(r *http.Request, caller string) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), callerCtxKey{}, caller))
}

// callerID identifies the requester: the authenticated caller name when
// token auth resolved one, the remote IP otherwise — so quotas and logs
// have a stable identity in both modes.
func callerID(r *http.Request) string {
	if c, ok := r.Context().Value(callerCtxKey{}).(string); ok && c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// accessRecorder is the outermost ResponseWriter wrap: it captures the
// status, the bytes written and the caller identity for the access log,
// keeping ResponseController features reachable through Unwrap.
type accessRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	caller string
}

func (ar *accessRecorder) WriteHeader(code int) {
	if ar.status == 0 {
		ar.status = code
	}
	ar.ResponseWriter.WriteHeader(code)
}

func (ar *accessRecorder) Write(b []byte) (int, error) {
	if ar.status == 0 {
		ar.status = http.StatusOK
	}
	n, err := ar.ResponseWriter.Write(b)
	ar.bytes += int64(n)
	return n, err
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (ar *accessRecorder) Unwrap() http.ResponseWriter { return ar.ResponseWriter }

// setCaller records the authenticated caller on the request's
// accessRecorder. Context flows inward only, so the auth middleware
// cannot hand the identity outward through r — instead it walks the
// ResponseWriter Unwrap chain to the recorder the access log reads.
func setCaller(w http.ResponseWriter, caller string) {
	for w != nil {
		if ar, ok := w.(*accessRecorder); ok {
			ar.caller = caller
			return
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return
		}
		w = u.Unwrap()
	}
}

// AccessLog is the shared outermost HTTP middleware of the serving
// fabric: panic recovery into the uniform error envelope plus
// structured request logging. The zero value is usable — a nil Logger
// disables the log line but keeps the recovery.
type AccessLog struct {
	// Logger receives one Info line per request and one Error line per
	// recovered panic; nil disables logging.
	Logger *slog.Logger
	// OnPanic, when non-nil, observes every recovered handler panic
	// (the servers count them into /metrics).
	OnPanic func()
}

// Wrap returns h behind the recovery and logging layer.
func (al AccessLog) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ar := &accessRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				if al.OnPanic != nil {
					al.OnPanic()
				}
				if ar.status == 0 {
					// Headers not yet out: the client still gets a
					// structured envelope, never a torn response body.
					writeError(ar, http.StatusInternalServerError, CodeInternal,
						"internal error")
				}
				if al.Logger != nil {
					al.Logger.Error("handler panic",
						"method", r.Method,
						"path", r.URL.Path,
						"panic", fmt.Sprint(rec),
						"stack", string(debug.Stack()))
				}
			}
			if al.Logger != nil {
				caller := ar.caller
				if caller == "" {
					caller = callerID(r)
				}
				status := ar.status
				if status == 0 {
					status = http.StatusOK
				}
				al.Logger.Info("request",
					"method", r.Method,
					"path", r.URL.Path,
					"caller", caller,
					"status", status,
					"latency_ns", time.Since(start).Nanoseconds(),
					"bytes", ar.bytes)
			}
		}()
		h.ServeHTTP(ar, r)
	})
}
