package serve

// POST /v1/optimize: the design-space optimizer (internal/optimize)
// as a service. The request carries an inline architecture whose
// declared parameter values span the design space, an objective metric
// and optional area/power budgets; the response is the Pareto front
// computed from exactly-simulated points, with per-point provenance.
// Evaluation shares the process-wide derivation cache with /v1/run and
// /v1/sweeps — an optimization over one structure rebinds one cached
// temporal dependency graph across its whole search.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dyncomp/internal/optimize"
)

// OptimizeConstraint is one platform budget on the wire: the analytic
// cost metric ("area" or "power") must not exceed max.
type OptimizeConstraint struct {
	Metric string  `json:"metric"`
	Max    float64 `json:"max"`
}

// OptimizeOptions is the wire form of the optimizer knobs.
type OptimizeOptions struct {
	// Workers / BatchWidth configure point evaluation as in SweepOptions
	// (0: the server defaults).
	Workers    int `json:"workers,omitempty"`
	BatchWidth int `json:"batch_width,omitempty"`
	// Budget caps the exactly simulated points (0: no cap); an exhausted
	// budget returns the partial front with converged false.
	Budget int `json:"budget,omitempty"`
	// Exhaustive forces brute-force simulation of every feasible point.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Group is the hybrid engine's abstraction group (empty: the spec's
	// canonical group).
	Group []string `json:"group,omitempty"`
}

// OptimizeRequest is the body of POST /v1/optimize. Architecture is
// required — the optimizer searches a spec's declared parameter
// values; there is nothing to optimize about a fixed scenario name.
type OptimizeRequest struct {
	Engine       string               `json:"engine,omitempty"` // default "equivalent"
	Architecture json.RawMessage      `json:"architecture"`
	Objective    string               `json:"objective,omitempty"` // default "cycle_mean"
	Constraints  []OptimizeConstraint `json:"constraints,omitempty"`
	Options      OptimizeOptions      `json:"options"`
}

// OptimizePoint is one Pareto-optimal design on the wire.
type OptimizePoint struct {
	Index     int              `json:"index"`
	Params    map[string]int64 `json:"params"`
	Objective float64          `json:"objective"`
	Area      float64          `json:"area,omitempty"`
	Power     float64          `json:"power,omitempty"`
	Origin    string           `json:"origin"` // seed | refined | exhaustive
}

// OptimizeResponse is the body of a successful POST /v1/optimize.
type OptimizeResponse struct {
	Engine       string          `json:"engine"`
	Architecture string          `json:"architecture"`
	Objective    string          `json:"objective"`
	Front        []OptimizePoint `json:"front"`
	GridPoints   int             `json:"grid_points"`
	Feasible     int             `json:"feasible"`
	Simulated    int             `json:"simulated"`
	Converged    bool            `json:"converged"`
	Exhaustive   bool            `json:"exhaustive"`
	Cache        CacheStats      `json:"cache"`
}

// handleOptimize serves POST /v1/optimize synchronously on the
// caller's request context (optimization runs are sweep-sized, not
// grid-sized: the whole point is simulating few points).
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	if !hasArchitecture(req.Architecture) {
		writeError(w, http.StatusBadRequest, CodeInvalidArchitecture,
			"an inline architecture is required")
		return
	}
	eng, spec, aerr := resolveInline(req.Engine, "", req.Architecture, nil)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	switch req.Objective {
	case "", optimize.ObjectiveCycleMean, optimize.ObjectiveFinalTime:
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidObjective,
			"unknown objective %q (have %q, %q)",
			req.Objective, optimize.ObjectiveCycleMean, optimize.ObjectiveFinalTime)
		return
	}
	cm, cmErr := spec.EvalCost(nil)
	cons := make([]optimize.Constraint, 0, len(req.Constraints))
	for _, c := range req.Constraints {
		switch c.Metric {
		case optimize.MetricArea, optimize.MetricPower:
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidConstraint,
				"unknown constraint metric %q (have %q, %q)",
				c.Metric, optimize.MetricArea, optimize.MetricPower)
			return
		}
		if cmErr == nil &&
			((c.Metric == optimize.MetricArea && !cm.HasArea) ||
				(c.Metric == optimize.MetricPower && !cm.HasPower)) {
			writeError(w, http.StatusBadRequest, CodeInvalidConstraint,
				"architecture %q declares no %s cost model; the %s budget would be unenforceable",
				spec.Name, c.Metric, c.Metric)
			return
		}
		cons = append(cons, optimize.Constraint{Metric: c.Metric, Max: c.Max})
	}
	if req.Options.Budget < 0 {
		writeError(w, http.StatusBadRequest, CodeBadJSON,
			"options.budget must be non-negative, got %d", req.Options.Budget)
		return
	}
	// Bound the design space like a sweep grid: the declared value lists
	// span it.
	points, axes := 1, 0
	for i := range spec.Parameters {
		if n := len(spec.Parameters[i].Values); n > 0 {
			axes++
			points *= n
			if points > s.cfg.MaxGridPoints {
				writeError(w, http.StatusBadRequest, CodeGridTooLarge,
					"design space exceeds %d points", s.cfg.MaxGridPoints)
				return
			}
		}
	}
	if axes == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidAxes,
			"architecture %q declares no parameter values to optimize over", spec.Name)
		return
	}
	// Charge the full design space against the caller's point quota: the
	// optimizer may simulate any subset of it.
	if !s.admitPoints(w, r, points) {
		return
	}
	group, aerr := inlineHybridGroup(eng, spec, req.Options.Group)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	workers := req.Options.Workers
	if workers <= 0 {
		workers = s.cfg.SweepWorkers
	}
	batchWidth := req.Options.BatchWidth
	if batchWidth <= 0 {
		batchWidth = s.cfg.SweepBatchWidth
	}

	res, err := optimize.Run(r.Context(), spec, optimize.Options{
		Engine:      eng.Name(),
		Workers:     workers,
		BatchWidth:  batchWidth,
		Objective:   req.Objective,
		Constraints: cons,
		Budget:      req.Options.Budget,
		Exhaustive:  req.Options.Exhaustive,
		Group:       group,
		Cache:       s.cache,
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"optimization exceeded the request deadline")
			return
		}
		if errors.Is(err, context.Canceled) {
			// The caller went away; there is nobody to answer.
			return
		}
		writeError(w, http.StatusUnprocessableEntity, CodeRunFailed, "%v", err)
		return
	}
	s.metrics.inc(metricOptimize, fmt.Sprintf(`engine=%q`, eng.Name()))

	front := make([]OptimizePoint, 0, len(res.Front))
	for _, p := range res.Front {
		front = append(front, OptimizePoint{
			Index:     p.Index,
			Params:    p.Params,
			Objective: p.Objective,
			Area:      p.Area,
			Power:     p.Power,
			Origin:    p.Origin,
		})
	}
	hits, misses := s.cache.Stats()
	writeJSON(w, http.StatusOK, OptimizeResponse{
		Engine:       eng.Name(),
		Architecture: spec.Name,
		Objective:    res.Objective,
		Front:        front,
		GridPoints:   res.GridPoints,
		Feasible:     res.Feasible,
		Simulated:    res.Simulated,
		Converged:    res.Converged,
		Exhaustive:   res.Exhaustive,
		Cache:        CacheStats{Shapes: s.cache.Shapes(), Hits: hits, Misses: misses},
	})
}
