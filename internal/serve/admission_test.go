package serve

// Admission-control tests: bearer-token auth, per-caller job and
// grid-point quotas, in-flight load shedding, per-request deadlines,
// the readiness probe, settled-job TTL eviction and the panic-recovery
// middleware — each rejection pinned to its stable error code and
// /metrics series.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func authedPost(t *testing.T, url, token string, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const runBody = `{"scenario":"pipeline","params":{"tokens":20}}`

// With tokens configured, API endpoints demand a valid bearer token;
// probes (/healthz, /readyz, /metrics) stay open for infrastructure.
func TestAuthTokens(t *testing.T) {
	_, ts := newTestServer(t, Config{
		AuthTokens: map[string]string{"s3cret": "alice"},
	})

	// No credentials.
	resp := authedPost(t, ts.URL+"/v1/run", "", runBody)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token answered %d, want 401", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeUnauthorized {
		t.Fatalf("code %q, want %q", code, CodeUnauthorized)
	}

	// Wrong token.
	resp = authedPost(t, ts.URL+"/v1/run", "wrong", runBody)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token answered %d, want 401", resp.StatusCode)
	}

	// Light GET endpoints are protected too.
	resp, err := http.Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/engines answered %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// Valid token.
	resp = authedPost(t, ts.URL+"/v1/run", "s3cret", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token answered %d (%s)", resp.StatusCode, errorCode(t, resp))
	}
	resp.Body.Close()

	// Probes never require credentials.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s answered %d with auth enabled, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The rejections surfaced on /metrics with their reason.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `dyncomp_serve_rejections_total{reason="unauthorized"}`) {
		t.Fatalf("metrics missing the unauthorized rejection series:\n%s", raw)
	}
}

// The per-caller concurrent-job quota answers 429 quota_exceeded once
// the caller's budget is used, and frees on job settlement.
func TestJobQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{QuotaJobs: 1})

	// Occupy the single slot for the unauthenticated caller (identified
	// by remote host, 127.0.0.1 under httptest).
	if !s.quotas.reserveJob("127.0.0.1", 1) {
		t.Fatal("fresh quota refused the first job")
	}
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes:     []Axis{{Name: "tokens", Values: []int64{20, 40}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("quota rejection carries no Retry-After")
	}
	if code := errorCode(t, resp); code != CodeQuotaExceeded {
		t.Fatalf("code %q, want %q", code, CodeQuotaExceeded)
	}

	// Freeing the slot admits the next job.
	s.quotas.releaseJob("127.0.0.1")
	resp = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes:     []Axis{{Name: "tokens", Values: []int64{20, 40}}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("freed quota answered %d (%s)", resp.StatusCode, errorCode(t, resp))
	}
	j := decodeBody[Job](t, resp)
	waitJob(t, ts.URL, j.ID, terminal)
}

// The grid-point quota meters evaluation volume per fixed window: runs
// under the budget pass, the crossing request answers 429 with a
// Retry-After no longer than the window.
func TestPointQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{QuotaPoints: 3, QuotaWindow: time.Hour})

	for i := 0; i < 3; i++ {
		resp := authedPost(t, ts.URL+"/v1/run", "", runBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d answered %d (%s)", i, resp.StatusCode, errorCode(t, resp))
		}
		resp.Body.Close()
	}
	resp := authedPost(t, ts.URL+"/v1/run", "", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget run answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("point-quota rejection carries no Retry-After")
	}
	if code := errorCode(t, resp); code != CodeQuotaExceeded {
		t.Fatalf("code %q, want %q", code, CodeQuotaExceeded)
	}

	// A sweep larger than the whole budget is rejected up front, before
	// any evaluation.
	resp = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes:     []Axis{{Name: "tokens", Values: []int64{20, 40, 60, 80}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep answered %d, want 429", resp.StatusCode)
	}
}

// Load shedding: past MaxInFlight concurrent requests, work endpoints
// answer 429 overloaded immediately; probes keep answering so the
// instance is never opaque under overload.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})

	// Simulate one request already in flight.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	resp := authedPost(t, ts.URL+"/v1/run", "", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed run answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("shed rejection carries no Retry-After")
	}
	if code := errorCode(t, resp); code != CodeOverloaded {
		t.Fatalf("code %q, want %q", code, CodeOverloaded)
	}

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		probe, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if probe.StatusCode != http.StatusOK {
			t.Fatalf("%s answered %d under shedding, want 200", path, probe.StatusCode)
		}
		probe.Body.Close()
	}
}

// A request deadline shorter than the evaluation surfaces as a
// structured 504 deadline_exceeded, not a hang and not a torn response.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})

	resp := authedPost(t, ts.URL+"/v1/run", "", runBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run answered %d, want 504", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeDeadlineExceeded {
		t.Fatalf("code %q, want %q", code, CodeDeadlineExceeded)
	}
}

// /readyz flips to 503 when the server is draining, while /healthz
// keeps reporting liveness — the split load balancers key on.
func TestReadyzDraining(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz answered %d before drain, want 200", resp.StatusCode)
	}

	s.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz answered %d, want 503", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeUnavailable {
		t.Fatalf("code %q, want %q", code, CodeUnavailable)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz answered %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// Settled jobs age out past the TTL: the janitor drops them, the API
// answers 404, and the eviction is counted on /metrics.
func TestJobTTLEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: 30 * time.Millisecond})

	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes:     []Axis{{Name: "tokens", Values: []int64{20, 40}}},
	})
	j := decodeBody[Job](t, resp)
	waitJob(t, ts.URL, j.ID, terminal)

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusNotFound {
			if code := errorCode(t, r); code != CodeJobNotFound {
				t.Fatalf("evicted job code %q, want %q", code, CodeJobNotFound)
			}
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("settled job never aged out past the TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(raw), "dyncomp_serve_jobs_evicted_total 1") {
		t.Fatalf("metrics missing the eviction count:\n%s", raw)
	}
}

// The MaxJobs cap evicts the oldest settled jobs beyond the count.
func TestMaxJobsEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 1})

	submit := func() string {
		resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
			Scenario: "pipeline",
			Axes:     []Axis{{Name: "tokens", Values: []int64{20, 40}}},
		})
		j := decodeBody[Job](t, resp)
		waitJob(t, ts.URL, j.ID, terminal)
		return j.ID
	}
	first := submit()
	second := submit()
	if n := s.jobs.evict(time.Now(), 0, 1); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
	if _, ok := s.jobs.get(first); ok {
		t.Fatalf("oldest settled job %s survived the MaxJobs cap", first)
	}
	if _, ok := s.jobs.get(second); !ok {
		t.Fatalf("newest job %s evicted, want kept", second)
	}
}

// The outermost middleware converts a handler panic into a structured
// 500 internal envelope and reports it, instead of tearing the
// connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	panicked := 0
	h := AccessLog{OnPanic: func() { panicked++ }}.Wrap(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("injected")
		}))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeInternal {
		t.Fatalf("code %q, want %q", code, CodeInternal)
	}
	if panicked != 1 {
		t.Fatalf("OnPanic fired %d times, want 1", panicked)
	}
}
