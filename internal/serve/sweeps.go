package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"dyncomp/internal/model"
	"dyncomp/internal/sim"
	"dyncomp/internal/sweep"
	"dyncomp/internal/zoo"
)

// layeredParams answers parameter lookups from the sweep point first and
// the request's fixed params second, so a sweep request can pin
// parameters it does not sweep (an axis of the same name wins).
type layeredParams struct {
	p     sweep.Point
	fixed zoo.ParamMap
}

func (l layeredParams) Lookup(name string) (int64, bool) {
	if v, ok := l.p.Lookup(name); ok {
		return v, ok
	}
	return l.fixed.Lookup(name)
}

// SweepPlan is a validated sweep request compiled into the sweep
// engine's inputs, shared by the job path (POST /v1/sweeps), the
// distributed chunk path (POST /v1/chunks) and the coordinator
// (internal/shard) — every consumer applies exactly the validation and
// option mapping a single-process job would, which is what keeps a
// sharded sweep bit-identical to a local one.
type SweepPlan struct {
	Engine   string
	Scenario string
	Axes     []sweep.Axis
	Opts     sweep.Options
	Gen      sweep.Generator
	Total    int
}

// SweepDefaults supplies the deployment-level defaults CompileSweep
// applies to request fields left at zero. The zero value picks the same
// production-lean defaults a zero serve.Config would.
type SweepDefaults struct {
	// Workers fills options.workers (default GOMAXPROCS).
	Workers int
	// BatchWidth fills options.batch_width (default 0: per-point).
	BatchWidth int
	// MaxGridPoints rejects grids beyond this many points (default
	// 100000).
	MaxGridPoints int
}

// compileSweepOptions validates and maps the wire sweep options every
// model source (scenario or inline architecture) shares: batch width,
// sampling knobs, worker count, engine options. Group resolution stays
// with the caller — it differs between the two sources.
func compileSweepOptions(o SweepOptions, d SweepDefaults, engineName string) (sweep.Options, *RequestError) {
	if o.BatchWidth < 0 {
		return sweep.Options{}, requestErrorf(http.StatusBadRequest, CodeBadJSON,
			"options.batch_width must be non-negative, got %d", o.BatchWidth)
	}
	if o.SampleTolerance < 0 {
		return sweep.Options{}, requestErrorf(http.StatusBadRequest, CodeInvalidSample,
			"options.sample_tolerance must be non-negative, got %g", o.SampleTolerance)
	}
	if o.SampleBudget < 0 {
		return sweep.Options{}, requestErrorf(http.StatusBadRequest, CodeInvalidSample,
			"options.sample_budget must be non-negative, got %d", o.SampleBudget)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = d.Workers
	}
	batchWidth := o.BatchWidth
	if batchWidth == 0 {
		batchWidth = d.BatchWidth
	}
	opts := sweep.Options{
		Workers:    workers,
		Engine:     engineName,
		Window:     o.WindowK,
		Confidence: o.Confidence,
		Baseline:   o.Baseline,
		Limit:      sim.Time(o.LimitNs),
		BatchWidth: batchWidth,
		Sample: sweep.SampleOptions{
			Tolerance: o.SampleTolerance,
			Budget:    o.SampleBudget,
			Verify:    o.SampleVerify,
		},
	}
	opts.Derive.Reduce = o.Reduce
	return opts, nil
}

// CompileSweep validates everything about a sweep request that can fail
// fast — registry names (or the inline architecture spec), parameters,
// axes, grid size, group, batch width — and compiles it into a
// SweepPlan ready for sweep.Run, sweep.RunIndices or distributed
// planning.
func CompileSweep(req SweepRequest, d SweepDefaults) (*SweepPlan, *RequestError) {
	if d.Workers <= 0 {
		d.Workers = runtime.GOMAXPROCS(0)
	}
	if d.BatchWidth < 0 {
		d.BatchWidth = 0
	}
	if d.MaxGridPoints <= 0 {
		d.MaxGridPoints = 100000
	}
	if hasArchitecture(req.Architecture) {
		return compileSweepInline(req, d)
	}
	eng, sc, fixed, aerr := resolve(req.Engine, req.Scenario, req.Params)
	if aerr != nil {
		return nil, aerr
	}
	axes, err := sweepAxes(req.Axes)
	if err != nil {
		return nil, requestErrorf(http.StatusBadRequest, CodeInvalidAxes, "%v", err)
	}
	// Axis names are scenario parameters too: a typoed axis would sweep
	// a knob the builder never reads, silently evaluating one point N
	// times.
	axisParams := zoo.ParamMap{}
	for _, ax := range axes {
		axisParams[ax.Name] = ax.Values[0]
	}
	if err := sc.CheckParams(axisParams); err != nil {
		return nil, requestErrorf(http.StatusBadRequest, CodeInvalidAxes, "%v", err)
	}
	points := 1
	for _, ax := range axes {
		points *= len(ax.Values)
		if points > d.MaxGridPoints {
			return nil, requestErrorf(http.StatusBadRequest, CodeGridTooLarge,
				"grid exceeds %d points", d.MaxGridPoints)
		}
	}
	if _, aerr := hybridGroup(eng, sc, req.Options.Group, fixed); aerr != nil {
		return nil, aerr
	}

	opts, aerr := compileSweepOptions(req.Options, d, eng.Name())
	if aerr != nil {
		return nil, aerr
	}
	if len(req.Options.Group) > 0 {
		opts.Group = req.Options.Group
	} else if eng.Name() == "hybrid" {
		// Per point: axes may change the structure and with it the
		// canonical group (e.g. sweeping the fork-join worker count).
		opts.GroupFor = func(p sweep.Point) []string {
			return sc.HybridGroup(layeredParams{p: p, fixed: fixed})
		}
	}
	return &SweepPlan{
		Engine:   eng.Name(),
		Scenario: sc.Name,
		Axes:     axes,
		Opts:     opts,
		Total:    points,
		Gen: func(p sweep.Point) (*model.Architecture, error) {
			return sc.Build(layeredParams{p: p, fixed: fixed}), nil
		},
	}, nil
}

// prepareSweep is CompileSweep under this server's configured defaults.
func (s *Server) prepareSweep(req SweepRequest) (*SweepPlan, *RequestError) {
	return CompileSweep(req, SweepDefaults{
		Workers:       s.cfg.SweepWorkers,
		BatchWidth:    s.cfg.SweepBatchWidth,
		MaxGridPoints: s.cfg.MaxGridPoints,
	})
}

// handleSweepCreate serves POST /v1/sweeps: validate, then queue the
// job and answer 202 with its lifecycle snapshot.
func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	plan, aerr := s.prepareSweep(req)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	caller := callerID(r)
	if !s.quotas.reserveJob(caller, s.cfg.QuotaJobs) {
		s.metrics.inc(metricRejections, `reason="quota_jobs"`)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"caller %q already has %d jobs in flight", caller, s.cfg.QuotaJobs)
		return
	}
	if !s.admitPoints(w, r, plan.Total) {
		s.quotas.releaseJob(caller)
		return
	}
	j := &job{
		engine:   plan.Engine,
		scenario: plan.Scenario,
		axes:     plan.Axes,
		opts:     plan.Opts,
		total:    plan.Total,
		created:  time.Now(),
		gen:      plan.Gen,
		// Count every terminal state exactly once, wherever the job
		// settles (worker, queued-cancel, shutdown drain) — and return
		// the caller's concurrent-job quota slot there, the single point
		// every settle path funnels through.
		onSettle: func(st jobState) {
			s.quotas.releaseJob(caller)
			s.metrics.inc(metricJobs, fmt.Sprintf(`state=%q`, st.String()))
		},
	}
	if err := s.jobs.add(j); err != nil {
		s.quotas.releaseJob(caller) // never enqueued: onSettle will not run
		if errors.Is(err, errShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "%v", err)
		} else {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, CodeQueueFull, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleSweepList serves GET /v1/sweeps: every job, creation order.
func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: make([]Job, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSweepGet serves GET /v1/sweeps/{id}: lifecycle plus, in terminal
// states, the sweep statistics and per-point results.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeJobNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.result())
}

// handleSweepCancel serves DELETE /v1/sweeps/{id}: queued jobs settle as
// cancelled immediately, running jobs get their context cancelled and
// settle when the worker observes it (the response then reports the
// transient "cancelling" state); terminal jobs answer 409.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeJobNotFound, "no job %q", r.PathValue("id"))
		return
	}
	st, ok := j.requestCancel(time.Now())
	if !ok {
		writeError(w, http.StatusConflict, CodeJobTerminal,
			"job %s already settled as %q", j.id, st)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleSweepEvents serves GET /v1/sweeps/{id}/events as a server-sent
// event stream: one initial "state" snapshot, "progress" events with
// absolute done/total counts as points finish, a final "state" event
// when the job settles, then EOF. Slow consumers skip intermediate
// progress events but never the terminal state.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeJobNotFound, "no job %q", r.PathValue("id"))
		return
	}
	ch, unsubscribe := j.subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	emit := func(ev event) bool {
		data, err := json.Marshal(ev.Data)
		if err != nil {
			return false
		}
		// A stalled consumer fails the write at the deadline instead of
		// pinning this goroutine; SetWriteDeadline errors (recorders,
		// exotic transports) leave the stream unbounded rather than dead.
		if d := s.cfg.StreamWriteTimeout; d > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(d))
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// The job settled (only settleLocked closes a channel the
				// handler still owns). Render the terminal state here —
				// never through the droppable broadcast path — so even a
				// consumer whose buffer overflowed gets it.
				emit(event{Name: "state", Data: j.snapshot()})
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}
