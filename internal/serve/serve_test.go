package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dyncomp/internal/derive"
)

// newTestServer returns a started Server over httptest plus a cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	return decodeBody[ErrorResponse](t, resp).Err.Code
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decodeBody[Health](t, resp)
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
}

func TestIntrospection(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	engines := decodeBody[struct {
		Engines []EngineInfo `json:"engines"`
	}](t, resp)
	names := map[string]bool{}
	for _, e := range engines.Engines {
		names[e.Name] = true
	}
	for _, want := range []string{"reference", "equivalent", "hybrid", "adaptive"} {
		if !names[want] {
			t.Errorf("engine %q not served (have %v)", want, engines.Engines)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	scenarios := decodeBody[struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}](t, resp)
	found := map[string]ScenarioInfo{}
	for _, sc := range scenarios.Scenarios {
		found[sc.Name] = sc
	}
	for _, want := range []string{"didactic", "pipeline", "forkjoin", "lte"} {
		if _, ok := found[want]; !ok {
			t.Errorf("scenario %q not served", want)
		}
	}
	if len(found["didactic"].Params) == 0 {
		t.Error("didactic served without parameter names")
	}
	if !found["didactic"].HybridGroup {
		t.Error("didactic served without canonical hybrid group")
	}
}

// The headline service property: a second structurally identical request
// is a derive-cache hit — the temporal dependency graph is derived once
// per shape for the whole process, across requests.
func TestRunCacheHitAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := RunRequest{
		Engine:   "equivalent",
		Scenario: "didactic",
		Params:   map[string]int64{"tokens": 50},
	}
	resp := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp.StatusCode)
	}
	first := decodeBody[RunResponse](t, resp)
	if first.Cache.Misses != 1 || first.Cache.Hits != 0 {
		t.Fatalf("first run cache = %+v, want 1 miss 0 hits", first.Cache)
	}
	if first.Result.FinalTimeNs == 0 {
		t.Fatal("first run reached no simulated time")
	}

	// Same structure, different parameters: must rebind, not re-derive.
	req.Params = map[string]int64{"tokens": 50, "period": 900}
	resp = postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp.StatusCode)
	}
	second := decodeBody[RunResponse](t, resp)
	if second.Cache.Misses != 1 {
		t.Fatalf("second run re-derived: %+v", second.Cache)
	}
	if second.Cache.Hits != 1 {
		t.Fatalf("second run was no cache hit: %+v", second.Cache)
	}
	if second.Result.FinalTimeNs == first.Result.FinalTimeNs {
		t.Fatal("different period produced identical final time")
	}
}

// Concurrent mixed-engine requests against one server: every engine on
// every call must answer with a bit-exact final time (the engines are
// interchangeable), sharing one derive cache without interference. Run
// under -race in CI.
func TestConcurrentMixedEngineRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	engines := []string{"reference", "equivalent", "hybrid", "adaptive"}
	const perEngine = 4

	// One serial warm-up run to learn the expected final time.
	warm := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Engine: "reference", Scenario: "didactic", Params: map[string]int64{"tokens": 40},
	})
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d", warm.StatusCode)
	}
	want := decodeBody[RunResponse](t, warm).Result.FinalTimeNs

	var wg sync.WaitGroup
	errs := make(chan error, len(engines)*perEngine)
	for _, eng := range engines {
		for i := 0; i < perEngine; i++ {
			wg.Add(1)
			go func(eng string) {
				defer wg.Done()
				b, _ := json.Marshal(RunRequest{
					Engine: eng, Scenario: "didactic", Params: map[string]int64{"tokens": 40},
				})
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", eng, resp.StatusCode)
					return
				}
				var rr RunResponse
				if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
					errs <- err
					return
				}
				if rr.Result.FinalTimeNs != want {
					errs <- fmt.Errorf("%s: final time %d, want %d", eng, rr.Result.FinalTimeNs, want)
				}
			}(eng)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"bad json", `{`, http.StatusBadRequest, CodeBadJSON},
		{"unknown field", `{"scenario":"didactic","bogus":1}`, http.StatusBadRequest, CodeBadJSON},
		{"unknown engine", `{"engine":"warp","scenario":"didactic"}`, http.StatusBadRequest, CodeUnknownEngine},
		{"unknown scenario", `{"scenario":"warp"}`, http.StatusBadRequest, CodeUnknownScenario},
		{"unknown param", `{"scenario":"didactic","params":{"bogus":1}}`, http.StatusBadRequest, CodeUnknownParam},
		{"hybrid without group", `{"engine":"hybrid","scenario":"random"}`, http.StatusBadRequest, CodeMissingGroup},
		{"oversized body", `{"scenario":"didactic","params":{"tokens":` +
			strings.Repeat(" ", maxBodyBytes) + `1}}`, http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if got := errorCode(t, resp); got != tc.code {
				t.Fatalf("code %q, want %q", got, tc.code)
			}
		})
	}
}

// The metrics endpoint exports the request, run, cache and job series.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Scenario: "didactic", Params: map[string]int64{"tokens": 20},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`dyncomp_serve_requests_total{endpoint="run",class="2xx"} 1`,
		`dyncomp_serve_runs_total{engine="equivalent"} 1`,
		`dyncomp_serve_derive_cache_misses_total 1`,
		"dyncomp_serve_derive_cache_evictions_total 0",
		fmt.Sprintf("dyncomp_serve_derive_cache_entry_limit %d", derive.DefaultEntries),
		"dyncomp_serve_derive_cache_shapes 1",
		`dyncomp_serve_derive_cache_shape_hits{arch="didactic-chain-1",shape="`,
		"dyncomp_serve_tdg_compiles_total",
		"dyncomp_serve_jobs_queued 0",
		"dyncomp_serve_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// A tight cache bound makes the server evict templates and report it.
func TestMetricsCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 1})
	for _, sc := range []string{"didactic", "chain"} {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Scenario: sc, Params: map[string]int64{"tokens": 10},
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", sc, resp.StatusCode)
		}
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"dyncomp_serve_derive_cache_evictions_total 1",
		"dyncomp_serve_derive_cache_shapes 1",
		"dyncomp_serve_derive_cache_entry_limit 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}
