package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dyncomp/internal/sweep"
)

// jobState is the lifecycle of a sweep job. Transitions:
//
//	queued ──► running ──► done | failed | cancelled
//	   │                            ▲
//	   └────────────────────────────┘  (cancelled while queued)
//
// A cancel request against a running job shows up as the transient wire
// state "cancelling" until the worker observes the context and settles
// the terminal state.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (st jobState) String() string {
	switch st {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return "unknown"
}

// terminal reports whether the state is final.
func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCancelled
}

// event is one server-sent event of a job's progress stream.
type event struct {
	Name string // "progress" or "state"
	Data any    // JSON-marshalled payload
}

// progressData is the payload of a "progress" event.
type progressData struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// job is one asynchronous sweep: the prepared sweep inputs plus the
// mutable lifecycle state. All mutable fields are guarded by mu.
type job struct {
	id       string
	engine   string
	scenario string
	axes     []sweep.Axis
	gen      sweep.Generator
	opts     sweep.Options // Progress and Cache are injected at run time

	// onSettle, when non-nil, observes the terminal state exactly once
	// — the single place jobs are counted, wherever they settle (worker,
	// queued-cancel, shutdown drain). Must not call back into the job.
	onSettle func(st jobState)

	mu              sync.Mutex
	state           jobState
	cancelRequested bool
	cancel          context.CancelFunc // set while running
	done, total     int
	created         time.Time
	started         time.Time
	finished        time.Time
	err             error
	res             *sweep.Result
	rendered        *JobResult // memoized terminal result() rendering
	subs            map[chan event]struct{}
}

// wireState renders the state for the API, including the transient
// "cancelling" view of a running job with a pending cancel request.
func (j *job) wireStateLocked() string {
	if j.state == jobRunning && j.cancelRequested {
		return "cancelling"
	}
	return j.state.String()
}

// snapshot renders the job's lifecycle for the API.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() Job {
	out := Job{
		ID:       j.id,
		State:    j.wireStateLocked(),
		Engine:   j.engine,
		Scenario: j.scenario,
		Done:     j.done,
		Total:    j.total,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	return out
}

// result renders the job including — in terminal states — the sweep
// statistics and per-point results. A terminal job can never change, so
// the rendering is memoized: polling a finished large grid costs one
// conversion total, not one per GET.
func (j *job) result() JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rendered != nil {
		return *j.rendered
	}
	out := JobResult{Job: j.snapshotLocked()}
	if j.res != nil && j.state.terminal() {
		out.Stats = statsJSON(j.res.Stats)
		out.Points = make([]SweepPoint, 0, len(j.res.Points))
		for _, pr := range j.res.Points {
			out.Points = append(out.Points, pointJSON(pr))
		}
	}
	if j.state.terminal() {
		j.rendered = &out
	}
	return out
}

// progress records point completion and fans it out to subscribers.
// The sweep engine serializes deliveries and keeps them strictly
// monotonic; the guard is defense in depth for any other producer (a
// settled job must report done == total, and progress bars must not
// move backwards).
func (j *job) progress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if done <= j.done {
		return
	}
	j.done, j.total = done, total
	j.broadcastLocked(event{Name: "progress", Data: progressData{Done: done, Total: total}})
}

// broadcastLocked sends ev to every subscriber without blocking: a slow
// consumer drops intermediate events (each event carries absolute
// counts, so nothing cumulative is lost).
func (j *job) broadcastLocked(ev event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// settleLocked moves the job into a terminal state and closes every
// subscriber stream. The terminal "state" event is NOT broadcast here:
// a slow consumer's buffer could drop it, and the contract guarantees
// the terminal state is never skipped — so the SSE handler renders it
// itself from a snapshot when it observes the close.
func (j *job) settleLocked(st jobState, now time.Time) {
	j.state = st
	j.finished = now
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	if j.onSettle != nil {
		j.onSettle(st)
	}
}

// subscribe registers a progress listener. For a live job the returned
// channel first receives a snapshot "state" event, then live events,
// and is closed when the job settles; for an already-terminal job it is
// closed immediately (the handler renders the terminal state on close).
// unsubscribe is idempotent and must be called when the listener goes
// away.
func (j *job) subscribe() (<-chan event, func()) {
	ch := make(chan event, 16)
	j.mu.Lock()
	if j.state.terminal() {
		close(ch)
	} else {
		ch <- event{Name: "state", Data: j.snapshotLocked()}
		if j.subs == nil {
			j.subs = map[chan event]struct{}{}
		}
		j.subs[ch] = struct{}{}
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// requestCancel asks for the job to stop. A queued job settles
// immediately; a running one has its context cancelled and settles when
// the worker returns. Terminal jobs report ok == false.
func (j *job) requestCancel(now time.Time) (state string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == jobQueued:
		j.err = context.Canceled
		j.settleLocked(jobCancelled, now)
		return j.state.String(), true
	case j.state == jobRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return j.wireStateLocked(), true
	default:
		return j.state.String(), false
	}
}

// jobStore owns every job and the FIFO queue feeding the worker pool.
type jobStore struct {
	mu     sync.Mutex
	closed bool // set by Server.Close: no further jobs accepted
	jobs   map[string]*job
	order  []string
	seq    int64
	queue  chan *job
}

func newJobStore(queueCap int) *jobStore {
	return &jobStore{
		jobs:  map[string]*job{},
		queue: make(chan *job, queueCap),
	}
}

// add registers a job and enqueues it; a full queue fails without
// registering anything. Registration and the enqueue attempt happen
// under one lock so a rejected job can never be observed by (or
// corrupt) the listing; the queue send is non-blocking and workers pop
// without taking st.mu, so the lock is never held across a wait.
func (st *jobStore) add(j *job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		// The worker pool is gone; accepting would queue the job forever.
		return errShuttingDown
	}
	st.seq++
	j.id = fmt.Sprintf("job-%06d", st.seq)
	select {
	case st.queue <- j:
		st.jobs[j.id] = j
		st.order = append(st.order, j.id)
		return nil
	default:
		return errQueueFull
	}
}

// Submission failures the HTTP layer maps onto distinct status codes.
var (
	errQueueFull    = errors.New("job queue full")
	errShuttingDown = errors.New("server shutting down, no new jobs accepted")
)

// close marks the store as no longer accepting jobs. Serialized on
// st.mu against add: any job enqueued before close is visible to the
// caller's subsequent queue drain, any add after it is rejected.
func (st *jobStore) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list returns every job in creation order.
func (st *jobStore) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*job, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	return out
}

// saturation reports the store's drain state and queue occupancy, the
// two signals /readyz gates on.
func (st *jobStore) saturation() (closed bool, queueLen, queueCap int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed, len(st.queue), cap(st.queue)
}

// evict removes settled jobs: first everything past the TTL (measured
// from its finish time), then — still beyond maxJobs — the oldest
// settled jobs until the bound holds. Queued and running jobs are never
// evicted, so a max-jobs bound smaller than the live set is simply not
// yet enforceable. Returns how many jobs were dropped.
func (st *jobStore) evict(now time.Time, ttl time.Duration, maxJobs int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	drop := map[string]bool{}
	var settled []string // still-kept settled jobs, creation order
	for _, id := range st.order {
		j := st.jobs[id]
		j.mu.Lock()
		if j.state.terminal() {
			if ttl > 0 && now.Sub(j.finished) >= ttl {
				drop[id] = true
			} else {
				settled = append(settled, id)
			}
		}
		j.mu.Unlock()
	}
	if maxJobs > 0 {
		kept := len(st.order) - len(drop)
		for _, id := range settled {
			if kept <= maxJobs {
				break
			}
			drop[id] = true
			kept--
		}
	}
	if len(drop) == 0 {
		return 0
	}
	order := st.order[:0]
	for _, id := range st.order {
		if drop[id] {
			delete(st.jobs, id)
			continue
		}
		order = append(order, id)
	}
	st.order = order
	return len(drop)
}

// active counts queued and running jobs (for /metrics and /healthz).
func (st *jobStore) active() (queued, running int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// jobWorker is one slot of the bounded job pool: it pops queued jobs
// until the server shuts down.
func (s *Server) jobWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.jobs.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one sweep job end to end: transition to running,
// evaluate the grid with the server's shared derivation cache and the
// job's progress fan-out, then settle the terminal state.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != jobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.state = jobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.broadcastLocked(event{Name: "state", Data: j.snapshotLocked()})
	j.mu.Unlock()

	opts := j.opts
	opts.Cache = s.cache
	opts.Progress = j.progress
	res, err := sweep.RunContext(ctx, j.axes, j.gen, opts)
	if res != nil && res.Stats.Batches > 0 {
		s.sweepBatches.Add(int64(res.Stats.Batches))
		s.sweepBatchPoints.Add(int64(res.Stats.BatchedPoints))
		s.sweepBatchLanes.Add(int64(res.Stats.Batches * opts.BatchWidth))
	}
	if res != nil && res.Stats.SimulatedPoints+res.Stats.PredictedPoints > 0 {
		s.sweepSimulated.Add(int64(res.Stats.SimulatedPoints))
		s.sweepPredicted.Add(int64(res.Stats.PredictedPoints))
		for _, pr := range res.Points {
			if pr.Source != sweep.SourcePredicted {
				continue
			}
			// The observed error when sample_verify measured one, the
			// declared bound otherwise.
			e := pr.PredBound
			if opts.Sample.Verify {
				e = pr.PredObserved
			}
			s.predErrors.observe(e)
		}
	}

	j.mu.Lock()
	j.res = res
	now := time.Now()
	var terminal jobState
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Cancelled via DELETE or by server shutdown; the partial
		// result (completed points keep their stats) stays readable.
		j.err = err
		terminal = jobCancelled
	case res == nil:
		j.err = err
		terminal = jobFailed
	default:
		// Point-level failures are not a job-level failure: the per-
		// point errors travel in the results.
		j.err = err
		terminal = jobDone
	}
	j.settleLocked(terminal, now) // also counts the job in metricJobs
	j.mu.Unlock()
}
