// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// JSON API multiplexing the whole engine × scenario matrix across
// concurrent callers. It is the first deployment target of this
// repository that is a process, not a command — the ROADMAP's
// production-scale direction made concrete.
//
// The service exposes three groups of endpoints:
//
//   - Synchronous evaluation: POST /v1/run runs one engine on one
//     model — a registered scenario by name, or an inline architecture
//     in the open JSON model format (internal/archjson) — and returns
//     the unified result. POST /v1/optimize runs the surrogate-driven
//     Pareto design-space optimizer (internal/optimize) over an inline
//     architecture's declared parameter space. Every run shares one
//     process-wide structure-keyed derivation cache (derive.Cache), so
//     structurally identical requests — the common case for a service
//     hammered with parameter variations of a few architectures —
//     rebind a cached temporal dependency graph instead of re-deriving
//     it, whether the model came from the registry or the wire.
//
//   - Asynchronous sweeps: POST /v1/sweeps queues a design-space sweep
//     job on a bounded worker pool and returns a job id; GET
//     /v1/sweeps/{id} reports lifecycle and (when finished) the full
//     per-point results; GET /v1/sweeps/{id}/events streams point-level
//     progress as server-sent events; DELETE /v1/sweeps/{id} cancels
//     through the same context plumbing the sweep engine already honors.
//     Jobs share the process-wide derivation cache too.
//
//   - Distributed chunks: POST /v1/chunks evaluates one
//     coordinator-assigned set of grid indices synchronously — the
//     worker side of the internal/shard sweep fabric, validated and
//     evaluated exactly like a local job so a sharded sweep stays
//     bit-identical to a single-process one.
//
//   - Introspection: GET /v1/engines and /v1/scenarios enumerate the two
//     registries, /healthz reports liveness, /metrics exports request,
//     cache and job counters in the Prometheus text format.
//
// The package is deliberately free of dependencies beyond the standard
// library: routing uses net/http method patterns, metrics are rendered
// by hand, SSE is a Flush loop. See docs/SERVING.md for the full API
// reference and cmd/dyncomp-serve for the binary.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dyncomp/internal/derive"
	"dyncomp/internal/engine"
	"dyncomp/internal/zoo"

	// Register the built-in executors, the LTE case-study scenario and
	// the surrogate sweep-sampling driver, so the served registries and
	// sweep capabilities match the CLIs'.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
	_ "dyncomp/internal/lte"
	_ "dyncomp/internal/surrogate"
)

// Config tunes the server. The zero value is usable: every field has a
// production-lean default applied by New.
type Config struct {
	// JobWorkers bounds how many sweep jobs execute concurrently
	// (default 2). Each job additionally runs its own point-level worker
	// pool of SweepWorkers.
	JobWorkers int
	// JobQueue bounds how many jobs may wait for a worker (default 64);
	// a full queue rejects POST /v1/sweeps with 429.
	JobQueue int
	// SweepWorkers is the per-job point-level pool size applied when a
	// request does not set options.workers (default GOMAXPROCS).
	SweepWorkers int
	// SweepBatchWidth is the batched-evaluation lane width applied when
	// a request does not set options.batch_width (default 0: per-point
	// evaluation). Jobs on engines without the batch capability run per
	// point regardless.
	SweepBatchWidth int
	// MaxGridPoints rejects sweeps whose grid exceeds this many points
	// (default 100000) — a service must bound a single caller's blast
	// radius.
	MaxGridPoints int
	// CacheEntries bounds the process-wide derivation cache to this many
	// structural shapes, evicting least-recently-used templates beyond it
	// (default derive.DefaultEntries; negative disables eviction). The
	// bound protects long-lived servers against unbounded memory growth
	// from streams of structurally distinct models.
	CacheEntries int
	// AuthTokens maps bearer tokens to caller names. Empty disables
	// authentication: every caller passes, identified by remote IP.
	AuthTokens map[string]string
	// QuotaJobs bounds concurrently queued-or-running sweep jobs per
	// caller (0: unlimited); beyond it POST /v1/sweeps answers 429
	// quota_exceeded.
	QuotaJobs int
	// QuotaPoints bounds the grid points one caller may admit per
	// QuotaWindow across runs, sweeps, chunks and optimizations (0:
	// unlimited).
	QuotaPoints int
	// QuotaWindow is the fixed window QuotaPoints is accounted over
	// (default 1m).
	QuotaWindow time.Duration
	// MaxInFlight sheds work requests (run/optimize/chunks/sweep
	// submissions) beyond this many concurrently in flight with 429
	// overloaded + Retry-After (default 512; negative disables).
	MaxInFlight int
	// RequestTimeout bounds each work request end to end, honored down
	// through the engine run via its context (0: unbounded). Expired
	// requests answer 504 deadline_exceeded.
	RequestTimeout time.Duration
	// JobTTL evicts settled jobs this long after they finished (0: keep
	// forever).
	JobTTL time.Duration
	// MaxJobs bounds retained jobs, evicting the oldest settled ones
	// beyond it (0: unbounded). Queued and running jobs never count
	// against eviction.
	MaxJobs int
	// StreamWriteTimeout bounds every single write on the SSE and NDJSON
	// streams, so a stalled consumer cannot pin a stream goroutine
	// (default 30s; negative disables).
	StreamWriteTimeout time.Duration
	// Logger, when set, receives one structured access-log line per
	// request and one error line per recovered panic (see AccessLog).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueue <= 0 {
		c.JobQueue = 64
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxGridPoints <= 0 {
		c.MaxGridPoints = 100000
	}
	if c.SweepBatchWidth < 0 {
		c.SweepBatchWidth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = derive.DefaultEntries
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.QuotaWindow <= 0 {
		c.QuotaWindow = time.Minute
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 512
	} else if c.MaxInFlight < 0 {
		c.MaxInFlight = 0 // shedding disabled
	}
	if c.StreamWriteTimeout == 0 {
		c.StreamWriteTimeout = 30 * time.Second
	} else if c.StreamWriteTimeout < 0 {
		c.StreamWriteTimeout = 0 // per-write deadline disabled
	}
	return c
}

// Server is the serving layer's state: the process-wide derivation
// cache, the job store and pool, and the metrics collector. Create it
// with New, expose Handler over an http.Server, and Close it on the way
// out (Close cancels running jobs and waits for the pool to drain).
type Server struct {
	cfg     Config
	cache   *derive.Cache
	jobs    *jobStore
	metrics *metrics
	mux     *http.ServeMux
	started time.Time

	// Batched-sweep accounting across every finished job, scraped by
	// /metrics: batched engine invocations, the points they carried and
	// the lane capacity they offered (batches × width).
	sweepBatches     atomic.Int64
	sweepBatchPoints atomic.Int64
	sweepBatchLanes  atomic.Int64
	// chunkPoints counts grid points evaluated for a distributed sweep
	// coordinator through POST /v1/chunks.
	chunkPoints atomic.Int64
	// Sampled-sweep accounting across every finished job: exactly
	// simulated vs surrogate-predicted points, plus a histogram of the
	// per-point prediction errors (observed under sample_verify, the
	// declared bound otherwise).
	sweepSimulated atomic.Int64
	sweepPredicted atomic.Int64
	predErrors     errHist

	// Admission-control state: per-caller quotas, the in-flight work
	// gauge the shed middleware gates on, and the resilience counters.
	quotas      *quotas
	inflight    atomic.Int64
	jobsEvicted atomic.Int64
	panics      atomic.Int64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New creates a Server and starts its job worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   derive.NewCacheLimit(cfg.CacheEntries),
		jobs:    newJobStore(cfg.JobQueue),
		metrics: newMetrics(),
		quotas:  newQuotas(),
		mux:     http.NewServeMux(),
		started: time.Now(),
		baseCtx: ctx,
		stop:    stop,
	}
	s.routes()
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.jobWorker()
	}
	if cfg.JobTTL > 0 || cfg.MaxJobs > 0 {
		s.wg.Add(1)
		go s.jobJanitor()
	}
	return s
}

// Handler returns the root handler serving the full API, behind the
// panic-recovery and access-logging layer.
func (s *Server) Handler() http.Handler {
	return AccessLog{Logger: s.cfg.Logger, OnPanic: func() { s.panics.Add(1) }}.Wrap(s.mux)
}

// jobJanitor periodically evicts settled jobs past the TTL or the
// max-jobs bound.
func (s *Server) jobJanitor() {
	defer s.wg.Done()
	interval := s.cfg.JobTTL / 4
	if interval <= 0 || interval > time.Second {
		interval = time.Second
	}
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			if n := s.jobs.evict(time.Now(), s.cfg.JobTTL, s.cfg.MaxJobs); n > 0 {
				s.jobsEvicted.Add(int64(n))
			}
		}
	}
}

// Close shuts the job pool down: new job submissions are rejected,
// running jobs are cancelled (they settle as "cancelled" with their
// partial results) and jobs still queued are settled as "cancelled"
// too, so every SSE subscriber gets its terminal event instead of
// hanging into the HTTP drain timeout. Close blocks until every worker
// returned. Handlers may keep serving reads after Close.
func (s *Server) Close() {
	s.jobs.close() // before the drain: add() is serialized against it
	s.stop()
	s.wg.Wait()
	// No worker will ever pop these; settle them.
	for {
		select {
		case j := <-s.jobs.queue:
			j.mu.Lock()
			if j.state == jobQueued {
				j.err = context.Canceled
				j.settleLocked(jobCancelled, time.Now())
			}
			j.mu.Unlock()
		default:
			return
		}
	}
}

// routes wires every endpoint through its admission class (see
// admission.go): probes stay reachable without credentials, reads are
// authenticated, work endpoints additionally shed load and carry the
// request deadline, streams are bounded per write instead.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.probe("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.probe("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.probe("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/engines", s.light("engines", s.handleEngines))
	s.mux.HandleFunc("GET /v1/scenarios", s.light("scenarios", s.handleScenarios))
	s.mux.HandleFunc("POST /v1/run", s.work("run", s.handleRun))
	s.mux.HandleFunc("POST /v1/optimize", s.work("optimize", s.handleOptimize))
	s.mux.HandleFunc("POST /v1/chunks", s.work("chunk_run", s.handleChunkRun))
	s.mux.HandleFunc("POST /v1/sweeps", s.work("sweep_create", s.handleSweepCreate))
	s.mux.HandleFunc("GET /v1/sweeps", s.light("sweep_list", s.handleSweepList))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.light("sweep_get", s.handleSweepGet))
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.light("sweep_cancel", s.handleSweepCancel))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.stream("sweep_events", s.handleSweepEvents))
}

// Health is the body of GET /healthz.
type Health struct {
	Status      string `json:"status"`
	UptimeNs    int64  `json:"uptime_ns"`
	JobsQueued  int    `json:"jobs_queued"`
	JobsRunning int    `json:"jobs_running"`
	CacheShapes int    `json:"cache_shapes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.jobs.active()
	writeJSON(w, http.StatusOK, Health{
		Status:      "ok",
		UptimeNs:    time.Since(s.started).Nanoseconds(),
		JobsQueued:  queued,
		JobsRunning: running,
		CacheShapes: s.cache.Shapes(),
	})
}

// handleReadyz is the readiness probe: unlike /healthz (pure liveness)
// it answers 503 while the server drains and while the job queue is
// saturated, so load balancers and the shard coordinator's breaker
// probes steer work away before it would be rejected.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	closed, queueLen, queueCap := s.jobs.saturation()
	switch {
	case closed:
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "draining")
	case queueCap > 0 && queueLen >= queueCap:
		writeError(w, http.StatusServiceUnavailable, CodeOverloaded,
			"job queue saturated (%d/%d)", queueLen, queueCap)
	default:
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ready"})
	}
}

// EngineInfo is one entry of GET /v1/engines.
type EngineInfo struct {
	Name string `json:"name"`
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	names := engine.Names()
	out := struct {
		Engines []EngineInfo `json:"engines"`
	}{Engines: make([]EngineInfo, 0, len(names))}
	for _, n := range names {
		out.Engines = append(out.Engines, EngineInfo{Name: n})
	}
	writeJSON(w, http.StatusOK, out)
}

// ScenarioInfo is one entry of GET /v1/scenarios.
type ScenarioInfo struct {
	Name        string   `json:"name"`
	Desc        string   `json:"desc"`
	Params      []string `json:"params"`
	HybridGroup bool     `json:"hybrid_group"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	scs := zoo.Scenarios()
	out := struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}{Scenarios: make([]ScenarioInfo, 0, len(scs))}
	for _, sc := range scs {
		out.Scenarios = append(out.Scenarios, ScenarioInfo{
			Name:        sc.Name,
			Desc:        sc.Desc,
			Params:      sc.ParamNames(),
			HybridGroup: sc.HybridGroup != nil,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
