package serve

// Admission control: who may ask (bearer-token identity), how much
// (per-caller quotas on concurrent jobs and grid points per window),
// and how fast (in-flight load shedding, per-request deadlines). Every
// rejection is a stable error code plus a metrics series, so operators
// see shed load instead of mystery latency.
//
// Endpoints are wired through one of four classes in routes():
//
//	probe  — liveness/metrics: counted only, never authenticated
//	light  — cheap reads (registries, job lookups): counted + auth
//	work   — evaluation (run/optimize/chunks/sweep create): counted +
//	         auth + in-flight shedding + request deadline
//	stream — long-lived streams (SSE): counted + auth; no deadline (the
//	         per-write StreamWriteTimeout bounds them instead)

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// quotas tracks per-caller admission state. It deliberately owns its
// own mutex: job quota release runs from job.onSettle with the job's
// lock held, and must never contend with the job store's.
type quotas struct {
	mu     sync.Mutex
	jobs   map[string]int // caller -> jobs currently queued or running
	points map[string]*pointWindow
}

// pointWindow is one caller's fixed-window grid-point budget.
type pointWindow struct {
	start time.Time
	used  int
}

func newQuotas() *quotas {
	return &quotas{jobs: map[string]int{}, points: map[string]*pointWindow{}}
}

// reserveJob claims one concurrent-job slot for the caller; limit <= 0
// disables the quota.
func (q *quotas) reserveJob(caller string, limit int) bool {
	if limit <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jobs[caller] >= limit {
		return false
	}
	q.jobs[caller]++
	return true
}

// releaseJob returns a slot claimed by reserveJob. Safe from onSettle:
// it takes only the quota lock.
func (q *quotas) releaseJob(caller string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jobs[caller] > 1 {
		q.jobs[caller]--
	} else {
		delete(q.jobs, caller)
	}
}

// reservePoints charges n grid points against the caller's fixed
// window. On rejection it reports how long until the window resets.
func (q *quotas) reservePoints(caller string, n, limit int, window time.Duration, now time.Time) (retryAfter time.Duration, ok bool) {
	if limit <= 0 || n <= 0 {
		return 0, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	pw := q.points[caller]
	if pw == nil || now.Sub(pw.start) >= window {
		pw = &pointWindow{start: now}
		q.points[caller] = pw
	}
	if pw.used+n > limit {
		return window - now.Sub(pw.start), false
	}
	pw.used += n
	return 0, true
}

// identify resolves the request's caller. With no configured tokens
// every caller passes anonymously (callerID falls back to the remote
// IP); with tokens, a valid "Authorization: Bearer <token>" header maps
// to the token's caller name and anything else is rejected.
func (s *Server) identify(r *http.Request) (string, bool) {
	if len(s.cfg.AuthTokens) == 0 {
		return "", true
	}
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		if name, ok := s.cfg.AuthTokens[strings.TrimSpace(auth[len(prefix):])]; ok {
			return name, true
		}
	}
	return "", false
}

// authenticate rejects requests without a valid bearer token (401
// unauthorized) when auth is configured, and stamps the caller identity
// onto the context and the access log.
func (s *Server) authenticate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		caller, ok := s.identify(r)
		if !ok {
			s.metrics.inc(metricRejections, `reason="unauthorized"`)
			writeError(w, http.StatusUnauthorized, CodeUnauthorized,
				"missing or unknown bearer token")
			return
		}
		if caller != "" {
			setCaller(w, caller)
			r = withCaller(r, caller)
		}
		h(w, r)
	}
}

// shed bounds concurrently in-flight work requests: beyond MaxInFlight
// the server answers 429 overloaded with Retry-After instead of piling
// latency onto every caller.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if max := s.cfg.MaxInFlight; max > 0 {
			if n := s.inflight.Add(1); n > int64(max) {
				s.inflight.Add(-1)
				s.metrics.inc(metricRejections, `reason="overloaded"`)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, CodeOverloaded,
					"server at %d in-flight work requests; retry shortly", max)
				return
			}
			defer s.inflight.Add(-1)
		}
		h(w, r)
	}
}

// deadline bounds the whole request — including the engine run, which
// honors ctx — by RequestTimeout.
func (s *Server) deadline(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.RequestTimeout <= 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// admitPoints charges n grid points against the caller's window quota,
// answering 429 quota_exceeded itself on rejection.
func (s *Server) admitPoints(w http.ResponseWriter, r *http.Request, n int) bool {
	caller := callerID(r)
	retry, ok := s.quotas.reservePoints(caller, n, s.cfg.QuotaPoints, s.cfg.QuotaWindow, time.Now())
	if ok {
		return true
	}
	s.metrics.inc(metricRejections, `reason="quota_points"`)
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
	writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
		"caller %q exceeds %d grid points per %s", caller, s.cfg.QuotaPoints, s.cfg.QuotaWindow)
	return false
}

// The endpoint classes (see the package comment above).

func (s *Server) probe(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.countRequests(name, h)
}

func (s *Server) light(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.countRequests(name, s.authenticate(h))
}

func (s *Server) work(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.countRequests(name, s.authenticate(s.shed(s.deadline(h))))
}

func (s *Server) stream(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.countRequests(name, s.authenticate(h))
}
