package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzRunRequest is the API's panic wall: whatever bytes arrive as a
// POST /v1/run body — including inline architecture objects, which
// open a much larger input surface than scenario names — the handler
// answers a well-formed JSON response with one of the documented
// status codes, and never panics the process. CI runs this for a short
// -fuzztime smoke alongside FuzzDecodeArchitecture.
func FuzzRunRequest(f *testing.F) {
	for _, seed := range []string{
		``,
		`{}`,
		`{"scenario": "didactic"}`,
		`{"scenario": "didactic", "params": {"tokens": 50}}`,
		`{"engine": "reference", "scenario": "pipeline", "options": {"limit_ns": 1000}}`,
		`{"engine": "hybrid", "scenario": "didactic"}`,
		`{"scenario": "ghost"}`,
		`{"scenario": "didactic", "params": {"ghost": 1}}`,
		`{"architecture": {"version": 1}}`,
		`{"architecture": {"version": 99, "name": "x"}}`,
		`{"scenario": "didactic", "architecture": {"version": 1, "name": "x"}}`,
		`{"architecture": ` + inlineSpec + `}`,
		`{"architecture": ` + inlineSpec + `, "params": {"period": -1}}`,
		`{"architecture": ` + inlineSpec + `, "params": {"ghost": 3}}`,
		`{"scenario": "didactic"} trailing`,
		`[1, 2, 3]`,
		`{"options": {"group": ["F1"]}}`,
	} {
		f.Add([]byte(seed))
	}

	s := New(Config{})
	defer s.Close()
	h := s.Handler()

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusUnprocessableEntity:   true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		var payload json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("non-JSON response %q for body %q", rec.Body.String(), body)
		}
		if rec.Code != http.StatusOK {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Err.Code == "" {
				t.Fatalf("status %d without a structured error: %q", rec.Code, rec.Body.String())
			}
		}
	})
}
